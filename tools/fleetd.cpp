// fleetd — host one ComDML fleet across OS processes.
//
//   fleetd --listen unix:/tmp/fleet.sock --workers 2 --agents 4  # coordinator
//   fleetd --worker --index 0 --connect unix:/tmp/fleet.sock     # worker 0
//   fleetd --worker --index 1 --connect unix:/tmp/fleet.sock     # worker 1
//
// Drive rounds with `fleet_cli --connect unix:/tmp/fleet.sock`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "daemon/fleetd.hpp"

namespace {

using comdml::daemon::CoordinatorOptions;
using comdml::daemon::WorkerOptions;

void usage() {
  std::fprintf(
      stderr,
      "fleetd — multi-process ComDML fleet daemon\n"
      "\n"
      "coordinator:\n"
      "  fleetd --listen <addr> [--workers N] [--agents N] [--seed N]\n"
      "         [--protocol hd|ring] [--batches N] [--batch-size N]\n"
      "         [--lr F] [--momentum F] [--mbps F] [--latency F]\n"
      "         [--scale F,F,...]   per-agent compute multipliers\n"
      "worker:\n"
      "  fleetd --worker --index I --connect <addr> [--rejoin]\n"
      "\n"
      "--rejoin re-admits a re-spawned replacement for a crashed worker:\n"
      "it restores from a consensus checkpoint and its agents revive.\n"
      "addresses: unix:/path/to.sock | tcp:host:port\n");
}

/// Parse "1.0,0.35,1.0" into per-agent compute multipliers.
std::vector<double> parse_scales(const std::string& csv) {
  std::vector<double> scales;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (item.empty()) throw std::invalid_argument("empty --scale entry");
    scales.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return scales;
}

}  // namespace

int main(int argc, char** argv) {
  bool worker = false;
  CoordinatorOptions coord;
  WorkerOptions wopt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--worker") {
        worker = true;
      } else if (arg == "--rejoin") {
        wopt.rejoin = true;
      } else if (arg == "--scale") {
        coord.spec.compute_scales = parse_scales(value());
      } else if (arg == "--listen") {
        coord.listen = value();
      } else if (arg == "--connect") {
        wopt.connect = value();
      } else if (arg == "--index") {
        wopt.index = std::stoll(value());
      } else if (arg == "--workers") {
        coord.workers = std::stoll(value());
      } else if (arg == "--agents") {
        coord.spec.agents = std::stoll(value());
      } else if (arg == "--seed") {
        coord.spec.seed = std::stoull(value());
      } else if (arg == "--protocol") {
        coord.spec.protocol = value();
      } else if (arg == "--batches") {
        coord.spec.batches_per_round = std::stoll(value());
      } else if (arg == "--batch-size") {
        coord.spec.batch_size = std::stoll(value());
      } else if (arg == "--lr") {
        coord.spec.lr = std::stof(value());
      } else if (arg == "--momentum") {
        coord.spec.momentum = std::stof(value());
      } else if (arg == "--mbps") {
        coord.spec.mbps = std::stod(value());
      } else if (arg == "--latency") {
        coord.spec.latency_sec = std::stod(value());
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        throw std::invalid_argument("unknown flag " + arg);
      }
    }
    if (worker) {
      if (wopt.connect.empty())
        throw std::invalid_argument("--worker needs --connect <addr>");
      return comdml::daemon::run_worker(wopt);
    }
    if (coord.listen.empty())
      throw std::invalid_argument("coordinator needs --listen <addr>");
    return comdml::daemon::run_coordinator(coord);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd: %s\n", e.what());
    usage();
    return 2;
  }
}
