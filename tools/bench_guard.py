#!/usr/bin/env python3
"""Benchmark regression guard over BENCH_kernels.json.

Compares a freshly produced benchmark table (the candidate) against the
committed baseline, record by record. Records are keyed by
(op, shape, threads, metric); the measured value always lives in the
``gflops`` field regardless of the metric name (historical format).

Two classes of metric:

- Deterministic model metrics (``bytes_per_round``, ``model_round_seconds``,
  ``model_seconds_per_collective``): pure functions of the code — the modeled
  transport clock and the exact wire bytes of the collective schedules. A
  regression beyond the threshold here is a real change in communication
  volume or the modeled round shape, so it FAILS the build.
- Wall-clock metrics (``gflops``, ``round_seconds``, ``exposed_comm_seconds``
  and friends): machine- and load-dependent, so drift only WARNS.

Direction matters: for throughput metrics (gflops, gbps, speedup) lower is
worse; for byte/second metrics higher is worse.

Usage:
    python3 tools/bench_guard.py --baseline BENCH_kernels.json \
        --candidate build/BENCH_kernels.json [--threshold 0.25]

``--baseline`` is repeatable: the files merge record by record in the
order given, later files overriding earlier ones on key collisions. A
repo can therefore layer a machine- or suite-specific baseline over the
committed default:

    python3 tools/bench_guard.py --baseline BENCH_kernels.json \
        --baseline BENCH_kernels.ci-runner.json \
        --candidate build/BENCH_kernels.json

Exit status 0 when every deterministic metric is within the threshold,
1 otherwise.
"""

import argparse
import json
import sys

# Pure functions of the code: modeled clocks and exact schedule bytes.
# Message-fault decisions are hashes of the shared step counter, so the
# retransmission traffic under a fixed fault plan and the step count of a
# recovered schedule are exactly reproducible too.
DETERMINISTIC_METRICS = {
    "bytes_per_round",
    "model_round_seconds",
    "model_seconds_per_collective",
    "retransmit_bytes_per_round",
    "recovery_steps",
}

# Throughput metrics regress downward; everything else regresses upward.
HIGHER_IS_BETTER = {"gflops", "gbps", "speedup_vs_serial"}


def load_records(path):
    with open(path) as f:
        records = json.load(f)
    table = {}
    for r in records:
        key = (r["op"], r["shape"], r["threads"], r["metric"])
        table[key] = float(r["gflops"])  # value field, regardless of metric
    return table


def relative_regression(metric, baseline, candidate):
    """Positive = candidate is worse than baseline, as a fraction."""
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    if metric in HIGHER_IS_BETTER:
        return (baseline - candidate) / abs(baseline)
    return (candidate - baseline) / abs(baseline)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", action="append", required=True,
                    help="committed BENCH_kernels.json; repeatable — later "
                         "files override earlier ones record by record")
    ap.add_argument("--candidate", required=True,
                    help="freshly produced BENCH_kernels.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    args = ap.parse_args()

    baseline = {}
    for path in args.baseline:
        baseline.update(load_records(path))
    candidate = load_records(args.candidate)

    failures, warnings, missing = [], [], []
    for key, base_value in sorted(baseline.items()):
        op, shape, threads, metric = key
        if key not in candidate:
            missing.append(key)
            continue
        reg = relative_regression(metric, base_value, candidate[key])
        if reg <= args.threshold:
            continue
        line = (f"{op} {shape} threads={threads} [{metric}]: "
                f"{base_value:g} -> {candidate[key]:g} "
                f"({reg * 100.0:+.1f}% worse)")
        if metric in DETERMINISTIC_METRICS:
            failures.append(line)
        else:
            warnings.append(line)

    for key in missing:
        print(f"bench_guard: WARN missing candidate record {key}")
    for line in warnings:
        print(f"bench_guard: WARN (wall-clock, not gating) {line}")
    for line in failures:
        print(f"bench_guard: FAIL {line}")

    checked = len(baseline) - len(missing)
    print(f"bench_guard: checked {checked}/{len(baseline)} records, "
          f"{len(failures)} failing, {len(warnings)} wall-clock warnings "
          f"(threshold {args.threshold * 100.0:.0f}%)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
