// ComDML core tests: split profiling, AgentTrainingTime estimation, the
// greedy decentralized pairing scheduler, the exact reference optimizer and
// the batch-level pair execution model.
#include <gtest/gtest.h>

#include "core/execution.hpp"
#include "core/optimizer_exact.hpp"
#include "core/trainer.hpp"

namespace comdml::core {
namespace {

using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;

SplitProfile resnet56_profile(size_t max_points = 0) {
  return SplitProfile::from_spec(nn::resnet56_spec(), max_points);
}

AgentInfo make_agent(int64_t id, double speed, int64_t batches) {
  AgentInfo a;
  a.id = id;
  a.proc_speed = speed;
  a.num_batches = batches;
  a.tau_solo = static_cast<double>(batches) / speed;
  return a;
}

// ---- profile -------------------------------------------------------------------

TEST(SplitProfile, ProfilesEveryInteriorCut) {
  const auto p = resnet56_profile();
  EXPECT_EQ(p.points().size(), 55u);  // 56 units -> 55 interior boundaries
}

TEST(SplitProfile, RelativeTimesPartitionUnity) {
  const auto p = resnet56_profile();
  for (const auto& pt : p.points()) {
    EXPECT_GT(pt.t_slow, 0.0);
    EXPECT_GT(pt.t_fast, 0.0);
    EXPECT_NEAR(pt.t_slow + pt.t_fast, 1.0, 1e-12);
  }
}

TEST(SplitProfile, SlowShareMonotoneInCut) {
  const auto p = resnet56_profile();
  for (size_t i = 1; i < p.points().size(); ++i)
    EXPECT_GT(p.points()[i].t_slow, p.points()[i - 1].t_slow);
}

TEST(SplitProfile, SuffixBytesMonotoneDecreasing) {
  const auto p = resnet56_profile();
  for (size_t i = 1; i < p.points().size(); ++i)
    EXPECT_LE(p.points()[i].suffix_param_bytes,
              p.points()[i - 1].suffix_param_bytes);
}

TEST(SplitProfile, MaxPointsSubsamplesEvenly) {
  const auto p = resnet56_profile(8);
  EXPECT_EQ(p.points().size(), 8u);
  EXPECT_EQ(p.points().front().cut, 1u);
  EXPECT_EQ(p.points().back().cut, 55u);
}

TEST(SplitProfile, AtCutFindsPoint) {
  const auto p = resnet56_profile();
  EXPECT_EQ(p.at_cut(19).cut, 19u);
  EXPECT_THROW((void)p.at_cut(56), std::invalid_argument);
}

TEST(SplitProfile, OffloadedFractionComplementsSlowShare) {
  const auto p = resnet56_profile();
  EXPECT_NEAR(p.offloaded_fraction(10), 1.0 - p.at_cut(10).t_slow, 1e-12);
}

TEST(SplitProfile, ModelBytesMatchSpec) {
  const auto spec = nn::resnet56_spec();
  const auto p = SplitProfile::from_spec(spec);
  EXPECT_EQ(p.model_state_bytes(), spec.total_param_bytes());
  EXPECT_DOUBLE_EQ(p.full_flops_per_sample(), spec.total_flops());
}

TEST(SplitProfile, RejectsSingleUnitModels) {
  nn::ArchitectureSpec spec;
  spec.name = "degenerate";
  spec.units.resize(1);
  EXPECT_THROW((void)SplitProfile::from_spec(spec), std::invalid_argument);
}

// ---- best_split ------------------------------------------------------------------

TEST(BestSplit, FastLinkFastPeerFindsSplit) {
  const auto p = resnet56_profile();
  const auto slow = make_agent(0, 0.1, 50);   // tau = 500 s
  const auto fast = make_agent(1, 2.0, 10);   // tau = 5 s
  const auto choice = best_split(p, slow, fast, 100.0, 100);
  ASSERT_TRUE(choice.has_value());
  EXPECT_LT(choice->time, slow.tau_solo);
  EXPECT_GT(choice->comm_time, 0.0);
}

TEST(BestSplit, NoLinkNoSplit) {
  const auto p = resnet56_profile();
  EXPECT_FALSE(best_split(p, make_agent(0, 0.1, 50), make_agent(1, 2.0, 10),
                          0.0, 100)
                   .has_value());
}

TEST(BestSplit, BetterLinkNeverWorse) {
  const auto p = resnet56_profile();
  const auto slow = make_agent(0, 0.1, 50);
  const auto fast = make_agent(1, 2.0, 10);
  const auto slow_link = best_split(p, slow, fast, 10.0, 100);
  const auto fast_link = best_split(p, slow, fast, 100.0, 100);
  ASSERT_TRUE(slow_link && fast_link);
  EXPECT_LE(fast_link->time, slow_link->time);
}

TEST(BestSplit, SlowerLinkOffloadsLess) {
  // With an expensive link, the optimum keeps more work local (larger cut,
  // i.e. later split -> smaller activation volume and less offload).
  const auto p = resnet56_profile();
  const auto slow = make_agent(0, 0.1, 50);
  const auto fast = make_agent(1, 2.0, 10);
  const auto cheap = best_split(p, slow, fast, 100.0, 100);
  const auto costly = best_split(p, slow, fast, 5.0, 100);
  ASSERT_TRUE(cheap && costly);
  EXPECT_GE(costly->cut, cheap->cut);
}

TEST(BestSplit, EstimateIsMaxOfSides) {
  // With a single profiled split, verify the arithmetic of
  // tau_ij = max(N/p_i^m, tau_j + comm + N/p_j^m) exactly.
  nn::ArchitectureSpec spec;
  spec.name = "two-unit";
  spec.units.resize(2);
  spec.units[0] = {"a", 600.0, 1200.0, 400, 1000, 0};
  spec.units[1] = {"b", 200.0, 400.0, 400, 8, 0};
  const auto p = SplitProfile::from_spec(spec);
  ASSERT_EQ(p.points().size(), 1u);
  const auto& pt = p.points()[0];
  EXPECT_NEAR(pt.t_slow, 0.75, 1e-12);  // 1800 of 2400 FLOPs

  const auto slow = make_agent(0, 1.0, 10);
  const auto fast = make_agent(1, 4.0, 2);
  const double link_mbps = 8.0;  // 1e6 bytes/sec
  const auto choice = best_split(p, slow, fast, link_mbps, 100);
  ASSERT_TRUE(choice.has_value());
  const double slow_side = 10.0 / (1.0 / 0.75);
  const double comm =
      10.0 * (1008.0 * 100.0) / 1e6 + 2.0 * 400.0 / 1e6;
  const double fast_side = fast.tau_solo + comm + 10.0 / (4.0 / 0.25);
  EXPECT_NEAR(choice->time, std::max(slow_side, fast_side), 1e-9);
}

// ---- pair_agents -----------------------------------------------------------------

std::vector<AgentInfo> heterogeneous_fleet(const SplitProfile& p,
                                           const Topology& topo,
                                           int64_t batch_size,
                                           int64_t samples_per_agent) {
  std::vector<AgentInfo> infos;
  for (int64_t i = 0; i < topo.agents(); ++i) {
    const double sps = sim::samples_per_sec(topo.profile(i),
                                            p.full_flops_per_sample());
    AgentInfo a;
    a.id = i;
    a.proc_speed = sps / static_cast<double>(batch_size);
    a.num_batches = samples_per_agent / batch_size;
    a.tau_solo = static_cast<double>(a.num_batches) / a.proc_speed;
    infos.push_back(a);
  }
  return infos;
}

TEST(PairAgents, BalancingBeatsNoOffloading) {
  const auto p = resnet56_profile();
  std::vector<ResourceProfile> profiles{{4.0, 100}, {2.0, 100}, {1.0, 100},
                                        {0.5, 100}, {0.2, 100}, {4.0, 50},
                                        {0.2, 50},  {1.0, 50},  {2.0, 20},
                                        {0.5, 20}};
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 5000);
  std::vector<int64_t> parts(10);
  std::iota(parts.begin(), parts.end(), 0);
  const auto result = pair_agents(p, infos, topo, 100, parts);
  double unbalanced = 0;
  for (const auto& a : infos) unbalanced = std::max(unbalanced, a.tau_solo);
  EXPECT_GT(result.pairs.size(), 0u);
  EXPECT_LT(result.estimated_round_time, 0.8 * unbalanced);
}

TEST(PairAgents, EveryAgentAssignedExactlyOnce) {
  const auto p = resnet56_profile();
  Rng rng(3);
  const auto profiles = sim::assign_profiles(20, rng);
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 2500);
  std::vector<int64_t> parts(20);
  std::iota(parts.begin(), parts.end(), 0);
  const auto result = pair_agents(p, infos, topo, 100, parts);
  std::vector<int> seen(20, 0);
  for (const auto& pr : result.pairs) {
    ++seen[static_cast<size_t>(pr.slow_agent)];
    ++seen[static_cast<size_t>(pr.fast_agent)];
  }
  for (const int64_t id : result.solo) ++seen[static_cast<size_t>(id)];
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], 1);
}

TEST(PairAgents, OffloadGoesToFasterAgent) {
  const auto p = resnet56_profile();
  Rng rng(4);
  const auto profiles = sim::assign_profiles(10, rng);
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 5000);
  std::vector<int64_t> parts(10);
  std::iota(parts.begin(), parts.end(), 0);
  const auto result = pair_agents(p, infos, topo, 100, parts);
  for (const auto& pr : result.pairs)
    EXPECT_LT(infos[static_cast<size_t>(pr.fast_agent)].tau_solo,
              infos[static_cast<size_t>(pr.slow_agent)].tau_solo);
}

TEST(PairAgents, PairEstimateBeatsSlowSolo) {
  const auto p = resnet56_profile();
  Rng rng(5);
  const auto profiles = sim::assign_profiles(12, rng);
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 4000);
  std::vector<int64_t> parts(12);
  std::iota(parts.begin(), parts.end(), 0);
  const auto result = pair_agents(p, infos, topo, 100, parts);
  for (const auto& pr : result.pairs)
    EXPECT_LT(pr.estimated_time,
              infos[static_cast<size_t>(pr.slow_agent)].tau_solo);
}

TEST(PairAgents, HomogeneousFleetStaysSolo) {
  const auto p = resnet56_profile();
  std::vector<ResourceProfile> profiles(6, {1.0, 100.0});
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 5000);
  std::vector<int64_t> parts(6);
  std::iota(parts.begin(), parts.end(), 0);
  const auto result = pair_agents(p, infos, topo, 100, parts);
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.solo.size(), 6u);
}

TEST(PairAgents, DisconnectedTopologyStaysSolo) {
  const auto p = resnet56_profile();
  Rng rng(6);
  std::vector<ResourceProfile> profiles{{4.0, 100}, {0.2, 100}};
  auto topo = Topology::random_graph(profiles, 0.0, rng);  // no links
  const auto infos = heterogeneous_fleet(p, topo, 100, 5000);
  const auto result = pair_agents(p, infos, topo, 100, {0, 1});
  EXPECT_TRUE(result.pairs.empty());
}

TEST(PairAgents, RespectsParticipationSubset) {
  const auto p = resnet56_profile();
  Rng rng(7);
  const auto profiles = sim::assign_profiles(10, rng);
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 5000);
  const std::vector<int64_t> parts{1, 3, 5};
  const auto result = pair_agents(p, infos, topo, 100, parts);
  std::set<int64_t> assigned;
  for (const auto& pr : result.pairs) {
    assigned.insert(pr.slow_agent);
    assigned.insert(pr.fast_agent);
  }
  for (const int64_t id : result.solo) assigned.insert(id);
  EXPECT_EQ(assigned, std::set<int64_t>(parts.begin(), parts.end()));
}

// ---- exact optimizer ----------------------------------------------------------------

TEST(ExactPairing, NeverWorseThanGreedy) {
  const auto p = resnet56_profile(12);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(100 + seed);
    const auto profiles = sim::assign_profiles(8, rng);
    const auto topo = Topology::full_mesh(profiles);
    const auto infos = heterogeneous_fleet(p, topo, 100, 4000);
    std::vector<int64_t> parts(8);
    std::iota(parts.begin(), parts.end(), 0);
    const auto greedy = pair_agents(p, infos, topo, 100, parts);
    const auto exact = optimal_pairing(p, infos, topo, 100, parts);
    EXPECT_LE(exact.estimated_round_time,
              greedy.estimated_round_time + 1e-9)
        << "seed " << seed;
  }
}

TEST(ExactPairing, ReconstructionMatchesValue) {
  const auto p = resnet56_profile(12);
  Rng rng(8);
  const auto profiles = sim::assign_profiles(7, rng);
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 3000);
  std::vector<int64_t> parts(7);
  std::iota(parts.begin(), parts.end(), 0);
  const auto exact = optimal_pairing(p, infos, topo, 100, parts);
  double worst = 0;
  for (const auto& pr : exact.pairs)
    worst = std::max(worst, pr.estimated_time);
  for (const int64_t id : exact.solo)
    worst = std::max(worst, infos[static_cast<size_t>(id)].tau_solo);
  EXPECT_NEAR(worst, exact.estimated_round_time, 1e-9);
}

TEST(ExactPairing, CapsFleetSize) {
  const auto p = resnet56_profile(4);
  Rng rng(9);
  const auto profiles = sim::assign_profiles(24, rng);
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 1000);
  std::vector<int64_t> parts(24);
  std::iota(parts.begin(), parts.end(), 0);
  EXPECT_THROW((void)optimal_pairing(p, infos, topo, 100, parts),
               std::invalid_argument);
}

TEST(RandomPairing, AssignsEveryoneOnce) {
  const auto p = resnet56_profile(12);
  Rng rng(10);
  const auto profiles = sim::assign_profiles(9, rng);
  const auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 3000);
  std::vector<int64_t> parts(9);
  std::iota(parts.begin(), parts.end(), 0);
  Rng prng(11);
  const auto result = random_pairing(p, infos, topo, 100, parts, prng);
  std::vector<int> seen(9, 0);
  for (const auto& pr : result.pairs) {
    ++seen[static_cast<size_t>(pr.slow_agent)];
    ++seen[static_cast<size_t>(pr.fast_agent)];
  }
  for (const int64_t id : result.solo) ++seen[static_cast<size_t>(id)];
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(StaticPairing, ReusesRoundZeroPairs) {
  const auto p = resnet56_profile(12);
  // Strongly heterogeneous fleet on fast links: every round-0 pair improves.
  std::vector<ResourceProfile> profiles{{4.0, 100}, {0.2, 100}, {2.0, 100},
                                        {0.3, 100}, {1.0, 100}, {0.5, 100}};
  auto topo = Topology::full_mesh(profiles);
  const auto infos = heterogeneous_fleet(p, topo, 100, 3000);
  std::vector<int64_t> parts(6);
  std::iota(parts.begin(), parts.end(), 0);
  StaticPairing sp;
  const auto first = sp.apply(p, infos, topo, 100, parts);
  // Perturb the profiles; static pairing must keep the same partner sets.
  auto shuffled = profiles;
  std::reverse(shuffled.begin(), shuffled.end());
  topo.set_profiles(shuffled);
  const auto infos2 = heterogeneous_fleet(p, topo, 100, 3000);
  const auto second = sp.apply(p, infos2, topo, 100, parts);
  auto pair_set = [](const PairingResult& r) {
    std::set<std::pair<int64_t, int64_t>> s;
    for (const auto& pr : r.pairs)
      s.insert({std::min(pr.slow_agent, pr.fast_agent),
                std::max(pr.slow_agent, pr.fast_agent)});
    return s;
  };
  for (const auto& pr : pair_set(second))
    EXPECT_TRUE(pair_set(first).count(pr) > 0);
}

// ---- pair execution -----------------------------------------------------------------

TEST(ExecutePair, TracksSchedulerEstimateClosely) {
  // Algorithm 1's tau_ij serializes comm after the fast agent's own task
  // and ignores producer-side arrival constraints, so the batch-level
  // execution can land slightly on either side of it — but never far:
  // it is bounded below by each single stage and above by the fully
  // serialized schedule.
  const auto p = resnet56_profile();
  const auto slow = make_agent(0, 0.1, 50);
  const auto fast = make_agent(1, 2.0, 10);
  for (const double link : {10.0, 20.0, 50.0, 100.0}) {
    const auto choice = best_split(p, slow, fast, link, 100);
    if (!choice) continue;
    const auto exec = execute_pair(p, slow, fast, choice->cut, link, 100);
    const auto& pt = p.at_cut(choice->cut);
    const double slow_side = 50.0 * pt.t_slow / 0.1;
    const double serial = slow_side + fast.tau_solo + exec.link_busy +
                          50.0 * pt.t_fast / 2.0;
    EXPECT_GE(exec.pair_time, slow_side) << link;
    EXPECT_LE(exec.pair_time, serial + 1e-9) << link;
    // Pipelining can run up to ~2x faster than the serialized estimate on
    // comm-dominated links and a few percent slower when producer-side
    // arrival constraints bind.
    const double ratio = exec.pair_time / choice->time;
    EXPECT_GE(ratio, 0.5) << link;
    EXPECT_LE(ratio, 1.10) << link;
  }
}

TEST(ExecutePair, SlowSideTimeExact) {
  const auto p = resnet56_profile();
  const auto slow = make_agent(0, 0.1, 50);
  const auto fast = make_agent(1, 2.0, 10);
  const auto choice = best_split(p, slow, fast, 100.0, 100);
  ASSERT_TRUE(choice);
  const auto exec = execute_pair(p, slow, fast, choice->cut, 100.0, 100);
  const auto& pt = p.at_cut(choice->cut);
  EXPECT_NEAR(exec.slow_finish, 50.0 * pt.t_slow / 0.1, 1e-9);
}

TEST(ExecutePair, IdleTimesNonNegative) {
  const auto p = resnet56_profile();
  const auto exec = execute_pair(p, make_agent(0, 0.1, 50),
                                 make_agent(1, 2.0, 10), 28, 50.0, 100);
  EXPECT_GE(exec.slow_idle, 0.0);
  EXPECT_GE(exec.fast_idle, 0.0);
  EXPECT_GE(exec.pair_time, exec.slow_finish);
  EXPECT_GE(exec.pair_time, exec.fast_finish);
}

TEST(ExecutePair, LinkBusyCountsAllTransfers) {
  const auto p = resnet56_profile();
  const auto slow = make_agent(0, 0.1, 20);
  const auto exec =
      execute_pair(p, slow, make_agent(1, 2.0, 10), 28, 50.0, 100);
  const auto& pt = p.at_cut(28);
  const double expected =
      (2.0 * pt.suffix_param_bytes +
       20.0 * 100.0 * static_cast<double>(pt.nu_bytes)) /
      comm::bytes_per_sec(50.0);
  EXPECT_NEAR(exec.link_busy, expected, 1e-6);
}

TEST(ExecutePair, RequiresUsableLink) {
  const auto p = resnet56_profile();
  EXPECT_THROW((void)execute_pair(p, make_agent(0, 0.1, 20),
                                  make_agent(1, 2.0, 10), 28, 0.0, 100),
               std::invalid_argument);
}

// ---- shard sizes ----------------------------------------------------------------------

TEST(ShardSizes, IidEqualSplit) {
  Rng rng(13);
  const auto sizes = shard_sizes_for(data::cifar10_spec(), 10,
                                     learncurve::PartitionKind::kIID, rng);
  for (const int64_t s : sizes) EXPECT_EQ(s, 5000);
}

TEST(ShardSizes, DirichletNearlySumsToTotal) {
  Rng rng(14);
  const auto sizes =
      shard_sizes_for(data::cifar10_spec(), 10,
                      learncurve::PartitionKind::kDirichlet05, rng);
  int64_t total = 0;
  for (const int64_t s : sizes) {
    EXPECT_GE(s, 1);
    total += s;
  }
  // Per-class floor rounding can drop at most one sample per (class, agent).
  EXPECT_LE(total, 50000);
  EXPECT_GE(total, 50000 - 10 * 10);
}

TEST(ShardSizes, DirichletLabelSkewSpreadsSizes) {
  Rng rng(15);
  const auto sizes =
      shard_sizes_for(data::cifar10_spec(), 10,
                      learncurve::PartitionKind::kDirichlet05, rng);
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  // Label-distribution skew varies shard sizes moderately (sums of
  // per-class Dirichlet draws), far from the IID equal split...
  EXPECT_GT(*mx, static_cast<int64_t>(1.3 * static_cast<double>(*mn)));
  // ...but never produces the single giant shard of quantity skew.
  EXPECT_LT(*mx, 5 * *mn);
}

}  // namespace
}  // namespace comdml::core
