// Layer-level tests: shape contracts, analytic-vs-numeric gradients, cost
// descriptors, and state collection.
#include <gtest/gtest.h>

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/norm.hpp"
#include "nn/resnet.hpp"
#include "test_util.hpp"

namespace comdml::nn {
namespace {

using comdml::testing::away_from_zero;
using comdml::testing::input_grad_error;
using comdml::testing::param_grad_error;

constexpr double kGradTol = 5e-2;

// ---- Linear -----------------------------------------------------------------

TEST(Linear, ForwardShape) {
  Rng rng(1);
  Linear fc(8, 3, rng);
  const Tensor y = fc.forward(rng.normal_tensor({5, 8}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({5, 3}));
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(1);
  Linear fc(8, 3, rng);
  EXPECT_THROW((void)fc.forward(Tensor({5, 7}), true),
               std::invalid_argument);
}

TEST(Linear, BiasIsApplied) {
  Rng rng(2);
  Linear fc(2, 2, rng);
  // Zero input isolates the bias (initialised to zero).
  const Tensor y = fc.forward(Tensor({1, 2}), true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
}

TEST(Linear, InputGradientMatchesNumeric) {
  Rng rng(3);
  Linear fc(6, 4, rng);
  const Tensor x = rng.normal_tensor({3, 6}, 0, 1);
  const Tensor g = rng.normal_tensor({3, 4}, 0, 1);
  EXPECT_LT(input_grad_error(fc, x, g), kGradTol);
}

TEST(Linear, ParamGradientMatchesNumeric) {
  Rng rng(4);
  Linear fc(5, 3, rng);
  const Tensor x = rng.normal_tensor({4, 5}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 3}, 0, 1);
  EXPECT_LT(param_grad_error(fc, x, g), kGradTol);
}

TEST(Linear, GradAccumulatesAcrossBatches) {
  Rng rng(5);
  Linear fc(2, 2, rng);
  const Tensor x = rng.normal_tensor({1, 2}, 0, 1);
  const Tensor g = rng.normal_tensor({1, 2}, 0, 1);
  (void)fc.forward(x, true);
  (void)fc.backward(g);
  const Tensor once = fc.parameters()[0]->grad;
  (void)fc.forward(x, true);
  (void)fc.backward(g);
  EXPECT_TRUE(tensor::allclose(fc.parameters()[0]->grad, tensor::scale(once, 2.0f), 1e-4f));
}

TEST(Linear, CostCountsMacsAndParams) {
  Rng rng(6);
  Linear fc(10, 4, rng);
  const LayerCost c = fc.cost({10});
  EXPECT_DOUBLE_EQ(c.flops_forward, 2.0 * 10 * 4);
  EXPECT_EQ(c.param_bytes, (10 * 4 + 4) * 4);
  EXPECT_EQ(c.out_shape, Shape({4}));
}

// ---- ReLU -------------------------------------------------------------------

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor::of({-1.f, 0.f, 2.f}), true);
  EXPECT_EQ(y, Tensor::of({0.f, 0.f, 2.f}));
}

TEST(ReLU, GradientMasksNegatives) {
  ReLU relu;
  (void)relu.forward(Tensor::of({-1.f, 2.f}), true);
  const Tensor dx = relu.backward(Tensor::of({5.f, 5.f}));
  EXPECT_EQ(dx, Tensor::of({0.f, 5.f}));
}

TEST(ReLU, InputGradientMatchesNumeric) {
  Rng rng(7);
  ReLU relu;
  const Tensor x = away_from_zero(rng, {2, 6});
  const Tensor g = rng.normal_tensor({2, 6}, 0, 1);
  EXPECT_LT(input_grad_error(relu, x, g), kGradTol);
}

TEST(ReLU, HasNoParameters) {
  ReLU relu;
  EXPECT_TRUE(relu.parameters().empty());
}

// ---- Flatten / GlobalAvgPool ------------------------------------------------

TEST(Flatten, CollapsesTrailingAxes) {
  Flatten f;
  const Tensor y = f.forward(Tensor({2, 3, 4, 4}), true);
  EXPECT_EQ(y.shape(), Shape({2, 48}));
}

TEST(Flatten, BackwardRestoresShape) {
  Flatten f;
  (void)f.forward(Tensor({2, 3, 2, 2}), true);
  const Tensor dx = f.backward(Tensor({2, 12}));
  EXPECT_EQ(dx.shape(), Shape({2, 3, 2, 2}));
}

TEST(GlobalAvgPool, AveragesSpatially) {
  GlobalAvgPool2d pool;
  Tensor x({1, 1, 2, 2}, {1.f, 2.f, 3.f, 6.f});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(GlobalAvgPool, InputGradientMatchesNumeric) {
  Rng rng(8);
  GlobalAvgPool2d pool;
  const Tensor x = rng.normal_tensor({2, 3, 4, 4}, 0, 1);
  const Tensor g = rng.normal_tensor({2, 3}, 0, 1);
  EXPECT_LT(input_grad_error(pool, x, g), kGradTol);
}

TEST(GlobalAvgPool, RejectsRank2) {
  GlobalAvgPool2d pool;
  EXPECT_THROW((void)pool.forward(Tensor({2, 3}), true),
               std::invalid_argument);
}

// ---- Conv2d -----------------------------------------------------------------

TEST(Conv2d, OutputGeometryStride1Pad1) {
  Rng rng(9);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  const Tensor y = conv.forward(rng.normal_tensor({2, 3, 8, 8}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({2, 8, 8, 8}));
}

TEST(Conv2d, OutputGeometryStride2) {
  Rng rng(10);
  Conv2d conv(4, 6, 3, 2, 1, rng);
  const Tensor y = conv.forward(rng.normal_tensor({1, 4, 8, 8}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({1, 6, 4, 4}));
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Rng rng(11);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.parameters()[0]->value.fill(1.0f);
  const Tensor x = rng.normal_tensor({1, 1, 3, 3}, 0, 1);
  EXPECT_TRUE(tensor::allclose(conv.forward(x, true), x, 1e-6f));
}

TEST(Conv2d, KnownConvolutionValue) {
  Rng rng(12);
  Conv2d conv(1, 1, 3, 1, 0, rng);
  conv.parameters()[0]->value.fill(1.0f);  // box filter
  Tensor x({1, 1, 3, 3}, {1, 1, 1, 1, 1, 1, 1, 1, 1});
  const Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 9.0f);
}

TEST(Conv2d, InputGradientMatchesNumeric) {
  Rng rng(13);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({2, 2, 5, 5}, 0, 1);
  const Tensor g = rng.normal_tensor({2, 3, 5, 5}, 0, 1);
  EXPECT_LT(input_grad_error(conv, x, g), kGradTol);
}

TEST(Conv2d, StridedInputGradientMatchesNumeric) {
  Rng rng(14);
  Conv2d conv(2, 2, 3, 2, 1, rng);
  const Tensor x = rng.normal_tensor({1, 2, 6, 6}, 0, 1);
  const Tensor g = rng.normal_tensor({1, 2, 3, 3}, 0, 1);
  EXPECT_LT(input_grad_error(conv, x, g), kGradTol);
}

TEST(Conv2d, ParamGradientMatchesNumeric) {
  Rng rng(15);
  Conv2d conv(2, 2, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({2, 2, 4, 4}, 0, 1);
  const Tensor g = rng.normal_tensor({2, 2, 4, 4}, 0, 1);
  EXPECT_LT(param_grad_error(conv, x, g), kGradTol);
}

TEST(Conv2d, PointwiseConvGradients) {
  Rng rng(16);
  Conv2d conv(4, 2, 1, 1, 0, rng);
  const Tensor x = rng.normal_tensor({2, 4, 3, 3}, 0, 1);
  const Tensor g = rng.normal_tensor({2, 2, 3, 3}, 0, 1);
  EXPECT_LT(input_grad_error(conv, x, g), kGradTol);
  EXPECT_LT(param_grad_error(conv, x, g), kGradTol);
}

TEST(Conv2d, CostMatchesArithmetic) {
  Rng rng(17);
  Conv2d conv(3, 16, 3, 1, 1, rng);
  const LayerCost c = conv.cost({3, 32, 32});
  EXPECT_DOUBLE_EQ(c.flops_forward, 2.0 * 9 * 3 * 16 * 32 * 32);
  EXPECT_EQ(c.out_shape, Shape({16, 32, 32}));
  EXPECT_EQ(c.param_bytes, 16 * 3 * 9 * 4);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(18);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW((void)conv.forward(Tensor({1, 2, 8, 8}), true),
               std::invalid_argument);
}

// ---- BatchNorm2d -------------------------------------------------------------

TEST(BatchNorm, NormalizesBatchStatistics) {
  Rng rng(19);
  BatchNorm2d bn(3);
  const Tensor x = rng.normal_tensor({8, 3, 4, 4}, 5.0f, 2.0f);
  const Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  const int64_t hw = 16, n = 8;
  auto yo = y.flat();
  for (int64_t c = 0; c < 3; ++c) {
    double mean = 0, var = 0;
    for (int64_t i = 0; i < n; ++i)
      for (int64_t k = 0; k < hw; ++k) mean += yo[(i * 3 + c) * hw + k];
    mean /= static_cast<double>(n * hw);
    for (int64_t i = 0; i < n; ++i)
      for (int64_t k = 0; k < hw; ++k) {
        const double d = yo[(i * 3 + c) * hw + k] - mean;
        var += d * d;
      }
    var /= static_cast<double>(n * hw);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  Rng rng(20);
  BatchNorm2d bn(2);
  // Run several training passes to move the running stats.
  for (int i = 0; i < 20; ++i)
    (void)bn.forward(rng.normal_tensor({4, 2, 3, 3}, 3.0f, 1.0f), true);
  const Tensor x = rng.normal_tensor({4, 2, 3, 3}, 3.0f, 1.0f);
  const Tensor y = bn.forward(x, false);
  // Eval output should be roughly centred (running mean ~3).
  EXPECT_NEAR(tensor::mean(y), 0.0f, 0.35f);
}

TEST(BatchNorm, InputGradientMatchesNumeric) {
  Rng rng(21);
  BatchNorm2d bn(2);
  const Tensor x = rng.normal_tensor({4, 2, 3, 3}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 2, 3, 3}, 0, 1);
  EXPECT_LT(input_grad_error(bn, x, g), kGradTol);
}

TEST(BatchNorm, ParamGradientMatchesNumeric) {
  Rng rng(22);
  BatchNorm2d bn(3);
  const Tensor x = rng.normal_tensor({4, 3, 2, 2}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 3, 2, 2}, 0, 1);
  EXPECT_LT(param_grad_error(bn, x, g), kGradTol);
}

TEST(BatchNorm, StateIncludesRunningStats) {
  BatchNorm2d bn(4);
  std::vector<Tensor*> state;
  bn.collect_state(state);
  EXPECT_EQ(state.size(), 4u);  // gamma, beta, running mean, running var
  EXPECT_EQ(bn.parameters().size(), 2u);
}

// ---- BasicBlock / Sequential -------------------------------------------------

TEST(BasicBlock, IdentityShortcutShape) {
  Rng rng(23);
  BasicBlock block(8, 8, 1, rng);
  const Tensor y =
      block.forward(rng.normal_tensor({2, 8, 4, 4}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({2, 8, 4, 4}));
}

TEST(BasicBlock, DownsampleShortcutShape) {
  Rng rng(24);
  BasicBlock block(8, 16, 2, rng);
  const Tensor y =
      block.forward(rng.normal_tensor({2, 8, 8, 8}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({2, 16, 4, 4}));
}

TEST(BasicBlock, InputGradientMatchesNumeric) {
  Rng rng(25);
  BasicBlock block(2, 2, 1, rng);
  const Tensor x = rng.normal_tensor({2, 2, 4, 4}, 0, 1);
  const Tensor g = rng.normal_tensor({2, 2, 4, 4}, 0, 1);
  EXPECT_LT(input_grad_error(block, x, g), kGradTol);
}

TEST(BasicBlock, DownsampleInputGradientMatchesNumeric) {
  Rng rng(26);
  BasicBlock block(2, 4, 2, rng);
  const Tensor x = rng.normal_tensor({1, 2, 4, 4}, 0, 1);
  const Tensor g = rng.normal_tensor({1, 4, 2, 2}, 0, 1);
  EXPECT_LT(input_grad_error(block, x, g), kGradTol);
}

TEST(BasicBlock, ParameterCounts) {
  Rng rng(27);
  BasicBlock identity(8, 8, 1, rng);
  BasicBlock downsample(8, 16, 2, rng);
  // identity: 2 convs + 2 BN(2 params each) = 2 + 4.
  EXPECT_EQ(identity.parameters().size(), 6u);
  // downsample adds a 1x1 conv + BN.
  EXPECT_EQ(downsample.parameters().size(), 9u);
}

TEST(Sequential, ForwardRangeComposes) {
  Rng rng(28);
  auto net = mlp({4, 8, 8, 3}, rng);
  const Tensor x = rng.normal_tensor({2, 4}, 0, 1);
  const Tensor full = net->forward(x, true);
  const Tensor mid = net->forward_range(x, 0, 1, true);
  const Tensor rest = net->forward_range(mid, 1, net->size(), true);
  EXPECT_TRUE(tensor::allclose(full, rest));
}

TEST(Sequential, BadRangeThrows) {
  Rng rng(29);
  auto net = mlp({4, 3}, rng);
  EXPECT_THROW((void)net->forward_range(Tensor({1, 4}), 0, 5, true),
               std::invalid_argument);
}

TEST(Sequential, CompositeGradientMatchesNumeric) {
  Rng rng(30);
  Sequential net;
  net.push(std::make_unique<Linear>(5, 7, rng));
  net.push(std::make_unique<ReLU>());
  net.push(std::make_unique<Linear>(7, 3, rng));
  const Tensor x = away_from_zero(rng, {2, 5});
  const Tensor g = rng.normal_tensor({2, 3}, 0, 1);
  EXPECT_LT(input_grad_error(net, x, g), kGradTol);
  EXPECT_LT(param_grad_error(net, x, g), kGradTol);
}

TEST(Sequential, UnitCostsChainShapes) {
  Rng rng(31);
  auto net = small_cnn(3, 10, rng);
  const auto costs = net->unit_costs({3, 8, 8});
  ASSERT_EQ(costs.size(), net->size());
  EXPECT_EQ(costs.back().out_shape, Shape({10}));
}

TEST(StateHelpers, SaveLoadRoundTrip) {
  Rng rng(32);
  auto a = mlp({4, 6, 3}, rng);
  auto b = mlp({4, 6, 3}, rng);
  const Tensor x = rng.normal_tensor({2, 4}, 0, 1);
  EXPECT_FALSE(
      tensor::allclose(a->forward(x, false), b->forward(x, false)));
  nn::load_state(*b, nn::state_of(*a));
  EXPECT_TRUE(
      tensor::allclose(a->forward(x, false), b->forward(x, false)));
}

TEST(StateHelpers, LoadRejectsArityMismatch) {
  Rng rng(33);
  auto a = mlp({4, 6, 3}, rng);
  auto b = mlp({4, 3}, rng);
  EXPECT_THROW(nn::load_state(*b, nn::state_of(*a)), std::invalid_argument);
}

TEST(StateHelpers, ParameterCountMlp) {
  Rng rng(34);
  auto net = mlp({4, 6, 3}, rng);
  EXPECT_EQ(nn::parameter_count(*net), 4 * 6 + 6 + 6 * 3 + 3);
}

}  // namespace
}  // namespace comdml::nn
