// comm::Transport substrate tests: link grids, message accounting, the
// per-protocol parity guarantee (SimTransport predicted seconds/bytes ==
// InProcTransport executed traffic, one check per registered collective),
// degenerate topologies, codec hooks, fault injection, and thread safety.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <thread>

#include "comm/allreduce.hpp"
#include "comm/collective.hpp"
#include "comm/reliable.hpp"
#include "comm/transport.hpp"

namespace comdml::comm {
namespace {

using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;

std::vector<std::vector<double>> random_buffers(int64_t k, int64_t elems,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> bufs(static_cast<size_t>(k));
  for (auto& b : bufs) {
    b.resize(static_cast<size_t>(elems));
    for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
  }
  return bufs;
}

std::vector<double*> pointers(std::vector<std::vector<double>>& bufs) {
  std::vector<double*> ptrs;
  ptrs.reserve(bufs.size());
  for (auto& b : bufs) ptrs.push_back(b.data());
  return ptrs;
}

std::vector<double> mean_of(const std::vector<std::vector<double>>& bufs) {
  std::vector<double> mean(bufs[0].size(), 0.0);
  for (const auto& b : bufs)
    for (size_t i = 0; i < b.size(); ++i) mean[i] += b[i];
  for (auto& v : mean) v /= static_cast<double>(bufs.size());
  return mean;
}

// ---- link grid -------------------------------------------------------------

TEST(LinkGrid, UniformHasNoSelfLinks) {
  const auto grid = LinkGrid::uniform(4, 100.0);
  EXPECT_EQ(grid.endpoints(), 4);
  EXPECT_FALSE(grid.link(2, 2).usable());
  EXPECT_TRUE(grid.link(0, 3).usable());
  EXPECT_DOUBLE_EQ(grid.link(0, 3).mbps, 100.0);
}

TEST(LinkGrid, FromTopologyRespectsAdjacency) {
  std::vector<ResourceProfile> profiles(4, {1.0, 50.0});
  const auto topo = Topology::ring(profiles);
  const auto grid = LinkGrid::from_topology(topo);
  EXPECT_TRUE(grid.link(0, 1).usable());
  EXPECT_FALSE(grid.link(0, 2).usable());  // not a ring edge
  EXPECT_DOUBLE_EQ(grid.link(0, 1).mbps, 50.0);
}

TEST(LinkGrid, StarLinksAgentsToServerOnly) {
  const auto grid = LinkGrid::star({10.0, 20.0});
  EXPECT_EQ(grid.endpoints(), 3);
  EXPECT_EQ(grid.server_rank(), 2);
  EXPECT_TRUE(grid.link(0, 2).usable());
  EXPECT_TRUE(grid.link(2, 1).usable());
  EXPECT_FALSE(grid.link(0, 1).usable());  // peers only talk via the server
}

// ---- transport accounting --------------------------------------------------

TEST(Transport, ZeroByteMessageStillPaysLatency) {
  SimTransport t(LinkGrid::uniform(2, 10.0, 0.005));
  t.send(0, 1, 0);
  t.end_step();
  EXPECT_EQ(t.stats().steps, 1);
  EXPECT_EQ(t.stats().total_wire_bytes, 0);
  EXPECT_DOUBLE_EQ(t.stats().seconds, 0.005);
}

TEST(Transport, StepSpanIsSlowestConcurrentMessage) {
  // 1 MB and 2 MB over 8 Mbps in one step: the span is the 2 MB transfer.
  SimTransport t(LinkGrid::uniform(3, 8.0, 0.0));
  t.send(0, 1, 250'000);  // 1 MB wire
  t.send(1, 2, 500'000);  // 2 MB wire
  t.end_step();
  EXPECT_DOUBLE_EQ(t.stats().seconds, 2.0);
  EXPECT_EQ(t.stats().bytes_sent[0], 1'000'000);
  EXPECT_EQ(t.stats().bytes_sent[1], 2'000'000);
  EXPECT_EQ(t.stats().bytes_received[2], 2'000'000);
}

TEST(Transport, SendOverUnusableLinkThrows) {
  std::vector<ResourceProfile> profiles(3, {1.0, 100.0});
  const auto topo = Topology::ring(profiles);
  InProcTransport t(LinkGrid::from_topology(topo));
  EXPECT_THROW(t.send(0, 0, 1), std::invalid_argument);
  // Ring of 3 is fully linked; build a 4-ring to get a missing chord.
  std::vector<ResourceProfile> p4(4, {1.0, 100.0});
  InProcTransport t4(LinkGrid::from_topology(Topology::ring(p4)));
  EXPECT_THROW(t4.send(0, 2, 1), std::invalid_argument);
}

TEST(Transport, MatchedRecvIsFifoPerSource) {
  InProcTransport t(LinkGrid::uniform(3, 100.0));
  const double a = 1.0, b = 2.0, c = 3.0;
  t.send(0, 2, 1, &a);
  t.send(1, 2, 1, &b);
  t.send(0, 2, 1, &c);
  EXPECT_DOUBLE_EQ(t.recv(2, 0).payload[0], 1.0);
  EXPECT_DOUBLE_EQ(t.recv(2, 1).payload[0], 2.0);
  EXPECT_DOUBLE_EQ(t.recv(2, 0).payload[0], 3.0);
  EXPECT_THROW((void)t.recv(2, 0), std::invalid_argument);
}

TEST(Transport, ResetClearsStatsAndMailboxes) {
  InProcTransport t(LinkGrid::uniform(2, 100.0));
  const double v = 4.0;
  t.send(0, 1, 1, &v);
  t.end_step();
  t.reset();
  EXPECT_EQ(t.stats().messages, 0);
  EXPECT_EQ(t.stats().steps, 0);
  EXPECT_FALSE(t.try_recv(1).has_value());
}

// ---- per-protocol parity: predicted == executed ----------------------------

/// The acceptance invariant of the Transport API: for every registered
/// collective, a timing-only SimTransport run predicts exactly the
/// seconds/steps/bytes the InProcTransport execution produces, because
/// both are the same schedule.
void expect_stats_equal(const TransportStats& sim,
                        const TransportStats& real) {
  EXPECT_EQ(sim.steps, real.steps);
  EXPECT_EQ(sim.messages, real.messages);
  EXPECT_EQ(sim.total_wire_bytes, real.total_wire_bytes);
  EXPECT_DOUBLE_EQ(sim.seconds, real.seconds);
  ASSERT_EQ(sim.bytes_sent.size(), real.bytes_sent.size());
  for (size_t i = 0; i < sim.bytes_sent.size(); ++i) {
    EXPECT_EQ(sim.bytes_sent[i], real.bytes_sent[i]) << "agent " << i;
    EXPECT_EQ(sim.bytes_received[i], real.bytes_received[i]) << "agent "
                                                             << i;
  }
}

class AllReduceParityP
    : public ::testing::TestWithParam<std::tuple<int, Protocol>> {};

TEST_P(AllReduceParityP, SimPredictsExecutedTrafficExactly) {
  const auto [k, protocol] = GetParam();
  const int64_t elems = 103;  // deliberately not divisible by k

  SimTransport sim(LinkGrid::uniform(k, 100.0));
  CollectiveRequest predict;
  predict.elems = elems;
  (void)collective(protocol).run(sim, predict);

  auto bufs = random_buffers(k, elems, 1000 + static_cast<uint64_t>(k));
  const auto expected = mean_of(bufs);
  InProcTransport real(LinkGrid::uniform(k, 100.0));
  CollectiveRequest execute;
  execute.elems = elems;
  execute.buffers = pointers(bufs);
  (void)collective(protocol).run(real, execute);

  expect_stats_equal(sim.stats(), real.stats());
  for (int a = 0; a < k; ++a)
    for (size_t i = 0; i < expected.size(); ++i)
      EXPECT_NEAR(bufs[static_cast<size_t>(a)][i], expected[i], 1e-12)
          << "agent " << a << " elem " << i;
}

INSTANTIATE_TEST_SUITE_P(
    FleetSizes, AllReduceParityP,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16),
        ::testing::Values(Protocol::kRingAllReduce,
                          Protocol::kHalvingDoublingAllReduce)));

TEST(GossipParity, SimPredictsExecutedTrafficExactly) {
  Rng topo_rng(7);
  std::vector<ResourceProfile> profiles(9, {1.0, 40.0});
  const auto topo = Topology::random_graph(profiles, 0.5, topo_rng);
  const int64_t elems = 17;

  Rng sim_rng(21), real_rng(21);  // identical partner draws
  SimTransport sim(LinkGrid::from_topology(topo));
  CollectiveRequest predict;
  predict.elems = elems;
  predict.rng = &sim_rng;
  const auto sim_rep = collective(Protocol::kGossip).run(sim, predict);

  auto bufs = random_buffers(9, elems, 77);
  InProcTransport real(LinkGrid::from_topology(topo));
  CollectiveRequest execute;
  execute.elems = elems;
  execute.buffers = pointers(bufs);
  execute.rng = &real_rng;
  const auto real_rep = collective(Protocol::kGossip).run(real, execute);

  ASSERT_EQ(sim_rep.partners.size(), real_rep.partners.size());
  for (size_t i = 0; i < sim_rep.partners.size(); ++i)
    EXPECT_EQ(sim_rep.partners[i], real_rep.partners[i]);
  expect_stats_equal(sim.stats(), real.stats());
}

TEST(ParamServerParity, SimPredictsExecutedTrafficExactly) {
  const auto grid = LinkGrid::star({10.0, 20.0, 50.0});
  const int64_t elems = 31;

  SimTransport sim(grid);
  CollectiveRequest predict;
  predict.elems = elems;
  predict.weights = {1.0, 2.0, 3.0};
  (void)collective(Protocol::kParamServer).run(sim, predict);

  auto bufs = random_buffers(3, elems, 5);
  std::vector<double> expected(static_cast<size_t>(elems), 0.0);
  for (size_t a = 0; a < 3; ++a)
    for (size_t i = 0; i < expected.size(); ++i)
      expected[i] += (a + 1) / 6.0 * bufs[a][i];
  InProcTransport real(grid);
  CollectiveRequest execute;
  execute.elems = elems;
  execute.weights = {1.0, 2.0, 3.0};
  execute.buffers = pointers(bufs);
  (void)collective(Protocol::kParamServer).run(real, execute);

  expect_stats_equal(sim.stats(), real.stats());
  for (size_t a = 0; a < 3; ++a)
    for (size_t i = 0; i < expected.size(); ++i)
      EXPECT_NEAR(bufs[a][i], expected[i], 1e-12);
  // Every agent uploads once and downloads once over its own link.
  EXPECT_EQ(real.stats().bytes_sent[0], elems * 4);
  EXPECT_EQ(real.stats().bytes_received[0], elems * 4);
  EXPECT_EQ(real.stats().bytes_sent[3], 3 * elems * 4);  // server drain
}

// ---- degenerate topologies -------------------------------------------------

TEST(Degenerate, SingleAgentCollectivesAreFree) {
  for (const Protocol p :
       {Protocol::kRingAllReduce, Protocol::kHalvingDoublingAllReduce}) {
    InProcTransport t(LinkGrid::uniform(1, 100.0));
    auto bufs = random_buffers(1, 11, 3);
    const auto before = bufs[0];
    CollectiveRequest req;
    req.elems = 11;
    req.buffers = pointers(bufs);
    (void)collective(p).run(t, req);
    EXPECT_EQ(t.stats().messages, 0);
    EXPECT_EQ(t.stats().steps, 0);
    EXPECT_DOUBLE_EQ(t.stats().seconds, 0.0);
    EXPECT_EQ(bufs[0], before);
  }
}

TEST(Degenerate, GossipOnDisconnectedComponentsStaysLocal) {
  // Two 2-cliques with no cross link: averages must not leak across.
  std::vector<ResourceProfile> profiles(4, {1.0, 100.0});
  Rng rng(2);
  auto topo = Topology::random_graph(profiles, 0.0, rng);  // no links at all
  auto grid = LinkGrid::from_topology(topo);
  grid.link(0, 1) = grid.link(1, 0) = LinkModel{100.0};
  grid.link(2, 3) = grid.link(3, 2) = LinkModel{100.0};

  std::vector<std::vector<double>> bufs{{0.0}, {10.0}, {100.0}, {200.0}};
  InProcTransport t(std::move(grid));
  CollectiveRequest req;
  req.elems = 1;
  req.buffers = pointers(bufs);
  Rng grng(5);
  req.rng = &grng;
  (void)collective(Protocol::kGossip).run(t, req);
  // Both members of each clique push to each other: exact pairwise means.
  EXPECT_DOUBLE_EQ(bufs[0][0], 5.0);
  EXPECT_DOUBLE_EQ(bufs[1][0], 5.0);
  EXPECT_DOUBLE_EQ(bufs[2][0], 150.0);
  EXPECT_DOUBLE_EQ(bufs[3][0], 150.0);
}

TEST(Degenerate, GossipIsolatedAgentSitsOut) {
  std::vector<ResourceProfile> profiles{{1, 100}, {1, 100}, {1, 0}};
  const auto topo = Topology::full_mesh(profiles);
  std::vector<std::vector<double>> bufs{{1.0}, {3.0}, {42.0}};
  InProcTransport t(LinkGrid::from_topology(topo));
  CollectiveRequest req;
  req.elems = 1;
  req.buffers = pointers(bufs);
  Rng rng(6);
  req.rng = &rng;
  const auto rep = collective(Protocol::kGossip).run(t, req);
  EXPECT_FALSE(rep.partners[2].has_value());
  EXPECT_DOUBLE_EQ(bufs[2][0], 42.0);  // untouched
  EXPECT_DOUBLE_EQ(bufs[0][0], 2.0);
  EXPECT_DOUBLE_EQ(bufs[1][0], 2.0);
}

// ---- codec hooks -----------------------------------------------------------

TEST(Codecs, IdentityChargesFourBytesPerElement) {
  EXPECT_EQ(identity_codec().wire_bytes(10, nullptr), 40);
}

TEST(Codecs, QuantizedWireBytesAreDataIndependent) {
  // The dense int8 wire format (4-byte scale + 1 byte/element) never
  // depends on the payload, so a timing-only SimTransport charges the
  // exact bytes an InProcTransport executes — no assumed ratio anywhere.
  std::vector<double> data(256);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = (i % 2 == 0) ? 0.0 : static_cast<double>(i) / 256.0;
  QuantizingCodec codec;
  const int64_t elems = static_cast<int64_t>(data.size());
  EXPECT_EQ(codec.wire_bytes(elems, data.data()),
            QuantizingCodec::quantized_wire_bytes(elems));
  EXPECT_EQ(codec.wire_bytes(elems, nullptr),
            QuantizingCodec::quantized_wire_bytes(elems));
  EXPECT_EQ(QuantizingCodec::quantized_wire_bytes(elems), 4 + elems);
  EXPECT_EQ(QuantizingCodec::quantized_wire_bytes(0), 0);
  // >= 3x smaller than the fp32 wire for bucket-sized payloads.
  EXPECT_LE(4 * QuantizingCodec::quantized_wire_bytes(elems),
            identity_codec().wire_bytes(elems, nullptr) * 4 / 3);
}

TEST(Codecs, QuantizingCodecRoundTripIsBoundedLossy) {
  // Signed payloads survive (gradients/parameters are signed); error is
  // bounded by the int8 resolution of the dynamic range.
  std::vector<double> data(64);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = (i % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(i) / 64.0;
  const auto original = data;
  QuantizingCodec codec;
  codec.transform(data.data(), static_cast<int64_t>(data.size()));
  double max_abs = 0.0;
  for (const double v : original) max_abs = std::max(max_abs, std::fabs(v));
  for (size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(data[i], original[i], max_abs / 127.0);
  // All-zero payloads round-trip exactly.
  std::vector<double> zeros(8, 0.0);
  codec.transform(zeros.data(), 8);
  for (const double v : zeros) EXPECT_EQ(v, 0.0);
  // Degenerate dynamic ranges (non-finite or fp32-underflowing scale)
  // ship unquantized instead of NaN-poisoning the finite elements.
  std::vector<double> inf_payload{1.0, std::numeric_limits<double>::infinity(),
                                  -2.0, 0.0};
  codec.transform(inf_payload.data(), 4);
  EXPECT_EQ(inf_payload[0], 1.0);
  EXPECT_EQ(inf_payload[2], -2.0);
  EXPECT_EQ(inf_payload[3], 0.0);
  std::vector<double> tiny(4, 1e-60);  // below the fp32 normal range
  codec.transform(tiny.data(), 4);
  for (const double v : tiny) EXPECT_EQ(v, 1e-60);
}

TEST(Codecs, TransportAppliesCodecToDeliveredPayload) {
  QuantizingCodec codec;
  InProcTransport t(LinkGrid::uniform(2, 100.0), &codec);
  std::vector<double> data(32);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>(i) / 32.0 - 0.5;
  t.send(0, 1, static_cast<int64_t>(data.size()), data.data());
  const auto msg = t.recv(1, 0);
  ASSERT_TRUE(msg.has_payload());
  EXPECT_EQ(msg.wire_bytes, QuantizingCodec::quantized_wire_bytes(32));
  EXPECT_LT(msg.wire_bytes, 32 * 4);
  for (size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(msg.payload[i], data[i], 0.5 / 127.0);
}

// The tentpole parity invariant for compressed collectives: with the
// quantized codec on both transports, a timing-only SimTransport run of an
// allreduce predicts exactly the wire bytes (and modeled clock) the
// InProcTransport execution produces, because the dense wire format is a
// pure function of the schedule.
class QuantizedParityP
    : public ::testing::TestWithParam<std::tuple<int, Protocol>> {};

TEST_P(QuantizedParityP, SimPredictsExecutedQuantizedBytesExactly) {
  const auto [k, protocol] = GetParam();
  const int64_t elems = 103;  // deliberately not divisible by k

  SimTransport sim(LinkGrid::uniform(k, 100.0), &quantized_codec());
  CollectiveRequest predict;
  predict.elems = elems;
  (void)collective(protocol).run(sim, predict);

  auto bufs = random_buffers(k, elems, 3000 + static_cast<uint64_t>(k));
  InProcTransport real(LinkGrid::uniform(k, 100.0), &quantized_codec());
  CollectiveRequest execute;
  execute.elems = elems;
  execute.buffers = pointers(bufs);
  (void)collective(protocol).run(real, execute);

  expect_stats_equal(sim.stats(), real.stats());
  if (k > 1) {
    // The quantized schedule really is cheaper on the wire than fp32.
    SimTransport fp32(LinkGrid::uniform(k, 100.0));
    CollectiveRequest raw;
    raw.elems = elems;
    (void)collective(protocol).run(fp32, raw);
    EXPECT_LT(real.stats().total_wire_bytes,
              fp32.stats().total_wire_bytes / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FleetSizes, QuantizedParityP,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 5, 8, 12),
        ::testing::Values(Protocol::kRingAllReduce,
                          Protocol::kHalvingDoublingAllReduce)));

// ---- fault injection -------------------------------------------------------

TEST(Faults, DroppedMessagesNeverArriveButStillPayTheLink) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, plan);
  const double v = 1.0;
  t.send(0, 1, 1, &v);
  t.end_step();
  EXPECT_EQ(t.stats().dropped_messages, 1);
  EXPECT_EQ(t.stats().bytes_sent[0], 4);      // transmitted
  EXPECT_EQ(t.stats().bytes_received[1], 0);  // never delivered
  EXPECT_FALSE(t.try_recv(1).has_value());
}

TEST(Faults, TotallyLossyGossipTimesOutWithStatesUntouched) {
  // Message faults route gossip through ReliableChannel; when every copy
  // (original and all retransmissions) is dropped, the receive exhausts its
  // retry budget and surfaces a typed timeout instead of silently averaging
  // fewer pushes. No buffer is mutated before the failure.
  std::vector<ResourceProfile> profiles(4, {1.0, 100.0});
  const auto topo = Topology::full_mesh(profiles);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  InProcTransport t(LinkGrid::from_topology(topo), nullptr, plan);
  auto bufs = random_buffers(4, 5, 9);
  const auto before = bufs;
  CollectiveRequest req;
  req.elems = 5;
  req.buffers = pointers(bufs);
  Rng rng(11);
  req.rng = &rng;
  EXPECT_THROW((void)collective(Protocol::kGossip).run(t, req),
               DeliveryTimeoutError);
  // 4 dropped originals plus one full retry budget on the first edge.
  EXPECT_EQ(t.stats().dropped_messages, 4 + RetryPolicy{}.max_retries);
  for (size_t a = 0; a < 4; ++a) EXPECT_EQ(bufs[a], before[a]);
}

TEST(Faults, DeterministicDropScheduleMatchesAcrossTransports) {
  FaultPlan plan;
  plan.drop_prob = 0.5;
  plan.seed = 123;
  SimTransport sim(LinkGrid::uniform(2, 100.0), nullptr, plan);
  InProcTransport real(LinkGrid::uniform(2, 100.0), nullptr, plan);
  for (int i = 0; i < 64; ++i) {
    sim.send(0, 1, 1);
    real.send(0, 1, 1);
  }
  EXPECT_GT(sim.stats().dropped_messages, 0);
  EXPECT_LT(sim.stats().dropped_messages, 64);
  EXPECT_EQ(sim.stats().dropped_messages, real.stats().dropped_messages);
}

// ---- thread safety ---------------------------------------------------------

TEST(Threading, ConcurrentSendsAndRecvsStayConsistent) {
  // Four disjoint (src, dst) flows hammer one transport concurrently; the
  // per-flow FIFO and the aggregate accounting must both survive.
  InProcTransport t(LinkGrid::uniform(8, 100.0));
  constexpr int kMessages = 200;
  std::vector<std::thread> threads;
  for (int f = 0; f < 4; ++f) {
    threads.emplace_back([&t, f] {
      const int64_t src = 2 * f, dst = 2 * f + 1;
      for (int m = 0; m < kMessages; ++m) {
        const double v = static_cast<double>(m);
        t.send(src, dst, 1, &v);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.stats().messages, 4 * kMessages);
  EXPECT_EQ(t.stats().total_wire_bytes, 4 * kMessages * 4);
  for (int f = 0; f < 4; ++f) {
    const int64_t src = 2 * f, dst = 2 * f + 1;
    for (int m = 0; m < kMessages; ++m)
      EXPECT_DOUBLE_EQ(t.recv(dst, src).payload[0],
                       static_cast<double>(m));
  }
}

// ---- registry --------------------------------------------------------------

TEST(Registry, EveryProtocolResolvesByEnumAndName) {
  const auto names = collective_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto name : names) {
    const Collective* c = find_collective(name);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), name);
  }
  EXPECT_EQ(find_collective("carrier-pigeon"), nullptr);
  EXPECT_EQ(collective(Protocol::kRingAllReduce).name(), "ring_allreduce");
  EXPECT_EQ(collective(Protocol::kHalvingDoublingAllReduce).name(),
            "halving_doubling_allreduce");
  EXPECT_EQ(collective(Protocol::kGossip).name(), "gossip");
  EXPECT_EQ(collective(Protocol::kParamServer).name(), "param_server");
}

// ---- stepped schedules -----------------------------------------------------

TEST(SteppedSchedule, BlockingRunExecutesExactlyTheScheduleSteps) {
  // The stepped schedule is the single source of truth for ring and
  // halving/doubling: the registry's blocking run must produce one
  // transport step (and one message per scheduled send) per schedule step.
  for (const Protocol p :
       {Protocol::kRingAllReduce, Protocol::kHalvingDoublingAllReduce}) {
    for (const int k : {2, 5, 8}) {
      const int64_t elems = 97;
      const auto sched = allreduce_schedule(p, k, elems);
      int64_t scheduled_messages = 0;
      for (const auto& step : sched.steps) {
        scheduled_messages += static_cast<int64_t>(step.sends.size());
        EXPECT_EQ(step.sends.size(), step.recvs.size());
      }
      SimTransport t(LinkGrid::uniform(k, 100.0));
      CollectiveRequest req;
      req.elems = elems;
      (void)collective(p).run(t, req);
      EXPECT_EQ(t.stats().steps,
                static_cast<int64_t>(sched.steps.size()))
          << collective(p).name() << " k=" << k;
      EXPECT_EQ(t.stats().messages, scheduled_messages)
          << collective(p).name() << " k=" << k;
    }
  }
}

// ---- shim equivalence ------------------------------------------------------

TEST(Shims, AllReduceCostMatchesTransportRun) {
  // The historical allreduce_cost() is now literally a SimTransport run;
  // spot-check it against a hand-built transport.
  const int64_t k = 8, bytes = 4'000'000;
  const auto cost = allreduce_cost(k, bytes, 100.0, AllReduceAlgo::kRing);
  SimTransport t(LinkGrid::uniform(k, 100.0));
  CollectiveRequest req;
  req.elems = fp32_wire_elems(bytes);
  (void)collective(Protocol::kRingAllReduce).run(t, req);
  EXPECT_EQ(cost.steps, t.stats().steps);
  EXPECT_EQ(cost.bytes_per_agent, t.stats().max_bytes_sent());
  EXPECT_DOUBLE_EQ(cost.seconds, t.stats().seconds);
}

}  // namespace
}  // namespace comdml::comm
