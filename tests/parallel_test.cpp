// Parallel-compute subsystem tests: thread-pool semantics, parity of the
// blocked/parallel matmul and im2col conv kernels against the kept naive
// references, and bit-exact determinism of fleet rounds across thread
// counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"
#include "core/real_fleet.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/conv.hpp"
#include "tensor/ops.hpp"

namespace comdml {
namespace {

using core::parallel_for;
using core::set_num_threads;
using tensor::Rng;
using tensor::Tensor;

/// Thread counts every parity case is exercised under.
const int kThreadCounts[] = {1, 2, 8};

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { set_num_threads(0); }  // restore env default
};

// ---- parallel_for semantics ------------------------------------------------

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadCountGuard guard;
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  parallel_for(7, 3, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsInlineAsOneChunk) {
  ThreadCountGuard guard;
  set_num_threads(8);
  int calls = 0;
  parallel_for(0, 10, 64, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard;
  set_num_threads(4);
  std::atomic<int64_t> total{0};
  parallel_for(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // Nested region: must complete inline without deadlock.
      parallel_for(0, 100, 1, [&](int64_t l2, int64_t h2) {
        total.fetch_add(h2 - l2, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadCountGuard guard;
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(0, 1000, 1,
                   [](int64_t lo, int64_t) {
                     if (lo >= 0) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<int64_t> n{0};
  parallel_for(0, 100, 1, [&](int64_t lo, int64_t hi) {
    n.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(), 100);
}

TEST(ParallelConfig, SetNumThreadsOverridesAndEnvRestores) {
  ThreadCountGuard guard;
  set_num_threads(3);
  EXPECT_EQ(core::num_threads(), 3);
  ::setenv("COMDML_NUM_THREADS", "2", 1);
  set_num_threads(0);  // re-read environment
  EXPECT_EQ(core::num_threads(), 2);
  ::unsetenv("COMDML_NUM_THREADS");
  set_num_threads(0);
  EXPECT_GE(core::num_threads(), 1);
}

// ---- matmul parity ---------------------------------------------------------

struct MatmulShape {
  int64_t m, k, n;
};

// Mix of tile-aligned and ragged shapes: M/N/K off the 6x16 register tile
// and the MC/KC/NC pack blocks, plus degenerate 1xKx1 / K=1 edges, so the
// packed-panel GEMM's zero-padded edge tiles are all exercised.
const MatmulShape kMatmulShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {17, 1, 9},    {1, 33, 1},
    {5, 64, 3},   {33, 65, 19},  {64, 64, 64},  {129, 31, 77},
    {6, 16, 16},  {7, 17, 33},   {1, 300, 1},   {2, 1, 5},
    {12, 32, 48}, {13, 259, 31}, {97, 63, 130}, {100, 80, 96},
};

TEST(KernelParity, MatmulMatchesReferenceAcrossThreads) {
  ThreadCountGuard guard;
  for (const auto& s : kMatmulShapes) {
    Rng rng(11);
    const Tensor a = rng.normal_tensor({s.m, s.k}, 0, 1);
    const Tensor b = rng.normal_tensor({s.k, s.n}, 0, 1);
    const Tensor ref = tensor::matmul_reference(a, b);
    for (const int t : kThreadCounts) {
      set_num_threads(t);
      EXPECT_TRUE(tensor::allclose(tensor::matmul(a, b), ref, 1e-4f))
          << "matmul " << s.m << "x" << s.k << "x" << s.n << " at " << t
          << " threads";
    }
  }
}

TEST(KernelParity, MatmulTnMatchesReferenceAcrossThreads) {
  ThreadCountGuard guard;
  for (const auto& s : kMatmulShapes) {
    Rng rng(12);
    const Tensor a = rng.normal_tensor({s.k, s.m}, 0, 1);  // stored [K,M]
    const Tensor b = rng.normal_tensor({s.k, s.n}, 0, 1);
    const Tensor ref = tensor::matmul_tn_reference(a, b);
    for (const int t : kThreadCounts) {
      set_num_threads(t);
      EXPECT_TRUE(tensor::allclose(tensor::matmul_tn(a, b), ref, 1e-4f))
          << "matmul_tn " << s.m << "x" << s.k << "x" << s.n << " at " << t
          << " threads";
    }
  }
}

TEST(KernelParity, MatmulNtMatchesReferenceAcrossThreads) {
  ThreadCountGuard guard;
  for (const auto& s : kMatmulShapes) {
    Rng rng(13);
    const Tensor a = rng.normal_tensor({s.m, s.k}, 0, 1);
    const Tensor b = rng.normal_tensor({s.n, s.k}, 0, 1);  // stored [N,K]
    const Tensor ref = tensor::matmul_nt_reference(a, b);
    for (const int t : kThreadCounts) {
      set_num_threads(t);
      EXPECT_TRUE(tensor::allclose(tensor::matmul_nt(a, b), ref, 1e-4f))
          << "matmul_nt " << s.m << "x" << s.k << "x" << s.n << " at " << t
          << " threads";
    }
  }
}

TEST(KernelParity, MatmulBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(14);
  const Tensor a = rng.normal_tensor({129, 65}, 0, 1);
  const Tensor b = rng.normal_tensor({65, 93}, 0, 1);
  set_num_threads(1);
  const Tensor c1 = tensor::matmul(a, b);
  set_num_threads(8);
  const Tensor c8 = tensor::matmul(a, b);
  EXPECT_EQ(c1, c8);  // exact float equality, not allclose
}

TEST(KernelParity, MatmulTnNtBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(15);
  const Tensor at = rng.normal_tensor({65, 129}, 0, 1);  // stored [K,M]
  const Tensor b = rng.normal_tensor({65, 93}, 0, 1);
  const Tensor a = rng.normal_tensor({129, 65}, 0, 1);
  const Tensor bt = rng.normal_tensor({93, 65}, 0, 1);  // stored [N,K]
  set_num_threads(1);
  const Tensor tn1 = tensor::matmul_tn(at, b);
  const Tensor nt1 = tensor::matmul_nt(a, bt);
  set_num_threads(8);
  EXPECT_EQ(tn1, tensor::matmul_tn(at, b));
  EXPECT_EQ(nt1, tensor::matmul_nt(a, bt));
}

// ---- conv parity -----------------------------------------------------------

struct ConvCase {
  int64_t n, cin, cout, h, w, k, stride, pad;
};

const ConvCase kConvCases[] = {
    {2, 3, 4, 8, 8, 3, 1, 1},   // ResNet-style same conv
    {3, 2, 5, 7, 5, 3, 2, 0},   // odd extents, stride 2, no pad
    {1, 4, 4, 9, 9, 1, 1, 0},   // 1x1 pointwise
    {2, 1, 3, 11, 7, 5, 2, 2},  // big kernel, stride + pad
    {4, 8, 8, 16, 16, 3, 1, 1},
    // Multi-sample batched-GEMM shapes: the whole batch runs through one
    // GEMM per layer (B-panel packed once), incl. odd extents + stride.
    {8, 4, 6, 10, 10, 3, 1, 1},
    {6, 2, 3, 9, 7, 3, 2, 1},
    {16, 3, 5, 6, 6, 3, 1, 0},
};

TEST(KernelParity, ConvForwardMatchesReferenceAcrossThreads) {
  ThreadCountGuard guard;
  for (const auto& c : kConvCases) {
    Rng rng(21);
    nn::Conv2d conv(c.cin, c.cout, c.k, c.stride, c.pad, rng);
    const Tensor x = rng.normal_tensor({c.n, c.cin, c.h, c.w}, 0, 1);
    Rng wrng(21);
    const Tensor w =
        wrng.he_normal({c.cout, c.cin, c.k, c.k}, c.cin * c.k * c.k);
    const Tensor ref = nn::conv2d_reference_forward(x, w, c.stride, c.pad);
    for (const int t : kThreadCounts) {
      set_num_threads(t);
      EXPECT_TRUE(tensor::allclose(conv.forward(x, true), ref, 1e-4f))
          << "conv fwd n=" << c.n << " k=" << c.k << " s=" << c.stride
          << " p=" << c.pad << " at " << t << " threads";
    }
  }
}

TEST(KernelParity, ConvBackwardMatchesReferenceAcrossThreads) {
  ThreadCountGuard guard;
  for (const auto& c : kConvCases) {
    Rng rng(22);
    nn::Conv2d conv(c.cin, c.cout, c.k, c.stride, c.pad, rng);
    const Tensor x = rng.normal_tensor({c.n, c.cin, c.h, c.w}, 0, 1);
    Rng wrng(22);
    const Tensor w =
        wrng.he_normal({c.cout, c.cin, c.k, c.k}, c.cin * c.k * c.k);
    const int64_t ho = (c.h + 2 * c.pad - c.k) / c.stride + 1;
    const int64_t wo = (c.w + 2 * c.pad - c.k) / c.stride + 1;
    const Tensor g = rng.normal_tensor({c.n, c.cout, ho, wo}, 0, 1);
    Tensor dw_ref(w.shape());
    const Tensor dx_ref =
        nn::conv2d_reference_backward(x, w, g, c.stride, c.pad, dw_ref);
    for (const int t : kThreadCounts) {
      set_num_threads(t);
      std::vector<nn::Parameter*> params;
      conv.collect_parameters(params);
      ASSERT_EQ(params.size(), 1u);
      params[0]->grad.fill(0.0f);
      (void)conv.forward(x, true);
      const Tensor dx = conv.backward(g);
      EXPECT_TRUE(tensor::allclose(dx, dx_ref, 1e-4f))
          << "conv dx k=" << c.k << " s=" << c.stride << " p=" << c.pad
          << " at " << t << " threads";
      EXPECT_TRUE(tensor::allclose(params[0]->grad, dw_ref, 1e-4f))
          << "conv dw k=" << c.k << " s=" << c.stride << " p=" << c.pad
          << " at " << t << " threads";
    }
  }
}

TEST(KernelParity, ConvBatchedGemmBitIdenticalAcrossThreadCounts) {
  // The multi-sample conv GEMMs accumulate every output element over
  // ascending k independent of the row partition, so forward, dx and the
  // cross-sample dW reduction are bit-identical at every thread count.
  // n=4 samples: at 1 thread the forward dispatch (n < pool threads)
  // takes the per-sample loop, at 8 threads the batched GEMM — so this
  // also pins the two forward orientations to the same bits, which the
  // thread-count determinism guarantee depends on.
  ThreadCountGuard guard;
  Rng rng(23);
  nn::Conv2d conv(4, 6, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({4, 4, 10, 10}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 6, 10, 10}, 0, 1);
  std::vector<nn::Parameter*> params;
  conv.collect_parameters(params);
  ASSERT_EQ(params.size(), 1u);

  set_num_threads(1);
  const Tensor y1 = conv.forward(x, true);
  params[0]->grad.fill(0.0f);
  const Tensor dx1 = conv.backward(g);
  const Tensor dw1 = params[0]->grad;

  set_num_threads(8);
  const Tensor y8 = conv.forward(x, true);
  params[0]->grad.fill(0.0f);
  const Tensor dx8 = conv.backward(g);

  EXPECT_EQ(y1, y8);
  EXPECT_EQ(dx1, dx8);
  EXPECT_EQ(dw1, params[0]->grad);
}

// ---- fused elementwise -----------------------------------------------------

TEST(FusedOps, AddInplaceAndScaleAdd) {
  Rng rng(31);
  const Tensor x = rng.normal_tensor({513}, 0, 1);
  Tensor y = rng.normal_tensor({513}, 0, 1);
  Tensor y2 = y;
  tensor::add_inplace(y, x);
  EXPECT_TRUE(tensor::allclose(y, tensor::add(y2, x)));

  Tensor z = y2;
  tensor::scale_add_inplace(z, 0.5f, 2.0f, x);
  for (int64_t i = 0; i < z.size(); ++i)
    EXPECT_NEAR(z[i], 0.5f * y2[i] + 2.0f * x[i], 1e-6f);
}

TEST(FusedOps, SgdMomentumUpdateMatchesUnfused) {
  Rng rng(32);
  Tensor w = rng.normal_tensor({257}, 0, 1);
  Tensor v = rng.normal_tensor({257}, 0, 0.1f);
  const Tensor g = rng.normal_tensor({257}, 0, 1);
  Tensor w2 = w, v2 = v;
  const float lr = 0.05f, mom = 0.9f, wd = 1e-4f;
  tensor::sgd_momentum_update(w, v, g, lr, mom, wd);
  for (int64_t i = 0; i < w2.size(); ++i) {
    const float grad = g[i] + wd * w2[i];
    v2[i] = mom * v2[i] - lr * grad;
    w2[i] += v2[i];
  }
  EXPECT_TRUE(tensor::allclose(w, w2));
  EXPECT_TRUE(tensor::allclose(v, v2));
}

// ---- fleet determinism across thread counts --------------------------------

core::ModelFactory small_mlp_factory() {
  return [](Rng& rng) { return nn::mlp({6, 16, 12, 3}, rng); };
}

std::vector<data::Dataset> make_shards(int64_t agents, uint64_t seed) {
  Rng rng(seed);
  const auto ds = data::make_blobs(agents * 30, 3, 6, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  return shards;
}

sim::Topology hetero_mesh(int64_t agents) {
  std::vector<sim::ResourceProfile> profiles;
  const std::vector<double> cpus{4.0, 0.2, 2.0, 0.5};
  for (int64_t i = 0; i < agents; ++i)
    profiles.push_back({cpus[static_cast<size_t>(i) % cpus.size()], 100.0});
  return sim::Topology::full_mesh(profiles);
}

/// Runs `rounds` RealFleet rounds at the given thread count and returns
/// the concatenated model state of every agent.
std::vector<Tensor> fleet_state_at(int threads, int rounds) {
  set_num_threads(threads);
  core::RealFleet::Options opt;
  opt.seed = 99;
  core::RealFleet fleet(small_mlp_factory(), 3, make_shards(4, 55),
                        hetero_mesh(4), opt);
  for (int r = 0; r < rounds; ++r) (void)fleet.step();
  std::vector<Tensor> all;
  for (int64_t a = 0; a < fleet.agents(); ++a) {
    auto s = nn::state_of(fleet.model(a));
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

TEST(Determinism, RealFleetRoundIsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const auto s1 = fleet_state_at(/*threads=*/1, /*rounds=*/2);
  const auto s8 = fleet_state_at(/*threads=*/8, /*rounds=*/2);
  ASSERT_EQ(s1.size(), s8.size());
  for (size_t i = 0; i < s1.size(); ++i)
    EXPECT_EQ(s1[i], s8[i]) << "state tensor " << i
                            << " differs between 1 and 8 threads";
}

}  // namespace
}  // namespace comdml
