// Activation wire-compression codec tests: lossless structure, bounded
// quantization error, and the achieved ratio on real post-ReLU activations
// (the basis of FleetConfig::activation_compression).
#include <gtest/gtest.h>

#include "comm/compress.hpp"
#include "nn/resnet.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace comdml::comm {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(Compress, AllZerosCollapse) {
  const Tensor t({1, 4, 8, 8});
  const auto c = compress_activations(t);
  EXPECT_TRUE(c.values.empty());
  EXPECT_GT(compression_ratio(t), 10.0);  // bitmask + header only
  EXPECT_TRUE(tensor::allclose(decompress_activations(c), t));
}

TEST(Compress, RoundTripPreservesZerosAndBoundsError) {
  Rng rng(1);
  Tensor t = rng.normal_tensor({2, 3, 8, 8}, 0, 1);
  // ReLU it.
  float max_val = 0.0f;
  for (float& v : t.flat()) {
    v = std::max(v, 0.0f);
    max_val = std::max(max_val, v);
  }
  const Tensor back = decompress_activations(compress_activations(t));
  auto a = t.flat();
  auto b = back.flat();
  const float step = max_val / 255.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0f) {
      EXPECT_EQ(b[i], 0.0f) << i;  // zeros stay zeros
    }
    EXPECT_NEAR(a[i], b[i], step) << i;  // sub-step positives may drop to 0
  }
}

TEST(Compress, QuantizationErrorBounded) {
  Rng rng(2);
  Tensor t = rng.uniform_tensor({4, 16, 8, 8}, 0.0f, 3.0f);
  for (float& v : t.flat())
    if (v < 1.0f) v = 0.0f;  // sparsify
  // Error bound: half a quantization step = max/255/2.
  EXPECT_LT(reconstruction_error(t), 3.0 / 255.0);
}

TEST(Compress, NegativesQuantizeToZeroLikeRelu) {
  const Tensor t({4}, {-1.0f, 2.0f, -0.5f, 1.0f});
  const Tensor back = decompress_activations(compress_activations(t));
  EXPECT_FLOAT_EQ(back[0], 0.0f);
  EXPECT_FLOAT_EQ(back[2], 0.0f);
  EXPECT_NEAR(back[1], 2.0f, 2.0 / 255.0);
}

TEST(Compress, LongZeroRunsHandled) {
  Tensor t({1000});
  t[999] = 5.0f;  // 999 zeros then one value: multiple 255-length runs
  const Tensor back = decompress_activations(compress_activations(t));
  EXPECT_TRUE(tensor::allclose(back, t, 5.0f / 255.0f));
}

TEST(Compress, DenseWorstCaseStillBeatsFloat) {
  Rng rng(3);
  const Tensor t = rng.uniform_tensor({4096}, 0.1f, 1.0f);  // no zeros
  // Every value is one int8 byte vs four float bytes, plus the 1-bit mask:
  // ratio ~ 4 / 1.125.
  const double ratio = compression_ratio(t);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(Compress, RealReluActivationsReachModelledRatio) {
  // The timing model assumes ~8x on post-ReLU activation streams; verify
  // on activations from a real (untrained) ResNet cut.
  Rng rng(4);
  auto net = nn::tiny_resnet(10, rng);
  const Tensor x = rng.normal_tensor({8, 3, 8, 8}, 0, 1);
  const Tensor h = net->forward_range(x, 0, 1, false);  // post-ReLU stem
  const double ratio = compression_ratio(h);
  EXPECT_GT(ratio, 5.0);  // ~6.4x at the ~50% sparsity ReLU produces
}

TEST(Compress, WireBytesAccounting) {
  Rng rng(5);
  Tensor t = rng.normal_tensor({2, 8}, 0, 1);
  for (float& v : t.flat()) v = std::max(v, 0.0f);
  const auto c = compress_activations(t);
  EXPECT_EQ(c.wire_bytes(),
            static_cast<int64_t>(sizeof(uint32_t) + 2 * sizeof(int64_t) +
                                 sizeof(float) + c.runs.size() +
                                 c.values.size()));
}

TEST(Compress, CorruptStreamRejected) {
  Rng rng(6);
  Tensor t = rng.uniform_tensor({16}, 0.1f, 1.0f);
  auto c = compress_activations(t);
  c.runs.push_back(200);  // claims more zeros than the tensor holds
  EXPECT_THROW((void)decompress_activations(c), std::invalid_argument);
}

}  // namespace
}  // namespace comdml::comm
