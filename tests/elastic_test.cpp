// Elastic-fleet tests: endpoint churn at the transport (typed
// EndpointDownError, scheduled deaths on the shared step counter, per-edge
// drop accounting), mid-collective recovery (survivor schedules
// bit-identical to from-scratch survivor-only runs, Sim/InProc parity of
// the surviving traffic), round-pipeline churn (mid-round deactivation,
// leave/rejoin, error-feedback residual persistence across rebuilds), and
// the durable fleet layer (injected agent deaths at every supported point,
// rejoin-from-consensus, checkpoint/restore resuming bit-identically).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "comm/allreduce.hpp"
#include "comm/collective.hpp"
#include "comm/transport.hpp"
#include "core/fleet_runtime.hpp"
#include "core/real_fleet.hpp"
#include "core/round_pipeline.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/bucket.hpp"
#include "nn/resnet.hpp"

namespace comdml {
namespace {

using comm::AsyncCollective;
using comm::CollectiveRequest;
using comm::EndpointDownError;
using comm::InProcTransport;
using comm::LinkGrid;
using comm::Protocol;
using comm::SimTransport;
using core::FleetOptions;
using core::RealFleet;
using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

std::vector<std::vector<double>> random_buffers(int64_t k, int64_t elems,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> bufs(static_cast<size_t>(k));
  for (auto& b : bufs) {
    b.resize(static_cast<size_t>(elems));
    for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
  }
  return bufs;
}

std::vector<double*> pointers(std::vector<std::vector<double>>& bufs) {
  std::vector<double*> ptrs;
  ptrs.reserve(bufs.size());
  for (auto& b : bufs) ptrs.push_back(b.data());
  return ptrs;
}

// ---- fleet fixtures (mirrors tests/pipeline_test.cpp) -----------------------

core::ModelFactory mlp_factory(int64_t in, int64_t classes) {
  return [in, classes](Rng& rng) {
    return nn::mlp({in, 24, 24, classes}, rng);
  };
}

std::vector<data::Dataset> blob_shards(int64_t agents, int64_t per_agent,
                                       int64_t classes, int64_t features,
                                       uint64_t seed) {
  Rng rng(seed);
  const auto ds =
      data::make_blobs(agents * per_agent, classes, features, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  return shards;
}

Topology hetero_mesh(int64_t agents) {
  std::vector<ResourceProfile> profiles;
  const std::vector<double> cpus{4.0, 0.2, 2.0, 0.5};
  for (int64_t i = 0; i < agents; ++i)
    profiles.push_back({cpus[static_cast<size_t>(i) % cpus.size()], 100.0});
  return Topology::full_mesh(profiles);
}

RealFleet make_fleet(const FleetOptions& opt, int64_t agents,
                     uint64_t data_seed = 55) {
  return RealFleet(mlp_factory(6, 3), 3,
                   blob_shards(agents, 30, 3, 6, data_seed),
                   hetero_mesh(agents), opt);
}

std::vector<Tensor> all_states(RealFleet& fleet) {
  std::vector<Tensor> all;
  for (int64_t a = 0; a < fleet.agents(); ++a) {
    auto s = nn::state_of(fleet.model(a));
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

void expect_states_equal(const std::vector<Tensor>& a,
                         const std::vector<Tensor>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << what << ": state tensor " << i << " differs";
}

/// Post-aggregation, every live replica must hold the same consensus state
/// (dead replicas keep whatever they had when they died).
void expect_live_replicas_equal(RealFleet& fleet) {
  const auto live = fleet.live_agents();
  ASSERT_FALSE(live.empty());
  const auto ref = nn::state_of(fleet.model(live.front()));
  for (const Tensor& t : ref)
    for (const float v : t.flat())
      ASSERT_TRUE(std::isfinite(v)) << "non-finite consensus";
  for (size_t a = 1; a < live.size(); ++a)
    expect_states_equal(ref, nn::state_of(fleet.model(live[a])),
                        "live replica consensus");
}

// ---- transport endpoint churn -----------------------------------------------

TEST(ElasticTransport, DeadEndpointRaisesTypedError) {
  InProcTransport t(LinkGrid::uniform(3, 100.0));
  t.fail_endpoint(1);
  EXPECT_FALSE(t.endpoint_alive(1));
  EXPECT_TRUE(t.has_endpoint_faults());
  EXPECT_EQ(t.live_endpoints(), (std::vector<int64_t>{0, 2}));
  try {
    t.send(0, 1, 4);
    FAIL() << "send to a dead endpoint must throw";
  } catch (const EndpointDownError& e) {
    EXPECT_EQ(e.endpoint(), 1);
  }
  EXPECT_THROW(t.send(1, 0, 4), EndpointDownError);
  EXPECT_THROW((void)t.recv(1, 0), EndpointDownError);
  // Survivor traffic is unaffected.
  const std::vector<double> payload{1.0, 2.0};
  t.send(0, 2, 2, payload.data());
  t.end_step();
  EXPECT_EQ(t.recv(2, 0).payload, payload);
  // Revival restores the edge and clears the fault flag.
  t.revive_endpoint(1);
  EXPECT_TRUE(t.endpoint_alive(1));
  EXPECT_FALSE(t.has_endpoint_faults());
  t.send(0, 1, 2, payload.data());
  t.end_step();
  EXPECT_EQ(t.recv(1, 0).payload, payload);
}

TEST(ElasticTransport, ScheduledFailureFiresOnSharedStepCounter) {
  InProcTransport t(LinkGrid::uniform(2, 100.0));
  t.schedule_endpoint_failure(1, 2);
  EXPECT_TRUE(t.endpoint_alive(1));  // no steps closed yet
  for (int step = 0; step < 2; ++step) {
    t.send(0, 1, 1);
    t.end_step();
  }
  // stats().steps == 2 >= after_steps: dead exactly now, on both flavors.
  EXPECT_FALSE(t.endpoint_alive(1));
  EXPECT_THROW(t.send(0, 1, 1), EndpointDownError);
  // reset() is "new round": the step counter restarts, so the scheduled
  // death re-arms instead of leaking last round's deadness.
  t.reset();
  EXPECT_TRUE(t.endpoint_alive(1));
  EXPECT_TRUE(t.has_endpoint_faults());
}

TEST(ElasticTransport, DeliveredMailOutlivesSenderDeath) {
  InProcTransport t(LinkGrid::uniform(2, 100.0));
  const std::vector<double> payload{3.0, 4.0, 5.0};
  t.send(0, 1, 3, payload.data());
  t.end_step();
  t.fail_endpoint(0);
  // The message already crossed the wire; death cannot unsend it.
  EXPECT_EQ(t.recv(1, 0).payload, payload);
  // But nothing further will ever arrive from the dead peer: typed error,
  // not the schedule-bug hard failure.
  EXPECT_THROW((void)t.recv(1, 0), EndpointDownError);
  // clear_pending() empties mailboxes without touching the stats.
  t.revive_endpoint(0);
  t.send(0, 1, 3, payload.data());
  t.end_step();
  const auto messages_before = t.stats().messages;
  t.clear_pending();
  EXPECT_EQ(t.stats().messages, messages_before);
  EXPECT_ANY_THROW((void)t.recv(1, 0));  // box is empty now
}

TEST(ElasticTransport, PerEdgeDropAccountingSumsToTotal) {
  comm::FaultPlan faults;
  faults.drop_prob = 1.0;  // every message is dropped
  faults.seed = 9;
  InProcTransport t(LinkGrid::uniform(3, 100.0), nullptr, faults);
  t.send(0, 1, 4);
  t.send(0, 2, 4);
  t.send(2, 1, 4);
  t.end_step();
  EXPECT_EQ(t.stats().dropped_messages, 3);
  EXPECT_EQ(t.stats().dropped_on(0, 1), 1);
  EXPECT_EQ(t.stats().dropped_on(0, 2), 1);
  EXPECT_EQ(t.stats().dropped_on(2, 1), 1);
  EXPECT_EQ(t.stats().dropped_on(1, 0), 0);
  int64_t per_edge_total = 0;
  for (const int64_t d : t.stats().dropped_per_edge) per_edge_total += d;
  EXPECT_EQ(per_edge_total, t.stats().dropped_messages);
}

// ---- mid-collective recovery ------------------------------------------------

/// Runs a recoverable allreduce over `k` endpoints with `victim` scheduled
/// to die after `fail_after` transport steps; returns the surviving
/// buffers. `orig` receives the pristine inputs.
std::vector<std::vector<double>> recovered_allreduce(
    Protocol protocol, int64_t k, int64_t elems, int64_t victim,
    int64_t fail_after, std::vector<std::vector<double>>* orig,
    int64_t* recoveries = nullptr) {
  auto bufs = random_buffers(k, elems, 77);
  if (orig != nullptr) *orig = bufs;
  InProcTransport t(LinkGrid::uniform(k, 100.0));
  t.schedule_endpoint_failure(victim, fail_after);
  CollectiveRequest req;
  req.elems = elems;
  req.buffers = pointers(bufs);
  AsyncCollective op(protocol, t, std::move(req));
  op.enable_recovery(protocol);
  op.wait();
  if (recoveries != nullptr) *recoveries = op.recoveries();
  return bufs;
}

void expect_matches_survivor_only_run(Protocol protocol, int64_t k,
                                      int64_t victim, int64_t fail_after) {
  const int64_t elems = 13;
  std::vector<std::vector<double>> orig;
  int64_t recoveries = 0;
  const auto recovered = recovered_allreduce(protocol, k, elems, victim,
                                             fail_after, &orig, &recoveries);
  EXPECT_GE(recoveries, 1);

  std::vector<int64_t> survivors;
  for (int64_t e = 0; e < k; ++e)
    if (e != victim) survivors.push_back(e);

  // From-scratch run of the survivor schedule over a fault-free transport
  // of the same width: bit-identical.
  auto scratch = orig;
  InProcTransport clean(LinkGrid::uniform(k, 100.0));
  const auto sched =
      comm::allreduce_schedule_over(protocol, survivors, elems);
  CollectiveRequest req;
  req.elems = elems;
  req.buffers = pointers(scratch);
  AsyncCollective op(sched, clean, std::move(req));
  op.wait();
  for (const int64_t s : survivors)
    EXPECT_EQ(recovered[static_cast<size_t>(s)],
              scratch[static_cast<size_t>(s)])
        << "survivor " << s << " diverged from the survivor-only schedule";

  // And identical to a genuine (k-1)-agent fleet that never saw the dead
  // agent: rank r of the narrow run is survivor[r] of the recovered one.
  std::vector<std::vector<double>> narrow;
  narrow.reserve(survivors.size());
  for (const int64_t s : survivors)
    narrow.push_back(orig[static_cast<size_t>(s)]);
  InProcTransport small(
      LinkGrid::uniform(static_cast<int64_t>(survivors.size()), 100.0));
  CollectiveRequest nreq;
  nreq.elems = elems;
  nreq.buffers = pointers(narrow);
  AsyncCollective nop(protocol, small, std::move(nreq));
  nop.wait();
  for (size_t r = 0; r < survivors.size(); ++r)
    EXPECT_EQ(narrow[r], recovered[static_cast<size_t>(survivors[r])])
        << "rank " << r << " of the from-scratch narrow run differs";
}

TEST(CollectiveRecovery, RingSurvivorsMatchFromScratchRun) {
  expect_matches_survivor_only_run(Protocol::kRingAllReduce, 4, 2, 2);
}

TEST(CollectiveRecovery, HalvingDoublingSurvivorsMatchFromScratchRun) {
  expect_matches_survivor_only_run(Protocol::kHalvingDoublingAllReduce, 7,
                                   3, 2);
}

TEST(CollectiveRecovery, TwoAgentsLosingOneMidRing) {
  std::vector<std::vector<double>> orig;
  const auto recovered = recovered_allreduce(Protocol::kRingAllReduce, 2,
                                             9, /*victim=*/1,
                                             /*fail_after=*/1, &orig);
  // The last survivor standing completes with its own contribution as the
  // "mean" — its pristine input restored from the recovery snapshot.
  EXPECT_EQ(recovered[0], orig[0]);
}

TEST(CollectiveRecovery, AllButOneFailingLeavesOwnContribution) {
  const int64_t k = 4, elems = 11;
  auto bufs = random_buffers(k, elems, 31);
  const auto orig = bufs;
  InProcTransport t(LinkGrid::uniform(k, 100.0));
  t.schedule_endpoint_failure(1, 1);
  t.schedule_endpoint_failure(2, 2);
  t.schedule_endpoint_failure(3, 3);
  CollectiveRequest req;
  req.elems = elems;
  req.buffers = pointers(bufs);
  AsyncCollective op(Protocol::kRingAllReduce, t, std::move(req));
  op.enable_recovery(Protocol::kRingAllReduce);
  op.wait();
  EXPECT_GE(op.recoveries(), 1);
  EXPECT_EQ(bufs[0], orig[0]);
}

TEST(CollectiveRecovery, SimInProcParityForSurvivingTraffic) {
  const int64_t k = 4, elems = 13;
  auto bufs = random_buffers(k, elems, 77);
  comm::TransportStats executed, predicted;
  {
    InProcTransport t(LinkGrid::uniform(k, 100.0));
    t.schedule_endpoint_failure(2, 2);
    CollectiveRequest req;
    req.elems = elems;
    req.buffers = pointers(bufs);
    AsyncCollective op(Protocol::kRingAllReduce, t, std::move(req));
    op.enable_recovery(Protocol::kRingAllReduce);
    op.wait();
    executed = t.stats();
  }
  {
    SimTransport t(LinkGrid::uniform(k, 100.0));
    t.schedule_endpoint_failure(2, 2);
    CollectiveRequest req;  // timing-only: no buffers
    req.elems = elems;
    AsyncCollective op(Protocol::kRingAllReduce, t, std::move(req));
    op.enable_recovery(Protocol::kRingAllReduce);
    op.wait();
    predicted = t.stats();
  }
  // Deadness is a pure function of the shared step counter, so the
  // predicted schedule fails, recovers, and finishes exactly like the
  // executed one — including the pre-failure traffic that stays on the
  // books.
  EXPECT_EQ(predicted.steps, executed.steps);
  EXPECT_EQ(predicted.messages, executed.messages);
  EXPECT_EQ(predicted.total_wire_bytes, executed.total_wire_bytes);
  EXPECT_DOUBLE_EQ(predicted.seconds, executed.seconds);
  EXPECT_EQ(predicted.bytes_sent, executed.bytes_sent);
}

// ---- round-pipeline churn ---------------------------------------------------

/// Deterministic per-(agent, bucket, element) slot value.
double slot_value(int64_t agent, int64_t bucket, int64_t i) {
  return 0.25 * static_cast<double>(agent + 1) +
         0.01 * static_cast<double>(bucket) +
         0.001 * static_cast<double>(i);
}

void fill_and_contribute(core::RoundPipeline& p, int64_t agent) {
  for (int64_t b = 0; b < p.plan().buckets(); ++b) {
    double* s = p.slot(agent, b);
    for (int64_t i = 0; i < p.plan().bucket(b).elems; ++i)
      s[i] = slot_value(agent, b, i);
    p.contribute(agent, b);
  }
}

TEST(PipelineChurn, MidRoundDeathReducesOverContributors) {
  Rng rng(11);
  const auto model = nn::mlp({6, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 256);
  ASSERT_GT(plan.buckets(), 1);
  core::RoundPipeline p(3, plan, LinkGrid::uniform(3, 100.0),
                        comm::AllReduceAlgo::kRing);
  p.begin_round();
  fill_and_contribute(p, 0);
  fill_and_contribute(p, 1);
  p.deactivate(2);  // dies before publishing anything
  p.drain();
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    const double* s = p.slot(0, b);
    for (int64_t i = 0; i < plan.bucket(b).elems; ++i) {
      const double mean =
          (slot_value(0, b, i) + slot_value(1, b, i)) / 2.0;
      ASSERT_DOUBLE_EQ(s[i], mean) << "bucket " << b << " elem " << i;
    }
    // Both contributors hold the identical reduced mean.
    const double* s1 = p.slot(1, b);
    for (int64_t i = 0; i < plan.bucket(b).elems; ++i)
      ASSERT_EQ(s[i], s1[i]);
  }
  EXPECT_EQ(p.live_agents(), (std::vector<int64_t>{0, 1}));
}

TEST(PipelineChurn, LeaveAndRejoinBetweenRounds) {
  Rng rng(12);
  const auto model = nn::mlp({6, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 256);
  core::RoundPipeline p(3, plan, LinkGrid::uniform(3, 100.0),
                        comm::AllReduceAlgo::kHalvingDoubling);
  p.leave(2);
  EXPECT_FALSE(p.agent_live(2));
  p.begin_round();
  fill_and_contribute(p, 0);
  fill_and_contribute(p, 1);
  p.drain();
  const double* s = p.slot(0, 0);
  ASSERT_DOUBLE_EQ(s[0], (slot_value(0, 0, 0) + slot_value(1, 0, 0)) / 2.0);

  p.rejoin(2);
  EXPECT_TRUE(p.agent_live(2));
  p.begin_round();
  for (int64_t a = 0; a < 3; ++a) fill_and_contribute(p, a);
  p.drain();
  s = p.slot(0, 0);
  const double mean3 = (slot_value(0, 0, 0) + slot_value(1, 0, 0) +
                        slot_value(2, 0, 0)) / 3.0;
  // Three-way sums may associate differently than the literal left-to-right
  // fold; allow one ulp-scale tolerance.
  ASSERT_NEAR(s[0], mean3, 1e-12);
}

TEST(PipelineChurn, ResidualsSurviveRebuild) {
  Rng rng(13);
  const auto model = nn::mlp({6, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 256);
  const LinkGrid grid = LinkGrid::uniform(2, 100.0);
  const auto algo = comm::AllReduceAlgo::kRing;
  const comm::Codec* codec = &comm::quantized_codec();

  core::RoundPipeline a(2, plan, grid, algo, codec, /*error_feedback=*/true);
  a.begin_round();
  for (int64_t ag = 0; ag < 2; ++ag) fill_and_contribute(a, ag);
  a.drain();
  const std::vector<double> carried = a.residuals();
  ASSERT_FALSE(carried.empty());
  EXPECT_TRUE(std::any_of(carried.begin(), carried.end(),
                          [](double v) { return v != 0.0; }))
      << "int8 quantization of these payloads must leave a residual";

  // Round 2 on the original pipeline is the reference...
  a.begin_round();
  for (int64_t ag = 0; ag < 2; ++ag) fill_and_contribute(a, ag);
  a.drain();

  // ...and a rebuilt pipeline that loaded the carried residuals must
  // reproduce it bit-for-bit (this is what checkpoint/restore relies on).
  core::RoundPipeline b(2, plan, grid, algo, codec, /*error_feedback=*/true);
  b.load_residuals(carried);
  b.begin_round();
  for (int64_t ag = 0; ag < 2; ++ag) fill_and_contribute(b, ag);
  b.drain();
  for (int64_t bk = 0; bk < plan.buckets(); ++bk) {
    const double* sa = a.slot(0, bk);
    const double* sb = b.slot(0, bk);
    for (int64_t i = 0; i < plan.bucket(bk).elems; ++i)
      ASSERT_EQ(sa[i], sb[i]) << "bucket " << bk << " elem " << i;
  }
  EXPECT_EQ(a.residuals(), b.residuals());
}

// ---- fleet-level churn ------------------------------------------------------

FleetOptions bucketed_options() {
  FleetOptions opt;
  opt.comms.bucket_bytes = 256;
  return opt;
}

TEST(ElasticFleet, CleanLeaveFaultDropsAgentAndRoundsContinue) {
  FleetOptions opt = bucketed_options();
  FleetOptions::FaultOptions::AgentFailure f;
  f.agent = 1;
  f.round = 1;  // all death modes off: clean leave before the round
  opt.faults.failures.push_back(f);
  opt.validate();
  RealFleet fleet = make_fleet(opt, 4);
  const auto r0 = fleet.step();
  EXPECT_EQ(r0.dropped_agents, 0);
  const auto r1 = fleet.step();
  EXPECT_EQ(r1.dropped_agents, 1);
  EXPECT_EQ(fleet.live_agents(), (std::vector<int64_t>{0, 2, 3}));
  const auto r2 = fleet.step();
  EXPECT_EQ(r2.dropped_agents, 0);
  EXPECT_TRUE(std::isfinite(r2.mean_loss));
  expect_live_replicas_equal(fleet);
}

TEST(ElasticFleet, MidTrainingDeathUnderOverlapCompletes) {
  FleetOptions opt = bucketed_options();
  opt.comms.overlap = true;
  FleetOptions::FaultOptions::AgentFailure f;
  f.agent = 2;
  f.round = 0;
  f.after_batches = 1;  // dies mid-training, publishes nothing
  opt.faults.failures.push_back(f);
  RealFleet fleet = make_fleet(opt, 4);
  const auto r0 = fleet.step();
  EXPECT_EQ(r0.dropped_agents, 1);
  EXPECT_FALSE(fleet.agent_alive(2));
  expect_live_replicas_equal(fleet);
  const auto r1 = fleet.step();
  EXPECT_EQ(r1.dropped_agents, 0);
  expect_live_replicas_equal(fleet);
}

TEST(ElasticFleet, SplitBackwardDeathDoesNotHang) {
  FleetOptions opt = bucketed_options();
  opt.comms.overlap = true;
  FleetOptions::FaultOptions::AgentFailure f;
  f.agent = 1;  // cpu 0.2 in hetero_mesh: the slow side of a split pair
  f.round = 0;
  f.after_buckets = 1;  // dies at its second publish, mid split-backward
  opt.faults.failures.push_back(f);
  RealFleet fleet = make_fleet(opt, 4);
  const auto r0 = fleet.step();
  EXPECT_EQ(r0.dropped_agents, 1);
  EXPECT_FALSE(fleet.agent_alive(1));
  expect_live_replicas_equal(fleet);
  (void)fleet.step();
  expect_live_replicas_equal(fleet);
}

TEST(ElasticFleet, MidCollectiveDeathRecoversOverSurvivors) {
  FleetOptions opt = bucketed_options();
  FleetOptions::FaultOptions::AgentFailure f;
  f.agent = 2;
  f.round = 0;
  f.at_collective_step = 1;  // endpoint dies inside the bucket collectives
  opt.faults.failures.push_back(f);
  RealFleet fleet = make_fleet(opt, 4);
  const auto r0 = fleet.step();
  EXPECT_EQ(r0.dropped_agents, 1);
  EXPECT_FALSE(fleet.agent_alive(2));
  expect_live_replicas_equal(fleet);
  const auto r1 = fleet.step();
  EXPECT_EQ(r1.dropped_agents, 0);
  EXPECT_EQ(fleet.live_agents(), (std::vector<int64_t>{0, 1, 3}));
  expect_live_replicas_equal(fleet);
}

TEST(ElasticFleet, RejoinInitializesFromConsensus) {
  FleetOptions opt = bucketed_options();
  RealFleet fleet = make_fleet(opt, 3);
  (void)fleet.step();
  fleet.leave(1);
  (void)fleet.step();
  fleet.rejoin(1);
  EXPECT_EQ(fleet.live_agents(), (std::vector<int64_t>{0, 1, 2}));
  expect_states_equal(nn::state_of(fleet.model(0)),
                      nn::state_of(fleet.model(1)),
                      "rejoined replica vs consensus");
  (void)fleet.step();  // full fleet again, no stale residuals/momentum
  expect_live_replicas_equal(fleet);
}

TEST(ElasticFleet, CheckpointRestoreResumesBitIdentical) {
  FleetOptions opt = bucketed_options();
  opt.comms.codec = FleetOptions::CommOptions::Codec::kInt8Quantized;
  opt.comms.error_feedback = true;
  opt.train.plateau_factor = 0.5f;
  opt.train.plateau_patience = 2;

  RealFleet a = make_fleet(opt, 4);
  (void)a.step();
  (void)a.step();
  const std::vector<uint8_t> ck = a.checkpoint();
  (void)a.step();
  (void)a.step();

  RealFleet b = make_fleet(opt, 4);
  b.restore(ck);
  EXPECT_EQ(b.round(), 2);
  (void)b.step();
  (void)b.step();

  // Resuming from the checkpoint replays rounds 2-3 bit-identically:
  // models, and implicitly the momentum, batcher cursors, fleet RNG,
  // plateau state, and error-feedback residuals the rounds consumed.
  expect_states_equal(all_states(a), all_states(b),
                      "resumed fleet vs uninterrupted fleet");
  EXPECT_EQ(a.current_lr(), b.current_lr());
  EXPECT_EQ(a.round(), b.round());
}

TEST(ElasticFleet, RejoinAfterCheckpointMatchesLiveFleet) {
  FleetOptions opt = bucketed_options();
  RealFleet a = make_fleet(opt, 3);
  (void)a.step();
  a.leave(1);
  (void)a.step();
  const std::vector<uint8_t> ck = a.checkpoint();
  a.rejoin(1);
  (void)a.step();

  RealFleet b = make_fleet(opt, 3);
  b.restore(ck);
  EXPECT_EQ(b.live_agents(), (std::vector<int64_t>{0, 2}));
  b.rejoin(1);
  (void)b.step();
  expect_states_equal(all_states(a), all_states(b),
                      "rejoin-after-restore vs rejoin-without-restart");
}

TEST(ElasticFleet, RuntimeForwardsElasticOps) {
  FleetOptions opt = bucketed_options();
  FleetOptions::FaultOptions::AgentFailure f;
  f.agent = 1;
  f.round = 0;
  opt.faults.failures.push_back(f);
  auto runtime = core::FleetBuilder()
                     .method(learncurve::Method::kComDML)
                     .options(opt)
                     .topology(hetero_mesh(4))
                     .model(mlp_factory(6, 3), 3)
                     .shards(blob_shards(4, 30, 3, 6, 55))
                     .build();
  const auto rep = runtime.step();
  EXPECT_EQ(rep.dropped_agents, 1);
  EXPECT_EQ(runtime.live_agents(), (std::vector<int64_t>{0, 2, 3}));
  const auto ck = runtime.checkpoint();
  (void)runtime.step();
  EXPECT_EQ(runtime.rounds_executed(), 2);
  runtime.restore(ck);
  EXPECT_EQ(runtime.rounds_executed(), 1);  // resynced from the checkpoint
  runtime.rejoin(1);
  EXPECT_EQ(runtime.live_agents(), (std::vector<int64_t>{0, 1, 2, 3}));
  (void)runtime.step();
}

TEST(ElasticFleet, RandomizedFaultSeedCompletes) {
  // CI randomizes (but logs) the fault point; locally the seed is fixed.
  uint64_t seed = 20240807;
  if (const char* env = std::getenv("COMDML_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  RecordProperty("comdml_fault_seed", static_cast<int>(seed % 1000000));
  std::cout << "[elastic] COMDML_FAULT_SEED=" << seed << std::endl;

  FleetOptions opt = bucketed_options();
  opt.comms.overlap = true;
  FleetOptions::FaultOptions::AgentFailure f;
  f.agent = static_cast<int64_t>(seed % 4);
  f.round = static_cast<int64_t>((seed / 4) % 2);
  switch ((seed / 8) % 3) {
    case 0: break;  // clean leave
    case 1: f.after_batches = static_cast<int64_t>(seed % 3); break;
    case 2: f.after_buckets = static_cast<int64_t>(seed % 2); break;
  }
  opt.faults.failures.push_back(f);
  opt.validate();
  RealFleet fleet = make_fleet(opt, 4);
  int64_t dropped = 0;
  for (int r = 0; r < 3; ++r) dropped += fleet.step().dropped_agents;
  EXPECT_EQ(dropped, 1) << "seed " << seed;
  EXPECT_EQ(static_cast<int64_t>(fleet.live_agents().size()), 3);
  expect_live_replicas_equal(fleet);
}

}  // namespace
}  // namespace comdml
