// SocketTransport + fleetd tests: real-wire delivery over Unix-domain and
// TCP sockets, cross-process accounting parity (merge_transport_stats of
// the per-process snapshots == the single-transport run), reliable
// delivery via NACK retransmits across the wire, and the end-to-end
// multi-process fleet: a forked fleetd coordinator + 2 worker processes
// must produce bit-identical weights to the same fleet stepped in this
// process.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "comm/collective.hpp"
#include "comm/reliable.hpp"
#include "comm/socket_transport.hpp"
#include "daemon/fleetd.hpp"
#include "daemon/protocol.hpp"
#include "nn/module.hpp"
#include "tensor/serialize.hpp"

namespace comdml::comm {
namespace {

/// Unique unix-socket address set for a `procs`-process mesh.
std::vector<std::string> unix_addrs(int64_t procs) {
  static std::atomic<int> counter{0};
  const int run = counter.fetch_add(1);
  std::vector<std::string> addrs;
  for (int64_t p = 0; p < procs; ++p)
    addrs.push_back("unix:/tmp/comdml_st_" + std::to_string(::getpid()) +
                    "_" + std::to_string(run) + "_" + std::to_string(p) +
                    ".sock");
  return addrs;
}

SocketPeerConfig two_proc_config(std::vector<int64_t> owner, int64_t self,
                                 std::vector<std::string> addrs) {
  SocketPeerConfig cfg;
  cfg.owner = std::move(owner);
  cfg.self = self;
  cfg.addrs = std::move(addrs);
  cfg.recv_grace_sec = 0.02;
  return cfg;
}

TEST(SocketTransport, SingleProcessMeshBehavesLikeInProc) {
  SocketPeerConfig cfg;
  cfg.owner = {0, 0, 0};
  cfg.self = 0;
  cfg.addrs = {unix_addrs(1)[0]};
  SocketTransport t(LinkGrid::uniform(3, 100.0), cfg);
  t.wait_ready();
  const double v = 7.5;
  (void)t.send(0, 2, 1, &v);
  t.end_step();
  const Message m = t.recv(2, 0);
  EXPECT_DOUBLE_EQ(m.payload[0], 7.5);
  EXPECT_TRUE(m.intact());
  EXPECT_EQ(t.stats().messages, 1);
  EXPECT_EQ(t.stats().bytes_sent[0], 4);
  EXPECT_EQ(t.stats().bytes_received[2], 4);
}

TEST(SocketTransport, PairDeliveryAcrossProcesses) {
  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0.wait_ready();
  t1.wait_ready();
  EXPECT_EQ(t0.owner_of(1), 1);
  EXPECT_EQ(t1.processes(), 2);

  const std::vector<double> payload = {1.0, -2.0, 3.5};
  (void)t0.send(0, 1, 3, payload.data());
  t0.end_step();
  const Message m = t1.recv(1, 0);
  ASSERT_EQ(m.payload.size(), 3u);
  EXPECT_DOUBLE_EQ(m.payload[1], -2.0);
  EXPECT_EQ(m.seq, 0);
  EXPECT_TRUE(m.intact());
  t1.end_step();

  // Accounting splits at the process boundary: the sender charges the
  // send-side half, the receiver the receive-side half; the merge is the
  // single-transport run.
  const TransportStats s0 = t0.stats_snapshot();
  const TransportStats s1 = t1.stats_snapshot();
  EXPECT_EQ(s0.messages, 1);
  EXPECT_EQ(s0.bytes_sent[0], 12);
  EXPECT_EQ(s0.bytes_received[1], 0);
  EXPECT_EQ(s1.bytes_received[1], 12);
  EXPECT_EQ(s1.messages, 0);
  const TransportStats merged = merge_transport_stats({s0, s1});
  EXPECT_EQ(merged.messages, 1);
  EXPECT_EQ(merged.total_wire_bytes, 12);
  EXPECT_EQ(merged.bytes_sent[0], 12);
  EXPECT_EQ(merged.bytes_received[1], 12);
}

TEST(SocketTransport, BlockingRecvWaitsForTheWire) {
  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0.wait_ready();
  t1.wait_ready();

  std::atomic<bool> got{false};
  std::thread receiver([&] {
    const Message m = t1.recv(1, 0);
    EXPECT_DOUBLE_EQ(m.payload[0], 42.0);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.load());  // nothing sent yet: the recv is blocked
  const double v = 42.0;
  (void)t0.send(0, 1, 1, &v);
  t0.end_step();
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(SocketTransport, PeerDisconnectRaisesEndpointDown) {
  const auto addrs = unix_addrs(2);
  auto t0 = std::make_unique<SocketTransport>(
      LinkGrid::uniform(2, 100.0), two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0->wait_ready();
  t1.wait_ready();
  t0.reset();  // process 0 dies; endpoint 0 is now churned out
  try {
    (void)t1.recv(1, 0);
    FAIL() << "recv from a dead peer process must throw";
  } catch (const EndpointDownError& e) {
    EXPECT_EQ(e.endpoint(), 0);
  }
  EXPECT_THROW((void)t1.send(1, 0, 1), EndpointDownError);
}

TEST(SocketTransport, TcpLoopbackMesh) {
  // Port 0 binds an ephemeral port; the peer dials the concrete bound
  // address the first transport reports.
  SocketTransport t0(
      LinkGrid::uniform(2, 100.0),
      two_proc_config({0, 1}, 0,
                      {"tcp:127.0.0.1:0", "tcp:127.0.0.1:0"}));
  SocketTransport t1(
      LinkGrid::uniform(2, 100.0),
      two_proc_config({0, 1}, 1,
                      {t0.bound_address(), "tcp:127.0.0.1:0"}));
  t0.wait_ready();
  t1.wait_ready();
  const double v = -3.25;
  (void)t0.send(0, 1, 1, &v);
  t0.end_step();
  EXPECT_DOUBLE_EQ(t1.recv(1, 0).payload[0], -3.25);
}

/// Reference + distributed run of one allreduce schedule; asserts
/// bit-identical buffers and exactly merged stats.
void check_distributed_allreduce(Protocol protocol) {
  constexpr int64_t kAgents = 4, kElems = 24;
  const auto make_buffers = [] {
    std::vector<std::vector<double>> bufs(kAgents);
    tensor::Rng rng(99);
    for (auto& b : bufs) {
      b.resize(kElems);
      for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
    }
    return bufs;
  };
  const SteppedSchedule sched =
      allreduce_schedule_over(protocol, {0, 1, 2, 3}, kElems);

  // Single-process reference: every endpoint owned.
  auto ref = make_buffers();
  InProcTransport inproc(LinkGrid::uniform(kAgents, 100.0));
  {
    CollectiveRequest req;
    req.elems = kElems;
    for (auto& b : ref) req.buffers.push_back(b.data());
    execute_schedule_owned(sched, inproc, req,
                           std::vector<char>(kAgents, 1));
  }

  // The same schedule split across two SocketTransports (endpoints 0,1 on
  // process 0; endpoints 2,3 on process 1), driven concurrently.
  const auto addrs = unix_addrs(2);
  const std::vector<int64_t> owner = {0, 0, 1, 1};
  SocketTransport t0(LinkGrid::uniform(kAgents, 100.0),
                     two_proc_config(owner, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(kAgents, 100.0),
                     two_proc_config(owner, 1, addrs));
  auto bufs0 = make_buffers();
  auto bufs1 = make_buffers();
  const auto drive = [&](SocketTransport& t,
                         std::vector<std::vector<double>>& bufs,
                         int64_t self) {
    t.wait_ready();
    CollectiveRequest req;
    req.elems = kElems;
    std::vector<char> owned(kAgents, 0);
    for (int64_t e = 0; e < kAgents; ++e) {
      req.buffers.push_back(bufs[static_cast<size_t>(e)].data());
      owned[static_cast<size_t>(e)] = owner[static_cast<size_t>(e)] == self;
    }
    execute_schedule_owned(sched, t, req, owned);
  };
  std::thread w0(drive, std::ref(t0), std::ref(bufs0), 0);
  std::thread w1(drive, std::ref(t1), std::ref(bufs1), 1);
  w0.join();
  w1.join();

  // Owned rows are bit-identical to the reference mean.
  for (int64_t e : {0, 1})
    EXPECT_EQ(bufs0[static_cast<size_t>(e)], ref[static_cast<size_t>(e)])
        << "endpoint " << e;
  for (int64_t e : {2, 3})
    EXPECT_EQ(bufs1[static_cast<size_t>(e)], ref[static_cast<size_t>(e)])
        << "endpoint " << e;

  // Merged per-process accounting reproduces the single-transport run.
  const TransportStats want = inproc.stats();
  const TransportStats got =
      merge_transport_stats({t0.stats_snapshot(), t1.stats_snapshot()});
  EXPECT_EQ(got.steps, want.steps);
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.total_wire_bytes, want.total_wire_bytes);
  EXPECT_DOUBLE_EQ(got.seconds, want.seconds);
  EXPECT_EQ(got.bytes_sent, want.bytes_sent);
  EXPECT_EQ(got.bytes_received, want.bytes_received);
  EXPECT_EQ(got.step_message_counts, want.step_message_counts);
  ASSERT_EQ(got.step_spans.size(), want.step_spans.size());
  for (size_t i = 0; i < want.step_spans.size(); ++i)
    EXPECT_DOUBLE_EQ(got.step_spans[i], want.step_spans[i]) << "step " << i;
}

TEST(SocketTransport, DistributedRingAllreduceMatchesInProc) {
  check_distributed_allreduce(Protocol::kRingAllReduce);
}

TEST(SocketTransport, DistributedHalvingDoublingMatchesInProc) {
  check_distributed_allreduce(Protocol::kHalvingDoublingAllReduce);
}

TEST(SocketTransport, ReliableChannelRecoversCrossProcessDropViaNack) {
  // The first step's message on 0 -> 1 is dropped at the sender; the
  // receiver's ReliableChannel NACKs across the wire and the owning
  // process retransmits from its parked copy.
  FaultPlan faults;
  faults.seed = 7;
  FaultPlan::MessageFault rule;
  rule.src = 0;
  rule.dst = 1;
  rule.first_step = 0;
  rule.last_step = 0;
  rule.drop_prob = 1.0;
  faults.message_faults.push_back(rule);

  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs), nullptr, faults);
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs), nullptr, faults);
  t0.wait_ready();
  t1.wait_ready();

  const std::vector<double> payload = {5.0, 6.0};
  ReliableChannel sender(t0);
  sender.send(0, 1, 2, payload.data());
  t0.end_step();

  RetryPolicy policy;
  policy.max_retries = 8;
  policy.backoff_base_sec = 0.001;
  ReliableChannel receiver(t1, policy);
  const Message m = receiver.recv(1, 0);
  EXPECT_EQ(m.seq, 0);
  ASSERT_EQ(m.payload.size(), 2u);
  EXPECT_DOUBLE_EQ(m.payload[1], 6.0);
  EXPECT_GE(receiver.retransmits(), 1);
  // Give the sender's reader thread a moment to finish accounting the
  // retransmission it issued on our behalf.
  for (int i = 0; i < 200 && t0.stats_snapshot().retransmit_messages == 0;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const TransportStats s0 = t0.stats_snapshot();
  EXPECT_GE(s0.retransmit_messages, 1);
  EXPECT_EQ(s0.dropped_messages, 1);
  // Goodput excludes the retransmit: still the fault-free schedule bytes.
  EXPECT_EQ(s0.goodput_bytes(), 8);
}

TEST(SocketTransport, DeliveryTimeoutNamesTheCrossProcessEdge) {
  FaultPlan faults;
  faults.seed = 11;
  FaultPlan::MessageFault rule;
  rule.src = 0;
  rule.dst = 1;
  rule.drop_prob = 1.0;  // forever: every retransmit is lost too
  faults.message_faults.push_back(rule);

  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs), nullptr, faults);
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs), nullptr, faults);
  t0.wait_ready();
  t1.wait_ready();

  const double v = 1.0;
  ReliableChannel sender(t0);
  sender.send(0, 1, 1, &v);
  t0.end_step();

  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_sec = 0.001;
  ReliableChannel receiver(t1, policy);
  try {
    (void)receiver.recv(1, 0);
    FAIL() << "a black-holed edge must time out";
  } catch (const DeliveryTimeoutError& e) {
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.dst(), 1);
    EXPECT_GE(e.attempts(), 2);
  }
}

TEST(SocketTransport, StatsSnapshotIsSafeUnderConcurrentTraffic) {
  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0.wait_ready();
  t1.wait_ready();
  constexpr int kMessages = 100;
  std::atomic<bool> done{false};
  std::thread observer([&] {
    // Hammer the snapshot API from another thread while the reader thread
    // injects inbound traffic; every copy must be internally consistent.
    while (!done.load()) {
      const TransportStats s = t1.stats_snapshot();
      EXPECT_EQ(s.bytes_received[0], 0);
      EXPECT_LE(s.bytes_received[1], kMessages * 8);
    }
  });
  const double v = 2.0;
  for (int i = 0; i < kMessages; ++i) {
    (void)t0.send(0, 1, 2, &v);
    t0.end_step();
    (void)t1.recv(1, 0);
    t1.end_step();
  }
  done.store(true);
  observer.join();
  EXPECT_EQ(t1.stats_snapshot().bytes_received[1], kMessages * 8);
}

}  // namespace
}  // namespace comdml::comm

// ---- fleetd: the full multi-process fleet -----------------------------------

namespace comdml::daemon {
namespace {

TEST(DaemonProtocol, OwnerMapIsRoundRobinAndTotal) {
  const auto owner = owner_map(5, 2);
  EXPECT_EQ(owner, (std::vector<int64_t>{0, 1, 0, 1, 0}));
  EXPECT_THROW((void)owner_map(1, 2), std::invalid_argument);
}

TEST(DaemonProtocol, SpecAndReportRoundTrip) {
  FleetSpec spec;
  spec.agents = 6;
  spec.seed = 123;
  spec.protocol = "ring";
  spec.mbps = 25.0;
  tensor::ByteWriter w;
  write_spec(w, spec);
  core::RoundReport rep;
  rep.round = 3;
  rep.round_seconds = 1.5;
  rep.aggregation_bytes = 4096;
  rep.mean_loss = 0.25f;
  write_report(w, rep);
  tensor::ByteReader r(w.bytes());
  const FleetSpec spec2 = read_spec(r);
  const core::RoundReport rep2 = read_report(r);
  r.expect_done();
  EXPECT_EQ(spec2.agents, 6);
  EXPECT_EQ(spec2.seed, 123u);
  EXPECT_EQ(spec2.protocol, "ring");
  EXPECT_DOUBLE_EQ(spec2.mbps, 25.0);
  EXPECT_EQ(rep2.round, 3);
  EXPECT_DOUBLE_EQ(rep2.round_seconds, 1.5);
  EXPECT_EQ(rep2.aggregation_bytes, 4096);
  EXPECT_FLOAT_EQ(rep2.mean_loss, 0.25f);
}

pid_t spawn(const std::string& bin, const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  std::perror("execv fleetd");
  ::_exit(127);
}

/// waitpid with a deadline; SIGKILLs and reports -1 on timeout.
int wait_with_timeout(pid_t pid, double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
    if (r < 0) return -3;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      (void)::waitpid(pid, &status, 0);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(Fleetd, MultiProcessFleetMatchesSingleProcessBitForBit) {
  const std::string bin = std::string(COMDML_BIN_DIR) + "/fleetd";
  if (::access(bin.c_str(), X_OK) != 0)
    GTEST_SKIP() << "fleetd binary not built at " << bin;
  const std::string addr = "unix:/tmp/comdml_fleetd_" +
                           std::to_string(::getpid()) + ".sock";
  constexpr int64_t kRounds = 3;
  const FleetSpec spec;  // defaults: 4 agents, seed 42, hd

  const pid_t coord = spawn(
      bin, {"--listen", addr, "--workers", "2", "--agents", "4", "--seed",
            "42"});
  const pid_t worker0 =
      spawn(bin, {"--worker", "--index", "0", "--connect", addr});
  const pid_t worker1 =
      spawn(bin, {"--worker", "--index", "1", "--connect", addr});

  std::vector<core::RoundReport> dist_reports;
  std::vector<uint8_t> dist_weights, dist_checkpoint;
  comm::TransportStats dist_stats;
  try {
    FleetClient client(addr, /*timeout_sec=*/60.0);
    EXPECT_EQ(client.agents(), 4);
    EXPECT_EQ(client.workers(), 2);
    for (int64_t r = 0; r < kRounds; ++r)
      dist_reports.push_back(client.round());
    dist_stats = client.stats();
    dist_weights = client.weights();
    dist_checkpoint = client.checkpoint();
    client.shutdown();
  } catch (...) {
    ::kill(coord, SIGKILL);
    ::kill(worker0, SIGKILL);
    ::kill(worker1, SIGKILL);
    throw;
  }
  EXPECT_EQ(wait_with_timeout(coord, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(worker0, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(worker1, 30.0), 0);

  // The same fleet, stepped entirely in this process.
  core::FleetRuntime local = build_spec_fleet(spec);
  std::vector<core::RoundReport> local_reports;
  for (int64_t r = 0; r < kRounds; ++r)
    local_reports.push_back(local.step());

  ASSERT_EQ(dist_reports.size(), local_reports.size());
  for (size_t r = 0; r < local_reports.size(); ++r) {
    const auto& dist = dist_reports[r];
    const auto& want = local_reports[r];
    EXPECT_EQ(dist.round, want.round);
    // Losses come out of identical replicas: exactly equal, not close.
    EXPECT_EQ(dist.mean_loss, want.mean_loss) << "round " << r;
    EXPECT_EQ(dist.mean_slow_loss, want.mean_slow_loss) << "round " << r;
    EXPECT_EQ(dist.num_pairs, 0) << "uniform profiles pair nobody";
    EXPECT_EQ(dist.aggregation_bytes, want.aggregation_bytes)
        << "round " << r;
    // The merged collective clock reproduces the single-process one (the
    // compute term round-trips through one extra subtraction, hence NEAR).
    EXPECT_NEAR(dist.aggregation_seconds, want.aggregation_seconds, 1e-9);
    EXPECT_NEAR(dist.round_seconds, want.round_seconds, 1e-9)
        << "round " << r;
  }

  // Transport-stats parity over the wire: the merged snapshot is fault
  // free, so goodput == total and real traffic flowed.
  EXPECT_GT(dist_stats.messages, 0);
  EXPECT_GT(dist_stats.total_wire_bytes, 0);
  EXPECT_EQ(dist_stats.goodput_bytes(), dist_stats.total_wire_bytes);

  // The headline guarantee: final consensus weights across 2 OS processes
  // are byte-for-byte the single-process weights.
  const auto local_weights = tensor::pack_tensors(
      nn::state_of(local.model(local.live_agents().front())));
  ASSERT_FALSE(dist_weights.empty());
  EXPECT_EQ(dist_weights, local_weights);

  // The gathered checkpoint restores into a fresh single-process fleet at
  // the same round with the same weights.
  core::FleetRuntime restored = build_spec_fleet(spec);
  restored.restore(dist_checkpoint);
  EXPECT_EQ(restored.rounds_executed(), kRounds);
  EXPECT_EQ(tensor::pack_tensors(nn::state_of(
                restored.model(restored.live_agents().front()))),
            local_weights);
}

}  // namespace
}  // namespace comdml::daemon
