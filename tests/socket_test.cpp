// SocketTransport + fleetd tests: real-wire delivery over Unix-domain and
// TCP sockets, cross-process accounting parity (merge_transport_stats of
// the per-process snapshots == the single-transport run), reliable
// delivery via NACK retransmits across the wire, and the end-to-end
// multi-process fleet: a forked fleetd coordinator + 2 worker processes
// must produce bit-identical weights to the same fleet stepped in this
// process.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>

#include "comm/collective.hpp"
#include "comm/reliable.hpp"
#include "comm/socket_transport.hpp"
#include "daemon/fleetd.hpp"
#include "daemon/protocol.hpp"
#include "nn/module.hpp"
#include "tensor/serialize.hpp"

namespace comdml::comm {
namespace {

/// Unique unix-socket address set for a `procs`-process mesh.
std::vector<std::string> unix_addrs(int64_t procs) {
  static std::atomic<int> counter{0};
  const int run = counter.fetch_add(1);
  std::vector<std::string> addrs;
  for (int64_t p = 0; p < procs; ++p)
    addrs.push_back("unix:/tmp/comdml_st_" + std::to_string(::getpid()) +
                    "_" + std::to_string(run) + "_" + std::to_string(p) +
                    ".sock");
  return addrs;
}

SocketPeerConfig two_proc_config(std::vector<int64_t> owner, int64_t self,
                                 std::vector<std::string> addrs) {
  SocketPeerConfig cfg;
  cfg.owner = std::move(owner);
  cfg.self = self;
  cfg.addrs = std::move(addrs);
  cfg.recv_grace_sec = 0.02;
  return cfg;
}

TEST(SocketTransport, SingleProcessMeshBehavesLikeInProc) {
  SocketPeerConfig cfg;
  cfg.owner = {0, 0, 0};
  cfg.self = 0;
  cfg.addrs = {unix_addrs(1)[0]};
  SocketTransport t(LinkGrid::uniform(3, 100.0), cfg);
  t.wait_ready();
  const double v = 7.5;
  (void)t.send(0, 2, 1, &v);
  t.end_step();
  const Message m = t.recv(2, 0);
  EXPECT_DOUBLE_EQ(m.payload[0], 7.5);
  EXPECT_TRUE(m.intact());
  EXPECT_EQ(t.stats().messages, 1);
  EXPECT_EQ(t.stats().bytes_sent[0], 4);
  EXPECT_EQ(t.stats().bytes_received[2], 4);
}

TEST(SocketTransport, PairDeliveryAcrossProcesses) {
  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0.wait_ready();
  t1.wait_ready();
  EXPECT_EQ(t0.owner_of(1), 1);
  EXPECT_EQ(t1.processes(), 2);

  const std::vector<double> payload = {1.0, -2.0, 3.5};
  (void)t0.send(0, 1, 3, payload.data());
  t0.end_step();
  const Message m = t1.recv(1, 0);
  ASSERT_EQ(m.payload.size(), 3u);
  EXPECT_DOUBLE_EQ(m.payload[1], -2.0);
  EXPECT_EQ(m.seq, 0);
  EXPECT_TRUE(m.intact());
  t1.end_step();

  // Accounting splits at the process boundary: the sender charges the
  // send-side half, the receiver the receive-side half; the merge is the
  // single-transport run.
  const TransportStats s0 = t0.stats_snapshot();
  const TransportStats s1 = t1.stats_snapshot();
  EXPECT_EQ(s0.messages, 1);
  EXPECT_EQ(s0.bytes_sent[0], 12);
  EXPECT_EQ(s0.bytes_received[1], 0);
  EXPECT_EQ(s1.bytes_received[1], 12);
  EXPECT_EQ(s1.messages, 0);
  const TransportStats merged = merge_transport_stats({s0, s1});
  EXPECT_EQ(merged.messages, 1);
  EXPECT_EQ(merged.total_wire_bytes, 12);
  EXPECT_EQ(merged.bytes_sent[0], 12);
  EXPECT_EQ(merged.bytes_received[1], 12);
}

TEST(SocketTransport, BlockingRecvWaitsForTheWire) {
  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0.wait_ready();
  t1.wait_ready();

  std::atomic<bool> got{false};
  std::thread receiver([&] {
    const Message m = t1.recv(1, 0);
    EXPECT_DOUBLE_EQ(m.payload[0], 42.0);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.load());  // nothing sent yet: the recv is blocked
  const double v = 42.0;
  (void)t0.send(0, 1, 1, &v);
  t0.end_step();
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(SocketTransport, PeerDisconnectRaisesEndpointDown) {
  const auto addrs = unix_addrs(2);
  auto t0 = std::make_unique<SocketTransport>(
      LinkGrid::uniform(2, 100.0), two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0->wait_ready();
  t1.wait_ready();
  t0.reset();  // process 0 dies; endpoint 0 is now churned out
  try {
    (void)t1.recv(1, 0);
    FAIL() << "recv from a dead peer process must throw";
  } catch (const EndpointDownError& e) {
    EXPECT_EQ(e.endpoint(), 0);
  }
  EXPECT_THROW((void)t1.send(1, 0, 1), EndpointDownError);
}

TEST(SocketTransport, TcpLoopbackMesh) {
  // Port 0 binds an ephemeral port; the peer dials the concrete bound
  // address the first transport reports.
  SocketTransport t0(
      LinkGrid::uniform(2, 100.0),
      two_proc_config({0, 1}, 0,
                      {"tcp:127.0.0.1:0", "tcp:127.0.0.1:0"}));
  SocketTransport t1(
      LinkGrid::uniform(2, 100.0),
      two_proc_config({0, 1}, 1,
                      {t0.bound_address(), "tcp:127.0.0.1:0"}));
  t0.wait_ready();
  t1.wait_ready();
  const double v = -3.25;
  (void)t0.send(0, 1, 1, &v);
  t0.end_step();
  EXPECT_DOUBLE_EQ(t1.recv(1, 0).payload[0], -3.25);
}

/// Reference + distributed run of one allreduce schedule; asserts
/// bit-identical buffers and exactly merged stats.
void check_distributed_allreduce(Protocol protocol) {
  constexpr int64_t kAgents = 4, kElems = 24;
  const auto make_buffers = [] {
    std::vector<std::vector<double>> bufs(kAgents);
    tensor::Rng rng(99);
    for (auto& b : bufs) {
      b.resize(kElems);
      for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
    }
    return bufs;
  };
  const SteppedSchedule sched =
      allreduce_schedule_over(protocol, {0, 1, 2, 3}, kElems);

  // Single-process reference: every endpoint owned.
  auto ref = make_buffers();
  InProcTransport inproc(LinkGrid::uniform(kAgents, 100.0));
  {
    CollectiveRequest req;
    req.elems = kElems;
    for (auto& b : ref) req.buffers.push_back(b.data());
    execute_schedule_owned(sched, inproc, req,
                           std::vector<char>(kAgents, 1));
  }

  // The same schedule split across two SocketTransports (endpoints 0,1 on
  // process 0; endpoints 2,3 on process 1), driven concurrently.
  const auto addrs = unix_addrs(2);
  const std::vector<int64_t> owner = {0, 0, 1, 1};
  SocketTransport t0(LinkGrid::uniform(kAgents, 100.0),
                     two_proc_config(owner, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(kAgents, 100.0),
                     two_proc_config(owner, 1, addrs));
  auto bufs0 = make_buffers();
  auto bufs1 = make_buffers();
  const auto drive = [&](SocketTransport& t,
                         std::vector<std::vector<double>>& bufs,
                         int64_t self) {
    t.wait_ready();
    CollectiveRequest req;
    req.elems = kElems;
    std::vector<char> owned(kAgents, 0);
    for (int64_t e = 0; e < kAgents; ++e) {
      req.buffers.push_back(bufs[static_cast<size_t>(e)].data());
      owned[static_cast<size_t>(e)] = owner[static_cast<size_t>(e)] == self;
    }
    execute_schedule_owned(sched, t, req, owned);
  };
  std::thread w0(drive, std::ref(t0), std::ref(bufs0), 0);
  std::thread w1(drive, std::ref(t1), std::ref(bufs1), 1);
  w0.join();
  w1.join();

  // Owned rows are bit-identical to the reference mean.
  for (int64_t e : {0, 1})
    EXPECT_EQ(bufs0[static_cast<size_t>(e)], ref[static_cast<size_t>(e)])
        << "endpoint " << e;
  for (int64_t e : {2, 3})
    EXPECT_EQ(bufs1[static_cast<size_t>(e)], ref[static_cast<size_t>(e)])
        << "endpoint " << e;

  // Merged per-process accounting reproduces the single-transport run.
  const TransportStats want = inproc.stats();
  const TransportStats got =
      merge_transport_stats({t0.stats_snapshot(), t1.stats_snapshot()});
  EXPECT_EQ(got.steps, want.steps);
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(got.total_wire_bytes, want.total_wire_bytes);
  EXPECT_DOUBLE_EQ(got.seconds, want.seconds);
  EXPECT_EQ(got.bytes_sent, want.bytes_sent);
  EXPECT_EQ(got.bytes_received, want.bytes_received);
  EXPECT_EQ(got.step_message_counts, want.step_message_counts);
  ASSERT_EQ(got.step_spans.size(), want.step_spans.size());
  for (size_t i = 0; i < want.step_spans.size(); ++i)
    EXPECT_DOUBLE_EQ(got.step_spans[i], want.step_spans[i]) << "step " << i;
}

TEST(SocketTransport, DistributedRingAllreduceMatchesInProc) {
  check_distributed_allreduce(Protocol::kRingAllReduce);
}

TEST(SocketTransport, DistributedHalvingDoublingMatchesInProc) {
  check_distributed_allreduce(Protocol::kHalvingDoublingAllReduce);
}

TEST(SocketTransport, ReliableChannelRecoversCrossProcessDropViaNack) {
  // The first step's message on 0 -> 1 is dropped at the sender; the
  // receiver's ReliableChannel NACKs across the wire and the owning
  // process retransmits from its parked copy.
  FaultPlan faults;
  faults.seed = 7;
  FaultPlan::MessageFault rule;
  rule.src = 0;
  rule.dst = 1;
  rule.first_step = 0;
  rule.last_step = 0;
  rule.drop_prob = 1.0;
  faults.message_faults.push_back(rule);

  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs), nullptr, faults);
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs), nullptr, faults);
  t0.wait_ready();
  t1.wait_ready();

  const std::vector<double> payload = {5.0, 6.0};
  ReliableChannel sender(t0);
  sender.send(0, 1, 2, payload.data());
  t0.end_step();

  RetryPolicy policy;
  policy.max_retries = 8;
  policy.backoff_base_sec = 0.001;
  ReliableChannel receiver(t1, policy);
  const Message m = receiver.recv(1, 0);
  EXPECT_EQ(m.seq, 0);
  ASSERT_EQ(m.payload.size(), 2u);
  EXPECT_DOUBLE_EQ(m.payload[1], 6.0);
  EXPECT_GE(receiver.retransmits(), 1);
  // Give the sender's reader thread a moment to finish accounting the
  // retransmission it issued on our behalf.
  for (int i = 0; i < 200 && t0.stats_snapshot().retransmit_messages == 0;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const TransportStats s0 = t0.stats_snapshot();
  EXPECT_GE(s0.retransmit_messages, 1);
  EXPECT_EQ(s0.dropped_messages, 1);
  // Goodput excludes the retransmit: still the fault-free schedule bytes.
  EXPECT_EQ(s0.goodput_bytes(), 8);
}

TEST(SocketTransport, DeliveryTimeoutNamesTheCrossProcessEdge) {
  FaultPlan faults;
  faults.seed = 11;
  FaultPlan::MessageFault rule;
  rule.src = 0;
  rule.dst = 1;
  rule.drop_prob = 1.0;  // forever: every retransmit is lost too
  faults.message_faults.push_back(rule);

  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs), nullptr, faults);
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs), nullptr, faults);
  t0.wait_ready();
  t1.wait_ready();

  const double v = 1.0;
  ReliableChannel sender(t0);
  sender.send(0, 1, 1, &v);
  t0.end_step();

  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_sec = 0.001;
  ReliableChannel receiver(t1, policy);
  try {
    (void)receiver.recv(1, 0);
    FAIL() << "a black-holed edge must time out";
  } catch (const DeliveryTimeoutError& e) {
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.dst(), 1);
    EXPECT_GE(e.attempts(), 2);
  }
}

TEST(SocketTransport, StatsSnapshotIsSafeUnderConcurrentTraffic) {
  const auto addrs = unix_addrs(2);
  SocketTransport t0(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 0, addrs));
  SocketTransport t1(LinkGrid::uniform(2, 100.0),
                     two_proc_config({0, 1}, 1, addrs));
  t0.wait_ready();
  t1.wait_ready();
  constexpr int kMessages = 100;
  std::atomic<bool> done{false};
  std::thread observer([&] {
    // Hammer the snapshot API from another thread while the reader thread
    // injects inbound traffic; every copy must be internally consistent.
    while (!done.load()) {
      const TransportStats s = t1.stats_snapshot();
      EXPECT_EQ(s.bytes_received[0], 0);
      EXPECT_LE(s.bytes_received[1], kMessages * 8);
    }
  });
  const double v = 2.0;
  for (int i = 0; i < kMessages; ++i) {
    (void)t0.send(0, 1, 2, &v);
    t0.end_step();
    (void)t1.recv(1, 0);
    t1.end_step();
  }
  done.store(true);
  observer.join();
  EXPECT_EQ(t1.stats_snapshot().bytes_received[1], kMessages * 8);
}

}  // namespace
}  // namespace comdml::comm

// ---- fleetd: the full multi-process fleet -----------------------------------

namespace comdml::daemon {
namespace {

TEST(DaemonProtocol, OwnerMapIsRoundRobinAndTotal) {
  const auto owner = owner_map(5, 2);
  EXPECT_EQ(owner, (std::vector<int64_t>{0, 1, 0, 1, 0}));
  EXPECT_THROW((void)owner_map(1, 2), std::invalid_argument);
}

TEST(DaemonProtocol, SpecAndReportRoundTrip) {
  FleetSpec spec;
  spec.agents = 6;
  spec.seed = 123;
  spec.protocol = "ring";
  spec.mbps = 25.0;
  tensor::ByteWriter w;
  write_spec(w, spec);
  core::RoundReport rep;
  rep.round = 3;
  rep.round_seconds = 1.5;
  rep.aggregation_bytes = 4096;
  rep.mean_loss = 0.25f;
  write_report(w, rep);
  tensor::ByteReader r(w.bytes());
  const FleetSpec spec2 = read_spec(r);
  const core::RoundReport rep2 = read_report(r);
  r.expect_done();
  EXPECT_EQ(spec2.agents, 6);
  EXPECT_EQ(spec2.seed, 123u);
  EXPECT_EQ(spec2.protocol, "ring");
  EXPECT_DOUBLE_EQ(spec2.mbps, 25.0);
  EXPECT_EQ(rep2.round, 3);
  EXPECT_DOUBLE_EQ(rep2.round_seconds, 1.5);
  EXPECT_EQ(rep2.aggregation_bytes, 4096);
  EXPECT_FLOAT_EQ(rep2.mean_loss, 0.25f);
}

/// Extra environment for a spawned fleetd process — how the crash tests
/// arm the in-binary COMDML_TEST_CRASH_* hooks on exactly one worker.
using SpawnEnv = std::vector<std::pair<std::string, std::string>>;

pid_t spawn(const std::string& bin, const std::vector<std::string>& args,
            const SpawnEnv& env = {}) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (const auto& kv : env)
    ::setenv(kv.first.c_str(), kv.second.c_str(), 1);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  std::perror("execv fleetd");
  ::_exit(127);
}

/// Kills every still-running fleet process on scope exit so a failing
/// assertion cannot leak daemons into later tests. Reaped pids are no-ops.
struct ProcReaper {
  std::vector<pid_t> pids;
  ~ProcReaper() {
    for (const pid_t p : pids) ::kill(p, SIGKILL);
    for (const pid_t p : pids) (void)::waitpid(p, nullptr, WNOHANG);
  }
};

std::string unique_control_addr() {
  static std::atomic<int> counter{0};
  return "unix:/tmp/comdml_fleetd_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::vector<uint8_t> fleet_weights(core::FleetRuntime& fleet) {
  return tensor::pack_tensors(
      nn::state_of(fleet.model(fleet.live_agents().front())));
}

/// waitpid with a deadline; SIGKILLs and reports -1 on timeout.
int wait_with_timeout(pid_t pid, double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
    if (r < 0) return -3;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      (void)::waitpid(pid, &status, 0);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(Fleetd, MultiProcessFleetMatchesSingleProcessBitForBit) {
  const std::string bin = std::string(COMDML_BIN_DIR) + "/fleetd";
  if (::access(bin.c_str(), X_OK) != 0)
    GTEST_SKIP() << "fleetd binary not built at " << bin;
  const std::string addr = "unix:/tmp/comdml_fleetd_" +
                           std::to_string(::getpid()) + ".sock";
  constexpr int64_t kRounds = 3;
  const FleetSpec spec;  // defaults: 4 agents, seed 42, hd

  const pid_t coord = spawn(
      bin, {"--listen", addr, "--workers", "2", "--agents", "4", "--seed",
            "42"});
  const pid_t worker0 =
      spawn(bin, {"--worker", "--index", "0", "--connect", addr});
  const pid_t worker1 =
      spawn(bin, {"--worker", "--index", "1", "--connect", addr});

  std::vector<core::RoundReport> dist_reports;
  std::vector<uint8_t> dist_weights, dist_checkpoint;
  comm::TransportStats dist_stats;
  try {
    FleetClient client(addr, /*timeout_sec=*/60.0);
    EXPECT_EQ(client.agents(), 4);
    EXPECT_EQ(client.workers(), 2);
    for (int64_t r = 0; r < kRounds; ++r)
      dist_reports.push_back(client.round());
    dist_stats = client.stats();
    dist_weights = client.weights();
    dist_checkpoint = client.checkpoint();
    client.shutdown();
  } catch (...) {
    ::kill(coord, SIGKILL);
    ::kill(worker0, SIGKILL);
    ::kill(worker1, SIGKILL);
    throw;
  }
  EXPECT_EQ(wait_with_timeout(coord, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(worker0, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(worker1, 30.0), 0);

  // The same fleet, stepped entirely in this process.
  core::FleetRuntime local = build_spec_fleet(spec);
  std::vector<core::RoundReport> local_reports;
  for (int64_t r = 0; r < kRounds; ++r)
    local_reports.push_back(local.step());

  ASSERT_EQ(dist_reports.size(), local_reports.size());
  for (size_t r = 0; r < local_reports.size(); ++r) {
    const auto& dist = dist_reports[r];
    const auto& want = local_reports[r];
    EXPECT_EQ(dist.round, want.round);
    // Losses come out of identical replicas: exactly equal, not close.
    EXPECT_EQ(dist.mean_loss, want.mean_loss) << "round " << r;
    EXPECT_EQ(dist.mean_slow_loss, want.mean_slow_loss) << "round " << r;
    EXPECT_EQ(dist.num_pairs, 0) << "uniform profiles pair nobody";
    EXPECT_EQ(dist.aggregation_bytes, want.aggregation_bytes)
        << "round " << r;
    // The merged collective clock reproduces the single-process one (the
    // compute term round-trips through one extra subtraction, hence NEAR).
    EXPECT_NEAR(dist.aggregation_seconds, want.aggregation_seconds, 1e-9);
    EXPECT_NEAR(dist.round_seconds, want.round_seconds, 1e-9)
        << "round " << r;
  }

  // Transport-stats parity over the wire: the merged snapshot is fault
  // free, so goodput == total and real traffic flowed.
  EXPECT_GT(dist_stats.messages, 0);
  EXPECT_GT(dist_stats.total_wire_bytes, 0);
  EXPECT_EQ(dist_stats.goodput_bytes(), dist_stats.total_wire_bytes);

  // The headline guarantee: final consensus weights across 2 OS processes
  // are byte-for-byte the single-process weights.
  const auto local_weights = tensor::pack_tensors(
      nn::state_of(local.model(local.live_agents().front())));
  ASSERT_FALSE(dist_weights.empty());
  EXPECT_EQ(dist_weights, local_weights);

  // The gathered checkpoint restores into a fresh single-process fleet at
  // the same round with the same weights.
  core::FleetRuntime restored = build_spec_fleet(spec);
  restored.restore(dist_checkpoint);
  EXPECT_EQ(restored.rounds_executed(), kRounds);
  EXPECT_EQ(tensor::pack_tensors(nn::state_of(
                restored.model(restored.live_agents().front()))),
            local_weights);
}

TEST(DaemonProtocol, SpecRoundTripsComputeScales) {
  FleetSpec spec;
  spec.agents = 4;
  spec.compute_scales = {1.0, 0.25, 1.0, 0.25};
  tensor::ByteWriter w;
  write_spec(w, spec);
  tensor::ByteReader r(w.bytes());
  const FleetSpec spec2 = read_spec(r);
  r.expect_done();
  EXPECT_EQ(spec2.compute_scales, spec.compute_scales);
}

TEST(FleetClient, FailsFastOnStaleControlSocket) {
  // Bind then close: the unix socket file survives with nobody listening —
  // exactly what a SIGKILLed coordinator leaves behind.
  const std::string addr = unique_control_addr();
  const comm::SocketAddress parsed = comm::parse_address(addr);
  const int fd = comm::listen_on(parsed);
  ::close(fd);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    FleetClient client(addr, /*timeout_sec=*/20.0);
    FAIL() << "a stale control socket must be detected, not spun on";
  } catch (const CoordinatorUnreachable& e) {
    EXPECT_NE(std::string(e.what()).find("stale"), std::string::npos)
        << e.what();
  }
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 5.0) << "detection must not burn the connect timeout";
  ::unlink(parsed.path.c_str());
}

/// 3-worker/6-agent crash fixture: worker 2 (owner of agents 2 and 5, by
/// the round-robin owner map) is armed to _exit(137) at `point` of round 1.
struct CrashFleet {
  std::string bin;
  std::string addr;
  pid_t coord = -1;
  std::array<pid_t, 3> workers{-1, -1, -1};
  ProcReaper reaper;

  [[nodiscard]] bool start(const std::string& crash_point) {
    bin = std::string(COMDML_BIN_DIR) + "/fleetd";
    if (::access(bin.c_str(), X_OK) != 0) return false;
    addr = unique_control_addr();
    coord = spawn(bin, {"--listen", addr, "--workers", "3", "--agents",
                        "6", "--seed", "42"});
    reaper.pids.push_back(coord);
    for (int i = 0; i < 3; ++i) {
      SpawnEnv env;
      if (i == 2)
        env = {{"COMDML_TEST_CRASH_AT_ROUND", "1"},
               {"COMDML_TEST_CRASH_POINT", crash_point}};
      workers[static_cast<size_t>(i)] =
          spawn(bin, {"--worker", "--index", std::to_string(i),
                      "--connect", addr},
                env);
      reaper.pids.push_back(workers[static_cast<size_t>(i)]);
    }
    return true;
  }
};

/// The survivor-side reference for a crash in round 1: the same fleet
/// stepped single-process where agents 2 and 5 leave at the boundary.
core::FleetRuntime leave_reference(const FleetSpec& spec,
                                   std::vector<core::RoundReport>* reports,
                                   int64_t rounds_after) {
  core::FleetRuntime ref = build_spec_fleet(spec);
  reports->push_back(ref.step());
  ref.leave(2);
  ref.leave(5);
  for (int64_t r = 0; r < rounds_after; ++r) reports->push_back(ref.step());
  return ref;
}

TEST(Fleetd, WorkerCrashMidTrainingSurvivorsFinishTheRound) {
  CrashFleet fleet;
  if (!fleet.start("train")) GTEST_SKIP() << "fleetd binary not built";

  std::vector<core::RoundReport> dist;
  std::vector<uint8_t> dist_weights;
  FleetClient client(fleet.addr, /*timeout_sec=*/60.0);
  for (int64_t r = 0; r < 3; ++r) dist.push_back(client.round());
  dist_weights = client.weights();
  client.shutdown();

  EXPECT_EQ(wait_with_timeout(fleet.workers[2], 30.0), 137)
      << "the armed worker must die by the crash hook";
  EXPECT_EQ(wait_with_timeout(fleet.coord, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[0], 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[1], 30.0), 0);

  EXPECT_EQ(dist[0].dropped_agents, 0);
  EXPECT_EQ(dist[1].dropped_agents, 2) << "worker 2 owned agents 2 and 5";
  EXPECT_EQ(dist[2].dropped_agents, 0);

  // A worker that dies before training contributes nothing to the round:
  // losses and post-round weights match the fleet where its agents left
  // at the same boundary.
  FleetSpec spec;
  spec.agents = 6;
  std::vector<core::RoundReport> want;
  core::FleetRuntime ref = leave_reference(spec, &want, 2);
  ASSERT_EQ(dist.size(), want.size());
  for (size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(dist[r].round, want[r].round);
    EXPECT_EQ(dist[r].mean_loss, want[r].mean_loss) << "round " << r;
  }
  EXPECT_EQ(dist_weights, fleet_weights(ref));
}

TEST(Fleetd, WorkerCrashMidCollectiveSurvivorsReFormAndFinish) {
  CrashFleet fleet;
  if (!fleet.start("collective")) GTEST_SKIP() << "fleetd binary not built";

  std::vector<core::RoundReport> dist;
  std::vector<uint8_t> dist_weights;
  FleetClient client(fleet.addr, /*timeout_sec=*/60.0);
  for (int64_t r = 0; r < 3; ++r) dist.push_back(client.round());
  dist_weights = client.weights();
  client.shutdown();

  EXPECT_EQ(wait_with_timeout(fleet.workers[2], 30.0), 137);
  EXPECT_EQ(wait_with_timeout(fleet.coord, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[0], 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[1], 30.0), 0);

  EXPECT_EQ(dist[1].dropped_agents, 2) << "worker 2 owned agents 2 and 5";

  // The crash lands after training results merged but before the
  // aggregation collective: survivors re-form over the surviving owners
  // and the post-round weights match the leave-at-the-boundary fleet.
  // (Round 1's mean_loss is exempt — the dead worker's losses were merged
  // before it died, so the distributed fold legitimately includes them.)
  FleetSpec spec;
  spec.agents = 6;
  std::vector<core::RoundReport> want;
  core::FleetRuntime ref = leave_reference(spec, &want, 2);
  EXPECT_EQ(dist[0].mean_loss, want[0].mean_loss);
  EXPECT_EQ(dist[2].mean_loss, want[2].mean_loss)
      << "post-crash rounds must re-converge exactly";
  EXPECT_EQ(dist_weights, fleet_weights(ref));
}

TEST(Fleetd, WorkerCrashDuringCheckpointGatherStillYieldsACheckpoint) {
  CrashFleet fleet;
  if (!fleet.start("gather")) GTEST_SKIP() << "fleetd binary not built";

  FleetClient client(fleet.addr, /*timeout_sec=*/60.0);
  (void)client.round();
  (void)client.round();
  // The hook fires on the first kAgentStateReq once two rounds ran: the
  // gather loses worker 2 mid-checkpoint, drops its agents, and still
  // assembles a restorable blob from the survivors.
  const std::vector<uint8_t> blob = client.checkpoint();
  const std::vector<uint8_t> live_weights = client.weights();

  FleetSpec spec;
  spec.agents = 6;
  core::FleetRuntime restored = build_spec_fleet(spec);
  restored.restore(blob);
  EXPECT_EQ(restored.rounds_executed(), 2);
  EXPECT_EQ(restored.live_agents(), (std::vector<int64_t>{0, 1, 3, 4}));
  EXPECT_EQ(fleet_weights(restored), live_weights);

  // Survivors keep driving rounds after the mid-gather loss.
  const core::RoundReport after = client.round();
  EXPECT_EQ(after.round, 2);
  EXPECT_EQ(after.dropped_agents, 0)
      << "the agents died between rounds, not during one";
  client.shutdown();

  EXPECT_EQ(wait_with_timeout(fleet.workers[2], 30.0), 137);
  EXPECT_EQ(wait_with_timeout(fleet.coord, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[0], 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[1], 30.0), 0);
}

TEST(Fleetd, CrashedWorkerRejoinsFromConsensusBetweenRounds) {
  CrashFleet fleet;
  if (!fleet.start("train")) GTEST_SKIP() << "fleetd binary not built";
  FleetSpec spec;
  spec.agents = 6;

  FleetClient client(fleet.addr, /*timeout_sec=*/60.0);
  (void)client.round();
  const core::RoundReport crashed = client.round();
  EXPECT_EQ(crashed.dropped_agents, 2);
  EXPECT_EQ(wait_with_timeout(fleet.workers[2], 30.0), 137);

  // Re-spawn worker 2 as a --rejoin replacement and wait for its agents
  // to revive from consensus (visible through the gathered checkpoint).
  const pid_t replacement =
      spawn(fleet.bin, {"--worker", "--index", "2", "--connect", fleet.addr,
                        "--rejoin"});
  fleet.reaper.pids.push_back(replacement);
  core::FleetRuntime ref = build_spec_fleet(spec);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    ref.restore(client.checkpoint());
    if (ref.live_agents().size() == 6u) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "rejoin never completed";
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const core::RoundReport healed = client.round();
  EXPECT_EQ(healed.round, 2);
  EXPECT_EQ(healed.dropped_agents, 0);
  const std::vector<uint8_t> dist_weights = client.weights();
  client.shutdown();

  EXPECT_EQ(wait_with_timeout(fleet.coord, 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[0], 30.0), 0);
  EXPECT_EQ(wait_with_timeout(fleet.workers[1], 30.0), 0);
  EXPECT_EQ(wait_with_timeout(replacement, 30.0), 0);

  // The healed fleet is bit-identical to a single-process fleet resumed
  // from the very consensus checkpoint the rejoin settled on: revived
  // agents carry consensus weights and a reset data stream (their
  // in-flight positions died with the crashed worker).
  EXPECT_EQ(ref.rounds_executed(), 2);
  const core::RoundReport want = ref.step();
  EXPECT_EQ(healed.mean_loss, want.mean_loss);
  EXPECT_EQ(dist_weights, fleet_weights(ref));
}

TEST(Fleetd, QuorumShardCheckpointRestoresBitIdentically) {
  const std::string bin = std::string(COMDML_BIN_DIR) + "/fleetd";
  if (::access(bin.c_str(), X_OK) != 0)
    GTEST_SKIP() << "fleetd binary not built at " << bin;
  const std::string addr = unique_control_addr();
  const std::string dir =
      "/tmp/comdml_shards_" + std::to_string(::getpid());

  ProcReaper reaper;
  reaper.pids.push_back(spawn(
      bin, {"--listen", addr, "--workers", "2", "--agents", "4"}));
  reaper.pids.push_back(
      spawn(bin, {"--worker", "--index", "0", "--connect", addr}));
  reaper.pids.push_back(
      spawn(bin, {"--worker", "--index", "1", "--connect", addr}));

  FleetClient client(addr, /*timeout_sec=*/60.0);
  (void)client.round();
  (void)client.round();
  std::vector<std::string> paths = client.shard_checkpoint(dir);
  ASSERT_EQ(paths.size(), 2u);
  std::sort(paths.begin(), paths.end());  // worker order: ...w00, ...w01
  const std::vector<uint8_t> dist_weights = client.weights();
  client.shutdown();
  for (const pid_t p : reaper.pids)
    EXPECT_EQ(wait_with_timeout(p, 30.0), 0);

  std::vector<std::vector<uint8_t>> shards;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    shards.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>{});
    ASSERT_FALSE(shards.back().empty()) << path;
  }

  // The full quorum reassembles the fleet bit for bit, coordinator-free.
  FleetSpec spec;  // defaults: 4 agents, seed 42
  core::FleetRuntime full = build_spec_fleet(spec);
  full.restore_shards(shards);
  EXPECT_EQ(full.rounds_executed(), 2);
  EXPECT_EQ(full.live_agents().size(), 4u);
  EXPECT_EQ(fleet_weights(full), dist_weights);

  // Any quorum: worker 0's shard alone revives exactly its owned agents;
  // the rest stay rejoinable.
  core::FleetRuntime partial = build_spec_fleet(spec);
  partial.restore_shards({shards[0]});
  EXPECT_EQ(partial.rounds_executed(), 2);
  EXPECT_EQ(partial.live_agents(), (std::vector<int64_t>{0, 2}));

  for (const auto& path : paths) ::unlink(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(Fleetd, HeterogeneousScalesPairAcrossProcessesBitForBit) {
  const std::string bin = std::string(COMDML_BIN_DIR) + "/fleetd";
  if (::access(bin.c_str(), X_OK) != 0)
    GTEST_SKIP() << "fleetd binary not built at " << bin;
  const std::string addr = unique_control_addr();
  FleetSpec spec;
  spec.agents = 4;
  spec.compute_scales = {1.0, 0.25, 1.0, 0.25};

  ProcReaper reaper;
  reaper.pids.push_back(
      spawn(bin, {"--listen", addr, "--workers", "2", "--agents", "4",
                  "--scale", "1.0,0.25,1.0,0.25"}));
  reaper.pids.push_back(
      spawn(bin, {"--worker", "--index", "0", "--connect", addr}));
  reaper.pids.push_back(
      spawn(bin, {"--worker", "--index", "1", "--connect", addr}));

  std::vector<core::RoundReport> dist;
  std::vector<uint8_t> dist_weights;
  FleetClient client(addr, /*timeout_sec=*/60.0);
  for (int64_t r = 0; r < 3; ++r) dist.push_back(client.round());
  dist_weights = client.weights();
  client.shutdown();
  for (const pid_t p : reaper.pids)
    EXPECT_EQ(wait_with_timeout(p, 30.0), 0);

  // A 4x speed gap must pair every slow agent with a fast helper, and the
  // distributed pairing path (borrowed replicas shipped over the control
  // plane) must reproduce the single-process run exactly.
  core::FleetRuntime local = build_spec_fleet(spec);
  ASSERT_EQ(dist.size(), 3u);
  for (size_t r = 0; r < dist.size(); ++r) {
    const core::RoundReport want = local.step();
    EXPECT_GE(want.num_pairs, 1) << "round " << r;
    EXPECT_EQ(dist[r].num_pairs, want.num_pairs) << "round " << r;
    EXPECT_EQ(dist[r].mean_loss, want.mean_loss) << "round " << r;
    EXPECT_EQ(dist[r].mean_slow_loss, want.mean_slow_loss)
        << "round " << r;
  }
  EXPECT_EQ(dist_weights, fleet_weights(local));
}

}  // namespace
}  // namespace comdml::daemon
