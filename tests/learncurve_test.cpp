// Learning-curve model tests: monotonicity, inversion, method ordering and
// the calibrated paper targets being reachable.
#include <gtest/gtest.h>

#include "learncurve/curves.hpp"

namespace comdml::learncurve {
namespace {

TEST(Curves, AccuracyIsMonotoneInRounds) {
  const auto m = make_accuracy_model("cifar10", "resnet56",
                                     PartitionKind::kIID, Method::kFedAvg);
  double prev = -1;
  for (double r = 0; r <= 500; r += 25) {
    const double a = m.accuracy_at(r);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(Curves, AccuracyBoundedByAsymptote) {
  const auto m = make_accuracy_model("cifar10", "resnet56",
                                     PartitionKind::kIID, Method::kFedAvg);
  EXPECT_LT(m.accuracy_at(1e6), m.spec().acc_max + 1e-9);
  EXPECT_DOUBLE_EQ(m.accuracy_at(0.0), 0.0);
}

TEST(Curves, RoundsToInvertsAccuracyAt) {
  const auto m = make_accuracy_model("cifar100", "resnet56",
                                     PartitionKind::kDirichlet05,
                                     Method::kComDML);
  const auto r = m.rounds_to(0.60);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(m.accuracy_at(*r), 0.60, 1e-9);
}

TEST(Curves, UnreachableTargetIsNull) {
  const auto m = make_accuracy_model("cifar10", "resnet56",
                                     PartitionKind::kIID, Method::kFedAvg);
  EXPECT_FALSE(m.rounds_to(0.99).has_value());
}

TEST(Curves, PaperTargetsAreReachable) {
  // Every (dataset, partition, target) pair used in Table II must be below
  // the calibrated asymptote for every method.
  const struct {
    const char* dataset;
    PartitionKind part;
    double target;
  } rows[] = {
      {"cifar10", PartitionKind::kIID, 0.90},
      {"cifar10", PartitionKind::kDirichlet05, 0.85},
      {"cifar100", PartitionKind::kIID, 0.65},
      {"cifar100", PartitionKind::kDirichlet05, 0.60},
      {"cinic10", PartitionKind::kIID, 0.75},
      {"cinic10", PartitionKind::kDirichlet05, 0.65},
  };
  for (const auto& row : rows) {
    for (const Method m :
         {Method::kComDML, Method::kGossip, Method::kBrainTorrent,
          Method::kAllReduceDML, Method::kFedAvg}) {
      const auto model =
          make_accuracy_model(row.dataset, "resnet56", row.part, m);
      EXPECT_TRUE(model.rounds_to(row.target).has_value())
          << row.dataset << " " << method_name(m);
    }
  }
}

TEST(Curves, GossipNeedsMoreRounds) {
  const auto gossip = make_accuracy_model(
      "cifar10", "resnet56", PartitionKind::kIID, Method::kGossip);
  const auto fedavg = make_accuracy_model(
      "cifar10", "resnet56", PartitionKind::kIID, Method::kFedAvg);
  EXPECT_GT(*gossip.rounds_to(0.8), *fedavg.rounds_to(0.8));
}

TEST(Curves, ComDMLPaysSmallRoundPenalty) {
  const auto comdml = make_accuracy_model(
      "cifar10", "resnet56", PartitionKind::kIID, Method::kComDML);
  const auto fedavg = make_accuracy_model(
      "cifar10", "resnet56", PartitionKind::kIID, Method::kFedAvg);
  const double ratio = *comdml.rounds_to(0.8) / *fedavg.rounds_to(0.8);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.15);
}

TEST(Curves, NonIidSlowerThanIid) {
  const auto iid = make_accuracy_model("cinic10", "resnet56",
                                       PartitionKind::kIID, Method::kFedAvg);
  const auto skew = make_accuracy_model(
      "cinic10", "resnet56", PartitionKind::kDirichlet05, Method::kFedAvg);
  EXPECT_GT(*skew.rounds_to(0.6), *iid.rounds_to(0.6));
}

TEST(Curves, Resnet110SlowerPerRound) {
  const auto r56 = make_accuracy_model("cifar10", "resnet56",
                                       PartitionKind::kIID, Method::kFedAvg);
  const auto r110 = make_accuracy_model(
      "cifar10", "resnet110", PartitionKind::kIID, Method::kFedAvg);
  EXPECT_GT(*r110.rounds_to(0.8), *r56.rounds_to(0.8));
}

TEST(Curves, ParticipationSamplingSlowsProgress) {
  EXPECT_LT(method_rate(Method::kFedAvg, 0.2),
            method_rate(Method::kFedAvg, 1.0));
}

TEST(Curves, UnknownDatasetThrows) {
  EXPECT_THROW((void)base_curve("mnist", "resnet56", PartitionKind::kIID),
               std::invalid_argument);
}

TEST(Curves, UnknownModelThrows) {
  EXPECT_THROW((void)base_curve("cifar10", "vgg16", PartitionKind::kIID),
               std::invalid_argument);
}

TEST(Curves, SplitPenaltyGrowsWithOffload) {
  EXPECT_GT(split_rate_penalty(0.1), split_rate_penalty(0.8));
  EXPECT_DOUBLE_EQ(split_rate_penalty(0.0), 1.0);
}

TEST(Privacy, PenaltiesOrderedAsPaper) {
  // Patch shuffling is mildest, DP is strongest (83.2 > 81.7 > 77.6).
  EXPECT_LT(privacy_accuracy_penalty(PrivacyTechnique::kPatchShuffle),
            privacy_accuracy_penalty(PrivacyTechnique::kDistanceCorrelation));
  EXPECT_LT(privacy_accuracy_penalty(PrivacyTechnique::kDistanceCorrelation),
            privacy_accuracy_penalty(PrivacyTechnique::kDifferentialPrivacy));
  EXPECT_DOUBLE_EQ(privacy_accuracy_penalty(PrivacyTechnique::kNone), 0.0);
}

TEST(Privacy, OverheadsAtLeastOne) {
  for (const auto t :
       {PrivacyTechnique::kNone, PrivacyTechnique::kDistanceCorrelation,
        PrivacyTechnique::kPatchShuffle,
        PrivacyTechnique::kDifferentialPrivacy})
    EXPECT_GE(privacy_compute_overhead(t), 1.0);
}

TEST(Names, AllMethodsNamed) {
  for (const Method m :
       {Method::kComDML, Method::kGossip, Method::kBrainTorrent,
        Method::kAllReduceDML, Method::kFedAvg, Method::kFedProx})
    EXPECT_FALSE(method_name(m).empty());
}

}  // namespace
}  // namespace comdml::learncurve
