// Communication substrate tests: transfer-time model, AllReduce cost model
// vs real message-level execution (ring and halving/doubling, including
// non-power-of-two fleets), gossip exchange, parameter-server sharing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "comm/allreduce.hpp"
#include "comm/gossip.hpp"
#include "comm/param_server.hpp"
#include "tensor/ops.hpp"

namespace comdml::comm {
namespace {

using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

// ---- link -----------------------------------------------------------------------

TEST(Link, TransferTimeIsLatencyPlusPayload) {
  // 1 MB over 8 Mbps = 1 second + latency.
  EXPECT_NEAR(transfer_seconds(1'000'000, 8.0, 0.005), 1.005, 1e-9);
}

TEST(Link, ZeroBytesStillPaysLatency) {
  EXPECT_DOUBLE_EQ(transfer_seconds(0, 10.0, 0.005), 0.005);
}

TEST(Link, UnusableLinkThrows) {
  EXPECT_THROW((void)transfer_seconds(100, 0.0), std::invalid_argument);
  EXPECT_THROW((void)bytes_per_sec(-5.0), std::invalid_argument);
}

TEST(Link, MultiGigabytePayloadIsOverflowSafe) {
  // 8 GB over 1 Gbps: 64 s of payload time, computed entirely in double.
  EXPECT_NEAR(transfer_seconds(8'000'000'000, 1000.0, 0.0), 64.0, 1e-9);
  // Payloads near INT64_MAX stay finite and monotone.
  const double t1 =
      transfer_seconds(std::numeric_limits<int64_t>::max() / 2, 100.0);
  const double t2 =
      transfer_seconds(std::numeric_limits<int64_t>::max(), 100.0);
  EXPECT_TRUE(std::isfinite(t1));
  EXPECT_TRUE(std::isfinite(t2));
  EXPECT_LT(t1, t2);
  EXPECT_THROW((void)transfer_seconds(-1, 100.0), std::invalid_argument);
}

TEST(Link, Fp32WireConversionsGuardOverflow) {
  EXPECT_EQ(fp32_wire_bytes(10), 40);
  EXPECT_EQ(fp32_wire_elems(10), 3);  // rounds up to whole fp32 values
  EXPECT_EQ(fp32_wire_elems(8), 2);
  EXPECT_EQ(fp32_wire_elems(0), 0);
  EXPECT_THROW(
      (void)fp32_wire_bytes(std::numeric_limits<int64_t>::max() / 2),
      std::invalid_argument);
  EXPECT_THROW((void)fp32_wire_bytes(-1), std::invalid_argument);
}

// ---- allreduce cost model ----------------------------------------------------------

TEST(AllReduceCost, SingleAgentIsFree) {
  const auto c = allreduce_cost(1, 1'000'000, 100.0);
  EXPECT_DOUBLE_EQ(c.seconds, 0.0);
  EXPECT_EQ(c.steps, 0);
}

TEST(AllReduceCost, BothAlgorithmsBandwidthOptimal) {
  const int64_t b = 4'000'000;
  const auto ring = allreduce_cost(8, b, 100.0, AllReduceAlgo::kRing);
  const auto hd =
      allreduce_cost(8, b, 100.0, AllReduceAlgo::kHalvingDoubling);
  EXPECT_EQ(ring.bytes_per_agent, hd.bytes_per_agent);
  EXPECT_EQ(ring.bytes_per_agent, 2 * (8 - 1) * b / 8);
}

TEST(AllReduceCost, HalvingDoublingFewerStepsAtScale) {
  const auto ring = allreduce_cost(64, 1'000, 100.0, AllReduceAlgo::kRing);
  const auto hd =
      allreduce_cost(64, 1'000, 100.0, AllReduceAlgo::kHalvingDoubling);
  EXPECT_EQ(ring.steps, 2 * 63);
  EXPECT_EQ(hd.steps, 2 * 6);
  EXPECT_LT(hd.seconds, ring.seconds);  // latency dominates for tiny models
}

TEST(AllReduceCost, MultiGigabyteModelIsFinite) {
  const auto c = allreduce_cost(16, 10'000'000'000, 100.0);  // 10 GB model
  EXPECT_TRUE(std::isfinite(c.seconds));
  EXPECT_GT(c.seconds, 0.0);
  EXPECT_GT(c.bytes_per_agent, 10'000'000'000 / 16 * 15);
}

TEST(AllReduceCost, NonPowerOfTwoPaysExtra) {
  const auto p2 = allreduce_cost(8, 1'000'000, 100.0);
  const auto np2 = allreduce_cost(9, 1'000'000, 100.0);
  EXPECT_GT(np2.bytes_per_agent, p2.bytes_per_agent);
  EXPECT_EQ(np2.steps, 2 * 3 + 2);
}

// ---- allreduce execution ------------------------------------------------------------

std::vector<std::vector<Tensor>> random_states(size_t k, Rng& rng) {
  std::vector<std::vector<Tensor>> states;
  for (size_t a = 0; a < k; ++a) {
    std::vector<Tensor> s;
    s.push_back(rng.normal_tensor({3, 4}, 0, 1));
    s.push_back(rng.normal_tensor({7}, 0, 1));
    states.push_back(std::move(s));
  }
  return states;
}

class AllReduceExecP
    : public ::testing::TestWithParam<std::tuple<int, AllReduceAlgo>> {};

TEST_P(AllReduceExecP, ComputesExactMean) {
  const auto [k, algo] = GetParam();
  Rng rng(1000 + k);
  auto states = random_states(static_cast<size_t>(k), rng);
  const auto expected = mean_state(states);
  (void)allreduce_average(states, algo);
  for (int a = 0; a < k; ++a)
    for (size_t t = 0; t < expected.size(); ++t)
      EXPECT_TRUE(tensor::allclose(states[static_cast<size_t>(a)][t],
                                   expected[t], 1e-5f))
          << "agent " << a << " tensor " << t;
}

TEST_P(AllReduceExecP, TrafficMatchesCostModel) {
  const auto [k, algo] = GetParam();
  Rng rng(2000 + k);
  auto states = random_states(static_cast<size_t>(k), rng);
  int64_t payload = 0;
  for (const auto& t : states[0]) payload += t.nbytes();
  const auto trace = allreduce_average(states, algo);
  const auto cost = allreduce_cost(k, payload, 100.0, algo);
  // Mean per-agent traffic equals the model's 2(K-1)/K * b (+ fold-in for
  // non-power-of-two halving/doubling; the model charges that to every
  // agent, the execution splits it between extras and partners).
  const double mean_sent =
      std::accumulate(trace.bytes_sent.begin(), trace.bytes_sent.end(),
                      0.0) /
      static_cast<double>(k);
  const double expected =
      2.0 * static_cast<double>(k - 1) / k * static_cast<double>(payload);
  EXPECT_NEAR(mean_sent, expected, static_cast<double>(payload))
      << "k=" << k;
  if (algo == AllReduceAlgo::kHalvingDoubling && (k & (k - 1)) == 0) {
    EXPECT_EQ(trace.steps, cost.steps);
  }
  if (algo == AllReduceAlgo::kRing && k > 1) {
    EXPECT_EQ(trace.steps, cost.steps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FleetSizes, AllReduceExecP,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16),
                       ::testing::Values(AllReduceAlgo::kRing,
                                         AllReduceAlgo::kHalvingDoubling)));

TEST(AllReduceExec, RejectsMismatchedStates) {
  Rng rng(1);
  auto states = random_states(3, rng);
  states[1].pop_back();
  EXPECT_THROW((void)allreduce_average(states), std::invalid_argument);
}

TEST(MeanState, WeightedMeanMatchesManual) {
  std::vector<std::vector<Tensor>> states{{Tensor::of({1.f})},
                                          {Tensor::of({5.f})}};
  const auto avg = weighted_mean_state(states, {3.0, 1.0});
  EXPECT_NEAR(avg[0][0], 2.0f, 1e-6);
}

TEST(MeanState, ZeroWeightsThrow) {
  std::vector<std::vector<Tensor>> states{{Tensor::of({1.f})}};
  EXPECT_THROW((void)weighted_mean_state(states, {0.0}),
               std::invalid_argument);
}

// ---- gossip --------------------------------------------------------------------------

TEST(Gossip, PartnersAreNeighbors) {
  Rng rng(2);
  std::vector<ResourceProfile> profiles(6, {1.0, 100.0});
  const auto topo = Topology::ring(profiles);
  const auto partners = gossip_partners(topo, rng);
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(partners[static_cast<size_t>(i)].has_value());
    EXPECT_TRUE(topo.linked(i, *partners[static_cast<size_t>(i)]));
  }
}

TEST(Gossip, IsolatedAgentHasNoPartner) {
  Rng rng(3);
  std::vector<ResourceProfile> profiles{{1, 100}, {1, 100}, {1, 0}};
  const auto topo = Topology::full_mesh(profiles);
  const auto partners = gossip_partners(topo, rng);
  EXPECT_FALSE(partners[2].has_value());
}

TEST(Gossip, ExchangeMovesStatesToward) {
  Rng rng(4);
  std::vector<ResourceProfile> profiles(2, {1.0, 100.0});
  const auto topo = Topology::full_mesh(profiles);
  std::vector<std::vector<Tensor>> states{{Tensor::of({0.f})},
                                          {Tensor::of({10.f})}};
  (void)gossip_exchange(states, topo, 1000, rng);
  // Both agents push to each other (2-agent full mesh), so both average.
  EXPECT_NEAR(states[0][0][0], 5.0f, 1e-5);
  EXPECT_NEAR(states[1][0][0], 5.0f, 1e-5);
}

TEST(Gossip, RepeatedExchangeConverges) {
  Rng rng(5);
  std::vector<ResourceProfile> profiles(8, {1.0, 100.0});
  const auto topo = Topology::full_mesh(profiles);
  std::vector<std::vector<Tensor>> states;
  for (int a = 0; a < 8; ++a)
    states.push_back({Tensor::of({static_cast<float>(a)})});
  for (int round = 0; round < 60; ++round)
    (void)gossip_exchange(states, topo, 1000, rng);
  for (int a = 0; a < 8; ++a)
    EXPECT_NEAR(states[static_cast<size_t>(a)][0][0], 3.5f, 0.8f);
}

TEST(Gossip, CostUsesChosenLink) {
  Rng rng(6);
  std::vector<ResourceProfile> profiles(2, {1.0, 10.0});
  const auto topo = Topology::full_mesh(profiles);
  const auto times = gossip_exchange_cost(topo, 1'250'000, rng);
  // 1.25 MB over 10 Mbps = 1 s (+5 ms latency).
  EXPECT_NEAR(times[0], 1.005, 1e-6);
}

// ---- parameter server -----------------------------------------------------------------

TEST(ParamServer, SharesServerBandwidth) {
  std::vector<ResourceProfile> profiles(10, {1.0, 100.0});
  std::vector<int64_t> selected(10);
  std::iota(selected.begin(), selected.end(), 0);
  ParamServerConfig config;
  config.server_mbps = 100.0;  // 10 agents share 100 Mbps -> 10 Mbps each
  const auto times = server_round_times(profiles, selected, 1'250'000,
                                        config);
  for (const double t : times) EXPECT_NEAR(t, 2.0 * 1.005, 1e-6);
}

TEST(ParamServer, AgentLinkCanBeBottleneck) {
  std::vector<ResourceProfile> profiles{{1.0, 10.0}};
  const auto times = server_round_times(profiles, {0}, 1'250'000, {});
  EXPECT_NEAR(times[0], 2.0 * 1.005, 1e-6);  // limited by the 10 Mbps uplink
}

TEST(ParamServer, DisconnectedAgentThrows) {
  std::vector<ResourceProfile> profiles{{1.0, 0.0}};
  EXPECT_THROW((void)server_round_times(profiles, {0}, 100, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace comdml::comm
