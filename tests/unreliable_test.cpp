// Unreliable-network hardening tests: message-level faults (delay,
// duplication, corruption, reordering, per-edge loss windows) decided by a
// pure hash of the shared step counter so SimTransport and InProcTransport
// misbehave identically; ReliableChannel ack/timeout/retransmit delivery
// with exponential backoff and typed DeliveryTimeoutError; every collective
// protocol completing exactly under message faults with Sim/InProc goodput
// parity; gossip and param-server survivor recovery under endpoint death
// and total edge loss; straggler deadlines absorbing late solo updates
// through the error-feedback residual; autonomous checksummed
// checkpointing with retention pruning, typed CheckpointError on corrupt
// blobs, and geometry-flexible restore; and the strict --fail-agent spec
// parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <string>
#include <vector>

#include "comm/collective.hpp"
#include "comm/reliable.hpp"
#include "comm/transport.hpp"
#include "core/fault_spec.hpp"
#include "core/real_fleet.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/resnet.hpp"

namespace comdml {
namespace {

namespace fs = std::filesystem;
using comm::CollectiveRequest;
using comm::DeliveryTimeoutError;
using comm::EndpointDownError;
using comm::FaultPlan;
using comm::InProcTransport;
using comm::LinkGrid;
using comm::Message;
using comm::Protocol;
using comm::ReliableChannel;
using comm::RetryPolicy;
using comm::SimTransport;
using comm::TransportStats;
using core::CheckpointError;
using core::FleetOptions;
using core::RealFleet;
using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

std::vector<std::vector<double>> random_buffers(int64_t k, int64_t elems,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> bufs(static_cast<size_t>(k));
  for (auto& b : bufs) {
    b.resize(static_cast<size_t>(elems));
    for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
  }
  return bufs;
}

std::vector<double*> pointers(std::vector<std::vector<double>>& bufs) {
  std::vector<double*> ptrs;
  ptrs.reserve(bufs.size());
  for (auto& b : bufs) ptrs.push_back(b.data());
  return ptrs;
}

/// One wildcard fault entry active forever.
FaultPlan::MessageFault any_edge() {
  FaultPlan::MessageFault mf;
  mf.src = -1;
  mf.dst = -1;
  return mf;
}

// ---- message-level transport faults ----------------------------------------

TEST(MessageFaults, DelayedMessageMaturesExactlyOnSchedule) {
  FaultPlan faults;
  faults.seed = 11;
  FaultPlan::MessageFault mf;
  mf.src = 0;
  mf.dst = 1;
  mf.delay_prob = 1.0;
  mf.delay_steps_max = 1;  // deterministic: exactly one extra closed step
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);

  const std::vector<double> payload{1.0, 2.0, 3.0};
  t.send(0, 1, 3, payload.data());
  t.end_step();  // a normal message would be deliverable now
  EXPECT_FALSE(t.try_recv_from(1, 0).has_value()) << "immature too early";
  t.send(1, 0, 1);  // idle steps don't close; some traffic must
  t.end_step();     // the one extra delay step closes: matures exactly here
  const auto msg = t.try_recv_from(1, 0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, payload);
  EXPECT_TRUE(msg->intact());
  EXPECT_EQ(t.stats().delayed_messages, 1);
}

TEST(MessageFaults, DuplicateDeliversTwoTaggedCopies) {
  FaultPlan faults;
  faults.seed = 12;
  auto mf = any_edge();
  mf.duplicate_prob = 1.0;
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);

  const std::vector<double> payload{4.0, 5.0};
  t.send(0, 1, 2, payload.data());
  t.end_step();
  const auto first = t.try_recv_from(1, 0);
  const auto second = t.try_recv_from(1, 0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->seq, second->seq) << "a duplicate reuses the seq";
  EXPECT_EQ(first->payload, payload);
  EXPECT_EQ(second->payload, payload);
  EXPECT_FALSE(t.try_recv_from(1, 0).has_value());
  const TransportStats& st = t.stats();
  EXPECT_EQ(st.duplicated_messages, 1);
  EXPECT_GT(st.duplicated_wire_bytes, 0);
  // Goodput subtracts the copy: it equals the fault-free run's traffic.
  EXPECT_EQ(st.goodput_bytes(), st.total_wire_bytes - st.duplicated_wire_bytes);
}

TEST(MessageFaults, CorruptionFlipsPayloadAndFailsIntact) {
  FaultPlan faults;
  faults.seed = 13;
  auto mf = any_edge();
  mf.corrupt_prob = 1.0;
  faults.message_faults.push_back(mf);

  InProcTransport real(LinkGrid::uniform(2, 100.0), nullptr, faults);
  const std::vector<double> payload{6.0, 7.0};
  real.send(0, 1, 2, payload.data());
  real.end_step();
  const auto msg = real.try_recv_from(1, 0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->corrupted);
  EXPECT_FALSE(msg->intact());
  EXPECT_NE(msg->payload, payload) << "corruption must flip payload bits";
  EXPECT_EQ(real.stats().corrupt_messages, 1);

  // Timing-only flavor carries the corruption flag without a payload, so
  // the fault decision (and the receiver's reaction) is identical.
  SimTransport sim(LinkGrid::uniform(2, 100.0), nullptr, faults);
  sim.send(0, 1, 2);
  sim.end_step();
  const auto timing = sim.try_recv_from(1, 0);
  ASSERT_TRUE(timing.has_value());
  EXPECT_FALSE(timing->intact());
  EXPECT_EQ(sim.stats().corrupt_messages, 1);
}

TEST(MessageFaults, ReorderJumpsMessageToMailboxFront) {
  FaultPlan faults;
  faults.seed = 14;
  auto mf = any_edge();
  mf.reorder_prob = 1.0;
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);

  t.send(0, 1, 1);
  t.send(0, 1, 1);
  t.end_step();
  // Both pushes jumped the queue, so the younger seq now leads.
  const auto first = t.try_recv_from(1, 0);
  const auto second = t.try_recv_from(1, 0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->seq, 1);
  EXPECT_EQ(second->seq, 0);
  EXPECT_EQ(t.stats().reordered_messages, 2);
}

TEST(MessageFaults, StepWindowGatesTheFault) {
  FaultPlan faults;
  faults.seed = 15;
  auto mf = any_edge();
  mf.drop_prob = 1.0;
  mf.first_step = 1;
  mf.last_step = 1;  // only messages sent while exactly one step is closed
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);

  for (int step = 0; step < 3; ++step) {
    t.send(0, 1, 1);
    t.end_step();
  }
  EXPECT_EQ(t.stats().dropped_messages, 1) << "only the windowed send dies";
  EXPECT_TRUE(t.try_recv_from(1, 0).has_value());  // step-0 send
  const auto survivor = t.try_recv_from(1, 0);     // step-2 send
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->seq, 2);
  EXPECT_FALSE(t.try_recv_from(1, 0).has_value());
}

TEST(MessageFaults, EdgeFilterFirstMatchWins) {
  FaultPlan faults;
  faults.seed = 16;
  FaultPlan::MessageFault specific;
  specific.src = 0;
  specific.dst = 1;
  specific.drop_prob = 1.0;
  faults.message_faults.push_back(specific);
  faults.message_faults.push_back(any_edge());  // benign wildcard after
  InProcTransport t(LinkGrid::uniform(3, 100.0), nullptr, faults);

  t.send(0, 1, 1);
  t.send(1, 0, 1);
  t.send(0, 2, 1);
  t.end_step();
  EXPECT_EQ(t.stats().dropped_messages, 1);
  EXPECT_EQ(t.stats().dropped_on(0, 1), 1);
  EXPECT_TRUE(t.try_recv_from(0, 1).has_value());
  EXPECT_TRUE(t.try_recv_from(2, 0).has_value());

  // A wildcard listed first masks a later, more specific entry: faults
  // match in declaration order, first hit wins.
  FaultPlan masked;
  masked.seed = 16;
  masked.message_faults.push_back(any_edge());  // matches everything, benign
  masked.message_faults.push_back(specific);
  InProcTransport t2(LinkGrid::uniform(3, 100.0), nullptr, masked);
  t2.send(0, 1, 1);
  t2.end_step();
  EXPECT_EQ(t2.stats().dropped_messages, 0);
  EXPECT_TRUE(t2.try_recv_from(1, 0).has_value());
}

TEST(MessageFaults, SimAndInProcMakeIdenticalFaultDecisions) {
  FaultPlan faults;
  faults.seed = 20260808;
  auto mf = any_edge();
  mf.drop_prob = 0.3;
  mf.delay_prob = 0.3;
  mf.delay_steps_max = 2;
  mf.duplicate_prob = 0.3;
  mf.corrupt_prob = 0.3;
  mf.reorder_prob = 0.3;
  faults.message_faults.push_back(mf);

  const auto script = [](comm::Transport& t) {
    for (int step = 0; step < 6; ++step) {
      for (int64_t i = 0; i < 4; ++i)
        t.send(i, (i + 1) % 4, 8 + step);
      t.end_step();
    }
  };
  SimTransport sim(LinkGrid::uniform(4, 100.0), nullptr, faults);
  InProcTransport inproc(LinkGrid::uniform(4, 100.0), nullptr, faults);
  script(sim);
  script(inproc);
  const TransportStats& a = sim.stats();
  const TransportStats& b = inproc.stats();
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.delayed_messages, b.delayed_messages);
  EXPECT_EQ(a.duplicated_messages, b.duplicated_messages);
  EXPECT_EQ(a.corrupt_messages, b.corrupt_messages);
  EXPECT_EQ(a.reordered_messages, b.reordered_messages);
  EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes);
  EXPECT_EQ(a.goodput_bytes(), b.goodput_bytes());
  EXPECT_GT(a.dropped_messages + a.delayed_messages + a.duplicated_messages,
            0)
      << "the plan must actually fire for this test to mean anything";
}

// ---- reliable delivery ------------------------------------------------------

TEST(Reliable, RetransmitRestoresDeliveryThroughLossWindow) {
  FaultPlan faults;
  faults.seed = 31;
  auto mf = any_edge();
  mf.drop_prob = 1.0;
  mf.first_step = 0;
  mf.last_step = 0;  // everything sent before the first close is lost
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);
  ReliableChannel ch(t, RetryPolicy{});

  const std::vector<double> payload{1.5, 2.5, 3.5};
  ch.send(0, 1, 3, payload.data());
  const Message msg = ch.recv(1, 0);
  EXPECT_EQ(msg.payload, payload);
  EXPECT_TRUE(msg.intact());
  // Original (step 0) lost, first retransmit still inside the window,
  // second retransmit (step 1) lands: two retransmissions, deterministic.
  EXPECT_EQ(ch.retransmits(), 2);
  const TransportStats& st = t.stats();
  EXPECT_EQ(st.retransmit_messages, 2);
  EXPECT_EQ(st.dropped_messages, 2);
  EXPECT_GT(st.backoff_seconds, 0.0);
  // Goodput still reads as the single message a fault-free run would move.
  EXPECT_EQ(st.goodput_bytes(), st.total_wire_bytes / 3);
}

TEST(Reliable, DuplicatesAreDeliveredExactlyOnceInOrder) {
  FaultPlan faults;
  faults.seed = 32;
  auto mf = any_edge();
  mf.duplicate_prob = 1.0;
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);
  ReliableChannel ch(t, RetryPolicy{});

  const std::vector<double> first{1.0};
  const std::vector<double> second{2.0};
  ch.send(0, 1, 1, first.data());
  ch.send(0, 1, 1, second.data());
  t.end_step();
  const Message m0 = ch.recv(1, 0);
  const Message m1 = ch.recv(1, 0);
  EXPECT_EQ(m0.payload, first);
  EXPECT_EQ(m1.payload, second);
  EXPECT_EQ(m0.seq, 0);
  EXPECT_EQ(m1.seq, 1);
  EXPECT_EQ(ch.retransmits(), 0) << "duplicates never trigger a retry";
}

TEST(Reliable, CorruptedCopyIsRejectedUntilACleanRetransmit) {
  FaultPlan faults;
  faults.seed = 33;
  auto mf = any_edge();
  mf.corrupt_prob = 1.0;
  mf.first_step = 0;
  mf.last_step = 0;
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);
  ReliableChannel ch(t, RetryPolicy{});

  const std::vector<double> payload{9.0, 8.0, 7.0};
  ch.send(0, 1, 3, payload.data());
  t.end_step();
  const Message msg = ch.recv(1, 0);
  EXPECT_TRUE(msg.intact());
  EXPECT_EQ(msg.payload, payload) << "the clean retransmit must carry the "
                                     "pre-corruption bytes";
  EXPECT_GE(ch.retransmits(), 1);
  EXPECT_GE(t.stats().corrupt_messages, 1);
}

TEST(Reliable, ExhaustedRetriesThrowTypedTimeoutNamingTheEdge) {
  FaultPlan faults;
  faults.seed = 34;
  auto mf = any_edge();
  mf.drop_prob = 1.0;  // forever
  faults.message_faults.push_back(mf);
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_sec = 0.01;
  ReliableChannel ch(t, policy);

  ch.send(0, 1, 2);
  t.end_step();
  try {
    (void)ch.recv(1, 0);
    FAIL() << "total loss must time out";
  } catch (const DeliveryTimeoutError& e) {
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.dst(), 1);
    EXPECT_EQ(e.attempts(), 3);
  }
  EXPECT_EQ(ch.retransmits(), 3);
  EXPECT_EQ(t.stats().dropped_messages, 4);  // original + 3 retransmits
  // Exponential backoff: base * (1 + 2 + 4) of modeled waiting.
  EXPECT_NEAR(t.stats().backoff_seconds, 0.07, 1e-12);
}

TEST(Reliable, RetryPolicyReadsEnvOverrides) {
  ::setenv("COMDML_RETRY_MAX", "2", 1);
  ::setenv("COMDML_BACKOFF_BASE_MS", "5", 1);
  ::setenv("COMDML_RETRY_ADAPTIVE", "1", 1);
  ::setenv("COMDML_RETRY_ADAPTIVE_MAX", "3", 1);
  const RetryPolicy policy = RetryPolicy::from_env();
  ::unsetenv("COMDML_RETRY_MAX");
  ::unsetenv("COMDML_BACKOFF_BASE_MS");
  ::unsetenv("COMDML_RETRY_ADAPTIVE");
  ::unsetenv("COMDML_RETRY_ADAPTIVE_MAX");
  EXPECT_EQ(policy.max_retries, 2);
  EXPECT_NEAR(policy.backoff_base_sec, 0.005, 1e-12);
  EXPECT_TRUE(policy.adaptive);
  EXPECT_EQ(policy.adaptive_extra_max, 3);
  const RetryPolicy defaults = RetryPolicy::from_env();
  EXPECT_EQ(defaults.max_retries, RetryPolicy{}.max_retries);
  EXPECT_FALSE(defaults.adaptive);
}

TEST(Reliable, AdaptiveBudgetGrowsLogarithmicallyWithObservedDrops) {
  RetryPolicy policy;
  policy.max_retries = 4;
  EXPECT_EQ(policy.budget(1000), 4) << "adaptive off: drops are ignored";
  policy.adaptive = true;
  EXPECT_EQ(policy.extra_retries(0), 0);
  EXPECT_EQ(policy.extra_retries(1), 1);
  EXPECT_EQ(policy.extra_retries(2), 1);
  EXPECT_EQ(policy.extra_retries(3), 2);
  EXPECT_EQ(policy.extra_retries(7), 3);
  EXPECT_EQ(policy.extra_retries(1 << 20), policy.adaptive_extra_max);
  EXPECT_EQ(policy.budget(7), 7);
  policy.adaptive_extra_max = 2;
  EXPECT_EQ(policy.budget(7), 6) << "the bonus saturates at the cap";
}

TEST(Reliable, AdaptiveBudgetTurnsATimeoutIntoADelivery) {
  // The edge black-holes steps 0-2: the original and the first two
  // retransmits all die, and only a fourth copy (step 3, past the fault
  // window) can land. A static budget of 2 gives up one step short; the
  // adaptive policy with the very same max_retries has watched three
  // drops accrue on the edge by then, extends the budget, and delivers.
  const auto windowed = [] {
    FaultPlan faults;
    faults.seed = 21;
    auto mf = any_edge();
    mf.first_step = 0;
    mf.last_step = 2;
    mf.drop_prob = 1.0;
    faults.message_faults.push_back(mf);
    return faults;
  };
  const double v = 4.5;
  {
    InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, windowed());
    RetryPolicy policy;
    policy.max_retries = 2;
    policy.backoff_base_sec = 0.001;
    ReliableChannel ch(t, policy);
    ch.send(0, 1, 1, &v);
    t.end_step();
    EXPECT_THROW((void)ch.recv(1, 0), DeliveryTimeoutError);
  }
  {
    InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, windowed());
    RetryPolicy policy;
    policy.max_retries = 2;
    policy.backoff_base_sec = 0.001;
    policy.adaptive = true;
    ReliableChannel ch(t, policy);
    ch.send(0, 1, 1, &v);
    t.end_step();
    const Message m = ch.recv(1, 0);
    EXPECT_TRUE(m.intact());
    EXPECT_DOUBLE_EQ(m.payload[0], 4.5);
    EXPECT_EQ(ch.retransmits(), 3);
    EXPECT_EQ(t.stats().dropped_messages, 3);
  }
}

// ---- collectives under message faults ---------------------------------------

FaultPlan lossy_plan(uint64_t seed) {
  FaultPlan faults;
  faults.seed = seed;
  auto mf = any_edge();
  mf.drop_prob = 0.25;
  mf.delay_prob = 0.2;
  mf.delay_steps_max = 2;
  mf.duplicate_prob = 0.2;
  mf.corrupt_prob = 0.15;
  faults.message_faults.push_back(mf);
  return faults;
}

/// Runs `protocol` over a faulty InProcTransport and asserts (a) the
/// result is bit-identical to a fault-free run and (b) a timing-only
/// SimTransport under the same plan predicts the executed goodput and
/// retransmission traffic exactly.
void expect_exact_under_faults(Protocol protocol, int64_t k, uint64_t seed) {
  const int64_t elems = 17;
  const bool star = protocol == Protocol::kParamServer;
  const auto grid = star ? LinkGrid::star(std::vector<double>(
                               static_cast<size_t>(k - 1), 100.0),
                                          0.0)
                         : LinkGrid::uniform(k, 100.0);
  // The plan's per-copy failure odds are real; a deeper retry budget keeps
  // the exercise about retransmission, not about giving up.
  ::setenv("COMDML_RETRY_MAX", "12", 1);

  // Param-server requests carry one buffer per *agent*; the server
  // endpoint aggregates and owns no model replica.
  const int64_t parties = star ? k - 1 : k;
  auto clean_bufs = random_buffers(parties, elems, 1000 + seed);
  auto faulty_bufs = clean_bufs;
  CollectiveRequest req;
  req.elems = elems;
  if (star) {
    req.weights.assign(static_cast<size_t>(parties), 1.0);
    req.weights[0] = 3.0;  // exercise the weighted path
  }

  Rng clean_rng(seed);
  req.rng = &clean_rng;
  req.buffers = pointers(clean_bufs);
  InProcTransport clean(grid);
  (void)comm::collective(protocol).run(clean, req);

  Rng faulty_rng(seed);
  req.rng = &faulty_rng;
  req.buffers = pointers(faulty_bufs);
  InProcTransport faulty(grid, nullptr, lossy_plan(seed));
  (void)comm::collective(protocol).run(faulty, req);

  for (int64_t i = 0; i < parties; ++i)
    EXPECT_EQ(clean_bufs[static_cast<size_t>(i)],
              faulty_bufs[static_cast<size_t>(i)])
        << "agent " << i << " diverged under message faults";

  // Retransmission restored delivery exactly when a fault hit a matched
  // message, and its cost is visible — never folded into goodput.
  const TransportStats& fst = faulty.stats();
  const bool fired = fst.dropped_messages + fst.corrupt_messages +
                         fst.delayed_messages >
                     0;
  EXPECT_EQ(fst.retransmit_messages > 0, fired);
  EXPECT_EQ(fst.goodput_bytes(), clean.stats().total_wire_bytes);

  // Timing-only prediction: same plan, same decisions, same traffic.
  Rng sim_rng(seed);
  req.rng = &sim_rng;
  req.buffers.clear();
  SimTransport sim(grid, nullptr, lossy_plan(seed));
  (void)comm::collective(protocol).run(sim, req);
  ::unsetenv("COMDML_RETRY_MAX");
  EXPECT_EQ(sim.stats().total_wire_bytes, faulty.stats().total_wire_bytes);
  EXPECT_EQ(sim.stats().retransmit_messages,
            faulty.stats().retransmit_messages);
  EXPECT_EQ(sim.stats().goodput_bytes(), faulty.stats().goodput_bytes());
}

TEST(FaultyCollectives, RingAllReduceExactUnderMessageFaults) {
  expect_exact_under_faults(Protocol::kRingAllReduce, 4, 41);
}

TEST(FaultyCollectives, HalvingDoublingExactUnderMessageFaults) {
  expect_exact_under_faults(Protocol::kHalvingDoublingAllReduce, 4, 42);
}

TEST(FaultyCollectives, GossipExactUnderMessageFaults) {
  expect_exact_under_faults(Protocol::kGossip, 5, 43);
}

TEST(FaultyCollectives, ParamServerExactUnderMessageFaults) {
  expect_exact_under_faults(Protocol::kParamServer, 5, 44);
}

TEST(FaultyCollectives, GossipSurvivorMatchesPreDeadRun) {
  const int64_t k = 5, elems = 11, victim = 2;
  auto recovered = random_buffers(k, elems, 77);
  auto predead = recovered;

  // The victim's every push is lost: whoever drew it as a partner times
  // out, the victim is declared dead, and the round re-forms around the
  // survivors (rng and buffers rewound to the round start).
  FaultPlan faults;
  faults.seed = 50;
  FaultPlan::MessageFault mute;
  mute.src = victim;
  mute.dst = -1;
  mute.drop_prob = 1.0;
  faults.message_faults.push_back(mute);

  CollectiveRequest req;
  req.elems = elems;

  Rng rng_a(5);
  req.rng = &rng_a;
  req.buffers = pointers(recovered);
  InProcTransport dying(LinkGrid::uniform(k, 100.0), nullptr, faults);
  dying.schedule_endpoint_failure(victim, 1 << 20);  // arms recovery only
  const auto rep = comm::collective(Protocol::kGossip).run(dying, req);
  EXPECT_GE(rep.recoveries, 1);
  EXPECT_FALSE(dying.endpoint_alive(victim));

  // From-scratch run where the victim was never alive: bit-identical
  // survivor states.
  Rng rng_b(5);
  req.rng = &rng_b;
  req.buffers = pointers(predead);
  InProcTransport clean(LinkGrid::uniform(k, 100.0), nullptr, faults);
  clean.fail_endpoint(victim);
  (void)comm::collective(Protocol::kGossip).run(clean, req);
  for (int64_t i = 0; i < k; ++i) {
    if (i == victim) continue;
    EXPECT_EQ(recovered[static_cast<size_t>(i)],
              predead[static_cast<size_t>(i)])
        << "survivor " << i;
  }
}

TEST(FaultyCollectives, GossipFailsSilentPeerAndRecovers) {
  // Total loss on 0 -> 1 in a 2-agent mesh: the push times out, agent 0 is
  // declared dead, and the round re-forms (a lone survivor sits it out
  // with its rewound state).
  FaultPlan faults;
  faults.seed = 51;
  FaultPlan::MessageFault mf;
  mf.src = 0;
  mf.dst = 1;
  mf.drop_prob = 1.0;
  faults.message_faults.push_back(mf);

  auto bufs = random_buffers(2, 7, 9);
  const auto orig = bufs;
  CollectiveRequest req;
  req.elems = 7;
  req.buffers = pointers(bufs);
  Rng rng(3);
  req.rng = &rng;
  InProcTransport t(LinkGrid::uniform(2, 100.0), nullptr, faults);
  t.schedule_endpoint_failure(0, 1 << 20);  // arm recovery, never fires
  const auto rep = comm::collective(Protocol::kGossip).run(t, req);
  EXPECT_GE(rep.recoveries, 1);
  EXPECT_FALSE(t.endpoint_alive(0));
  EXPECT_EQ(bufs[1], orig[1]) << "survivor state rewound, not half-merged";
}

TEST(FaultyCollectives, ParamServerSurvivorWeightsRenormalize) {
  const int64_t agents = 4, elems = 9, victim = 1;
  const auto grid =
      LinkGrid::star(std::vector<double>(static_cast<size_t>(agents), 100.0),
                     0.0);
  auto recovered = random_buffers(agents, elems, 88);
  auto survivor_only = recovered;
  const std::vector<double> weights{1.0, 5.0, 2.0, 3.0};

  CollectiveRequest req;
  req.elems = elems;
  req.weights = weights;
  req.buffers = pointers(recovered);
  InProcTransport dying(grid);
  dying.schedule_endpoint_failure(victim, 1);  // dies after the upload step
  const auto rep = comm::collective(Protocol::kParamServer).run(dying, req);
  EXPECT_GE(rep.recoveries, 1);

  // Explicit survivor round on a clean star: the weight normalization must
  // re-derive over the survivor weights alone.
  CollectiveRequest explicit_req;
  explicit_req.elems = elems;
  explicit_req.participants = {0, 2, 3};
  explicit_req.weights = {weights[0], weights[2], weights[3]};
  explicit_req.buffers = pointers(survivor_only);
  InProcTransport clean(grid);
  (void)comm::collective(Protocol::kParamServer).run(clean, explicit_req);
  for (const int64_t i : {0, 2, 3})
    EXPECT_EQ(recovered[static_cast<size_t>(i)],
              survivor_only[static_cast<size_t>(i)])
        << "survivor " << i;
}

TEST(FaultyCollectives, ParamServerServerDeathIsFatal) {
  const auto grid =
      LinkGrid::star(std::vector<double>(3, 100.0), 0.0);
  const int64_t server = 3;
  auto bufs = random_buffers(3, 5, 66);  // one replica per agent, none for
                                         // the server
  CollectiveRequest req;
  req.elems = 5;
  req.buffers = pointers(bufs);
  {
    InProcTransport t(grid);
    t.fail_endpoint(server);
    EXPECT_THROW((void)comm::collective(Protocol::kParamServer).run(t, req),
                 EndpointDownError);
  }
  {
    // A silent server (total loss on its downlink) is equally fatal: the
    // timeout names the server and is not survivable.
    FaultPlan faults;
    faults.seed = 52;
    FaultPlan::MessageFault mf;
    mf.src = server;
    mf.dst = 0;
    mf.drop_prob = 1.0;
    faults.message_faults.push_back(mf);
    InProcTransport t(grid, nullptr, faults);
    t.schedule_endpoint_failure(0, 1 << 20);  // recovery armed
    EXPECT_THROW((void)comm::collective(Protocol::kParamServer).run(t, req),
                 DeliveryTimeoutError);
  }
}

TEST(FaultyCollectives, RandomizedSeedSoakStaysExact) {
  // Churn-soak entry point: CI randomizes COMDML_FAULT_SEED across its
  // seed matrix; locally a fixed trio keeps the test deterministic.
  std::vector<uint64_t> seeds{3, 17, 99};
  if (const char* env = std::getenv("COMDML_FAULT_SEED"))
    seeds.push_back(static_cast<uint64_t>(std::atoll(env)));
  for (const uint64_t seed : seeds) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    expect_exact_under_faults(Protocol::kRingAllReduce, 5, seed);
    expect_exact_under_faults(Protocol::kGossip, 4, seed);
  }
}

// ---- straggler deadline + autonomous checkpointing (RealFleet) --------------

core::ModelFactory mlp_factory(int64_t in, int64_t classes) {
  return [in, classes](Rng& rng) {
    return nn::mlp({in, 16, classes}, rng);
  };
}

std::vector<data::Dataset> blob_shards(int64_t agents, uint64_t seed) {
  constexpr int64_t kClasses = 3, kFeatures = 6, kPerAgent = 24;
  Rng rng(seed);
  const auto ds = data::make_blobs(agents * kPerAgent, kClasses, kFeatures,
                                   0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  return shards;
}

Topology hetero_mesh(int64_t agents) {
  std::vector<ResourceProfile> profiles;
  const std::vector<double> cpus{4.0, 0.2, 2.0, 0.5};
  for (int64_t i = 0; i < agents; ++i)
    profiles.push_back({cpus[static_cast<size_t>(i) % cpus.size()], 100.0});
  return Topology::full_mesh(profiles);
}

FleetOptions fast_options() {
  FleetOptions opt;
  opt.seed = 7;
  opt.train.batches_per_round = 2;
  opt.comms.bucket_bytes = 4096;
  return opt;
}

RealFleet make_fleet(const FleetOptions& opt, int64_t agents,
                     uint64_t data_seed = 55) {
  return RealFleet(mlp_factory(6, 3), 3, blob_shards(agents, data_seed),
                   hetero_mesh(agents), opt);
}

void expect_live_replicas_equal(RealFleet& fleet) {
  const auto live = fleet.live_agents();
  ASSERT_FALSE(live.empty());
  const auto ref = nn::state_of(fleet.model(live.front()));
  for (const Tensor& t : ref)
    for (const float v : t.flat())
      ASSERT_TRUE(std::isfinite(v)) << "non-finite consensus";
  for (size_t a = 1; a < live.size(); ++a) {
    const auto other = nn::state_of(fleet.model(live[a]));
    ASSERT_EQ(ref.size(), other.size());
    for (size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(ref[i], other[i]) << "replica " << live[a] << " tensor " << i;
  }
}

TEST(StragglerDeadline, SlowSoloIsDeferredAndReconverges) {
  FleetOptions opt = fast_options();
  opt.faults.deadline_sec = 1e-9;  // every solo agent is late
  auto fleet = make_fleet(opt, 5);  // odd fleet: pairing leaves one solo
  const auto first = fleet.step();
  EXPECT_GE(first.num_pairs, 1);
  EXPECT_EQ(first.late_agents, 1) << "the lone solo misses the deadline";
  // After the round the late agent was re-synced to the on-time consensus
  // and its surplus moved into the residual, so every replica agrees.
  expect_live_replicas_equal(fleet);

  float last_loss = first.mean_loss;
  EXPECT_TRUE(std::isfinite(last_loss));
  for (int r = 0; r < 5; ++r) last_loss = fleet.step().mean_loss;
  EXPECT_TRUE(std::isfinite(last_loss));
  EXPECT_LT(last_loss, first.mean_loss)
      << "late updates riding the residual must not stall training";
}

TEST(StragglerDeadline, GenerousDeadlineIsANoOp) {
  FleetOptions relaxed = fast_options();
  relaxed.faults.deadline_sec = 1e9;
  FleetOptions off = fast_options();

  auto a = make_fleet(relaxed, 5);
  auto b = make_fleet(off, 5);
  for (int r = 0; r < 2; ++r) {
    const auto sa = a.step();
    const auto sb = b.step();
    EXPECT_EQ(sa.late_agents, 0);
    EXPECT_EQ(sb.late_agents, 0);
  }
  for (int64_t i = 0; i < a.agents(); ++i) {
    const auto sa = nn::state_of(a.model(i));
    const auto sb = nn::state_of(b.model(i));
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t t = 0; t < sa.size(); ++t)
      EXPECT_EQ(sa[t], sb[t]) << "deadline bookkeeping must not perturb "
                                 "a fleet with no stragglers";
  }
}

/// Unique scratch dir under the system temp root; removed by the guard.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("comdml_unreliable_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

std::vector<fs::path> checkpoint_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<uint8_t> read_blob(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

TEST(AutoCheckpoint, WritesEveryNRoundsAndPrunesToRetention) {
  TempDir dir("prune");
  FleetOptions opt = fast_options();
  opt.faults.checkpoint_every = 1;
  opt.faults.checkpoint_retain = 2;
  opt.faults.checkpoint_dir = dir.path.string();
  auto fleet = make_fleet(opt, 3);
  for (int r = 0; r < 5; ++r) {
    (void)fleet.step();
    EXPECT_EQ(fleet.rounds_since_checkpoint(), 0);
  }
  const auto files = checkpoint_files(dir.path);
  ASSERT_EQ(files.size(), 2u) << "retention must prune the older blobs";
  EXPECT_EQ(files[0].filename().string(), "fleet_r000004.cmdl");
  EXPECT_EQ(files[1].filename().string(), "fleet_r000005.cmdl");

  // The newest blob restores into an equally-shaped fleet at round 5.
  auto resumed = make_fleet(fast_options(), 3);
  resumed.restore(read_blob(files[1]));
  EXPECT_EQ(resumed.round(), 5);
}

TEST(AutoCheckpoint, RestoredFleetResumesBitIdentically) {
  TempDir dir("resume");
  FleetOptions opt = fast_options();
  opt.faults.checkpoint_every = 2;
  opt.faults.checkpoint_retain = 4;
  opt.faults.checkpoint_dir = dir.path.string();
  auto original = make_fleet(opt, 4);
  for (int r = 0; r < 4; ++r) (void)original.step();

  auto resumed = make_fleet(fast_options(), 4);
  resumed.restore(read_blob(dir.path / "fleet_r000002.cmdl"));
  EXPECT_EQ(resumed.round(), 2);
  for (int r = 0; r < 2; ++r) (void)resumed.step();

  for (int64_t i = 0; i < original.agents(); ++i) {
    const auto a = nn::state_of(original.model(i));
    const auto b = nn::state_of(resumed.model(i));
    ASSERT_EQ(a.size(), b.size());
    for (size_t t = 0; t < a.size(); ++t)
      EXPECT_EQ(a[t], b[t]) << "agent " << i << " tensor " << t;
  }
}

TEST(AutoCheckpoint, RestoreAfterMidTrainingCrashIntoSmallerLiveSet) {
  TempDir dir("crash");
  FleetOptions opt = fast_options();
  opt.faults.checkpoint_every = 1;
  opt.faults.checkpoint_dir = dir.path.string();
  {
    auto doomed = make_fleet(opt, 4);
    (void)doomed.step();
    (void)doomed.step();
    // The process "crashes" here: the fleet object is simply abandoned.
  }
  const auto files = checkpoint_files(dir.path);
  ASSERT_FALSE(files.empty());

  auto revived = make_fleet(fast_options(), 4);
  revived.restore(read_blob(files.back()));
  EXPECT_EQ(revived.round(), 2);
  revived.leave(3);  // one agent did not survive the outage
  EXPECT_EQ(revived.live_agents(), (std::vector<int64_t>{0, 1, 2}));
  const auto stats = revived.step();
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
  expect_live_replicas_equal(revived);
}

TEST(CheckpointErrors, CorruptBlobsRaiseTypedErrorsAndLeaveFleetUsable) {
  auto fleet = make_fleet(fast_options(), 3);
  (void)fleet.step();
  const auto good = fleet.checkpoint();
  ASSERT_GT(good.size(), 16u);

  auto expect_rejected = [&](std::vector<uint8_t> bytes, const char* what) {
    auto probe = make_fleet(fast_options(), 3);
    EXPECT_THROW(probe.restore(bytes), CheckpointError) << what;
  };
  expect_rejected({}, "empty blob");
  expect_rejected(std::vector<uint8_t>(good.begin(), good.begin() + 10),
                  "header-truncated blob");
  expect_rejected(std::vector<uint8_t>(good.begin(), good.end() - 7),
                  "body-truncated blob");
  auto flipped = good;
  flipped[flipped.size() / 2] ^= 0x40;
  expect_rejected(flipped, "bit-flipped payload");
  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  expect_rejected(bad_magic, "wrong magic");
  auto bad_version = good;
  bad_version[4] ^= 0xFF;
  expect_rejected(bad_version, "unknown version");

  // A failed restore must not corrupt the rejecting fleet.
  auto survivor = make_fleet(fast_options(), 3);
  EXPECT_THROW(survivor.restore(flipped), CheckpointError);
  const auto stats = survivor.step();
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
}

TEST(CheckpointErrors, GeometryFlexibleRestore) {
  auto small = make_fleet(fast_options(), 3);
  (void)small.step();
  const auto blob = small.checkpoint();

  // A wider fleet adopts the blob: extra agents come up dead.
  auto wide = make_fleet(fast_options(), 5);
  wide.restore(blob);
  EXPECT_EQ(wide.live_agents(), (std::vector<int64_t>{0, 1, 2}));
  const auto stats = wide.step();
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
  expect_live_replicas_equal(wide);

  // A narrower fleet cannot: the blob carries more agents than exist.
  auto big = make_fleet(fast_options(), 5);
  (void)big.step();
  const auto big_blob = big.checkpoint();
  auto narrow = make_fleet(fast_options(), 3);
  EXPECT_THROW(narrow.restore(big_blob), CheckpointError);
}

// ---- --fail-agent spec parsing ----------------------------------------------

TEST(FaultSpec, AcceptsCanonicalForms) {
  FleetOptions::FaultOptions::AgentFailure f;
  ASSERT_TRUE(core::parse_fault_spec("3@5", f));
  EXPECT_EQ(f.agent, 3);
  EXPECT_EQ(f.round, 5);
  EXPECT_EQ(f.after_batches, -1);
  EXPECT_EQ(f.after_buckets, -1);
  EXPECT_EQ(f.at_collective_step, -1);

  ASSERT_TRUE(core::parse_fault_spec("0@0:b2", f));
  EXPECT_EQ(f.after_batches, 2);
  ASSERT_TRUE(core::parse_fault_spec("1@2:k10", f));
  EXPECT_EQ(f.after_buckets, 10);
  EXPECT_EQ(f.after_batches, -1) << "the out param must be reset per parse";
  ASSERT_TRUE(core::parse_fault_spec("7@1:c3", f));
  EXPECT_EQ(f.at_collective_step, 3);
}

TEST(FaultSpec, RejectsMalformedSpecsWithAReason) {
  const std::vector<std::string> bad{
      "",        "@",      "1@",      "@2",      "-1@2",  "1@-2",
      "1@2x",    "x@2",    "1@2:",    "1@2:b",   "1@2:q5", "1@2:b1:k2",
      "1@2:b-1", "1 @2",   "1@2 ",    "1@2:b1x", "1@@2",  "0x1@2",
  };
  for (const std::string& spec : bad) {
    FleetOptions::FaultOptions::AgentFailure f;
    std::string why;
    EXPECT_FALSE(core::parse_fault_spec(spec, f, &why))
        << "'" << spec << "' must be rejected";
    EXPECT_FALSE(why.empty()) << "'" << spec << "' needs a reason";
  }
}

}  // namespace
}  // namespace comdml
