// Shared helpers for the ComDML test suites.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/module.hpp"

namespace comdml::testing {

using nn::Module;
using tensor::Rng;
using tensor::Tensor;

/// Scalar probe L(x) = sum(forward(x) .* G) used for gradient checks.
inline float probe_loss(Module& m, const Tensor& x, const Tensor& g) {
  const Tensor y = m.forward(x, /*train=*/true);
  EXPECT_EQ(y.shape(), g.shape());
  double acc = 0.0;
  auto yo = y.flat();
  auto go = g.flat();
  for (size_t i = 0; i < yo.size(); ++i)
    acc += static_cast<double>(yo[i]) * go[i];
  return static_cast<float>(acc);
}

/// Max relative error between the analytic input gradient and central
/// finite differences. `g` is the upstream gradient (same shape as output).
inline double input_grad_error(Module& m, Tensor x, const Tensor& g,
                               float eps = 1e-2f) {
  (void)m.forward(x, true);
  const Tensor analytic = m.backward(g);
  double worst = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float up = probe_loss(m, x, g);
    x[i] = orig - eps;
    const float down = probe_loss(m, x, g);
    x[i] = orig;
    const double numeric = (static_cast<double>(up) - down) / (2.0 * eps);
    const double denom = std::max(1.0, std::fabs(numeric));
    worst = std::max(worst, std::fabs(numeric - analytic[i]) / denom);
  }
  return worst;
}

/// Max relative error between analytic parameter gradients and central
/// finite differences (samples at most `max_checks` coordinates/parameter).
inline double param_grad_error(Module& m, const Tensor& x, const Tensor& g,
                               float eps = 1e-2f, int64_t max_checks = 24) {
  m.zero_grad();
  (void)m.forward(x, true);
  (void)m.backward(g);
  double worst = 0.0;
  for (nn::Parameter* p : m.parameters()) {
    const int64_t stride =
        std::max<int64_t>(1, p->value.size() / max_checks);
    for (int64_t i = 0; i < p->value.size(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float up = probe_loss(m, x, g);
      p->value[i] = orig - eps;
      const float down = probe_loss(m, x, g);
      p->value[i] = orig;
      const double numeric = (static_cast<double>(up) - down) / (2.0 * eps);
      const double denom = std::max(1.0, std::fabs(numeric));
      worst = std::max(worst, std::fabs(numeric - p->grad[i]) / denom);
    }
  }
  return worst;
}

/// Random tensor whose entries stay away from ReLU's kink at zero.
inline Tensor away_from_zero(Rng& rng, tensor::Shape shape,
                             float margin = 0.15f) {
  Tensor t = rng.normal_tensor(std::move(shape), 0.0f, 1.0f);
  for (float& v : t.flat()) {
    if (std::fabs(v) < margin) v = v < 0 ? v - margin : v + margin;
  }
  return t;
}

}  // namespace comdml::testing
