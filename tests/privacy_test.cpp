// Privacy toolkit tests: DP mechanisms, patch shuffling, and distance
// correlation as a leakage metric.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "privacy/dcor.hpp"
#include "privacy/dp.hpp"
#include "privacy/patch_shuffle.hpp"
#include "tensor/ops.hpp"

namespace comdml::privacy {
namespace {

using tensor::Rng;
using tensor::Tensor;

// ---- clipping --------------------------------------------------------------------

TEST(Clip, WithinBoundIsUntouched) {
  std::vector<Tensor> ts{Tensor::of({0.3f, 0.4f})};  // norm 0.5
  EXPECT_DOUBLE_EQ(clip_l2(ts, 1.0f), 1.0);
  EXPECT_FLOAT_EQ(ts[0][0], 0.3f);
}

TEST(Clip, ScalesDownToBound) {
  std::vector<Tensor> ts{Tensor::of({3.0f, 4.0f})};  // norm 5
  const double scale = clip_l2(ts, 1.0f);
  EXPECT_NEAR(scale, 0.2, 1e-6);
  EXPECT_NEAR(tensor::l2_norm(ts[0]), 1.0f, 1e-5);
}

TEST(Clip, GlobalNormAcrossTensors) {
  std::vector<Tensor> ts{Tensor::of({3.0f}), Tensor::of({4.0f})};
  (void)clip_l2(ts, 1.0f);
  const double norm = std::sqrt(ts[0][0] * ts[0][0] + ts[1][0] * ts[1][0]);
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

// ---- mechanisms -------------------------------------------------------------------

TEST(Laplace, NoiseScaleMatchesEpsilon) {
  Rng rng(1);
  std::vector<Tensor> ts{Tensor({20000})};
  laplace_mechanism(ts, 0.5, 1.0, rng);
  // Laplace(b): E|X| = b = sensitivity/eps = 2.
  double mean_abs = 0;
  for (const float v : ts[0].flat()) mean_abs += std::fabs(v);
  mean_abs /= static_cast<double>(ts[0].size());
  EXPECT_NEAR(mean_abs, 2.0, 0.1);
}

TEST(Laplace, TighterEpsilonMoreNoise) {
  Rng rng1(2), rng2(2);
  std::vector<Tensor> weak{Tensor({5000})}, strong{Tensor({5000})};
  laplace_mechanism(weak, 2.0, 1.0, rng1);
  laplace_mechanism(strong, 0.2, 1.0, rng2);
  double weak_abs = 0, strong_abs = 0;
  for (const float v : weak[0].flat()) weak_abs += std::fabs(v);
  for (const float v : strong[0].flat()) strong_abs += std::fabs(v);
  EXPECT_GT(strong_abs, 5.0 * weak_abs);
}

TEST(Laplace, InvalidEpsilonThrows) {
  Rng rng(3);
  std::vector<Tensor> ts{Tensor({4})};
  EXPECT_THROW(laplace_mechanism(ts, 0.0, 1.0, rng), std::invalid_argument);
}

TEST(Gaussian, SigmaFormula) {
  EXPECT_NEAR(gaussian_sigma(1.0, 1e-5, 1.0),
              std::sqrt(2.0 * std::log(1.25e5)), 1e-9);
}

TEST(Gaussian, NoiseVarianceMatchesSigma) {
  Rng rng(4);
  std::vector<Tensor> ts{Tensor({20000})};
  gaussian_mechanism(ts, 1.0, 1e-5, 0.1, rng);
  double s2 = 0;
  for (const float v : ts[0].flat()) s2 += static_cast<double>(v) * v;
  const double sigma = gaussian_sigma(1.0, 1e-5, 0.1);
  EXPECT_NEAR(std::sqrt(s2 / ts[0].size()), sigma, 0.02);
}

// ---- patch shuffle -----------------------------------------------------------------

TEST(PatchShuffle, PreservesMultisetOfPixels) {
  Rng rng(5);
  const Tensor x = rng.normal_tensor({2, 3, 8, 8}, 0, 1);
  Rng srng(6);
  const Tensor y = patch_shuffle(x, 2, srng);
  ASSERT_EQ(y.shape(), x.shape());
  // Per-sample pixel multisets must match.
  for (int64_t i = 0; i < 2; ++i) {
    std::vector<float> a, b;
    for (int64_t k = 0; k < 3 * 64; ++k) {
      a.push_back(x.flat()[i * 3 * 64 + k]);
      b.push_back(y.flat()[i * 3 * 64 + k]);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(PatchShuffle, ActuallyPermutes) {
  Rng rng(7);
  const Tensor x = rng.normal_tensor({1, 1, 8, 8}, 0, 1);
  Rng srng(8);
  const Tensor y = patch_shuffle(x, 4, srng);
  EXPECT_FALSE(tensor::allclose(x, y, 1e-9f));
}

TEST(PatchShuffle, ChannelsMoveTogether) {
  Rng rng(9);
  // Make channel 1 = channel 0 + 100; the invariant must survive shuffling.
  Tensor x({1, 2, 4, 4});
  for (int64_t k = 0; k < 16; ++k) {
    x.flat()[k] = static_cast<float>(k);
    x.flat()[16 + k] = static_cast<float>(k) + 100.0f;
  }
  const Tensor y = patch_shuffle(x, 2, rng);
  for (int64_t k = 0; k < 16; ++k)
    EXPECT_FLOAT_EQ(y.flat()[16 + k], y.flat()[k] + 100.0f);
}

TEST(PatchShuffle, FullImagePatchIsIdentity) {
  Rng rng(10);
  const Tensor x = rng.normal_tensor({2, 3, 4, 4}, 0, 1);
  const Tensor y = patch_shuffle(x, 4, rng);
  EXPECT_TRUE(tensor::allclose(x, y));
}

TEST(PatchShuffle, RejectsIndivisiblePatch) {
  Rng rng(11);
  EXPECT_THROW((void)patch_shuffle(Tensor({1, 1, 8, 8}), 3, rng),
               std::invalid_argument);
}

// ---- distance correlation ------------------------------------------------------------

TEST(Dcor, PerfectDependenceIsOne) {
  Rng rng(12);
  const Tensor x = rng.normal_tensor({32, 4}, 0, 1);
  EXPECT_NEAR(distance_correlation(x, x), 1.0, 1e-6);
}

TEST(Dcor, LinearMapKeepsHighDcor) {
  Rng rng(13);
  const Tensor x = rng.normal_tensor({32, 4}, 0, 1);
  const Tensor z = tensor::scale(x, 3.0f);
  EXPECT_GT(distance_correlation(x, z), 0.99);
}

TEST(Dcor, IndependentBatchesNearZero) {
  // The empirical dCor estimator is positively biased at small n; with a
  // 256-sample batch independent Gaussians stay well below dependence.
  Rng rng(14);
  const Tensor x = rng.normal_tensor({256, 4}, 0, 1);
  const Tensor z = rng.normal_tensor({256, 4}, 0, 1);
  EXPECT_LT(distance_correlation(x, z), 0.30);
}

TEST(Dcor, NoiseLowersDependence) {
  Rng rng(15);
  const Tensor x = rng.normal_tensor({48, 6}, 0, 1);
  Tensor z_clean = x;
  Tensor z_noisy = x;
  for (float& v : z_noisy.flat()) v += rng.normal(0.0f, 3.0f);
  EXPECT_GT(distance_correlation(x, z_clean),
            distance_correlation(x, z_noisy));
}

TEST(Dcor, SymmetricInArguments) {
  Rng rng(16);
  const Tensor x = rng.normal_tensor({24, 3}, 0, 1);
  const Tensor z = rng.normal_tensor({24, 5}, 0, 1);
  EXPECT_NEAR(distance_correlation(x, z), distance_correlation(z, x),
              1e-9);
}

TEST(Dcor, RejectsBatchMismatch) {
  EXPECT_THROW(
      (void)distance_correlation(Tensor({4, 2}), Tensor({5, 2})),
      std::invalid_argument);
}

TEST(Dcor, PatchShuffleReducesLeakage) {
  // The privacy claim end-to-end: shuffled images are less correlated with
  // the originals than the originals themselves.
  Rng rng(17);
  const Tensor x = rng.normal_tensor({24, 1, 8, 8}, 0, 1);
  Rng srng(18);
  const Tensor shuffled = patch_shuffle(x, 2, srng);
  EXPECT_LT(distance_correlation(x, shuffled),
            distance_correlation(x, x));
}

}  // namespace
}  // namespace comdml::privacy
