// Data substrate tests: dataset validation, synthetic generators, IID and
// Dirichlet partitioning, batching.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/batcher.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace comdml::data {
namespace {

using tensor::Rng;

// ---- dataset ----------------------------------------------------------------

TEST(Dataset, ValidateAcceptsConsistent) {
  Rng rng(1);
  const Dataset ds = make_blobs(10, 2, 4, 0.1f, rng);
  EXPECT_NO_THROW(ds.validate());
  EXPECT_EQ(ds.size(), 10);
  EXPECT_EQ(ds.sample_shape(), tensor::Shape({4}));
}

TEST(Dataset, ValidateRejectsLabelCountMismatch) {
  Rng rng(2);
  Dataset ds = make_blobs(10, 2, 4, 0.1f, rng);
  ds.labels.pop_back();
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsOutOfRangeLabel) {
  Rng rng(3);
  Dataset ds = make_blobs(10, 2, 4, 0.1f, rng);
  ds.labels[0] = 2;
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(Dataset, SubsetSelectsRowsInOrder) {
  Rng rng(4);
  const Dataset ds = make_blobs(10, 2, 4, 0.1f, rng);
  const std::vector<int64_t> idx{7, 2};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.labels[0], ds.labels[7]);
  EXPECT_EQ(sub.labels[1], ds.labels[2]);
  for (int64_t f = 0; f < 4; ++f)
    EXPECT_EQ(sub.images.at({0, f}), ds.images.at({7, f}));
}

TEST(Dataset, SubsetRejectsBadIndex) {
  Rng rng(5);
  const Dataset ds = make_blobs(10, 2, 4, 0.1f, rng);
  const std::vector<int64_t> idx{10};
  EXPECT_THROW((void)ds.subset(idx), std::invalid_argument);
}

TEST(DatasetSpec, PaperGeometries) {
  EXPECT_EQ(cifar10_spec().train_size, 50000);
  EXPECT_EQ(cifar10_spec().classes, 10);
  EXPECT_EQ(cifar100_spec().classes, 100);
  EXPECT_EQ(cinic10_spec().train_size, 90000);
  EXPECT_EQ(cinic10_spec().sample_shape, tensor::Shape({3, 32, 32}));
}

// ---- synthetic ----------------------------------------------------------------

TEST(Synthetic, BlobsAreBalanced) {
  Rng rng(6);
  const Dataset ds = make_blobs(99, 3, 4, 0.1f, rng);
  std::vector<int64_t> counts(3, 0);
  for (const auto y : ds.labels) ++counts[static_cast<size_t>(y)];
  EXPECT_EQ(counts[0], 33);
  EXPECT_EQ(counts[1], 33);
  EXPECT_EQ(counts[2], 33);
}

TEST(Synthetic, SpiralsHaveUnitScale) {
  Rng rng(7);
  const Dataset ds = make_spirals(100, 2, 0.0f, rng);
  EXPECT_EQ(ds.size(), 200);
  EXPECT_LE(tensor::max_abs(ds.images), 1.1f);
}

TEST(Synthetic, ImagesHaveRequestedGeometry) {
  Rng rng(8);
  const Dataset ds = make_synthetic_images(20, 4, {3, 8, 8}, 0.1f, rng);
  EXPECT_EQ(ds.images.shape(), tensor::Shape({20, 3, 8, 8}));
  EXPECT_EQ(ds.classes, 4);
}

TEST(Synthetic, SameClassSamplesCorrelate) {
  Rng rng(9);
  const Dataset ds = make_synthetic_images(8, 4, {1, 4, 4}, 0.05f, rng);
  // Samples 0 and 4 share class 0; 0 and 1 do not.
  const auto dist = [&](int64_t a, int64_t b) {
    double s = 0;
    for (int64_t f = 0; f < 16; ++f) {
      const double d = ds.images.flat()[a * 16 + f] -
                       ds.images.flat()[b * 16 + f];
      s += d * d;
    }
    return s;
  };
  EXPECT_LT(dist(0, 4), dist(0, 1));
}

TEST(Synthetic, ForSpecScalesSampleCount) {
  Rng rng(10);
  const Dataset ds = make_for_spec(cifar10_spec(), 0.002, 0.3f, rng);
  EXPECT_EQ(ds.size(), 100);
  EXPECT_EQ(ds.classes, 10);
  EXPECT_EQ(ds.sample_shape(), tensor::Shape({3, 32, 32}));
}

TEST(Synthetic, RejectsBadFraction) {
  Rng rng(11);
  EXPECT_THROW((void)make_for_spec(cifar10_spec(), 0.0, 0.3f, rng),
               std::invalid_argument);
}

// ---- partitioning ---------------------------------------------------------------

TEST(Partition, IidCoversAllIndicesOnce) {
  Rng rng(12);
  const auto parts = iid_partition(103, 10, rng);
  ASSERT_EQ(parts.size(), 10u);
  std::set<int64_t> seen;
  for (const auto& shard : parts)
    for (const int64_t i : shard) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), 103u);
}

TEST(Partition, IidShardsNearlyEqual) {
  Rng rng(13);
  const auto parts = iid_partition(103, 10, rng);
  for (const auto& shard : parts) {
    EXPECT_GE(shard.size(), 10u);
    EXPECT_LE(shard.size(), 11u);
  }
}

TEST(Partition, IidRejectsTooManyAgents) {
  Rng rng(14);
  EXPECT_THROW((void)iid_partition(5, 10, rng), std::invalid_argument);
}

TEST(Partition, DirichletCoversAllIndicesOnce) {
  Rng rng(15);
  std::vector<int64_t> labels(500);
  for (size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int64_t>(i % 5);
  const auto parts = dirichlet_label_partition(labels, 8, 0.5, rng);
  std::set<int64_t> seen;
  for (const auto& shard : parts)
    for (const int64_t i : shard) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), labels.size());
}

TEST(Partition, DirichletRespectsMinimum) {
  Rng rng(16);
  std::vector<int64_t> labels(300);
  for (size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int64_t>(i % 3);
  const auto parts = dirichlet_label_partition(labels, 10, 0.1, rng, 5);
  for (const auto& shard : parts) EXPECT_GE(shard.size(), 5u);
}

TEST(Partition, DirichletSkewExceedsIid) {
  Rng rng(17);
  std::vector<int64_t> labels(2000);
  for (size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int64_t>(i % 10);
  const auto iid = iid_partition(2000, 10, rng);
  const auto skewed = dirichlet_label_partition(labels, 10, 0.5, rng);
  EXPECT_GT(label_skew(labels, skewed, 10),
            2.0 * label_skew(labels, iid, 10));
}

TEST(Partition, SmallerAlphaMoreSkew) {
  Rng rng(18);
  std::vector<int64_t> labels(3000);
  for (size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int64_t>(i % 10);
  double skew_small = 0, skew_large = 0;
  for (uint64_t trial = 0; trial < 5; ++trial) {
    Rng r1(100 + trial), r2(200 + trial);
    skew_small += label_skew(
        labels, dirichlet_label_partition(labels, 10, 0.1, r1), 10);
    skew_large += label_skew(
        labels, dirichlet_label_partition(labels, 10, 10.0, r2), 10);
  }
  EXPECT_GT(skew_small, skew_large);
}

TEST(Partition, HistogramsCountLabels) {
  Rng rng(19);
  std::vector<int64_t> labels{0, 0, 1, 1, 1, 2};
  Partition parts{{0, 2}, {1, 3, 4, 5}};
  const auto hist = label_histograms(labels, parts, 3);
  EXPECT_EQ(hist[0], (std::vector<int64_t>{1, 1, 0}));
  EXPECT_EQ(hist[1], (std::vector<int64_t>{1, 2, 1}));
}

// ---- batcher --------------------------------------------------------------------

TEST(Batcher, EmitsRequestedBatchSize) {
  Rng rng(20);
  const Dataset ds = make_blobs(50, 2, 4, 0.1f, rng);
  Batcher batcher(ds, 16, Rng(21));
  const Batch b = batcher.next();
  EXPECT_EQ(b.x.dim(0), 16);
  EXPECT_EQ(b.y.size(), 16u);
}

TEST(Batcher, BatchesPerEpochRoundsUp) {
  Rng rng(22);
  const Dataset ds = make_blobs(50, 2, 4, 0.1f, rng);
  Batcher batcher(ds, 16, Rng(23));
  EXPECT_EQ(batcher.batches_per_epoch(), 4);
}

TEST(Batcher, CoversEpochWithoutRepeats) {
  Rng rng(24);
  Dataset ds = make_blobs(10, 2, 1, 0.0f, rng);
  // Tag each sample with a unique feature value to track coverage.
  for (int64_t i = 0; i < 10; ++i) ds.images.flat()[i] = float(i);
  Batcher batcher(ds, 3, Rng(25));
  std::multiset<float> seen;
  for (int b = 0; b < 4; ++b) {
    const Batch batch = batcher.next();
    for (int64_t i = 0; i < batch.x.dim(0); ++i)
      seen.insert(batch.x.flat()[i]);
  }
  EXPECT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(float(i)), 1u);
}

TEST(Batcher, AdvancesEpochCounter) {
  Rng rng(26);
  const Dataset ds = make_blobs(8, 2, 4, 0.1f, rng);
  Batcher batcher(ds, 8, Rng(27));
  EXPECT_EQ(batcher.epoch(), 0);
  (void)batcher.next();
  (void)batcher.next();
  EXPECT_EQ(batcher.epoch(), 1);
}

TEST(Batcher, LastPartialBatchIsSmaller) {
  Rng rng(28);
  const Dataset ds = make_blobs(10, 2, 4, 0.1f, rng);
  Batcher batcher(ds, 4, Rng(29));
  (void)batcher.next();
  (void)batcher.next();
  const Batch last = batcher.next();
  EXPECT_EQ(last.x.dim(0), 2);
}

}  // namespace
}  // namespace comdml::data
