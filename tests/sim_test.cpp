// Simulator substrate tests: event queue semantics, resource profiles,
// topology builders and graph queries.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/resources.hpp"
#include "sim/topology.hpp"

namespace comdml::sim {
namespace {

using tensor::Rng;

// ---- event queue ---------------------------------------------------------------

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(2.0, [&] { order.push_back(2); });
  sim.schedule_in(1.0, [&] { order.push_back(1); });
  sim.schedule_in(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(1.0, [&] { order.push_back(1); });
  sim.schedule_in(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, EventsMayScheduleEvents) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_in(1.0, [&] {
    sim.schedule_in(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(5.0, [&] { ++fired; });
  const size_t n = sim.run(2.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, PastAbsoluteTimeThrows) {
  Simulator sim;
  sim.schedule_in(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, ReturnsExecutedCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(i, [] {});
  EXPECT_EQ(sim.run(), 7u);
}

// ---- resources -------------------------------------------------------------------

TEST(Resources, PaperProfileSets) {
  EXPECT_EQ(standard_cpu_profiles(),
            (std::vector<double>{4.0, 2.0, 1.0, 0.5, 0.2}));
  EXPECT_EQ(standard_comm_profiles(),
            (std::vector<double>{0.0, 10.0, 20.0, 50.0, 100.0}));
}

TEST(Resources, AssignCoversCpuProfilesEvenly) {
  Rng rng(1);
  const auto profiles = assign_profiles(100, rng);
  std::map<double, int> counts;
  for (const auto& p : profiles) ++counts[p.cpu];
  for (const double cpu : standard_cpu_profiles())
    EXPECT_EQ(counts[cpu], 20) << "cpu profile " << cpu;
}

TEST(Resources, AssignExcludesDisconnectedByDefault) {
  Rng rng(2);
  const auto profiles = assign_profiles(50, rng);
  for (const auto& p : profiles) EXPECT_GT(p.mbps, 0.0);
}

TEST(Resources, ReshuffleChangesAtMostFraction) {
  Rng rng(3);
  auto profiles = assign_profiles(50, rng);
  const auto before = profiles;
  reshuffle_profiles(profiles, 0.2, rng);
  int changed = 0;
  for (size_t i = 0; i < profiles.size(); ++i)
    if (profiles[i].cpu != before[i].cpu ||
        profiles[i].mbps != before[i].mbps)
      ++changed;
  EXPECT_LE(changed, 10);  // 20% of 50; redraws can land on the same value
}

TEST(Resources, ReshuffleZeroFractionIsNoop) {
  Rng rng(4);
  auto profiles = assign_profiles(20, rng);
  const auto before = profiles;
  reshuffle_profiles(profiles, 0.0, rng);
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].cpu, before[i].cpu);
    EXPECT_EQ(profiles[i].mbps, before[i].mbps);
  }
}

TEST(Resources, SamplesPerSecScalesWithCpu) {
  const ResourceProfile slow{0.5, 100};
  const ResourceProfile fast{2.0, 100};
  const double f = 1e9;
  EXPECT_DOUBLE_EQ(samples_per_sec(fast, f) / samples_per_sec(slow, f), 4.0);
}

TEST(Resources, SamplesPerSecRejectsZeroFlops) {
  EXPECT_THROW((void)samples_per_sec({1.0, 100}, 0.0),
               std::invalid_argument);
}

// ---- topology --------------------------------------------------------------------

std::vector<ResourceProfile> uniform_profiles(size_t k, double mbps = 100) {
  return std::vector<ResourceProfile>(k, ResourceProfile{1.0, mbps});
}

TEST(Topology, FullMeshConnectsEveryPair) {
  const auto topo = Topology::full_mesh(uniform_profiles(5));
  for (int64_t i = 0; i < 5; ++i)
    for (int64_t j = 0; j < 5; ++j)
      EXPECT_EQ(topo.linked(i, j), i != j);
  EXPECT_DOUBLE_EQ(topo.density(), 1.0);
  EXPECT_TRUE(topo.is_connected());
}

TEST(Topology, LinkBandwidthIsMinOfEndpoints) {
  std::vector<ResourceProfile> profiles{{1.0, 10.0}, {1.0, 100.0}};
  const auto topo = Topology::full_mesh(profiles);
  EXPECT_DOUBLE_EQ(topo.bandwidth_mbps(0, 1), 10.0);
}

TEST(Topology, DisconnectedEndpointKillsLink) {
  std::vector<ResourceProfile> profiles{{1.0, 0.0}, {1.0, 100.0}};
  const auto topo = Topology::full_mesh(profiles);
  EXPECT_FALSE(topo.linked(0, 1));
}

TEST(Topology, SelfLinkIsZero) {
  const auto topo = Topology::full_mesh(uniform_profiles(3));
  EXPECT_DOUBLE_EQ(topo.bandwidth_mbps(1, 1), 0.0);
}

TEST(Topology, RingHasTwoNeighbors) {
  const auto topo = Topology::ring(uniform_profiles(6));
  for (int64_t i = 0; i < 6; ++i)
    EXPECT_EQ(topo.neighbors(i).size(), 2u);
  EXPECT_TRUE(topo.is_connected());
  EXPECT_NEAR(topo.density(), 6.0 / 15.0, 1e-12);
}

TEST(Topology, RandomGraphDensityTracksP) {
  Rng rng(5);
  const auto topo = Topology::random_graph(uniform_profiles(60), 0.2, rng);
  EXPECT_NEAR(topo.density(), 0.2, 0.05);
}

TEST(Topology, RandomGraphZeroPIsEdgeless) {
  Rng rng(6);
  const auto topo = Topology::random_graph(uniform_profiles(5), 0.0, rng);
  EXPECT_FALSE(topo.is_connected());
  EXPECT_FALSE(topo.min_link_bandwidth().has_value());
}

TEST(Topology, MinLinkBandwidthFindsWeakestLink) {
  std::vector<ResourceProfile> profiles{{1, 100}, {1, 20}, {1, 50}};
  const auto topo = Topology::full_mesh(profiles);
  ASSERT_TRUE(topo.min_link_bandwidth().has_value());
  EXPECT_DOUBLE_EQ(*topo.min_link_bandwidth(), 20.0);
}

TEST(Topology, SetProfilesUpdatesBandwidth) {
  auto topo = Topology::full_mesh(uniform_profiles(2, 100));
  topo.set_profiles({{1.0, 10.0}, {1.0, 100.0}});
  EXPECT_DOUBLE_EQ(topo.bandwidth_mbps(0, 1), 10.0);
}

TEST(Topology, SetProfilesRejectsSizeChange) {
  auto topo = Topology::full_mesh(uniform_profiles(3));
  EXPECT_THROW(topo.set_profiles(uniform_profiles(2)),
               std::invalid_argument);
}

TEST(Topology, OutOfRangeQueriesThrow) {
  const auto topo = Topology::full_mesh(uniform_profiles(3));
  EXPECT_THROW((void)topo.bandwidth_mbps(0, 3), std::invalid_argument);
  EXPECT_THROW((void)topo.profile(-1), std::invalid_argument);
}

}  // namespace
}  // namespace comdml::sim
