// Empirical verification of Theorem 1: both sides of local-loss split
// training converge, for convex and non-convex objectives, and the fast
// side's convergence is tied to the slow side's (constants C1/C2).
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/convergence.hpp"
#include "data/synthetic.hpp"

namespace comdml::analysis {
namespace {

using nn::Rng;
using nn::Sequential;

// ---- analysis utilities ---------------------------------------------------------

TEST(Analysis, LogLogSlopeRecoversKnownRate) {
  std::vector<double> xs, ys;
  for (int r = 1; r <= 50; ++r) {
    xs.push_back(r);
    ys.push_back(3.0 / std::sqrt(static_cast<double>(r)));  // 1/sqrt(R)
  }
  EXPECT_NEAR(log_log_slope(xs, ys), -0.5, 1e-9);
}

TEST(Analysis, LogLogSlopeNeedsThreePoints) {
  std::vector<double> xs{1.0, 2.0}, ys{1.0, 0.5};
  EXPECT_THROW((void)log_log_slope(xs, ys), std::invalid_argument);
}

TEST(Analysis, DescentFractionOnMonotoneTrace) {
  std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(descent_fraction(down), 1.0);
  std::vector<double> up{1, 2, 3};
  EXPECT_DOUBLE_EQ(descent_fraction(up), 0.0);
}

TEST(Analysis, ShrinkRatioMeasuresDecay) {
  std::vector<double> trace(20);
  for (size_t i = 0; i < trace.size(); ++i)
    trace[i] = 10.0 / static_cast<double>(i + 1);
  EXPECT_GT(shrink_ratio(trace), 5.0);
}

TEST(Analysis, GradientNormZeroAfterZeroGrad) {
  Rng rng(1);
  auto net = nn::mlp({4, 8, 2}, rng);
  net->zero_grad();
  EXPECT_DOUBLE_EQ(gradient_norm(*net), 0.0);
}

// ---- Theorem 1: convex case ------------------------------------------------------
//
// A linear model (no hidden nonlinearity) under softmax cross-entropy is a
// convex problem; the theorem predicts convergence of both sides at the
// faster (convex) rates.

TEST(Theorem1, ConvexBothSidesConverge) {
  Rng rng(2);
  auto ds = data::make_blobs(256, 3, 8, 0.25f, rng);
  // Two linear units -> the split problem on each side is convex.
  auto net = nn::mlp({8, 6, 3}, rng);  // unit 0 = Linear+ReLU... make pure:
  Sequential model;
  {
    Rng r2(3);
    auto u1 = std::make_unique<Sequential>();
    u1->push(std::make_unique<nn::Linear>(8, 6, r2));
    auto u2 = std::make_unique<Sequential>();
    u2->push(std::make_unique<nn::Linear>(6, 3, r2));
    model.push(std::move(u1));
    model.push(std::move(u2));
  }
  const auto traces = run_split_training(model, 1, {8}, 3, ds.images,
                                         ds.labels, 120, 0.1f, 4);
  // Losses shrink substantially and mostly monotonically.
  EXPECT_GT(shrink_ratio(traces.slow_loss), 1.5);
  EXPECT_GT(shrink_ratio(traces.fast_loss), 1.5);
  EXPECT_GT(descent_fraction(traces.slow_loss), 0.3);
  // Gradient norms decay toward stationarity.
  EXPECT_LT(traces.slow_grad_norm.back(),
            0.5 * *std::max_element(traces.slow_grad_norm.begin(),
                                    traces.slow_grad_norm.end()));
}

TEST(Theorem1, ConvexGradientNormDecaysPolynomially) {
  Rng rng(5);
  auto ds = data::make_blobs(256, 3, 8, 0.25f, rng);
  Sequential model;
  {
    Rng r2(6);
    auto u1 = std::make_unique<Sequential>();
    u1->push(std::make_unique<nn::Linear>(8, 6, r2));
    auto u2 = std::make_unique<Sequential>();
    u2->push(std::make_unique<nn::Linear>(6, 3, r2));
    model.push(std::move(u1));
    model.push(std::move(u2));
  }
  const auto traces = run_split_training(model, 1, {8}, 3, ds.images,
                                         ds.labels, 150, 0.1f, 7);
  std::vector<double> rounds(traces.fast_grad_norm.size());
  std::iota(rounds.begin(), rounds.end(), 1.0);
  // Theorem 1 (convex): at least O(1/sqrt(R)) decay -> log-log slope < -0.2
  // empirically (full-batch SGD is faster than the stochastic bound).
  const double slope = log_log_slope(rounds, traces.fast_grad_norm);
  EXPECT_LT(slope, -0.2);
}

// ---- Theorem 1: non-convex case --------------------------------------------------

TEST(Theorem1, NonConvexBothSidesConverge) {
  Rng rng(8);
  auto ds = data::make_blobs(256, 4, 10, 0.35f, rng);
  auto model = nn::mlp({10, 24, 24, 4}, rng);  // ReLU MLP: non-convex
  const auto traces = run_split_training(*model, 1, {10}, 4, ds.images,
                                         ds.labels, 150, 0.08f, 9);
  EXPECT_GT(shrink_ratio(traces.slow_loss), 1.2);
  EXPECT_GT(shrink_ratio(traces.fast_loss), 1.2);
}

TEST(Theorem1, FastSideConvergenceFollowsSlowSide) {
  // The fast side consumes the slow side's evolving representation; the
  // theorem encodes this as C1/C2 terms tied to the slow side's density
  // drift. Empirically: the fast side's loss at the end of training is
  // lower when the slow side has converged than when the slow side is
  // frozen at a *random* (unconverged but static) state -- i.e. fast-side
  // quality depends on slow-side quality.
  Rng rng(10);
  auto ds = data::make_blobs(256, 3, 8, 0.25f, rng);

  // (a) normal split training: slow side learns.
  auto learned = nn::mlp({8, 16, 3}, rng);
  const auto traces = run_split_training(*learned, 1, {8}, 3, ds.images,
                                         ds.labels, 80, 0.1f, 11);

  // (b) frozen slow side: train only the suffix on a random prefix.
  Rng rng_b(10);  // same init as (a) modulo the extra draws
  auto frozen = nn::mlp({8, 16, 3}, rng_b);
  nn::SGD fast_opt(
      [&] {
        std::vector<nn::Parameter*> p;
        frozen->unit(1).collect_parameters(p);
        return p;
      }(),
      {0.1f, 0.9f, 0.0f});
  float frozen_loss = 0.0f;
  for (int r = 0; r < 80; ++r) {
    const auto h = frozen->forward_range(ds.images, 0, 1, true);
    fast_opt.zero_grad();
    const auto logits = frozen->forward_range(h, 1, 2, true);
    const auto res = nn::softmax_cross_entropy(logits, ds.labels);
    (void)frozen->backward_range(res.grad_logits, 1, 2);
    fast_opt.step();
    frozen_loss = res.loss;
  }
  EXPECT_LT(traces.fast_loss.back(), frozen_loss);
}

TEST(Theorem1, SlowSideConvergesIndependentlyOfFastSide) {
  // The theorem proves slow-side convergence with no dependence on the
  // fast side: sabotaging the suffix must not change the slow-side trace.
  Rng rng(12);
  auto ds = data::make_blobs(200, 3, 8, 0.25f, rng);
  auto model_a = nn::mlp({8, 16, 3}, rng);
  auto model_b = nn::mlp({8, 16, 3}, rng);
  nn::load_state(*model_b, nn::state_of(*model_a));
  // Sabotage b's suffix.
  {
    std::vector<nn::Parameter*> p;
    model_b->unit(1).collect_parameters(p);
    for (auto* param : p) param->value.fill(100.0f);
  }
  const auto ta = run_split_training(*model_a, 1, {8}, 3, ds.images,
                                     ds.labels, 40, 0.1f, 13);
  const auto tb = run_split_training(*model_b, 1, {8}, 3, ds.images,
                                     ds.labels, 40, 0.1f, 13);
  for (size_t r = 0; r < ta.slow_loss.size(); ++r)
    EXPECT_NEAR(ta.slow_loss[r], tb.slow_loss[r], 1e-5) << r;
}

TEST(Theorem1, DeeperCutsStillConverge) {
  // Convergence holds for every admissible split m (the theorem is stated
  // per split model).
  Rng rng(14);
  auto ds = data::make_blobs(200, 3, 8, 0.25f, rng);
  for (const size_t cut : {1u, 2u, 3u}) {
    auto model = nn::mlp({8, 16, 16, 16, 3}, rng);
    const auto traces = run_split_training(*model, cut, {8}, 3, ds.images,
                                           ds.labels, 80, 0.08f, 15 + cut);
    EXPECT_GT(shrink_ratio(traces.fast_loss), 1.2) << "cut " << cut;
  }
}

}  // namespace
}  // namespace comdml::analysis
