// Cross-module integration and property tests: end-to-end method ordering,
// idle-helper pairing under client sampling, determinism, serialization
// round trips through the comm layer, and parameterized sweeps over all
// split points.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/baseline_fleet.hpp"
#include "baselines/real_baselines.hpp"
#include "core/execution.hpp"
#include "core/real_fleet.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "tensor/serialize.hpp"

namespace comdml {
namespace {

using baselines::BaselineFleet;
using core::FleetConfig;
using core::Scheduler;
using core::SimulatedFleet;
using learncurve::Method;
using learncurve::PartitionKind;
using sim::Topology;
using tensor::Rng;

FleetConfig config10() {
  FleetConfig cfg;
  cfg.agents = 10;
  cfg.reshuffle_period = 0;
  cfg.max_split_points = 16;
  return cfg;
}

Topology mesh10(uint64_t seed = 1) {
  Rng rng(seed);
  return Topology::full_mesh(sim::assign_profiles(10, rng));
}

std::vector<int64_t> sizes10() {
  Rng rng(2);
  return core::shard_sizes_for(data::cifar10_spec(), 10,
                               PartitionKind::kIID, rng);
}

// ---- end-to-end method ordering -----------------------------------------------

TEST(EndToEnd, ComDMLFastestTimeToAccuracy) {
  // The paper's headline (Table II) as an invariant: over matched fleets,
  // ComDML's time to 80% must undercut every baseline.
  const auto spec = nn::resnet56_spec();
  const auto topo = mesh10(3);
  const auto sizes = sizes10();
  const double target = 0.80;

  auto total_time = [&](Method m) {
    const auto curve = learncurve::make_accuracy_model(
        "cifar10", "resnet56", PartitionKind::kIID, m);
    const double rounds = *curve.rounds_to(target);
    if (m == Method::kComDML) {
      SimulatedFleet fleet(spec, config10(), topo, sizes);
      return fleet.run(40).time_for_rounds(rounds);
    }
    BaselineFleet fleet(m, spec, config10(), topo, sizes);
    return fleet.run(40).time_for_rounds(rounds);
  };

  const double comdml = total_time(Method::kComDML);
  for (const Method m : {Method::kGossip, Method::kBrainTorrent,
                         Method::kAllReduceDML, Method::kFedAvg}) {
    EXPECT_LT(comdml, total_time(m)) << learncurve::method_name(m);
  }
  // And by a meaningful factor against FedAvg (paper: ~3x; shape: >=1.5x).
  EXPECT_LT(comdml, total_time(Method::kFedAvg) / 1.5);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  const auto spec = nn::resnet56_spec();
  SimulatedFleet a(spec, config10(), mesh10(4), sizes10());
  SimulatedFleet b(spec, config10(), mesh10(4), sizes10());
  for (int r = 0; r < 5; ++r) {
    const auto ra = a.step();
    const auto rb = b.step();
    EXPECT_DOUBLE_EQ(ra.round_time, rb.round_time) << r;
    EXPECT_EQ(ra.num_pairs, rb.num_pairs) << r;
  }
}

TEST(EndToEnd, CompressionShortensRounds) {
  const auto spec = nn::resnet56_spec();
  auto raw_cfg = config10();
  raw_cfg.activation_compression = 1.0;
  SimulatedFleet raw(spec, raw_cfg, mesh10(5), sizes10());
  SimulatedFleet compressed(spec, config10(), mesh10(5), sizes10());
  double raw_total = 0, comp_total = 0;
  for (int r = 0; r < 5; ++r) {
    raw_total += raw.step().round_time;
    comp_total += compressed.step().round_time;
  }
  EXPECT_LT(comp_total, raw_total);
}

// ---- idle helpers under client sampling ----------------------------------------

TEST(Helpers, IdleAgentsAcceptOffloads) {
  // One slow participant, one idle fast agent: with helper support the
  // pairing must use the idle agent.
  const auto spec = nn::resnet56_spec();
  const auto profile = core::SplitProfile::from_spec(spec, 16, 8.0);
  std::vector<sim::ResourceProfile> profiles{{0.2, 100.0}, {4.0, 100.0}};
  const auto topo = Topology::full_mesh(profiles);
  std::vector<core::AgentInfo> infos(2);
  for (int64_t i = 0; i < 2; ++i) {
    infos[i].id = i;
    infos[i].proc_speed =
        sim::samples_per_sec(topo.profile(i),
                             profile.full_flops_per_sample()) /
        100.0;
    infos[i].num_batches = 50;
    infos[i].tau_solo = 50.0 / infos[i].proc_speed;
  }
  const std::vector<int64_t> participants{0};
  const std::vector<int64_t> helpers{0, 1};

  // Without helpers: agent 0 has nobody to offload to.
  const auto solo = core::pair_agents(profile, infos, topo, 100,
                                      participants);
  EXPECT_TRUE(solo.pairs.empty());

  // With helpers: agent 1 (idle) takes the offload.
  const auto helped = core::pair_agents(profile, infos, topo, 100,
                                        participants, &helpers);
  ASSERT_EQ(helped.pairs.size(), 1u);
  EXPECT_EQ(helped.pairs[0].fast_agent, 1);
  EXPECT_LT(helped.estimated_round_time, infos[0].tau_solo);
}

TEST(Helpers, SamplingFleetStillBalances) {
  const auto spec = nn::resnet56_spec();
  auto cfg = config10();
  cfg.agents = 20;
  cfg.participation = 0.2;
  Rng rng(6);
  SimulatedFleet fleet(spec, cfg,
                       Topology::full_mesh(sim::assign_profiles(20, rng)),
                       std::vector<int64_t>(20, 5000));
  int64_t pairs = 0;
  for (int r = 0; r < 10; ++r) pairs += fleet.step().num_pairs;
  EXPECT_GT(pairs, 0);
}

// ---- execute_pair sweep over every profiled cut ---------------------------------

class CutSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CutSweep, ExecutionInvariantsHoldAtEveryCut) {
  const auto spec = nn::resnet56_spec();
  const auto profile = core::SplitProfile::from_spec(spec);
  core::AgentInfo slow, fast;
  slow.id = 0;
  slow.proc_speed = 0.1;
  slow.num_batches = 40;
  slow.tau_solo = 400.0;
  fast.id = 1;
  fast.proc_speed = 2.0;
  fast.num_batches = 10;
  fast.tau_solo = 5.0;
  const size_t cut = GetParam();
  const auto exec = core::execute_pair(profile, slow, fast, cut, 50.0, 100);
  EXPECT_GT(exec.pair_time, 0.0);
  EXPECT_GE(exec.pair_time, exec.slow_finish);
  EXPECT_GE(exec.pair_time, exec.fast_finish - 1e-9);
  EXPECT_GE(exec.slow_idle, 0.0);
  EXPECT_GE(exec.fast_idle, 0.0);
  EXPECT_GT(exec.link_busy, 0.0);
  // The slow side must strictly benefit vs training the whole model.
  const auto& pt = profile.at_cut(cut);
  EXPECT_LT(exec.slow_finish, slow.tau_solo);
  EXPECT_NEAR(exec.slow_finish, 40.0 * pt.t_slow / 0.1, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllCuts, CutSweep,
                         ::testing::Values(1, 5, 10, 19, 28, 37, 46, 55));

// ---- serialization through the wire ----------------------------------------------

TEST(WireRoundTrip, ModelStateSurvivesSerialization) {
  Rng rng(7);
  auto model = nn::small_cnn(3, 5, rng);
  const auto state = nn::state_of(*model);
  const auto bytes = tensor::pack_tensors(state);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()), tensor::wire_bytes(state));

  auto replica = nn::small_cnn(3, 5, rng);  // different init
  nn::load_state(*replica, tensor::unpack_tensors(bytes));
  const auto x = rng.normal_tensor({2, 3, 8, 8}, 0, 1);
  EXPECT_TRUE(tensor::allclose(model->forward(x, false),
                               replica->forward(x, false), 1e-6f));
}

TEST(WireRoundTrip, StateBytesMatchWirePayload) {
  Rng rng(8);
  auto model = nn::tiny_resnet(10, rng);
  const auto state = nn::state_of(*model);
  int64_t payload = 0;
  for (const auto& t : state) payload += t.nbytes();
  EXPECT_EQ(payload, nn::state_bytes(*model));
}

// ---- learncurve scaling laws ------------------------------------------------------

TEST(ScalingLaws, FleetRoundsFactorContinuousAtReference) {
  EXPECT_NEAR(learncurve::fleet_rounds_factor(10), 1.0, 1e-12);
  EXPECT_LT(learncurve::fleet_rounds_factor(2), 0.3);
  EXPECT_GT(learncurve::fleet_rounds_factor(100), 1.3);
  // Monotone in fleet size.
  double prev = 0.0;
  for (const int64_t k : {2, 5, 10, 20, 50, 100, 200}) {
    const double f = learncurve::fleet_rounds_factor(k);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(ScalingLaws, GossipMixingWorsensWithSparsity) {
  EXPECT_DOUBLE_EQ(learncurve::gossip_mixing_factor(1.0), 1.0);
  EXPECT_GT(learncurve::gossip_mixing_factor(0.2),
            learncurve::gossip_mixing_factor(0.5));
  EXPECT_THROW((void)learncurve::gossip_mixing_factor(0.0),
               std::invalid_argument);
}

// ---- failure injection ---------------------------------------------------------------

TEST(FailureInjection, IsolatedSlowAgentTrainsSolo) {
  // Slow agent's links all die: it must not pair and the round degrades to
  // its solo time, not an error.
  const auto spec = nn::resnet56_spec();
  std::vector<sim::ResourceProfile> profiles{
      {0.2, 0.0}, {4.0, 100.0}, {2.0, 100.0}, {1.0, 100.0}};
  auto cfg = config10();
  cfg.agents = 4;
  SimulatedFleet fleet(spec, cfg, Topology::full_mesh(profiles),
                       std::vector<int64_t>(4, 5000));
  const auto rec = fleet.step();
  EXPECT_DOUBLE_EQ(rec.round_time, rec.unbalanced_time);
}

TEST(FailureInjection, FullyDisconnectedFleetThrows) {
  const auto spec = nn::resnet56_spec();
  std::vector<sim::ResourceProfile> profiles(4, {1.0, 0.0});
  auto cfg = config10();
  cfg.agents = 4;
  SimulatedFleet fleet(spec, cfg, Topology::full_mesh(profiles),
                       std::vector<int64_t>(4, 5000));
  EXPECT_THROW((void)fleet.step(), std::invalid_argument);
}

TEST(FailureInjection, ProfileDriftTriggersRepairing) {
  // After a full reshuffle the pairing adapts: decisions before and after
  // differ for at least one round in a drifting fleet.
  const auto spec = nn::resnet56_spec();
  auto cfg = config10();
  cfg.reshuffle_period = 2;
  cfg.reshuffle_fraction = 1.0;
  SimulatedFleet fleet(spec, cfg, mesh10(9), sizes10());
  std::vector<double> times;
  for (int r = 0; r < 6; ++r) times.push_back(fleet.step().round_time);
  // Not all rounds identical once profiles drift.
  bool varied = false;
  for (size_t i = 1; i < times.size(); ++i)
    if (std::abs(times[i] - times[0]) > 1e-9) varied = true;
  EXPECT_TRUE(varied);
}

// ---- device churn ------------------------------------------------------------------

TEST(RealWire, PairRoundsReportMeasuredCompression) {
  // The RealFleet measures the codec's achieved ratio on genuine cut
  // activations; it must land in the band the timing model assumes.
  Rng rng(30);
  const auto dataset =
      data::make_synthetic_images(128, 3, {3, 8, 8}, 0.4f, rng);
  const auto parts = data::iid_partition(dataset.size(), 2, rng);
  std::vector<data::Dataset> shards{dataset.subset(parts[0]),
                                    dataset.subset(parts[1])};
  std::vector<sim::ResourceProfile> profiles{{0.2, 100.0}, {4.0, 100.0}};
  core::ModelFactory factory = [](Rng& r) { return nn::small_cnn(3, 3, r); };
  core::RealFleet::Options opt;
  core::RealFleet fleet(factory, 3, std::move(shards),
                        Topology::full_mesh(profiles), opt);
  const auto stats = fleet.step();
  ASSERT_GT(stats.num_pairs, 0);
  EXPECT_GT(stats.mean_wire_compression, 3.0);
  EXPECT_LT(stats.mean_wire_compression, 32.0);
}

TEST(FailureInjection, DropoutSkipsAgentsButRoundsProceed) {
  const auto spec = nn::resnet56_spec();
  auto cfg = config10();
  cfg.agent_dropout = 0.3;
  SimulatedFleet fleet(spec, cfg, mesh10(20), sizes10());
  int64_t dropped = 0;
  for (int r = 0; r < 10; ++r) {
    const auto rec = fleet.step();
    EXPECT_GT(rec.round_time, 0.0);
    dropped += rec.dropped_agents;
  }
  // ~30% of 10 agents over 10 rounds: expect a healthy number of failures.
  EXPECT_GT(dropped, 5);
}

TEST(FailureInjection, DropoutNeverBelowTwoAgents) {
  const auto spec = nn::resnet56_spec();
  auto cfg = config10();
  cfg.agents = 3;
  cfg.agent_dropout = 0.95;
  SimulatedFleet fleet(spec, cfg,
                       Topology::full_mesh([&] {
                         Rng rng(21);
                         return sim::assign_profiles(3, rng);
                       }()),
                       std::vector<int64_t>(3, 5000));
  for (int r = 0; r < 10; ++r) {
    const auto rec = fleet.step();
    EXPECT_LE(rec.dropped_agents, 1);  // at least 2 of 3 survive
    EXPECT_GT(rec.round_time, 0.0);
  }
}

TEST(FailureInjection, ZeroDropoutMatchesBaselineRun) {
  const auto spec = nn::resnet56_spec();
  auto with = config10();
  with.agent_dropout = 0.0;
  SimulatedFleet a(spec, config10(), mesh10(22), sizes10());
  SimulatedFleet b(spec, with, mesh10(22), sizes10());
  for (int r = 0; r < 3; ++r)
    EXPECT_DOUBLE_EQ(a.step().round_time, b.step().round_time);
}

// ---- real fleet vs real baselines: shared-task comparison -------------------------

TEST(RealComparison, AllMethodsReachSimilarAccuracy) {
  // The paper's accuracy-parity claim: ComDML matches baseline accuracy
  // (its wins are in time). Train each method on the same shards and
  // require all final accuracies within 15 points of the best.
  Rng rng(10);
  const auto dataset = data::make_blobs(240, 3, 8, 0.3f, rng);
  const auto parts = data::iid_partition(dataset.size(), 4, rng);
  auto shards = [&] {
    std::vector<data::Dataset> s;
    for (const auto& idx : parts) s.push_back(dataset.subset(idx));
    return s;
  };
  std::vector<sim::ResourceProfile> profiles{
      {4.0, 100.0}, {0.2, 100.0}, {2.0, 100.0}, {0.5, 100.0}};
  core::ModelFactory factory = [](Rng& r) {
    return nn::mlp({8, 24, 24, 3}, r);
  };

  std::vector<float> accs;
  {
    core::RealFleet::Options opt;
    opt.train.batches_per_round = 5;
    core::RealFleet fleet(factory, 3, shards(),
                          Topology::full_mesh(profiles), opt);
    for (int r = 0; r < 12; ++r) (void)fleet.step();
    accs.push_back(fleet.evaluate(dataset));
  }
  for (const Method m : {Method::kFedAvg, Method::kAllReduceDML,
                         Method::kBrainTorrent}) {
    baselines::RealBaselineFleet::Options opt;
    opt.train.batches_per_round = 5;
    baselines::RealBaselineFleet fleet(m, factory, 3, shards(),
                                       Topology::full_mesh(profiles), opt);
    for (int r = 0; r < 12; ++r) (void)fleet.step();
    accs.push_back(fleet.evaluate(dataset));
  }
  const float best = *std::max_element(accs.begin(), accs.end());
  for (const float a : accs) EXPECT_GT(a, best - 0.15f);
  EXPECT_GT(best, 0.85f);
}

}  // namespace
}  // namespace comdml
