// Tests for the extended layer set: MaxPool2d, Dropout, LayerNorm.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/extras.hpp"
#include "nn/split.hpp"
#include "test_util.hpp"

namespace comdml::nn {
namespace {

using comdml::testing::input_grad_error;
using comdml::testing::param_grad_error;

constexpr double kGradTol = 5e-2;

// ---- MaxPool2d ---------------------------------------------------------------

TEST(MaxPool, SelectsBlockMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 2, 3, 4, 9, 0});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
}

TEST(MaxPool, GradientRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 7, 3, 2});
  (void)pool.forward(x, true);
  const Tensor dx = pool.backward(Tensor({1, 1, 1, 1}, {10.0f}));
  EXPECT_FLOAT_EQ(dx[1], 10.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

TEST(MaxPool, InputGradientMatchesNumeric) {
  Rng rng(1);
  MaxPool2d pool(2);
  // Distinct values avoid argmax ties breaking finite differences.
  Tensor x({2, 2, 4, 4});
  for (int64_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>((i * 37) % 97) / 10.0f;
  const Tensor g = rng.normal_tensor({2, 2, 2, 2}, 0, 1);
  EXPECT_LT(input_grad_error(pool, x, g, 1e-3f), kGradTol);
}

TEST(MaxPool, RejectsIndivisibleInput) {
  MaxPool2d pool(3);
  EXPECT_THROW((void)pool.forward(Tensor({1, 1, 4, 4}), true),
               std::invalid_argument);
}

TEST(MaxPool, CostHalvesGeometry) {
  MaxPool2d pool(2);
  const auto c = pool.cost({8, 16, 16});
  EXPECT_EQ(c.out_shape, Shape({8, 8, 8}));
}

// ---- Dropout -----------------------------------------------------------------

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(2);
  Dropout drop(0.5f, 3);
  const Tensor x = rng.normal_tensor({4, 8}, 0, 1);
  EXPECT_TRUE(tensor::allclose(drop.forward(x, false), x));
}

TEST(Dropout, TrainModeZeroesApproxRate) {
  Dropout drop(0.5f, 4);
  const Tensor x({1, 10000}, 1.0f);
  const Tensor y = drop.forward(x, true);
  int64_t zeros = 0;
  for (const float v : y.flat())
    if (v == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
}

TEST(Dropout, InvertedScalingPreservesExpectation) {
  Dropout drop(0.3f, 5);
  const Tensor x({1, 20000}, 1.0f);
  const Tensor y = drop.forward(x, true);
  EXPECT_NEAR(tensor::mean(y), 1.0f, 0.03f);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 6);
  const Tensor x({1, 64}, 1.0f);
  const Tensor y = drop.forward(x, true);
  const Tensor dx = drop.backward(Tensor({1, 64}, 1.0f));
  EXPECT_TRUE(tensor::allclose(dx, y));  // identical mask and scale
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  Rng rng(7);
  Dropout drop(0.0f, 8);
  const Tensor x = rng.normal_tensor({3, 5}, 0, 1);
  EXPECT_TRUE(tensor::allclose(drop.forward(x, true), x));
}

TEST(Dropout, RejectsRateOne) {
  EXPECT_THROW(Dropout(1.0f, 9), std::invalid_argument);
}

// ---- LayerNorm ---------------------------------------------------------------

TEST(LayerNorm, NormalizesRows) {
  Rng rng(10);
  LayerNorm ln(32);
  const Tensor x = rng.normal_tensor({4, 32}, 3.0f, 2.0f);
  const Tensor y = ln.forward(x, true);
  for (int64_t i = 0; i < 4; ++i) {
    double mean = 0, var = 0;
    for (int64_t j = 0; j < 32; ++j) mean += y.at({i, j});
    mean /= 32.0;
    for (int64_t j = 0; j < 32; ++j) {
      const double d = y.at({i, j}) - mean;
      var += d * d;
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / 32.0, 1.0, 2e-2);
  }
}

TEST(LayerNorm, InputGradientMatchesNumeric) {
  Rng rng(11);
  LayerNorm ln(6);
  const Tensor x = rng.normal_tensor({3, 6}, 0, 1);
  const Tensor g = rng.normal_tensor({3, 6}, 0, 1);
  EXPECT_LT(input_grad_error(ln, x, g), kGradTol);
}

TEST(LayerNorm, ParamGradientMatchesNumeric) {
  Rng rng(12);
  LayerNorm ln(5);
  const Tensor x = rng.normal_tensor({4, 5}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 5}, 0, 1);
  EXPECT_LT(param_grad_error(ln, x, g), kGradTol);
}

TEST(LayerNorm, RejectsWrongWidth) {
  LayerNorm ln(8);
  EXPECT_THROW((void)ln.forward(Tensor({2, 7}), true),
               std::invalid_argument);
}

TEST(LayerNorm, ComposesIntoTrainableMlp) {
  // LayerNorm inside an MLP still learns the blobs task.
  Rng rng(13);
  auto ds = comdml::data::make_blobs(200, 3, 8, 0.3f, rng);
  Sequential net;
  net.push(std::make_unique<Linear>(8, 16, rng));
  net.push(std::make_unique<LayerNorm>(16));
  net.push(std::make_unique<ReLU>());
  net.push(std::make_unique<Linear>(16, 3, rng));
  SGD opt(net.parameters(), {0.1f, 0.9f, 0.0f});
  for (int e = 0; e < 40; ++e)
    (void)train_batch_full(net, opt, ds.images, ds.labels);
  EXPECT_GT(evaluate_accuracy(net, ds.images, ds.labels), 0.9f);
}

}  // namespace
}  // namespace comdml::nn
