// Workspace-arena tests: LIFO checkout/return, growth + high-water
// consolidation, alignment, thread-locality under parallel_for, and the
// zero-steady-state-allocation property of the conv hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "core/workspace.hpp"
#include "nn/conv.hpp"
#include "tensor/random.hpp"

namespace comdml {
namespace {

using core::Scratch;
using core::Workspace;
using tensor::Rng;
using tensor::Tensor;

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { core::set_num_threads(0); }
};

/// Runs the arena checks on a fresh thread so this test's arena state is
/// independent of whatever other tests did on the main thread.
template <typename Fn>
void on_fresh_thread(Fn&& fn) {
  std::thread t(std::forward<Fn>(fn));
  t.join();
}

TEST(Workspace, CheckoutIsAlignedAndWritable) {
  on_fresh_thread([] {
    Scratch<float> a(1000);
    Scratch<double> b(7);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 64, 0u);
    for (int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i);
    for (int64_t i = 0; i < a.size(); ++i)
      ASSERT_EQ(a[i], static_cast<float>(i));
  });
}

TEST(Workspace, HighWaterReuseMakesSteadyStateAllocationFree) {
  on_fresh_thread([] {
    Workspace& ws = Workspace::tls();
    // Warmup iteration establishes the high-water mark (possibly across
    // several chained blocks).
    {
      Scratch<float> a(50'000);
      Scratch<float> b(120'000);
      Scratch<float> c(30'000);
    }
    const int64_t after_warmup = ws.stats().heap_allocs;
    EXPECT_GE(after_warmup, 1);
    // Steady state: the same checkout pattern (any LIFO pattern within the
    // high-water mark) must not touch the heap again.
    for (int rep = 0; rep < 5; ++rep) {
      Scratch<float> a(50'000);
      Scratch<float> b(120'000);
      Scratch<float> c(30'000);
    }
    EXPECT_EQ(ws.stats().heap_allocs, after_warmup);
    EXPECT_EQ(ws.stats().live_bytes, 0);
    EXPECT_GE(ws.stats().high_water_bytes,
              static_cast<int64_t>(200'000 * sizeof(float)));
  });
}

TEST(Workspace, GrowthChainsBlocksAndConsolidates) {
  on_fresh_thread([] {
    Workspace& ws = Workspace::tls();
    {
      // Second checkout overflows the first block while the first is still
      // live, forcing a chained block.
      Scratch<float> small(1'000);
      Scratch<float> big(1'000'000);
      EXPECT_GE(ws.stats().heap_allocs, 2);
    }
    // After release-all the arena consolidated to one block big enough for
    // the whole pattern: repeating it is allocation-free.
    const int64_t allocs = ws.stats().heap_allocs;
    {
      Scratch<float> small(1'000);
      Scratch<float> big(1'000'000);
    }
    EXPECT_EQ(ws.stats().heap_allocs, allocs);
  });
}

TEST(Workspace, ReleaseOutOfLifoOrderThrows) {
  on_fresh_thread([] {
    Workspace& ws = Workspace::tls();
    float* a = ws.checkout<float>(16);
    float* b = ws.checkout<float>(16);
    EXPECT_THROW(ws.release(a), std::invalid_argument);
    ws.release(b);
    ws.release(a);
    EXPECT_EQ(ws.stats().live_bytes, 0);
  });
}

TEST(Workspace, TrimDropsBackingStore) {
  on_fresh_thread([] {
    Workspace& ws = Workspace::tls();
    { Scratch<float> a(100'000); }
    EXPECT_GT(ws.stats().capacity_bytes, 0);
    ws.trim();
    EXPECT_EQ(ws.stats().capacity_bytes, 0);
  });
}

TEST(Workspace, ThreadLocalArenasDoNotOverlapUnderParallelFor) {
  ThreadCountGuard guard;
  core::set_num_threads(4);
  constexpr int64_t kTasks = 16;
  constexpr int64_t kElems = 4096;
  std::atomic<int> overlap_failures{0};
  core::parallel_for(0, kTasks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      Scratch<float> buf(kElems);
      const float tag = static_cast<float>(t + 1);
      for (int64_t i = 0; i < kElems; ++i) buf[i] = tag;
      // Give concurrent tasks a chance to scribble if buffers overlapped.
      std::this_thread::yield();
      for (int64_t i = 0; i < kElems; ++i)
        if (buf[i] != tag) overlap_failures.fetch_add(1);
    }
  });
  EXPECT_EQ(overlap_failures.load(), 0);
}

TEST(Workspace, AggregateStatsCoverWorkerArenas) {
  ThreadCountGuard guard;
  core::set_num_threads(4);
  const auto before = Workspace::aggregate_stats();
  core::parallel_for(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      Scratch<float> buf(1'000'000);
      buf[0] = 1.0f;
    }
  });
  const auto after = Workspace::aggregate_stats();
  EXPECT_GE(after.checkouts, before.checkouts + 8);
}

// ---- the zero-steady-state-allocation property of the conv hot path -------

TEST(Workspace, ConvForwardBackwardIsArenaAllocationFreeAfterWarmup) {
  ThreadCountGuard guard;
  core::set_num_threads(1);  // single arena -> deterministic accounting
  Rng rng(7);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({4, 8, 16, 16}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 16, 16, 16}, 0, 1);
  // Warmup: grows every arena involved to its high-water mark.
  for (int i = 0; i < 2; ++i) {
    (void)conv.forward(x, true);
    (void)conv.backward(g);
  }
  const auto warm = Workspace::aggregate_stats();
  for (int i = 0; i < 3; ++i) {
    (void)conv.forward(x, true);
    (void)conv.backward(g);
  }
  const auto steady = Workspace::aggregate_stats();
  EXPECT_EQ(steady.heap_allocs, warm.heap_allocs)
      << "conv fwd/bwd still grows the workspace arena in steady state";
  EXPECT_GT(steady.checkouts, warm.checkouts);  // scratch is being used
}

}  // namespace
}  // namespace comdml
