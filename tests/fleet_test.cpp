// Fleet-level simulation tests: the ComDML SimulatedFleet, the baseline
// fleets, dynamic profile reshuffling, participation sampling, and the
// relative timing behaviour the paper's tables rest on.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/baseline_fleet.hpp"
#include "core/fleet_runtime.hpp"
#include "core/trainer.hpp"

namespace comdml::core {
namespace {

using baselines::BaselineFleet;
using learncurve::Method;
using learncurve::PartitionKind;
using sim::Topology;
using tensor::Rng;

FleetConfig small_config(int64_t agents, uint64_t seed = 42) {
  FleetConfig cfg;
  cfg.agents = agents;
  cfg.seed = seed;
  cfg.reshuffle_period = 0;
  return cfg;
}

Topology mesh(int64_t agents, uint64_t seed = 1) {
  Rng rng(seed);
  return Topology::full_mesh(sim::assign_profiles(agents, rng));
}

std::vector<int64_t> iid_sizes(int64_t agents) {
  Rng rng(2);
  return shard_sizes_for(data::cifar10_spec(), agents, PartitionKind::kIID,
                         rng);
}

TEST(SimulatedFleet, RoundRecordsAreConsistent) {
  SimulatedFleet fleet(nn::resnet56_spec(), small_config(10), mesh(10),
                       iid_sizes(10));
  const auto rec = fleet.step();
  EXPECT_GT(rec.round_time, 0.0);
  EXPECT_GE(rec.round_time, rec.aggregation_time);
  EXPECT_GE(rec.idle_time, 0.0);
  EXPECT_GE(rec.unbalanced_time, rec.round_time * 0.99);
}

TEST(SimulatedFleet, BalancesHeterogeneousFleet) {
  SimulatedFleet fleet(nn::resnet56_spec(), small_config(10), mesh(10),
                       iid_sizes(10));
  const auto rec = fleet.step();
  EXPECT_GT(rec.num_pairs, 0);
  EXPECT_LT(rec.round_time, 0.85 * rec.unbalanced_time);
}

TEST(SimulatedFleet, RunAccumulatesRounds) {
  SimulatedFleet fleet(nn::resnet56_spec(), small_config(10), mesh(10),
                       iid_sizes(10));
  const auto summary = fleet.run(5);
  EXPECT_EQ(summary.rounds().size(), 5u);
  EXPECT_EQ(fleet.rounds_executed(), 5);
  EXPECT_GT(summary.total_time(), 0.0);
}

TEST(SimulatedFleet, TimeForRoundsInterpolates) {
  SimulatedFleet fleet(nn::resnet56_spec(), small_config(10), mesh(10),
                       iid_sizes(10));
  const auto summary = fleet.run(4);
  const double t2 = summary.time_for_rounds(2.0);
  const double t25 = summary.time_for_rounds(2.5);
  const double t3 = summary.time_for_rounds(3.0);
  EXPECT_LT(t2, t25);
  EXPECT_LT(t25, t3);
  // Extrapolation beyond the horizon keeps growing.
  EXPECT_GT(summary.time_for_rounds(10.0), summary.total_time());
}

TEST(SimulatedFleet, ReshufflePeriodChangesProfiles) {
  auto cfg = small_config(10);
  cfg.reshuffle_period = 3;
  cfg.reshuffle_fraction = 1.0;  // redraw everyone for a visible effect
  SimulatedFleet fleet(nn::resnet56_spec(), cfg, mesh(10), iid_sizes(10));
  const auto before = fleet.agent_infos();
  (void)fleet.run(4);  // crosses the reshuffle boundary at round 3
  const auto after = fleet.agent_infos();
  int changed = 0;
  for (size_t i = 0; i < before.size(); ++i)
    if (before[i].proc_speed != after[i].proc_speed) ++changed;
  EXPECT_GT(changed, 0);
}

TEST(SimulatedFleet, ParticipationSamplingShrinksRound) {
  auto cfg = small_config(50);
  cfg.participation = 0.2;
  SimulatedFleet fleet(nn::resnet56_spec(), cfg, mesh(50), iid_sizes(50));
  // With 20% sampling the expected straggler is no slower than the full
  // fleet's; mostly this exercises the sampling path end-to-end.
  const auto rec = fleet.step();
  EXPECT_GT(rec.round_time, 0.0);
}

TEST(SimulatedFleet, SchedulerVariantsOrdering) {
  // Both workload-balancing schedulers must beat the no-offloading round;
  // the greedy-vs-exact *estimate* ordering is covered in core_test.
  const auto spec = nn::resnet56_spec();
  const auto sizes = iid_sizes(10);
  double greedy_t = 0, none_t = 0, exact_t = 0;
  {
    SimulatedFleet f(spec, small_config(10), mesh(10), sizes,
                     Scheduler::kComDML);
    greedy_t = f.step().round_time;
  }
  {
    SimulatedFleet f(spec, small_config(10), mesh(10), sizes,
                     Scheduler::kNoOffloading);
    none_t = f.step().round_time;
  }
  {
    auto cfg = small_config(10);
    cfg.max_split_points = 10;  // keep the exact solver fast
    SimulatedFleet f(spec, cfg, mesh(10), sizes, Scheduler::kExact);
    exact_t = f.step().round_time;
  }
  EXPECT_LT(greedy_t, none_t);
  EXPECT_LT(exact_t, none_t);
}

TEST(SimulatedFleet, RejectsShardSizeMismatch) {
  EXPECT_THROW(SimulatedFleet(nn::resnet56_spec(), small_config(10),
                              mesh(10), iid_sizes(9)),
               std::invalid_argument);
}

TEST(SimulatedFleet, PrivacyOverheadSlowsCompute) {
  // Compare under kNoOffloading so the compute overhead is not partially
  // absorbed by re-balanced pairing decisions.
  auto cfg = small_config(10);
  auto cfg_dp = cfg;
  cfg_dp.privacy = learncurve::PrivacyTechnique::kDistanceCorrelation;
  SimulatedFleet plain(nn::resnet56_spec(), cfg, mesh(10), iid_sizes(10),
                       Scheduler::kNoOffloading);
  SimulatedFleet dp(nn::resnet56_spec(), cfg_dp, mesh(10), iid_sizes(10),
                    Scheduler::kNoOffloading);
  EXPECT_GT(dp.step().round_time, plain.step().round_time);
}

// ---- baselines --------------------------------------------------------------------

class BaselineP : public ::testing::TestWithParam<Method> {};

TEST_P(BaselineP, ProducesPositiveRoundTimes) {
  BaselineFleet fleet(GetParam(), nn::resnet56_spec(), small_config(10),
                      mesh(10), iid_sizes(10));
  const auto rec = fleet.step();
  EXPECT_GT(rec.round_time, 0.0);
  if (GetParam() == Method::kGossip) {
    // Gossip is asynchronous: its effective round (mean over agents) sits
    // below the synchronous straggler bound but above the fastest agent.
    EXPECT_LE(rec.round_time, rec.compute_time);
  } else {
    EXPECT_GE(rec.round_time, rec.compute_time);
  }
  EXPECT_GE(rec.idle_time, 0.0);
}

TEST_P(BaselineP, StragglerDominatesRound) {
  BaselineFleet fleet(GetParam(), nn::resnet56_spec(), small_config(10),
                      mesh(10), iid_sizes(10));
  const auto rec = fleet.step();
  // All baselines train the full model: the straggler's full-model time
  // exceeds ComDML's balanced round. Synchronous baselines expose the
  // straggler in round_time; asynchronous gossip (whose "round" is a mean
  // over agents) only in compute_time.
  SimulatedFleet comdml(nn::resnet56_spec(), small_config(10), mesh(10),
                        iid_sizes(10));
  const double comdml_round = comdml.step().round_time;
  if (GetParam() == Method::kGossip)
    EXPECT_GT(rec.compute_time, comdml_round);
  else
    EXPECT_GT(rec.round_time, comdml_round);
}

INSTANTIATE_TEST_SUITE_P(Methods, BaselineP,
                         ::testing::Values(Method::kFedAvg, Method::kFedProx,
                                           Method::kGossip,
                                           Method::kBrainTorrent,
                                           Method::kAllReduceDML));

TEST(Baselines, RejectsComDML) {
  EXPECT_THROW(BaselineFleet(Method::kComDML, nn::resnet56_spec(),
                             small_config(10), mesh(10), iid_sizes(10)),
               std::invalid_argument);
}

TEST(Baselines, BrainTorrentAggregationScalesWithFleet) {
  auto t = [&](int64_t k) {
    BaselineFleet fleet(Method::kBrainTorrent, nn::resnet56_spec(),
                        small_config(k), mesh(k, 7), iid_sizes(k));
    return fleet.step().aggregation_time;
  };
  EXPECT_GT(t(20), t(10));
}

TEST(Baselines, GossipCommCheaperThanBrainTorrent) {
  BaselineFleet gossip(Method::kGossip, nn::resnet56_spec(),
                       small_config(20), mesh(20, 9), iid_sizes(20));
  BaselineFleet bt(Method::kBrainTorrent, nn::resnet56_spec(),
                   small_config(20), mesh(20, 9), iid_sizes(20));
  EXPECT_LT(gossip.step().aggregation_time, bt.step().aggregation_time);
}

TEST(Baselines, FedProxSlowerComputeThanFedAvg) {
  BaselineFleet prox(Method::kFedProx, nn::resnet56_spec(),
                     small_config(10), mesh(10, 11), iid_sizes(10));
  BaselineFleet avg(Method::kFedAvg, nn::resnet56_spec(), small_config(10),
                    mesh(10, 11), iid_sizes(10));
  EXPECT_GT(prox.step().compute_time, avg.step().compute_time);
}

// ---- FleetRuntime facade (simulation engines) -------------------------------

TEST(FleetRuntimeSim, DrivesComDMLSimulation) {
  auto fleet = FleetBuilder()
                   .method(Method::kComDML)
                   .topology(mesh(10))
                   .architecture(nn::resnet56_spec())
                   .shard_sizes(iid_sizes(10))
                   .build();
  EXPECT_FALSE(fleet.real());
  EXPECT_EQ(fleet.agents(), 10);
  const auto rep = fleet.step();
  EXPECT_GT(rep.round_seconds, 0.0);
  EXPECT_GT(rep.num_pairs, 0);
  EXPECT_LT(rep.round_seconds, rep.unbalanced_seconds);
}

TEST(FleetRuntimeSim, DrivesEveryBaselineSimulation) {
  for (const Method m : {Method::kFedAvg, Method::kFedProx, Method::kGossip,
                         Method::kBrainTorrent, Method::kAllReduceDML}) {
    auto fleet = FleetBuilder()
                     .method(m)
                     .topology(mesh(10))
                     .architecture(nn::resnet56_spec())
                     .shard_sizes(iid_sizes(10))
                     .build();
    const auto rep = fleet.step();
    EXPECT_GT(rep.round_seconds, 0.0) << learncurve::method_name(m);
    EXPECT_EQ(rep.num_pairs, 0) << learncurve::method_name(m);
  }
}

TEST(FleetRuntimeSim, RunAccumulatesAndInterpolates) {
  auto fleet = FleetBuilder()
                   .method(Method::kComDML)
                   .topology(mesh(10))
                   .architecture(nn::resnet56_spec())
                   .shard_sizes(iid_sizes(10))
                   .build();
  const auto report = fleet.run(4);
  EXPECT_EQ(report.rounds.size(), 4u);
  EXPECT_EQ(fleet.rounds_executed(), 4);
  EXPECT_GT(report.total_seconds(), 0.0);
  EXPECT_LT(report.time_for_rounds(2.0), report.time_for_rounds(2.5));
  EXPECT_GT(report.time_for_rounds(10.0), report.total_seconds());
}

TEST(FleetRuntimeSim, LayeredOptionsFlattenToFleetConfig) {
  FleetOptions o = FleetOptions::paper_defaults();
  o.scale.participation = 0.2;
  o.scale.max_split_points = 16;
  o.comms.aggregation = comm::AllReduceAlgo::kRing;
  o.privacy.technique = learncurve::PrivacyTechnique::kPatchShuffle;
  const FleetConfig cfg = o.to_fleet_config(50);
  EXPECT_EQ(cfg.agents, 50);
  EXPECT_EQ(cfg.batch_size, 100);  // paper preset
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.participation, 0.2);
  EXPECT_EQ(cfg.max_split_points, 16u);
  EXPECT_EQ(cfg.aggregation, comm::AllReduceAlgo::kRing);
  EXPECT_EQ(cfg.privacy, learncurve::PrivacyTechnique::kPatchShuffle);
}

TEST(FleetRuntimeSim, SchedulerAblationRunsThroughFacade) {
  auto none = FleetBuilder()
                  .method(Method::kComDML)
                  .scheduler(Scheduler::kNoOffloading)
                  .topology(mesh(10))
                  .architecture(nn::resnet56_spec())
                  .shard_sizes(iid_sizes(10))
                  .build();
  auto comdml = FleetBuilder()
                    .method(Method::kComDML)
                    .topology(mesh(10))
                    .architecture(nn::resnet56_spec())
                    .shard_sizes(iid_sizes(10))
                    .build();
  EXPECT_LT(comdml.step().round_seconds, none.step().round_seconds);
}

TEST(FleetRuntimeSim, ServerBandwidthOptionReachesSimulatedFedAvg) {
  // comms.server_mbps must flow through FleetConfig into the simulated
  // param-server round, not just the real-execution path.
  auto slow_opt = FleetOptions::paper_defaults();
  slow_opt.comms.server_mbps = 10.0;  // congested server: 1 Mbps/agent
  auto fast = FleetBuilder()
                  .method(Method::kFedAvg)
                  .topology(mesh(10))
                  .architecture(nn::resnet56_spec())
                  .shard_sizes(iid_sizes(10))
                  .build();
  auto slow = FleetBuilder()
                  .method(Method::kFedAvg)
                  .options(slow_opt)
                  .topology(mesh(10))
                  .architecture(nn::resnet56_spec())
                  .shard_sizes(iid_sizes(10))
                  .build();
  EXPECT_GT(slow.step().aggregation_seconds,
            fast.step().aggregation_seconds);
}

TEST(FleetRuntimeSim, BuilderRefusesReuseAfterBuild) {
  FleetBuilder builder;
  builder.method(Method::kComDML)
      .topology(mesh(4))
      .architecture(nn::resnet56_spec())
      .shard_sizes(iid_sizes(4));
  (void)builder.build();
  // build() moved the inputs out; a second build must fail loudly instead
  // of constructing a fleet over moved-from state.
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
}

TEST(FleetRuntimeSim, BuilderRejectsInvalidCombinations) {
  // Mixed real + simulated inputs.
  EXPECT_THROW((void)FleetBuilder()
                   .topology(mesh(4))
                   .architecture(nn::resnet56_spec())
                   .shard_sizes(iid_sizes(4))
                   .shards({})
                   .build(),
               std::invalid_argument);
  // Missing topology.
  EXPECT_THROW((void)FleetBuilder()
                   .architecture(nn::resnet56_spec())
                   .shard_sizes(iid_sizes(4))
                   .build(),
               std::invalid_argument);
  // Scheduler ablations are ComDML-only.
  EXPECT_THROW((void)FleetBuilder()
                   .method(Method::kFedAvg)
                   .scheduler(Scheduler::kRandom)
                   .topology(mesh(4))
                   .architecture(nn::resnet56_spec())
                   .shard_sizes(iid_sizes(4))
                   .build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace comdml::core
