// Overlapped round pipeline tests: the bucket registry (partition /
// flatten / unit-readiness), the non-blocking stepped collectives
// (AsyncCollective poll/wait vs the blocking run), bucket determinism
// (bit-identical model state across bucket sizes, thread counts, and
// overlapped-vs-sequential mode), predicted-vs-executed overlap parity,
// the timeline composer, and FleetOptions validation.
#include <gtest/gtest.h>

#include <thread>

#include "baselines/real_baselines.hpp"
#include "comm/allreduce.hpp"
#include "core/fleet_runtime.hpp"
#include "core/parallel.hpp"
#include "core/real_fleet.hpp"
#include "core/round_pipeline.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/bucket.hpp"
#include "nn/resnet.hpp"

namespace comdml {
namespace {

using core::FleetOptions;
using core::RealFleet;
using core::compose_overlap_timeline;
using core::set_num_threads;
using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { set_num_threads(0); }  // restore env default
};

// ---- shared fixtures --------------------------------------------------------

core::ModelFactory mlp_factory(int64_t in, int64_t classes) {
  return [in, classes](Rng& rng) {
    return nn::mlp({in, 24, 24, classes}, rng);
  };
}

std::vector<data::Dataset> blob_shards(int64_t agents, int64_t per_agent,
                                       int64_t classes, int64_t features,
                                       uint64_t seed) {
  Rng rng(seed);
  const auto ds =
      data::make_blobs(agents * per_agent, classes, features, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  return shards;
}

Topology hetero_mesh(int64_t agents) {
  std::vector<ResourceProfile> profiles;
  const std::vector<double> cpus{4.0, 0.2, 2.0, 0.5};
  for (int64_t i = 0; i < agents; ++i)
    profiles.push_back({cpus[static_cast<size_t>(i) % cpus.size()], 100.0});
  return Topology::full_mesh(profiles);
}

/// Concatenated state of every agent replica after `rounds` fleet rounds.
std::vector<Tensor> fleet_state(const FleetOptions& opt, int64_t agents,
                                int rounds, uint64_t data_seed = 55) {
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(agents, 30, 3, 6, data_seed),
                  hetero_mesh(agents), opt);
  for (int r = 0; r < rounds; ++r) (void)fleet.step();
  std::vector<Tensor> all;
  for (int64_t a = 0; a < fleet.agents(); ++a) {
    auto s = nn::state_of(fleet.model(a));
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

void expect_states_equal(const std::vector<Tensor>& a,
                         const std::vector<Tensor>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << what << ": state tensor " << i << " differs";
}

// ---- BucketPlan -------------------------------------------------------------

TEST(BucketPlan, PartitionCoversStateInOrder) {
  Rng rng(1);
  const auto model = nn::small_cnn(3, 4, rng);
  const auto plan = nn::BucketPlan::build(*model, 1024);
  std::vector<Tensor*> state;
  model->collect_state(state);
  int64_t total = 0;
  for (const Tensor* t : state) total += t->size();
  EXPECT_EQ(plan.total_elems(), total);
  ASSERT_GT(plan.buckets(), 1);
  int64_t offset = 0;
  size_t tensor = 0;
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    const nn::Bucket& bk = plan.bucket(b);
    EXPECT_EQ(bk.offset_elems, offset) << "bucket " << b;
    EXPECT_EQ(bk.first_tensor, tensor) << "bucket " << b;
    EXPECT_GT(bk.tensor_count, 0u);
    EXPECT_LE(bk.first_unit, bk.last_unit);
    offset += bk.elems;
    tensor += bk.tensor_count;
  }
  EXPECT_EQ(offset, total);
  EXPECT_EQ(tensor, state.size());
}

TEST(BucketPlan, RespectsByteCapExceptForOversizedTensors) {
  Rng rng(2);
  const auto model = nn::mlp({8, 64, 4}, rng);  // 8x64 weight > 1 KiB
  const int64_t cap_bytes = 1024;
  const auto plan = nn::BucketPlan::build(*model, cap_bytes);
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    const nn::Bucket& bk = plan.bucket(b);
    if (bk.elems * 4 > cap_bytes) {
      // Oversized buckets are single whole tensors.
      EXPECT_EQ(bk.tensor_count, 1u) << "bucket " << b;
    }
  }
}

TEST(BucketPlan, ZeroBucketBytesYieldsOneFlatBucket) {
  Rng rng(3);
  const auto model = nn::mlp({6, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 0);
  EXPECT_EQ(plan.buckets(), 1);
  EXPECT_EQ(plan.bucket(0).elems, plan.total_elems());
}

TEST(BucketPlan, FlattenUnflattenRoundTrips) {
  Rng rng(4);
  const auto model = nn::mlp({6, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 128);
  const auto before = nn::state_of(*model);
  std::vector<double> flat(static_cast<size_t>(plan.total_elems()));
  std::vector<Tensor*> ptrs;
  model->collect_state(ptrs);
  for (int64_t b = 0; b < plan.buckets(); ++b)
    plan.flatten_bucket(ptrs, b, flat.data() + plan.bucket(b).offset_elems);
  // Perturb, restore through unflatten, expect the original bits.
  for (Tensor* t : ptrs) t->fill(0.0f);
  for (int64_t b = 0; b < plan.buckets(); ++b)
    plan.unflatten_bucket(flat.data() + plan.bucket(b).offset_elems, b,
                          ptrs);
  const auto after = nn::state_of(*model);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

TEST(BucketPlan, UnitParamCountsMatchModel) {
  Rng rng(5);
  const auto model = nn::small_cnn(3, 4, rng);
  const auto plan = nn::BucketPlan::build(*model, 4096);
  ASSERT_EQ(plan.unit_param_counts().size(), model->size());
  size_t total = 0;
  for (size_t u = 0; u < model->size(); ++u) {
    EXPECT_EQ(plan.unit_param_counts()[u],
              model->unit(u).parameters().size());
    total += plan.unit_param_counts()[u];
  }
  EXPECT_EQ(total, model->parameters().size());
}

// ---- BucketReadyTracker -----------------------------------------------------

TEST(BucketReadyTracker, ReverseUnitWalkFiresOutputSideBucketsFirst) {
  Rng rng(6);
  const auto model = nn::mlp({6, 16, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 64);
  ASSERT_GT(plan.buckets(), 2);
  nn::BucketReadyTracker tracker(plan);
  std::vector<int64_t> order;
  for (size_t u = model->size(); u-- > 0;)
    tracker.unit_done(u, [&](int64_t b) { order.push_back(b); });
  // Every bucket fires exactly once...
  EXPECT_EQ(tracker.fired(), plan.buckets());
  ASSERT_EQ(order.size(), static_cast<size_t>(plan.buckets()));
  // ...grouped output-side first: a bucket owned by a deeper unit always
  // fires before any bucket of a shallower unit.
  for (size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(plan.bucket(order[i - 1]).last_unit,
              plan.bucket(order[i]).last_unit);
  // finish() after a full walk has nothing left to fire.
  tracker.finish([&](int64_t) { FAIL() << "finish() re-fired a bucket"; });
}

TEST(BucketReadyTracker, BucketSpanningTwoUnitsWaitsForBoth) {
  Rng rng(7);
  const auto model = nn::mlp({4, 6, 3}, rng);  // several tensors per unit
  const auto plan = nn::BucketPlan::build(*model, 0);  // one flat bucket
  nn::BucketReadyTracker tracker(plan);
  int fired = 0;
  // Walk all units but the first: the flat bucket spans every
  // state-owning unit, so it must not fire yet.
  for (size_t u = model->size(); u-- > 1;)
    tracker.unit_done(u, [&](int64_t) { ++fired; });
  EXPECT_EQ(fired, 0);
  tracker.unit_done(0, [&](int64_t) { ++fired; });
  EXPECT_EQ(fired, 1);
}

// ---- AsyncCollective --------------------------------------------------------

class AsyncParityP
    : public ::testing::TestWithParam<std::tuple<int, comm::Protocol>> {};

TEST_P(AsyncParityP, PollDrivenRunMatchesBlockingRun) {
  const auto [k, protocol] = GetParam();
  const int64_t elems = 103;
  Rng rng(100 + static_cast<uint64_t>(k));
  std::vector<std::vector<double>> blocking_bufs(static_cast<size_t>(k)),
      async_bufs(static_cast<size_t>(k));
  for (int64_t a = 0; a < k; ++a) {
    auto& b = blocking_bufs[static_cast<size_t>(a)];
    b.resize(static_cast<size_t>(elems));
    for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
    async_bufs[static_cast<size_t>(a)] = b;
  }

  comm::InProcTransport blocking_t(comm::LinkGrid::uniform(k, 100.0));
  comm::CollectiveRequest blocking_req;
  blocking_req.elems = elems;
  for (auto& b : blocking_bufs) blocking_req.buffers.push_back(b.data());
  (void)comm::collective(protocol).run(blocking_t, blocking_req);

  comm::InProcTransport async_t(comm::LinkGrid::uniform(k, 100.0));
  comm::CollectiveRequest async_req;
  async_req.elems = elems;
  for (auto& b : async_bufs) async_req.buffers.push_back(b.data());
  comm::AsyncCollective op(protocol, async_t, std::move(async_req));
  int64_t polls = 0;
  while (!op.done()) {
    (void)op.poll();
    ++polls;
  }

  // Same schedule: one transport step per poll, identical accounting,
  // bitwise identical results.
  EXPECT_EQ(polls, op.total_steps());
  EXPECT_EQ(async_t.stats().steps, blocking_t.stats().steps);
  EXPECT_EQ(async_t.stats().messages, blocking_t.stats().messages);
  EXPECT_EQ(async_t.stats().total_wire_bytes,
            blocking_t.stats().total_wire_bytes);
  EXPECT_DOUBLE_EQ(async_t.stats().seconds, blocking_t.stats().seconds);
  for (int64_t a = 0; a < k; ++a)
    EXPECT_EQ(async_bufs[static_cast<size_t>(a)],
              blocking_bufs[static_cast<size_t>(a)])
        << "agent " << a;
}

INSTANTIATE_TEST_SUITE_P(
    FleetSizes, AsyncParityP,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 5, 8, 12),
        ::testing::Values(comm::Protocol::kRingAllReduce,
                          comm::Protocol::kHalvingDoublingAllReduce)));

TEST(AsyncCollective, SingleAgentIsImmediatelyDone) {
  comm::InProcTransport t(comm::LinkGrid::uniform(1, 100.0));
  std::vector<double> buf{1.0, 2.0};
  comm::CollectiveRequest req;
  req.elems = 2;
  req.buffers = {buf.data()};
  comm::AsyncCollective op(comm::Protocol::kHalvingDoublingAllReduce, t,
                           std::move(req));
  EXPECT_TRUE(op.done());
  op.wait();
  EXPECT_EQ(buf[0], 1.0);  // untouched
}

TEST(AsyncCollective, RejectsProtocolsWithoutSteppedSchedule) {
  EXPECT_THROW((void)comm::allreduce_schedule(comm::Protocol::kGossip, 4, 8),
               std::invalid_argument);
  EXPECT_THROW(
      (void)comm::allreduce_schedule(comm::Protocol::kParamServer, 4, 8),
      std::invalid_argument);
}

// ---- bucketed determinism at the collective layer ---------------------------

TEST(BucketDeterminism, HalvingDoublingBucketedMatchesFlatBitwise) {
  // Halving/doubling reduces every element through the same balanced
  // binary agent tree regardless of segmentation, so bucketing must not
  // change a single bit of the result.
  for (const int64_t k : {4, 7}) {
    const int64_t elems = 257;
    Rng rng(200 + static_cast<uint64_t>(k));
    std::vector<std::vector<double>> base(static_cast<size_t>(k));
    for (auto& b : base) {
      b.resize(static_cast<size_t>(elems));
      for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
    }

    auto flat = base;
    comm::InProcTransport flat_t(comm::LinkGrid::uniform(k, 100.0));
    comm::CollectiveRequest flat_req;
    flat_req.elems = elems;
    for (auto& b : flat) flat_req.buffers.push_back(b.data());
    (void)comm::collective(comm::Protocol::kHalvingDoublingAllReduce)
        .run(flat_t, flat_req);

    for (const int64_t bucket_elems : {32, 100, 257}) {
      auto bucketed = base;
      for (int64_t begin = 0; begin < elems; begin += bucket_elems) {
        const int64_t len = std::min(bucket_elems, elems - begin);
        comm::InProcTransport t(comm::LinkGrid::uniform(k, 100.0));
        comm::CollectiveRequest req;
        req.elems = len;
        for (auto& b : bucketed) req.buffers.push_back(b.data() + begin);
        (void)comm::collective(comm::Protocol::kHalvingDoublingAllReduce)
            .run(t, req);
      }
      for (int64_t a = 0; a < k; ++a)
        EXPECT_EQ(bucketed[static_cast<size_t>(a)],
                  flat[static_cast<size_t>(a)])
            << "k=" << k << " bucket_elems=" << bucket_elems << " agent "
            << a;
    }
  }
}

// ---- timeline composer ------------------------------------------------------

TEST(OverlapTimeline, SerializesBucketsOnTheLink) {
  // All ready at t=10: pure pipeline after the barrier.
  const auto tl = compose_overlap_timeline({10, 10, 10}, {2, 3, 1});
  EXPECT_DOUBLE_EQ(tl.start[0], 10.0);
  EXPECT_DOUBLE_EQ(tl.finish[0], 12.0);
  EXPECT_DOUBLE_EQ(tl.start[1], 12.0);
  EXPECT_DOUBLE_EQ(tl.finish[1], 15.0);
  EXPECT_DOUBLE_EQ(tl.finish[2], 16.0);
  EXPECT_DOUBLE_EQ(tl.span, 16.0);
}

TEST(OverlapTimeline, EarlyBucketsHideBehindCompute) {
  // Bucket 2 ready first (output side), bucket 0 last: comm starts at 4
  // and overlaps the remaining compute; only the tail is exposed.
  const auto tl = compose_overlap_timeline({10, 7, 4}, {2, 2, 2});
  EXPECT_DOUBLE_EQ(tl.start[2], 4.0);
  EXPECT_DOUBLE_EQ(tl.start[1], 7.0);
  EXPECT_DOUBLE_EQ(tl.start[0], 10.0);
  EXPECT_DOUBLE_EQ(tl.span, 12.0);  // vs 10 + 6 = 16 sequential
}

TEST(OverlapTimeline, LinkContentionQueuesReadyBuckets) {
  const auto tl = compose_overlap_timeline({0, 1, 2}, {5, 5, 5});
  EXPECT_DOUBLE_EQ(tl.start[1], 5.0);
  EXPECT_DOUBLE_EQ(tl.start[2], 10.0);
  EXPECT_DOUBLE_EQ(tl.span, 15.0);
}

// ---- RoundPipeline ----------------------------------------------------------

TEST(RoundPipeline, ConcurrentProducersAndCollectorsReduceEveryBucket) {
  Rng rng(8);
  const auto model = nn::mlp({6, 16, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 128);
  const int64_t k = 6;
  core::RoundPipeline pipeline(k, plan, comm::LinkGrid::uniform(k, 100.0),
                               comm::AllReduceAlgo::kHalvingDoubling);

  // Expected mean of the synthetic per-agent payloads.
  const int64_t n = plan.total_elems();
  std::vector<double> expected(static_cast<size_t>(n), 0.0);
  const auto value_of = [&](int64_t agent, int64_t i) {
    return static_cast<double>(agent + 1) * 0.5 +
           static_cast<double>(i % 17) * 0.25;
  };
  for (int64_t a = 0; a < k; ++a)
    for (int64_t i = 0; i < n; ++i)
      expected[static_cast<size_t>(i)] += value_of(a, i);
  for (auto& v : expected) v /= static_cast<double>(k);

  // Producers contribute from their own threads while two collectors
  // drain concurrently.
  std::vector<std::thread> threads;
  for (int64_t a = 0; a < k; ++a) {
    threads.emplace_back([&, a] {
      for (int64_t b = plan.buckets(); b-- > 0;) {
        const nn::Bucket& bk = plan.bucket(b);
        double* slot = pipeline.slot(a, b);
        for (int64_t i = 0; i < bk.elems; ++i)
          slot[i] = value_of(a, bk.offset_elems + i);
        pipeline.contribute(a, b);
      }
    });
  }
  for (int c = 0; c < 2; ++c)
    threads.emplace_back([&] { pipeline.drain(); });
  for (auto& t : threads) t.join();

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.buckets, plan.buckets());
  EXPECT_GT(stats.comm_seconds, 0.0);
  EXPECT_GT(stats.max_bytes_sent, 0);
  for (int64_t a = 0; a < k; ++a)
    for (int64_t b = 0; b < plan.buckets(); ++b) {
      const nn::Bucket& bk = plan.bucket(b);
      const double* slot = pipeline.slot(a, b);
      for (int64_t i = 0; i < bk.elems; ++i)
        EXPECT_NEAR(slot[i],
                    expected[static_cast<size_t>(bk.offset_elems + i)],
                    1e-12)
            << "agent " << a << " bucket " << b << " elem " << i;
    }
}

TEST(RoundPipeline, BeginRoundResetsForReuse) {
  Rng rng(9);
  const auto model = nn::mlp({4, 8, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 64);
  const int64_t k = 3;
  core::RoundPipeline pipeline(k, plan, comm::LinkGrid::uniform(k, 100.0),
                               comm::AllReduceAlgo::kRing);
  for (int round = 0; round < 3; ++round) {
    pipeline.begin_round();
    for (int64_t a = 0; a < k; ++a) {
      for (int64_t b = 0; b < plan.buckets(); ++b) {
        double* slot = pipeline.slot(a, b);
        for (int64_t i = 0; i < plan.bucket(b).elems; ++i)
          slot[i] = static_cast<double>(a);
      }
      pipeline.contribute_all(a);
    }
    pipeline.drain();
    const auto stats = pipeline.stats();
    EXPECT_EQ(stats.buckets, plan.buckets());
    // Stats are per round, not cumulative.
    EXPECT_EQ(stats.steps, plan.buckets() * 2 * (k - 1));  // ring steps
    for (int64_t a = 0; a < k; ++a)
      EXPECT_NEAR(pipeline.slot(a, 0)[0], 1.0, 1e-12);  // mean of 0,1,2
  }
}

// ---- predicted vs executed overlap parity -----------------------------------

class OverlapParityP : public ::testing::TestWithParam<comm::Protocol> {};

TEST_P(OverlapParityP, SimPredictsExecutedBucketScheduleExactly) {
  const comm::Protocol protocol = GetParam();
  const comm::AllReduceAlgo algo =
      protocol == comm::Protocol::kRingAllReduce
          ? comm::AllReduceAlgo::kRing
          : comm::AllReduceAlgo::kHalvingDoubling;
  Rng rng(11);
  const auto model = nn::mlp({6, 16, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 256);
  const int64_t k = 5;
  const auto grid = comm::LinkGrid::uniform(k, 40.0);

  // Predicted: timing-only SimTransport run of each bucket's schedule.
  std::vector<double> predicted_seconds;
  std::vector<int64_t> predicted_steps;
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    comm::SimTransport sim(grid);
    comm::CollectiveRequest req;
    req.elems = plan.bucket(b).elems;
    comm::AsyncCollective op(protocol, sim, std::move(req));
    op.wait();
    predicted_seconds.push_back(sim.stats().seconds);
    predicted_steps.push_back(sim.stats().steps);
  }

  // Executed: the concurrent pipeline with real payloads.
  core::RoundPipeline pipeline(k, plan, grid, algo);
  for (int64_t a = 0; a < k; ++a) {
    for (int64_t b = 0; b < plan.buckets(); ++b) {
      double* slot = pipeline.slot(a, b);
      for (int64_t i = 0; i < plan.bucket(b).elems; ++i)
        slot[i] = static_cast<double>(a + i % 7);
      pipeline.contribute(a, b);
    }
  }
  pipeline.drain();
  const auto stats = pipeline.stats();

  // Per-bucket predicted clock == executed clock, so any timeline composed
  // from ready times is identical for the predicted and executed schedule.
  ASSERT_EQ(stats.bucket_seconds.size(), predicted_seconds.size());
  int64_t executed_steps = 0;
  for (size_t b = 0; b < predicted_seconds.size(); ++b)
    EXPECT_DOUBLE_EQ(stats.bucket_seconds[b], predicted_seconds[b])
        << "bucket " << b;
  for (const int64_t s : predicted_steps) executed_steps += s;
  EXPECT_EQ(stats.steps, executed_steps);

  const std::vector<double> ready(predicted_seconds.size(), 1.0);
  const auto predicted_tl = compose_overlap_timeline(ready, predicted_seconds);
  const auto executed_tl =
      compose_overlap_timeline(ready, stats.bucket_seconds);
  EXPECT_DOUBLE_EQ(predicted_tl.span, executed_tl.span);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, OverlapParityP,
    ::testing::Values(comm::Protocol::kRingAllReduce,
                      comm::Protocol::kHalvingDoublingAllReduce));

// ---- fleet-level bucket determinism -----------------------------------------

TEST(FleetBucketDeterminism, BucketedSequentialMatchesFlatBitwise) {
  // Default halving/doubling aggregation: bucketing must not change a bit.
  FleetOptions flat;
  flat.seed = 99;
  const auto base = fleet_state(flat, 4, 2);
  for (const int64_t bucket_bytes : {256, 1024, 1 << 20}) {
    FleetOptions opt;
    opt.seed = 99;
    opt.comms.bucket_bytes = bucket_bytes;
    expect_states_equal(base, fleet_state(opt, 4, 2), "bucket_bytes sweep");
  }
}

TEST(FleetBucketDeterminism, OverlappedMatchesSequentialBitwise) {
  for (const auto algo :
       {comm::AllReduceAlgo::kHalvingDoubling, comm::AllReduceAlgo::kRing}) {
    FleetOptions seq;
    seq.seed = 99;
    seq.comms.aggregation = algo;
    seq.comms.bucket_bytes = 512;
    FleetOptions ovl = seq;
    ovl.comms.overlap = true;
    expect_states_equal(fleet_state(seq, 4, 2), fleet_state(ovl, 4, 2),
                        "overlap vs sequential");
  }
}

TEST(FleetBucketDeterminism, OverlappedBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  FleetOptions opt;
  opt.seed = 99;
  opt.comms.bucket_bytes = 512;
  opt.comms.overlap = true;
  set_num_threads(1);
  const auto s1 = fleet_state(opt, 4, 2);
  set_num_threads(8);
  const auto s8 = fleet_state(opt, 4, 2);
  expect_states_equal(s1, s8, "1 vs 8 threads");
}

TEST(FleetBucketDeterminism, DifferentialPrivacyBucketedMatchesFlat) {
  FleetOptions flat;
  flat.seed = 7;
  flat.privacy.technique = learncurve::PrivacyTechnique::kDifferentialPrivacy;
  flat.privacy.dp_epsilon = 2.0;
  flat.privacy.dp_sensitivity = 1e-4;
  FleetOptions bucketed = flat;
  bucketed.comms.bucket_bytes = 512;
  bucketed.comms.overlap = true;  // DP narrows to post-noise publication
  expect_states_equal(fleet_state(flat, 4, 2), fleet_state(bucketed, 4, 2),
                      "DP bucketed vs flat");
}

TEST(FleetBucketDeterminism, OverlappedRoundReportsPipelineShape) {
  FleetOptions opt;
  opt.seed = 3;
  opt.comms.bucket_bytes = 512;
  opt.comms.overlap = true;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 30, 3, 6, 21),
                  hetero_mesh(4), opt);
  const auto stats = fleet.step();
  EXPECT_GT(stats.buckets, 1);
  EXPECT_GT(stats.aggregation_seconds, 0.0);
  EXPECT_GT(stats.aggregation_bytes, 0);
  // Overlap can only hide aggregation time, never add to it...
  EXPECT_LE(stats.exposed_comm_seconds, stats.aggregation_seconds + 1e-12);
  EXPECT_GE(stats.exposed_comm_seconds, 0.0);
  // ...and the modeled round is never shorter than its parts allow.
  EXPECT_GE(stats.sim_time, stats.exposed_comm_seconds);
}

TEST(FleetBucketDeterminism, BaselineAllReduceBucketedMatchesFlat) {
  using baselines::RealBaselineFleet;
  const auto run = [&](int64_t bucket_bytes, bool overlap) {
    FleetOptions opt;
    opt.seed = 31;
    opt.comms.bucket_bytes = bucket_bytes;
    opt.comms.overlap = overlap;
    RealBaselineFleet fleet(learncurve::Method::kAllReduceDML,
                            mlp_factory(6, 3), 3,
                            blob_shards(4, 30, 3, 6, 41), hetero_mesh(4),
                            opt);
    for (int r = 0; r < 2; ++r) (void)fleet.step();
    std::vector<Tensor> all;
    for (int64_t a = 0; a < fleet.agents(); ++a) {
      auto s = nn::state_of(fleet.model(a));
      all.insert(all.end(), s.begin(), s.end());
    }
    return all;
  };
  const auto flat = run(0, false);
  expect_states_equal(flat, run(512, false), "baseline bucketed");
  expect_states_equal(flat, run(512, true), "baseline overlapped");
}

TEST(FleetRuntimeOverlap, FacadeReportsBucketsAndExposedComm) {
  FleetOptions opt;
  opt.comms.bucket_bytes = 512;
  opt.comms.overlap = true;
  auto fleet = core::FleetBuilder()
                   .method(learncurve::Method::kComDML)
                   .options(opt)
                   .topology(hetero_mesh(4))
                   .model(mlp_factory(6, 3), 3)
                   .shards(blob_shards(4, 30, 3, 6, 61))
                   .build();
  const auto rep = fleet.step();
  EXPECT_GT(rep.buckets, 1);
  EXPECT_GT(rep.aggregation_seconds, 0.0);
  EXPECT_LE(rep.exposed_comm_seconds, rep.aggregation_seconds + 1e-12);
  EXPECT_GT(rep.round_seconds, 0.0);
}

// ---- FleetOptions validation ------------------------------------------------

TEST(FleetOptionsValidate, DefaultsPass) {
  FleetOptions opt;
  EXPECT_NO_THROW(opt.validate());
  EXPECT_NO_THROW(FleetOptions::paper_defaults().validate());
}

TEST(FleetOptionsValidate, RejectsBadTrainingGeometry) {
  FleetOptions opt;
  opt.train.batch_size = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.train.batches_per_round = -1;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.train.sgd.lr = 0.0f;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.train.reference_flops = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(FleetOptionsValidate, RejectsBadCommKnobs) {
  FleetOptions opt;
  opt.comms.server_mbps = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.comms.latency_sec = -1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.comms.bucket_bytes = -4;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.comms.overlap = true;  // overlap without bucketing
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(FleetOptionsValidate, RejectsBadScaleAndPrivacyKnobs) {
  FleetOptions opt;
  opt.scale.participation = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.scale.agent_dropout = 1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.privacy.dp_epsilon = -0.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.privacy.shuffle_patch = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(FleetOptionsValidate, FleetsRejectInvalidOptionsAtConstruction) {
  FleetOptions opt;
  opt.train.batch_size = -8;
  EXPECT_THROW(RealFleet(mlp_factory(6, 3), 3, blob_shards(2, 20, 3, 6, 71),
                         hetero_mesh(2), opt),
               std::invalid_argument);
  EXPECT_THROW(baselines::RealBaselineFleet(
                   learncurve::Method::kFedAvg, mlp_factory(6, 3), 3,
                   blob_shards(2, 20, 3, 6, 72), hetero_mesh(2), opt),
               std::invalid_argument);
  EXPECT_THROW(core::FleetBuilder()
                   .method(learncurve::Method::kComDML)
                   .options(opt)
                   .topology(hetero_mesh(2))
                   .architecture(nn::resnet56_spec())
                   .shard_sizes({100, 100})
                   .build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace comdml
