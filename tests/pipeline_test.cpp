// Overlapped round pipeline tests: the bucket registry (partition /
// flatten / unit-readiness), the non-blocking stepped collectives
// (AsyncCollective poll/wait vs the blocking run), bucket determinism
// (bit-identical model state across bucket sizes, thread counts, and
// overlapped-vs-sequential mode), predicted-vs-executed overlap parity,
// the timeline composer, and FleetOptions validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "baselines/real_baselines.hpp"
#include "comm/allreduce.hpp"
#include "core/fleet_runtime.hpp"
#include "core/parallel.hpp"
#include "core/real_fleet.hpp"
#include "core/round_pipeline.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/bucket.hpp"
#include "nn/resnet.hpp"

namespace comdml {
namespace {

using core::FleetOptions;
using core::RealFleet;
using core::compose_overlap_timeline;
using core::set_num_threads;
using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { set_num_threads(0); }  // restore env default
};

// ---- shared fixtures --------------------------------------------------------

core::ModelFactory mlp_factory(int64_t in, int64_t classes) {
  return [in, classes](Rng& rng) {
    return nn::mlp({in, 24, 24, classes}, rng);
  };
}

std::vector<data::Dataset> blob_shards(int64_t agents, int64_t per_agent,
                                       int64_t classes, int64_t features,
                                       uint64_t seed) {
  Rng rng(seed);
  const auto ds =
      data::make_blobs(agents * per_agent, classes, features, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  return shards;
}

Topology hetero_mesh(int64_t agents) {
  std::vector<ResourceProfile> profiles;
  const std::vector<double> cpus{4.0, 0.2, 2.0, 0.5};
  for (int64_t i = 0; i < agents; ++i)
    profiles.push_back({cpus[static_cast<size_t>(i) % cpus.size()], 100.0});
  return Topology::full_mesh(profiles);
}

/// Concatenated state of every agent replica after `rounds` fleet rounds.
std::vector<Tensor> fleet_state(const FleetOptions& opt, int64_t agents,
                                int rounds, uint64_t data_seed = 55) {
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(agents, 30, 3, 6, data_seed),
                  hetero_mesh(agents), opt);
  for (int r = 0; r < rounds; ++r) (void)fleet.step();
  std::vector<Tensor> all;
  for (int64_t a = 0; a < fleet.agents(); ++a) {
    auto s = nn::state_of(fleet.model(a));
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

void expect_states_equal(const std::vector<Tensor>& a,
                         const std::vector<Tensor>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << what << ": state tensor " << i << " differs";
}

// ---- BucketPlan -------------------------------------------------------------

TEST(BucketPlan, PartitionCoversStateInOrder) {
  Rng rng(1);
  const auto model = nn::small_cnn(3, 4, rng);
  const auto plan = nn::BucketPlan::build(*model, 1024);
  std::vector<Tensor*> state;
  model->collect_state(state);
  int64_t total = 0;
  for (const Tensor* t : state) total += t->size();
  EXPECT_EQ(plan.total_elems(), total);
  ASSERT_GT(plan.buckets(), 1);
  int64_t offset = 0;
  size_t tensor = 0;
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    const nn::Bucket& bk = plan.bucket(b);
    EXPECT_EQ(bk.offset_elems, offset) << "bucket " << b;
    EXPECT_EQ(bk.first_tensor, tensor) << "bucket " << b;
    EXPECT_GT(bk.tensor_count, 0u);
    EXPECT_LE(bk.first_unit, bk.last_unit);
    offset += bk.elems;
    tensor += bk.tensor_count;
  }
  EXPECT_EQ(offset, total);
  EXPECT_EQ(tensor, state.size());
}

TEST(BucketPlan, RespectsByteCapExceptForOversizedTensors) {
  Rng rng(2);
  const auto model = nn::mlp({8, 64, 4}, rng);  // 8x64 weight > 1 KiB
  const int64_t cap_bytes = 1024;
  const auto plan = nn::BucketPlan::build(*model, cap_bytes);
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    const nn::Bucket& bk = plan.bucket(b);
    if (bk.elems * 4 > cap_bytes) {
      // Oversized buckets are single whole tensors.
      EXPECT_EQ(bk.tensor_count, 1u) << "bucket " << b;
    }
  }
}

TEST(BucketPlan, ZeroBucketBytesYieldsOneFlatBucket) {
  Rng rng(3);
  const auto model = nn::mlp({6, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 0);
  EXPECT_EQ(plan.buckets(), 1);
  EXPECT_EQ(plan.bucket(0).elems, plan.total_elems());
}

TEST(BucketPlan, FlattenUnflattenRoundTrips) {
  Rng rng(4);
  const auto model = nn::mlp({6, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 128);
  const auto before = nn::state_of(*model);
  std::vector<double> flat(static_cast<size_t>(plan.total_elems()));
  std::vector<Tensor*> ptrs;
  model->collect_state(ptrs);
  for (int64_t b = 0; b < plan.buckets(); ++b)
    plan.flatten_bucket(ptrs, b, flat.data() + plan.bucket(b).offset_elems);
  // Perturb, restore through unflatten, expect the original bits.
  for (Tensor* t : ptrs) t->fill(0.0f);
  for (int64_t b = 0; b < plan.buckets(); ++b)
    plan.unflatten_bucket(flat.data() + plan.bucket(b).offset_elems, b,
                          ptrs);
  const auto after = nn::state_of(*model);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

TEST(BucketPlan, UnitParamCountsMatchModel) {
  Rng rng(5);
  const auto model = nn::small_cnn(3, 4, rng);
  const auto plan = nn::BucketPlan::build(*model, 4096);
  ASSERT_EQ(plan.unit_param_counts().size(), model->size());
  size_t total = 0;
  for (size_t u = 0; u < model->size(); ++u) {
    EXPECT_EQ(plan.unit_param_counts()[u],
              model->unit(u).parameters().size());
    total += plan.unit_param_counts()[u];
  }
  EXPECT_EQ(total, model->parameters().size());
}

// ---- BucketReadyTracker -----------------------------------------------------

TEST(BucketReadyTracker, ReverseUnitWalkFiresOutputSideBucketsFirst) {
  Rng rng(6);
  const auto model = nn::mlp({6, 16, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 64);
  ASSERT_GT(plan.buckets(), 2);
  nn::BucketReadyTracker tracker(plan);
  std::vector<int64_t> order;
  for (size_t u = model->size(); u-- > 0;)
    tracker.unit_done(u, [&](int64_t b) { order.push_back(b); });
  // Every bucket fires exactly once...
  EXPECT_EQ(tracker.fired(), plan.buckets());
  ASSERT_EQ(order.size(), static_cast<size_t>(plan.buckets()));
  // ...grouped output-side first: a bucket owned by a deeper unit always
  // fires before any bucket of a shallower unit.
  for (size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(plan.bucket(order[i - 1]).last_unit,
              plan.bucket(order[i]).last_unit);
  // finish() after a full walk has nothing left to fire.
  tracker.finish([&](int64_t) { FAIL() << "finish() re-fired a bucket"; });
}

TEST(BucketReadyTracker, BucketSpanningTwoUnitsWaitsForBoth) {
  Rng rng(7);
  const auto model = nn::mlp({4, 6, 3}, rng);  // several tensors per unit
  const auto plan = nn::BucketPlan::build(*model, 0);  // one flat bucket
  nn::BucketReadyTracker tracker(plan);
  int fired = 0;
  // Walk all units but the first: the flat bucket spans every
  // state-owning unit, so it must not fire yet.
  for (size_t u = model->size(); u-- > 1;)
    tracker.unit_done(u, [&](int64_t) { ++fired; });
  EXPECT_EQ(fired, 0);
  tracker.unit_done(0, [&](int64_t) { ++fired; });
  EXPECT_EQ(fired, 1);
}

// ---- AsyncCollective --------------------------------------------------------

class AsyncParityP
    : public ::testing::TestWithParam<std::tuple<int, comm::Protocol>> {};

TEST_P(AsyncParityP, PollDrivenRunMatchesBlockingRun) {
  const auto [k, protocol] = GetParam();
  const int64_t elems = 103;
  Rng rng(100 + static_cast<uint64_t>(k));
  std::vector<std::vector<double>> blocking_bufs(static_cast<size_t>(k)),
      async_bufs(static_cast<size_t>(k));
  for (int64_t a = 0; a < k; ++a) {
    auto& b = blocking_bufs[static_cast<size_t>(a)];
    b.resize(static_cast<size_t>(elems));
    for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
    async_bufs[static_cast<size_t>(a)] = b;
  }

  comm::InProcTransport blocking_t(comm::LinkGrid::uniform(k, 100.0));
  comm::CollectiveRequest blocking_req;
  blocking_req.elems = elems;
  for (auto& b : blocking_bufs) blocking_req.buffers.push_back(b.data());
  (void)comm::collective(protocol).run(blocking_t, blocking_req);

  comm::InProcTransport async_t(comm::LinkGrid::uniform(k, 100.0));
  comm::CollectiveRequest async_req;
  async_req.elems = elems;
  for (auto& b : async_bufs) async_req.buffers.push_back(b.data());
  comm::AsyncCollective op(protocol, async_t, std::move(async_req));
  int64_t polls = 0;
  while (!op.done()) {
    (void)op.poll();
    ++polls;
  }

  // Same schedule: one transport step per poll, identical accounting,
  // bitwise identical results.
  EXPECT_EQ(polls, op.total_steps());
  EXPECT_EQ(async_t.stats().steps, blocking_t.stats().steps);
  EXPECT_EQ(async_t.stats().messages, blocking_t.stats().messages);
  EXPECT_EQ(async_t.stats().total_wire_bytes,
            blocking_t.stats().total_wire_bytes);
  EXPECT_DOUBLE_EQ(async_t.stats().seconds, blocking_t.stats().seconds);
  for (int64_t a = 0; a < k; ++a)
    EXPECT_EQ(async_bufs[static_cast<size_t>(a)],
              blocking_bufs[static_cast<size_t>(a)])
        << "agent " << a;
}

INSTANTIATE_TEST_SUITE_P(
    FleetSizes, AsyncParityP,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 5, 8, 12),
        ::testing::Values(comm::Protocol::kRingAllReduce,
                          comm::Protocol::kHalvingDoublingAllReduce)));

TEST(AsyncCollective, SingleAgentIsImmediatelyDone) {
  comm::InProcTransport t(comm::LinkGrid::uniform(1, 100.0));
  std::vector<double> buf{1.0, 2.0};
  comm::CollectiveRequest req;
  req.elems = 2;
  req.buffers = {buf.data()};
  comm::AsyncCollective op(comm::Protocol::kHalvingDoublingAllReduce, t,
                           std::move(req));
  EXPECT_TRUE(op.done());
  op.wait();
  EXPECT_EQ(buf[0], 1.0);  // untouched
}

TEST(AsyncCollective, RejectsProtocolsWithoutSteppedSchedule) {
  EXPECT_THROW((void)comm::allreduce_schedule(comm::Protocol::kGossip, 4, 8),
               std::invalid_argument);
  EXPECT_THROW(
      (void)comm::allreduce_schedule(comm::Protocol::kParamServer, 4, 8),
      std::invalid_argument);
}

// ---- bucketed determinism at the collective layer ---------------------------

TEST(BucketDeterminism, HalvingDoublingBucketedMatchesFlatBitwise) {
  // Halving/doubling reduces every element through the same balanced
  // binary agent tree regardless of segmentation, so bucketing must not
  // change a single bit of the result.
  for (const int64_t k : {4, 7}) {
    const int64_t elems = 257;
    Rng rng(200 + static_cast<uint64_t>(k));
    std::vector<std::vector<double>> base(static_cast<size_t>(k));
    for (auto& b : base) {
      b.resize(static_cast<size_t>(elems));
      for (auto& v : b) v = static_cast<double>(rng.uniform(-1.0f, 1.0f));
    }

    auto flat = base;
    comm::InProcTransport flat_t(comm::LinkGrid::uniform(k, 100.0));
    comm::CollectiveRequest flat_req;
    flat_req.elems = elems;
    for (auto& b : flat) flat_req.buffers.push_back(b.data());
    (void)comm::collective(comm::Protocol::kHalvingDoublingAllReduce)
        .run(flat_t, flat_req);

    for (const int64_t bucket_elems : {32, 100, 257}) {
      auto bucketed = base;
      for (int64_t begin = 0; begin < elems; begin += bucket_elems) {
        const int64_t len = std::min(bucket_elems, elems - begin);
        comm::InProcTransport t(comm::LinkGrid::uniform(k, 100.0));
        comm::CollectiveRequest req;
        req.elems = len;
        for (auto& b : bucketed) req.buffers.push_back(b.data() + begin);
        (void)comm::collective(comm::Protocol::kHalvingDoublingAllReduce)
            .run(t, req);
      }
      for (int64_t a = 0; a < k; ++a)
        EXPECT_EQ(bucketed[static_cast<size_t>(a)],
                  flat[static_cast<size_t>(a)])
            << "k=" << k << " bucket_elems=" << bucket_elems << " agent "
            << a;
    }
  }
}

// ---- timeline composer ------------------------------------------------------

TEST(OverlapTimeline, SerializesBucketsOnTheLink) {
  // All ready at t=10: pure pipeline after the barrier.
  const auto tl = compose_overlap_timeline({10, 10, 10}, {2, 3, 1});
  EXPECT_DOUBLE_EQ(tl.start[0], 10.0);
  EXPECT_DOUBLE_EQ(tl.finish[0], 12.0);
  EXPECT_DOUBLE_EQ(tl.start[1], 12.0);
  EXPECT_DOUBLE_EQ(tl.finish[1], 15.0);
  EXPECT_DOUBLE_EQ(tl.finish[2], 16.0);
  EXPECT_DOUBLE_EQ(tl.span, 16.0);
}

TEST(OverlapTimeline, EarlyBucketsHideBehindCompute) {
  // Bucket 2 ready first (output side), bucket 0 last: comm starts at 4
  // and overlaps the remaining compute; only the tail is exposed.
  const auto tl = compose_overlap_timeline({10, 7, 4}, {2, 2, 2});
  EXPECT_DOUBLE_EQ(tl.start[2], 4.0);
  EXPECT_DOUBLE_EQ(tl.start[1], 7.0);
  EXPECT_DOUBLE_EQ(tl.start[0], 10.0);
  EXPECT_DOUBLE_EQ(tl.span, 12.0);  // vs 10 + 6 = 16 sequential
}

TEST(OverlapTimeline, LinkContentionQueuesReadyBuckets) {
  const auto tl = compose_overlap_timeline({0, 1, 2}, {5, 5, 5});
  EXPECT_DOUBLE_EQ(tl.start[1], 5.0);
  EXPECT_DOUBLE_EQ(tl.start[2], 10.0);
  EXPECT_DOUBLE_EQ(tl.span, 15.0);
}

// ---- RoundPipeline ----------------------------------------------------------

TEST(RoundPipeline, ConcurrentProducersAndCollectorsReduceEveryBucket) {
  Rng rng(8);
  const auto model = nn::mlp({6, 16, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 128);
  const int64_t k = 6;
  core::RoundPipeline pipeline(k, plan, comm::LinkGrid::uniform(k, 100.0),
                               comm::AllReduceAlgo::kHalvingDoubling);

  // Expected mean of the synthetic per-agent payloads.
  const int64_t n = plan.total_elems();
  std::vector<double> expected(static_cast<size_t>(n), 0.0);
  const auto value_of = [&](int64_t agent, int64_t i) {
    return static_cast<double>(agent + 1) * 0.5 +
           static_cast<double>(i % 17) * 0.25;
  };
  for (int64_t a = 0; a < k; ++a)
    for (int64_t i = 0; i < n; ++i)
      expected[static_cast<size_t>(i)] += value_of(a, i);
  for (auto& v : expected) v /= static_cast<double>(k);

  // Producers contribute from their own threads while two collectors
  // drain concurrently.
  std::vector<std::thread> threads;
  for (int64_t a = 0; a < k; ++a) {
    threads.emplace_back([&, a] {
      for (int64_t b = plan.buckets(); b-- > 0;) {
        const nn::Bucket& bk = plan.bucket(b);
        double* slot = pipeline.slot(a, b);
        for (int64_t i = 0; i < bk.elems; ++i)
          slot[i] = value_of(a, bk.offset_elems + i);
        pipeline.contribute(a, b);
      }
    });
  }
  for (int c = 0; c < 2; ++c)
    threads.emplace_back([&] { pipeline.drain(); });
  for (auto& t : threads) t.join();

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.buckets, plan.buckets());
  EXPECT_GT(stats.comm_seconds, 0.0);
  EXPECT_GT(stats.max_bytes_sent, 0);
  for (int64_t a = 0; a < k; ++a)
    for (int64_t b = 0; b < plan.buckets(); ++b) {
      const nn::Bucket& bk = plan.bucket(b);
      const double* slot = pipeline.slot(a, b);
      for (int64_t i = 0; i < bk.elems; ++i)
        EXPECT_NEAR(slot[i],
                    expected[static_cast<size_t>(bk.offset_elems + i)],
                    1e-12)
            << "agent " << a << " bucket " << b << " elem " << i;
    }
}

TEST(RoundPipeline, BeginRoundResetsForReuse) {
  Rng rng(9);
  const auto model = nn::mlp({4, 8, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 64);
  const int64_t k = 3;
  core::RoundPipeline pipeline(k, plan, comm::LinkGrid::uniform(k, 100.0),
                               comm::AllReduceAlgo::kRing);
  for (int round = 0; round < 3; ++round) {
    pipeline.begin_round();
    for (int64_t a = 0; a < k; ++a) {
      for (int64_t b = 0; b < plan.buckets(); ++b) {
        double* slot = pipeline.slot(a, b);
        for (int64_t i = 0; i < plan.bucket(b).elems; ++i)
          slot[i] = static_cast<double>(a);
      }
      pipeline.contribute_all(a);
    }
    pipeline.drain();
    const auto stats = pipeline.stats();
    EXPECT_EQ(stats.buckets, plan.buckets());
    // Stats are per round, not cumulative.
    EXPECT_EQ(stats.steps, plan.buckets() * 2 * (k - 1));  // ring steps
    for (int64_t a = 0; a < k; ++a)
      EXPECT_NEAR(pipeline.slot(a, 0)[0], 1.0, 1e-12);  // mean of 0,1,2
  }
}

// ---- predicted vs executed overlap parity -----------------------------------

class OverlapParityP : public ::testing::TestWithParam<comm::Protocol> {};

TEST_P(OverlapParityP, SimPredictsExecutedBucketScheduleExactly) {
  const comm::Protocol protocol = GetParam();
  const comm::AllReduceAlgo algo =
      protocol == comm::Protocol::kRingAllReduce
          ? comm::AllReduceAlgo::kRing
          : comm::AllReduceAlgo::kHalvingDoubling;
  Rng rng(11);
  const auto model = nn::mlp({6, 16, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 256);
  const int64_t k = 5;
  const auto grid = comm::LinkGrid::uniform(k, 40.0);

  // Predicted: timing-only SimTransport run of each bucket's schedule.
  std::vector<double> predicted_seconds;
  std::vector<int64_t> predicted_steps;
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    comm::SimTransport sim(grid);
    comm::CollectiveRequest req;
    req.elems = plan.bucket(b).elems;
    comm::AsyncCollective op(protocol, sim, std::move(req));
    op.wait();
    predicted_seconds.push_back(sim.stats().seconds);
    predicted_steps.push_back(sim.stats().steps);
  }

  // Executed: the concurrent pipeline with real payloads.
  core::RoundPipeline pipeline(k, plan, grid, algo);
  for (int64_t a = 0; a < k; ++a) {
    for (int64_t b = 0; b < plan.buckets(); ++b) {
      double* slot = pipeline.slot(a, b);
      for (int64_t i = 0; i < plan.bucket(b).elems; ++i)
        slot[i] = static_cast<double>(a + i % 7);
      pipeline.contribute(a, b);
    }
  }
  pipeline.drain();
  const auto stats = pipeline.stats();

  // Per-bucket predicted clock == executed clock, so any timeline composed
  // from ready times is identical for the predicted and executed schedule.
  ASSERT_EQ(stats.bucket_seconds.size(), predicted_seconds.size());
  int64_t executed_steps = 0;
  for (size_t b = 0; b < predicted_seconds.size(); ++b)
    EXPECT_DOUBLE_EQ(stats.bucket_seconds[b], predicted_seconds[b])
        << "bucket " << b;
  for (const int64_t s : predicted_steps) executed_steps += s;
  EXPECT_EQ(stats.steps, executed_steps);

  const std::vector<double> ready(predicted_seconds.size(), 1.0);
  const auto predicted_tl = compose_overlap_timeline(ready, predicted_seconds);
  const auto executed_tl =
      compose_overlap_timeline(ready, stats.bucket_seconds);
  EXPECT_DOUBLE_EQ(predicted_tl.span, executed_tl.span);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, OverlapParityP,
    ::testing::Values(comm::Protocol::kRingAllReduce,
                      comm::Protocol::kHalvingDoublingAllReduce));

// ---- compressed bucket collectives ------------------------------------------

/// Reference fixture for codec tests: one pipeline round over synthetic
/// per-agent payloads; returns executed max bytes sent by any agent.
int64_t pipeline_round_bytes(const nn::BucketPlan& plan, int64_t k,
                             const comm::Codec* codec, bool error_feedback) {
  core::RoundPipeline pipeline(k, plan, comm::LinkGrid::uniform(k, 100.0),
                               comm::AllReduceAlgo::kHalvingDoubling, codec,
                               error_feedback);
  for (int64_t a = 0; a < k; ++a) {
    for (int64_t b = 0; b < plan.buckets(); ++b) {
      double* slot = pipeline.slot(a, b);
      for (int64_t i = 0; i < plan.bucket(b).elems; ++i)
        slot[i] = static_cast<double>(a + 1) * 0.25 +
                  static_cast<double>(i % 13) * 0.125;
    }
    pipeline.contribute_all(a);
  }
  pipeline.drain();
  return pipeline.stats().max_bytes_sent;
}

TEST(CompressedBuckets, QuantizedBytesPerRoundAtLeast3xUnderFp32) {
  // The CI regression guard: executed allreduce bytes_per_round of the
  // quantized bucket collectives must stay under 30 % of (i.e. >= 3.3x
  // below) the fp32 wire, at realistic bucket sizes.
  Rng rng(12);
  const auto model = nn::mlp({32, 128, 128, 10}, rng);
  const auto plan = nn::BucketPlan::build(*model, 16 * 1024);
  ASSERT_GT(plan.buckets(), 1);
  for (const int64_t k : {4, 8}) {
    const int64_t fp32_bytes = pipeline_round_bytes(plan, k, nullptr, false);
    const int64_t int8_bytes =
        pipeline_round_bytes(plan, k, &comm::quantized_codec(), true);
    EXPECT_GT(fp32_bytes, 0);
    EXPECT_LE(10 * int8_bytes, 3 * fp32_bytes)
        << "k=" << k << ": quantized wire " << int8_bytes
        << " B exceeds 30% of fp32 " << fp32_bytes << " B";
  }
}

TEST(CompressedBuckets, SimPredictsExecutedQuantizedBucketsExactly) {
  // Per-bucket SimTransport predictions (timing-only, quantized codec)
  // equal the InProc pipeline's executed bytes and modeled clock.
  Rng rng(13);
  const auto model = nn::mlp({6, 16, 12, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 256);
  const int64_t k = 5;
  const auto grid = comm::LinkGrid::uniform(k, 40.0);

  std::vector<double> predicted_seconds;
  std::vector<int64_t> predicted_bytes;
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    comm::SimTransport sim(grid, &comm::quantized_codec());
    comm::CollectiveRequest req;
    req.elems = plan.bucket(b).elems;
    comm::AsyncCollective op(comm::Protocol::kHalvingDoublingAllReduce, sim,
                             std::move(req));
    op.wait();
    predicted_seconds.push_back(sim.stats().seconds);
    predicted_bytes.push_back(sim.stats().max_bytes_sent());
  }

  core::RoundPipeline pipeline(k, plan, grid,
                               comm::AllReduceAlgo::kHalvingDoubling,
                               &comm::quantized_codec(), true);
  for (int64_t a = 0; a < k; ++a) {
    for (int64_t b = 0; b < plan.buckets(); ++b) {
      double* slot = pipeline.slot(a, b);
      for (int64_t i = 0; i < plan.bucket(b).elems; ++i)
        slot[i] = static_cast<double>(a) - 0.3 * static_cast<double>(i % 5);
      pipeline.contribute(a, b);
    }
  }
  pipeline.drain();
  const auto stats = pipeline.stats();
  ASSERT_EQ(stats.bucket_seconds.size(), predicted_seconds.size());
  int64_t predicted_max_sent = 0;
  for (size_t b = 0; b < predicted_seconds.size(); ++b) {
    EXPECT_DOUBLE_EQ(stats.bucket_seconds[b], predicted_seconds[b])
        << "bucket " << b;
    predicted_max_sent += predicted_bytes[b];
  }
  // Every agent sends the same bytes on a uniform grid, so the pipeline's
  // per-agent sum equals the summed per-bucket prediction.
  EXPECT_EQ(stats.max_bytes_sent, predicted_max_sent);
}

TEST(CompressedBuckets, ErrorFeedbackDrivesRepeatedRoundsToTheMean) {
  // k=1 isolates the publish-time quantization: each round the pipeline
  // quantizes the published payload once and carries the error. With
  // error feedback the time-average of the delivered payloads converges
  // to the true value well below one-shot int8 resolution; without it the
  // one-shot bias persists forever.
  Rng rng(14);
  const auto model = nn::mlp({4, 8, 3}, rng);
  const auto plan = nn::BucketPlan::build(*model, 0);  // one bucket
  const int64_t n = plan.total_elems();
  std::vector<double> truth(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    truth[static_cast<size_t>(i)] =
        0.731 * std::sin(0.37 * static_cast<double>(i)) + 0.113;

  for (const bool ef : {true, false}) {
    core::RoundPipeline pipeline(1, plan, comm::LinkGrid::uniform(1, 100.0),
                                 comm::AllReduceAlgo::kHalvingDoubling,
                                 &comm::quantized_codec(), ef);
    constexpr int kRounds = 64;
    std::vector<double> mean(static_cast<size_t>(n), 0.0);
    for (int r = 0; r < kRounds; ++r) {
      pipeline.begin_round();
      std::copy(truth.begin(), truth.end(), pipeline.slot(0, 0));
      pipeline.contribute_all(0);
      pipeline.drain();
      const double* out = pipeline.slot(0, 0);
      for (int64_t i = 0; i < n; ++i)
        mean[static_cast<size_t>(i)] += out[i] / kRounds;
    }
    double worst = 0.0;
    for (int64_t i = 0; i < n; ++i)
      worst = std::max(worst, std::fabs(mean[static_cast<size_t>(i)] -
                                        truth[static_cast<size_t>(i)]));
    const double one_shot = 0.85 / 127.0;  // int8 step of the range
    if (ef) {
      EXPECT_LT(worst, one_shot / 4) << "error feedback should average out";
    } else {
      EXPECT_GT(worst, 1e-9) << "without EF the quantization bias persists";
    }
  }
}

TEST(CompressedBuckets, QuantizedFleetTracksFp32Accuracy) {
  // Tier-1 convergence: a quantized+error-feedback fleet must land within
  // tolerance of the fp32 fleet's accuracy on the blob workload.
  const auto run = [&](FleetOptions::CommOptions::Codec codec) {
    FleetOptions opt;
    opt.seed = 17;
    opt.comms.bucket_bytes = 512;
    opt.comms.overlap = true;
    opt.comms.codec = codec;
    opt.comms.error_feedback = true;
    RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 40, 3, 6, 91),
                    hetero_mesh(4), opt);
    for (int r = 0; r < 12; ++r) (void)fleet.step();
    return fleet.evaluate(blob_shards(4, 40, 3, 6, 91)[0]);
  };
  const float fp32_acc = run(FleetOptions::CommOptions::Codec::kFp32);
  const float int8_acc = run(FleetOptions::CommOptions::Codec::kInt8Quantized);
  EXPECT_GT(fp32_acc, 0.6f);  // the workload itself converges
  EXPECT_NEAR(int8_acc, fp32_acc, 0.15f);
}

TEST(CompressedBuckets, IdentityCodecStaysBitIdenticalRegardlessOfEf) {
  // codec = kFp32 must be bit-identical to the pre-codec rounds whatever
  // the error_feedback knob says (EF is a no-op for a lossless codec).
  FleetOptions base;
  base.seed = 99;
  base.comms.bucket_bytes = 512;
  const auto reference = fleet_state(base, 4, 2);
  for (const bool ef : {false, true}) {
    FleetOptions opt = base;
    opt.comms.codec = FleetOptions::CommOptions::Codec::kFp32;
    opt.comms.error_feedback = ef;
    expect_states_equal(reference, fleet_state(opt, 4, 2),
                        "identity codec with/without error feedback");
  }
}

TEST(CompressedBuckets, ValidateRejectsLossyCodecWithoutBuckets) {
  FleetOptions opt;
  opt.comms.codec = FleetOptions::CommOptions::Codec::kInt8Quantized;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt.comms.bucket_bytes = 4096;
  EXPECT_NO_THROW(opt.validate());
}

// ---- split-trainer layerwise readiness --------------------------------------

std::vector<int64_t> batch_labels(int64_t samples, int64_t classes,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> labels(static_cast<size_t>(samples));
  for (auto& l : labels) l = rng.below(classes);
  return labels;
}

TEST(SplitNotify, MatchesTrainBatchBitwise) {
  // Per-unit stepping during both backwards is bit-identical to the plain
  // two-phase split step: per-parameter SGD math is order-independent.
  const tensor::Shape in_shape{6};
  const int64_t classes = 3, samples = 10;
  Rng data_rng(21);
  const Tensor x = data_rng.normal_tensor({samples, 6}, 0, 1);
  const auto labels = batch_labels(samples, classes, 22);

  Rng m1(5), m2(5), t1(6), t2(6);
  const auto model_a = nn::mlp({6, 16, 12, classes}, m1);
  const auto model_b = nn::mlp({6, 16, 12, classes}, m2);
  const auto plan = nn::BucketPlan::build(*model_b, 64);
  const size_t cut = 2;
  nn::SGD::Options sgd{0.05f, 0.9f, 0.0f};
  nn::LocalLossSplitTrainer plain(*model_a, cut, in_shape, classes, t1, sgd);
  nn::LocalLossSplitTrainer notify(*model_b, cut, in_shape, classes, t2,
                                   sgd);

  for (int b = 0; b < 3; ++b) {
    const auto sa = plain.train_batch(x, labels);
    const auto sb = notify.train_batch_notify(
        x, labels, plan.unit_param_counts(), nullptr);
    EXPECT_EQ(sa.slow_loss, sb.slow_loss) << "batch " << b;
    EXPECT_EQ(sa.fast_loss, sb.fast_loss) << "batch " << b;
  }
  const auto state_a = nn::state_of(*model_a);
  const auto state_b = nn::state_of(*model_b);
  expect_states_equal(state_a, state_b, "split notify vs plain");
}

TEST(SplitNotify, PrefixUnitsFinalizeBeforeSuffixBackward) {
  // The layerwise window: slow prefix units finalize (reverse order)
  // during the slow-side backward, before any fast suffix unit — so
  // prefix-owned buckets can ship while the split tail still computes.
  const tensor::Shape in_shape{6};
  const int64_t classes = 3;
  Rng data_rng(23), mrng(7), trng(8);
  const auto model = nn::mlp({6, 16, 12, classes}, mrng);
  const auto plan = nn::BucketPlan::build(*model, 64);
  const size_t cut = 2;
  nn::LocalLossSplitTrainer split(*model, cut, in_shape, classes, trng,
                                  nn::SGD::Options{0.05f, 0.9f, 0.0f});
  const Tensor x = data_rng.normal_tensor({8, 6}, 0, 1);
  const auto labels = batch_labels(8, classes, 24);

  std::vector<size_t> order;
  nn::BucketReadyTracker tracker(plan);
  int64_t fired_before_suffix = 0;
  bool suffix_started = false;
  (void)split.train_batch_notify(
      x, labels, plan.unit_param_counts(), [&](size_t u) {
        if (u >= cut) suffix_started = true;
        order.push_back(u);
        tracker.unit_done(u, [&](int64_t) {
          if (!suffix_started) ++fired_before_suffix;
        });
      });

  ASSERT_EQ(order.size(), model->size());
  std::vector<size_t> expected;
  for (size_t u = cut; u-- > 0;) expected.push_back(u);
  for (size_t u = model->size(); u-- > cut;) expected.push_back(u);
  EXPECT_EQ(order, expected);
  EXPECT_EQ(tracker.fired(), plan.buckets());
  EXPECT_GE(fired_before_suffix, 1)
      << "no bucket published during the slow-side backward";
}

TEST(SplitLayerwise, SlowReplicasPublishBucketsBeforeTaskEnd) {
  // Fleet-level acceptance: under overlap, split-trained slow replicas
  // publish at least one bucket while their split backward still runs
  // (instead of everything at task end, which collapsed the window).
  FleetOptions opt;
  opt.seed = 3;
  opt.comms.bucket_bytes = 256;
  opt.comms.overlap = true;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 30, 3, 6, 21),
                  hetero_mesh(4), opt);
  const auto stats = fleet.step();
  ASSERT_GT(stats.num_pairs, 0) << "fixture must produce split pairs";
  EXPECT_GE(stats.split_early_buckets, 1);
}

// ---- fleet-level bucket determinism -----------------------------------------

TEST(FleetBucketDeterminism, BucketedSequentialMatchesFlatBitwise) {
  // Default halving/doubling aggregation: bucketing must not change a bit.
  FleetOptions flat;
  flat.seed = 99;
  const auto base = fleet_state(flat, 4, 2);
  for (const int64_t bucket_bytes : {256, 1024, 1 << 20}) {
    FleetOptions opt;
    opt.seed = 99;
    opt.comms.bucket_bytes = bucket_bytes;
    expect_states_equal(base, fleet_state(opt, 4, 2), "bucket_bytes sweep");
  }
}

TEST(FleetBucketDeterminism, OverlappedMatchesSequentialBitwise) {
  for (const auto algo :
       {comm::AllReduceAlgo::kHalvingDoubling, comm::AllReduceAlgo::kRing}) {
    FleetOptions seq;
    seq.seed = 99;
    seq.comms.aggregation = algo;
    seq.comms.bucket_bytes = 512;
    FleetOptions ovl = seq;
    ovl.comms.overlap = true;
    expect_states_equal(fleet_state(seq, 4, 2), fleet_state(ovl, 4, 2),
                        "overlap vs sequential");
  }
}

TEST(FleetBucketDeterminism, OverlappedBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  FleetOptions opt;
  opt.seed = 99;
  opt.comms.bucket_bytes = 512;
  opt.comms.overlap = true;
  set_num_threads(1);
  const auto s1 = fleet_state(opt, 4, 2);
  set_num_threads(8);
  const auto s8 = fleet_state(opt, 4, 2);
  expect_states_equal(s1, s8, "1 vs 8 threads");
}

TEST(FleetBucketDeterminism, DifferentialPrivacyBucketedMatchesFlat) {
  FleetOptions flat;
  flat.seed = 7;
  flat.privacy.technique = learncurve::PrivacyTechnique::kDifferentialPrivacy;
  flat.privacy.dp_epsilon = 2.0;
  flat.privacy.dp_sensitivity = 1e-4;
  FleetOptions bucketed = flat;
  bucketed.comms.bucket_bytes = 512;
  bucketed.comms.overlap = true;  // DP narrows to post-noise publication
  expect_states_equal(fleet_state(flat, 4, 2), fleet_state(bucketed, 4, 2),
                      "DP bucketed vs flat");
}

TEST(FleetBucketDeterminism, OverlappedRoundReportsPipelineShape) {
  FleetOptions opt;
  opt.seed = 3;
  opt.comms.bucket_bytes = 512;
  opt.comms.overlap = true;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 30, 3, 6, 21),
                  hetero_mesh(4), opt);
  const auto stats = fleet.step();
  EXPECT_GT(stats.buckets, 1);
  EXPECT_GT(stats.aggregation_seconds, 0.0);
  EXPECT_GT(stats.aggregation_bytes, 0);
  // Overlap can only hide aggregation time, never add to it...
  EXPECT_LE(stats.exposed_comm_seconds, stats.aggregation_seconds + 1e-12);
  EXPECT_GE(stats.exposed_comm_seconds, 0.0);
  // ...and the modeled round is never shorter than its parts allow.
  EXPECT_GE(stats.sim_time, stats.exposed_comm_seconds);
}

TEST(FleetBucketDeterminism, BaselineAllReduceBucketedMatchesFlat) {
  using baselines::RealBaselineFleet;
  const auto run = [&](int64_t bucket_bytes, bool overlap) {
    FleetOptions opt;
    opt.seed = 31;
    opt.comms.bucket_bytes = bucket_bytes;
    opt.comms.overlap = overlap;
    RealBaselineFleet fleet(learncurve::Method::kAllReduceDML,
                            mlp_factory(6, 3), 3,
                            blob_shards(4, 30, 3, 6, 41), hetero_mesh(4),
                            opt);
    for (int r = 0; r < 2; ++r) (void)fleet.step();
    std::vector<Tensor> all;
    for (int64_t a = 0; a < fleet.agents(); ++a) {
      auto s = nn::state_of(fleet.model(a));
      all.insert(all.end(), s.begin(), s.end());
    }
    return all;
  };
  const auto flat = run(0, false);
  expect_states_equal(flat, run(512, false), "baseline bucketed");
  expect_states_equal(flat, run(512, true), "baseline overlapped");
}

TEST(FleetRuntimeOverlap, FacadeReportsBucketsAndExposedComm) {
  FleetOptions opt;
  opt.comms.bucket_bytes = 512;
  opt.comms.overlap = true;
  auto fleet = core::FleetBuilder()
                   .method(learncurve::Method::kComDML)
                   .options(opt)
                   .topology(hetero_mesh(4))
                   .model(mlp_factory(6, 3), 3)
                   .shards(blob_shards(4, 30, 3, 6, 61))
                   .build();
  const auto rep = fleet.step();
  EXPECT_GT(rep.buckets, 1);
  EXPECT_GT(rep.aggregation_seconds, 0.0);
  EXPECT_LE(rep.exposed_comm_seconds, rep.aggregation_seconds + 1e-12);
  EXPECT_GT(rep.round_seconds, 0.0);
}

// ---- FleetOptions validation ------------------------------------------------

TEST(FleetOptionsValidate, DefaultsPass) {
  FleetOptions opt;
  EXPECT_NO_THROW(opt.validate());
  EXPECT_NO_THROW(FleetOptions::paper_defaults().validate());
}

TEST(FleetOptionsValidate, RejectsBadTrainingGeometry) {
  FleetOptions opt;
  opt.train.batch_size = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.train.batches_per_round = -1;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.train.sgd.lr = 0.0f;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.train.reference_flops = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(FleetOptionsValidate, RejectsBadCommKnobs) {
  FleetOptions opt;
  opt.comms.server_mbps = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.comms.latency_sec = -1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.comms.bucket_bytes = -4;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.comms.overlap = true;  // overlap without bucketing
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(FleetOptionsValidate, RejectsBadScaleAndPrivacyKnobs) {
  FleetOptions opt;
  opt.scale.participation = 0.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.scale.agent_dropout = 1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.privacy.dp_epsilon = -0.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = FleetOptions{};
  opt.privacy.shuffle_patch = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(FleetOptionsValidate, FleetsRejectInvalidOptionsAtConstruction) {
  FleetOptions opt;
  opt.train.batch_size = -8;
  EXPECT_THROW(RealFleet(mlp_factory(6, 3), 3, blob_shards(2, 20, 3, 6, 71),
                         hetero_mesh(2), opt),
               std::invalid_argument);
  EXPECT_THROW(baselines::RealBaselineFleet(
                   learncurve::Method::kFedAvg, mlp_factory(6, 3), 3,
                   blob_shards(2, 20, 3, 6, 72), hetero_mesh(2), opt),
               std::invalid_argument);
  EXPECT_THROW(core::FleetBuilder()
                   .method(learncurve::Method::kComDML)
                   .options(opt)
                   .topology(hetero_mesh(2))
                   .architecture(nn::resnet56_spec())
                   .shard_sizes({100, 100})
                   .build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace comdml
