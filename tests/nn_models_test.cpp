// Model-level tests: builders, losses, optimizer behaviour, end-to-end
// learning on toy datasets, split training, and architecture specs.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/arch_specs.hpp"
#include "nn/loss.hpp"
#include "nn/split.hpp"

namespace comdml::nn {
namespace {

// ---- loss -------------------------------------------------------------------

TEST(Loss, SoftmaxRowsSumToOne) {
  Rng rng(1);
  const Tensor p = softmax(rng.normal_tensor({4, 7}, 0, 3));
  for (int64_t i = 0; i < 4; ++i) {
    double s = 0;
    for (int64_t j = 0; j < 7; ++j) s += p.at({i, j});
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Loss, UniformLogitsGiveLogC) {
  const Tensor logits({2, 10});
  const std::vector<int64_t> labels{3, 7};
  const auto res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.loss, std::log(10.0), 1e-5);
}

TEST(Loss, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 3});
  logits.at({0, 2}) = 50.0f;
  const std::vector<int64_t> labels{2};
  const auto res = softmax_cross_entropy(logits, labels);
  EXPECT_LT(res.loss, 1e-4);
  EXPECT_FLOAT_EQ(res.accuracy, 1.0f);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(2);
  const Tensor logits = rng.normal_tensor({3, 5}, 0, 2);
  const std::vector<int64_t> labels{0, 2, 4};
  const auto res = softmax_cross_entropy(logits, labels);
  for (int64_t i = 0; i < 3; ++i) {
    double s = 0;
    for (int64_t j = 0; j < 5; ++j) s += res.grad_logits.at({i, j});
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesNumeric) {
  Rng rng(3);
  Tensor logits = rng.normal_tensor({2, 4}, 0, 1);
  const std::vector<int64_t> labels{1, 3};
  const auto res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-2f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float up = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - eps;
    const float down = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR((up - down) / (2 * eps), res.grad_logits[i], 5e-3);
  }
}

TEST(Loss, RejectsBadLabel) {
  const Tensor logits({1, 3});
  const std::vector<int64_t> labels{3};
  EXPECT_THROW((void)softmax_cross_entropy(logits, labels),
               std::invalid_argument);
}

// ---- optimizer ----------------------------------------------------------------

TEST(SGD, PlainStepDescends) {
  Parameter p("w", Tensor::of({1.0f}));
  p.grad[0] = 2.0f;
  SGD opt({&p}, {0.1f, 0.0f, 0.0f});
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(SGD, MomentumAccumulates) {
  Parameter p("w", Tensor::of({0.0f}));
  SGD opt({&p}, {0.1f, 0.9f, 0.0f});
  p.grad[0] = 1.0f;
  opt.step();  // v = -0.1, w = -0.1
  p.grad[0] = 1.0f;
  opt.step();  // v = -0.19, w = -0.29
  EXPECT_NEAR(p.value[0], -0.29f, 1e-5);
}

TEST(SGD, WeightDecayShrinksWeights) {
  Parameter p("w", Tensor::of({10.0f}));
  p.grad[0] = 0.0f;
  SGD opt({&p}, {0.1f, 0.0f, 0.5f});
  opt.step();
  EXPECT_LT(p.value[0], 10.0f);
}

TEST(SGD, MinimizesQuadratic) {
  // f(w) = (w - 3)^2; grad = 2(w-3).
  Parameter p("w", Tensor::of({0.0f}));
  SGD opt({&p}, {0.05f, 0.9f, 0.0f});
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2);
}

TEST(SGD, InvalidOptionsThrow) {
  Parameter p("w", Tensor::of({0.0f}));
  EXPECT_THROW(SGD({&p}, {-0.1f, 0.9f, 0.0f}), std::invalid_argument);
  EXPECT_THROW(SGD({&p}, {0.1f, 1.0f, 0.0f}), std::invalid_argument);
}

TEST(PlateauScheduler, DecaysAfterPatience) {
  PlateauScheduler sched(0.2f, 3);
  EXPECT_FLOAT_EQ(sched.observe(0.5f), 1.0f);  // new best
  EXPECT_FLOAT_EQ(sched.observe(0.5f), 1.0f);  // stale 1
  EXPECT_FLOAT_EQ(sched.observe(0.5f), 1.0f);  // stale 2
  EXPECT_FLOAT_EQ(sched.observe(0.5f), 0.2f);  // stale 3 -> decay
}

TEST(PlateauScheduler, ImprovementResetsPatience) {
  PlateauScheduler sched(0.5f, 2);
  (void)sched.observe(0.1f);
  (void)sched.observe(0.1f);     // stale 1
  (void)sched.observe(0.3f);     // improvement resets
  EXPECT_FLOAT_EQ(sched.observe(0.3f), 1.0f);  // stale 1 again
}

// ---- builders -----------------------------------------------------------------

TEST(Builders, Resnet56UnitCount) {
  Rng rng(4);
  auto net = resnet56(10, rng);
  EXPECT_EQ(net->size(), 29u);  // stem + 27 blocks + head
}

TEST(Builders, Resnet110UnitCount) {
  Rng rng(5);
  auto net = resnet110(10, rng);
  EXPECT_EQ(net->size(), 56u);  // stem + 54 blocks + head
}

TEST(Builders, Resnet56ParameterCount) {
  Rng rng(6);
  auto net = resnet56(10, rng);
  // The canonical CIFAR ResNet-56 has ~0.85M parameters.
  const int64_t params = parameter_count(*net);
  EXPECT_GT(params, 800'000);
  EXPECT_LT(params, 900'000);
}

TEST(Builders, TinyResnetForwardShape) {
  Rng rng(7);
  auto net = tiny_resnet(4, rng);
  const Tensor y =
      net->forward(rng.normal_tensor({2, 3, 8, 8}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({2, 4}));
}

TEST(Builders, SmallCnnForwardShape) {
  Rng rng(8);
  auto net = small_cnn(3, 5, rng);
  const Tensor y =
      net->forward(rng.normal_tensor({3, 3, 8, 8}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({3, 5}));
}

TEST(Builders, MlpNeedsTwoWidths) {
  Rng rng(9);
  EXPECT_THROW((void)mlp({4}, rng), std::invalid_argument);
}

// ---- end-to-end learning -------------------------------------------------------

TEST(Learning, MlpLearnsBlobs) {
  Rng rng(10);
  auto ds = data::make_blobs(256, 3, 8, 0.3f, rng);
  auto net = mlp({8, 16, 3}, rng);
  SGD opt(net->parameters(), {0.1f, 0.9f, 0.0f});
  for (int epoch = 0; epoch < 30; ++epoch)
    (void)train_batch_full(*net, opt, ds.images, ds.labels);
  EXPECT_GT(evaluate_accuracy(*net, ds.images, ds.labels), 0.95f);
}

TEST(Learning, MlpLearnsSpiralsNonConvex) {
  Rng rng(11);
  auto ds = data::make_spirals(120, 2, 0.02f, rng);
  auto net = mlp({2, 48, 48, 2}, rng);
  SGD opt(net->parameters(), {0.1f, 0.9f, 0.0f});
  float first_loss = 0, last_loss = 0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    const auto res = train_batch_full(*net, opt, ds.images, ds.labels);
    if (epoch == 0) first_loss = res.loss;
    last_loss = res.loss;
  }
  EXPECT_LT(last_loss, 0.5f * first_loss);
  EXPECT_GT(evaluate_accuracy(*net, ds.images, ds.labels), 0.85f);
}

TEST(Learning, SmallCnnLearnsSyntheticImages) {
  Rng rng(12);
  auto ds = data::make_synthetic_images(96, 4, {3, 8, 8}, 0.4f, rng);
  auto net = small_cnn(3, 4, rng);
  SGD opt(net->parameters(), {0.05f, 0.9f, 0.0f});
  for (int epoch = 0; epoch < 40; ++epoch)
    (void)train_batch_full(*net, opt, ds.images, ds.labels);
  EXPECT_GT(evaluate_accuracy(*net, ds.images, ds.labels), 0.9f);
}

// ---- split training -------------------------------------------------------------

TEST(SplitTraining, AuxHeadShapesForConvFeatures) {
  Rng rng(13);
  auto head = make_aux_head({16, 4, 4}, 10, rng);
  const Tensor y =
      head->forward(rng.normal_tensor({2, 16, 4, 4}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST(SplitTraining, AuxHeadShapesForFlatFeatures) {
  Rng rng(14);
  auto head = make_aux_head({32}, 5, rng);
  const Tensor y = head->forward(rng.normal_tensor({3, 32}, 0, 1), true);
  EXPECT_EQ(y.shape(), Shape({3, 5}));
}

TEST(SplitTraining, RejectsDegenerateCuts) {
  Rng rng(15);
  auto net = mlp({4, 8, 8, 2}, rng);
  EXPECT_THROW(
      LocalLossSplitTrainer(*net, 0, {4}, 2, rng, {0.05f, 0.9f, 0.0f}),
      std::invalid_argument);
  EXPECT_THROW(LocalLossSplitTrainer(*net, net->size(), {4}, 2, rng,
                                     {0.05f, 0.9f, 0.0f}),
               std::invalid_argument);
}

TEST(SplitTraining, BothSidesLearn) {
  Rng rng(16);
  auto ds = data::make_blobs(200, 3, 8, 0.3f, rng);
  auto net = mlp({8, 16, 16, 3}, rng);
  LocalLossSplitTrainer split(*net, 1, {8}, 3, rng, {0.1f, 0.9f, 0.0f});
  float first_slow = 0, first_fast = 0, last_slow = 0, last_fast = 0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const auto s = split.train_batch(ds.images, ds.labels);
    if (epoch == 0) {
      first_slow = s.slow_loss;
      first_fast = s.fast_loss;
    }
    last_slow = s.slow_loss;
    last_fast = s.fast_loss;
  }
  EXPECT_LT(last_slow, 0.7f * first_slow);
  EXPECT_LT(last_fast, 0.7f * first_fast);
  EXPECT_GT(evaluate_accuracy(*net, ds.images, ds.labels), 0.9f);
}

TEST(SplitTraining, IntermediateBytesMatchCutWidth) {
  Rng rng(17);
  auto net = mlp({8, 16, 3}, rng);
  LocalLossSplitTrainer split(*net, 1, {8}, 3, rng, {0.1f, 0.9f, 0.0f});
  Rng drng(18);
  auto ds = data::make_blobs(32, 3, 8, 0.3f, drng);
  const auto stats = split.train_batch(ds.images, ds.labels);
  EXPECT_EQ(stats.intermediate_bytes, 32 * 16 * 4);
}

TEST(SplitTraining, SplitCnnLearns) {
  Rng rng(19);
  auto ds = data::make_synthetic_images(96, 3, {3, 8, 8}, 0.4f, rng);
  auto net = small_cnn(3, 3, rng);
  LocalLossSplitTrainer split(*net, 1, {3, 8, 8}, 3, rng,
                              {0.05f, 0.9f, 0.0f});
  for (int epoch = 0; epoch < 40; ++epoch)
    (void)split.train_batch(ds.images, ds.labels);
  EXPECT_GT(evaluate_accuracy(*net, ds.images, ds.labels), 0.85f);
}

// ---- architecture specs ----------------------------------------------------------

TEST(ArchSpec, Resnet56HasDepthUnits) {
  const auto spec = resnet56_spec();
  EXPECT_EQ(spec.size(), 56u);
}

TEST(ArchSpec, Resnet110HasDepthUnits) {
  const auto spec = resnet110_spec();
  EXPECT_EQ(spec.size(), 110u);
}

TEST(ArchSpec, RejectsNonResnetDepth) {
  EXPECT_THROW((void)resnet_cifar_spec(57, 10), std::invalid_argument);
}

TEST(ArchSpec, ParamBytesCloseToLiveModel) {
  Rng rng(20);
  auto net = resnet56(10, rng);
  const auto spec = resnet56_spec(10);
  // Spec counts conv+BN(4/channel incl. running stats) + head; the live
  // model's state_bytes counts the same tensors.
  const double live = static_cast<double>(state_bytes(*net));
  const double specb = static_cast<double>(spec.total_param_bytes());
  EXPECT_NEAR(specb / live, 1.0, 0.02);
}

TEST(ArchSpec, FlopsGrowWithDepth) {
  EXPECT_GT(resnet110_spec().total_flops(), 1.8 * resnet56_spec().total_flops());
}

TEST(ArchSpec, ActivationBytesShrinkAcrossStages) {
  const auto spec = resnet56_spec();
  // Stage 1 activations (16x32x32) are 2x stage 2 (32x16x16) and 4x stage 3.
  EXPECT_EQ(spec.units[1].act_bytes, 16 * 32 * 32 * 4);
  EXPECT_EQ(spec.units[30].act_bytes, 32 * 16 * 16 * 4);
  EXPECT_EQ(spec.units[50].act_bytes, 64 * 8 * 8 * 4);
}

TEST(ArchSpec, MidBlockCutsCarrySkipBytes) {
  const auto spec = resnet56_spec();
  // Unit 1 is s1b1.conv1: cutting after it keeps the skip input alive.
  EXPECT_GT(spec.units[1].cut_extra_bytes, 0);
  // Unit 2 closes the block: no extra skip payload.
  EXPECT_EQ(spec.units[2].cut_extra_bytes, 0);
}

TEST(ArchSpec, PrefixFlopsMonotone) {
  const auto spec = resnet56_spec();
  for (size_t c = 1; c < spec.size(); ++c)
    EXPECT_GT(spec.prefix_flops(c), spec.prefix_flops(c - 1));
}

TEST(ArchSpec, SuffixParamBytesMonotoneDecreasing) {
  const auto spec = resnet56_spec();
  for (size_t c = 1; c < spec.size(); ++c)
    EXPECT_LE(spec.suffix_param_bytes(c), spec.suffix_param_bytes(c - 1));
}

TEST(ArchSpec, CutActivationBytesIncludesLabels) {
  const auto spec = resnet56_spec();
  EXPECT_EQ(spec.cut_activation_bytes(1),
            spec.units[0].act_bytes + spec.units[0].cut_extra_bytes + 8);
}

TEST(ArchSpec, SpecFromModelMatchesLiveCosts) {
  Rng rng(21);
  auto net = small_cnn(3, 10, rng);
  const auto spec = spec_from_model(*net, {3, 8, 8}, "small_cnn", 10);
  EXPECT_EQ(spec.size(), net->size());
  const auto costs = net->unit_costs({3, 8, 8});
  for (size_t i = 0; i < spec.size(); ++i) {
    EXPECT_DOUBLE_EQ(spec.units[i].flops_forward, costs[i].flops_forward);
    EXPECT_EQ(spec.units[i].act_bytes, costs[i].out_bytes);
  }
}

}  // namespace
}  // namespace comdml::nn
