// End-to-end real-training tests: the full ComDML round (pairing +
// local-loss split training + message-level AllReduce) on actual tensors,
// and the real baseline fleets.
#include <gtest/gtest.h>

#include "baselines/real_baselines.hpp"
#include "core/fleet_runtime.hpp"
#include "core/real_fleet.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace comdml::core {
namespace {

using baselines::RealBaselineFleet;
using learncurve::Method;
using sim::ResourceProfile;
using sim::Topology;
using tensor::Rng;

ModelFactory mlp_factory(int64_t in, int64_t classes) {
  return [in, classes](Rng& rng) { return nn::mlp({in, 24, 24, classes}, rng); };
}

std::vector<data::Dataset> blob_shards(int64_t agents, int64_t per_agent,
                                       int64_t classes, int64_t features,
                                       uint64_t seed) {
  Rng rng(seed);
  const auto ds =
      data::make_blobs(agents * per_agent, classes, features, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  return shards;
}

Topology hetero_mesh(int64_t agents) {
  std::vector<ResourceProfile> profiles;
  const std::vector<double> cpus{4.0, 0.2, 2.0, 0.5};
  for (int64_t i = 0; i < agents; ++i)
    profiles.push_back({cpus[static_cast<size_t>(i) % cpus.size()], 100.0});
  return Topology::full_mesh(profiles);
}

TEST(RealFleet, ReplicasStartIdentical) {
  RealFleet::Options opt;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 40, 3, 6, 1),
                  hetero_mesh(4), opt);
  Rng rng(2);
  const auto x = rng.normal_tensor({5, 6}, 0, 1);
  const auto y0 = fleet.model(0).forward(x, false);
  for (int64_t a = 1; a < 4; ++a)
    EXPECT_TRUE(tensor::allclose(fleet.model(a).forward(x, false), y0));
}

TEST(RealFleet, HeterogeneousFleetFormsPairs) {
  RealFleet::Options opt;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 40, 3, 6, 3),
                  hetero_mesh(4), opt);
  const auto stats = fleet.step();
  EXPECT_GT(stats.num_pairs, 0);
  EXPECT_GT(stats.sim_time, 0.0);
}

TEST(RealFleet, AggregationRestoresConsensus) {
  RealFleet::Options opt;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 40, 3, 6, 4),
                  hetero_mesh(4), opt);
  (void)fleet.step();
  Rng rng(5);
  const auto x = rng.normal_tensor({5, 6}, 0, 1);
  const auto y0 = fleet.model(0).forward(x, false);
  for (int64_t a = 1; a < 4; ++a)
    EXPECT_TRUE(
        tensor::allclose(fleet.model(a).forward(x, false), y0, 1e-4f));
}

TEST(RealFleet, TrainingImprovesAccuracy) {
  RealFleet::Options opt;
  opt.train.batches_per_round = 6;
  opt.train.sgd.lr = 0.08f;
  auto shards = blob_shards(4, 60, 3, 6, 6);
  Rng rng(7);
  const auto test = data::make_blobs(120, 3, 6, 0.3f, rng);
  // NOTE: blobs are class-center + noise with centers drawn from the seed;
  // train and test must share centers, so evaluate on the training shards'
  // pooled data instead of an independent draw.
  data::Dataset pooled = shards[0];
  RealFleet fleet(mlp_factory(6, 3), 3, std::move(shards), hetero_mesh(4),
                  opt);
  const float before = fleet.evaluate(pooled);
  for (int r = 0; r < 15; ++r) (void)fleet.step();
  const float after = fleet.evaluate(pooled);
  EXPECT_GT(after, before + 0.2f);
  EXPECT_GT(after, 0.8f);
  (void)test;
}

TEST(RealFleet, ReportsDcorForPairs) {
  RealFleet::Options opt;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 40, 3, 6, 8),
                  hetero_mesh(4), opt);
  const auto stats = fleet.step();
  if (stats.num_pairs > 0) {
    EXPECT_GT(stats.mean_dcor, 0.0);
    EXPECT_LE(stats.mean_dcor, 1.0);
  }
}

TEST(RealFleet, DifferentialPrivacyStillLearns) {
  RealFleet::Options opt;
  opt.privacy.technique = learncurve::PrivacyTechnique::kDifferentialPrivacy;
  opt.privacy.dp_epsilon = 2.0;
  opt.privacy.dp_sensitivity = 1e-4;
  opt.train.batches_per_round = 6;
  auto shards = blob_shards(4, 60, 3, 6, 9);
  data::Dataset pooled = shards[0];
  RealFleet fleet(mlp_factory(6, 3), 3, std::move(shards), hetero_mesh(4),
                  opt);
  for (int r = 0; r < 15; ++r) (void)fleet.step();
  EXPECT_GT(fleet.evaluate(pooled), 0.7f);
}

TEST(RealFleet, PatchShufflePathRunsOnImages) {
  RealFleet::Options opt;
  opt.privacy.technique = learncurve::PrivacyTechnique::kPatchShuffle;
  opt.privacy.shuffle_patch = 2;
  opt.train.batch_size = 8;
  opt.train.batches_per_round = 2;
  Rng rng(10);
  const auto ds = data::make_synthetic_images(64, 3, {3, 8, 8}, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), 2, rng);
  std::vector<data::Dataset> shards{ds.subset(parts[0]),
                                    ds.subset(parts[1])};
  std::vector<ResourceProfile> profiles{{4.0, 100.0}, {0.2, 100.0}};
  ModelFactory factory = [](Rng& r) { return nn::small_cnn(3, 3, r); };
  RealFleet fleet(factory, 3, std::move(shards),
                  Topology::full_mesh(profiles), opt);
  const auto stats = fleet.step();
  EXPECT_GE(stats.mean_loss, 0.0f);
}

TEST(RealFleet, PlateauScheduleDecaysLearningRate) {
  RealFleet::Options opt;
  opt.train.plateau_factor = 0.5f;
  opt.train.plateau_patience = 2;
  // An LR this small cannot move the loss, so the metric plateaus from
  // round one and the schedule must fire after `patience` rounds.
  opt.train.sgd.lr = 1e-6f;
  opt.train.batches_per_round = 2;
  RealFleet fleet(mlp_factory(6, 3), 3, blob_shards(4, 12, 3, 6, 19),
                  hetero_mesh(4), opt);
  EXPECT_FLOAT_EQ(fleet.current_lr(), 1e-6f);
  for (int r = 0; r < 10; ++r) (void)fleet.step();
  EXPECT_LT(fleet.current_lr(), 1e-6f);
}

TEST(RealFleet, OverlappedRoundsLearnAndKeepConsensus) {
  // Overlapped bucketed aggregation must behave exactly like a normal
  // round from the outside: replicas agree after step() and training
  // still converges.
  RealFleet::Options opt;
  opt.train.batches_per_round = 6;
  opt.train.sgd.lr = 0.08f;
  opt.comms.bucket_bytes = 512;
  opt.comms.overlap = true;
  auto shards = blob_shards(4, 60, 3, 6, 27);
  data::Dataset pooled = shards[0];
  RealFleet fleet(mlp_factory(6, 3), 3, std::move(shards), hetero_mesh(4),
                  opt);
  for (int r = 0; r < 15; ++r) {
    const auto stats = fleet.step();
    EXPECT_GT(stats.buckets, 1);
    EXPECT_GT(stats.aggregation_bytes, 0);
  }
  Rng rng(28);
  const auto x = rng.normal_tensor({5, 6}, 0, 1);
  const auto y0 = fleet.model(0).forward(x, false);
  for (int64_t a = 1; a < 4; ++a)
    EXPECT_TRUE(
        tensor::allclose(fleet.model(a).forward(x, false), y0, 1e-4f));
  EXPECT_GT(fleet.evaluate(pooled), 0.8f);
}

TEST(RealFleet, RejectsShardTopologyMismatch) {
  RealFleet::Options opt;
  EXPECT_THROW(RealFleet(mlp_factory(6, 3), 3, blob_shards(3, 20, 3, 6, 11),
                         hetero_mesh(4), opt),
               std::invalid_argument);
}

// ---- real baselines ---------------------------------------------------------------

class RealBaselineP : public ::testing::TestWithParam<Method> {};

TEST_P(RealBaselineP, LearnsBlobs) {
  RealBaselineFleet::Options opt;
  opt.train.batches_per_round = 6;
  opt.train.sgd.lr = 0.08f;
  auto shards = blob_shards(4, 60, 3, 6, 12);
  data::Dataset pooled = shards[0];
  RealBaselineFleet fleet(GetParam(), mlp_factory(6, 3), 3,
                          std::move(shards), hetero_mesh(4), opt);
  for (int r = 0; r < 15; ++r) (void)fleet.step();
  EXPECT_GT(fleet.evaluate(pooled), 0.75f);
}

INSTANTIATE_TEST_SUITE_P(Methods, RealBaselineP,
                         ::testing::Values(Method::kFedAvg, Method::kFedProx,
                                           Method::kGossip,
                                           Method::kBrainTorrent,
                                           Method::kAllReduceDML));

TEST(RealBaselines, FedAvgReachesConsensus) {
  RealBaselineFleet::Options opt;
  RealBaselineFleet fleet(Method::kFedAvg, mlp_factory(6, 3), 3,
                          blob_shards(4, 40, 3, 6, 13), hetero_mesh(4), opt);
  (void)fleet.step();
  Rng rng(14);
  const auto x = rng.normal_tensor({5, 6}, 0, 1);
  const auto y0 = fleet.model(0).forward(x, false);
  for (int64_t a = 1; a < 4; ++a)
    EXPECT_TRUE(
        tensor::allclose(fleet.model(a).forward(x, false), y0, 1e-4f));
}

TEST(RealBaselines, GossipReplicasMayDiverge) {
  RealBaselineFleet::Options opt;
  RealBaselineFleet fleet(Method::kGossip, mlp_factory(6, 3), 3,
                          blob_shards(4, 40, 3, 6, 15), hetero_mesh(4), opt);
  (void)fleet.step();
  Rng rng(16);
  const auto x = rng.normal_tensor({5, 6}, 0, 1);
  // After one gossip round the fleet need not agree (single-peer mixing).
  int diverged = 0;
  const auto y0 = fleet.model(0).forward(x, false);
  for (int64_t a = 1; a < 4; ++a)
    if (!tensor::allclose(fleet.model(a).forward(x, false), y0, 1e-6f))
      ++diverged;
  EXPECT_GT(diverged, 0);
}

TEST(RealBaselines, FedAvgToleratesDisconnectedAgent) {
  // An offline agent cannot reach the param-server star; aggregation must
  // fall back to the historical local weighted mean instead of throwing.
  std::vector<ResourceProfile> profiles{
      {4.0, 100.0}, {0.2, 100.0}, {2.0, 0.0}};
  RealBaselineFleet::Options opt;
  RealBaselineFleet fleet(Method::kFedAvg, mlp_factory(6, 3), 3,
                          blob_shards(3, 20, 3, 6, 25),
                          Topology::full_mesh(profiles), opt);
  const auto stats = fleet.step();
  EXPECT_EQ(stats.aggregation_bytes, 0);  // no transport traffic accounted
  Rng rng(26);
  const auto x = rng.normal_tensor({5, 6}, 0, 1);
  const auto y0 = fleet.model(0).forward(x, false);
  for (int64_t a = 1; a < 3; ++a)
    EXPECT_TRUE(
        tensor::allclose(fleet.model(a).forward(x, false), y0, 1e-4f));
}

TEST(RealBaselines, RejectsComDML) {
  RealBaselineFleet::Options opt;
  EXPECT_THROW(RealBaselineFleet(Method::kComDML, mlp_factory(6, 3), 3,
                                 blob_shards(2, 20, 3, 6, 17),
                                 hetero_mesh(2), opt),
               std::invalid_argument);
}

// ---- FleetRuntime facade (real-execution engines) ---------------------------

TEST(FleetRuntimeReal, ComDMLTrainsAndEvaluatesThroughFacade) {
  auto shards = blob_shards(4, 60, 3, 6, 21);
  data::Dataset pooled = shards[0];
  FleetOptions opt;
  opt.train.batches_per_round = 6;
  opt.train.sgd.lr = 0.08f;
  auto fleet = FleetBuilder()
                   .method(Method::kComDML)
                   .options(opt)
                   .topology(hetero_mesh(4))
                   .model(mlp_factory(6, 3), 3)
                   .shards(std::move(shards))
                   .build();
  EXPECT_TRUE(fleet.real());
  EXPECT_EQ(fleet.agents(), 4);
  for (int r = 0; r < 15; ++r) {
    const auto rep = fleet.step();
    EXPECT_GT(rep.round_seconds, 0.0);
    // The collective executed for real: traffic was accounted.
    EXPECT_GT(rep.aggregation_bytes, 0);
    EXPECT_GT(rep.aggregation_seconds, 0.0);
  }
  EXPECT_GT(fleet.evaluate(pooled), 0.8f);
}

TEST(FleetRuntimeReal, BaselineReportsExecutedCollectiveTraffic) {
  auto shards = blob_shards(4, 40, 3, 6, 22);
  auto fleet = FleetBuilder()
                   .method(Method::kFedAvg)
                   .topology(hetero_mesh(4))
                   .model(mlp_factory(6, 3), 3)
                   .shards(std::move(shards))
                   .build();
  const auto rep = fleet.step();
  EXPECT_GT(rep.aggregation_bytes, 0);
  EXPECT_GT(rep.aggregation_seconds, 0.0);
  EXPECT_GT(rep.mean_loss, 0.0f);
  // Param-server aggregation leaves all replicas in consensus.
  Rng rng(23);
  const auto x = rng.normal_tensor({5, 6}, 0, 1);
  const auto y0 = fleet.model(0).forward(x, false);
  for (int64_t a = 1; a < 4; ++a)
    EXPECT_TRUE(tensor::allclose(fleet.model(a).forward(x, false), y0));
}

TEST(FleetRuntimeReal, EvaluateRejectsSimulatedFleets) {
  Rng rng(24);
  auto sim = FleetBuilder()
                 .method(Method::kComDML)
                 .topology(hetero_mesh(4))
                 .architecture(nn::resnet56_spec())
                 .shard_sizes({100, 100, 100, 100})
                 .build();
  const auto test = data::make_blobs(12, 3, 6, 0.3f, rng);
  EXPECT_THROW((void)sim.evaluate(test), std::invalid_argument);
  EXPECT_THROW((void)sim.model(0), std::invalid_argument);
}

}  // namespace
}  // namespace comdml::core
