// Unit tests for the tensor substrate: construction, indexing, ops, RNG and
// serialization invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/serialize.hpp"

namespace comdml::tensor {
namespace {

TEST(Shape, SizeOfEmptyShapeIsOne) { EXPECT_EQ(shape_size({}), 1); }

TEST(Shape, SizeMultipliesExtents) { EXPECT_EQ(shape_size({2, 3, 4}), 24); }

TEST(Shape, ZeroExtentGivesZeroSize) { EXPECT_EQ(shape_size({5, 0, 2}), 0); }

TEST(Shape, NegativeExtentThrows) {
  EXPECT_THROW((void)shape_size({2, -1}), std::invalid_argument);
}

TEST(Shape, StrFormatsBrackets) {
  EXPECT_EQ(shape_str({3, 32, 32}), "[3, 32, 32]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroFilledConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (const float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstruction) {
  Tensor t({4}, 2.5f);
  for (const float v : t.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, AdoptsDataWithMatchingSize) {
  Tensor t({2, 2}, {1.f, 2.f, 3.f, 4.f});
  EXPECT_EQ(t.at({1, 0}), 3.f);
}

TEST(Tensor, MismatchedDataSizeThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.f}),
               std::invalid_argument);
}

TEST(Tensor, OfMakesRank1) {
  const Tensor t = Tensor::of({1.f, 2.f, 3.f});
  EXPECT_EQ(t.shape(), Shape({3}));
  EXPECT_EQ(t[2], 3.f);
}

TEST(Tensor, ScalarHasOneElement) {
  EXPECT_EQ(Tensor::scalar(7.f).size(), 1);
}

TEST(Tensor, MultiIndexRowMajorOrder) {
  Tensor t({2, 3}, {0.f, 1.f, 2.f, 3.f, 4.f, 5.f});
  EXPECT_EQ(t.at({0, 2}), 2.f);
  EXPECT_EQ(t.at({1, 1}), 4.f);
}

TEST(Tensor, AtOutOfBoundsThrows) {
  Tensor t({2, 3});
  EXPECT_THROW((void)t.at({2, 0}), std::invalid_argument);
  EXPECT_THROW((void)t.at({0, 3}), std::invalid_argument);
  EXPECT_THROW((void)t.at({0}), std::invalid_argument);
}

TEST(Tensor, DimOutOfRangeThrows) {
  Tensor t({2, 3});
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_THROW((void)t.dim(2), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0.f, 1.f, 2.f, 3.f, 4.f, 5.f});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at({2, 1}), 5.f);
}

TEST(Tensor, ReshapeSizeMismatchThrows) {
  Tensor t({2, 3});
  EXPECT_THROW((void)t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, EqualityIsValueBased) {
  Tensor a({2}, {1.f, 2.f});
  Tensor b({2}, {1.f, 2.f});
  EXPECT_TRUE(a == b);
  b[0] = 9.f;
  EXPECT_FALSE(a == b);
}

TEST(Tensor, NbytesCountsFloats) { EXPECT_EQ(Tensor({3, 2}).nbytes(), 24); }

// ---- ops --------------------------------------------------------------------

TEST(Ops, AddElementwise) {
  const Tensor a = Tensor::of({1.f, 2.f});
  const Tensor b = Tensor::of({10.f, 20.f});
  EXPECT_EQ(add(a, b), Tensor::of({11.f, 22.f}));
}

TEST(Ops, SubElementwise) {
  EXPECT_EQ(sub(Tensor::of({3.f}), Tensor::of({1.f})), Tensor::of({2.f}));
}

TEST(Ops, MulElementwise) {
  EXPECT_EQ(mul(Tensor::of({3.f, 2.f}), Tensor::of({2.f, 0.5f})),
            Tensor::of({6.f, 1.f}));
}

TEST(Ops, ShapeMismatchThrows) {
  EXPECT_THROW((void)add(Tensor({2}), Tensor({3})), std::invalid_argument);
}

TEST(Ops, ScaleMultiplies) {
  EXPECT_EQ(scale(Tensor::of({1.f, -2.f}), 3.f), Tensor::of({3.f, -6.f}));
}

TEST(Ops, AxpyAccumulates) {
  Tensor y = Tensor::of({1.f, 1.f});
  axpy(2.0f, Tensor::of({1.f, 3.f}), y);
  EXPECT_EQ(y, Tensor::of({3.f, 7.f}));
}

TEST(Ops, SumAndMean) {
  const Tensor t = Tensor::of({1.f, 2.f, 3.f, 4.f});
  EXPECT_FLOAT_EQ(sum(t), 10.f);
  EXPECT_FLOAT_EQ(mean(t), 2.5f);
}

TEST(Ops, MaxAbs) {
  EXPECT_FLOAT_EQ(max_abs(Tensor::of({-3.f, 2.f})), 3.f);
}

TEST(Ops, L2Norm) {
  EXPECT_NEAR(l2_norm(Tensor::of({3.f, 4.f})), 5.0f, 1e-6);
}

TEST(Ops, ArgmaxPicksFirstOfTies) {
  EXPECT_EQ(argmax(Tensor::of({1.f, 5.f, 5.f})), 1);
}

TEST(Ops, ArgmaxRows) {
  const Tensor t({2, 3}, {0.f, 2.f, 1.f, 5.f, 4.f, 3.f});
  const auto rows = argmax_rows(t);
  EXPECT_EQ(rows, (std::vector<int64_t>{1, 0}));
}

TEST(Ops, MatmulBasic) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.f);
}

TEST(Ops, MatmulIncompatibleThrows) {
  EXPECT_THROW((void)matmul(Tensor({2, 3}), Tensor({2, 3})),
               std::invalid_argument);
}

TEST(Ops, MatmulTnMatchesTransposedMatmul) {
  Rng rng(1);
  const Tensor a = rng.normal_tensor({4, 3}, 0, 1);
  const Tensor b = rng.normal_tensor({4, 5}, 0, 1);
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(transpose2d(a), b), 1e-4f));
}

TEST(Ops, MatmulNtMatchesTransposedMatmul) {
  Rng rng(2);
  const Tensor a = rng.normal_tensor({4, 3}, 0, 1);
  const Tensor b = rng.normal_tensor({5, 3}, 0, 1);
  EXPECT_TRUE(allclose(matmul_nt(a, b), matmul(a, transpose2d(b)), 1e-4f));
}

TEST(Ops, TransposeInvolution) {
  Rng rng(3);
  const Tensor a = rng.normal_tensor({3, 7}, 0, 1);
  EXPECT_TRUE(allclose(transpose2d(transpose2d(a)), a));
}

TEST(Ops, AllcloseRespectsTolerance) {
  EXPECT_TRUE(allclose(Tensor::of({1.f}), Tensor::of({1.0005f}), 1e-3f));
  EXPECT_FALSE(allclose(Tensor::of({1.f}), Tensor::of({1.01f}), 1e-3f));
}

// ---- rng --------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformWithinRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(2.0f, 3.0f);
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, BelowWithinRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.below(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(5);
  double s = 0, s2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0f, 2.0f);
    s += v;
    s2 += v * v;
  }
  const double mean = s / n;
  const double var = s2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LaplaceZeroMeanAndScale) {
  Rng rng(6);
  double s = 0, sa = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.laplace(2.0f);
    s += v;
    sa += std::fabs(v);
  }
  EXPECT_NEAR(s / n, 0.0, 0.08);
  EXPECT_NEAR(sa / n, 2.0, 0.08);  // E|X| = scale
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(7);
  const auto v = rng.dirichlet(0.5, 10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0), 1.0, 1e-9);
  for (const double p : v) EXPECT_GE(p, 0.0);
}

TEST(Rng, DirichletSmallAlphaIsSkewed) {
  Rng rng(8);
  // With alpha = 0.1 the largest share should usually dominate.
  double max_share = 0.0;
  for (int t = 0; t < 20; ++t) {
    const auto v = rng.dirichlet(0.1, 5);
    max_share += *std::max_element(v.begin(), v.end());
  }
  EXPECT_GT(max_share / 20.0, 0.6);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int64_t> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, HeNormalStddev) {
  Rng rng(10);
  const Tensor t = rng.he_normal({64, 64}, 128);
  double s2 = 0;
  for (const float v : t.flat()) s2 += static_cast<double>(v) * v;
  const double stddev = std::sqrt(s2 / static_cast<double>(t.size()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 128.0), 0.01);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng a(11);
  Rng child = a.fork();
  // The parent's subsequent draws differ from the child's.
  EXPECT_NE(a.uniform(), child.uniform());
}

// ---- serialize --------------------------------------------------------------

TEST(Serialize, RoundTripSingleTensor) {
  Rng rng(12);
  const Tensor t = rng.normal_tensor({2, 3, 4}, 0, 1);
  const auto bytes = to_bytes(t);
  size_t offset = 0;
  const Tensor back = from_bytes(bytes, offset);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_TRUE(t == back);
}

TEST(Serialize, RoundTripTensorPack) {
  Rng rng(13);
  std::vector<Tensor> ts{rng.normal_tensor({3}, 0, 1),
                         rng.normal_tensor({2, 2}, 0, 1),
                         Tensor({1}, 5.0f)};
  const auto bytes = pack_tensors(ts);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()), wire_bytes(ts));
  const auto back = unpack_tensors(bytes);
  ASSERT_EQ(back.size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) EXPECT_TRUE(ts[i] == back[i]);
}

TEST(Serialize, TruncatedInputThrows) {
  const auto bytes = to_bytes(Tensor({4}, 1.0f));
  auto cut = std::vector<uint8_t>(bytes.begin(), bytes.end() - 4);
  size_t offset = 0;
  EXPECT_THROW((void)from_bytes(cut, offset), std::invalid_argument);
}

TEST(Serialize, TrailingBytesThrow) {
  auto bytes = pack_tensors({Tensor({2}, 1.0f)});
  bytes.push_back(0);
  EXPECT_THROW((void)unpack_tensors(bytes), std::invalid_argument);
}

TEST(Serialize, ImplausibleRankThrows) {
  std::vector<uint8_t> bytes(sizeof(uint32_t), 0xFF);
  size_t offset = 0;
  EXPECT_THROW((void)from_bytes(bytes, offset), std::invalid_argument);
}

}  // namespace
}  // namespace comdml::tensor
