// Ablation A2: aggregation algorithm — recursive halving/doubling (the
// paper's choice, SecIV-B) vs ring AllReduce vs a central parameter server,
// across fleet sizes and both paper models.
#include "bench_util.hpp"

int main() {
  using namespace comdml;
  using namespace comdml::bench;
  print_header("Ablation: aggregation algorithm cost",
               "paper SecIV-B (2 log2 K vs 2(K-1) steps)");

  const struct {
    const char* label;
    int64_t bytes;
  } models[] = {
      {"resnet56", nn::resnet56_spec().total_param_bytes()},
      {"resnet110", nn::resnet110_spec().total_param_bytes()},
  };
  const double bw = 20.0;  // bottleneck link, Mbps

  bool hd_wins_at_scale = true;
  for (const auto& model : models) {
    std::printf("\nmodel %s (%.1f MB), bottleneck %g Mbps\n", model.label,
                model.bytes / 1e6, bw);
    std::printf("%8s %18s %14s %18s\n", "agents", "halving/doubling",
                "ring", "param server");
    for (const int64_t k : {4, 8, 16, 32, 64, 128}) {
      const auto hd = comm::allreduce_cost(
          k, model.bytes, bw, comm::AllReduceAlgo::kHalvingDoubling);
      const auto ring = comm::allreduce_cost(k, model.bytes, bw,
                                             comm::AllReduceAlgo::kRing);
      // Parameter server: every agent moves 2*b through a shared server.
      std::vector<sim::ResourceProfile> profiles(
          static_cast<size_t>(k), sim::ResourceProfile{1.0, bw});
      std::vector<int64_t> sel(static_cast<size_t>(k));
      for (int64_t i = 0; i < k; ++i) sel[static_cast<size_t>(i)] = i;
      const auto ps =
          comm::server_round_times(profiles, sel, model.bytes, {});
      const double ps_worst = *std::max_element(ps.begin(), ps.end());
      std::printf("%8lld %17.2fs %13.2fs %17.2fs\n",
                  static_cast<long long>(k), hd.seconds, ring.seconds,
                  ps_worst);
      if (k >= 32 && hd.seconds > ring.seconds) hd_wins_at_scale = false;
    }
  }
  std::printf(
      "\nshape checks: halving/doubling <= ring for large fleets (the "
      "paper's rationale for choosing it) -> %s\n",
      hd_wins_at_scale ? "OK" : "VIOLATED");
  return hd_wins_at_scale ? 0 : 1;
}
