// Fig. 3 reproduction: total training time under a 20%-connectivity random
// topology with 50 agents, on the three IID datasets, five methods.
#include "bench_util.hpp"

namespace {

using namespace comdml;
using namespace comdml::bench;

struct Row {
  const char* label;
  const char* dataset;
  double target;
};

// Fig. 3 mirrors the 50-agent IID settings; the paper reports the bars
// graphically, so we reproduce ordering and rough magnitudes.
constexpr Row kRows[] = {
    {"CIFAR-10  (80%)", "cifar10", 0.80},
    {"CIFAR-100 (65%)", "cifar100", 0.65},
    {"CINIC-10  (75%)", "cinic10", 0.75},
};

constexpr Method kMethods[] = {Method::kComDML, Method::kGossip,
                               Method::kBrainTorrent, Method::kAllReduceDML,
                               Method::kFedAvg};

}  // namespace

int main() {
  print_header(
      "Fig. 3: 50 agents, random topology with 20% link connectivity",
      "ICDCS'24 ComDML, Fig. 3");
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "", "ComDML", "Gossip",
              "BrainT.", "AllRed.", "FedAvg");
  bool comdml_wins_everywhere = true;
  for (const Row& row : kRows) {
    Scenario s;
    s.dataset = row.dataset;
    s.partition = PartitionKind::kIID;
    s.agents = 50;
    s.participation = 0.2;
    s.target_accuracy = row.target;
    s.link_probability = 0.2;
    s.fixed_shard_size = 0;  // dataset split across the fleet

    double measured[5];
    for (int m = 0; m < 5; ++m)
      measured[m] = time_to_accuracy(kMethods[m], s, /*horizon=*/160);

    std::printf("%-18s", row.label);
    for (int m = 0; m < 5; ++m) std::printf(" %10.0f", measured[m]);
    std::printf("\n");
    for (int m = 1; m < 5; ++m)
      if (measured[0] >= measured[m]) comdml_wins_everywhere = false;
  }
  std::printf(
      "\nshape checks: ComDML remains fastest under sparse connectivity "
      "(paper Fig. 3) -> %s\n",
      comdml_wins_everywhere ? "OK" : "VIOLATED");
  return comdml_wins_everywhere ? 0 : 1;
}
