// Micro-benchmarks (google-benchmark): hot kernels of every substrate —
// tensor math, conv forward/backward, the pairing scheduler, the AllReduce
// executor, pair execution and the dCor estimator.
#include <benchmark/benchmark.h>

#include <numeric>

#include "comm/allreduce.hpp"
#include "core/execution.hpp"
#include "core/trainer.hpp"
#include "nn/conv.hpp"
#include "privacy/dcor.hpp"

namespace {

using namespace comdml;
using tensor::Rng;
using tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = rng.normal_tensor({n, n}, 0, 1);
  const Tensor b = rng.normal_tensor({n, n}, 0, 1);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv(8, 8, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({4, 8, 16, 16}, 0, 1);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, true));
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(8, 8, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({4, 8, 16, 16}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 8, 16, 16}, 0, 1);
  (void)conv.forward(x, true);
  for (auto _ : state) benchmark::DoNotOptimize(conv.backward(g));
}
BENCHMARK(BM_ConvBackward);

void BM_PairingScheduler(benchmark::State& state) {
  const auto agents = state.range(0);
  const auto spec = nn::resnet56_spec();
  const auto profile = core::SplitProfile::from_spec(spec, 16);
  Rng rng(4);
  const auto topo =
      sim::Topology::full_mesh(sim::assign_profiles(agents, rng));
  std::vector<core::AgentInfo> infos;
  for (int64_t i = 0; i < agents; ++i) {
    core::AgentInfo a;
    a.id = i;
    a.proc_speed = sim::samples_per_sec(topo.profile(i),
                                        profile.full_flops_per_sample()) /
                   100.0;
    a.num_batches = 50;
    a.tau_solo = 50.0 / a.proc_speed;
    infos.push_back(a);
  }
  std::vector<int64_t> parts(static_cast<size_t>(agents));
  std::iota(parts.begin(), parts.end(), 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::pair_agents(profile, infos, topo, 100, parts));
}
BENCHMARK(BM_PairingScheduler)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_AllReduceExec(benchmark::State& state) {
  const auto agents = state.range(0);
  Rng rng(5);
  std::vector<std::vector<Tensor>> base;
  for (int64_t a = 0; a < agents; ++a)
    base.push_back({rng.normal_tensor({64, 64}, 0, 1)});
  for (auto _ : state) {
    auto states = base;
    benchmark::DoNotOptimize(comm::allreduce_average(states));
  }
}
BENCHMARK(BM_AllReduceExec)->Arg(4)->Arg(16)->Arg(64);

void BM_ExecutePair(benchmark::State& state) {
  const auto spec = nn::resnet56_spec();
  const auto profile = core::SplitProfile::from_spec(spec);
  core::AgentInfo slow, fast;
  slow.id = 0;
  slow.proc_speed = 0.4;
  slow.num_batches = 250;
  slow.tau_solo = 250 / 0.4;
  fast.id = 1;
  fast.proc_speed = 8.0;
  fast.num_batches = 250;
  fast.tau_solo = 250 / 8.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::execute_pair(profile, slow, fast, 28, 50.0, 100));
}
BENCHMARK(BM_ExecutePair);

void BM_DistanceCorrelation(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(6);
  const Tensor x = rng.normal_tensor({n, 32}, 0, 1);
  const Tensor z = rng.normal_tensor({n, 16}, 0, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(privacy::distance_correlation(x, z));
}
BENCHMARK(BM_DistanceCorrelation)->Arg(32)->Arg(128);

void BM_SimulatedRound(benchmark::State& state) {
  const auto agents = state.range(0);
  core::FleetConfig cfg;
  cfg.agents = agents;
  cfg.max_split_points = 16;
  cfg.reshuffle_period = 0;
  Rng rng(7);
  auto topo = sim::Topology::full_mesh(sim::assign_profiles(agents, rng));
  std::vector<int64_t> sizes(static_cast<size_t>(agents), 5000);
  core::SimulatedFleet fleet(nn::resnet56_spec(), cfg, std::move(topo),
                             std::move(sizes));
  for (auto _ : state) benchmark::DoNotOptimize(fleet.step());
}
BENCHMARK(BM_SimulatedRound)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
