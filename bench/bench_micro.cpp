// Micro-benchmarks (google-benchmark): hot kernels of every substrate —
// tensor math, conv forward/backward, the pairing scheduler, the AllReduce
// executor, pair execution and the dCor estimator.
//
// Before the google-benchmark suite runs, a hand-rolled kernel suite times
// the optimized matmul/conv kernels against the kept naive references at
// 1/2/4/8 threads plus the activation wire codec, and writes the results
// to BENCH_kernels.json (op, shape, threads, GFLOP/s — GB/s for the codec
// entries, speedup vs the serial reference) so the perf trajectory is
// tracked across PRs. An allocation probe then measures heap and
// workspace-arena traffic per conv2d forward/backward step after warmup,
// so the zero-steady-state-allocation property is a number, not a claim.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <numeric>
#include <string>
#include <vector>

#include "comm/allreduce.hpp"
#include "comm/collective.hpp"
#include "comm/compress.hpp"
#include "core/execution.hpp"
#include "core/parallel.hpp"
#include "core/real_fleet.hpp"
#include "core/trainer.hpp"
#include "core/workspace.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/conv.hpp"
#include "privacy/dcor.hpp"
#include "tensor/gemm.hpp"

// ---- allocation-counting hook ----------------------------------------------
//
// Process-wide operator new/delete counter so "zero steady-state
// allocations" is measured, not asserted. Counts every heap allocation in
// the process (library + benchmark harness), so probes below snapshot the
// counter tightly around the measured region.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const size_t a = static_cast<size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace comdml;
using tensor::Rng;
using tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = rng.normal_tensor({n, n}, 0, 1);
  const Tensor b = rng.normal_tensor({n, n}, 0, 1);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulReference(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = rng.normal_tensor({n, n}, 0, 1);
  const Tensor b = rng.normal_tensor({n, n}, 0, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(tensor::matmul_reference(a, b));
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulReference)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv(8, 8, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({4, 8, 16, 16}, 0, 1);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, true));
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(8, 8, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({4, 8, 16, 16}, 0, 1);
  const Tensor g = rng.normal_tensor({4, 8, 16, 16}, 0, 1);
  (void)conv.forward(x, true);
  for (auto _ : state) benchmark::DoNotOptimize(conv.backward(g));
}
BENCHMARK(BM_ConvBackward);

void BM_PairingScheduler(benchmark::State& state) {
  const auto agents = state.range(0);
  const auto spec = nn::resnet56_spec();
  const auto profile = core::SplitProfile::from_spec(spec, 16);
  Rng rng(4);
  const auto topo =
      sim::Topology::full_mesh(sim::assign_profiles(agents, rng));
  std::vector<core::AgentInfo> infos;
  for (int64_t i = 0; i < agents; ++i) {
    core::AgentInfo a;
    a.id = i;
    a.proc_speed = sim::samples_per_sec(topo.profile(i),
                                        profile.full_flops_per_sample()) /
                   100.0;
    a.num_batches = 50;
    a.tau_solo = 50.0 / a.proc_speed;
    infos.push_back(a);
  }
  std::vector<int64_t> parts(static_cast<size_t>(agents));
  std::iota(parts.begin(), parts.end(), 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::pair_agents(profile, infos, topo, 100, parts));
}
BENCHMARK(BM_PairingScheduler)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_AllReduceExec(benchmark::State& state) {
  const auto agents = state.range(0);
  Rng rng(5);
  std::vector<std::vector<Tensor>> base;
  for (int64_t a = 0; a < agents; ++a)
    base.push_back({rng.normal_tensor({64, 64}, 0, 1)});
  for (auto _ : state) {
    auto states = base;
    benchmark::DoNotOptimize(comm::allreduce_average(states));
  }
}
BENCHMARK(BM_AllReduceExec)->Arg(4)->Arg(16)->Arg(64);

void BM_ExecutePair(benchmark::State& state) {
  const auto spec = nn::resnet56_spec();
  const auto profile = core::SplitProfile::from_spec(spec);
  core::AgentInfo slow, fast;
  slow.id = 0;
  slow.proc_speed = 0.4;
  slow.num_batches = 250;
  slow.tau_solo = 250 / 0.4;
  fast.id = 1;
  fast.proc_speed = 8.0;
  fast.num_batches = 250;
  fast.tau_solo = 250 / 8.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::execute_pair(profile, slow, fast, 28, 50.0, 100));
}
BENCHMARK(BM_ExecutePair);

void BM_CompressActivations(benchmark::State& state) {
  Rng rng(8);
  Tensor t = rng.normal_tensor({8, 16, 32, 32}, 0, 1);
  for (float& v : t.flat()) v = std::max(v, 0.0f);  // post-ReLU profile
  for (auto _ : state)
    benchmark::DoNotOptimize(comm::compress_activations(t));
  state.SetBytesProcessed(state.iterations() * t.nbytes());
}
BENCHMARK(BM_CompressActivations);

void BM_DecompressActivations(benchmark::State& state) {
  Rng rng(9);
  Tensor t = rng.normal_tensor({8, 16, 32, 32}, 0, 1);
  for (float& v : t.flat()) v = std::max(v, 0.0f);
  const auto c = comm::compress_activations(t);
  for (auto _ : state)
    benchmark::DoNotOptimize(comm::decompress_activations(c));
  state.SetBytesProcessed(state.iterations() * t.nbytes());
}
BENCHMARK(BM_DecompressActivations);

void BM_DistanceCorrelation(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(6);
  const Tensor x = rng.normal_tensor({n, 32}, 0, 1);
  const Tensor z = rng.normal_tensor({n, 16}, 0, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(privacy::distance_correlation(x, z));
}
BENCHMARK(BM_DistanceCorrelation)->Arg(32)->Arg(128);

void BM_SimulatedRound(benchmark::State& state) {
  const auto agents = state.range(0);
  core::FleetConfig cfg;
  cfg.agents = agents;
  cfg.max_split_points = 16;
  cfg.reshuffle_period = 0;
  Rng rng(7);
  auto topo = sim::Topology::full_mesh(sim::assign_profiles(agents, rng));
  std::vector<int64_t> sizes(static_cast<size_t>(agents), 5000);
  core::SimulatedFleet fleet(nn::resnet56_spec(), cfg, std::move(topo),
                             std::move(sizes));
  for (auto _ : state) benchmark::DoNotOptimize(fleet.step());
}
BENCHMARK(BM_SimulatedRound)->Arg(10)->Arg(100);

// ---- kernel suite with JSON output -----------------------------------------

struct KernelRecord {
  std::string op;
  std::string shape;
  int threads = 0;  // 0 = serial reference kernel
  double gflops = 0.0;  ///< value in `metric` units
  double speedup_vs_serial = 1.0;
  std::string metric = "gflops";
};

/// Best-of-N wall time of fn, with one warmup call.
double time_seconds(const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  double best = 1e30;
  double total = 0.0;
  int reps = 0;
  while ((total < 0.25 && reps < 50) || reps < 3) {
    const auto t0 = clock::now();
    fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    best = std::min(best, s);
    total += s;
    ++reps;
  }
  return best;
}

const int kKernelThreadCounts[] = {1, 2, 4, 8};

/// Times `reference` (serial) and `optimized` at each thread count;
/// appends records with GFLOP/s and speedup vs the reference.
void run_kernel_case(std::vector<KernelRecord>& out, const std::string& op,
                     const std::string& shape, double flops,
                     const std::function<void()>& reference,
                     const std::function<void()>& optimized) {
  core::set_num_threads(1);
  const double t_ref = time_seconds(reference);
  out.push_back({op + "_reference", shape, 0, flops / t_ref / 1e9, 1.0});
  std::printf("  %-18s %-22s serial reference: %7.3f GFLOP/s\n", op.c_str(),
              shape.c_str(), flops / t_ref / 1e9);
  for (const int threads : kKernelThreadCounts) {
    core::set_num_threads(threads);
    const double t = time_seconds(optimized);
    out.push_back({op, shape, threads, flops / t / 1e9, t_ref / t});
    std::printf("  %-18s %-22s threads=%d: %7.3f GFLOP/s (%.2fx vs serial)\n",
                op.c_str(), shape.c_str(), threads, flops / t / 1e9,
                t_ref / t);
  }
  core::set_num_threads(0);
}

void write_kernel_json(const std::vector<KernelRecord>& records,
                       const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                 "\"gflops\": %.4f, \"speedup_vs_serial\": %.4f, "
                 "\"metric\": \"%s\"}%s\n",
                 r.op.c_str(), r.shape.c_str(), r.threads, r.gflops,
                 r.speedup_vs_serial, r.metric.c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

void run_kernel_suite() {
  std::printf("==== kernel suite (writes BENCH_kernels.json) ====\n");
  std::printf("hardware threads: %d, GEMM micro-kernel: %s\n",
              core::hardware_threads(), comdml::tensor::gemm_kernel_name());
  std::vector<KernelRecord> records;

  {
    const int64_t n = 256;
    Rng rng(41);
    const Tensor a = rng.normal_tensor({n, n}, 0, 1);
    const Tensor b = rng.normal_tensor({n, n}, 0, 1);
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    run_kernel_case(
        records, "matmul", "256x256x256", flops,
        [&] { benchmark::DoNotOptimize(tensor::matmul_reference(a, b)); },
        [&] { benchmark::DoNotOptimize(tensor::matmul(a, b)); });
  }

  {
    // Conv2d: [8,16,32,32] * [32,16,3,3], stride 1, pad 1.
    const int64_t bn = 8, cin = 16, cout = 32, hw = 32, k = 3;
    Rng rng(42);
    nn::Conv2d conv(cin, cout, k, 1, 1, rng);
    Rng wrng(42);
    const Tensor w = wrng.he_normal({cout, cin, k, k}, cin * k * k);
    const Tensor x = rng.normal_tensor({bn, cin, hw, hw}, 0, 1);
    const double fwd_flops =
        2.0 * k * k * cin * cout * hw * hw * static_cast<double>(bn);
    run_kernel_case(
        records, "conv2d_forward", "8x16x32x32_k3s1p1", fwd_flops,
        [&] {
          benchmark::DoNotOptimize(nn::conv2d_reference_forward(x, w, 1, 1));
        },
        [&] { benchmark::DoNotOptimize(conv.forward(x, true)); });

    const Tensor g = rng.normal_tensor({bn, cout, hw, hw}, 0, 1);
    Tensor dw(w.shape());
    (void)conv.forward(x, true);
    run_kernel_case(
        records, "conv2d_backward", "8x16x32x32_k3s1p1", 2.0 * fwd_flops,
        [&] {
          dw.fill(0.0f);
          benchmark::DoNotOptimize(
              nn::conv2d_reference_backward(x, w, g, 1, 1, dw));
        },
        [&] { benchmark::DoNotOptimize(conv.backward(g)); });
  }

  {
    // Wire codec throughput (GB/s of raw activation bytes in the "gflops"
    // field; single-threaded, speedup not applicable).
    Rng rng(43);
    Tensor t = rng.normal_tensor({8, 16, 32, 32}, 0, 1);
    for (float& v : t.flat()) v = std::max(v, 0.0f);  // post-ReLU profile
    const double gb = static_cast<double>(t.nbytes());
    const double t_c = time_seconds(
        [&] { benchmark::DoNotOptimize(comm::compress_activations(t)); });
    records.push_back(
        {"compress_activations", "8x16x32x32", 1, gb / t_c / 1e9, 1.0});
    std::printf("  %-18s %-22s threads=1: %7.3f GB/s\n",
                "compress", "8x16x32x32", gb / t_c / 1e9);
    const auto c = comm::compress_activations(t);
    const double t_d = time_seconds(
        [&] { benchmark::DoNotOptimize(comm::decompress_activations(c)); });
    records.push_back(
        {"decompress_activations", "8x16x32x32", 1, gb / t_d / 1e9, 1.0});
    std::printf("  %-18s %-22s threads=1: %7.3f GB/s\n",
                "decompress", "8x16x32x32", gb / t_d / 1e9);
  }

  {
    // Bucket wire codec throughput: one QuantizingCodec encode of a
    // bucket-sized fp64 payload (the round pipeline's publish-time and
    // per-hop compression path). GB/s of the fp32-wire-equivalent bytes.
    // encode() does the same two passes (max-abs scan + quantize) whatever
    // the values hold, so re-encoding the same buffer measures exactly the
    // steady-state codec work without charging a refill copy to it.
    const int64_t elems = 64 * 1024 / 4;  // one 64 KiB fp32-wire bucket
    std::vector<double> work(static_cast<size_t>(elems));
    for (int64_t i = 0; i < elems; ++i)
      work[static_cast<size_t>(i)] =
          0.731 * (static_cast<double>(i % 255) / 127.0 - 1.0);
    const double wire_gb = static_cast<double>(elems) * 4;
    const double t_q = time_seconds([&] {
      benchmark::DoNotOptimize(comm::quantized_codec().encode(
          work.data(), elems));
    });
    records.push_back({"quantized_codec_encode", "64KiB_bucket", 1,
                       wire_gb / t_q / 1e9, 1.0, "gbps"});
    std::printf("  %-18s %-22s threads=1: %7.3f GB/s (fp32-wire bytes)\n",
                "int8_bucket_codec", "64KiB_bucket", wire_gb / t_q / 1e9);
  }

  {
    // Comm protocols through the Transport API: per-collective traffic and
    // modeled time of the SimTransport schedule (K=16 agents, 4 MB model,
    // 100 Mbps bottleneck links), plus the wall time of the real InProc
    // executor on a 1 MB model. Simulated and executed runs are the same
    // schedule, so the bytes are identical by construction.
    std::printf("  -- comm protocols (Transport API, K=16, 4 MB model) --\n");
    const int64_t k = 16;
    const int64_t elems = 1'000'000;  // 4 MB on the fp32 wire
    tensor::Rng grng(51);
    const struct {
      const char* op;
      comm::Protocol protocol;
    } protocols[] = {
        {"ring_allreduce", comm::Protocol::kRingAllReduce},
        {"halving_doubling_allreduce",
         comm::Protocol::kHalvingDoublingAllReduce},
        {"gossip", comm::Protocol::kGossip},
        {"param_server", comm::Protocol::kParamServer},
    };
    for (const auto& p : protocols) {
      comm::CollectiveRequest req;
      req.elems = elems;
      req.rng = &grng;
      auto grid = p.protocol == comm::Protocol::kParamServer
                      ? comm::LinkGrid::star(
                            std::vector<double>(static_cast<size_t>(k),
                                                100.0))
                      : comm::LinkGrid::uniform(k, 100.0);
      comm::SimTransport transport(std::move(grid));
      (void)comm::collective(p.protocol).run(transport, req);
      const auto& st = transport.stats();
      records.push_back({p.op, "k16_4MB", 1,
                         static_cast<double>(st.max_bytes_sent()), 1.0,
                         "bytes_per_round"});
      records.push_back({p.op, "k16_4MB", 1, st.seconds, 1.0,
                         "model_seconds_per_collective"});
      std::printf("  %-28s %-10s %8.2f MB/agent/round, %7.2f modeled s\n",
                  p.op, "k16_4MB",
                  static_cast<double>(st.max_bytes_sent()) / 1e6,
                  st.seconds);
    }
    // Unreliable-network model: the lossy plan's fault decisions are pure
    // hashes of the shared step counter, so the retransmission traffic the
    // reliable channel generates and the step count of a mid-collective
    // recovery are exact functions of the code — the bench guard gates
    // them like schedule bytes.
    std::printf("  -- unreliable delivery (hash-decided faults, K=16) --\n");
    {
      comm::FaultPlan faults;
      faults.seed = 101;
      comm::FaultPlan::MessageFault mf;  // src/dst default to any-edge
      mf.drop_prob = 0.15;
      mf.delay_prob = 0.10;
      mf.delay_steps_max = 2;
      mf.duplicate_prob = 0.10;
      faults.message_faults.push_back(mf);
      for (const auto& p : protocols) {
        comm::CollectiveRequest req;
        req.elems = elems;
        req.rng = &grng;
        auto grid = p.protocol == comm::Protocol::kParamServer
                        ? comm::LinkGrid::star(
                              std::vector<double>(static_cast<size_t>(k),
                                                  100.0))
                        : comm::LinkGrid::uniform(k, 100.0);
        comm::SimTransport transport(std::move(grid), nullptr, faults);
        (void)comm::collective(p.protocol).run(transport, req);
        const auto& st = transport.stats();
        records.push_back({p.op, "k16_4MB_lossy", 1,
                           static_cast<double>(st.retransmit_wire_bytes),
                           1.0, "retransmit_bytes_per_round"});
        std::printf("  %-28s %-13s %8.2f MB retransmitted, "
                    "%8.2f MB goodput\n",
                    p.op, "k16_4MB_lossy",
                    static_cast<double>(st.retransmit_wire_bytes) / 1e6,
                    static_cast<double>(st.goodput_bytes()) / 1e6);
      }
      // Mid-collective endpoint death: the survivor ring re-forms and the
      // total step count of the recovered run is deterministic.
      comm::CollectiveRequest req;
      req.elems = elems;
      comm::SimTransport transport(comm::LinkGrid::uniform(k, 100.0));
      transport.schedule_endpoint_failure(3, 5);
      comm::AsyncCollective op(comm::Protocol::kRingAllReduce, transport,
                               std::move(req));
      op.enable_recovery(comm::Protocol::kRingAllReduce);
      op.wait();
      const auto& st = transport.stats();
      records.push_back({"ring_allreduce_recovered", "k16_4MB_1death", 1,
                         static_cast<double>(st.steps), 1.0,
                         "recovery_steps"});
      std::printf("  %-28s %-13s %8lld steps to recovered completion\n",
                  "ring_allreduce_recovered", "k16_4MB_1death",
                  static_cast<long long>(st.steps));
    }
    // Wall time of the real executor: InProc halving/doubling over a 1 MB
    // model (the fleets' default aggregation path).
    const int64_t exec_elems = 250'000;
    std::vector<std::vector<double>> bufs(static_cast<size_t>(k));
    for (size_t a = 0; a < bufs.size(); ++a)
      bufs[a].assign(static_cast<size_t>(exec_elems),
                     static_cast<double>(a));
    const double t_exec = time_seconds([&] {
      comm::InProcTransport transport(comm::LinkGrid::uniform(k, 100.0));
      comm::CollectiveRequest req;
      req.elems = exec_elems;
      req.buffers.clear();
      req.buffers.reserve(bufs.size());
      for (auto& b : bufs) req.buffers.push_back(b.data());
      (void)comm::collective(comm::Protocol::kHalvingDoublingAllReduce)
          .run(transport, req);
    });
    records.push_back({"halving_doubling_allreduce", "k16_1MB_inproc", 1,
                       t_exec, 1.0, "wall_seconds_per_collective"});
    std::printf("  %-28s %-10s %.4f wall s/collective (real payloads)\n",
                "halving_doubling_allreduce", "k16_1MB", t_exec);
  }

  {
    // Fleet rounds: sequential vs overlapped bucketed aggregation through
    // the real ComDML engine (InProc collectives, mlp replicas), with the
    // fp32 and the quantized (int8 + error feedback) bucket wire codec.
    // The "round_seconds" rows are measured wall time of one RealFleet
    // round; the "model_round_seconds" rows are the modeled clock of the
    // same round (SimTransport-equivalent schedule + overlap timeline);
    // "bytes_per_round" is the executed allreduce traffic (max bytes any
    // agent sent) and "exposed_comm_seconds" the aggregation time left on
    // the modeled critical path after overlap — the quantized rows should
    // show ~4x fewer bytes and a proportionally thinner exposed tail.
    // Overlap needs real concurrency: expect wall parity at 1 thread and
    // the gap to open with cores.
    std::printf("  -- fleet rounds: buckets x overlap x codec --\n");
    for (const int64_t k : {int64_t{4}, int64_t{16}}) {
      for (const bool overlap : {false, true}) {
        for (const bool quantized : {false, true}) {
          for (const int threads : {1, 2, 4}) {
            core::set_num_threads(threads);
            core::FleetOptions opt;
            opt.seed = 71;
            opt.train.batch_size = 16;
            opt.train.batches_per_round = 2;
            opt.comms.bucket_bytes = 64 * 1024;
            opt.comms.overlap = overlap;
            opt.comms.codec =
                quantized
                    ? core::FleetOptions::CommOptions::Codec::kInt8Quantized
                    : core::FleetOptions::CommOptions::Codec::kFp32;
            Rng rng(61);
            const int64_t features = 32, classes = 10;
            const auto ds =
                data::make_blobs(k * 32, classes, features, 0.3f, rng);
            const auto parts = data::iid_partition(ds.size(), k, rng);
            std::vector<data::Dataset> shards;
            for (const auto& idx : parts) shards.push_back(ds.subset(idx));
            std::vector<sim::ResourceProfile> profiles;
            const std::vector<double> cpus{4.0, 0.2, 2.0, 0.5};
            for (int64_t i = 0; i < k; ++i)
              profiles.push_back(
                  {cpus[static_cast<size_t>(i) % cpus.size()], 100.0});
            core::RealFleet fleet(
                [&](Rng& r) {
                  return nn::mlp({features, 256, 256, classes}, r);
                },
                classes, std::move(shards),
                sim::Topology::full_mesh(profiles), opt);
            double model_seconds = 0.0, exposed_seconds = 0.0;
            double bytes_per_round = 0.0;
            const double wall = time_seconds([&] {
              const auto stats = fleet.step();
              model_seconds = stats.sim_time;
              exposed_seconds = stats.exposed_comm_seconds;
              bytes_per_round =
                  static_cast<double>(stats.aggregation_bytes);
            });
            const std::string shape =
                "k" + std::to_string(k) +
                (overlap ? "_overlap" : "_sequential") +
                (quantized ? "_int8" : "");
            records.push_back({"comdml_round", shape, threads, wall, 1.0,
                               "round_seconds"});
            records.push_back({"comdml_round", shape, threads,
                               model_seconds, 1.0, "model_round_seconds"});
            records.push_back({"comdml_round", shape, threads,
                               bytes_per_round, 1.0, "bytes_per_round"});
            records.push_back({"comdml_round", shape, threads,
                               exposed_seconds, 1.0,
                               "exposed_comm_seconds"});
            std::printf(
                "  %-18s %-22s threads=%d: %8.4f wall s/round, %7.2f "
                "modeled s, %8.2f KB/agent, %6.2f exposed s\n",
                "comdml_round", shape.c_str(), threads, wall, model_seconds,
                bytes_per_round / 1e3, exposed_seconds);
          }
        }
      }
    }
    core::set_num_threads(0);
  }

  write_kernel_json(records, "BENCH_kernels.json");
  std::printf("wrote BENCH_kernels.json (%zu records)\n\n", records.size());
}

/// Measures heap + arena traffic of one conv2d forward/backward step after
/// warmup: the workspace arena must stop allocating entirely (its scratch
/// is reused at the high-water mark), leaving only the output/grad Tensor
/// allocations of the layer API.
void run_allocation_probe() {
  std::printf("==== conv2d allocation probe (micro-kernel: %s) ====\n",
              comdml::tensor::gemm_kernel_name());
  core::set_num_threads(1);  // single arena -> exact accounting
  Rng rng(44);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  const Tensor x = rng.normal_tensor({8, 16, 32, 32}, 0, 1);
  const Tensor g = rng.normal_tensor({8, 32, 32, 32}, 0, 1);
  for (int i = 0; i < 2; ++i) {  // warmup: arenas grow to high-water
    (void)conv.forward(x, true);
    (void)conv.backward(g);
  }
  constexpr int kSteps = 10;
  const auto ws0 = core::Workspace::aggregate_stats();
  const uint64_t heap0 = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kSteps; ++i) {
    (void)conv.forward(x, true);
    (void)conv.backward(g);
  }
  const uint64_t heap1 = g_alloc_count.load(std::memory_order_relaxed);
  const auto ws1 = core::Workspace::aggregate_stats();
  std::printf(
      "  steady-state per fwd+bwd step: %.1f heap allocations "
      "(output/grad tensors), %.1f arena allocations "
      "(%lld scratch checkouts/step, %.1f KiB process-wide arena "
      "high-water)\n\n",
      static_cast<double>(heap1 - heap0) / kSteps,
      static_cast<double>(ws1.heap_allocs - ws0.heap_allocs) / kSteps,
      static_cast<long long>((ws1.checkouts - ws0.checkouts) / kSteps),
      static_cast<double>(ws1.high_water_bytes) / 1024.0);
  core::set_num_threads(0);
}

}  // namespace

int main(int argc, char** argv) {
  run_kernel_suite();
  run_allocation_probe();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
