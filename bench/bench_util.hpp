// Shared scenario plumbing for the paper-reproduction benches.
//
// Every bench binary prints the paper's reported numbers next to the values
// this repository measures, with a fixed seed announced up front.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "baselines/baseline_fleet.hpp"
#include "core/trainer.hpp"

namespace comdml::bench {

using baselines::BaselineFleet;
using core::FleetConfig;
using core::Scheduler;
using core::SimulatedFleet;
using learncurve::Method;
using learncurve::PartitionKind;
using sim::Topology;
using tensor::Rng;

inline constexpr uint64_t kBenchSeed = 20240501;  // arXiv submission date

/// Split-point budget M for the profiled split models in large fleets
/// (paper §III-B: "Consider M split models").
inline constexpr size_t kSplitPoints = 16;

struct Scenario {
  std::string dataset;            // cifar10 | cifar100 | cinic10
  std::string model = "resnet56";  // resnet56 | resnet110
  PartitionKind partition = PartitionKind::kIID;
  int64_t agents = 10;
  double participation = 1.0;
  double target_accuracy = 0.9;
  /// Topology: full mesh unless link_probability < 1.
  double link_probability = 1.0;
  /// If > 0, every agent holds this many samples regardless of fleet size
  /// (Table III scales the fleet, not the per-agent workload: shards are
  /// drawn with replacement from the dataset).
  int64_t fixed_shard_size = 0;
  uint64_t seed = kBenchSeed;
};

inline data::DatasetSpec dataset_spec(const std::string& name) {
  if (name == "cifar10") return data::cifar10_spec();
  if (name == "cifar100") return data::cifar100_spec();
  if (name == "cinic10") return data::cinic10_spec();
  throw std::invalid_argument("unknown dataset " + name);
}

inline nn::ArchitectureSpec model_spec(const std::string& name,
                                       int64_t classes) {
  if (name == "resnet56") return nn::resnet56_spec(classes);
  if (name == "resnet110") return nn::resnet110_spec(classes);
  throw std::invalid_argument("unknown model " + name);
}

inline Topology make_topology(const Scenario& s, Rng& rng) {
  const auto profiles = sim::assign_profiles(s.agents, rng);
  if (s.link_probability >= 1.0) return Topology::full_mesh(profiles);
  // Re-draw until the graph is connected (Fig. 3's premise: training
  // proceeds; a split fleet cannot aggregate).
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto topo = Topology::random_graph(profiles, s.link_probability, rng);
    if (topo.is_connected()) return topo;
  }
  throw std::runtime_error("could not draw a connected random topology");
}

inline FleetConfig make_config(const Scenario& s) {
  FleetConfig cfg;
  cfg.agents = s.agents;
  cfg.participation = s.participation;
  cfg.reshuffle_period = 100;  // dynamic environment after round 100
  cfg.reshuffle_fraction = 0.2;
  cfg.max_split_points = kSplitPoints;
  cfg.seed = s.seed;
  return cfg;
}

/// Wall-clock (simulated seconds) for `method` to reach the scenario's
/// target accuracy. Simulates min(rounds, horizon) rounds and uses the
/// recorded per-round times (extrapolating past the horizon at the mean
/// recorded rate — per-round times are stationary after the round-100
/// reshuffle).
inline double time_to_accuracy(Method method, const Scenario& s,
                               int64_t horizon = 220) {
  const auto dspec = dataset_spec(s.dataset);
  const auto mspec = model_spec(s.model, dspec.classes);
  Rng rng(s.seed);
  auto topology = make_topology(s, rng);
  auto sizes = s.fixed_shard_size > 0
                   ? std::vector<int64_t>(static_cast<size_t>(s.agents),
                                          s.fixed_shard_size)
                   : core::shard_sizes_for(dspec, s.agents, s.partition, rng);

  const auto curve = learncurve::make_accuracy_model(
      s.dataset, s.model, s.partition, method, s.participation);
  const auto base_rounds = curve.rounds_to(s.target_accuracy);
  if (!base_rounds) return std::nan("");
  double rounds_needed =
      *base_rounds * learncurve::fleet_rounds_factor(s.agents);
  if (method == Method::kGossip)
    rounds_needed *= learncurve::gossip_mixing_factor(s.link_probability);
  const auto rounds = std::optional<double>(rounds_needed);

  const auto sim_rounds =
      std::min<int64_t>(horizon, static_cast<int64_t>(std::ceil(*rounds)));
  if (method == Method::kComDML) {
    SimulatedFleet fleet(mspec, make_config(s), std::move(topology),
                         std::move(sizes), Scheduler::kComDML);
    return fleet.run(sim_rounds).time_for_rounds(*rounds);
  }
  BaselineFleet fleet(method, mspec, make_config(s), std::move(topology),
                      std::move(sizes));
  return fleet.run(sim_rounds).time_for_rounds(*rounds);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n==== %s ====\n", title);
  std::printf("reproduces: %s   (seed %llu)\n", paper_ref,
              static_cast<unsigned long long>(kBenchSeed));
}

}  // namespace comdml::bench
