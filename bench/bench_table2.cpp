// Table II reproduction: total training time (seconds) to target accuracy
// with 10 heterogeneous agents, 6 dataset configurations, 5 methods.
#include "bench_util.hpp"

namespace {

using namespace comdml;
using namespace comdml::bench;

struct Row {
  const char* label;
  const char* dataset;
  PartitionKind part;
  double target;
  // Paper Table II values, ComDML/Gossip/BrainTorrent/AllReduce/FedAvg.
  double paper[5];
};

constexpr Row kRows[] = {
    {"CIFAR-10  I.I.D.  (90%)", "cifar10", PartitionKind::kIID, 0.90,
     {7211, 20337, 24639, 25153, 24174}},
    {"CIFAR-10  non-IID (85%)", "cifar10", PartitionKind::kDirichlet05, 0.85,
     {4177, 15269, 14323, 13859, 13095}},
    {"CIFAR-100 I.I.D.  (65%)", "cifar100", PartitionKind::kIID, 0.65,
     {5589, 15262, 18046, 18462, 17630}},
    {"CIFAR-100 non-IID (60%)", "cifar100", PartitionKind::kDirichlet05, 0.60,
     {8104, 28621, 25867, 26623, 25113}},
    {"CINIC-10  I.I.D.  (75%)", "cinic10", PartitionKind::kIID, 0.75,
     {10229, 24636, 31992, 32652, 30601}},
    {"CINIC-10  non-IID (65%)", "cinic10", PartitionKind::kDirichlet05, 0.65,
     {17208, 56325, 51144, 53265, 49624}},
};

constexpr Method kMethods[] = {Method::kComDML, Method::kGossip,
                               Method::kBrainTorrent, Method::kAllReduceDML,
                               Method::kFedAvg};

}  // namespace

int main() {
  print_header("Table II: time-to-accuracy, 10 agents, ResNet-56",
               "ICDCS'24 ComDML, Table II");
  std::printf("%-26s %10s %10s %10s %10s %10s\n", "", "ComDML", "Gossip",
              "BrainT.", "AllRed.", "FedAvg");
  for (const Row& row : kRows) {
    Scenario s;
    s.dataset = row.dataset;
    s.partition = row.part;
    s.target_accuracy = row.target;
    s.agents = 10;

    double measured[5];
    for (int m = 0; m < 5; ++m)
      measured[m] = time_to_accuracy(kMethods[m], s);

    std::printf("%-26s", row.label);
    for (int m = 0; m < 5; ++m) std::printf(" %10.0f", measured[m]);
    std::printf("   <- measured\n%-26s", "");
    for (int m = 0; m < 5; ++m) std::printf(" %10.0f", row.paper[m]);
    std::printf("   <- paper\n");

    const double reduction_fedavg = 1.0 - measured[0] / measured[4];
    const double paper_reduction = 1.0 - row.paper[0] / row.paper[4];
    std::printf("%-26s ComDML vs FedAvg: measured -%.0f%%  paper -%.0f%%\n",
                "", 100.0 * reduction_fedavg, 100.0 * paper_reduction);
  }
  std::printf(
      "\nshape checks: ComDML fastest on every row; reductions in the same "
      "double-digit band as the paper.\n");
  return 0;
}
