// Table I reproduction: 2-agent local-loss split training with varying
// numbers of offloaded layers, in two (CPU, bandwidth) settings. Reports
// the fast agent's training time, communication time, combined idle time
// and total time to 90% on CIFAR-10 with ResNet-56 — totals must show the
// paper's key shape: an interior optimum that shifts with the CPU/bandwidth
// ratio (paper §V-B-1: "the optimal number of layers to offload is
// non-trivial").
#include "bench_util.hpp"
#include "core/execution.hpp"

namespace {

using namespace comdml;
using namespace comdml::bench;

struct Setting {
  const char* label;
  double slow_cpu;
  double fast_cpu;
  double mbps;
  // Paper totals for offloads {0,1,10,19,28,37,46,55} (seconds).
  double paper_total[8];
};

constexpr Setting kSettings[] = {
    {"setting 1: 2 CPU + 0.25 CPU, 50 Mbps", 0.25, 2.0, 50.0,
     {20096, 20909, 15059, 12851, 11217, 9352, 9551, 10983}},
    {"setting 2: 2 CPU + 1 CPU, 100 Mbps", 1.0, 2.0, 100.0,
     {9165, 9150, 8481, 8456, 8490, 8908, 9640, 10421}},
};

constexpr int kOffloads[] = {0, 1, 10, 19, 28, 37, 46, 55};

}  // namespace

int main() {
  print_header("Table I: 2-agent layer-offloading sweep",
               "ICDCS'24 ComDML, Table I");
  const auto spec = nn::resnet56_spec();
  core::FleetConfig ref_cfg;  // for the activation-compression default
  const auto profile = core::SplitProfile::from_spec(
      spec, 0, ref_cfg.activation_compression);
  const int64_t batch = 100;
  const int64_t samples_each = 25000;  // CIFAR-10 split across 2 agents

  for (const Setting& st : kSettings) {
    std::printf("\n%s\n", st.label);
    std::printf("%8s %10s %10s %10s %10s %12s\n", "offload", "train(s)",
                "comm(s)", "idle(s)", "total(s)", "paper total");

    core::AgentInfo slow, fast;
    const double fps = profile.full_flops_per_sample();
    slow.id = 0;
    slow.proc_speed =
        st.slow_cpu * sim::kReferenceFlopsPerSec / fps / double(batch);
    slow.num_batches = samples_each / batch;
    slow.tau_solo = double(slow.num_batches) / slow.proc_speed;
    fast.id = 1;
    fast.proc_speed =
        st.fast_cpu * sim::kReferenceFlopsPerSec / fps / double(batch);
    fast.num_batches = samples_each / batch;
    fast.tau_solo = double(fast.num_batches) / fast.proc_speed;

    const auto agg = comm::allreduce_cost(2, profile.model_state_bytes(),
                                          st.mbps);

    double best_total = 1e300;
    int best_offload = -1;
    for (size_t row = 0; row < 8; ++row) {
      const int offload = kOffloads[row];
      double round_train = 0, round_comm = 0, round_idle = 0, round_time = 0;
      double offload_frac = 0.0;
      if (offload == 0) {
        round_train = fast.tau_solo;
        round_time = std::max(slow.tau_solo, fast.tau_solo);
        round_idle = round_time - fast.tau_solo;  // fast agent waits
        round_comm = 0.0;
      } else {
        const size_t cut = spec.size() - static_cast<size_t>(offload);
        const auto exec = core::execute_pair(profile, slow, fast, cut,
                                             st.mbps, batch);
        round_train = exec.fast_train_time;
        round_comm = exec.link_busy;
        round_idle = exec.slow_idle + exec.fast_idle;
        round_time = exec.pair_time;
        offload_frac = profile.offloaded_fraction(cut);
      }
      round_time += agg.seconds;

      // Rounds to 90% under the split-dependent learning rate.
      const auto curve = learncurve::AccuracyModel(
          learncurve::base_curve("cifar10", "resnet56",
                                 learncurve::PartitionKind::kIID),
          learncurve::method_rate(learncurve::Method::kComDML) *
              learncurve::split_rate_penalty(offload_frac));
      const auto base_rounds = curve.rounds_to(0.90);
      if (!base_rounds) continue;
      // Two agents with 25k-sample shards converge near-centralized.
      const double rounds_scaled =
          *base_rounds * learncurve::fleet_rounds_factor(2);
      const auto rounds = std::optional<double>(rounds_scaled);

      const double total = *rounds * round_time;
      if (total < best_total) {
        best_total = total;
        best_offload = offload;
      }
      std::printf("%8d %10.0f %10.0f %10.0f %10.0f %12.0f\n", offload,
                  *rounds * round_train, *rounds * round_comm,
                  *rounds * round_idle, total, st.paper_total[row]);
    }
    std::printf("measured optimum at %d layers offloaded\n", best_offload);
  }
  std::printf(
      "\nshape checks: fast-agent train time rises with offload; totals dip "
      "to an interior optimum; the optimum shifts toward less offloading in "
      "the balanced setting 2 (paper: 37 vs 19 layers).\n");
  return 0;
}
