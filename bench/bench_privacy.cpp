// §V-B-4 reproduction: integrating privacy-preserving techniques
// (100 agents, CIFAR-10, ResNet-56, 100 rounds). The paper reports
// 81.7% with distance correlation (alpha=0.5), 83.2% with patch shuffling
// and 77.6% with Laplace differential privacy (eps=0.5, delta=1e-5); the
// claim under reproduction is the *deltas* — privacy integrates with
// minimal accuracy loss and near-unchanged training time.
#include "bench_util.hpp"

int main() {
  using namespace comdml;
  using namespace comdml::bench;
  using learncurve::PrivacyTechnique;
  print_header("Privacy integration: accuracy after 100 rounds, 100 agents",
               "ICDCS'24 ComDML, SecV-B-4");

  const struct {
    PrivacyTechnique technique;
    double paper_acc;  // reported accuracy (fraction)
  } rows[] = {
      {PrivacyTechnique::kNone, 0.835},  // implied no-privacy baseline
      {PrivacyTechnique::kDistanceCorrelation, 0.817},
      {PrivacyTechnique::kPatchShuffle, 0.832},
      {PrivacyTechnique::kDifferentialPrivacy, 0.776},
  };

  const auto curve = learncurve::make_accuracy_model(
      "cifar10", "resnet56", learncurve::PartitionKind::kIID,
      learncurve::Method::kComDML);
  const double rounds = 100.0 / learncurve::fleet_rounds_factor(100);
  const double baseline = curve.accuracy_at(rounds);

  // Round time with and without the privacy compute overhead.
  Scenario s;
  s.dataset = "cifar10";
  s.agents = 100;
  s.fixed_shard_size = 500;  // 50k images over 100 agents
  Rng rng(s.seed);
  auto topo = make_topology(s, rng);
  std::vector<int64_t> sizes(100, 500);

  std::printf("%-42s %10s %10s %12s\n", "technique", "acc", "paper",
              "round time");
  bool deltas_ok = true;
  for (const auto& row : rows) {
    const double acc =
        baseline - learncurve::privacy_accuracy_penalty(row.technique);
    auto cfg = make_config(s);
    cfg.privacy = row.technique;
    core::SimulatedFleet fleet(model_spec("resnet56", 10), cfg, topo, sizes);
    const double round_time = fleet.step().round_time;
    std::printf("%-42s %9.1f%% %9.1f%% %10.1fs\n",
                learncurve::privacy_name(row.technique).c_str(), 100 * acc,
                100 * row.paper_acc, round_time);
    // Delta vs baseline must match the paper's delta within 1.5 points.
    const double measured_delta = baseline - acc;
    const double paper_delta = rows[0].paper_acc - row.paper_acc;
    if (std::fabs(measured_delta - paper_delta) > 0.015) deltas_ok = false;
  }
  std::printf(
      "\nshape checks: accuracy deltas within 1.5 points of the paper's; "
      "patch shuffling mildest, DP strongest -> %s\n",
      deltas_ok ? "OK" : "VIOLATED");
  return deltas_ok ? 0 : 1;
}
