// Ablation A3: profiling granularity — how many candidate split points M
// the profiler exposes (paper SecIII-B "Consider M split models") vs the
// resulting balanced round time and scheduling cost.
#include <chrono>

#include "bench_util.hpp"

int main() {
  using namespace comdml;
  using namespace comdml::bench;
  print_header("Ablation: split-profiling granularity M",
               "paper SecIII-B / SecIV-B profiling");

  const auto spec = nn::resnet56_spec();
  std::printf("%6s %16s %18s\n", "M", "mean round(s)", "schedule time(us)");
  double coarse = 0, fine = 0;
  for (const size_t m : {2, 4, 8, 16, 32, 55}) {
    double total = 0;
    double sched_us = 0;
    const int kSeeds = 8;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Scenario s;
      s.dataset = "cifar10";
      s.agents = 10;
      s.seed = kBenchSeed + seed;
      Rng rng(s.seed);
      auto topo = make_topology(s, rng);
      auto sizes = core::shard_sizes_for(dataset_spec("cifar10"), 10,
                                         PartitionKind::kIID, rng);
      auto cfg = make_config(s);
      cfg.max_split_points = m;
      core::SimulatedFleet fleet(spec, cfg, std::move(topo),
                                 std::move(sizes));
      const auto infos = fleet.agent_infos();
      std::vector<int64_t> parts(10);
      std::iota(parts.begin(), parts.end(), 0);
      const auto t0 = std::chrono::steady_clock::now();
      (void)core::pair_agents(fleet.profile(), infos, fleet.topology(), 100,
                              parts);
      const auto t1 = std::chrono::steady_clock::now();
      sched_us +=
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      total += fleet.step().round_time;
    }
    std::printf("%6zu %16.1f %18.1f\n", m, total / kSeeds,
                sched_us / kSeeds);
    if (m == 2) coarse = total / kSeeds;
    if (m == 55) fine = total / kSeeds;
  }
  const bool ok = fine <= coarse * 1.001;
  std::printf(
      "\nshape checks: a modest M already captures the balancing benefit "
      "(diminishing, slightly noisy returns beyond M~8 as the estimate/"
      "execution gap dominates); M=2 is clearly worse -> %s\n",
      ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
