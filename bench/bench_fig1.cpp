// Fig. 1 reproduction: the with/without workload-balancing timeline for one
// slow/fast agent pair — training spans, idle spans and the communication
// overhead that balancing introduces.
#include "bench_util.hpp"
#include "core/execution.hpp"

int main() {
  using namespace comdml;
  using namespace comdml::bench;
  print_header("Fig. 1: workload balancing timeline, 2 agents",
               "ICDCS'24 ComDML, Fig. 1");

  const auto spec = nn::resnet56_spec();
  core::FleetConfig ref_cfg;
  const auto profile = core::SplitProfile::from_spec(
      spec, 0, ref_cfg.activation_compression);
  const int64_t batch = 100;

  core::AgentInfo slow, fast;
  const double fps = profile.full_flops_per_sample();
  slow.id = 0;
  slow.proc_speed = 0.2 * sim::kReferenceFlopsPerSec / fps / double(batch);
  slow.num_batches = 50;
  slow.tau_solo = double(slow.num_batches) / slow.proc_speed;
  fast.id = 1;
  fast.proc_speed = 4.0 * sim::kReferenceFlopsPerSec / fps / double(batch);
  fast.num_batches = 50;
  fast.tau_solo = double(fast.num_batches) / fast.proc_speed;

  std::printf("\nWithout workload balancing:\n");
  std::printf("  agent 1 (slow) trains model w        : %7.1f s\n",
              slow.tau_solo);
  std::printf("  agent 2 (fast) trains model w        : %7.1f s\n",
              fast.tau_solo);
  std::printf("  agent 2 idle waiting for agent 1     : %7.1f s\n",
              slow.tau_solo - fast.tau_solo);
  std::printf("  round span                           : %7.1f s\n",
              slow.tau_solo);

  const auto choice = core::best_split(profile, slow, fast, 100.0, batch);
  if (!choice) {
    std::printf("no beneficial split found\n");
    return 1;
  }
  const auto exec =
      core::execute_pair(profile, slow, fast, choice->cut, 100.0, batch);

  std::printf("\nWith workload balancing (split m* = cut %zu):\n",
              choice->cut);
  std::printf("  agent 1 trains slow side w_s         : %7.1f s\n",
              exec.slow_finish);
  std::printf("  agent 2 trains own w + offloaded w_f : %7.1f s\n",
              exec.fast_train_time);
  std::printf("  communication overhead               : %7.1f s\n",
              exec.link_busy);
  std::printf("  combined idle                        : %7.1f s\n",
              exec.slow_idle + exec.fast_idle);
  std::printf("  round span                           : %7.1f s\n",
              exec.pair_time);
  std::printf("\ntraining-time reduction with balancing: %.0f%% (paper "
              "illustrates a qualitative reduction)\n",
              100.0 * (1.0 - exec.pair_time / slow.tau_solo));

  const bool shape_ok = exec.pair_time < slow.tau_solo &&
                        exec.slow_idle + exec.fast_idle <
                            (slow.tau_solo - fast.tau_solo);
  std::printf("shape checks: balanced span shorter, idle time shrinks -> %s\n",
              shape_ok ? "OK" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
