// Table III reproduction: scalability — time to 80% on IID CIFAR-10 with
// 20/50/100 agents (20% participation per round), ResNet-56 and ResNet-110.
#include "bench_util.hpp"

namespace {

using namespace comdml;
using namespace comdml::bench;

struct Row {
  const char* model;
  int64_t agents;
  double paper[5];  // ComDML, Gossip, BrainTorrent, AllReduce, FedAvg
};

constexpr Row kRows[] = {
    {"resnet56", 20, {7618, 12637, 14822, 15660, 14409}},
    {"resnet56", 50, {9539, 17716, 20337, 21339, 19681}},
    {"resnet56", 100, {10461, 19465, 22825, 23652, 22577}},
    {"resnet110", 20, {11799, 18834, 20234, 19559, 19322}},
    {"resnet110", 50, {15014, 25574, 27753, 28117, 27191}},
    {"resnet110", 100, {15843, 28825, 31526, 30085, 29494}},
};

constexpr Method kMethods[] = {Method::kComDML, Method::kGossip,
                               Method::kBrainTorrent, Method::kAllReduceDML,
                               Method::kFedAvg};

}  // namespace

int main() {
  print_header("Table III: scalability, target 80% on IID CIFAR-10",
               "ICDCS'24 ComDML, Table III");
  std::printf("%-10s %6s %10s %10s %10s %10s %10s\n", "model", "agents",
              "ComDML", "Gossip", "BrainT.", "AllRed.", "FedAvg");
  for (const Row& row : kRows) {
    Scenario s;
    s.dataset = "cifar10";
    s.model = row.model;
    s.partition = PartitionKind::kIID;
    s.agents = row.agents;
    s.participation = 0.2;          // paper: 20% sampling rate
    s.target_accuracy = 0.80;
    s.fixed_shard_size = 5000;      // fleet scales, per-agent workload fixed

    double measured[5];
    for (int m = 0; m < 5; ++m)
      measured[m] = time_to_accuracy(kMethods[m], s, /*horizon=*/160);

    std::printf("%-10s %6lld", row.model,
                static_cast<long long>(row.agents));
    for (int m = 0; m < 5; ++m) std::printf(" %10.0f", measured[m]);
    std::printf("   <- measured\n%-10s %6s", "", "");
    for (int m = 0; m < 5; ++m) std::printf(" %10.0f", row.paper[m]);
    std::printf("   <- paper\n");
  }
  std::printf(
      "\nshape checks: ComDML fastest at every scale; times grow mildly "
      "with fleet size (no scalability collapse); ResNet-110 rows sit above "
      "their ResNet-56 counterparts.\n");
  return 0;
}
