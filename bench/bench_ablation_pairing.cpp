// Ablation A1 (DESIGN.md): the decentralized greedy pairing scheduler vs
// the exact integer-program optimum, random pairing, static pairing and no
// offloading — estimated round time over seeds, 10-agent fleets.
#include <numeric>

#include "bench_util.hpp"

int main() {
  using namespace comdml;
  using namespace comdml::bench;
  using core::Scheduler;
  print_header("Ablation: pairing scheduler variants (10 agents, ResNet-56)",
               "design-choice ablation, paper SecIV-A");

  const auto spec = nn::resnet56_spec();
  const struct {
    const char* label;
    Scheduler scheduler;
  } variants[] = {
      {"greedy (ComDML Algorithm 1)", Scheduler::kComDML},
      {"exact integer program", Scheduler::kExact},
      {"random pairing", Scheduler::kRandom},
      {"static pairing", Scheduler::kStatic},
      {"no offloading", Scheduler::kNoOffloading},
  };

  std::printf("%-30s %14s %14s\n", "scheduler", "mean round(s)",
              "vs no-offload");
  double mean_of[5] = {};
  for (int v = 0; v < 5; ++v) {
    double total = 0;
    const int kSeeds = 8;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Scenario s;
      s.dataset = "cifar10";
      s.agents = 10;
      s.seed = kBenchSeed + seed;
      Rng rng(s.seed);
      auto topo = make_topology(s, rng);
      auto sizes = core::shard_sizes_for(dataset_spec("cifar10"), 10,
                                         PartitionKind::kIID, rng);
      auto cfg = make_config(s);
      cfg.max_split_points = 12;  // keep the exact solver tractable
      core::SimulatedFleet fleet(spec, cfg, std::move(topo),
                                 std::move(sizes), variants[v].scheduler);
      total += fleet.step().round_time;
    }
    mean_of[v] = total / 8.0;
  }
  for (int v = 0; v < 5; ++v)
    std::printf("%-30s %14.1f %13.0f%%\n", variants[v].label, mean_of[v],
                100.0 * (1.0 - mean_of[v] / mean_of[4]));

  const bool ok = mean_of[0] < mean_of[2] && mean_of[0] < mean_of[3] &&
                  mean_of[0] < mean_of[4] &&
                  mean_of[1] <= mean_of[0] * 1.02;
  std::printf(
      "\nshape checks: greedy beats random/static/none and sits within 2%% "
      "of the exact optimum -> %s\n",
      ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
