#include "sim/event_queue.hpp"

namespace comdml::sim {

void Simulator::schedule_in(double delay, EventFn fn) {
  COMDML_REQUIRE(delay >= 0.0, "negative event delay " << delay);
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(double at, EventFn fn) {
  COMDML_REQUIRE(at >= now_, "event at " << at << " is before now " << now_);
  COMDML_CHECK(fn != nullptr);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

size_t Simulator::run(double until) {
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the closure after popping the ordering fields.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (queue_.empty() && now_ < until && until != kForever) now_ = until;
  return executed;
}

}  // namespace comdml::sim
