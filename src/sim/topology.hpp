// Peer-to-peer network topologies (paper §V-B-5: full, random p-connectivity,
// ring). A link's bandwidth is the minimum of the endpoints' communication
// profiles; absent links have bandwidth 0.
#pragma once

#include <optional>
#include <vector>

#include "sim/resources.hpp"

namespace comdml::sim {

class Topology {
 public:
  /// Fully connected graph over the given endpoint profiles.
  [[nodiscard]] static Topology full_mesh(
      const std::vector<ResourceProfile>& profiles);

  /// Random graph keeping each possible link with probability `p`
  /// (paper Fig. 3 uses p = 0.2). Never produces self-links.
  [[nodiscard]] static Topology random_graph(
      const std::vector<ResourceProfile>& profiles, double p, Rng& rng);

  /// Ring: agent i connects to (i±1) mod K.
  [[nodiscard]] static Topology ring(
      const std::vector<ResourceProfile>& profiles);

  [[nodiscard]] int64_t agents() const noexcept {
    return static_cast<int64_t>(adjacency_.size());
  }

  /// Link bandwidth in Mbps; 0 if no usable link (absent edge or a
  /// disconnected endpoint).
  [[nodiscard]] double bandwidth_mbps(int64_t i, int64_t j) const;

  [[nodiscard]] bool linked(int64_t i, int64_t j) const {
    return bandwidth_mbps(i, j) > 0.0;
  }

  /// Agents j with a usable link to i, ascending order.
  [[nodiscard]] std::vector<int64_t> neighbors(int64_t i) const;

  /// True if every agent can reach every other over usable links.
  [[nodiscard]] bool is_connected() const;

  /// Fraction of possible (i<j) links present.
  [[nodiscard]] double density() const;

  /// Smallest positive link bandwidth in the graph (for collective-cost
  /// bottleneck models); nullopt if the graph has no usable link.
  [[nodiscard]] std::optional<double> min_link_bandwidth() const;

  [[nodiscard]] const ResourceProfile& profile(int64_t i) const;

  /// All endpoint profiles (e.g. to build a comm::LinkGrid star for the
  /// parameter-server collective).
  [[nodiscard]] const std::vector<ResourceProfile>& profiles()
      const noexcept {
    return profiles_;
  }

  /// Replace the endpoint profiles (dynamic environments); adjacency keeps.
  void set_profiles(std::vector<ResourceProfile> profiles);

 private:
  Topology(std::vector<ResourceProfile> profiles,
           std::vector<std::vector<bool>> adjacency);

  std::vector<ResourceProfile> profiles_;
  std::vector<std::vector<bool>> adjacency_;
};

}  // namespace comdml::sim
