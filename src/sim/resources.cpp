#include "sim/resources.hpp"

#include <algorithm>

namespace comdml::sim {

const std::vector<double>& standard_cpu_profiles() {
  static const std::vector<double> kProfiles{4.0, 2.0, 1.0, 0.5, 0.2};
  return kProfiles;
}

const std::vector<double>& standard_comm_profiles() {
  static const std::vector<double> kProfiles{0.0, 10.0, 20.0, 50.0, 100.0};
  return kProfiles;
}

std::vector<ResourceProfile> assign_profiles(int64_t agents, Rng& rng,
                                             bool allow_disconnected) {
  COMDML_CHECK(agents > 0);
  const auto& cpus = standard_cpu_profiles();
  std::vector<double> comms = standard_comm_profiles();
  if (!allow_disconnected)
    comms.erase(std::remove(comms.begin(), comms.end(), 0.0), comms.end());

  // Build the profile deck: one entry per (cpu, comm) pairing position so
  // that each cpu profile and each comm profile covers ~1/|set| of agents.
  std::vector<ResourceProfile> profiles(static_cast<size_t>(agents));
  std::vector<int64_t> order(static_cast<size_t>(agents));
  for (int64_t i = 0; i < agents; ++i) order[static_cast<size_t>(i)] = i;
  rng.shuffle(order);
  for (int64_t slot = 0; slot < agents; ++slot) {
    const auto a = static_cast<size_t>(order[static_cast<size_t>(slot)]);
    profiles[a].cpu = cpus[static_cast<size_t>(slot) % cpus.size()];
    // Decouple comm assignment from cpu assignment so all combinations occur.
    profiles[a].mbps =
        comms[static_cast<size_t>(rng.below(
            static_cast<int64_t>(comms.size())))];
  }
  return profiles;
}

void reshuffle_profiles(std::vector<ResourceProfile>& profiles,
                        double fraction, Rng& rng, bool allow_disconnected) {
  COMDML_CHECK(fraction >= 0.0 && fraction <= 1.0);
  if (profiles.empty()) return;
  const auto& cpus = standard_cpu_profiles();
  std::vector<double> comms = standard_comm_profiles();
  if (!allow_disconnected)
    comms.erase(std::remove(comms.begin(), comms.end(), 0.0), comms.end());

  const auto n = static_cast<int64_t>(profiles.size());
  const auto redraw = static_cast<int64_t>(fraction * static_cast<double>(n));
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng.shuffle(order);
  for (int64_t i = 0; i < redraw; ++i) {
    auto& p = profiles[static_cast<size_t>(order[static_cast<size_t>(i)])];
    p.cpu = cpus[static_cast<size_t>(rng.below(
        static_cast<int64_t>(cpus.size())))];
    p.mbps = comms[static_cast<size_t>(rng.below(
        static_cast<int64_t>(comms.size())))];
  }
}

double samples_per_sec(const ResourceProfile& profile,
                       double flops_per_sample) {
  COMDML_CHECK(flops_per_sample > 0.0);
  COMDML_CHECK(profile.cpu > 0.0);
  return profile.cpu * kReferenceFlopsPerSec / flops_per_sample;
}

}  // namespace comdml::sim
