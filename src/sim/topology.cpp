#include "sim/topology.hpp"

#include <algorithm>

namespace comdml::sim {

Topology::Topology(std::vector<ResourceProfile> profiles,
                   std::vector<std::vector<bool>> adjacency)
    : profiles_(std::move(profiles)), adjacency_(std::move(adjacency)) {
  COMDML_CHECK(profiles_.size() == adjacency_.size());
  for (const auto& row : adjacency_)
    COMDML_CHECK(row.size() == adjacency_.size());
}

Topology Topology::full_mesh(const std::vector<ResourceProfile>& profiles) {
  const size_t k = profiles.size();
  COMDML_CHECK(k > 0);
  std::vector<std::vector<bool>> adj(k, std::vector<bool>(k, true));
  for (size_t i = 0; i < k; ++i) adj[i][i] = false;
  return Topology(profiles, std::move(adj));
}

Topology Topology::random_graph(const std::vector<ResourceProfile>& profiles,
                                double p, Rng& rng) {
  COMDML_CHECK(p >= 0.0 && p <= 1.0);
  const size_t k = profiles.size();
  COMDML_CHECK(k > 0);
  std::vector<std::vector<bool>> adj(k, std::vector<bool>(k, false));
  for (size_t i = 0; i < k; ++i)
    for (size_t j = i + 1; j < k; ++j) {
      const bool present = rng.uniform() < p;
      adj[i][j] = present;
      adj[j][i] = present;
    }
  return Topology(profiles, std::move(adj));
}

Topology Topology::ring(const std::vector<ResourceProfile>& profiles) {
  const size_t k = profiles.size();
  COMDML_CHECK(k > 1);
  std::vector<std::vector<bool>> adj(k, std::vector<bool>(k, false));
  for (size_t i = 0; i < k; ++i) {
    const size_t next = (i + 1) % k;
    adj[i][next] = true;
    adj[next][i] = true;
  }
  return Topology(profiles, std::move(adj));
}

double Topology::bandwidth_mbps(int64_t i, int64_t j) const {
  COMDML_CHECK(i >= 0 && i < agents() && j >= 0 && j < agents());
  if (i == j) return 0.0;
  if (!adjacency_[static_cast<size_t>(i)][static_cast<size_t>(j)]) return 0.0;
  return std::min(profiles_[static_cast<size_t>(i)].mbps,
                  profiles_[static_cast<size_t>(j)].mbps);
}

std::vector<int64_t> Topology::neighbors(int64_t i) const {
  std::vector<int64_t> out;
  for (int64_t j = 0; j < agents(); ++j)
    if (linked(i, j)) out.push_back(j);
  return out;
}

bool Topology::is_connected() const {
  const int64_t k = agents();
  std::vector<bool> seen(static_cast<size_t>(k), false);
  std::vector<int64_t> stack{0};
  seen[0] = true;
  int64_t visited = 1;
  while (!stack.empty()) {
    const int64_t cur = stack.back();
    stack.pop_back();
    for (const int64_t nb : neighbors(cur)) {
      if (!seen[static_cast<size_t>(nb)]) {
        seen[static_cast<size_t>(nb)] = true;
        ++visited;
        stack.push_back(nb);
      }
    }
  }
  return visited == k;
}

double Topology::density() const {
  const int64_t k = agents();
  if (k < 2) return 0.0;
  int64_t present = 0;
  for (int64_t i = 0; i < k; ++i)
    for (int64_t j = i + 1; j < k; ++j)
      if (adjacency_[static_cast<size_t>(i)][static_cast<size_t>(j)])
        ++present;
  return static_cast<double>(present) /
         (static_cast<double>(k) * static_cast<double>(k - 1) / 2.0);
}

std::optional<double> Topology::min_link_bandwidth() const {
  std::optional<double> best;
  for (int64_t i = 0; i < agents(); ++i)
    for (int64_t j = i + 1; j < agents(); ++j) {
      const double bw = bandwidth_mbps(i, j);
      if (bw > 0.0 && (!best || bw < *best)) best = bw;
    }
  return best;
}

const ResourceProfile& Topology::profile(int64_t i) const {
  COMDML_CHECK(i >= 0 && i < agents());
  return profiles_[static_cast<size_t>(i)];
}

void Topology::set_profiles(std::vector<ResourceProfile> profiles) {
  COMDML_CHECK(profiles.size() == profiles_.size());
  profiles_ = std::move(profiles);
}

}  // namespace comdml::sim
