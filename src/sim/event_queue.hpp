// Discrete-event simulation kernel.
//
// A minimal but complete DES: events are (time, sequence, closure) tuples in
// a priority queue; ties break by insertion order so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "tensor/check.hpp"

namespace comdml::sim {

using EventFn = std::function<void()>;

/// Deterministic discrete-event scheduler.
class Simulator {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, EventFn fn);

  /// Schedule `fn` at absolute time `at` (must not be in the past).
  void schedule_at(double at, EventFn fn);

  /// Run events until the queue is empty or `until` is reached
  /// (events scheduled exactly at `until` are executed).
  /// Returns the number of events executed.
  size_t run(double until = kForever);

  /// True if no events remain.
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

  [[nodiscard]] size_t pending() const noexcept { return queue_.size(); }

  static constexpr double kForever = 1e300;

 private:
  struct Event {
    double time;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace comdml::sim
