// Heterogeneous agent resource profiles (paper §V-A).
//
// The paper simulates agents with CPU profiles {4, 2, 1, 0.5, 0.2} and
// communication profiles {0, 10, 20, 50, 100} Mbps; 20 % of agents receive
// each profile, and profiles of 20 % of the agents are re-drawn after round
// 100 to model dynamic environments.
#pragma once

#include <vector>

#include "tensor/random.hpp"

namespace comdml::sim {

using tensor::Rng;

/// Compute and uplink capability of one agent.
struct ResourceProfile {
  double cpu = 1.0;   ///< relative CPU share (1.0 = reference core)
  double mbps = 100;  ///< link speed; 0 means disconnected

  [[nodiscard]] bool connected() const noexcept { return mbps > 0.0; }
};

/// The paper's CPU profile set.
[[nodiscard]] const std::vector<double>& standard_cpu_profiles();

/// The paper's communication profile set (Mbps; 0 = disconnected).
[[nodiscard]] const std::vector<double>& standard_comm_profiles();

/// Reference training throughput: FLOP/s an agent with cpu = 1.0 sustains.
/// Only ratios matter for every reproduced result; the constant pins
/// absolute numbers to the same order of magnitude as the paper's testbed.
inline constexpr double kReferenceFlopsPerSec = 1.5e11;

/// Assign one profile per agent, dealing the profile grid round-robin after
/// a shuffle so each profile covers ~20 % of agents (paper §V-B-2).
/// Disconnected (0 Mbps) comm profiles are excluded unless
/// `allow_disconnected` — Table II/III fleets always communicate.
[[nodiscard]] std::vector<ResourceProfile> assign_profiles(
    int64_t agents, Rng& rng, bool allow_disconnected = false);

/// Re-draw the profiles of `fraction` of the agents (dynamic environment).
void reshuffle_profiles(std::vector<ResourceProfile>& profiles,
                        double fraction, Rng& rng,
                        bool allow_disconnected = false);

/// Training throughput in samples/sec for a model that costs
/// `flops_per_sample` (forward+backward) on an agent with `profile`.
[[nodiscard]] double samples_per_sec(const ResourceProfile& profile,
                                     double flops_per_sample);

}  // namespace comdml::sim
