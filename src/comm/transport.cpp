#include "comm/transport.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace comdml::comm {

namespace {

// Distinct streams per fault kind, mixed into the decision hash.
constexpr uint64_t kSaltDrop = 0xd6e8feb86659fd93ull;
constexpr uint64_t kSaltDelay = 0xa0761d6478bd642full;
constexpr uint64_t kSaltDelayDraw = 0xe7037ed1a0b428dbull;
constexpr uint64_t kSaltDuplicate = 0x8ebc6af09c88c6e3ull;
constexpr uint64_t kSaltCorrupt = 0x589965cc75374cc3ull;
constexpr uint64_t kSaltReorder = 0x1d8e4e27c47d124full;

/// splitmix64 finalizer: the avalanche stage that turns structured
/// (seed, step, edge, seq) tuples into uniform bits.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t message_hash(uint64_t seed, int64_t step, int64_t src, int64_t dst,
                      int64_t seq, uint64_t salt) {
  uint64_t h = mix64(seed ^ salt);
  h = mix64(h ^ static_cast<uint64_t>(step));
  h = mix64(h ^ (static_cast<uint64_t>(src) << 32) ^
            static_cast<uint64_t>(dst));
  return mix64(h ^ static_cast<uint64_t>(seq));
}

/// Top 53 bits as a uniform double in [0, 1).
double hash_uniform(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

// ---- LinkGrid ---------------------------------------------------------------

LinkGrid::LinkGrid(int64_t n, LinkModel fill)
    : n_(n), links_(static_cast<size_t>(n * n), fill) {
  COMDML_CHECK(n > 0);
  for (int64_t i = 0; i < n_; ++i)
    link(i, i) = LinkModel{0.0, fill.latency_sec};  // no self-links
}

LinkGrid LinkGrid::uniform(int64_t endpoints, double mbps,
                           double latency_sec) {
  COMDML_REQUIRE(mbps > 0.0, "unusable uniform link: " << mbps << " Mbps");
  COMDML_CHECK(latency_sec >= 0.0);
  return LinkGrid(endpoints, LinkModel{mbps, latency_sec});
}

LinkGrid LinkGrid::from_topology(const sim::Topology& topology,
                                 double latency_sec) {
  COMDML_CHECK(latency_sec >= 0.0);
  LinkGrid grid(topology.agents(), LinkModel{0.0, latency_sec});
  for (int64_t i = 0; i < topology.agents(); ++i)
    for (int64_t j = 0; j < topology.agents(); ++j)
      if (i != j)
        grid.link(i, j) =
            LinkModel{topology.bandwidth_mbps(i, j), latency_sec};
  return grid;
}

LinkGrid LinkGrid::star(const std::vector<double>& agent_mbps,
                        double latency_sec) {
  COMDML_CHECK(!agent_mbps.empty());
  COMDML_CHECK(latency_sec >= 0.0);
  const auto k = static_cast<int64_t>(agent_mbps.size());
  LinkGrid grid(k + 1, LinkModel{0.0, latency_sec});
  for (int64_t i = 0; i < k; ++i) {
    const LinkModel l{agent_mbps[static_cast<size_t>(i)], latency_sec};
    grid.link(i, k) = l;
    grid.link(k, i) = l;
  }
  return grid;
}

const LinkModel& LinkGrid::link(int64_t src, int64_t dst) const {
  COMDML_CHECK(src >= 0 && src < n_ && dst >= 0 && dst < n_);
  return links_[static_cast<size_t>(src * n_ + dst)];
}

LinkModel& LinkGrid::link(int64_t src, int64_t dst) {
  COMDML_CHECK(src >= 0 && src < n_ && dst >= 0 && dst < n_);
  return links_[static_cast<size_t>(src * n_ + dst)];
}

// ---- codecs -----------------------------------------------------------------

namespace {

class IdentityCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const override { return "fp32"; }
  [[nodiscard]] int64_t wire_bytes(int64_t elems,
                                   const double* /*data*/) const override {
    return fp32_wire_bytes(elems);
  }
};

}  // namespace

const Codec& identity_codec() {
  static const IdentityCodec codec;
  return codec;
}

int64_t QuantizingCodec::quantized_wire_bytes(int64_t elems) {
  COMDML_CHECK(elems >= 0);
  if (elems == 0) return 0;
  return static_cast<int64_t>(sizeof(float)) + elems;  // scale + 1 B/elem
}

int64_t QuantizingCodec::wire_bytes(int64_t elems,
                                    const double* /*data*/) const {
  // The wire format is dense, so the byte count never depends on the
  // payload — a timing-only estimate and an executed message charge the
  // same bytes by construction.
  return quantized_wire_bytes(elems);
}

void QuantizingCodec::transform(double* data, int64_t elems) const {
  if (elems == 0) return;
  // Symmetric int8 round trip: scale = max|v|/127, q = round(v/scale)
  // clamped to [-127, 127], v' = scale * q. The scale travels as fp32 (the
  // 4-byte header), so dequantization uses the wire-precision scale.
  double max_abs = 0.0;
  for (int64_t i = 0; i < elems; ++i)
    max_abs = std::max(max_abs, std::fabs(data[i]));
  if (max_abs == 0.0) return;  // all-zero payload is exact
  const float scale = static_cast<float>(max_abs / 127.0);
  // Degenerate dynamic ranges cannot ride the fp32 scale header: an
  // Inf/NaN element would turn every finite element into NaN (inv_scale
  // = 0, inf * 0), and a sub-fp32-normal range would map zeros through
  // 0 * inf. Ship such payloads unquantized (the wire charge is
  // data-independent either way) instead of poisoning the bucket — and,
  // under error feedback, the residual — with NaNs.
  if (!std::isfinite(scale) || scale < std::numeric_limits<float>::min())
    return;
  const double inv_scale = 1.0 / static_cast<double>(scale);
  for (int64_t i = 0; i < elems; ++i) {
    const double q = std::nearbyint(data[i] * inv_scale);
    data[i] = static_cast<double>(scale) *
              std::clamp(q, -127.0, 127.0);
  }
}

int64_t QuantizingCodec::encode(double* data, int64_t elems) const {
  transform(data, elems);
  return quantized_wire_bytes(elems);
}

const Codec& quantized_codec() {
  static const QuantizingCodec codec;
  return codec;
}

// ---- TransportStats ---------------------------------------------------------

int64_t TransportStats::max_bytes_sent() const {
  int64_t best = 0;
  for (const int64_t b : bytes_sent) best = std::max(best, b);
  return best;
}

double TransportStats::mean_bytes_sent() const {
  if (bytes_sent.empty()) return 0.0;
  double total = 0.0;
  for (const int64_t b : bytes_sent) total += static_cast<double>(b);
  return total / static_cast<double>(bytes_sent.size());
}

int64_t TransportStats::dropped_on(int64_t src, int64_t dst) const {
  const auto n = static_cast<int64_t>(bytes_sent.size());
  COMDML_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  return dropped_per_edge[static_cast<size_t>(src * n + dst)];
}

TransportStats merge_transport_stats(const std::vector<TransportStats>& parts) {
  COMDML_CHECK(!parts.empty());
  const size_t n = parts.front().bytes_sent.size();
  TransportStats merged;
  merged.bytes_sent.assign(n, 0);
  merged.bytes_received.assign(n, 0);
  merged.send_seconds.assign(n, 0.0);
  merged.recv_seconds.assign(n, 0.0);
  merged.dropped_per_edge.assign(n * n, 0);
  size_t rows = 0;
  for (const auto& p : parts) {
    COMDML_REQUIRE(p.bytes_sent.size() == n,
                   "merge_transport_stats over mismatched endpoint counts: "
                       << p.bytes_sent.size() << " vs " << n);
    merged.messages += p.messages;
    merged.dropped_messages += p.dropped_messages;
    merged.total_wire_bytes += p.total_wire_bytes;
    merged.retransmit_messages += p.retransmit_messages;
    merged.retransmit_wire_bytes += p.retransmit_wire_bytes;
    merged.duplicated_messages += p.duplicated_messages;
    merged.duplicated_wire_bytes += p.duplicated_wire_bytes;
    merged.corrupt_messages += p.corrupt_messages;
    merged.delayed_messages += p.delayed_messages;
    merged.reordered_messages += p.reordered_messages;
    merged.backoff_seconds += p.backoff_seconds;
    for (size_t i = 0; i < n; ++i) {
      merged.bytes_sent[i] += p.bytes_sent[i];
      merged.bytes_received[i] += p.bytes_received[i];
      merged.send_seconds[i] += p.send_seconds[i];
      merged.recv_seconds[i] += p.recv_seconds[i];
    }
    for (size_t i = 0; i < n * n; ++i)
      merged.dropped_per_edge[i] += p.dropped_per_edge[i];
    rows = std::max(rows, p.step_spans.size());
  }
  // Positional step merge: each process drove the same lockstep schedule,
  // so row i of every history is global step i. Within a step, messages
  // run concurrently — the merged span is the max — while the counts add.
  merged.step_spans.assign(rows, 0.0);
  merged.step_message_counts.assign(rows, 0);
  for (const auto& p : parts)
    for (size_t i = 0; i < p.step_spans.size(); ++i) {
      merged.step_spans[i] = std::max(merged.step_spans[i], p.step_spans[i]);
      merged.step_message_counts[i] += p.step_message_counts[i];
    }
  merged.seconds = merged.backoff_seconds;
  for (size_t i = 0; i < rows; ++i) {
    if (merged.step_message_counts[i] == 0) continue;
    ++merged.steps;
    merged.seconds += merged.step_spans[i];
  }
  return merged;
}

// ---- Message ----------------------------------------------------------------

bool Message::intact() const {
  if (corrupted) return false;
  if (!has_payload()) return true;
  return checksum ==
         tensor::fnv1a(payload.data(), payload.size() * sizeof(double));
}

// ---- Transport --------------------------------------------------------------

Transport::Transport(LinkGrid grid, const Codec* codec, FaultPlan faults)
    : grid_(std::move(grid)),
      codec_(codec != nullptr ? codec : &identity_codec()),
      faults_(std::move(faults)),
      fault_rng_(faults_.seed),
      mailboxes_(static_cast<size_t>(grid_.endpoints())) {
  COMDML_CHECK(faults_.drop_prob >= 0.0 && faults_.drop_prob <= 1.0);
  const auto n = static_cast<size_t>(grid_.endpoints());
  for (const auto& f : faults_.endpoint_failures) {
    COMDML_REQUIRE(f.endpoint >= 0 && f.endpoint < grid_.endpoints(),
                   "endpoint failure targets endpoint " << f.endpoint
                                                        << " of " << n);
    COMDML_CHECK(f.after_steps >= 0);
  }
  for (const auto& mf : faults_.message_faults) {
    COMDML_CHECK(mf.src >= -1 && mf.src < grid_.endpoints());
    COMDML_CHECK(mf.dst >= -1 && mf.dst < grid_.endpoints());
    COMDML_CHECK(mf.first_step >= 0);
    COMDML_CHECK(mf.last_step >= -1);
    COMDML_CHECK(mf.delay_steps_max >= 1);
    for (const double p : {mf.drop_prob, mf.delay_prob, mf.duplicate_prob,
                           mf.corrupt_prob, mf.reorder_prob})
      COMDML_CHECK(p >= 0.0 && p <= 1.0);
  }
  manual_dead_.assign(n, 0);
  next_seq_.assign(n * n, 0);
  stats_.bytes_sent.assign(n, 0);
  stats_.bytes_received.assign(n, 0);
  stats_.send_seconds.assign(n, 0.0);
  stats_.recv_seconds.assign(n, 0.0);
  stats_.dropped_per_edge.assign(n * n, 0);
}

bool Transport::dead_locked(int64_t endpoint) const {
  if (manual_dead_[static_cast<size_t>(endpoint)] != 0) return true;
  for (const auto& f : faults_.endpoint_failures)
    if (f.endpoint == endpoint && stats_.steps >= f.after_steps) return true;
  return false;
}

const FaultPlan::MessageFault* Transport::message_fault_locked(
    int64_t src, int64_t dst) const {
  for (const auto& mf : faults_.message_faults) {
    if (mf.src != -1 && mf.src != src) continue;
    if (mf.dst != -1 && mf.dst != dst) continue;
    if (stats_.steps < mf.first_step) continue;
    if (mf.last_step != -1 && stats_.steps > mf.last_step) continue;
    return &mf;
  }
  return nullptr;
}

bool Transport::fault_fires_locked(double prob, int64_t src, int64_t dst,
                                   int64_t seq, uint64_t salt) const {
  if (prob <= 0.0) return false;
  const uint64_t h =
      message_hash(faults_.seed, stats_.steps, src, dst, seq, salt);
  return hash_uniform(h) < prob;
}

void Transport::fail_endpoint(int64_t endpoint) {
  COMDML_CHECK(endpoint >= 0 && endpoint < endpoints());
  std::lock_guard<std::mutex> guard(mutex_);
  manual_dead_[static_cast<size_t>(endpoint)] = 1;
}

void Transport::revive_endpoint(int64_t endpoint) {
  COMDML_CHECK(endpoint >= 0 && endpoint < endpoints());
  std::lock_guard<std::mutex> guard(mutex_);
  manual_dead_[static_cast<size_t>(endpoint)] = 0;
  auto& fs = faults_.endpoint_failures;
  fs.erase(std::remove_if(fs.begin(), fs.end(),
                          [endpoint](const FaultPlan::EndpointFailure& f) {
                            return f.endpoint == endpoint;
                          }),
           fs.end());
}

void Transport::schedule_endpoint_failure(int64_t endpoint,
                                          int64_t after_steps) {
  COMDML_CHECK(endpoint >= 0 && endpoint < endpoints());
  COMDML_CHECK(after_steps >= 0);
  std::lock_guard<std::mutex> guard(mutex_);
  faults_.endpoint_failures.push_back({endpoint, after_steps});
}

void Transport::clear_endpoint_failures() {
  std::lock_guard<std::mutex> guard(mutex_);
  std::fill(manual_dead_.begin(), manual_dead_.end(), 0);
  faults_.endpoint_failures.clear();
}

bool Transport::endpoint_alive(int64_t endpoint) const {
  COMDML_CHECK(endpoint >= 0 && endpoint < endpoints());
  std::lock_guard<std::mutex> guard(mutex_);
  return !dead_locked(endpoint);
}

std::vector<int64_t> Transport::live_endpoints() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<int64_t> out;
  for (int64_t e = 0; e < endpoints(); ++e)
    if (!dead_locked(e)) out.push_back(e);
  return out;
}

bool Transport::has_endpoint_faults() const {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!faults_.endpoint_failures.empty()) return true;
  for (const char d : manual_dead_)
    if (d != 0) return true;
  return false;
}

bool Transport::has_message_faults() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return faults_.drop_prob > 0.0 || !faults_.message_faults.empty();
}

void Transport::clear_pending() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& box : mailboxes_) box.clear();
}

std::vector<int64_t> Transport::neighbors(int64_t i) const {
  COMDML_CHECK(i >= 0 && i < endpoints());
  std::vector<int64_t> out;
  for (int64_t j = 0; j < endpoints(); ++j)
    if (j != i && linked(i, j)) out.push_back(j);
  return out;
}

int64_t Transport::send(int64_t src, int64_t dst, int64_t elems,
                        const double* data) {
  return send(src, dst, elems, data, SendOptions{});
}

int64_t Transport::send(int64_t src, int64_t dst, int64_t elems,
                        const double* data, const SendOptions& opts) {
  COMDML_CHECK(elems >= 0);
  COMDML_CHECK(src != dst);
  const LinkModel& link = grid_.link(src, dst);
  COMDML_REQUIRE(link.usable(),
                 "send over unusable link " << src << " -> " << dst);
  // Payload-moving sends encode the copy once (measure + lossy round trip
  // in one codec pass); timing-only sends just measure.
  std::vector<double> payload;
  int64_t wire = 0;
  if (delivers_payload() && data != nullptr && elems > 0) {
    payload.assign(data, data + elems);
    wire = codec_->encode(payload.data(), elems);
  } else {
    wire = codec_->wire_bytes(elems, data);
  }
  const double span = transfer_seconds(wire, link.mbps, link.latency_sec);
  const bool local = local_endpoint(dst);

  // Remote frames are shipped after the lock is released: wire writes must
  // not serialize local accounting, and forward_remote may block.
  std::vector<RemoteFrame> outbound;
  int64_t seq = -1;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    // Dead endpoints fail fast *before* accounting: a dead sender cannot
    // occupy its link, and a send to a dead receiver is detected by the
    // (modeled) connection teardown. Both transport flavors see the same
    // step counter, so they raise at the same schedule point.
    if (dead_locked(src))
      throw EndpointDownError(src, "send from dead endpoint " +
                                       std::to_string(src));
    if (dead_locked(dst))
      throw EndpointDownError(dst, "send to dead endpoint " +
                                       std::to_string(dst));
    const size_t edge = static_cast<size_t>(src * endpoints() + dst);
    seq = opts.seq >= 0 ? opts.seq : next_seq_[edge]++;
    ++stats_.messages;
    ++step_messages_;
    stats_.total_wire_bytes += wire;
    stats_.bytes_sent[static_cast<size_t>(src)] += wire;
    stats_.send_seconds[static_cast<size_t>(src)] += span;
    step_span_ = std::max(step_span_, span);
    if (opts.retransmit) {
      ++stats_.retransmit_messages;
      stats_.retransmit_wire_bytes += wire;
    }

    // Fault decisions. The global drop stream is drawn first (keeps the
    // legacy per-transport RNG sequence stable); everything else is a pure
    // hash of (seed, step, edge, seq), identical across transport flavors.
    const bool rng_dropped =
        faults_.drop_prob > 0.0 &&
        static_cast<double>(fault_rng_.uniform()) < faults_.drop_prob;
    const FaultPlan::MessageFault* mf = message_fault_locked(src, dst);
    const bool dropped =
        rng_dropped ||
        (mf != nullptr &&
         fault_fires_locked(mf->drop_prob, src, dst, seq, kSaltDrop));
    // Does a later NACK need the pre-codec payload? (unlocked read of the
    // fault config — it's immutable after construction for message faults)
    const bool parkable =
        !local && data != nullptr && elems > 0 &&
        (faults_.drop_prob > 0.0 || !faults_.message_faults.empty());
    if (dropped) {
      ++stats_.dropped_messages;
      ++stats_.dropped_per_edge[edge];
      if (local || !parkable)
        return seq;  // the sender's link was busy, but nothing arrives
      // Remote drop: forward a parked-only frame so the backend can serve
      // a retransmission NACK from the original payload.
    } else if (local) {
      stats_.bytes_received[static_cast<size_t>(dst)] += wire;
      stats_.recv_seconds[static_cast<size_t>(dst)] += span;
    }

    Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.elems = elems;
    msg.wire_bytes = wire;
    msg.seq = seq;
    msg.retransmit = opts.retransmit;
    if (!payload.empty())
      msg.checksum =
          tensor::fnv1a(payload.data(), payload.size() * sizeof(double));
    msg.payload = std::move(payload);

    bool duplicate = false;
    bool reorder = false;
    if (!dropped && mf != nullptr) {
      if (elems > 0 &&
          fault_fires_locked(mf->corrupt_prob, src, dst, seq, kSaltCorrupt)) {
        // Flip one payload bit so the checksum catches it; timing-only
        // messages carry the flag alone, keeping Sim/InProc decisions equal.
        msg.corrupted = true;
        if (msg.has_payload()) {
          uint64_t bits;
          std::memcpy(&bits, msg.payload.data(), sizeof(bits));
          bits ^= 1ull;
          std::memcpy(msg.payload.data(), &bits, sizeof(bits));
        }
        ++stats_.corrupt_messages;
      }
      if (fault_fires_locked(mf->delay_prob, src, dst, seq, kSaltDelay)) {
        // Normal delivery is visible once this step closes (steps + 1); a
        // delay adds 1..delay_steps_max more closed steps on top.
        const uint64_t draw = message_hash(faults_.seed, stats_.steps, src,
                                           dst, seq, kSaltDelayDraw);
        const int64_t extra =
            1 + static_cast<int64_t>(
                    draw % static_cast<uint64_t>(mf->delay_steps_max));
        msg.deliver_after_step = stats_.steps + 1 + extra;
        ++stats_.delayed_messages;
      }
      duplicate = fault_fires_locked(mf->duplicate_prob, src, dst, seq,
                                     kSaltDuplicate);
      reorder =
          fault_fires_locked(mf->reorder_prob, src, dst, seq, kSaltReorder);
    }

    if (!dropped && duplicate) {
      // The copy really crossed the wire: charge its bytes everywhere, but
      // tagged as duplicated so goodput accounting can subtract them.
      // Remote destinations charge bytes_received on arrival instead.
      ++stats_.duplicated_messages;
      stats_.duplicated_wire_bytes += wire;
      stats_.total_wire_bytes += wire;
      stats_.bytes_sent[static_cast<size_t>(src)] += wire;
      if (local) stats_.bytes_received[static_cast<size_t>(dst)] += wire;
    }
    if (local) {
      auto& box = mailboxes_[static_cast<size_t>(dst)];
      Message copy;
      if (duplicate) copy = msg;
      if (reorder) {
        ++stats_.reordered_messages;
        box.push_front(std::move(msg));
      } else {
        box.push_back(std::move(msg));
      }
      if (duplicate) box.push_back(std::move(copy));
      return seq;
    }
    if (reorder) ++stats_.reordered_messages;

    RemoteFrame frame;
    frame.span = span;
    frame.reorder = reorder;
    frame.dropped = dropped;
    if (parkable) frame.original.assign(data, data + elems);
    if (duplicate) {
      RemoteFrame copy;
      copy.msg = msg;
      copy.span = span;
      copy.dup_copy = true;
      frame.msg = std::move(msg);
      outbound.push_back(std::move(frame));
      outbound.push_back(std::move(copy));
    } else {
      frame.msg = std::move(msg);
      outbound.push_back(std::move(frame));
    }
  }
  for (auto& frame : outbound) forward_remote(std::move(frame));
  return seq;
}

void Transport::forward_remote(RemoteFrame&& frame) {
  COMDML_REQUIRE(false, "in-process transport asked to forward "
                            << frame.msg.src << " -> " << frame.msg.dst
                            << " to a remote process (local_endpoint "
                               "override without forward_remote)");
}

void Transport::inject_remote(RemoteFrame&& frame) {
  const int64_t dst = frame.msg.dst;
  COMDML_CHECK(dst >= 0 && dst < endpoints());
  std::lock_guard<std::mutex> guard(mutex_);
  // The receiving half of the accounting send() skipped for a remote
  // destination. A duplicate copy's bytes crossed the wire but its span
  // does not advance the clock (same split as the in-process path).
  stats_.bytes_received[static_cast<size_t>(dst)] += frame.msg.wire_bytes;
  if (!frame.dup_copy)
    stats_.recv_seconds[static_cast<size_t>(dst)] += frame.span;
  auto& box = mailboxes_[static_cast<size_t>(dst)];
  if (frame.reorder) {
    box.push_front(std::move(frame.msg));
  } else {
    box.push_back(std::move(frame.msg));
  }
}

bool Transport::nack(int64_t /*src*/, int64_t /*dst*/,
                     int64_t /*last_delivered_seq*/) {
  return false;  // no remote senders in-process; the caller retransmits
}

Message Transport::recv(int64_t dst, int64_t src) {
  COMDML_CHECK(dst >= 0 && dst < endpoints());
  std::lock_guard<std::mutex> guard(mutex_);
  if (dead_locked(dst))
    throw EndpointDownError(dst, "recv at dead endpoint " +
                                     std::to_string(dst));
  auto& box = mailboxes_[static_cast<size_t>(dst)];
  for (auto it = box.begin(); it != box.end(); ++it) {
    if (it->src != src || !mature_locked(*it)) continue;
    Message msg = std::move(*it);
    box.erase(it);
    return msg;
  }
  // Nothing delivered: a dead peer is a typed, recoverable condition (the
  // message will never arrive); anything else is the usual schedule bug /
  // message-loss failure.
  if (dead_locked(src))
    throw EndpointDownError(src, "recv from dead endpoint " +
                                     std::to_string(src));
  COMDML_REQUIRE(false, "no in-flight message " << src << " -> " << dst
                                                << " (schedule bug, or a "
                                                   "dropped/delayed message "
                                                   "under fault injection)");
  return {};
}

std::optional<Message> Transport::try_recv_from(int64_t dst, int64_t src) {
  COMDML_CHECK(dst >= 0 && dst < endpoints());
  COMDML_CHECK(src >= 0 && src < endpoints());
  std::lock_guard<std::mutex> guard(mutex_);
  if (dead_locked(dst))
    throw EndpointDownError(dst, "recv at dead endpoint " +
                                     std::to_string(dst));
  auto& box = mailboxes_[static_cast<size_t>(dst)];
  for (auto it = box.begin(); it != box.end(); ++it) {
    if (it->src != src || !mature_locked(*it)) continue;
    Message msg = std::move(*it);
    box.erase(it);
    return msg;
  }
  if (dead_locked(src))
    throw EndpointDownError(src, "recv from dead endpoint " +
                                     std::to_string(src));
  return std::nullopt;
}

std::optional<Message> Transport::try_recv(int64_t dst) {
  COMDML_CHECK(dst >= 0 && dst < endpoints());
  std::lock_guard<std::mutex> guard(mutex_);
  auto& box = mailboxes_[static_cast<size_t>(dst)];
  for (auto it = box.begin(); it != box.end(); ++it) {
    if (!mature_locked(*it)) continue;
    Message msg = std::move(*it);
    box.erase(it);
    return msg;
  }
  return std::nullopt;
}

void Transport::charge_backoff(double seconds) {
  COMDML_CHECK(seconds >= 0.0);
  std::lock_guard<std::mutex> guard(mutex_);
  stats_.seconds += seconds;
  stats_.backoff_seconds += seconds;
}

void Transport::end_step() {
  std::lock_guard<std::mutex> guard(mutex_);
  // The positional history records every closed step — a process whose
  // endpoints only receive during a step still appends a 0/0 row, which is
  // what keeps index i meaning "global step i" across the processes of a
  // multi-process run (merge_transport_stats folds rows positionally).
  stats_.step_spans.push_back(step_span_);
  stats_.step_message_counts.push_back(step_messages_);
  if (step_messages_ == 0) {
    step_span_ = 0.0;
    return;
  }
  ++stats_.steps;
  stats_.seconds += step_span_;
  step_span_ = 0.0;
  step_messages_ = 0;
}

void Transport::reset() {
  std::lock_guard<std::mutex> guard(mutex_);
  const auto n = static_cast<size_t>(grid_.endpoints());
  stats_ = TransportStats{};
  stats_.bytes_sent.assign(n, 0);
  stats_.bytes_received.assign(n, 0);
  stats_.send_seconds.assign(n, 0.0);
  stats_.recv_seconds.assign(n, 0.0);
  stats_.dropped_per_edge.assign(n * n, 0);
  step_span_ = 0.0;
  step_messages_ = 0;
  std::fill(next_seq_.begin(), next_seq_.end(), 0);
  for (auto& box : mailboxes_) box.clear();
}

}  // namespace comdml::comm
