// Decentralized AllReduce (paper §IV-B).
//
// Two bandwidth-optimal algorithms:
//  - ring (Goyal et al. [34]):          2(K-1) steps, 2(K-1)/K * b bytes/agent
//  - recursive halving/doubling [35]:   2 log2 K steps, 2(K-1)/K * b bytes/agent
// The paper picks halving/doubling for large K because of its O(log K) step
// count.
//
// Both algorithms live in comm/collective.hpp as transport-generic
// protocols: the analytic cost (SimTransport) and the executed real
// collective (InProcTransport) are literally the same schedule. The
// functions here are the byte/tensor-level entry points fleets use —
// `allreduce_cost` and `allreduce_average` keep their historical
// signatures as thin wrappers over that substrate.
#pragma once

#include <vector>

#include "comm/collective.hpp"
#include "comm/link.hpp"
#include "tensor/tensor.hpp"

namespace comdml::comm {

using tensor::Tensor;

enum class AllReduceAlgo { kRing, kHalvingDoubling };

/// Collective-registry protocol implementing an AllReduce algorithm.
[[nodiscard]] Protocol allreduce_protocol(AllReduceAlgo algo);

/// Analytic cost of one AllReduce over K agents moving a `model_bytes`
/// model with the slowest participating link at `bottleneck_mbps`
/// (a SimTransport run of the real message schedule over a uniform grid).
struct CollectiveCost {
  double seconds = 0.0;
  int64_t steps = 0;
  int64_t bytes_per_agent = 0;  ///< max bytes any one agent sends
};

[[nodiscard]] CollectiveCost allreduce_cost(
    int64_t agents, int64_t model_bytes, double bottleneck_mbps,
    AllReduceAlgo algo = AllReduceAlgo::kHalvingDoubling,
    double latency_sec = kDefaultLatencySec);

/// Execution trace of a real collective (for validating the cost model).
struct AllReduceTrace {
  int64_t steps = 0;
  std::vector<int64_t> bytes_sent;  ///< per agent
};

/// Executed collective plus its modeled clock, over an explicit link grid.
struct AllReduceOutcome {
  AllReduceTrace trace;
  CollectiveCost cost;  ///< modeled seconds/steps/max-bytes of the same run
};

/// In-place averaging of per-agent state snapshots over an
/// InProcTransport on `grid`, executed with the real message schedule of
/// the chosen algorithm. All agents must hold structurally identical
/// state lists.
AllReduceOutcome allreduce_average_over(
    std::vector<std::vector<Tensor>>& agent_states, const LinkGrid& grid,
    AllReduceAlgo algo = AllReduceAlgo::kHalvingDoubling);

/// Historical entry point: averaging over an implicit uniform 100 Mbps
/// grid; returns only the traffic trace.
AllReduceTrace allreduce_average(
    std::vector<std::vector<Tensor>>& agent_states,
    AllReduceAlgo algo = AllReduceAlgo::kHalvingDoubling);

/// Plain arithmetic mean across agents (reference for tests; no traffic).
[[nodiscard]] std::vector<Tensor> mean_state(
    const std::vector<std::vector<Tensor>>& agent_states);

/// Weighted mean with per-agent weights (FedAvg-style N_i/N weighting).
[[nodiscard]] std::vector<Tensor> weighted_mean_state(
    const std::vector<std::vector<Tensor>>& agent_states,
    const std::vector<double>& weights);

/// Total fp32 elements across one agent's state tensors.
[[nodiscard]] int64_t state_elems(const std::vector<Tensor>& state);

/// Flatten a state list into `out` (fp64 accumulator layout) and back.
void flatten_state(const std::vector<Tensor>& state, double* out);
void unflatten_state(const double* flat, std::vector<Tensor>& state);

}  // namespace comdml::comm
