// Decentralized AllReduce (paper §IV-B).
//
// Two bandwidth-optimal algorithms:
//  - ring (Goyal et al. [34]):          2(K-1) steps, 2(K-1)/K * b bytes/agent
//  - recursive halving/doubling [35]:   2 log2 K steps, 2(K-1)/K * b bytes/agent
// The paper picks halving/doubling for large K because of its O(log K) step
// count. Both are provided as (a) an analytic cost model used by the timing
// simulator and (b) a real message-level implementation that averages actual
// agent states and accounts every byte, so tests can check the cost model
// against executed traffic.
#pragma once

#include <vector>

#include "comm/link.hpp"
#include "tensor/tensor.hpp"

namespace comdml::comm {

using tensor::Tensor;

enum class AllReduceAlgo { kRing, kHalvingDoubling };

/// Analytic cost of one AllReduce over K agents moving a `model_bytes`
/// model with the slowest participating link at `bottleneck_mbps`.
struct CollectiveCost {
  double seconds = 0.0;
  int64_t steps = 0;
  int64_t bytes_per_agent = 0;  ///< bytes each agent sends (= receives)
};

[[nodiscard]] CollectiveCost allreduce_cost(
    int64_t agents, int64_t model_bytes, double bottleneck_mbps,
    AllReduceAlgo algo = AllReduceAlgo::kHalvingDoubling,
    double latency_sec = kDefaultLatencySec);

/// Execution trace of a real collective (for validating the cost model).
struct AllReduceTrace {
  int64_t steps = 0;
  std::vector<int64_t> bytes_sent;  ///< per agent
};

/// In-place averaging of per-agent state snapshots, executed with the real
/// message schedule of the chosen algorithm. All agents must hold
/// structurally identical state lists. Returns the traffic trace.
AllReduceTrace allreduce_average(
    std::vector<std::vector<Tensor>>& agent_states,
    AllReduceAlgo algo = AllReduceAlgo::kHalvingDoubling);

/// Plain arithmetic mean across agents (reference for tests; no traffic).
[[nodiscard]] std::vector<Tensor> mean_state(
    const std::vector<std::vector<Tensor>>& agent_states);

/// Weighted mean with per-agent weights (FedAvg-style N_i/N weighting).
[[nodiscard]] std::vector<Tensor> weighted_mean_state(
    const std::vector<std::vector<Tensor>>& agent_states,
    const std::vector<double>& weights);

}  // namespace comdml::comm
