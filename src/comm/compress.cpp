#include "comm/compress.hpp"

#include <algorithm>
#include <cmath>

namespace comdml::comm {

int64_t CompressedActivations::wire_bytes() const {
  // Header: rank + dims + scale; then presence bitmask and value stream.
  return static_cast<int64_t>(sizeof(uint32_t) +
                              shape.size() * sizeof(int64_t) +
                              sizeof(float) + runs.size() + values.size());
}

CompressedActivations compress_activations(const Tensor& t) {
  CompressedActivations out;
  out.shape = t.shape();
  const auto flat = t.flat();

  // Pass 1: max for the quantization scale, plus the positive count so
  // the value stream is sized exactly once (no push_back reallocation).
  float max_val = 0.0f;
  size_t n_pos = 0;
  for (const float v : flat) {
    max_val = std::max(max_val, v);
    n_pos += v > 0.0f ? 1 : 0;
  }
  out.scale = max_val > 0.0f ? max_val / 255.0f : 1.0f;
  const float inv_scale = 1.0f / out.scale;

  // Pass 2, branch-free: presence bitmask (1 bit/element, stored in
  // `runs`) + one int8 per present element. A value is "present" if it
  // quantizes to a non-zero level — sub-resolution positives are dropped
  // like zeros. Each element unconditionally writes its clamped level at
  // the stream cursor and advances the cursor by the presence bit
  // (compaction without a branch); the extra slot absorbs the write of a
  // trailing absent element.
  out.runs.resize((flat.size() + 7) / 8);
  out.values.resize(n_pos + 1);
  size_t vi = 0;
  for (size_t byte = 0; byte < out.runs.size(); ++byte) {
    const size_t i0 = byte * 8;
    const size_t lanes = std::min<size_t>(8, flat.size() - i0);
    uint8_t mask = 0;
    for (size_t b = 0; b < lanes; ++b) {
      const float q = std::round(flat[i0 + b] * inv_scale);
      const bool present = q >= 1.0f;  // implies flat[i] > 0
      mask |= static_cast<uint8_t>(present) << b;
      out.values[vi] = static_cast<uint8_t>(std::clamp(q, 1.0f, 255.0f));
      vi += present;
    }
    out.runs[byte] = mask;
  }
  out.values.resize(vi);  // shrink, never reallocates
  return out;
}

Tensor decompress_activations(const CompressedActivations& c) {
  Tensor out(c.shape);
  auto flat = out.flat();
  COMDML_REQUIRE(c.runs.size() == (flat.size() + 7) / 8,
                 "corrupt activation stream: bitmask size "
                     << c.runs.size() << " for " << flat.size()
                     << " elements");
  size_t vi = 0;
  for (size_t i = 0; i < flat.size(); ++i) {
    if (!(c.runs[i / 8] & (1u << (i % 8)))) continue;
    COMDML_REQUIRE(vi < c.values.size(),
                   "corrupt activation stream: value underrun at " << i);
    flat[i] = c.scale * static_cast<float>(c.values[vi++]);
  }
  COMDML_REQUIRE(vi == c.values.size(),
                 "corrupt activation stream: " << c.values.size() - vi
                                               << " trailing values");
  return out;
}

double compression_ratio(const Tensor& t) {
  const auto c = compress_activations(t);
  return static_cast<double>(t.nbytes()) /
         static_cast<double>(c.wire_bytes());
}

double reconstruction_error(const Tensor& t) {
  const Tensor back = decompress_activations(compress_activations(t));
  double worst = 0.0;
  auto a = t.flat();
  auto b = back.flat();
  for (size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst,
                     static_cast<double>(std::fabs(std::max(a[i], 0.0f) -
                                                   b[i])));
  return worst;
}

}  // namespace comdml::comm
