// Transport-generic collectives (one implementation per protocol family).
//
// Each protocol the repo models — decentralized AllReduce (§IV-B, ring and
// recursive halving/doubling), gossip exchange (Hegedus et al. [11]), and
// the central parameter-server round (FedAvg/FedProx baselines) — is
// written exactly once against comm::Transport. Run it over a SimTransport
// and you get the analytic cost (seconds / steps / bytes per agent); run
// the identical schedule over an InProcTransport with real buffers and the
// payloads move too. Predicted and executed traffic are the same code
// path, so the old per-protocol cost-vs-trace checks collapse into one
// parity test per protocol (tests/transport_test.cpp).
//
// Protocols are looked up through a small registry (by Protocol enum or by
// name) so fleets, benches, and future backends select collectives as
// interchangeable strategies instead of hard-coding free functions.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "comm/transport.hpp"

namespace comdml::comm {

class ReliableChannel;

enum class Protocol {
  kRingAllReduce,
  kHalvingDoublingAllReduce,
  kGossip,
  kParamServer,
};

/// One collective invocation over a transport.
struct CollectiveRequest {
  /// Per-agent payload size in fp32 wire elements.
  int64_t elems = 0;
  /// One fp64 buffer of `elems` per agent endpoint; empty for timing-only
  /// runs (the schedule and accounting are identical either way).
  std::vector<double*> buffers;
  /// Aggregation weights parallel to `participants` (param-server;
  /// empty = uniform).
  std::vector<double> weights;
  /// Selected agents (param-server; empty = every agent endpoint).
  std::vector<int64_t> participants;
  /// Randomness for randomized protocols (gossip partner draw). The draw
  /// sequence is identical with and without buffers, so a timing-only run
  /// with an equally-seeded Rng predicts the executed schedule exactly.
  tensor::Rng* rng = nullptr;
};

struct CollectiveReport {
  /// Accounting snapshot of the transport after the run.
  TransportStats transport;
  /// Chosen partner per agent (gossip only; empty otherwise).
  std::vector<std::optional<int64_t>> partners;
  /// Completed mid-collective recovery cycles (endpoint deaths survived).
  int64_t recoveries = 0;
};

class Collective {
 public:
  virtual ~Collective() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual CollectiveReport run(Transport& transport,
                               const CollectiveRequest& request) const = 0;
};

// ---- stepped schedules / non-blocking collectives ---------------------------

/// Contiguous element range of a collective payload.
struct Span {
  int64_t begin = 0;
  int64_t end = 0;
  [[nodiscard]] int64_t size() const noexcept { return end - begin; }
};

/// One synchronous exchange step of a stepped collective: every send in the
/// step is posted, the transport step closes (modeled span = slowest
/// message), then each receive folds its payload into the destination
/// buffer (accumulate) or overwrites it (gather).
struct ScheduleStep {
  struct Send {
    int64_t src = 0;
    int64_t dst = 0;
    Span span;
  };
  struct Recv {
    int64_t dst = 0;
    int64_t src = 0;
    Span span;
    bool accumulate = false;
  };
  std::vector<Send> sends;
  std::vector<Recv> recvs;
};

/// The full message schedule of a deterministic stepped protocol. Both the
/// blocking Collective::run and the non-blocking AsyncCollective execute
/// this same object, so predicted and executed traffic cannot drift no
/// matter which driver runs it.
struct SteppedSchedule {
  std::vector<ScheduleStep> steps;
  /// Scale every buffer by 1/|participants| after the last step
  /// (sum -> mean).
  bool scale_to_mean = false;
  /// Endpoints the schedule runs over, ascending; empty = every endpoint
  /// of the transport. Survivor schedules built by
  /// allreduce_schedule_over() fill this so the final mean divides by the
  /// live-set size, not the transport width.
  std::vector<int64_t> participants;
};

/// Schedule of an AllReduce protocol (kRingAllReduce or
/// kHalvingDoublingAllReduce) over `agents` endpoints moving `elems`
/// fp32-wire elements per agent. Throws for protocols without a stepped
/// schedule (gossip's fan-in is data-dependent; param_server needs the
/// star's server endpoint).
[[nodiscard]] SteppedSchedule allreduce_schedule(Protocol protocol,
                                                 int64_t agents,
                                                 int64_t elems);

/// Same schedule, re-formed over an explicit subset of endpoints
/// (ascending, unique): the protocol runs over |participants| virtual
/// ranks remapped onto the given endpoint ids, and the final scaling
/// averages over the live set only. The message pattern and merge order
/// are exactly those of a from-scratch |participants|-agent run, so the
/// recovered mean is bit-identical to rerunning the collective over just
/// the survivors.
[[nodiscard]] SteppedSchedule allreduce_schedule_over(
    Protocol protocol, const std::vector<int64_t>& participants,
    int64_t elems);

/// Execute a stepped schedule from one process of a multi-process run.
/// `owned[e] != 0` marks the endpoints this process hosts: only sends
/// whose src is owned are posted and only recvs whose dst is owned are
/// folded (the transport blocks until the remote frame arrives), but every
/// schedule step still closes one transport step so the per-process step
/// histories stay positionally aligned for merge_transport_stats(). The
/// final sum -> mean scaling runs over owned participants only. With every
/// endpoint owned this is exactly the blocking single-process execution:
/// same sends, same merge order, bit-identical buffers.
void execute_schedule_owned(const SteppedSchedule& sched, Transport& t,
                            const CollectiveRequest& req,
                            const std::vector<char>& owned);

/// Non-blocking stepped collective: construction starts the operation (no
/// traffic yet), each poll() executes exactly one schedule step over the
/// transport, wait() drives it to completion. This is what lets a bucket
/// collective run concurrently with compute: a driver thread polls
/// in-flight buckets while training produces the next one. One
/// AsyncCollective must only be polled from one thread at a time; distinct
/// AsyncCollectives over distinct transports are independent.
class AsyncCollective {
 public:
  /// `transport` and the request's buffers must outlive the operation.
  /// kGossip and kParamServer have no stepped schedule (data-dependent
  /// fan-in / star geometry); they run as one-shot operations whose single
  /// poll() executes the whole (recoverable, reliable) protocol, so every
  /// registered protocol drives through this one interface.
  AsyncCollective(Protocol protocol, Transport& transport,
                  CollectiveRequest request);
  /// Borrow a prebuilt schedule (must outlive the operation and match the
  /// transport's endpoints / the request's elems) — repeated collectives
  /// over the same geometry (the round pipeline's per-bucket allreduces)
  /// build their schedules once instead of once per round.
  AsyncCollective(const SteppedSchedule& schedule, Transport& transport,
                  CollectiveRequest request);
  ~AsyncCollective();

  // Non-copyable/movable: schedule_ may point at this object's own
  // owned_ schedule, which a copy or move would leave dangling.
  AsyncCollective(const AsyncCollective&) = delete;
  AsyncCollective& operator=(const AsyncCollective&) = delete;

  [[nodiscard]] bool done() const noexcept {
    if (one_shot_.has_value()) return one_shot_done_;
    return next_step_ >= schedule_->steps.size();
  }
  /// Executes the next schedule step (and the final mean scaling after the
  /// last one); returns done(). With recovery armed, an EndpointDownError
  /// from the transport re-forms the schedule around the survivors instead
  /// of propagating (see enable_recovery()), and a DeliveryTimeoutError
  /// (an unresponsive peer under message faults) declares that peer dead
  /// and recovers the same way. When the transport injects message faults,
  /// every step's traffic automatically routes through a ReliableChannel.
  bool poll();
  /// Polls until done.
  void wait();

  /// Arm mid-collective endpoint-failure recovery. Must be called before
  /// the first poll(): it snapshots every participant's input buffer, and
  /// on EndpointDown the operation (1) drops the dead endpoints from the
  /// participant set, (2) restores the survivors' buffers from the
  /// snapshot, (3) clears undelivered transport mail, and (4) restarts on
  /// a schedule re-formed over the survivors via
  /// allreduce_schedule_over(protocol, ...) — whose final scaling averages
  /// over the live set. The result is bit-identical to a from-scratch
  /// survivor-only run; the pre-failure traffic stays in the transport
  /// stats (those bytes really crossed the wire). Repeated failures
  /// recover repeatedly; only the last survivor standing completes with
  /// its own contribution as the "mean". Throws only if every participant
  /// is dead. For one-shot protocols (gossip, param_server) recovery is
  /// implemented inside the protocol run itself and arms automatically
  /// when the transport has endpoint faults; this call is then a no-op.
  void enable_recovery(Protocol protocol);

  /// Completed recovery cycles (0 = the collective never saw a failure).
  [[nodiscard]] int64_t recoveries() const noexcept { return recoveries_; }

  [[nodiscard]] int64_t steps_executed() const noexcept {
    return static_cast<int64_t>(next_step_);
  }
  [[nodiscard]] int64_t total_steps() const noexcept {
    return static_cast<int64_t>(schedule_->steps.size());
  }

 private:
  /// Current participant set (schedule's, or every transport endpoint).
  [[nodiscard]] std::vector<int64_t> current_participants() const;
  void recover();

  Transport* transport_;
  CollectiveRequest request_;
  SteppedSchedule owned_;  ///< empty when the schedule is borrowed
  const SteppedSchedule* schedule_;
  /// Reliable delivery for stepped traffic; created when the transport
  /// injects message faults (one-shot protocols build their own).
  std::unique_ptr<ReliableChannel> channel_;
  /// Set for protocols without a stepped schedule (gossip, param_server):
  /// one poll() runs the whole blocking protocol.
  std::optional<Protocol> one_shot_;
  bool one_shot_done_ = false;
  size_t next_step_ = 0;
  bool finalized_ = false;
  bool recovery_ = false;
  Protocol recovery_protocol_ = Protocol::kRingAllReduce;
  int64_t recoveries_ = 0;
  /// Pristine per-participant input copies, indexed by endpoint id;
  /// empty rows for non-participants and timing-only runs.
  std::vector<std::vector<double>> snapshot_;
};

/// Registry lookup by enum (always succeeds).
[[nodiscard]] const Collective& collective(Protocol protocol);

/// Registry lookup by name ("ring_allreduce", "halving_doubling_allreduce",
/// "gossip", "param_server"); nullptr when unknown.
[[nodiscard]] const Collective* find_collective(std::string_view name);

/// Registered protocol names, registry order.
[[nodiscard]] std::vector<std::string_view> collective_names();

}  // namespace comdml::comm
