// Transport-generic collectives (one implementation per protocol family).
//
// Each protocol the repo models — decentralized AllReduce (§IV-B, ring and
// recursive halving/doubling), gossip exchange (Hegedus et al. [11]), and
// the central parameter-server round (FedAvg/FedProx baselines) — is
// written exactly once against comm::Transport. Run it over a SimTransport
// and you get the analytic cost (seconds / steps / bytes per agent); run
// the identical schedule over an InProcTransport with real buffers and the
// payloads move too. Predicted and executed traffic are the same code
// path, so the old per-protocol cost-vs-trace checks collapse into one
// parity test per protocol (tests/transport_test.cpp).
//
// Protocols are looked up through a small registry (by Protocol enum or by
// name) so fleets, benches, and future backends select collectives as
// interchangeable strategies instead of hard-coding free functions.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "comm/transport.hpp"

namespace comdml::comm {

enum class Protocol {
  kRingAllReduce,
  kHalvingDoublingAllReduce,
  kGossip,
  kParamServer,
};

/// One collective invocation over a transport.
struct CollectiveRequest {
  /// Per-agent payload size in fp32 wire elements.
  int64_t elems = 0;
  /// One fp64 buffer of `elems` per agent endpoint; empty for timing-only
  /// runs (the schedule and accounting are identical either way).
  std::vector<double*> buffers;
  /// Aggregation weights parallel to `participants` (param-server;
  /// empty = uniform).
  std::vector<double> weights;
  /// Selected agents (param-server; empty = every agent endpoint).
  std::vector<int64_t> participants;
  /// Randomness for randomized protocols (gossip partner draw). The draw
  /// sequence is identical with and without buffers, so a timing-only run
  /// with an equally-seeded Rng predicts the executed schedule exactly.
  tensor::Rng* rng = nullptr;
};

struct CollectiveReport {
  /// Accounting snapshot of the transport after the run.
  TransportStats transport;
  /// Chosen partner per agent (gossip only; empty otherwise).
  std::vector<std::optional<int64_t>> partners;
};

class Collective {
 public:
  virtual ~Collective() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual CollectiveReport run(Transport& transport,
                               const CollectiveRequest& request) const = 0;
};

/// Registry lookup by enum (always succeeds).
[[nodiscard]] const Collective& collective(Protocol protocol);

/// Registry lookup by name ("ring_allreduce", "halving_doubling_allreduce",
/// "gossip", "param_server"); nullptr when unknown.
[[nodiscard]] const Collective* find_collective(std::string_view name);

/// Registered protocol names, registry order.
[[nodiscard]] std::vector<std::string_view> collective_names();

}  // namespace comdml::comm
