// Point-to-point transfer-time model shared by every protocol in the repo.
#pragma once

#include <cstdint>

#include "tensor/check.hpp"

namespace comdml::comm {

/// Per-message fixed overhead (handshake + serialization), seconds.
inline constexpr double kDefaultLatencySec = 5e-3;

/// Seconds to move `bytes` over a `mbps` link: latency + bytes*8 / (mbps*1e6).
/// Zero-byte messages still pay the latency term (a handshake crosses the
/// wire even when no payload does). The payload term is computed entirely
/// in double precision, so multi-GB (up to INT64_MAX-byte) payloads are
/// overflow-safe. Throws if the link is unusable (mbps <= 0).
[[nodiscard]] double transfer_seconds(int64_t bytes, double mbps,
                                      double latency_sec = kDefaultLatencySec);

/// Sustainable bytes/sec of a link (no latency term).
[[nodiscard]] double bytes_per_sec(double mbps);

/// Wire bytes of `elems` fp32 values, with an explicit overflow guard for
/// absurdly large element counts (throws instead of wrapping).
[[nodiscard]] int64_t fp32_wire_bytes(int64_t elems);

/// fp32 wire elements covering `bytes` payload bytes (rounds up).
[[nodiscard]] int64_t fp32_wire_elems(int64_t bytes);

}  // namespace comdml::comm
