// Point-to-point transfer-time model shared by every protocol in the repo.
#pragma once

#include <cstdint>

#include "tensor/check.hpp"

namespace comdml::comm {

/// Per-message fixed overhead (handshake + serialization), seconds.
inline constexpr double kDefaultLatencySec = 5e-3;

/// Seconds to move `bytes` over a `mbps` link: latency + bytes*8 / (mbps*1e6).
/// Throws if the link is unusable (mbps <= 0).
[[nodiscard]] double transfer_seconds(int64_t bytes, double mbps,
                                      double latency_sec = kDefaultLatencySec);

/// Sustainable bytes/sec of a link (no latency term).
[[nodiscard]] double bytes_per_sec(double mbps);

}  // namespace comdml::comm
