#include "comm/reliable.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "tensor/tensor.hpp"

namespace comdml::comm {

int64_t RetryPolicy::extra_retries(int64_t observed_drops) const {
  if (observed_drops <= 0) return 0;
  int64_t bonus = 0;
  // floor(log2(drops + 1)) without touching floating point: monotone,
  // saturating, and cheap enough to recompute per retry attempt.
  for (int64_t v = observed_drops + 1; v > 1; v >>= 1) ++bonus;
  return std::min(bonus, adaptive_extra_max);
}

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy policy;
  if (const char* retries = std::getenv("COMDML_RETRY_MAX")) {
    const long long v = std::atoll(retries);
    if (v >= 0) policy.max_retries = static_cast<int64_t>(v);
  }
  if (const char* base_ms = std::getenv("COMDML_BACKOFF_BASE_MS")) {
    const double v = std::atof(base_ms);
    if (v > 0.0) policy.backoff_base_sec = v * 1e-3;
  }
  if (const char* adaptive = std::getenv("COMDML_RETRY_ADAPTIVE"))
    policy.adaptive = std::atoll(adaptive) != 0;
  if (const char* extra = std::getenv("COMDML_RETRY_ADAPTIVE_MAX")) {
    const long long v = std::atoll(extra);
    if (v >= 0) policy.adaptive_extra_max = static_cast<int64_t>(v);
  }
  return policy;
}

ReliableChannel::ReliableChannel(Transport& transport)
    : ReliableChannel(transport, RetryPolicy::from_env()) {}

ReliableChannel::ReliableChannel(Transport& transport,
                                 const RetryPolicy& policy)
    : transport_(&transport), policy_(policy) {
  COMDML_CHECK(policy_.max_retries >= 0);
  COMDML_CHECK(policy_.backoff_base_sec >= 0.0);
  const auto edges = static_cast<size_t>(transport.endpoints()) *
                     static_cast<size_t>(transport.endpoints());
  last_delivered_.assign(edges, -1);
  sent_.resize(edges);
}

void ReliableChannel::send(int64_t src, int64_t dst, int64_t elems,
                           const double* data) {
  const int64_t seq = transport_->send(src, dst, elems, data);
  Unacked u;
  u.seq = seq;
  u.elems = elems;
  // Park the pre-codec copy: the schedule's recv phase folds into the very
  // buffers that were sent, so a later retransmit cannot reread them.
  if (data != nullptr && elems > 0) u.data.assign(data, data + elems);
  sent_[edge(src, dst)].push_back(std::move(u));
}

Message ReliableChannel::recv(int64_t dst, int64_t src) {
  const size_t e = edge(src, dst);
  for (int64_t attempt = 0;; ++attempt) {
    // Drain the edge until something usable arrives: stale duplicates
    // (seq already delivered) and corrupted copies are discarded — the
    // latter get re-requested below.
    while (auto m = transport_->try_recv_from(dst, src)) {
      if (m->seq <= last_delivered_[e]) continue;
      if (!m->intact()) continue;
      last_delivered_[e] = m->seq;
      auto& window = sent_[e];
      while (!window.empty() && window.front().seq <= m->seq)
        window.pop_front();  // cumulative ack
      return *m;
    }
    // Recomputed per attempt: drops charged by this very receive's
    // retransmits keep counting, so a lossy edge earns patience even
    // within one delivery. Deterministic — drop decisions are hashes of
    // the shared step counter, identical across transport flavors.
    const int64_t budget =
        policy_.adaptive
            ? policy_.budget(transport_->dropped_on_edge(src, dst))
            : policy_.max_retries;
    if (attempt >= budget)
      throw DeliveryTimeoutError(
          src, dst, attempt,
          "delivery timeout " + std::to_string(src) + " -> " +
              std::to_string(dst) + " after " + std::to_string(attempt) +
              " retransmissions");
    // Nothing usable in flight: wait out the (modeled, exponential)
    // backoff, re-send the oldest unacked copy, and close the retry step
    // so delayed originals mature.
    const int shift = static_cast<int>(std::min<int64_t>(attempt, 30));
    transport_->charge_backoff(policy_.backoff_base_sec *
                               static_cast<double>(1ll << shift));
    // A sender living in another process holds the unacked copy, not this
    // channel: the transport ships a NACK to the owning process, which
    // retransmits from its own parked payload.
    if (transport_->nack(src, dst, last_delivered_[e])) {
      ++retransmits_;
      transport_->end_step();
      continue;
    }
    auto& window = sent_[e];
    COMDML_REQUIRE(!window.empty(),
                   "reliable recv " << src << " -> " << dst
                                    << " has no unacked send to retransmit "
                                       "(raw transport traffic mixed onto "
                                       "the edge?)");
    const Unacked& u = window.front();
    Transport::SendOptions opts;
    opts.retransmit = true;
    opts.seq = u.seq;
    transport_->send(src, dst, u.elems,
                     u.data.empty() ? nullptr : u.data.data(), opts);
    ++retransmits_;
    transport_->end_step();
  }
}

void ReliableChannel::clear_unacked() {
  for (auto& window : sent_) window.clear();
}

}  // namespace comdml::comm
