#include "comm/socket_io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "tensor/check.hpp"

namespace comdml::comm {

namespace {

using Clock = std::chrono::steady_clock;

/// sockaddr storage + length for either family.
struct ResolvedAddr {
  sockaddr_storage storage{};
  socklen_t len = 0;
  int family = AF_UNIX;
};

ResolvedAddr resolve(const SocketAddress& addr) {
  ResolvedAddr out;
  if (addr.kind == SocketAddress::Kind::kUnix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(&out.storage);
    sun->sun_family = AF_UNIX;
    COMDML_REQUIRE(addr.path.size() < sizeof(sun->sun_path),
                   "unix socket path too long (" << addr.path.size()
                                                 << " bytes): " << addr.path);
    std::memcpy(sun->sun_path, addr.path.c_str(), addr.path.size() + 1);
    out.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                     addr.path.size() + 1);
    out.family = AF_UNIX;
    return out;
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(&out.storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<uint16_t>(addr.port));
  const std::string host = addr.host.empty() ? "127.0.0.1" : addr.host;
  if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    COMDML_REQUIRE(getaddrinfo(host.c_str(), nullptr, &hints, &res) == 0 &&
                       res != nullptr,
                   "cannot resolve tcp host: " << host);
    sin->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    freeaddrinfo(res);
  }
  out.len = sizeof(sockaddr_in);
  out.family = AF_INET;
  return out;
}

/// One non-blocking connect attempt with a bounded wait; -1 on failure
/// with `*err_out` (when non-null) carrying the connect errno.
int try_connect_once(const ResolvedAddr& target, int wait_ms,
                     int* err_out = nullptr) {
  if (err_out != nullptr) *err_out = 0;
  const int fd = ::socket(target.family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (err_out != nullptr) *err_out = errno;
    return -1;
  }
  // Non-blocking connect: a black-holed TCP peer fails the poll below in
  // wait_ms instead of hanging the whole dial budget on one attempt.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(
      fd, reinterpret_cast<const sockaddr*>(&target.storage), target.len);
  if (rc != 0 && errno != EINPROGRESS) {
    if (err_out != nullptr) *err_out = errno;
    close_fd(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, wait_ms) <= 0) {
      if (err_out != nullptr) *err_out = ETIMEDOUT;
      close_fd(fd);
      return -1;
    }
    int err = 0;
    socklen_t errlen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) != 0 ||
        err != 0) {
      if (err_out != nullptr) *err_out = err != 0 ? err : errno;
      close_fd(fd);
      return -1;
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);  // back to blocking for frame I/O
  if (target.family == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

std::string SocketAddress::str() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

SocketAddress parse_address(const std::string& spec) {
  SocketAddress addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.kind = SocketAddress::Kind::kUnix;
    addr.path = spec.substr(5);
    COMDML_REQUIRE(!addr.path.empty(), "empty unix socket path: " << spec);
    return addr;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    addr.kind = SocketAddress::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    COMDML_REQUIRE(colon != std::string::npos && colon + 1 < rest.size(),
                   "tcp address needs host:port, got: " << spec);
    addr.host = rest.substr(0, colon);
    addr.port = std::stoi(rest.substr(colon + 1));
    COMDML_REQUIRE(addr.port >= 0 && addr.port <= 65535,
                   "tcp port out of range: " << spec);
    return addr;
  }
  COMDML_REQUIRE(false, "address must be unix:<path> or tcp:<host>:<port>, "
                        "got: "
                            << spec);
  return addr;
}

int listen_on(const SocketAddress& addr, SocketAddress* bound) {
  if (addr.kind == SocketAddress::Kind::kUnix)
    (void)::unlink(addr.path.c_str());  // stale socket from a dead process
  const ResolvedAddr target = resolve(addr);
  const int fd = ::socket(target.family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  COMDML_REQUIRE(fd >= 0, "socket() failed: " << std::strerror(errno));
  if (target.family == AF_INET) {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&target.storage),
             target.len) != 0) {
    const int err = errno;
    close_fd(fd);
    COMDML_REQUIRE(false, "bind(" << addr.str()
                                  << ") failed: " << std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    close_fd(fd);
    COMDML_REQUIRE(false, "listen(" << addr.str()
                                    << ") failed: " << std::strerror(err));
  }
  if (bound != nullptr) {
    *bound = addr;
    if (addr.kind == SocketAddress::Kind::kTcp && addr.port == 0) {
      sockaddr_in sin{};
      socklen_t len = sizeof(sin);
      COMDML_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&sin),
                                 &len) == 0);
      bound->port = ntohs(sin.sin_port);
    }
  }
  return fd;
}

int dial(const SocketAddress& addr, double timeout_sec) {
  const ResolvedAddr target = resolve(addr);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_sec));
  for (;;) {
    const int fd = try_connect_once(target, /*wait_ms=*/200);
    if (fd >= 0) return fd;
    if (Clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int dial_once(const SocketAddress& addr, int* err_out) {
  const ResolvedAddr target = resolve(addr);
  return try_connect_once(target, /*wait_ms=*/200, err_out);
}

int accept_on(int listen_fd, const std::atomic<bool>* running) {
  for (;;) {
    if (running != nullptr && !running->load()) return -1;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) continue;  // poll interval: re-check running
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return -1;
  }
}

bool write_all(int fd, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* data, size_t len) {
  auto* p = static_cast<uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error: the peer is gone
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void close_fd(int fd) noexcept {
  if (fd >= 0) (void)::close(fd);
}

bool send_frame(int fd, uint16_t type, const std::vector<uint8_t>& body,
                std::mutex* write_mutex) {
  COMDML_CHECK(body.size() <= kMaxFrameBody);
  uint8_t header[12];
  const uint32_t magic = kFrameMagic;
  const uint16_t version = kWireVersion;
  const auto len = static_cast<uint32_t>(body.size());
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &version, 2);
  std::memcpy(header + 6, &type, 2);
  std::memcpy(header + 8, &len, 4);
  std::unique_lock<std::mutex> guard;
  if (write_mutex != nullptr)
    guard = std::unique_lock<std::mutex>(*write_mutex);
  if (!write_all(fd, header, sizeof(header))) return false;
  return body.empty() || write_all(fd, body.data(), body.size());
}

std::optional<WireFrame> recv_frame(int fd) {
  uint8_t header[12];
  if (!read_exact(fd, header, sizeof(header))) return std::nullopt;
  uint32_t magic = 0;
  uint16_t version = 0;
  WireFrame frame;
  uint32_t len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 2);
  std::memcpy(&frame.type, header + 6, 2);
  std::memcpy(&len, header + 8, 4);
  if (magic != kFrameMagic)
    throw std::runtime_error("socket frame magic mismatch (mis-wired peer)");
  if (version != kWireVersion)
    throw std::runtime_error("socket frame version mismatch: peer v" +
                             std::to_string(version) + ", ours v" +
                             std::to_string(kWireVersion));
  if (len > kMaxFrameBody)
    throw std::runtime_error("socket frame body too large: " +
                             std::to_string(len));
  frame.body.resize(len);
  if (len > 0 && !read_exact(fd, frame.body.data(), len)) return std::nullopt;
  return frame;
}

}  // namespace comdml::comm
