// Real-wire transport backend: the exact message-level API of
// InProcTransport over Unix-domain (default) or TCP sockets.
//
// A fleet's endpoints are partitioned across OS processes by an owner map;
// each process runs one SocketTransport over the full LinkGrid. Sends
// between two locally-owned endpoints take the ordinary in-process path.
// Sends to a remote endpoint run the SAME shared accounting core — codec
// encode, per-edge seq numbers, FNV-1a checksums, deterministic fault
// decisions — and then ship a length-prefixed data frame to the owning
// process, where a reader thread injects it into the destination mailbox
// and charges the receive-side half of the accounting. Because both halves
// come from the one core in comm/transport.cpp, predicted-vs-executed
// parity and goodput_bytes() invariance keep holding across processes:
// merge_transport_stats() over the per-process snapshots reproduces the
// single-transport numbers exactly for lockstep schedules.
//
// Processes form a full mesh at startup: process i dials every j < i
// (retrying while the peer boots) and accepts from every j > i, each
// connection opening with a hello frame naming the dialing process. A peer
// disconnect marks every endpoint it owns dead, so blocked receives and
// later sends surface as the existing typed EndpointDownError instead of
// hanging — process death is endpoint churn, same as in-process.
//
// Loss recovery across processes: a receiver-side ReliableChannel cannot
// re-send a remote sender's payload, so nack() ships a NACK control frame
// to the owning process, which retransmits from a parked per-edge copy of
// the last payload (parked only when a FaultPlan is configured) and closes
// a step so the deterministic drop hash advances.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <thread>
#include <unordered_map>

#include "comm/socket_io.hpp"
#include "comm/transport.hpp"

namespace comdml::comm {

/// How a fleet's endpoints map onto OS processes, and where each process
/// listens for its peers' data frames.
struct SocketPeerConfig {
  std::vector<int64_t> owner;       ///< endpoint -> owning process
  int64_t self = 0;                 ///< this process's index
  std::vector<std::string> addrs;   ///< per process: "unix:..." | "tcp:..."
  /// Per-process liveness mask; empty means every process participates.
  /// A mesh rebuilt after a worker crash lists the dead process as 0: no
  /// dial/accept is attempted for it and every endpoint it owns starts
  /// failed, so the survivor schedule sees the same EndpointDownError
  /// surface a live-then-crashed peer would have produced.
  std::vector<char> process_alive;
  double connect_timeout_sec = 30.0;
  /// Real-time window try_recv_from waits for an in-flight frame before
  /// reporting "nothing pending" — absorbs wire latency so a
  /// ReliableChannel doesn't fire spurious retransmits.
  double recv_grace_sec = 0.05;
  /// Blocking recv() gives up after this long (a schedule bug or a wedged
  /// peer; peer *death* is detected separately and throws earlier).
  double recv_timeout_sec = 120.0;
};

class SocketTransport final : public Transport {
 public:
  SocketTransport(LinkGrid grid, SocketPeerConfig peers,
                  const Codec* codec = nullptr, FaultPlan faults = {});
  ~SocketTransport() override;

  /// Block until the full peer mesh is connected (throws if setup failed).
  void wait_ready() const;
  /// The concrete listen address — for "tcp:host:0" this carries the real
  /// bound port.
  [[nodiscard]] std::string bound_address() const { return bound_.str(); }
  [[nodiscard]] int64_t owner_of(int64_t endpoint) const;
  [[nodiscard]] int64_t processes() const noexcept {
    return static_cast<int64_t>(cfg_.addrs.size());
  }
  /// True when `process` participates in this mesh (alive per the config
  /// mask at construction; crashes afterwards are tracked by peer_lost).
  [[nodiscard]] bool process_in_mesh(int64_t process) const noexcept {
    return cfg_.process_alive.empty() ||
           cfg_.process_alive[static_cast<size_t>(process)] != 0;
  }
  /// Processes participating in this mesh.
  [[nodiscard]] int64_t live_processes() const noexcept {
    if (cfg_.process_alive.empty()) return processes();
    int64_t n = 0;
    for (const char alive : cfg_.process_alive) n += alive != 0 ? 1 : 0;
    return n;
  }

  /// Blocking matched receive: waits for the frame to arrive off the wire
  /// (up to recv_timeout_sec) when the sender lives in another process.
  [[nodiscard]] Message recv(int64_t dst, int64_t src) override;
  /// Matched receive with a real-time grace window for remote senders.
  [[nodiscard]] std::optional<Message> try_recv_from(int64_t dst,
                                                     int64_t src) override;
  /// Ship a retransmission request to the process owning `src`.
  [[nodiscard]] bool nack(int64_t src, int64_t dst,
                          int64_t last_delivered_seq) override;

 protected:
  [[nodiscard]] bool delivers_payload() const noexcept override {
    return true;
  }
  [[nodiscard]] bool local_endpoint(int64_t endpoint) const override;
  void forward_remote(RemoteFrame&& frame) override;

 private:
  struct Peer {
    int fd = -1;
    std::thread reader;
    std::mutex write_mutex;
    std::atomic<bool> down{false};
  };

  /// True once any peer process vanished after the mesh formed. A doomed
  /// collective aborts promptly everywhere: a blocked recv whose frame has
  /// not arrived throws EndpointDownError as soon as the flag is up, even
  /// when the awaited endpoint itself is owned by a live peer — the sender
  /// may have aborted its schedule before sending, and only the recovery
  /// barrier can tell. Frames already delivered still drain first.
  [[nodiscard]] bool mesh_degraded() const noexcept {
    return peer_died_.load();
  }

  void setup_mesh();
  void reader_loop(int64_t process);
  void peer_lost(int64_t process);
  void handle_data(const std::vector<uint8_t>& body);
  void handle_nack_frame(const std::vector<uint8_t>& body);
  [[nodiscard]] bool send_to_peer(int64_t process, uint16_t type,
                                  const std::vector<uint8_t>& body);

  SocketPeerConfig cfg_;
  SocketAddress bound_;
  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Peer>> peers_;  // index == process, self empty
  std::thread setup_thread_;
  std::atomic<bool> running_{true};
  /// Set by peer_lost: a peer vanished after construction (a mask-dead
  /// process configured at construction does not count).
  std::atomic<bool> peer_died_{false};

  mutable std::mutex ready_mutex_;
  mutable std::condition_variable ready_cv_;
  bool ready_ = false;
  std::string setup_error_;

  // Wakes receives blocked on remote frames (inject / peer death).
  mutable std::mutex mail_mutex_;
  mutable std::condition_variable mail_cv_;

  // Last payload sent per remote directed edge, kept pre-codec so a NACK
  // retransmission re-encodes exactly like a fresh send. Only populated
  // when the FaultPlan can actually lose messages.
  struct Parked {
    int64_t seq = -1;
    int64_t elems = 0;
    std::vector<double> data;
  };
  std::mutex park_mutex_;
  std::unordered_map<int64_t, Parked> parked_;  // key: src * endpoints + dst
  bool park_enabled_ = false;
};

}  // namespace comdml::comm
