#include "comm/link.hpp"

namespace comdml::comm {

double bytes_per_sec(double mbps) {
  COMDML_REQUIRE(mbps > 0.0, "unusable link: " << mbps << " Mbps");
  return mbps * 1e6 / 8.0;
}

double transfer_seconds(int64_t bytes, double mbps, double latency_sec) {
  COMDML_CHECK(bytes >= 0);
  COMDML_CHECK(latency_sec >= 0.0);
  return latency_sec + static_cast<double>(bytes) / bytes_per_sec(mbps);
}

}  // namespace comdml::comm
