#include "comm/link.hpp"

#include <limits>

namespace comdml::comm {

double bytes_per_sec(double mbps) {
  COMDML_REQUIRE(mbps > 0.0, "unusable link: " << mbps << " Mbps");
  return mbps * 1e6 / 8.0;
}

double transfer_seconds(int64_t bytes, double mbps, double latency_sec) {
  COMDML_CHECK(bytes >= 0);
  COMDML_CHECK(latency_sec >= 0.0);
  return latency_sec + static_cast<double>(bytes) / bytes_per_sec(mbps);
}

int64_t fp32_wire_bytes(int64_t elems) {
  COMDML_CHECK(elems >= 0);
  constexpr auto kBytes = static_cast<int64_t>(sizeof(float));
  COMDML_REQUIRE(elems <= std::numeric_limits<int64_t>::max() / kBytes,
                 "payload of " << elems << " fp32 elements overflows the "
                               << "byte counter");
  return elems * kBytes;
}

int64_t fp32_wire_elems(int64_t bytes) {
  COMDML_CHECK(bytes >= 0);
  constexpr auto kBytes = static_cast<int64_t>(sizeof(float));
  return bytes / kBytes + (bytes % kBytes != 0 ? 1 : 0);
}

}  // namespace comdml::comm
