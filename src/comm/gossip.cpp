#include "comm/gossip.hpp"

#include "comm/allreduce.hpp"
#include "tensor/ops.hpp"

namespace comdml::comm {

std::vector<std::optional<int64_t>> gossip_partners(const Topology& topology,
                                                    Rng& rng) {
  std::vector<std::optional<int64_t>> partners(
      static_cast<size_t>(topology.agents()));
  for (int64_t i = 0; i < topology.agents(); ++i) {
    const auto nbrs = topology.neighbors(i);
    if (nbrs.empty()) continue;
    partners[static_cast<size_t>(i)] =
        nbrs[static_cast<size_t>(rng.below(static_cast<int64_t>(nbrs.size())))];
  }
  return partners;
}

std::vector<double> gossip_exchange(std::vector<std::vector<Tensor>>& states,
                                    const Topology& topology,
                                    int64_t model_bytes, Rng& rng) {
  COMDML_CHECK(static_cast<int64_t>(states.size()) == topology.agents());
  const auto partners = gossip_partners(topology, rng);
  const size_t k = states.size();

  // Collect pushes first so all sends use the round-start states.
  std::vector<std::vector<const std::vector<Tensor>*>> inbox(k);
  std::vector<double> times(k, 0.0);
  const auto snapshot = states;  // round-start copies
  for (size_t i = 0; i < k; ++i) {
    if (!partners[i]) continue;
    const auto dst = static_cast<size_t>(*partners[i]);
    inbox[dst].push_back(&snapshot[i]);
    times[i] = transfer_seconds(
        model_bytes,
        topology.bandwidth_mbps(static_cast<int64_t>(i), *partners[i]));
  }
  for (size_t i = 0; i < k; ++i) {
    if (inbox[i].empty()) continue;
    if (inbox[i].size() == 1) {
      // Single pusher (the common random-matching case): merge in place
      // with the fused kernel. Bit-identical to mean_state of the pair
      // (0.5*y + 0.5*x either way) without allocating a merged state.
      const auto& other = *inbox[i][0];
      for (size_t t = 0; t < states[i].size(); ++t)
        tensor::scale_add_inplace(states[i][t], 0.5f, 0.5f, other[t]);
      continue;
    }
    std::vector<std::vector<Tensor>> group;
    group.push_back(snapshot[i]);
    for (const auto* s : inbox[i]) group.push_back(*s);
    states[i] = mean_state(group);
  }
  return times;
}

std::vector<double> gossip_exchange_cost(const Topology& topology,
                                         int64_t model_bytes, Rng& rng) {
  const auto partners = gossip_partners(topology, rng);
  std::vector<double> times(static_cast<size_t>(topology.agents()), 0.0);
  for (size_t i = 0; i < times.size(); ++i) {
    if (!partners[i]) continue;
    times[i] = transfer_seconds(
        model_bytes,
        topology.bandwidth_mbps(static_cast<int64_t>(i), *partners[i]));
  }
  return times;
}

}  // namespace comdml::comm
