#include "comm/gossip.hpp"

#include "comm/allreduce.hpp"
#include "core/workspace.hpp"

namespace comdml::comm {

namespace {

/// Per-agent push time of `model_bytes` over each agent's chosen link.
/// (Kept on `model_bytes` rather than the executed wire bytes so the
/// historical timing semantics of the shims survive: fleets pass the full
/// serialized model size here.)
std::vector<double> partner_times(
    const Topology& topology,
    const std::vector<std::optional<int64_t>>& partners,
    int64_t model_bytes) {
  std::vector<double> times(partners.size(), 0.0);
  for (size_t i = 0; i < partners.size(); ++i) {
    if (!partners[i]) continue;
    times[i] = transfer_seconds(
        model_bytes,
        topology.bandwidth_mbps(static_cast<int64_t>(i), *partners[i]));
  }
  return times;
}

}  // namespace

std::vector<std::optional<int64_t>> gossip_partners(const Topology& topology,
                                                    Rng& rng) {
  std::vector<std::optional<int64_t>> partners(
      static_cast<size_t>(topology.agents()));
  for (int64_t i = 0; i < topology.agents(); ++i) {
    const auto nbrs = topology.neighbors(i);
    if (nbrs.empty()) continue;
    partners[static_cast<size_t>(i)] =
        nbrs[static_cast<size_t>(rng.below(static_cast<int64_t>(nbrs.size())))];
  }
  return partners;
}

std::vector<double> gossip_exchange(std::vector<std::vector<Tensor>>& states,
                                    const Topology& topology,
                                    int64_t model_bytes, Rng& rng) {
  COMDML_CHECK(static_cast<int64_t>(states.size()) == topology.agents());
  const size_t k = states.size();
  const int64_t n = state_elems(states[0]);
  core::Scratch<double> slab(static_cast<int64_t>(k) * n);

  InProcTransport transport(LinkGrid::from_topology(topology));
  CollectiveRequest req;
  req.elems = n;
  req.rng = &rng;
  req.buffers.resize(k);
  for (size_t a = 0; a < k; ++a) {
    req.buffers[a] = slab.data() + static_cast<int64_t>(a) * n;
    flatten_state(states[a], req.buffers[a]);
  }
  const CollectiveReport rep =
      collective(Protocol::kGossip).run(transport, req);
  for (size_t a = 0; a < k; ++a)
    unflatten_state(req.buffers[a], states[a]);
  return partner_times(topology, rep.partners, model_bytes);
}

std::vector<double> gossip_exchange_cost(const Topology& topology,
                                         int64_t model_bytes, Rng& rng) {
  SimTransport transport(LinkGrid::from_topology(topology));
  CollectiveRequest req;
  req.elems = fp32_wire_elems(model_bytes);
  req.rng = &rng;
  const CollectiveReport rep =
      collective(Protocol::kGossip).run(transport, req);
  return partner_times(topology, rep.partners, model_bytes);
}

}  // namespace comdml::comm
