// Gossip model exchange (Hegedus et al. [11]): each agent sends its model to
// one randomly chosen neighbor per round and averages what it receives.
//
// The protocol itself lives in comm/collective.hpp ("gossip") and runs over
// any comm::Transport; these wrappers keep the historical topology/tensor
// signatures used by fleets and tests.
#pragma once

#include <optional>
#include <vector>

#include "comm/collective.hpp"
#include "comm/link.hpp"
#include "sim/topology.hpp"
#include "tensor/tensor.hpp"

namespace comdml::comm {

using sim::Topology;
using tensor::Rng;
using tensor::Tensor;

/// Chosen gossip partner per agent (nullopt for isolated agents).
[[nodiscard]] std::vector<std::optional<int64_t>> gossip_partners(
    const Topology& topology, Rng& rng);

/// One gossip round on real states: agent i's new state is the average of
/// its own state and every state pushed to it this round, executed over an
/// InProcTransport on the topology's per-edge links. Returns per-agent
/// exchange time (one `model_bytes` push over the chosen link).
std::vector<double> gossip_exchange(std::vector<std::vector<Tensor>>& states,
                                    const Topology& topology,
                                    int64_t model_bytes, Rng& rng);

/// Timing-only variant (used by the paper-scale simulator): the identical
/// schedule over a SimTransport.
[[nodiscard]] std::vector<double> gossip_exchange_cost(
    const Topology& topology, int64_t model_bytes, Rng& rng);

}  // namespace comdml::comm
