// Reliable delivery over an unreliable Transport.
//
// The stepped collective schedules assume lossless, ordered, uncorrupted
// delivery: a matched recv() of a message that never arrives is a hard
// failure. ReliableChannel restores that contract on top of a Transport
// whose FaultPlan drops, delays, duplicates, or corrupts messages:
//
//   - every send is copied into a per-edge unacked window under its
//     transport-assigned sequence number;
//   - recv() polls the mailbox, discards duplicates (seq already
//     delivered) and corrupted copies (checksum / corruption flag), and
//     when nothing usable is pending it charges an exponential-backoff
//     wait into the modeled clock, retransmits the oldest unacked message
//     on the edge, and closes a step;
//   - a successfully delivered seq cumulatively acks the sender-side
//     window (stop-and-wait per edge — the schedules carry at most one
//     in-flight message per directed edge per step, so the window is 1);
//   - after `max_retries` retransmissions the receive fails with a typed
//     DeliveryTimeoutError naming the edge, so callers can escalate (an
//     armed AsyncCollective declares the silent peer dead and re-forms
//     the survivor schedule).
//
// Retransmitted bytes are tagged at the transport layer, so
// `TransportStats::goodput_bytes()` (total minus retransmit and duplicate
// traffic) still equals the fault-free schedule bytes, and SimTransport /
// InProcTransport parity holds under any fault plan: every fault decision
// is a pure hash of the shared step counter and per-edge sequence numbers,
// never of wall-clock time or thread interleaving.
//
// Not thread-safe: one channel belongs to one collective driver, like the
// schedules it carries. Distinct channels over one transport are fine.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/transport.hpp"

namespace comdml::comm {

/// A matched receive exhausted its retransmission budget: the peer is
/// unresponsive (every copy lost/corrupted) but not provably dead. Carries
/// the edge so callers can fail the silent endpoint and recover.
class DeliveryTimeoutError : public std::runtime_error {
 public:
  DeliveryTimeoutError(int64_t src, int64_t dst, int64_t attempts,
                       const std::string& what)
      : std::runtime_error(what), src_(src), dst_(dst), attempts_(attempts) {}

  [[nodiscard]] int64_t src() const noexcept { return src_; }
  [[nodiscard]] int64_t dst() const noexcept { return dst_; }
  [[nodiscard]] int64_t attempts() const noexcept { return attempts_; }

 private:
  int64_t src_;
  int64_t dst_;
  int64_t attempts_;
};

/// Retry/backoff envelope for reliable receives. The backoff doubles per
/// attempt (base, 2*base, 4*base, ...) and is charged as *modeled* seconds
/// — it is the protocol's patience, not a real sleep.
///
/// With `adaptive` set, the per-edge budget grows with the drops the
/// transport has already *observed* on that edge: an edge that lost k
/// messages earns floor(log2(k+1)) extra retries, capped at
/// `adaptive_extra_max`. The inputs are the deterministic per-edge drop
/// counters in TransportStats — identical across Sim/InProc/Socket for a
/// given schedule and fault plan — so adaptivity never breaks parity.
struct RetryPolicy {
  int64_t max_retries = 6;
  double backoff_base_sec = 0.010;
  bool adaptive = false;
  int64_t adaptive_extra_max = 8;

  /// Extra retries a directed edge has earned from `observed_drops`
  /// (the transport's dropped_on(src, dst) counter): floor(log2(k+1)),
  /// capped. Deterministic, monotone, zero for a clean edge.
  [[nodiscard]] int64_t extra_retries(int64_t observed_drops) const;
  /// The full budget for an edge: max_retries plus the adaptive bonus
  /// (when enabled).
  [[nodiscard]] int64_t budget(int64_t observed_drops) const {
    return max_retries + (adaptive ? extra_retries(observed_drops) : 0);
  }

  /// Reads COMDML_RETRY_MAX, COMDML_BACKOFF_BASE_MS,
  /// COMDML_RETRY_ADAPTIVE (0/1), COMDML_RETRY_ADAPTIVE_MAX when set.
  [[nodiscard]] static RetryPolicy from_env();
};

/// Ack/timeout/retransmit wrapper over a borrowed Transport (which must
/// outlive the channel). Route every send and matched recv of a schedule
/// through one channel; mixing raw transport traffic on the same edges
/// would confuse the sequence-number window.
class ReliableChannel {
 public:
  explicit ReliableChannel(Transport& transport);
  ReliableChannel(Transport& transport, const RetryPolicy& policy);

  /// Send with a retransmittable copy parked until the receiver acks it.
  void send(int64_t src, int64_t dst, int64_t elems,
            const double* data = nullptr);

  /// Reliable matched receive: delivers the next in-sequence intact
  /// message src -> dst, retransmitting with exponential backoff when the
  /// wire loses, delays, or corrupts it. Throws DeliveryTimeoutError once
  /// the retry budget is exhausted, and propagates EndpointDownError for
  /// provably dead peers (recovery, not retry, handles those).
  [[nodiscard]] Message recv(int64_t dst, int64_t src);

  /// Drop every unacked copy (mid-collective recovery restarts the
  /// survivor schedule from fresh sends). Delivery dedupe state survives:
  /// stale retransmits of the abandoned schedule must still be discarded.
  void clear_unacked();

  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }
  /// Retransmissions issued by this channel (mirrors the transport's
  /// retransmit_messages when the channel is the only retransmitter).
  [[nodiscard]] int64_t retransmits() const noexcept { return retransmits_; }

 private:
  struct Unacked {
    int64_t seq = 0;
    int64_t elems = 0;
    std::vector<double> data;  // pre-codec copy; empty for timing-only
  };

  [[nodiscard]] size_t edge(int64_t src, int64_t dst) const {
    return static_cast<size_t>(src * transport_->endpoints() + dst);
  }

  Transport* transport_;
  RetryPolicy policy_;
  std::vector<int64_t> last_delivered_;    // per edge, -1 = nothing yet
  std::vector<std::deque<Unacked>> sent_;  // per edge, ascending seq
  int64_t retransmits_ = 0;
};

}  // namespace comdml::comm
