// Low-level socket plumbing shared by the SocketTransport data mesh and
// the fleetd control plane: address parsing ("unix:<path>" and
// "tcp:<host>:<port>"), listen/dial with retry, and length-prefixed frame
// I/O over blocking fds.
//
// Framing is one versioned header per frame —
//   [u32 magic "CMDF"][u16 version][u16 type][u32 body length][body]
// — so both planes reject cross-version or garbage peers at the first
// frame instead of desynchronizing mid-stream. Bodies are ByteWriter
// streams (native-endian, same-machine wire like the checkpoint format).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace comdml::comm {

/// A parsed endpoint address. Unix-domain is the default transport (fleet
/// processes share a machine); TCP is for crossing hosts, with port 0
/// meaning "bind an ephemeral port and report it via bound address".
struct SocketAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< unix
  std::string host;  ///< tcp
  int port = 0;      ///< tcp
  [[nodiscard]] std::string str() const;
};

/// Parse "unix:/path/to.sock" or "tcp:host:port". Throws on anything else.
[[nodiscard]] SocketAddress parse_address(const std::string& spec);

/// Bind + listen on `addr`. For unix addresses a stale socket file is
/// unlinked first; for tcp, port 0 binds an ephemeral port. The concrete
/// bound address (with the real port) is written to `bound` when non-null.
/// Returns the listening fd; throws on failure.
[[nodiscard]] int listen_on(const SocketAddress& addr,
                            SocketAddress* bound = nullptr);

/// Connect to `addr`, retrying with a short sleep until `timeout_sec`
/// elapses — the peer's listener may not exist yet (process startup
/// races). Each attempt uses a non-blocking connect with a poll so a
/// black-holed TCP target cannot eat the whole budget. Returns the
/// connected fd, or -1 on timeout.
[[nodiscard]] int dial(const SocketAddress& addr, double timeout_sec);

/// One connect attempt, no retry loop. Returns the connected fd, or -1
/// with `*err_out` (when non-null) set to the connect errno — callers that
/// want to fail fast can distinguish ECONNREFUSED (a stale unix socket
/// file nobody listens on) from ENOENT (no socket file at all).
[[nodiscard]] int dial_once(const SocketAddress& addr, int* err_out = nullptr);

/// Accept one connection; -1 on error/shutdown. The listening fd is polled
/// so closing it (or flipping `*running` to false) unblocks the accept
/// loop within one poll interval.
[[nodiscard]] int accept_on(int listen_fd,
                            const std::atomic<bool>* running = nullptr);

/// Loop write(2) until all `len` bytes are out; false on error (EPIPE —
/// the peer is gone).
[[nodiscard]] bool write_all(int fd, const void* data, size_t len);

/// Loop read(2) until `len` bytes arrived; false on EOF or error.
[[nodiscard]] bool read_exact(int fd, void* data, size_t len);

void close_fd(int fd) noexcept;

// ---- frames -----------------------------------------------------------------

inline constexpr uint32_t kFrameMagic = 0x434D4446;  // "CMDF"
inline constexpr uint16_t kWireVersion = 2;
/// Upper bound on a frame body — rejects desynchronized/garbage peers
/// before a bad length turns into a huge allocation.
inline constexpr uint32_t kMaxFrameBody = 1u << 30;

struct WireFrame {
  uint16_t type = 0;
  std::vector<uint8_t> body;
};

/// Write one frame. When `write_mutex` is non-null the header+body write
/// is serialized under it (several threads sharing one peer fd).
/// Returns false when the peer is gone.
[[nodiscard]] bool send_frame(int fd, uint16_t type,
                              const std::vector<uint8_t>& body,
                              std::mutex* write_mutex = nullptr);

/// Read one frame; nullopt on EOF/error. Throws std::runtime_error on a
/// magic or version mismatch (a mis-wired or incompatible peer, not a
/// clean shutdown).
[[nodiscard]] std::optional<WireFrame> recv_frame(int fd);

}  // namespace comdml::comm
