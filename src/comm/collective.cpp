#include "comm/collective.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "comm/reliable.hpp"
#include "core/workspace.hpp"

namespace comdml::comm {

namespace {

using Segment = Span;

/// Split [0, n) into `parts` nearly equal chunks.
std::vector<Segment> chunk(int64_t n, int64_t parts) {
  std::vector<Segment> segs(static_cast<size_t>(parts));
  const int64_t base = n / parts, extra = n % parts;
  int64_t cur = 0;
  for (int64_t i = 0; i < parts; ++i) {
    const int64_t len = base + (i < extra ? 1 : 0);
    segs[static_cast<size_t>(i)] = {cur, cur + len};
    cur += len;
  }
  return segs;
}

int64_t floor_log2(int64_t v) {
  int64_t l = 0;
  while ((int64_t{1} << (l + 1)) <= v) ++l;
  return l;
}

/// Buffer of agent `a`, or nullptr on a timing-only run.
double* buffer_of(const CollectiveRequest& req, int64_t a) {
  if (req.buffers.empty()) return nullptr;
  return req.buffers[static_cast<size_t>(a)];
}

void validate_buffers(const CollectiveRequest& req, int64_t agents) {
  if (req.buffers.empty()) return;
  COMDML_REQUIRE(static_cast<int64_t>(req.buffers.size()) == agents,
                 "collective got " << req.buffers.size() << " buffers for "
                                   << agents << " agents");
}

CollectiveReport report_of(const Transport& t) {
  CollectiveReport rep;
  rep.transport = t.stats();
  return rep;
}

/// Fold a delivered payload into `dst + seg.begin` (add or overwrite).
void merge_segment(const Message& msg, double* dst, const Segment& seg,
                   bool accumulate) {
  if (dst == nullptr || !msg.has_payload()) return;
  COMDML_DCHECK(msg.elems == seg.size());
  if (accumulate) {
    for (int64_t i = 0; i < seg.size(); ++i)
      dst[seg.begin + i] += msg.payload[static_cast<size_t>(i)];
  } else {
    for (int64_t i = 0; i < seg.size(); ++i)
      dst[seg.begin + i] = msg.payload[static_cast<size_t>(i)];
  }
}

// ---- stepped allreduce schedules --------------------------------------------
//
// Ring and halving/doubling are *deterministic* message patterns: every
// send/recv is known from (k, elems) alone. Each protocol therefore builds
// a SteppedSchedule once, and both the blocking Collective::run and the
// non-blocking AsyncCollective execute that same object step by step —
// predicted (SimTransport) and executed (InProcTransport) traffic remain
// one code path no matter which driver runs the schedule.

/// Ring: reduce-scatter then all-gather. At step s agent a ships chunk
/// (a - s) (reduce) or (a + 1 - s) (gather) one hop clockwise. The two
/// phases differ only in the chunk rotation and whether the receiver
/// accumulates or overwrites.
SteppedSchedule ring_schedule(int64_t k, int64_t elems) {
  SteppedSchedule sched;
  if (k == 1) return sched;
  sched.scale_to_mean = true;
  const auto segs = chunk(elems, k);
  for (const bool gather : {false, true}) {
    const int64_t rot = gather ? 1 : 0;
    for (int64_t s = 0; s < k - 1; ++s) {
      ScheduleStep step;
      for (int64_t a = 0; a < k; ++a) {
        const Segment& seg = segs[static_cast<size_t>((a + rot + k - s) % k)];
        step.sends.push_back({a, (a + 1) % k, seg});
      }
      for (int64_t a = 0; a < k; ++a) {
        const int64_t prev = (a + k - 1) % k;
        const Segment& seg =
            segs[static_cast<size_t>((prev + rot + k - s) % k)];
        step.recvs.push_back({a, prev, seg, /*accumulate=*/!gather});
      }
      sched.steps.push_back(std::move(step));
    }
  }
  return sched;
}

/// Recursive halving/doubling with the non-power-of-two pre/post phases:
/// extras fold into a partner first, the 2^l core reduce-scatters by
/// recursive halving and all-gathers by recursive doubling, then partners
/// push the final vector back to the extras. Note the element-wise sum is
/// a balanced binary tree over agent-index blocks regardless of where the
/// segment boundaries fall — which is why a bucketed halving/doubling
/// allreduce is bit-identical to one flat collective (nn/bucket.hpp relies
/// on this).
SteppedSchedule halving_doubling_schedule(int64_t k, int64_t elems) {
  SteppedSchedule sched;
  if (k == 1) return sched;
  sched.scale_to_mean = true;
  const int64_t n = elems;
  const int64_t l = floor_log2(k);
  const int64_t p2 = int64_t{1} << l;
  const int64_t rem = k - p2;

  if (rem > 0) {
    ScheduleStep pre;
    for (int64_t e = p2; e < k; ++e)
      pre.sends.push_back({e, e - p2, Segment{0, n}});
    for (int64_t e = p2; e < k; ++e)
      pre.recvs.push_back({e - p2, e, Segment{0, n}, /*accumulate=*/true});
    sched.steps.push_back(std::move(pre));
  }

  // One pairwise exchange step; each side ships the half the *other* side
  // keeps (and therefore receives into).
  struct Exchange {
    int64_t a = 0, peer = 0;
    Segment a_keeps, peer_keeps;
  };
  std::vector<Exchange> plan;
  const auto exchange_step = [&](bool accumulate) {
    ScheduleStep step;
    for (const Exchange& x : plan) {
      step.sends.push_back({x.a, x.peer, x.peer_keeps});
      step.sends.push_back({x.peer, x.a, x.a_keeps});
    }
    for (const Exchange& x : plan) {
      step.recvs.push_back({x.a, x.peer, x.a_keeps, accumulate});
      step.recvs.push_back({x.peer, x.a, x.peer_keeps, accumulate});
    }
    sched.steps.push_back(std::move(step));
  };

  // Reduce-scatter among the p2 core agents by recursive halving.
  std::vector<Segment> live(static_cast<size_t>(p2), Segment{0, n});
  for (int64_t step = 0; step < l; ++step) {
    const int64_t mask = int64_t{1} << step;
    plan.clear();
    for (int64_t a = 0; a < p2; ++a) {
      const int64_t peer = a ^ mask;
      if (peer < a) continue;
      const Segment range = live[static_cast<size_t>(a)];
      const int64_t mid = range.begin + range.size() / 2;
      plan.push_back(
          {a, peer, Segment{range.begin, mid}, Segment{mid, range.end}});
      live[static_cast<size_t>(a)] = {range.begin, mid};
      live[static_cast<size_t>(peer)] = {mid, range.end};
    }
    exchange_step(/*accumulate=*/true);
  }
  // All-gather by recursive doubling (reverse order): peers swap their
  // live segments wholesale and keep the union.
  for (int64_t step = l - 1; step >= 0; --step) {
    const int64_t mask = int64_t{1} << step;
    plan.clear();
    for (int64_t a = 0; a < p2; ++a) {
      const int64_t peer = a ^ mask;
      if (peer < a) continue;
      const Segment sa = live[static_cast<size_t>(a)];
      const Segment sp = live[static_cast<size_t>(peer)];
      // a receives (keeps) peer's segment and vice versa.
      plan.push_back({a, peer, sp, sa});
      const Segment merged{std::min(sa.begin, sp.begin),
                           std::max(sa.end, sp.end)};
      live[static_cast<size_t>(a)] = merged;
      live[static_cast<size_t>(peer)] = merged;
    }
    exchange_step(/*accumulate=*/false);
  }
  if (rem > 0) {
    ScheduleStep post;
    for (int64_t e = p2; e < k; ++e)
      post.sends.push_back({e - p2, e, Segment{0, n}});
    for (int64_t e = p2; e < k; ++e)
      post.recvs.push_back({e, e - p2, Segment{0, n}, /*accumulate=*/false});
    sched.steps.push_back(std::move(post));
  }
  return sched;
}

/// Execute one schedule step: post every send, close the transport step,
/// fold every delivered payload. With a channel, sends park retransmit
/// copies and receives retry through backoff — the schedule completes over
/// lossy/corrupting links exactly as it would over clean ones.
void execute_schedule_step(Transport& t, const CollectiveRequest& req,
                           const ScheduleStep& step, ReliableChannel* ch) {
  for (const ScheduleStep::Send& s : step.sends) {
    const double* data = buffer_of(req, s.src);
    const double* payload = data != nullptr ? data + s.span.begin : nullptr;
    if (ch != nullptr)
      ch->send(s.src, s.dst, s.span.size(), payload);
    else
      t.send(s.src, s.dst, s.span.size(), payload);
  }
  t.end_step();
  for (const ScheduleStep::Recv& r : step.recvs) {
    const Message msg =
        ch != nullptr ? ch->recv(r.dst, r.src) : t.recv(r.dst, r.src);
    merge_segment(msg, buffer_of(req, r.dst), r.span, r.accumulate);
  }
}

/// Sum -> mean after the last step, over the schedule's participants (all
/// endpoints when unset). Survivor schedules divide by the live-set size.
void finalize_mean(const CollectiveRequest& req, const SteppedSchedule& sched,
                   int64_t endpoints) {
  if (req.buffers.empty()) return;
  const int64_t k = sched.participants.empty()
                        ? endpoints
                        : static_cast<int64_t>(sched.participants.size());
  const double inv_k = 1.0 / static_cast<double>(k);
  const auto scale = [&](int64_t a) {
    double* mine = buffer_of(req, a);
    for (int64_t i = 0; i < req.elems; ++i) mine[i] *= inv_k;
  };
  if (sched.participants.empty()) {
    for (int64_t a = 0; a < endpoints; ++a) scale(a);
  } else {
    for (const int64_t a : sched.participants) scale(a);
  }
}

/// Blocking allreduce over a prebuilt schedule (ring and halving/doubling
/// share everything but the schedule builder). Drives an AsyncCollective
/// so the blocking path inherits survivor recovery (armed when the
/// transport has endpoint faults) and reliable delivery (when it has
/// message faults) — one behavior for both drivers.
CollectiveReport run_stepped(SteppedSchedule sched, Protocol protocol,
                             Transport& t, const CollectiveRequest& req) {
  validate_buffers(req, t.endpoints());
  AsyncCollective op(sched, t, req);
  if (t.has_endpoint_faults()) op.enable_recovery(protocol);
  op.wait();
  CollectiveReport rep = report_of(t);
  rep.recoveries = op.recoveries();
  return rep;
}

// ---- ring -------------------------------------------------------------------

class RingAllReduce final : public Collective {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "ring_allreduce";
  }

  CollectiveReport run(Transport& t,
                       const CollectiveRequest& req) const override {
    return run_stepped(ring_schedule(t.endpoints(), req.elems),
                       Protocol::kRingAllReduce, t, req);
  }
};

// ---- recursive halving/doubling ---------------------------------------------

class HalvingDoublingAllReduce final : public Collective {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "halving_doubling_allreduce";
  }

  CollectiveReport run(Transport& t,
                       const CollectiveRequest& req) const override {
    return run_stepped(halving_doubling_schedule(t.endpoints(), req.elems),
                       Protocol::kHalvingDoublingAllReduce, t, req);
  }
};

// ---- gossip -----------------------------------------------------------------

class GossipExchange final : public Collective {
 public:
  [[nodiscard]] std::string_view name() const override { return "gossip"; }

  CollectiveReport run(Transport& t,
                       const CollectiveRequest& req) const override {
    const int64_t k = t.endpoints();
    validate_buffers(req, k);
    COMDML_REQUIRE(req.rng != nullptr, "gossip needs a partner-draw Rng");

    // Recovery snapshot: round-start buffers plus the partner-draw RNG
    // state. A survivor rerun restores both, so it is bit-identical to a
    // from-scratch run where the dead endpoints never existed.
    const bool recovery = t.has_endpoint_faults();
    std::vector<std::vector<double>> snapshot;
    std::string rng_state;
    if (recovery) {
      rng_state = req.rng->state();
      if (!req.buffers.empty()) {
        snapshot.resize(static_cast<size_t>(k));
        for (int64_t i = 0; i < k; ++i) {
          const double* buf = buffer_of(req, i);
          if (buf != nullptr)
            snapshot[static_cast<size_t>(i)].assign(buf, buf + req.elems);
        }
      }
    }
    int64_t recoveries = 0;
    for (;;) {
      try {
        CollectiveReport rep = run_once(t, req);
        rep.recoveries = recoveries;
        return rep;
      } catch (const EndpointDownError&) {
        if (!recovery) throw;
      } catch (const DeliveryTimeoutError& e) {
        // An unresponsive peer under message faults: declare it dead and
        // re-form around the survivors, like the stepped protocols do.
        if (!recovery) throw;
        t.fail_endpoint(e.src());
      }
      ++recoveries;
      COMDML_REQUIRE(!t.live_endpoints().empty(),
                     "gossip cannot recover: every endpoint is dead");
      req.rng->set_state(rng_state);
      for (size_t i = 0; i < snapshot.size(); ++i) {
        const auto& snap = snapshot[i];
        if (!snap.empty())
          std::copy(snap.begin(), snap.end(),
                    buffer_of(req, static_cast<int64_t>(i)));
      }
      t.clear_pending();
    }
  }

 private:
  static CollectiveReport run_once(Transport& t,
                                   const CollectiveRequest& req) {
    const int64_t k = t.endpoints();
    const std::vector<int64_t> live = t.live_endpoints();
    std::vector<char> is_live(static_cast<size_t>(k), 0);
    for (const int64_t e : live) is_live[static_cast<size_t>(e)] = 1;
    std::unique_ptr<ReliableChannel> ch;
    if (t.has_message_faults()) ch = std::make_unique<ReliableChannel>(t);

    CollectiveReport rep;
    rep.partners.assign(static_cast<size_t>(k), std::nullopt);
    for (const int64_t i : live) {
      std::vector<int64_t> nbrs;
      for (const int64_t n : t.neighbors(i))
        if (is_live[static_cast<size_t>(n)]) nbrs.push_back(n);
      if (nbrs.empty()) continue;  // isolated agents sit the round out
      rep.partners[static_cast<size_t>(i)] =
          nbrs[static_cast<size_t>(req.rng->below(
              static_cast<int64_t>(nbrs.size())))];
    }
    // All pushes use round-start states: sends snapshot payloads before
    // any receiver merges.
    for (const int64_t i : live) {
      if (!rep.partners[static_cast<size_t>(i)]) continue;
      const int64_t dst = *rep.partners[static_cast<size_t>(i)];
      if (ch != nullptr)
        ch->send(i, dst, req.elems, buffer_of(req, i));
      else
        t.send(i, dst, req.elems, buffer_of(req, i));
    }
    t.end_step();
    const bool real = !req.buffers.empty();
    if (ch != nullptr) {
      // Reliable merge: the push fan-in is known from the partner draws,
      // so each receiver runs matched reliable receives in ascending
      // sender order — the same fp summation order as the lossless
      // arrival-order path. Runs on timing-only transports too, so Sim
      // and InProc charge identical retransmission traffic.
      core::Scratch<double> acc(req.elems);
      for (const int64_t i : live) {
        if (real) std::fill(acc.data(), acc.data() + req.elems, 0.0);
        int64_t pushes = 0;
        for (const int64_t j : live) {
          if (!rep.partners[static_cast<size_t>(j)] ||
              *rep.partners[static_cast<size_t>(j)] != i)
            continue;
          const Message msg = ch->recv(i, j);
          if (!real || !msg.has_payload()) continue;
          for (int64_t x = 0; x < req.elems; ++x)
            acc[x] += msg.payload[static_cast<size_t>(x)];
          ++pushes;
        }
        if (!real || pushes == 0) continue;
        double* mine = buffer_of(req, i);
        const double inv = 1.0 / static_cast<double>(pushes + 1);
        for (int64_t x = 0; x < req.elems; ++x)
          mine[x] = (mine[x] + acc[x]) * inv;
      }
    } else if (real) {
      // Best-effort merge: receiver i averages its own state with every
      // delivered, intact push (a lost or corrupted push is simply a
      // quieter round — gossip's tolerance, not an error).
      core::Scratch<double> acc(req.elems);
      for (const int64_t i : live) {
        std::fill(acc.data(), acc.data() + req.elems, 0.0);
        int64_t pushes = 0;
        while (auto msg = t.try_recv(i)) {
          if (!msg->has_payload() || !msg->intact()) continue;
          for (int64_t x = 0; x < req.elems; ++x)
            acc[x] += msg->payload[static_cast<size_t>(x)];
          ++pushes;
        }
        if (pushes == 0) continue;
        double* mine = buffer_of(req, i);
        const double inv = 1.0 / static_cast<double>(pushes + 1);
        for (int64_t x = 0; x < req.elems; ++x)
          mine[x] = (mine[x] + acc[x]) * inv;
      }
    }
    rep.transport = t.stats();
    return rep;
  }
};

// ---- parameter server -------------------------------------------------------

class ParamServerRound final : public Collective {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "param_server";
  }

  CollectiveReport run(Transport& t,
                       const CollectiveRequest& req) const override {
    const int64_t server = t.endpoints() - 1;
    COMDML_REQUIRE(server >= 1,
                   "param-server transport needs a server endpoint "
                   "(LinkGrid::star)");
    validate_buffers(req, server);
    std::vector<int64_t> selected = req.participants;
    if (selected.empty()) {
      selected.resize(static_cast<size_t>(server));
      for (int64_t i = 0; i < server; ++i)
        selected[static_cast<size_t>(i)] = i;
    }
    for (const int64_t id : selected) {
      COMDML_CHECK(id >= 0 && id < server);
      COMDML_REQUIRE(t.linked(id, server),
                     "selected agent " << id << " has no uplink");
    }
    std::vector<double> weights = req.weights;
    if (weights.empty()) weights.assign(selected.size(), 1.0);
    COMDML_CHECK(weights.size() == selected.size());
    for (const double w : weights) COMDML_CHECK(w >= 0.0);

    // Recovery snapshot of the selected agents' round-start states. A dead
    // *agent* is survivable: the round re-forms over the remaining clients
    // and the weight normalization re-derives from the survivor weights, so
    // the rerun is exactly a from-scratch round over the survivors. A dead
    // *server* is fatal by design — the star has no one left to aggregate.
    const bool recovery = t.has_endpoint_faults();
    std::vector<std::vector<double>> snapshot;
    if (recovery && !req.buffers.empty()) {
      snapshot.resize(static_cast<size_t>(server));
      for (const int64_t id : selected) {
        const double* buf = buffer_of(req, id);
        snapshot[static_cast<size_t>(id)].assign(buf, buf + req.elems);
      }
    }
    int64_t recoveries = 0;
    for (;;) {
      try {
        CollectiveReport rep = run_round(t, req, selected, weights, server);
        rep.recoveries = recoveries;
        return rep;
      } catch (const EndpointDownError& e) {
        if (!recovery || e.endpoint() == server) throw;
      } catch (const DeliveryTimeoutError& e) {
        if (!recovery || e.src() == server) throw;
        t.fail_endpoint(e.src());
      }
      ++recoveries;
      const std::vector<int64_t> live = t.live_endpoints();
      std::vector<int64_t> next_selected;
      std::vector<double> next_weights;
      for (size_t s = 0; s < selected.size(); ++s) {
        if (std::find(live.begin(), live.end(), selected[s]) == live.end())
          continue;
        next_selected.push_back(selected[s]);
        next_weights.push_back(weights[s]);
      }
      COMDML_REQUIRE(!next_selected.empty(),
                     "param-server round cannot recover: every selected "
                     "agent is dead");
      selected = std::move(next_selected);
      weights = std::move(next_weights);
      if (!snapshot.empty()) {
        for (const int64_t id : selected) {
          const auto& snap = snapshot[static_cast<size_t>(id)];
          std::copy(snap.begin(), snap.end(), buffer_of(req, id));
        }
      }
      t.clear_pending();
    }
  }

 private:
  static CollectiveReport run_round(Transport& t, const CollectiveRequest& req,
                                    const std::vector<int64_t>& selected,
                                    const std::vector<double>& weights,
                                    int64_t server) {
    double wsum = 0.0;
    for (const double w : weights) wsum += w;
    COMDML_REQUIRE(wsum > 0.0, "all aggregation weights are zero");
    std::unique_ptr<ReliableChannel> ch;
    if (t.has_message_faults()) ch = std::make_unique<ReliableChannel>(t);
    const auto send = [&](int64_t src, int64_t dst, const double* data) {
      if (ch != nullptr)
        ch->send(src, dst, req.elems, data);
      else
        t.send(src, dst, req.elems, data);
    };
    const auto recv = [&](int64_t dst, int64_t src) {
      return ch != nullptr ? ch->recv(dst, src) : t.recv(dst, src);
    };

    // Upload: every selected agent ships its state over its own uplink.
    for (const int64_t id : selected)
      send(id, server, buffer_of(req, id));
    t.end_step();
    core::Scratch<double> mean(req.elems);
    const bool real = !req.buffers.empty();
    if (real) std::fill(mean.data(), mean.data() + req.elems, 0.0);
    for (size_t s = 0; s < selected.size(); ++s) {
      const Message msg = recv(server, selected[s]);
      if (!real || !msg.has_payload()) continue;
      const double w = weights[s] / wsum;
      for (int64_t j = 0; j < req.elems; ++j)
        mean[j] += w * msg.payload[static_cast<size_t>(j)];
    }
    // Download: the refreshed model returns the same way.
    for (const int64_t id : selected)
      send(server, id, real ? mean.data() : nullptr);
    t.end_step();
    for (const int64_t id : selected) {
      const Message msg = recv(id, server);
      if (!msg.has_payload()) continue;
      double* mine = buffer_of(req, id);
      for (int64_t j = 0; j < req.elems; ++j)
        mine[j] = msg.payload[static_cast<size_t>(j)];
    }
    return report_of(t);
  }
};

// ---- registry ---------------------------------------------------------------

const RingAllReduce kRing;
const HalvingDoublingAllReduce kHalvingDoubling;
const GossipExchange kGossip;
const ParamServerRound kParamServer;

constexpr size_t kProtocols = 4;
const Collective* const kRegistry[kProtocols] = {&kRing, &kHalvingDoubling,
                                                 &kGossip, &kParamServer};

}  // namespace

SteppedSchedule allreduce_schedule(Protocol protocol, int64_t agents,
                                   int64_t elems) {
  COMDML_CHECK(agents > 0 && elems >= 0);
  switch (protocol) {
    case Protocol::kRingAllReduce:
      return ring_schedule(agents, elems);
    case Protocol::kHalvingDoublingAllReduce:
      return halving_doubling_schedule(agents, elems);
    case Protocol::kGossip:
    case Protocol::kParamServer:
      break;
  }
  COMDML_REQUIRE(false, "protocol '" << collective(protocol).name()
                                     << "' has no stepped schedule");
  return {};
}

SteppedSchedule allreduce_schedule_over(
    Protocol protocol, const std::vector<int64_t>& participants,
    int64_t elems) {
  COMDML_REQUIRE(!participants.empty(),
                 "survivor schedule needs at least one participant");
  for (size_t i = 0; i < participants.size(); ++i) {
    COMDML_CHECK(participants[i] >= 0);
    COMDML_CHECK(i == 0 || participants[i - 1] < participants[i]);
  }
  const auto m = static_cast<int64_t>(participants.size());
  SteppedSchedule sched = allreduce_schedule(protocol, m, elems);
  // The m-rank schedule speaks in virtual ranks 0..m-1; remap every message
  // endpoint onto the surviving ids. Merge order and spans are untouched, so
  // the result is bit-identical to a from-scratch m-agent run.
  for (ScheduleStep& step : sched.steps) {
    for (ScheduleStep::Send& s : step.sends) {
      s.src = participants[static_cast<size_t>(s.src)];
      s.dst = participants[static_cast<size_t>(s.dst)];
    }
    for (ScheduleStep::Recv& r : step.recvs) {
      r.dst = participants[static_cast<size_t>(r.dst)];
      r.src = participants[static_cast<size_t>(r.src)];
    }
  }
  sched.participants = participants;
  return sched;
}

void execute_schedule_owned(const SteppedSchedule& sched, Transport& t,
                            const CollectiveRequest& req,
                            const std::vector<char>& owned) {
  validate_buffers(req, t.endpoints());
  COMDML_REQUIRE(static_cast<int64_t>(owned.size()) == t.endpoints(),
                 "owned mask covers " << owned.size() << " endpoints, "
                                      << "transport has " << t.endpoints());
  const auto is_owned = [&](int64_t e) {
    return owned[static_cast<size_t>(e)] != 0;
  };
  for (const ScheduleStep& step : sched.steps) {
    for (const ScheduleStep::Send& s : step.sends) {
      if (!is_owned(s.src)) continue;
      const double* data = buffer_of(req, s.src);
      const double* payload =
          data != nullptr ? data + s.span.begin : nullptr;
      t.send(s.src, s.dst, s.span.size(), payload);
    }
    // Close the step even when this process posted nothing: the positional
    // step history must line up across processes for the merged stats to
    // reproduce the single-transport clock.
    t.end_step();
    for (const ScheduleStep::Recv& r : step.recvs) {
      if (!is_owned(r.dst)) continue;
      const Message msg = t.recv(r.dst, r.src);
      merge_segment(msg, buffer_of(req, r.dst), r.span, r.accumulate);
    }
  }
  if (!sched.scale_to_mean || req.buffers.empty()) return;
  const int64_t k = sched.participants.empty()
                        ? t.endpoints()
                        : static_cast<int64_t>(sched.participants.size());
  const double inv_k = 1.0 / static_cast<double>(k);
  const auto scale = [&](int64_t a) {
    if (!is_owned(a)) return;
    double* mine = buffer_of(req, a);
    if (mine == nullptr) return;
    for (int64_t i = 0; i < req.elems; ++i) mine[i] *= inv_k;
  };
  if (sched.participants.empty()) {
    for (int64_t a = 0; a < t.endpoints(); ++a) scale(a);
  } else {
    for (const int64_t a : sched.participants) scale(a);
  }
}

AsyncCollective::AsyncCollective(Protocol protocol, Transport& transport,
                                 CollectiveRequest request)
    : transport_(&transport),
      request_(std::move(request)),
      schedule_(&owned_) {
  if (protocol == Protocol::kGossip || protocol == Protocol::kParamServer) {
    // No stepped schedule: the whole (recoverable, reliable) blocking
    // protocol runs inside one poll(). Validation happens there — the
    // param-server star has one fewer agent buffer than endpoints.
    one_shot_ = protocol;
    return;
  }
  owned_ = allreduce_schedule(protocol, transport.endpoints(), request_.elems);
  validate_buffers(request_, transport.endpoints());
  if (schedule_->steps.empty()) finalized_ = true;  // k == 1: nothing to do
  if (transport.has_message_faults())
    channel_ = std::make_unique<ReliableChannel>(transport);
}

AsyncCollective::AsyncCollective(const SteppedSchedule& schedule,
                                 Transport& transport,
                                 CollectiveRequest request)
    : transport_(&transport),
      request_(std::move(request)),
      schedule_(&schedule) {
  validate_buffers(request_, transport.endpoints());
  if (schedule_->steps.empty()) finalized_ = true;  // k == 1: nothing to do
  if (transport.has_message_faults())
    channel_ = std::make_unique<ReliableChannel>(transport);
}

AsyncCollective::~AsyncCollective() = default;

void AsyncCollective::enable_recovery(Protocol protocol) {
  if (one_shot_.has_value()) return;  // recovery lives inside the protocol
  COMDML_REQUIRE(next_step_ == 0,
                 "enable_recovery() must precede the first poll()");
  recovery_ = true;
  recovery_protocol_ = protocol;
  snapshot_.assign(static_cast<size_t>(transport_->endpoints()), {});
  if (request_.buffers.empty()) return;
  for (const int64_t a : current_participants()) {
    const double* buf = buffer_of(request_, a);
    snapshot_[static_cast<size_t>(a)].assign(buf, buf + request_.elems);
  }
}

std::vector<int64_t> AsyncCollective::current_participants() const {
  if (!schedule_->participants.empty()) return schedule_->participants;
  std::vector<int64_t> all(static_cast<size_t>(transport_->endpoints()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
  return all;
}

void AsyncCollective::recover() {
  const std::vector<int64_t> live = transport_->live_endpoints();
  std::vector<int64_t> survivors;
  for (const int64_t a : current_participants())
    if (std::find(live.begin(), live.end(), a) != live.end())
      survivors.push_back(a);
  COMDML_REQUIRE(!survivors.empty(),
                 "collective cannot recover: every participant is dead");
  // Partially-reduced buffers are poisoned by the aborted step; restart the
  // survivors from their pristine inputs and drop undelivered mail so the
  // re-formed schedule sees a clean transport.
  if (!request_.buffers.empty()) {
    for (const int64_t a : survivors) {
      const std::vector<double>& snap = snapshot_[static_cast<size_t>(a)];
      std::copy(snap.begin(), snap.end(), buffer_of(request_, a));
    }
  }
  transport_->clear_pending();
  if (channel_ != nullptr) channel_->clear_unacked();
  const bool scale = schedule_->scale_to_mean;
  owned_ = allreduce_schedule_over(recovery_protocol_, survivors,
                                   request_.elems);
  owned_.scale_to_mean = scale;
  schedule_ = &owned_;
  next_step_ = 0;
  finalized_ = false;
  ++recoveries_;
}

bool AsyncCollective::poll() {
  if (one_shot_.has_value()) {
    if (!one_shot_done_) {
      const CollectiveReport rep =
          collective(*one_shot_).run(*transport_, request_);
      recoveries_ = rep.recoveries;
      one_shot_done_ = true;
      finalized_ = true;
    }
    return true;
  }
  if (next_step_ < schedule_->steps.size()) {
    try {
      execute_schedule_step(*transport_, request_,
                            schedule_->steps[next_step_], channel_.get());
      ++next_step_;
    } catch (const EndpointDownError&) {
      if (!recovery_) throw;
      recover();
      return done();
    } catch (const DeliveryTimeoutError& e) {
      // The retry budget ran dry on an edge: treat the silent sender as
      // dead and re-form the survivor schedule, same as a proven death.
      if (!recovery_) throw;
      transport_->fail_endpoint(e.src());
      recover();
      return done();
    }
  }
  if (done() && !finalized_) {
    if (schedule_->scale_to_mean)
      finalize_mean(request_, *schedule_, transport_->endpoints());
    finalized_ = true;
  }
  return done();
}

void AsyncCollective::wait() {
  while (!poll()) {
  }
}

const Collective& collective(Protocol protocol) {
  const auto idx = static_cast<size_t>(protocol);
  COMDML_CHECK(idx < kProtocols);
  return *kRegistry[idx];
}

const Collective* find_collective(std::string_view name) {
  for (const Collective* c : kRegistry)
    if (c->name() == name) return c;
  return nullptr;
}

std::vector<std::string_view> collective_names() {
  std::vector<std::string_view> names;
  names.reserve(kProtocols);
  for (const Collective* c : kRegistry) names.push_back(c->name());
  return names;
}

}  // namespace comdml::comm
