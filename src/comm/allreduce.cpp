#include "comm/allreduce.hpp"

#include <algorithm>
#include <cmath>

#include "core/workspace.hpp"
#include "tensor/ops.hpp"

namespace comdml::comm {

namespace {

int64_t floor_log2(int64_t v) {
  int64_t l = 0;
  while ((int64_t{1} << (l + 1)) <= v) ++l;
  return l;
}

int64_t state_elems(const std::vector<Tensor>& state) {
  int64_t total = 0;
  for (const auto& t : state) total += t.size();
  return total;
}

/// Flatten an agent's state tensors into caller-owned scratch.
void flatten_into(const std::vector<Tensor>& state, double* out) {
  for (const auto& t : state)
    for (const float v : t.flat()) *out++ = v;
}

void unflatten_from(const double* flat, std::vector<Tensor>& state) {
  for (auto& t : state)
    for (float& v : t.flat()) v = static_cast<float>(*flat++);
}

struct Segment {
  size_t begin = 0;
  size_t end = 0;
  [[nodiscard]] size_t size() const { return end - begin; }
};

/// Split [0, n) into `parts` nearly equal chunks.
std::vector<Segment> chunk(size_t n, size_t parts) {
  std::vector<Segment> segs(parts);
  const size_t base = n / parts, extra = n % parts;
  size_t cur = 0;
  for (size_t i = 0; i < parts; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    segs[i] = {cur, cur + len};
    cur += len;
  }
  return segs;
}

int64_t seg_bytes(const Segment& s) {
  return static_cast<int64_t>(s.size() * sizeof(float));
}

}  // namespace

CollectiveCost allreduce_cost(int64_t agents, int64_t model_bytes,
                              double bottleneck_mbps, AllReduceAlgo algo,
                              double latency_sec) {
  COMDML_CHECK(agents > 0 && model_bytes >= 0);
  CollectiveCost cost;
  if (agents == 1) return cost;
  const double k = static_cast<double>(agents);
  const double b = static_cast<double>(model_bytes);
  // Both algorithms are bandwidth-optimal: each agent moves 2(K-1)/K * b.
  cost.bytes_per_agent = static_cast<int64_t>(2.0 * (k - 1.0) / k * b);
  switch (algo) {
    case AllReduceAlgo::kRing:
      cost.steps = 2 * (agents - 1);
      break;
    case AllReduceAlgo::kHalvingDoubling: {
      const int64_t l = floor_log2(agents);
      cost.steps = 2 * l;
      if ((int64_t{1} << l) != agents) {
        // Non-power-of-two pre/post phase: extra agents fold into partners
        // (one extra full-model exchange each way).
        cost.steps += 2;
        cost.bytes_per_agent += static_cast<int64_t>(b);
      }
      break;
    }
  }
  cost.seconds = static_cast<double>(cost.steps) * latency_sec +
                 static_cast<double>(cost.bytes_per_agent) /
                     bytes_per_sec(bottleneck_mbps);
  return cost;
}

AllReduceTrace allreduce_average(std::vector<std::vector<Tensor>>& agent_states,
                                 AllReduceAlgo algo) {
  const size_t k = agent_states.size();
  COMDML_CHECK(k > 0);
  AllReduceTrace trace;
  trace.bytes_sent.assign(k, 0);
  if (k == 1) return trace;

  // Validate structural identity and flatten.
  for (size_t a = 1; a < k; ++a) {
    COMDML_REQUIRE(agent_states[a].size() == agent_states[0].size(),
                   "agent " << a << " state arity differs");
    for (size_t t = 0; t < agent_states[0].size(); ++t)
      COMDML_REQUIRE(
          agent_states[a][t].shape() == agent_states[0][t].shape(),
          "agent " << a << " state tensor " << t << " shape differs");
  }
  // One arena slab holds every agent's flattened double vector; the slab
  // is released on return and its high-water backing is reused next round,
  // so steady-state rounds do not touch the heap here.
  const size_t n = static_cast<size_t>(state_elems(agent_states[0]));
  core::Scratch<double> slab(static_cast<int64_t>(k * n));
  std::vector<double*> buf(k);
  for (size_t a = 0; a < k; ++a) {
    buf[a] = slab.data() + a * n;
    flatten_into(agent_states[a], buf[a]);
  }

  if (algo == AllReduceAlgo::kRing) {
    const auto segs = chunk(n, k);
    // Reduce-scatter: step s, agent a sends chunk (a - s) to agent a+1.
    for (size_t s = 0; s < k - 1; ++s) {
      for (size_t a = 0; a < k; ++a) {
        const size_t dst = (a + 1) % k;
        const size_t c = (a + k - s) % k;
        const Segment& seg = segs[c];
        for (size_t i = seg.begin; i < seg.end; ++i) buf[dst][i] += buf[a][i];
        trace.bytes_sent[a] += seg_bytes(seg);
      }
      ++trace.steps;
    }
    // Each agent a now owns the full sum of chunk (a+1) mod k.
    // All-gather: circulate owned chunks.
    for (size_t s = 0; s < k - 1; ++s) {
      for (size_t a = 0; a < k; ++a) {
        const size_t dst = (a + 1) % k;
        const size_t c = (a + 1 + k - s) % k;
        const Segment& seg = segs[c];
        for (size_t i = seg.begin; i < seg.end; ++i) buf[dst][i] = buf[a][i];
        trace.bytes_sent[a] += seg_bytes(seg);
      }
      ++trace.steps;
    }
  } else {
    // Recursive halving/doubling with non-power-of-two fold-in.
    const int64_t l = floor_log2(static_cast<int64_t>(k));
    const size_t p2 = size_t{1} << l;
    const size_t rem = k - p2;
    // Pre-phase: extras (p2..k-1) send their whole vector to partner
    // (a - p2), which accumulates.
    if (rem > 0) {
      for (size_t e = p2; e < k; ++e) {
        const size_t partner = e - p2;
        for (size_t i = 0; i < n; ++i) buf[partner][i] += buf[e][i];
        trace.bytes_sent[e] += static_cast<int64_t>(n * sizeof(float));
      }
      ++trace.steps;
    }
    // Reduce-scatter among the p2 core agents by recursive halving.
    // Maintain the live segment of each core agent.
    std::vector<Segment> live(p2, Segment{0, n});
    for (int64_t step = 0; step < l; ++step) {
      const size_t mask = size_t{1} << step;
      for (size_t a = 0; a < p2; ++a) {
        const size_t peer = a ^ mask;
        if (peer < a) continue;  // handle each pair once
        // Split both agents' identical live range in half; the lower-rank
        // agent keeps the lower half.
        const Segment range = live[a];
        const size_t mid = range.begin + range.size() / 2;
        const Segment low{range.begin, mid}, high{mid, range.end};
        // a keeps low, sends high; peer keeps high, sends low.
        for (size_t i = high.begin; i < high.end; ++i)
          buf[peer][i] += buf[a][i];
        for (size_t i = low.begin; i < low.end; ++i) buf[a][i] += buf[peer][i];
        trace.bytes_sent[a] += seg_bytes(high);
        trace.bytes_sent[peer] += seg_bytes(low);
        live[a] = low;
        live[peer] = high;
      }
      ++trace.steps;
    }
    // All-gather by recursive doubling (reverse order).
    for (int64_t step = l - 1; step >= 0; --step) {
      const size_t mask = size_t{1} << step;
      for (size_t a = 0; a < p2; ++a) {
        const size_t peer = a ^ mask;
        if (peer < a) continue;
        const Segment sa = live[a], sp = live[peer];
        for (size_t i = sp.begin; i < sp.end; ++i) buf[a][i] = buf[peer][i];
        for (size_t i = sa.begin; i < sa.end; ++i) buf[peer][i] = buf[a][i];
        trace.bytes_sent[a] += seg_bytes(sa);
        trace.bytes_sent[peer] += seg_bytes(sp);
        const Segment merged{std::min(sa.begin, sp.begin),
                             std::max(sa.end, sp.end)};
        live[a] = merged;
        live[peer] = merged;
      }
      ++trace.steps;
    }
    // Post-phase: partners push the final vector back to extras.
    if (rem > 0) {
      for (size_t e = p2; e < k; ++e) {
        const size_t partner = e - p2;
        std::copy(buf[partner], buf[partner] + n, buf[e]);
        trace.bytes_sent[partner] += static_cast<int64_t>(n * sizeof(float));
      }
      ++trace.steps;
    }
  }

  // Normalize the summed vectors to the mean and write back.
  const double inv_k = 1.0 / static_cast<double>(k);
  for (size_t a = 0; a < k; ++a) {
    for (size_t i = 0; i < n; ++i) buf[a][i] *= inv_k;
    unflatten_from(buf[a], agent_states[a]);
  }
  return trace;
}

std::vector<Tensor> mean_state(
    const std::vector<std::vector<Tensor>>& agent_states) {
  COMDML_CHECK(!agent_states.empty());
  std::vector<double> w(agent_states.size(),
                        1.0 / static_cast<double>(agent_states.size()));
  return weighted_mean_state(agent_states, w);
}

std::vector<Tensor> weighted_mean_state(
    const std::vector<std::vector<Tensor>>& agent_states,
    const std::vector<double>& weights) {
  COMDML_CHECK(!agent_states.empty());
  COMDML_CHECK(agent_states.size() == weights.size());
  double wsum = 0.0;
  for (const double w : weights) {
    COMDML_CHECK(w >= 0.0);
    wsum += w;
  }
  COMDML_REQUIRE(wsum > 0.0, "all aggregation weights are zero");

  // Seed the accumulator from agent 0 in place (scale instead of
  // zero-fill + axpy: one fewer pass, identical rounding).
  std::vector<Tensor> out = agent_states[0];
  for (auto& t : out)
    tensor::scale_inplace(t, static_cast<float>(weights[0] / wsum));
  for (size_t a = 1; a < agent_states.size(); ++a) {
    const float w = static_cast<float>(weights[a] / wsum);
    COMDML_REQUIRE(agent_states[a].size() == out.size(),
                   "agent " << a << " state arity differs");
    for (size_t t = 0; t < out.size(); ++t)
      tensor::axpy(w, agent_states[a][t], out[t]);
  }
  return out;
}

}  // namespace comdml::comm
