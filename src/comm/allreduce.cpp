#include "comm/allreduce.hpp"

#include <algorithm>

#include "core/workspace.hpp"
#include "tensor/ops.hpp"

namespace comdml::comm {

Protocol allreduce_protocol(AllReduceAlgo algo) {
  switch (algo) {
    case AllReduceAlgo::kRing:
      return Protocol::kRingAllReduce;
    case AllReduceAlgo::kHalvingDoubling:
      return Protocol::kHalvingDoublingAllReduce;
  }
  COMDML_CHECK(false);
  return Protocol::kRingAllReduce;
}

int64_t state_elems(const std::vector<Tensor>& state) {
  int64_t total = 0;
  for (const auto& t : state) total += t.size();
  return total;
}

void flatten_state(const std::vector<Tensor>& state, double* out) {
  for (const auto& t : state)
    for (const float v : t.flat()) *out++ = v;
}

void unflatten_state(const double* flat, std::vector<Tensor>& state) {
  for (auto& t : state)
    for (float& v : t.flat()) v = static_cast<float>(*flat++);
}

CollectiveCost allreduce_cost(int64_t agents, int64_t model_bytes,
                              double bottleneck_mbps, AllReduceAlgo algo,
                              double latency_sec) {
  COMDML_CHECK(agents > 0 && model_bytes >= 0);
  if (agents == 1) return {};
  SimTransport transport(
      LinkGrid::uniform(agents, bottleneck_mbps, latency_sec));
  CollectiveRequest req;
  req.elems = fp32_wire_elems(model_bytes);
  (void)collective(allreduce_protocol(algo)).run(transport, req);
  const TransportStats& stats = transport.stats();
  return {stats.seconds, stats.steps, stats.max_bytes_sent()};
}

AllReduceOutcome allreduce_average_over(
    std::vector<std::vector<Tensor>>& agent_states, const LinkGrid& grid,
    AllReduceAlgo algo) {
  const size_t k = agent_states.size();
  COMDML_CHECK(k > 0);
  COMDML_CHECK(grid.endpoints() == static_cast<int64_t>(k));
  AllReduceOutcome out;
  out.trace.bytes_sent.assign(k, 0);
  if (k == 1) return out;

  // Validate structural identity and flatten.
  for (size_t a = 1; a < k; ++a) {
    COMDML_REQUIRE(agent_states[a].size() == agent_states[0].size(),
                   "agent " << a << " state arity differs");
    for (size_t t = 0; t < agent_states[0].size(); ++t)
      COMDML_REQUIRE(
          agent_states[a][t].shape() == agent_states[0][t].shape(),
          "agent " << a << " state tensor " << t << " shape differs");
  }
  // One arena slab holds every agent's flattened double vector; the slab
  // is released on return and its high-water backing is reused next round,
  // so steady-state rounds do not touch the heap here.
  const int64_t n = state_elems(agent_states[0]);
  core::Scratch<double> slab(static_cast<int64_t>(k) * n);

  InProcTransport transport(grid);
  CollectiveRequest req;
  req.elems = n;
  req.buffers.resize(k);
  for (size_t a = 0; a < k; ++a) {
    req.buffers[a] = slab.data() + static_cast<int64_t>(a) * n;
    flatten_state(agent_states[a], req.buffers[a]);
  }
  (void)collective(allreduce_protocol(algo)).run(transport, req);
  for (size_t a = 0; a < k; ++a)
    unflatten_state(req.buffers[a], agent_states[a]);

  const TransportStats& stats = transport.stats();
  out.trace.steps = stats.steps;
  out.trace.bytes_sent = stats.bytes_sent;
  out.cost = {stats.seconds, stats.steps, stats.max_bytes_sent()};
  return out;
}

AllReduceTrace allreduce_average(std::vector<std::vector<Tensor>>& agent_states,
                                 AllReduceAlgo algo) {
  const size_t k = agent_states.size();
  COMDML_CHECK(k > 0);
  return allreduce_average_over(
             agent_states,
             LinkGrid::uniform(static_cast<int64_t>(k), 100.0), algo)
      .trace;
}

std::vector<Tensor> mean_state(
    const std::vector<std::vector<Tensor>>& agent_states) {
  COMDML_CHECK(!agent_states.empty());
  std::vector<double> w(agent_states.size(),
                        1.0 / static_cast<double>(agent_states.size()));
  return weighted_mean_state(agent_states, w);
}

std::vector<Tensor> weighted_mean_state(
    const std::vector<std::vector<Tensor>>& agent_states,
    const std::vector<double>& weights) {
  COMDML_CHECK(!agent_states.empty());
  COMDML_CHECK(agent_states.size() == weights.size());
  double wsum = 0.0;
  for (const double w : weights) {
    COMDML_CHECK(w >= 0.0);
    wsum += w;
  }
  COMDML_REQUIRE(wsum > 0.0, "all aggregation weights are zero");

  // Seed the accumulator from agent 0 in place (scale instead of
  // zero-fill + axpy: one fewer pass, identical rounding).
  std::vector<Tensor> out = agent_states[0];
  for (auto& t : out)
    tensor::scale_inplace(t, static_cast<float>(weights[0] / wsum));
  for (size_t a = 1; a < agent_states.size(); ++a) {
    const float w = static_cast<float>(weights[a] / wsum);
    COMDML_REQUIRE(agent_states[a].size() == out.size(),
                   "agent " << a << " state arity differs");
    for (size_t t = 0; t < out.size(); ++t)
      tensor::axpy(w, agent_states[a][t], out[t]);
  }
  return out;
}

}  // namespace comdml::comm
