#include "comm/socket_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "tensor/check.hpp"
#include "tensor/serialize.hpp"

namespace comdml::comm {

namespace {

using Clock = std::chrono::steady_clock;

// Data-plane frame types (the control plane in src/daemon has its own).
constexpr uint16_t kPeerHello = 1;
constexpr uint16_t kPeerData = 2;
constexpr uint16_t kPeerNack = 3;

constexpr uint8_t kFlagCorrupted = 1u << 0;
constexpr uint8_t kFlagRetransmit = 1u << 1;
constexpr uint8_t kFlagReorder = 1u << 2;
constexpr uint8_t kFlagDupCopy = 1u << 3;

Clock::duration seconds_of(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

SocketTransport::SocketTransport(LinkGrid grid, SocketPeerConfig peers,
                                 const Codec* codec, FaultPlan faults)
    : Transport(std::move(grid), codec, std::move(faults)),
      cfg_(std::move(peers)) {
  const int64_t n = endpoints();
  const auto procs = static_cast<int64_t>(cfg_.addrs.size());
  COMDML_REQUIRE(procs >= 1, "SocketTransport needs at least one process");
  COMDML_REQUIRE(cfg_.self >= 0 && cfg_.self < procs,
                 "self index " << cfg_.self << " outside " << procs
                               << " processes");
  COMDML_REQUIRE(static_cast<int64_t>(cfg_.owner.size()) == n,
                 "owner map covers " << cfg_.owner.size() << " endpoints, "
                                     << "transport has " << n);
  for (int64_t e = 0; e < n; ++e)
    COMDML_REQUIRE(cfg_.owner[static_cast<size_t>(e)] >= 0 &&
                       cfg_.owner[static_cast<size_t>(e)] < procs,
                   "endpoint " << e << " owned by out-of-range process "
                               << cfg_.owner[static_cast<size_t>(e)]);
  if (!cfg_.process_alive.empty()) {
    COMDML_REQUIRE(static_cast<int64_t>(cfg_.process_alive.size()) == procs,
                   "process_alive mask covers " << cfg_.process_alive.size()
                                                << " of " << procs
                                                << " processes");
    COMDML_REQUIRE(cfg_.process_alive[static_cast<size_t>(cfg_.self)] != 0,
                   "this process (" << cfg_.self
                                    << ") is marked dead in its own mesh");
  }
  park_enabled_ = has_message_faults();
  peers_.resize(static_cast<size_t>(procs));
  for (auto& p : peers_) p = std::make_unique<Peer>();
  // Endpoints owned by processes excluded from the mesh are dead on
  // arrival — sends and matched receives surface EndpointDownError
  // immediately instead of dialing a peer that will never answer.
  for (int64_t p = 0; p < procs; ++p) {
    if (process_in_mesh(p)) continue;
    peers_[static_cast<size_t>(p)]->down.store(true);
    for (int64_t e = 0; e < n; ++e)
      if (cfg_.owner[static_cast<size_t>(e)] == p) fail_endpoint(e);
  }
  if (live_processes() == 1) {
    // Degenerate single-process mesh (one process configured, or the sole
    // survivor of a crash): every live endpoint is local, no wire.
    bound_ = parse_address(cfg_.addrs[static_cast<size_t>(cfg_.self)]);
    std::lock_guard<std::mutex> guard(ready_mutex_);
    ready_ = true;
    return;
  }
  const SocketAddress listen_addr =
      parse_address(cfg_.addrs[static_cast<size_t>(cfg_.self)]);
  listen_fd_ = listen_on(listen_addr, &bound_);
  setup_thread_ = std::thread(&SocketTransport::setup_mesh, this);
}

SocketTransport::~SocketTransport() {
  running_.store(false);
  if (setup_thread_.joinable()) setup_thread_.join();
  for (auto& p : peers_)
    if (p->fd >= 0) (void)::shutdown(p->fd, SHUT_RDWR);
  for (auto& p : peers_)
    if (p->reader.joinable()) p->reader.join();
  for (auto& p : peers_) close_fd(p->fd);
  if (listen_fd_ >= 0) {
    close_fd(listen_fd_);
    if (bound_.kind == SocketAddress::Kind::kUnix)
      (void)::unlink(bound_.path.c_str());
  }
  mail_cv_.notify_all();
}

void SocketTransport::wait_ready() const {
  std::unique_lock<std::mutex> guard(ready_mutex_);
  ready_cv_.wait(guard, [this] {
    return ready_ || !setup_error_.empty() || !running_.load();
  });
  if (!setup_error_.empty())
    throw std::runtime_error("SocketTransport mesh setup failed: " +
                             setup_error_);
  COMDML_REQUIRE(ready_, "SocketTransport torn down before the mesh formed");
}

int64_t SocketTransport::owner_of(int64_t endpoint) const {
  COMDML_CHECK(endpoint >= 0 && endpoint < endpoints());
  return cfg_.owner[static_cast<size_t>(endpoint)];
}

bool SocketTransport::local_endpoint(int64_t endpoint) const {
  return cfg_.owner[static_cast<size_t>(endpoint)] == cfg_.self;
}

void SocketTransport::setup_mesh() {
  try {
    const auto deadline =
        Clock::now() + seconds_of(cfg_.connect_timeout_sec);
    // Dial every lower-indexed peer (their listeners may still be booting;
    // retry until the connect budget runs out), then accept the rest.
    for (int64_t j = 0; j < cfg_.self; ++j) {
      if (!process_in_mesh(j)) continue;
      const SocketAddress addr =
          parse_address(cfg_.addrs[static_cast<size_t>(j)]);
      int fd = -1;
      while (running_.load()) {
        fd = dial(addr, /*timeout_sec=*/0.25);
        if (fd >= 0) break;
        COMDML_REQUIRE(Clock::now() < deadline,
                       "cannot connect to peer process "
                           << j << " at " << addr.str() << " within "
                           << cfg_.connect_timeout_sec << "s");
      }
      if (fd < 0) return;  // torn down during setup
      tensor::ByteWriter hello;
      hello.i64(cfg_.self);
      COMDML_REQUIRE(send_frame(fd, kPeerHello, hello.bytes(), nullptr),
                     "peer process " << j << " hung up during hello");
      peers_[static_cast<size_t>(j)]->fd = fd;
    }
    int64_t pending = 0;
    for (int64_t j = cfg_.self + 1; j < processes(); ++j)
      if (process_in_mesh(j)) ++pending;
    while (pending > 0 && running_.load()) {
      const int fd = accept_on(listen_fd_, &running_);
      if (fd < 0) {
        COMDML_REQUIRE(!running_.load(),
                       "accept failed while forming the peer mesh");
        return;
      }
      const auto frame = recv_frame(fd);
      COMDML_REQUIRE(frame.has_value() && frame->type == kPeerHello,
                     "first frame from a connecting peer was not hello");
      tensor::ByteReader reader(frame->body);
      const int64_t j = reader.i64();
      COMDML_REQUIRE(j > cfg_.self && j < processes() &&
                         peers_[static_cast<size_t>(j)]->fd < 0,
                     "bad hello from peer process " << j);
      peers_[static_cast<size_t>(j)]->fd = fd;
      --pending;
    }
    for (int64_t p = 0; p < processes(); ++p)
      if (p != cfg_.self && peers_[static_cast<size_t>(p)]->fd >= 0)
        peers_[static_cast<size_t>(p)]->reader =
            std::thread(&SocketTransport::reader_loop, this, p);
    {
      std::lock_guard<std::mutex> guard(ready_mutex_);
      ready_ = true;
    }
    ready_cv_.notify_all();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> guard(ready_mutex_);
      setup_error_ = e.what();
    }
    ready_cv_.notify_all();
  }
}

void SocketTransport::reader_loop(int64_t process) {
  Peer& peer = *peers_[static_cast<size_t>(process)];
  for (;;) {
    std::optional<WireFrame> frame;
    try {
      frame = recv_frame(peer.fd);
    } catch (const std::exception&) {
      frame = std::nullopt;  // desynchronized peer == lost peer
    }
    if (!frame.has_value()) break;
    switch (frame->type) {
      case kPeerData:
        handle_data(frame->body);
        break;
      case kPeerNack:
        handle_nack_frame(frame->body);
        break;
      default:
        break;  // forward-compatible: ignore unknown control frames
    }
  }
  if (running_.load()) peer_lost(process);
}

void SocketTransport::peer_lost(int64_t process) {
  Peer& peer = *peers_[static_cast<size_t>(process)];
  if (peer.down.exchange(true)) return;  // already handled
  // A dead process is endpoint churn: every endpoint it owns dies, so
  // blocked receives and later sends surface as EndpointDownError through
  // the ordinary liveness machinery instead of hanging.
  for (int64_t e = 0; e < endpoints(); ++e)
    if (cfg_.owner[static_cast<size_t>(e)] == process) fail_endpoint(e);
  peer_died_.store(true);
  mail_cv_.notify_all();
}

void SocketTransport::handle_data(const std::vector<uint8_t>& body) {
  tensor::ByteReader reader(body);
  RemoteFrame frame;
  frame.msg.src = reader.i64();
  frame.msg.dst = reader.i64();
  frame.msg.elems = reader.i64();
  frame.msg.wire_bytes = reader.i64();
  frame.msg.seq = reader.i64();
  frame.msg.checksum = reader.u64();
  const uint8_t flags = reader.u8();
  frame.msg.corrupted = (flags & kFlagCorrupted) != 0;
  frame.msg.retransmit = (flags & kFlagRetransmit) != 0;
  frame.reorder = (flags & kFlagReorder) != 0;
  frame.dup_copy = (flags & kFlagDupCopy) != 0;
  frame.msg.deliver_after_step = reader.i64();
  frame.span = reader.f64();
  frame.msg.payload = reader.f64s();
  inject_remote(std::move(frame));
  mail_cv_.notify_all();
}

void SocketTransport::handle_nack_frame(const std::vector<uint8_t>& body) {
  tensor::ByteReader reader(body);
  const int64_t src = reader.i64();
  const int64_t dst = reader.i64();
  const int64_t last_delivered = reader.i64();
  if (!park_enabled_) return;
  Parked copy;
  {
    std::lock_guard<std::mutex> guard(park_mutex_);
    const auto it = parked_.find(src * endpoints() + dst);
    if (it == parked_.end()) return;
    if (it->second.seq <= last_delivered) {
      parked_.erase(it);  // receiver has it; the park served its purpose
      return;
    }
    copy = it->second;
  }
  // Retransmit through the full send path: fresh accounting, a fresh
  // deterministic drop decision, then a closed step so a re-dropped
  // retransmit draws a *different* hash on the next NACK instead of being
  // dropped forever.
  SendOptions opts;
  opts.retransmit = true;
  opts.seq = copy.seq;
  try {
    (void)send(src, dst, copy.elems,
               copy.data.empty() ? nullptr : copy.data.data(), opts);
  } catch (const EndpointDownError&) {
    return;  // the receiver died between NACK and retransmit
  }
  end_step();
}

bool SocketTransport::send_to_peer(int64_t process, uint16_t type,
                                   const std::vector<uint8_t>& body) {
  Peer& peer = *peers_[static_cast<size_t>(process)];
  if (peer.down.load()) return false;
  if (send_frame(peer.fd, type, body, &peer.write_mutex)) return true;
  peer_lost(process);
  return false;
}

void SocketTransport::forward_remote(RemoteFrame&& frame) {
  COMDML_REQUIRE(local_endpoint(frame.msg.src),
                 "send from endpoint " << frame.msg.src
                                       << " which this process does not own");
  wait_ready();
  if (park_enabled_ && !frame.dup_copy && !frame.original.empty()) {
    std::lock_guard<std::mutex> guard(park_mutex_);
    auto& slot = parked_[frame.msg.src * endpoints() + frame.msg.dst];
    slot.seq = frame.msg.seq;
    slot.elems = frame.msg.elems;
    slot.data = std::move(frame.original);
  }
  if (frame.dropped) return;  // the wire never saw it; the park might serve
  const int64_t process = cfg_.owner[static_cast<size_t>(frame.msg.dst)];
  tensor::ByteWriter w;
  w.i64(frame.msg.src);
  w.i64(frame.msg.dst);
  w.i64(frame.msg.elems);
  w.i64(frame.msg.wire_bytes);
  w.i64(frame.msg.seq);
  w.u64(frame.msg.checksum);
  uint8_t flags = 0;
  if (frame.msg.corrupted) flags |= kFlagCorrupted;
  if (frame.msg.retransmit) flags |= kFlagRetransmit;
  if (frame.reorder) flags |= kFlagReorder;
  if (frame.dup_copy) flags |= kFlagDupCopy;
  w.u8(flags);
  w.i64(frame.msg.deliver_after_step);
  w.f64(frame.span);
  w.f64s(frame.msg.payload);
  if (!send_to_peer(process, kPeerData, w.bytes()))
    throw EndpointDownError(frame.msg.dst,
                            "peer process " + std::to_string(process) +
                                " disconnected (send " +
                                std::to_string(frame.msg.src) + " -> " +
                                std::to_string(frame.msg.dst) + ")");
}

bool SocketTransport::nack(int64_t src, int64_t dst,
                           int64_t last_delivered_seq) {
  if (local_endpoint(src)) return false;  // caller retransmits locally
  wait_ready();
  tensor::ByteWriter w;
  w.i64(src);
  w.i64(dst);
  w.i64(last_delivered_seq);
  // A failed control send means the peer died; its endpoints are now dead
  // and the caller's next receive raises EndpointDownError. Either way the
  // retransmission is out of the caller's hands.
  (void)send_to_peer(cfg_.owner[static_cast<size_t>(src)], kPeerNack,
                     w.bytes());
  return true;
}

Message SocketTransport::recv(int64_t dst, int64_t src) {
  if (local_endpoint(src)) return Transport::recv(dst, src);
  wait_ready();
  const auto deadline = Clock::now() + seconds_of(cfg_.recv_timeout_sec);
  for (;;) {
    if (auto msg = Transport::try_recv_from(dst, src))
      return std::move(*msg);
    // A peer died after the mesh formed: this schedule is doomed (the
    // recovery barrier will re-form it), and the awaited sender may have
    // aborted before sending — waiting out the full timeout would hang
    // every survivor whose next frame came from an aborted schedule leg.
    if (peer_died_.load())
      throw EndpointDownError(
          src, "peer process died mid-schedule; frame " +
                   std::to_string(src) + " -> " + std::to_string(dst) +
                   " may never arrive");
    COMDML_REQUIRE(Clock::now() < deadline,
                   "socket recv timeout waiting for "
                       << src << " -> " << dst
                       << " (schedule bug, or a wedged peer process)");
    std::unique_lock<std::mutex> guard(mail_mutex_);
    mail_cv_.wait_for(guard, std::chrono::milliseconds(2));
  }
}

std::optional<Message> SocketTransport::try_recv_from(int64_t dst,
                                                      int64_t src) {
  if (local_endpoint(src)) return Transport::try_recv_from(dst, src);
  wait_ready();
  // A remote frame takes real wall-clock time to arrive; grant it a grace
  // window before reporting "nothing pending", or a ReliableChannel would
  // mistake wire latency for loss and flood the edge with retransmits.
  const auto deadline = Clock::now() + seconds_of(cfg_.recv_grace_sec);
  for (;;) {
    if (auto msg = Transport::try_recv_from(dst, src)) return msg;
    if (Clock::now() >= deadline) return std::nullopt;
    std::unique_lock<std::mutex> guard(mail_mutex_);
    mail_cv_.wait_for(guard, std::chrono::milliseconds(1));
  }
}

}  // namespace comdml::comm
