// Central parameter-server communication cost (FedAvg / FedProx baselines).
//
// Each selected agent downloads the global model and uploads its update
// through its own access link; the server's aggregate bandwidth is shared
// across concurrent transfers, which is exactly the central-bottleneck
// effect the paper attributes to server-based FL (§V-B-2).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/link.hpp"
#include "sim/resources.hpp"

namespace comdml::comm {

struct ParamServerConfig {
  double server_mbps = 1000.0;  ///< total server bandwidth, shared
  double latency_sec = kDefaultLatencySec;
};

/// Per-agent down+up time for the selected agents; the effective rate of
/// agent i is min(link_i, server_mbps / #selected).
[[nodiscard]] std::vector<double> server_round_times(
    const std::vector<sim::ResourceProfile>& profiles,
    const std::vector<int64_t>& selected, int64_t model_bytes,
    const ParamServerConfig& config = {});

}  // namespace comdml::comm
