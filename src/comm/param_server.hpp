// Central parameter-server communication (FedAvg / FedProx baselines).
//
// Each selected agent downloads the global model and uploads its update
// through its own access link; the server's aggregate bandwidth is shared
// across concurrent transfers, which is exactly the central-bottleneck
// effect the paper attributes to server-based FL (§V-B-2).
//
// The round itself is the "param_server" protocol of comm/collective.hpp
// run over a star LinkGrid whose agent<->server edges already carry the
// min(link, server_share) effective rate.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/collective.hpp"
#include "comm/link.hpp"
#include "sim/resources.hpp"

namespace comdml::comm {

struct ParamServerConfig {
  double server_mbps = 1000.0;  ///< total server bandwidth, shared
  double latency_sec = kDefaultLatencySec;
};

/// Star grid for one server round: endpoints 0..K-1 are the agents,
/// endpoint K the server; agent i's edge runs at
/// min(link_i, server_mbps / #selected). Throws if a selected agent has
/// no uplink.
[[nodiscard]] LinkGrid param_server_grid(
    const std::vector<sim::ResourceProfile>& profiles,
    const std::vector<int64_t>& selected, const ParamServerConfig& config = {});

/// Per-agent down+up time for the selected agents (SimTransport run of the
/// real round schedule).
[[nodiscard]] std::vector<double> server_round_times(
    const std::vector<sim::ResourceProfile>& profiles,
    const std::vector<int64_t>& selected, int64_t model_bytes,
    const ParamServerConfig& config = {});

}  // namespace comdml::comm
