// Message-level communication substrate (the seam under every collective).
//
// The paper's claim is byte-level accounting of *every* protocol family —
// pairwise offloading, decentralized AllReduce (§IV-B), gossip, and the
// parameter-server baselines. Historically each protocol carried its own
// analytic cost function next to an ad-hoc real implementation; this header
// replaces that N-times pattern with one transport:
//
//   Collective (ring / halving-doubling / gossip / param-server)
//        |  send(src, dst, elems [, payload]) / recv / end_step
//        v
//   Transport  — per-edge LinkModel, byte/step/latency accounting,
//                optional per-message Codec, fault injection
//        |                |
//   SimTransport     InProcTransport
//   (timing-only)    (moves real payloads, thread-safe)
//
// Both transports share one accounting core, so a protocol written once
// against this interface yields *identical* predicted (SimTransport) and
// executed (InProcTransport) traffic — the cost-vs-trace parity the tests
// used to re-derive per protocol now holds by construction and is checked
// once per protocol in tests/transport_test.cpp.
//
// Wire format: payload elements are fp32 on the wire (elems * 4 bytes
// through the default codec); in-process math keeps fp64 accumulators, the
// same precision split the original AllReduce executor used.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "comm/link.hpp"
#include "sim/topology.hpp"
#include "tensor/random.hpp"

namespace comdml::comm {

/// One directed edge of the transport graph.
struct LinkModel {
  double mbps = 0.0;  ///< sustainable rate; 0 = no link
  double latency_sec = kDefaultLatencySec;

  [[nodiscard]] bool usable() const noexcept { return mbps > 0.0; }
};

/// Dense per-edge link table over `endpoints()` communication endpoints
/// (agents, plus optionally a virtual server node).
class LinkGrid {
 public:
  /// All-to-all links at one rate (collectives routed through an overlay
  /// at the bottleneck rate — the seed cost models' assumption).
  [[nodiscard]] static LinkGrid uniform(
      int64_t endpoints, double mbps,
      double latency_sec = kDefaultLatencySec);

  /// Per-edge bandwidths of a peer-to-peer topology (absent edges and
  /// disconnected endpoints become unusable links).
  [[nodiscard]] static LinkGrid from_topology(
      const sim::Topology& topology,
      double latency_sec = kDefaultLatencySec);

  /// Star: endpoints 0..K-1 are agents, endpoint K (== `server_rank()`)
  /// is a central server reachable at `agent_mbps[i]` from agent i.
  [[nodiscard]] static LinkGrid star(const std::vector<double>& agent_mbps,
                                     double latency_sec = kDefaultLatencySec);

  [[nodiscard]] int64_t endpoints() const noexcept { return n_; }
  [[nodiscard]] int64_t server_rank() const noexcept { return n_ - 1; }

  [[nodiscard]] const LinkModel& link(int64_t src, int64_t dst) const;
  /// Mutable per-edge access (lossy/per-edge-bandwidth scenarios).
  [[nodiscard]] LinkModel& link(int64_t src, int64_t dst);

 private:
  LinkGrid(int64_t n, LinkModel fill);

  int64_t n_ = 0;
  std::vector<LinkModel> links_;  // n_ * n_, row-major [src][dst]
};

/// Per-message wire codec. `wire_bytes` must return the same value for a
/// timing-only message (`data == nullptr`) as its analytic estimate, so
/// simulated and executed traffic stay comparable; `transform` applies the
/// lossy round trip to delivered payloads.
class Codec {
 public:
  virtual ~Codec() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual int64_t wire_bytes(int64_t elems,
                                           const double* data) const = 0;
  virtual void transform(double* /*data*/, int64_t /*elems*/) const {}
  /// One-pass encode for delivered payloads: applies the lossy round trip
  /// in place and returns the wire bytes. The default composes
  /// wire_bytes + transform; compressing codecs override it so a send
  /// compresses each payload once, not twice.
  [[nodiscard]] virtual int64_t encode(double* data, int64_t elems) const {
    const int64_t wire = wire_bytes(elems, data);
    transform(data, elems);
    return wire;
  }
};

/// fp32 on the wire, lossless in fp64 accumulators: elems * 4 bytes.
[[nodiscard]] const Codec& identity_codec();

/// Dense signed int8 wire codec for model-state/gradient payloads (the
/// bucket-collective codec): one symmetric quantization scale
/// (scale = max|v| / 127) plus one int8 per element. The wire size is a
/// pure function of the element count — `quantized_wire_bytes(elems)` —
/// derived from the wire format itself rather than an assumed ratio, so a
/// timing-only SimTransport charges *exactly* the bytes an InProcTransport
/// executes. Signed values survive (unlike the sparse activation codec in
/// comm/compress.hpp, which drops negatives); the round trip is lossy at
/// int8 resolution of the payload's dynamic range, which the round
/// pipeline's per-bucket error feedback re-injects next round.
class QuantizingCodec final : public Codec {
 public:
  /// Wire bytes of `elems` quantized values: a 4-byte scale header plus
  /// one byte per element (0 elements ship an empty message).
  [[nodiscard]] static int64_t quantized_wire_bytes(int64_t elems);

  [[nodiscard]] std::string_view name() const override { return "int8"; }
  [[nodiscard]] int64_t wire_bytes(int64_t elems,
                                   const double* data) const override;
  void transform(double* data, int64_t elems) const override;
  [[nodiscard]] int64_t encode(double* data, int64_t elems) const override;
};

/// Shared immutable QuantizingCodec instance (codecs are borrowed by
/// transports and must outlive them; fleets wire this one in).
[[nodiscard]] const Codec& quantized_codec();

/// Message-loss injection: each message is dropped independently with
/// `drop_prob` from a deterministic per-transport stream. Dropped messages
/// still occupy the sender's link (the bytes were transmitted) but are
/// never delivered. Lossy transports suit best-effort protocols (gossip,
/// param-server retries); the stepped AllReduce schedules assume lossless
/// delivery and throw on the missing matched receive — wrap the traffic in
/// a comm::ReliableChannel to survive loss with retransmission instead.
///
/// `message_faults` adds the remaining unreliable-network shapes on a
/// per-edge basis: delivery delay (a message matures only after extra
/// steps close), duplication (a second identical copy arrives), payload
/// corruption (detected by the message checksum), reordering (a message
/// jumps the mailbox queue), and per-edge drop. Every decision is a pure
/// hash of (seed, step, src, dst, seq, fault kind) — no shared RNG stream
/// — so a SimTransport and an InProcTransport driving the same schedule
/// misbehave on exactly the same messages regardless of thread
/// interleaving. A fault entry applies while the shared step counter is
/// inside [first_step, last_step] (last_step == -1 means forever), which
/// lets tests pin a fault to one exact message deterministically.
///
/// `endpoint_failures` adds agent-level deaths on top of message faults:
/// an endpoint is dead once the transport has closed `after_steps` steps
/// (after_steps == 0 means dead from the start). Deadness is a pure
/// function of the shared step counter, so a SimTransport and an
/// InProcTransport driving the same schedule fail at the same point and
/// keep predicted-vs-executed parity for the surviving traffic. Traffic
/// touching a dead endpoint raises EndpointDownError instead of hanging.
struct FaultPlan {
  struct EndpointFailure {
    int64_t endpoint = -1;
    int64_t after_steps = 0;  ///< dead once stats().steps >= after_steps
  };

  /// One per-edge message-fault rule. The first entry matching a message's
  /// (src, dst) edge governs it; -1 matches any endpoint.
  struct MessageFault {
    int64_t src = -1;              ///< sender filter (-1 = any)
    int64_t dst = -1;              ///< receiver filter (-1 = any)
    int64_t first_step = 0;        ///< active from this step count on
    int64_t last_step = -1;        ///< inclusive; -1 = active forever
    double drop_prob = 0.0;        ///< per-edge loss (on top of global)
    double delay_prob = 0.0;       ///< message matures 1..delay_steps_max late
    int64_t delay_steps_max = 1;
    double duplicate_prob = 0.0;   ///< a second identical copy is delivered
    double corrupt_prob = 0.0;     ///< payload bits flip; checksum catches it
    double reorder_prob = 0.0;     ///< message jumps to the mailbox front
  };

  double drop_prob = 0.0;
  uint64_t seed = 0;
  std::vector<EndpointFailure> endpoint_failures;
  std::vector<MessageFault> message_faults;
};

/// Typed condition for traffic touching a dead endpoint: a send to or a
/// matched receive from a failed agent surfaces as this exception (never a
/// hang), carrying which endpoint was down so collectives can re-form
/// around the survivors.
class EndpointDownError : public std::runtime_error {
 public:
  EndpointDownError(int64_t endpoint, const std::string& what)
      : std::runtime_error(what), endpoint_(endpoint) {}

  [[nodiscard]] int64_t endpoint() const noexcept { return endpoint_; }

 private:
  int64_t endpoint_;
};

/// One in-flight (or delivered) message.
struct Message {
  int64_t src = -1;
  int64_t dst = -1;
  int64_t elems = 0;       ///< fp32 values on the wire
  int64_t wire_bytes = 0;  ///< after the codec
  /// Per-edge sequence number (0, 1, ... for each directed src -> dst
  /// edge). Retransmits reuse the original's seq, which is how a
  /// ReliableChannel dedupes duplicated and re-sent copies.
  int64_t seq = 0;
  /// FNV-1a over the delivered payload bytes at send time; 0 for
  /// timing-only messages. A corrupted payload no longer matches.
  uint64_t checksum = 0;
  /// Set by corruption faults. Timing-only transports carry no payload to
  /// flip, so the flag is what keeps Sim/InProc corruption parity.
  bool corrupted = false;
  bool retransmit = false;  ///< re-sent by a ReliableChannel
  /// Message is invisible to recv/try_recv until the shared step counter
  /// reaches this value (-1 = deliverable immediately). Delay faults set it.
  int64_t deliver_after_step = -1;
  std::vector<double> payload;  ///< empty on timing-only transports

  [[nodiscard]] bool has_payload() const noexcept { return !payload.empty(); }
  /// Payload survived the wire: checksum matches (payload-moving) and no
  /// corruption fault hit it (timing-only parity flag).
  [[nodiscard]] bool intact() const;
};

/// Byte/step/latency accounting shared by every transport.
struct TransportStats {
  int64_t steps = 0;     ///< synchronous steps closed by end_step()
  int64_t messages = 0;
  int64_t dropped_messages = 0;
  int64_t total_wire_bytes = 0;
  /// Modeled wall clock: sum over steps of the slowest transfer in the
  /// step (messages within a step run concurrently).
  double seconds = 0.0;
  std::vector<int64_t> bytes_sent;      ///< per endpoint
  std::vector<int64_t> bytes_received;  ///< per endpoint (delivered only)
  std::vector<double> send_seconds;     ///< per endpoint, own sends
  std::vector<double> recv_seconds;     ///< per endpoint, delivered inbound
  /// Per-edge drop counts, row-major [src][dst] over endpoints; sums to
  /// dropped_messages. Fault-injection tests assert *where* losses landed.
  std::vector<int64_t> dropped_per_edge;
  // -- unreliable-delivery accounting. Retransmit and duplicate bytes are
  // tracked apart from the schedule's own traffic so goodput (the bytes a
  // fault-free run would move) stays comparable across fault plans and
  // across the Sim/InProc pair.
  int64_t retransmit_messages = 0;
  int64_t retransmit_wire_bytes = 0;
  int64_t duplicated_messages = 0;
  int64_t duplicated_wire_bytes = 0;
  int64_t corrupt_messages = 0;
  int64_t delayed_messages = 0;
  int64_t reordered_messages = 0;
  /// Modeled seconds spent in retry backoff (charged into `seconds` too).
  double backoff_seconds = 0.0;
  /// Per-closed-step history: the modeled span and message count of every
  /// end_step() call, *including* empty steps (which record 0/0 without
  /// touching `steps`/`seconds`). Multi-process runs drive the same
  /// schedule in lockstep, so index i of every process's history is the
  /// same global step — merge_transport_stats() folds them positionally.
  std::vector<double> step_spans;
  std::vector<int64_t> step_message_counts;

  [[nodiscard]] int64_t max_bytes_sent() const;
  [[nodiscard]] double mean_bytes_sent() const;
  /// Dropped messages on the directed edge src -> dst.
  [[nodiscard]] int64_t dropped_on(int64_t src, int64_t dst) const;
  /// Schedule-intent bytes: total wire traffic minus retransmits and
  /// duplicates. Under any fault plan this equals the fault-free run's
  /// total_wire_bytes, and Sim == InProc by construction.
  [[nodiscard]] int64_t goodput_bytes() const {
    return total_wire_bytes - retransmit_wire_bytes - duplicated_wire_bytes;
  }
};

/// Fold the per-process stats of one multi-process run into the stats the
/// equivalent single-transport run would have produced. Counters and
/// per-endpoint vectors sum (each process only accounts traffic touching
/// its own endpoints); the step history merges positionally — per global
/// step, the span is the max over processes (messages within a step run
/// concurrently) and the message count is the sum — and `steps`/`seconds`
/// are rebuilt from the merged history plus the summed backoff. Exact for
/// fault-free lockstep schedules: max over doubles is order-independent.
[[nodiscard]] TransportStats merge_transport_stats(
    const std::vector<TransportStats>& parts);

/// Message-level transport. Thread-safe: send/recv/try_recv/end_step may be
/// called concurrently (collectives run single-threaded today, but the
/// fleet's concurrent per-agent rounds may drive point-to-point traffic).
class Transport {
 public:
  /// `codec` is borrowed (nullptr = identity) and must outlive the
  /// transport.
  explicit Transport(LinkGrid grid, const Codec* codec = nullptr,
                     FaultPlan faults = {});
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] int64_t endpoints() const noexcept {
    return grid_.endpoints();
  }
  [[nodiscard]] const LinkGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] bool linked(int64_t src, int64_t dst) const {
    return grid_.link(src, dst).usable();
  }
  /// Endpoints with a usable outbound link from `i`, ascending.
  [[nodiscard]] std::vector<int64_t> neighbors(int64_t i) const;

  /// Retransmission metadata for send(): a ReliableChannel re-sends a lost
  /// message under its original sequence number with the retransmit flag,
  /// so receivers can dedupe and accounting can separate retry traffic.
  struct SendOptions {
    bool retransmit = false;
    int64_t seq = -1;  ///< -1 = assign the edge's next sequence number
  };

  /// Post `elems` fp32-wire values from src to dst. `data` (fp64, length
  /// `elems`) may be null for timing-only traffic; payload-moving
  /// transports copy it through the codec. Zero-element messages are legal
  /// and still pay the link latency. Throws on an unusable link. Returns
  /// the message's per-edge sequence number.
  int64_t send(int64_t src, int64_t dst, int64_t elems,
               const double* data = nullptr);
  int64_t send(int64_t src, int64_t dst, int64_t elems, const double* data,
               const SendOptions& opts);

  /// Matched receive: the oldest deliverable in-flight message src -> dst
  /// (delay faults hide a message until it matures). Throws if none is
  /// pending (a protocol schedule bug, or a dropped/delayed message under
  /// fault injection). Virtual so a wire-backed transport can block until
  /// the frame actually arrives instead of treating "not here yet" as a
  /// schedule bug.
  [[nodiscard]] virtual Message recv(int64_t dst, int64_t src);

  /// Non-throwing matched receive: nullopt instead of the schedule-bug
  /// failure when nothing deliverable from src is pending. Still raises
  /// EndpointDownError for a dead receiver, or a dead sender with nothing
  /// in flight (the message will never arrive — recover, don't retry).
  /// Reliable delivery polls through this. Virtual so a wire-backed
  /// transport can grant in-flight frames a real-time grace window before
  /// reporting a loss.
  [[nodiscard]] virtual std::optional<Message> try_recv_from(int64_t dst,
                                                             int64_t src);

  /// Ask the process owning `src` to retransmit its oldest unacked message
  /// on the src -> dst edge (everything past `last_delivered_seq`). An
  /// in-process transport has no remote senders, so the base returns false
  /// and the caller (ReliableChannel) retransmits from its own window; a
  /// wire-backed transport ships a NACK control frame to the owning
  /// process and returns true.
  [[nodiscard]] virtual bool nack(int64_t src, int64_t dst,
                                  int64_t last_delivered_seq);

  /// Any-source receive in arrival order; nullopt when dst's mailbox holds
  /// nothing deliverable. Used by protocols with data-dependent fan-in
  /// (gossip).
  [[nodiscard]] std::optional<Message> try_recv(int64_t dst);

  /// Charge modeled retry-backoff wait time into the transport clock (both
  /// `seconds` and the `backoff_seconds` breakdown).
  void charge_backoff(double seconds);

  /// Close a synchronous step: everything posted since the last end_step
  /// ran concurrently, so the modeled clock advances by the span of the
  /// slowest message. A step with no traffic is not counted.
  void end_step();

  /// Accounting view. Not synchronized against concurrent sends; read it
  /// from the coordinating thread between phases only. Cross-thread
  /// readers (the daemon's stats RPC answers while socket reader threads
  /// are still injecting inbound traffic) must use stats_snapshot().
  [[nodiscard]] const TransportStats& stats() const noexcept {
    return stats_;
  }
  /// Locked copy of the accounting — safe to call from any thread while
  /// sends, receives, and remote injections are in flight. Every stats_
  /// mutation happens under mutex_, so the copy is a consistent point-in-
  /// time snapshot (this is the contract the fleetd stats RPC relies on).
  [[nodiscard]] TransportStats stats_snapshot() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
  }
  /// Locked read of one per-edge drop counter — what an adaptive
  /// RetryPolicy sizes its budget from, without copying the whole
  /// snapshot on every retry attempt.
  [[nodiscard]] int64_t dropped_on_edge(int64_t src, int64_t dst) const {
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_.dropped_on(src, dst);
  }
  /// Clears stats and undelivered mail; fault schedules and manual
  /// endpoint deaths survive (reset() is "new round", not "new fleet" —
  /// note a step-scheduled failure re-arms because the step counter
  /// restarts).
  void reset();

  // ---- endpoint liveness ----------------------------------------------------

  /// Kill `endpoint` immediately (manual churn, as opposed to the
  /// FaultPlan's step-scheduled deaths). Idempotent.
  void fail_endpoint(int64_t endpoint);
  /// Bring `endpoint` back: clears both a manual death and any scheduled
  /// failure entries for it. Idempotent.
  void revive_endpoint(int64_t endpoint);
  /// Schedule `endpoint` to die once `after_steps` steps have closed
  /// (0 = dead now). Deterministic: both transport flavors observing the
  /// same schedule fail at the same step.
  void schedule_endpoint_failure(int64_t endpoint, int64_t after_steps);
  /// Revive every endpoint (drops all manual and scheduled failures).
  void clear_endpoint_failures();

  [[nodiscard]] bool endpoint_alive(int64_t endpoint) const;
  /// Currently-alive endpoints, ascending.
  [[nodiscard]] std::vector<int64_t> live_endpoints() const;
  /// True when any endpoint failure is configured (manual or scheduled) —
  /// callers use this to decide whether a collective should arm recovery.
  [[nodiscard]] bool has_endpoint_faults() const;
  /// True when messages can be lost, delayed, duplicated, or corrupted —
  /// callers use this to decide whether to route traffic through a
  /// ReliableChannel.
  [[nodiscard]] bool has_message_faults() const;
  /// Drop every undelivered message (mid-collective recovery restarts the
  /// survivor schedule from clean mailboxes). Stats are untouched: the
  /// wasted traffic really crossed the wire.
  void clear_pending();

 protected:
  /// Payload-moving transports return true; timing-only ones false.
  [[nodiscard]] virtual bool delivers_payload() const noexcept = 0;

  // ---- multi-process seam ---------------------------------------------------
  //
  // send() splits accounting at the process boundary: the sender charges
  // messages/bytes_sent/send_seconds (and the drop, if any), while
  // bytes_received/recv_seconds are charged by the process owning the
  // destination when the frame arrives. In-process transports own every
  // endpoint, so the split is invisible and the legacy accounting order is
  // unchanged.

  /// One message bound for an endpoint owned by another process, plus the
  /// sidecar state a wire backend needs to deliver and re-deliver it.
  struct RemoteFrame {
    Message msg;
    double span = 0.0;   ///< modeled transfer seconds (receiver charges it)
    bool reorder = false;   ///< receiver pushes to the mailbox front
    bool dup_copy = false;  ///< duplicate: bytes count, the clock does not
    /// Sender-side drop: the frame never crosses the wire; the backend may
    /// still park a copy so a later NACK can trigger a retransmission.
    bool dropped = false;
    /// Pre-codec payload for NACK retransmits (retransmitting the encoded
    /// payload through send() would re-encode it). Populated only when the
    /// transport has message faults configured.
    std::vector<double> original;
  };

  /// Does this process own `endpoint` (deliver locally) or must a send be
  /// forwarded to another process? Base transports own everything.
  [[nodiscard]] virtual bool local_endpoint(int64_t /*endpoint*/) const {
    return true;
  }
  /// Ship a frame to the process owning msg.dst. Called by send() outside
  /// the transport lock (wire writes must not serialize local accounting).
  /// Base transports never produce remote frames, so the default throws.
  virtual void forward_remote(RemoteFrame&& frame);
  /// Receiver-side delivery of a forwarded frame: charges
  /// bytes_received/recv_seconds (the halves send() skipped for a remote
  /// destination) and deposits into the destination mailbox. Thread-safe —
  /// wire reader threads call this concurrently with local traffic.
  void inject_remote(RemoteFrame&& frame);

 private:
  /// Endpoint dead right now? Caller holds mutex_ (deadness depends on the
  /// shared step counter, which is what keeps Sim/InProc failure points
  /// identical).
  [[nodiscard]] bool dead_locked(int64_t endpoint) const;
  /// First message-fault rule matching the edge at the current step, or
  /// nullptr. Caller holds mutex_.
  [[nodiscard]] const FaultPlan::MessageFault* message_fault_locked(
      int64_t src, int64_t dst) const;
  /// Deterministic fault decision: pure hash of (seed, step, edge, seq,
  /// salt) mapped to [0, 1) and compared against `prob`. Caller holds
  /// mutex_ (reads the shared step counter).
  [[nodiscard]] bool fault_fires_locked(double prob, int64_t src, int64_t dst,
                                        int64_t seq, uint64_t salt) const;
  /// Deliverable at the current step count? Caller holds mutex_.
  [[nodiscard]] bool mature_locked(const Message& m) const {
    return m.deliver_after_step < 0 || stats_.steps >= m.deliver_after_step;
  }

  LinkGrid grid_;
  const Codec* codec_;  // never null after construction
  FaultPlan faults_;
  tensor::Rng fault_rng_;
  TransportStats stats_;
  double step_span_ = 0.0;
  int64_t step_messages_ = 0;
  std::vector<char> manual_dead_;  // per endpoint, fail_endpoint() deaths
  std::vector<int64_t> next_seq_;  // per directed edge [src][dst]
  std::vector<std::deque<Message>> mailboxes_;  // per dst, arrival order
  mutable std::mutex mutex_;
};

/// Analytic clock only: accounts every byte/step/second of the schedule,
/// never moves data. This is the cost model that used to be scattered
/// across `allreduce_cost`, `gossip_exchange_cost`, `server_round_times`.
class SimTransport final : public Transport {
 public:
  using Transport::Transport;

 protected:
  [[nodiscard]] bool delivers_payload() const noexcept override {
    return false;
  }
};

/// Moves real payloads between in-process agents through per-destination
/// mailboxes while keeping the exact same accounting as SimTransport.
class InProcTransport final : public Transport {
 public:
  using Transport::Transport;

 protected:
  [[nodiscard]] bool delivers_payload() const noexcept override {
    return true;
  }
};

}  // namespace comdml::comm
