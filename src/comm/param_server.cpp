#include "comm/param_server.hpp"

#include <algorithm>

namespace comdml::comm {

LinkGrid param_server_grid(const std::vector<sim::ResourceProfile>& profiles,
                           const std::vector<int64_t>& selected,
                           const ParamServerConfig& config) {
  COMDML_CHECK(!selected.empty());
  COMDML_CHECK(config.server_mbps > 0.0);
  const double share =
      config.server_mbps / static_cast<double>(selected.size());
  std::vector<double> rates(profiles.size(), 0.0);
  for (const int64_t idx : selected) {
    COMDML_CHECK(idx >= 0 && idx < static_cast<int64_t>(profiles.size()));
    const auto& p = profiles[static_cast<size_t>(idx)];
    COMDML_REQUIRE(p.connected(), "selected agent " << idx
                                                    << " has no uplink");
    rates[static_cast<size_t>(idx)] = std::min(p.mbps, share);
  }
  return LinkGrid::star(rates, config.latency_sec);
}

std::vector<double> server_round_times(
    const std::vector<sim::ResourceProfile>& profiles,
    const std::vector<int64_t>& selected, int64_t model_bytes,
    const ParamServerConfig& config) {
  SimTransport transport(param_server_grid(profiles, selected, config));
  CollectiveRequest req;
  req.elems = fp32_wire_elems(model_bytes);
  req.participants = selected;
  (void)collective(Protocol::kParamServer).run(transport, req);
  const TransportStats& stats = transport.stats();
  std::vector<double> times;
  times.reserve(selected.size());
  for (const int64_t idx : selected)
    times.push_back(stats.send_seconds[static_cast<size_t>(idx)] +
                    stats.recv_seconds[static_cast<size_t>(idx)]);
  return times;
}

}  // namespace comdml::comm
