#include "comm/param_server.hpp"

#include <algorithm>

namespace comdml::comm {

std::vector<double> server_round_times(
    const std::vector<sim::ResourceProfile>& profiles,
    const std::vector<int64_t>& selected, int64_t model_bytes,
    const ParamServerConfig& config) {
  COMDML_CHECK(!selected.empty());
  COMDML_CHECK(config.server_mbps > 0.0);
  const double share =
      config.server_mbps / static_cast<double>(selected.size());
  std::vector<double> times;
  times.reserve(selected.size());
  for (const int64_t idx : selected) {
    COMDML_CHECK(idx >= 0 &&
                 idx < static_cast<int64_t>(profiles.size()));
    const auto& p = profiles[static_cast<size_t>(idx)];
    COMDML_REQUIRE(p.connected(), "selected agent " << idx
                                                    << " has no uplink");
    const double rate = std::min(p.mbps, share);
    // Download + upload of the full model.
    times.push_back(2.0 *
                    transfer_seconds(model_bytes, rate, config.latency_sec));
  }
  return times;
}

}  // namespace comdml::comm
