// Activation wire compression: the codec behind the timing model's
// `activation_compression` factor (paper §IV-B cites quantized training
// [36] as directly integrable).
//
// Post-ReLU activations are non-negative and ~50 % zeros, so the codec
// combines (a) a 1-bit presence mask and (b) int8 affine quantization of
// the non-zero values: 6.4x at 50 % sparsity, >10x at 75 %. Both directions
// are implemented for real, so tests can measure the achieved ratio on
// genuine network activations and bound the reconstruction error.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace comdml::comm {

using tensor::Tensor;

struct CompressedActivations {
  tensor::Shape shape;
  float scale = 1.0f;           ///< dequant: value = scale * q
  std::vector<uint8_t> runs;    ///< presence bitmask, 1 bit per element
  std::vector<uint8_t> values;  ///< int8-quantized non-zero magnitudes

  /// Payload bytes on the wire (runs + values + small header).
  [[nodiscard]] int64_t wire_bytes() const;
};

/// Compress a (typically post-ReLU) activation tensor. Values are clamped
/// to [0, max]; negative inputs are legal but quantize to zero, matching
/// the semantics of a ReLU cut.
[[nodiscard]] CompressedActivations compress_activations(const Tensor& t);

/// Reconstruct the tensor (lossy: int8 resolution of the dynamic range).
[[nodiscard]] Tensor decompress_activations(const CompressedActivations& c);

/// Achieved ratio raw_bytes / wire_bytes.
[[nodiscard]] double compression_ratio(const Tensor& t);

/// Max absolute reconstruction error of one round trip.
[[nodiscard]] double reconstruction_error(const Tensor& t);

}  // namespace comdml::comm
