#include "data/synthetic.hpp"

#include <cmath>

namespace comdml::data {

Dataset make_blobs(int64_t samples, int64_t classes, int64_t features,
                   float spread, Rng& rng) {
  COMDML_CHECK(samples > 0 && classes > 1 && features > 0 && spread >= 0.0f);
  Tensor centers = rng.normal_tensor({classes, features}, 0.0f, 1.0f);
  Dataset ds;
  ds.images = Tensor({samples, features});
  ds.labels.resize(static_cast<size_t>(samples));
  ds.classes = classes;
  auto ci = centers.flat();
  auto xo = ds.images.flat();
  for (int64_t i = 0; i < samples; ++i) {
    const int64_t y = i % classes;  // balanced classes
    ds.labels[static_cast<size_t>(i)] = y;
    for (int64_t f = 0; f < features; ++f)
      xo[i * features + f] = ci[y * features + f] + rng.normal(0.0f, spread);
  }
  return ds;
}

Dataset make_spirals(int64_t samples_per_class, int64_t classes, float noise,
                     Rng& rng) {
  COMDML_CHECK(samples_per_class > 0 && classes > 1 && noise >= 0.0f);
  const int64_t n = samples_per_class * classes;
  Dataset ds;
  ds.images = Tensor({n, 2});
  ds.labels.resize(static_cast<size_t>(n));
  ds.classes = classes;
  auto xo = ds.images.flat();
  int64_t row = 0;
  for (int64_t c = 0; c < classes; ++c) {
    for (int64_t i = 0; i < samples_per_class; ++i) {
      const float t =
          static_cast<float>(i) / static_cast<float>(samples_per_class);
      const float r = 0.2f + 0.8f * t;
      const float theta = 3.0f * t * 3.14159265f +
                          2.0f * 3.14159265f * static_cast<float>(c) /
                              static_cast<float>(classes);
      xo[row * 2 + 0] = r * std::cos(theta) + rng.normal(0.0f, noise);
      xo[row * 2 + 1] = r * std::sin(theta) + rng.normal(0.0f, noise);
      ds.labels[static_cast<size_t>(row)] = c;
      ++row;
    }
  }
  return ds;
}

Dataset make_synthetic_images(int64_t samples, int64_t classes,
                              const Shape& sample_shape, float noise,
                              Rng& rng) {
  COMDML_CHECK(samples > 0 && classes > 1 && noise >= 0.0f);
  COMDML_REQUIRE(sample_shape.size() == 3,
                 "sample_shape must be [C,H,W], got "
                     << tensor::shape_str(sample_shape));
  const int64_t row = tensor::shape_size(sample_shape);
  Tensor prototypes = rng.normal_tensor({classes, row}, 0.0f, 1.0f);
  Dataset ds;
  Shape full;
  full.push_back(samples);
  full.insert(full.end(), sample_shape.begin(), sample_shape.end());
  ds.images = Tensor(full);
  ds.labels.resize(static_cast<size_t>(samples));
  ds.classes = classes;
  auto pi = prototypes.flat();
  auto xo = ds.images.flat();
  for (int64_t i = 0; i < samples; ++i) {
    const int64_t y = i % classes;
    ds.labels[static_cast<size_t>(i)] = y;
    for (int64_t f = 0; f < row; ++f)
      xo[i * row + f] = pi[y * row + f] + rng.normal(0.0f, noise);
  }
  return ds;
}

Dataset make_for_spec(const DatasetSpec& spec, double fraction, float noise,
                      Rng& rng) {
  COMDML_CHECK(fraction > 0.0 && fraction <= 1.0);
  const auto samples = std::max<int64_t>(
      spec.classes, static_cast<int64_t>(spec.train_size * fraction));
  return make_synthetic_images(samples, spec.classes, spec.sample_shape,
                               noise, rng);
}

}  // namespace comdml::data
