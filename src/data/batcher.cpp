#include "data/batcher.hpp"

#include <numeric>

namespace comdml::data {

Batcher::Batcher(const Dataset& dataset, int64_t batch_size, tensor::Rng rng)
    : dataset_(&dataset), batch_size_(batch_size), rng_(rng) {
  dataset.validate();
  COMDML_CHECK(batch_size > 0);
  order_.resize(static_cast<size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
}

void Batcher::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

Batcher::State Batcher::save() const {
  return State{order_, cursor_, epoch_, rng_.state()};
}

void Batcher::load(const State& state) {
  COMDML_REQUIRE(static_cast<int64_t>(state.order.size()) == dataset_->size(),
                 "batcher state is for a " << state.order.size()
                                           << "-sample dataset, have "
                                           << dataset_->size());
  COMDML_CHECK(state.cursor >= 0 && state.epoch >= 0);
  order_ = state.order;
  cursor_ = state.cursor;
  epoch_ = state.epoch;
  rng_.set_state(state.rng);
}

Batch Batcher::next() {
  if (cursor_ >= dataset_->size()) {
    ++epoch_;
    reshuffle();
  }
  const int64_t take = std::min(batch_size_, dataset_->size() - cursor_);
  std::span<const int64_t> idx(order_.data() + cursor_,
                               static_cast<size_t>(take));
  Dataset sub = dataset_->subset(idx);
  cursor_ += take;
  return Batch{std::move(sub.images), std::move(sub.labels)};
}

}  // namespace comdml::data
