#include "data/dataset.hpp"

namespace comdml::data {

Shape Dataset::sample_shape() const {
  COMDML_CHECK(!images.empty());
  Shape s(images.shape().begin() + 1, images.shape().end());
  return s;
}

Dataset Dataset::subset(std::span<const int64_t> indices) const {
  validate();
  const Shape per = sample_shape();
  const int64_t row = tensor::shape_size(per);
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(indices.size()));
  out_shape.insert(out_shape.end(), per.begin(), per.end());
  Dataset out;
  out.images = Tensor(out_shape);
  out.labels.reserve(indices.size());
  out.classes = classes;
  auto src = images.flat();
  auto dst = out.images.flat();
  int64_t r = 0;
  for (const int64_t idx : indices) {
    COMDML_REQUIRE(idx >= 0 && idx < size(),
                   "subset index " << idx << " out of range [0," << size()
                                   << ")");
    std::copy(src.begin() + idx * row, src.begin() + (idx + 1) * row,
              dst.begin() + r * row);
    out.labels.push_back(labels[static_cast<size_t>(idx)]);
    ++r;
  }
  return out;
}

void Dataset::validate() const {
  COMDML_REQUIRE(!images.empty(), "dataset has no images");
  COMDML_REQUIRE(static_cast<int64_t>(labels.size()) == size(),
                 "dataset: " << labels.size() << " labels for " << size()
                             << " images");
  COMDML_REQUIRE(classes > 1, "dataset needs at least two classes");
  for (const int64_t y : labels)
    COMDML_REQUIRE(y >= 0 && y < classes, "label " << y << " out of range");
}

DatasetSpec cifar10_spec() { return {"cifar10", 50000, 10, {3, 32, 32}}; }
DatasetSpec cifar100_spec() { return {"cifar100", 50000, 100, {3, 32, 32}}; }
DatasetSpec cinic10_spec() { return {"cinic10", 90000, 10, {3, 32, 32}}; }

}  // namespace comdml::data
