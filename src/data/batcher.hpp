// Mini-batch iteration with per-epoch reshuffling.
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace comdml::data {

struct Batch {
  Tensor x;
  std::vector<int64_t> y;
};

/// Cycles through a dataset in shuffled mini-batches; reshuffles at each
/// epoch boundary. The final partial batch of an epoch is emitted as-is.
class Batcher {
 public:
  /// `dataset` must outlive the batcher.
  Batcher(const Dataset& dataset, int64_t batch_size, tensor::Rng rng);

  /// Next mini-batch (wraps to a fresh epoch automatically).
  [[nodiscard]] Batch next();

  /// Number of batches per epoch.
  [[nodiscard]] int64_t batches_per_epoch() const noexcept {
    return (dataset_->size() + batch_size_ - 1) / batch_size_;
  }

  [[nodiscard]] int64_t epoch() const noexcept { return epoch_; }

  /// Durable iteration state: shuffle order, position, epoch, and the
  /// shuffling rng. Restoring it resumes the exact batch sequence.
  struct State {
    std::vector<int64_t> order;
    int64_t cursor = 0;
    int64_t epoch = 0;
    std::string rng;
  };
  [[nodiscard]] State save() const;
  /// Restores a save()d state; `order` must index this batcher's dataset.
  void load(const State& state);

 private:
  const Dataset* dataset_;
  int64_t batch_size_;
  tensor::Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
  int64_t epoch_ = 0;

  void reshuffle();
};

}  // namespace comdml::data
