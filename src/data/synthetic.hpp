// Deterministic synthetic datasets.
//
// Offline substitute for CIFAR/CINIC downloads (see DESIGN.md §3): timing
// experiments depend only on dataset geometry, while real-training tests and
// examples need *learnable* data, which these generators provide.
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace comdml::data {

using tensor::Rng;

/// Gaussian blobs in a flat feature space: class c is a fixed random center,
/// samples are center + N(0, spread). Linearly separable for small spread.
[[nodiscard]] Dataset make_blobs(int64_t samples, int64_t classes,
                                 int64_t features, float spread, Rng& rng);

/// Two-dimensional interleaved spirals (non-linearly separable), the classic
/// non-convex benchmark for MLP convergence tests.
[[nodiscard]] Dataset make_spirals(int64_t samples_per_class, int64_t classes,
                                   float noise, Rng& rng);

/// Class-coded images: each class has a fixed random prototype image; a
/// sample is prototype + pixel noise. Learnable by small conv nets yet cheap
/// to generate at any (C,H,W).
[[nodiscard]] Dataset make_synthetic_images(int64_t samples, int64_t classes,
                                            const Shape& sample_shape,
                                            float noise, Rng& rng);

/// Synthetic stand-in with the exact geometry of a paper dataset
/// (sample count scaled by `fraction` so tests stay fast).
[[nodiscard]] Dataset make_for_spec(const DatasetSpec& spec, double fraction,
                                    float noise, Rng& rng);

}  // namespace comdml::data
