// In-memory labelled dataset plus the catalog of paper dataset geometries.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace comdml::data {

using tensor::Shape;
using tensor::Tensor;

/// A labelled dataset held fully in memory. Images are [N, C, H, W] (or
/// [N, F] for flat feature sets); labels are class indices in [0, classes).
struct Dataset {
  Tensor images;
  std::vector<int64_t> labels;
  int64_t classes = 0;

  [[nodiscard]] int64_t size() const {
    return images.empty() ? 0 : images.dim(0);
  }

  /// Per-sample shape (shape with the batch axis stripped).
  [[nodiscard]] Shape sample_shape() const;

  /// Deep-copied row subset in the given order.
  [[nodiscard]] Dataset subset(std::span<const int64_t> indices) const;

  /// Throws std::invalid_argument if sizes/labels are inconsistent.
  void validate() const;
};

/// Geometry of a benchmark dataset — enough for the timing simulator and the
/// learning-curve model; pixel content is irrelevant for those paths.
struct DatasetSpec {
  std::string name;
  int64_t train_size = 0;
  int64_t classes = 0;
  Shape sample_shape;
};

/// CIFAR-10: 50k train, 10 classes, 3x32x32.
[[nodiscard]] DatasetSpec cifar10_spec();
/// CIFAR-100: 50k train, 100 classes, 3x32x32.
[[nodiscard]] DatasetSpec cifar100_spec();
/// CINIC-10: 90k train, 10 classes, 3x32x32.
[[nodiscard]] DatasetSpec cinic10_spec();

}  // namespace comdml::data
