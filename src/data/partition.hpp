// Dataset partitioning across agents: IID and Dirichlet label-skew
// (the paper's non-I.I.D. variants use Dirichlet concentration 0.5).
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace comdml::data {

using tensor::Rng;

using Partition = std::vector<std::vector<int64_t>>;  ///< per-agent indices

/// Shuffle [0, total) and deal out equally (remainder spread one-by-one).
[[nodiscard]] Partition iid_partition(int64_t total, int64_t agents, Rng& rng);

/// Label-distribution-skew partition: for each class, split its samples
/// across agents with proportions drawn from Dirichlet(alpha). Guarantees
/// every agent at least `min_per_agent` samples by stealing from the
/// largest shard.
[[nodiscard]] Partition dirichlet_label_partition(
    std::span<const int64_t> labels, int64_t agents, double alpha, Rng& rng,
    int64_t min_per_agent = 1);

/// Per-agent class histograms [agents][classes] (for skew diagnostics).
[[nodiscard]] std::vector<std::vector<int64_t>> label_histograms(
    std::span<const int64_t> labels, const Partition& parts, int64_t classes);

/// Average total-variation distance between each agent's label distribution
/// and the global one — 0 for perfectly IID shards, grows with skew.
[[nodiscard]] double label_skew(std::span<const int64_t> labels,
                                const Partition& parts, int64_t classes);

}  // namespace comdml::data
