#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace comdml::data {

Partition iid_partition(int64_t total, int64_t agents, Rng& rng) {
  COMDML_CHECK(total > 0 && agents > 0);
  COMDML_REQUIRE(total >= agents,
                 "cannot split " << total << " samples over " << agents
                                 << " agents");
  std::vector<int64_t> idx(static_cast<size_t>(total));
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  Partition parts(static_cast<size_t>(agents));
  const int64_t base = total / agents;
  const int64_t extra = total % agents;
  size_t cursor = 0;
  for (int64_t a = 0; a < agents; ++a) {
    const int64_t take = base + (a < extra ? 1 : 0);
    auto& shard = parts[static_cast<size_t>(a)];
    shard.assign(idx.begin() + static_cast<int64_t>(cursor),
                 idx.begin() + static_cast<int64_t>(cursor) + take);
    cursor += static_cast<size_t>(take);
  }
  return parts;
}

Partition dirichlet_label_partition(std::span<const int64_t> labels,
                                    int64_t agents, double alpha, Rng& rng,
                                    int64_t min_per_agent) {
  COMDML_CHECK(!labels.empty() && agents > 0 && alpha > 0.0 &&
               min_per_agent >= 0);
  const int64_t classes =
      1 + *std::max_element(labels.begin(), labels.end());

  // Bucket sample indices by class, shuffled for random assignment order.
  std::vector<std::vector<int64_t>> by_class(static_cast<size_t>(classes));
  for (size_t i = 0; i < labels.size(); ++i)
    by_class[static_cast<size_t>(labels[i])].push_back(
        static_cast<int64_t>(i));
  for (auto& bucket : by_class) rng.shuffle(bucket);

  Partition parts(static_cast<size_t>(agents));
  for (const auto& bucket : by_class) {
    if (bucket.empty()) continue;
    const auto props = rng.dirichlet(alpha, static_cast<size_t>(agents));
    // Convert proportions to counts, largest-remainder rounding.
    const auto n = static_cast<int64_t>(bucket.size());
    std::vector<int64_t> counts(static_cast<size_t>(agents), 0);
    int64_t assigned = 0;
    std::vector<std::pair<double, size_t>> remainders;
    for (size_t a = 0; a < counts.size(); ++a) {
      const double exact = props[a] * static_cast<double>(n);
      counts[a] = static_cast<int64_t>(exact);
      assigned += counts[a];
      remainders.emplace_back(exact - std::floor(exact), a);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (int64_t i = 0; i < n - assigned; ++i)
      ++counts[remainders[static_cast<size_t>(i) % remainders.size()].second];
    size_t cursor = 0;
    for (size_t a = 0; a < counts.size(); ++a) {
      for (int64_t c = 0; c < counts[a]; ++c)
        parts[a].push_back(bucket[cursor++]);
    }
  }

  // Enforce the per-agent minimum by moving samples from the largest shard.
  for (auto& shard : parts) {
    while (static_cast<int64_t>(shard.size()) < min_per_agent) {
      auto donor = std::max_element(
          parts.begin(), parts.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      COMDML_REQUIRE(donor->size() > 1,
                     "not enough samples to give every agent "
                         << min_per_agent);
      shard.push_back(donor->back());
      donor->pop_back();
    }
  }
  return parts;
}

std::vector<std::vector<int64_t>> label_histograms(
    std::span<const int64_t> labels, const Partition& parts, int64_t classes) {
  std::vector<std::vector<int64_t>> hist(
      parts.size(), std::vector<int64_t>(static_cast<size_t>(classes), 0));
  for (size_t a = 0; a < parts.size(); ++a)
    for (const int64_t idx : parts[a]) {
      COMDML_CHECK(idx >= 0 && idx < static_cast<int64_t>(labels.size()));
      ++hist[a][static_cast<size_t>(labels[static_cast<size_t>(idx)])];
    }
  return hist;
}

double label_skew(std::span<const int64_t> labels, const Partition& parts,
                  int64_t classes) {
  const auto hist = label_histograms(labels, parts, classes);
  std::vector<double> global(static_cast<size_t>(classes), 0.0);
  for (const int64_t y : labels) global[static_cast<size_t>(y)] += 1.0;
  for (auto& g : global) g /= static_cast<double>(labels.size());

  double total_tv = 0.0;
  size_t counted = 0;
  for (const auto& h : hist) {
    const auto n = static_cast<double>(
        std::accumulate(h.begin(), h.end(), int64_t{0}));
    if (n == 0) continue;
    double tv = 0.0;
    for (size_t c = 0; c < h.size(); ++c)
      tv += std::fabs(static_cast<double>(h[c]) / n - global[c]);
    total_tv += 0.5 * tv;
    ++counted;
  }
  return counted == 0 ? 0.0 : total_tv / static_cast<double>(counted);
}

}  // namespace comdml::data
