// Empirical convergence analysis for Theorem 1.
//
// The paper proves O(1/sqrt(R A_m)) (non-convex) and O(1/(R A_m)) + linear
// (convex) convergence of the slow and fast agent-side models under
// local-loss split training, with fast-side convergence *contingent on*
// slow-side convergence (constants C1/C2). These utilities measure the
// quantities the theorem speaks about — gradient norms and suboptimality
// traces — and fit decay rates so property tests can check the predicted
// behaviour on real training runs.
#pragma once

#include <span>
#include <vector>

#include "nn/split.hpp"

namespace comdml::analysis {

/// Global L2 norm of all parameter gradients currently accumulated in `m`.
[[nodiscard]] double gradient_norm(nn::Module& m);

/// Least-squares slope of log(y) against log(x) over positive samples —
/// the empirical decay exponent (a 1/R rate gives slope ~ -1, a 1/sqrt(R)
/// rate gives slope ~ -0.5). Requires >= 3 positive points.
[[nodiscard]] double log_log_slope(std::span<const double> xs,
                                   std::span<const double> ys);

/// Fraction of steps where the running minimum improved — a robustness
/// measure of "the trace is going down" that tolerates SGD noise.
[[nodiscard]] double descent_fraction(std::span<const double> trace);

/// Smallest prefix mean / last-window mean (how much the trace shrank).
[[nodiscard]] double shrink_ratio(std::span<const double> trace,
                                  size_t window = 5);

/// Traces from one local-loss split-training run (Theorem 1's setting).
struct SplitRunTraces {
  std::vector<double> slow_loss;       ///< f_s per round (Eq. 2)
  std::vector<double> fast_loss;       ///< f_f per round (Eq. 3)
  std::vector<double> slow_grad_norm;  ///< ||grad f_s|| after each round
  std::vector<double> fast_grad_norm;  ///< ||grad f_f|| after each round
};

/// Train `model` (cut at `cut`) with local-loss split training for
/// `rounds` full-batch steps on (x, labels), recording the theorem's
/// quantities. The model is trained in place.
[[nodiscard]] SplitRunTraces run_split_training(
    nn::Sequential& model, size_t cut, const tensor::Shape& in_shape,
    int64_t classes, const tensor::Tensor& x,
    std::span<const int64_t> labels, int64_t rounds, float lr,
    uint64_t seed);

}  // namespace comdml::analysis
