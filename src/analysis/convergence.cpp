#include "analysis/convergence.hpp"

#include <cmath>

namespace comdml::analysis {

double gradient_norm(nn::Module& m) {
  double sq = 0.0;
  for (const nn::Parameter* p : m.parameters())
    for (const float g : p->grad.flat()) sq += static_cast<double>(g) * g;
  return std::sqrt(sq);
}

double log_log_slope(std::span<const double> xs, std::span<const double> ys) {
  COMDML_CHECK(xs.size() == ys.size());
  std::vector<double> lx, ly;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  COMDML_REQUIRE(lx.size() >= 3, "need >= 3 positive samples, got "
                                     << lx.size());
  double mx = 0, my = 0;
  for (size_t i = 0; i < lx.size(); ++i) {
    mx += lx[i];
    my += ly[i];
  }
  mx /= static_cast<double>(lx.size());
  my /= static_cast<double>(lx.size());
  double cov = 0, var = 0;
  for (size_t i = 0; i < lx.size(); ++i) {
    cov += (lx[i] - mx) * (ly[i] - my);
    var += (lx[i] - mx) * (lx[i] - mx);
  }
  COMDML_REQUIRE(var > 0.0, "degenerate x range");
  return cov / var;
}

double descent_fraction(std::span<const double> trace) {
  COMDML_CHECK(trace.size() >= 2);
  double best = trace[0];
  size_t improved = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] < best) {
      best = trace[i];
      ++improved;
    }
  }
  return static_cast<double>(improved) /
         static_cast<double>(trace.size() - 1);
}

double shrink_ratio(std::span<const double> trace, size_t window) {
  COMDML_CHECK(trace.size() >= 2 * window && window >= 1);
  double head = 0, tail = 0;
  for (size_t i = 0; i < window; ++i) {
    head += trace[i];
    tail += trace[trace.size() - 1 - i];
  }
  // A tail of exactly zero means the objective fully converged; report a
  // large finite ratio instead of dividing by zero.
  return head / std::max(tail, 1e-12);
}

SplitRunTraces run_split_training(nn::Sequential& model, size_t cut,
                                  const tensor::Shape& in_shape,
                                  int64_t classes, const tensor::Tensor& x,
                                  std::span<const int64_t> labels,
                                  int64_t rounds, float lr, uint64_t seed) {
  COMDML_CHECK(rounds > 0);
  tensor::Rng rng(seed);
  nn::LocalLossSplitTrainer trainer(model, cut, in_shape, classes, rng,
                                    {lr, 0.9f, 0.0f});
  SplitRunTraces traces;
  traces.slow_loss.reserve(static_cast<size_t>(rounds));
  for (int64_t r = 0; r < rounds; ++r) {
    const auto stats = trainer.train_batch(x, labels);
    traces.slow_loss.push_back(stats.slow_loss);
    traces.fast_loss.push_back(stats.fast_loss);
    // Gradient norms of the *last* step, split by side: prefix + aux vs
    // suffix. train_batch leaves the most recent gradients in place.
    double slow_sq = 0.0, fast_sq = 0.0;
    for (size_t u = 0; u < model.size(); ++u) {
      std::vector<nn::Parameter*> params;
      model.unit(u).collect_parameters(params);
      double sq = 0.0;
      for (const nn::Parameter* p : params)
        for (const float g : p->grad.flat())
          sq += static_cast<double>(g) * g;
      if (u < cut)
        slow_sq += sq;
      else
        fast_sq += sq;
    }
    traces.slow_grad_norm.push_back(std::sqrt(slow_sq));
    traces.fast_grad_norm.push_back(std::sqrt(fast_sq));
  }
  return traces;
}

}  // namespace comdml::analysis
