// Overlapped round engine: concurrent bucketed collectives that hide
// aggregation behind the tail of local training.
//
// A fleet round used to be strictly `train -> (barrier) -> aggregate`; the
// collective only started after the slowest agent finished, so the round
// wall-time was compute + communication even though the two use different
// resources. This engine pipelines them:
//
//   - nn::BucketPlan partitions model state into fixed-byte buckets.
//   - Each agent's training task publishes bucket contributions as they
//     become final (layer-by-layer during the last backward, via
//     nn::BucketReadyTracker); the k-th contribution makes the bucket
//     ready.
//   - Idle pool workers run drain(): they pop ready buckets and execute
//     each bucket's collective (comm::AsyncCollective over the bucket's
//     own InProcTransport) while other workers are still training — the
//     allreduce of bucket i runs while bucket i+1 is still being computed.
//   - An optional per-bucket wire codec (comm::quantized_codec) shrinks
//     every exchange-step payload on the wire, with cross-round
//     error-feedback residuals keeping repeated lossy rounds convergent.
//
// Determinism: a bucket's collective schedule and arithmetic depend only on
// (agents, bucket elems, protocol), never on which worker runs it or when,
// and distinct buckets touch disjoint slab regions — so the reduced state
// is bit-identical to running the same buckets sequentially, at every
// thread count. (Bucket-size invariance additionally holds for
// halving/doubling; see nn/bucket.hpp.)
//
// The modeled clock: each bucket's transport accounts the usual
// seconds/steps/bytes of its schedule, and compose_overlap_timeline()
// serializes the bucket collectives on the shared link starting at their
// ready times. The same composition runs on SimTransport-predicted and
// InProcTransport-executed bucket costs — which are equal by construction
// — so the predicted overlapped round time matches the executed schedule
// shape exactly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/allreduce.hpp"
#include "nn/bucket.hpp"

namespace comdml::core {

/// Modeled timeline of pipelined bucket collectives over one shared link:
/// collectives serialize on the link in ready order (ties broken by bucket
/// index), each starting when its payload is ready and the link is free.
struct OverlapTimeline {
  std::vector<double> start;   ///< per bucket, plan order
  std::vector<double> finish;  ///< per bucket, plan order
  double span = 0.0;  ///< round start -> last collective finish
};

[[nodiscard]] OverlapTimeline compose_overlap_timeline(
    const std::vector<double>& ready_seconds,
    const std::vector<double>& bucket_seconds);

/// Uniform all-to-all grid at `topology`'s bottleneck link rate (the seed
/// cost models' routing assumption, shared by every real fleet). Throws
/// when the topology has no usable link and more than one agent.
[[nodiscard]] comm::LinkGrid bottleneck_grid(const sim::Topology& topology,
                                             double latency_sec);

/// Executed traffic summary of one bucketed aggregation.
struct PipelineStats {
  int64_t buckets = 0;
  int64_t steps = 0;          ///< collective steps summed over buckets
  double comm_seconds = 0.0;  ///< modeled link seconds summed over buckets
  int64_t max_bytes_sent = 0;  ///< max over agents of summed bucket sends
  /// Retransmission traffic summed over buckets (reliable delivery under
  /// message faults; 0 on a clean network). Excluded from goodput.
  int64_t retransmit_bytes = 0;
  std::vector<double> bucket_seconds;  ///< per-bucket modeled clock
};

/// Concurrent bucketed-allreduce engine for fleet rounds. One instance per
/// fleet, reused round over round (the contribution slab, the per-bucket
/// transports, and the error-feedback residuals are retained;
/// begin_round() resets the accounting).
class RoundPipeline {
 public:
  /// `codec` (borrowed; nullptr = fp32 wire) compresses every exchange
  /// step's payload of every bucket collective — SimTransport-predicted
  /// and InProcTransport-executed wire bytes stay equal because the codec
  /// charges the same count with and without a payload. With
  /// `error_feedback` (lossy codecs only) each agent keeps a per-bucket
  /// residual across rounds: the contribution is quantized once at
  /// publish time, the quantization error is carried into the next
  /// round's payload, and repeated rounds stay convergent instead of
  /// accumulating compression bias.
  ///
  /// `faults` is installed on every bucket transport (unreliable-network
  /// injection: drops/delays/duplicates/corruption); the bucket collectives
  /// then retransmit through comm::ReliableChannel automatically.
  /// `straggler_support` allocates the residual slab even without a lossy
  /// codec so defer()/absorb_late() can carry a late agent's update into
  /// its next contribution (error feedback with an identity codec).
  RoundPipeline(int64_t agents, const nn::BucketPlan& plan,
                const comm::LinkGrid& grid, comm::AllReduceAlgo algo,
                const comm::Codec* codec = nullptr,
                bool error_feedback = false, comm::FaultPlan faults = {},
                bool straggler_support = false);

  /// Reset counters/transports for a new round. No thread may be inside
  /// contribute()/drain() when this runs.
  void begin_round();

  [[nodiscard]] const nn::BucketPlan& plan() const noexcept {
    return *plan_;
  }
  [[nodiscard]] int64_t agents() const noexcept { return agents_; }

  // ---- elastic membership ---------------------------------------------------

  /// Remove `agent` between rounds: the next begin_round() expects no
  /// contribution from it and every bucket reduces over the remaining live
  /// set. Idempotent.
  void leave(int64_t agent);
  /// Re-admit `agent` between rounds. Its error-feedback residuals are
  /// zeroed (stale errors must not leak into the rejoined stream) and any
  /// endpoint faults against it are cleared on every bucket transport.
  /// Idempotent.
  void rejoin(int64_t agent);
  /// Mid-round death: drop `agent`'s not-yet-published contributions and
  /// re-target every affected bucket countdown so no collector waits
  /// forever. Contributions it already published stay in their buckets
  /// (they were real). Safe to call from the dying agent's own training
  /// task while collectors drain concurrently.
  void deactivate(int64_t agent);
  [[nodiscard]] bool agent_live(int64_t agent) const;
  [[nodiscard]] std::vector<int64_t> live_agents() const;

  // ---- straggler deferral ---------------------------------------------------

  /// Exclude a live agent from this round's aggregation (straggler past
  /// the deadline): every bucket stops waiting for its contribution and
  /// reduces over the on-time set. The agent stays live — it keeps
  /// training and rejoins the aggregation next round. Must run before the
  /// agent publishes anything this round; requires straggler_support.
  void defer(int64_t agent);
  /// Fold a deferred agent's late update into its error-feedback residual
  /// and adopt the round consensus: per element, the difference between
  /// its staged (late) state and `src_agent`'s reduced mean is added to
  /// the residual — the late work re-enters the stream next round instead
  /// of being discarded — and its slots take the consensus so
  /// restore_state() re-syncs the replica. `src_agent` must be an on-time
  /// reduced agent. Call after the round completes, with the late state
  /// staged via stage_state().
  void absorb_late(int64_t agent, int64_t src_agent);
  /// Flatten `state` into the agent's slots without contributing (the
  /// staging half of publish_state, for deferred agents).
  void stage_state(int64_t agent, const std::vector<tensor::Tensor*>& state);

  /// Arm/clear a scheduled endpoint failure on every bucket transport
  /// (mid-collective fault injection; collectives then run with recovery).
  void schedule_endpoint_failure(int64_t agent, int64_t after_steps);
  void clear_endpoint_failures();

  /// Error-feedback residual slab (agents x total_elems, agent-major;
  /// empty when error feedback is off). Survives rounds by design; these
  /// accessors let it also survive pipeline rebuilds and checkpoint/restore
  /// keyed by (agent, bucket) position.
  [[nodiscard]] const std::vector<double>& residuals() const noexcept {
    return residual_;
  }
  void load_residuals(const std::vector<double>& residuals);

  /// Agent `agent`'s flatten destination for bucket `bucket`
  /// (`plan().bucket(bucket).elems` fp64 values). Slots of distinct
  /// (agent, bucket) pairs are disjoint.
  [[nodiscard]] double* slot(int64_t agent, int64_t bucket);

  /// Publish agent's contribution to `bucket` (its slot must be fully
  /// written). Thread-safe; the k-th contribution enqueues the bucket's
  /// collective for the collectors.
  void contribute(int64_t agent, int64_t bucket);
  /// Publish every bucket for `agent` (coarse producers: split-trained
  /// replicas, DP-noised snapshots).
  void contribute_all(int64_t agent);

  /// Flatten every bucket of `state` (the agent's replica, plan order)
  /// into the agent's slots and contribute them — the whole-replica
  /// producer used by both fleets.
  void publish_state(int64_t agent, const std::vector<tensor::Tensor*>& state);
  void publish_state(int64_t agent, const std::vector<tensor::Tensor>& state);
  /// After the round completes: write the agent's reduced bucket means
  /// back into `state`.
  void restore_state(int64_t agent, const std::vector<tensor::Tensor*>& state);

  /// Collector loop: pops ready buckets and executes their collectives
  /// until every bucket of the round is reduced (or abort()). Any number
  /// of threads may drain concurrently; idle pool workers call this after
  /// finishing their training tasks.
  void drain();

  /// Fan `n_tasks` training tasks over the thread pool with, in overlapped
  /// mode, one collector slot per pool thread appended after them. Chunks
  /// are claimed in index order, so collector slots are only picked up by
  /// workers with no training work left; those workers drain ready bucket
  /// collectives concurrently with the remaining compute. A task exception
  /// aborts the pipeline (waking any waiting collectors) before it
  /// propagates. This is the round orchestration shared by RealFleet and
  /// RealBaselineFleet; each fleet supplies only its task body.
  void run_round(int64_t n_tasks,
                 const std::function<void(int64_t task)>& task_fn,
                 bool overlap);

  /// Wake collectors and abandon pending buckets (exception path). The
  /// round's results are unusable afterwards; begin_round() recovers.
  void abort();

  /// Executed traffic of the finished round. After the reduce, every
  /// agent's slots hold the bucket means (unflatten them back into the
  /// replicas).
  [[nodiscard]] PipelineStats stats() const;

 private:
  void run_bucket(int64_t bucket);
  /// Publish-time error feedback: fold the carried residual into the
  /// agent's slot, quantize the slot once through the codec, and keep the
  /// new quantization error for next round.
  void apply_error_feedback(int64_t agent, int64_t bucket);
  [[nodiscard]] int64_t live_count() const;
  /// Contribution state of (agent, bucket) this round.
  [[nodiscard]] std::atomic<char>& mark(int64_t agent, int64_t bucket);

  const nn::BucketPlan* plan_;
  int64_t agents_;
  comm::Protocol protocol_;
  const comm::Codec* codec_;  ///< nullptr = fp32 wire
  /// One transport per bucket so concurrent bucket collectives keep
  /// independent mailboxes and per-bucket accounting, and one prebuilt
  /// schedule per bucket so steady-state rounds stop re-deriving them.
  std::vector<std::unique_ptr<comm::InProcTransport>> transports_;
  std::vector<comm::SteppedSchedule> schedules_;
  std::vector<double> slab_;  ///< agents_ x plan.total_elems(), agent-major
  /// Error-feedback residuals, same layout as slab_; empty when disabled.
  /// Persists across rounds — that is the point of error feedback.
  std::vector<double> residual_;
  std::vector<std::atomic<int64_t>> pending_;  ///< per bucket
  std::vector<char> live_;  ///< per agent; 0 = left / deactivated
  /// Per (agent, bucket), agent-major: 0 = pending, 1 = contributed,
  /// 2 = dropped (agent died before publishing), 3 = deferred (straggler
  /// past the deadline). run_bucket() reduces over exactly the agents
  /// marked 1.
  std::vector<std::atomic<char>> contributed_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int64_t> ready_;  ///< buckets with all contributions, FIFO
  int64_t reduced_ = 0;        ///< collectives completed this round
  bool aborted_ = false;
};

}  // namespace comdml::core
