// Thread-local workspace arena: bump-pointer scratch checkout/return with
// high-water-mark reuse, so steady-state hot paths (im2col buffers, GEMM
// pack panels, gradient scratch, per-round merge buffers) stop touching the
// heap after the first warmup iteration.
//
// Design rules every caller relies on:
//  - Workspace::tls() returns the calling thread's arena; buffers handed
//    out are plain memory and may be written by any thread, but checkout /
//    release must happen on the owning thread.
//  - Checkouts are strictly LIFO (scoped usage). The RAII `Scratch<T>`
//    wrapper is the intended interface; raw checkout/release is for the
//    rare non-scoped case.
//  - Returned pointers are 64-byte aligned (cache line / AVX-512 friendly)
//    and the memory is uninitialized — callers must fully write what they
//    read.
//  - When a checkout overflows the backing block, a fresh block is chained
//    (one heap allocation). Once everything is released, the arena
//    consolidates to a single block sized to the high-water mark, so a
//    fixed-size workload allocates only during its first iteration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/check.hpp"

namespace comdml::core {

class Workspace {
 public:
  struct Stats {
    int64_t heap_allocs = 0;      ///< backing-store allocations (growth)
    int64_t checkouts = 0;        ///< total checkout() calls
    int64_t live_bytes = 0;       ///< currently checked out
    int64_t capacity_bytes = 0;   ///< current backing capacity
    int64_t high_water_bytes = 0; ///< max concurrent live bytes ever
  };

  Workspace();
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena (created on first use, lives as long as
  /// the thread — pool workers keep their warmed-up arena between jobs).
  [[nodiscard]] static Workspace& tls();

  /// 64-byte-aligned uninitialized scratch. Release in LIFO order.
  [[nodiscard]] void* checkout_bytes(int64_t bytes);
  void release_bytes(void* p);

  template <typename T>
  [[nodiscard]] T* checkout(int64_t count) {
    return static_cast<T*>(
        checkout_bytes(count * static_cast<int64_t>(sizeof(T))));
  }
  template <typename T>
  void release(T* p) {
    release_bytes(p);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Drops the backing store (nothing may be checked out). Mainly for
  /// tests; steady-state code never needs it.
  void trim();

  /// Stats summed over every live thread arena (main + pool workers).
  [[nodiscard]] static Stats aggregate_stats();

 private:
  struct Block;
  struct Frame;

  Block* grow(int64_t bytes);
  void consolidate();

  Block* head_ = nullptr;   // singly-linked chain, most recent first
  Frame* frames_ = nullptr; // LIFO checkout records (intrusive stack)
  int64_t live_need_ = 0;   // bytes consumed by live frames incl. headers
  int64_t high_water_need_ = 0;
  Stats stats_;
};

/// RAII checkout of `count` Ts from the calling thread's arena.
template <typename T>
class Scratch {
 public:
  explicit Scratch(int64_t count)
      : ws_(&Workspace::tls()), n_(count), p_(ws_->checkout<T>(count)) {}
  ~Scratch() { ws_->release(p_); }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  [[nodiscard]] T* data() noexcept { return p_; }
  [[nodiscard]] const T* data() const noexcept { return p_; }
  [[nodiscard]] int64_t size() const noexcept { return n_; }
  [[nodiscard]] std::span<T> span() noexcept {
    return {p_, static_cast<size_t>(n_)};
  }
  [[nodiscard]] T& operator[](int64_t i) noexcept {
    COMDML_DCHECK(i >= 0 && i < n_);
    return p_[i];
  }

 private:
  Workspace* ws_;
  int64_t n_;
  T* p_;
};

}  // namespace comdml::core
