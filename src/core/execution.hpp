// Batch-level execution model of one offloading pair (paper Fig. 1).
//
// The pairing scheduler's tau_ij (Algorithm 1 line 18) is a closed-form
// *estimate* that serializes communication and fast-side compute. This
// module executes the pair at batch granularity — the slow agent streams
// intermediate activations over a FIFO link while the fast agent first
// finishes its own task and then consumes arrivals — yielding the actual
// (pipelined) completion times and per-agent idle times. Tests verify
// actual <= estimate and that both coincide when one stage dominates.
#pragma once

#include "core/pairing.hpp"

namespace comdml::core {

struct PairExecution {
  double slow_finish = 0.0;  ///< slow agent's prefix-training completion
  double fast_finish = 0.0;  ///< fast agent done with own + offloaded work
  double pair_time = 0.0;    ///< max of the above + trained-suffix return
  double slow_idle = 0.0;    ///< slow agent idle within the pair span
  double fast_idle = 0.0;    ///< fast agent idle within the pair span
  double link_busy = 0.0;    ///< total seconds the link carried payload
  double fast_train_time = 0.0;  ///< fast agent busy compute (own + offload)
};

/// Execute one pair at batch granularity.
[[nodiscard]] PairExecution execute_pair(const SplitProfile& profile,
                                         const AgentInfo& slow,
                                         const AgentInfo& fast, size_t cut,
                                         double link_mbps,
                                         int64_t batch_size);

}  // namespace comdml::core
