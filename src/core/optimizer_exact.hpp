// Exact reference solver for the workload-balancing integer program
// (paper Eq. 5): choose a partial matching of slow->fast offloads and a
// split per pair minimizing the maximum per-agent round time.
//
// Exponential in the number of participants (bitmask memoization), so it is
// gated to small fleets; its purpose is to quantify the optimality gap of
// the greedy decentralized scheduler (bench_ablation_pairing).
#pragma once

#include "core/pairing.hpp"

namespace comdml::core {

/// Maximum participants the exact solver accepts (2^K states).
inline constexpr size_t kExactSolverMaxAgents = 18;

/// Globally optimal pairing under the same cost model as pair_agents().
/// Throws std::invalid_argument if participants exceed
/// kExactSolverMaxAgents.
[[nodiscard]] PairingResult optimal_pairing(
    const SplitProfile& profile, const std::vector<AgentInfo>& infos,
    const sim::Topology& topology, int64_t batch_size,
    const std::vector<int64_t>& participants);

}  // namespace comdml::core
