// Fleet-level configuration shared by the ComDML trainer and the baselines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/allreduce.hpp"
#include "learncurve/curves.hpp"
#include "nn/optimizer.hpp"

namespace comdml::core {

/// Flat paper-scale simulation config (historical). New code should build
/// fleets through core::FleetBuilder with the layered FleetOptions below;
/// this struct survives as the internal currency of SimulatedFleet /
/// BaselineFleet and for the benches that predate the facade.
struct FleetConfig {
  int64_t agents = 10;
  int64_t batch_size = 100;  ///< paper: local batch size 100
  /// Fraction of agents sampled each round (Table III uses 0.2).
  double participation = 1.0;
  /// Dynamic environment: re-draw this fraction of profiles every
  /// `reshuffle_period` rounds (paper: 20 % after round 100).
  double reshuffle_fraction = 0.2;
  int64_t reshuffle_period = 100;  ///< 0 disables profile dynamics
  /// Cap on the number of profiled split points (0 = every boundary).
  size_t max_split_points = 0;
  /// Wire compression applied to intermediate activations. The profiled
  /// cuts sit after ReLU units, whose outputs are ~50 % zeros; 8-bit
  /// quantization (Hubara et al. [36], cited by the paper as integrable)
  /// combined with sparse encoding gives ~8x over raw float32. Model
  /// parameters always travel uncompressed.
  double activation_compression = 8.0;
  comm::AllReduceAlgo aggregation = comm::AllReduceAlgo::kHalvingDoubling;
  /// Aggregate server bandwidth for parameter-server methods (shared
  /// across concurrent transfers) and the per-message link latency.
  double server_mbps = 1000.0;
  double latency_sec = comm::kDefaultLatencySec;
  learncurve::PrivacyTechnique privacy = learncurve::PrivacyTechnique::kNone;
  /// Per-round probability that a sampled agent fails before training
  /// (device churn). Failed agents skip the round; the fleet re-pairs among
  /// survivors and aggregates without them — the paper's no-single-point-of
  /// -failure claim as an executable property.
  double agent_dropout = 0.0;
  uint64_t seed = 42;
};

/// Layered options for every fleet the repo can run — the one structure
/// behind core::FleetBuilder, core::RealFleet, and
/// baselines::RealBaselineFleet (whose Options types alias this). It
/// replaces the three drifted copies of the SGD/batch/seed fields that
/// used to live in FleetConfig, RealFleet::Options and
/// RealBaselineFleet::Options.
///
/// Defaults suit the real-execution fleets (small models, short rounds);
/// `paper_defaults()` switches the training geometry to the paper-scale
/// simulation values (batch 100, seed 42).
struct FleetOptions {
  uint64_t seed = 7;

  /// Local-training knobs (real-execution fleets; `batch_size` also drives
  /// the simulated batch-level schedule).
  struct TrainOptions {
    int64_t batch_size = 16;
    /// Mini-batches each agent trains per round (keeps tests fast while
    /// the timing model still uses full shard sizes).
    int64_t batches_per_round = 4;
    nn::SGD::Options sgd{0.05f, 0.9f, 0.0f};
    /// FedProx proximal coefficient (used when method == kFedProx).
    float prox_mu = 0.01f;
    /// Plateau LR schedule (the paper reduces LR by 0.2/0.5 when accuracy
    /// plateaus). 0 disables; otherwise the LR is multiplied by this
    /// factor when the fleet loss stops improving for `plateau_patience`
    /// rounds.
    float plateau_factor = 0.0f;
    int plateau_patience = 5;
    /// Reference FLOP/s of a cpu=1.0 agent for the *simulated clock* of
    /// real-execution fleets. Deliberately small: real-mode models are
    /// tiny, and the paper's offloading regime (compute >> per-batch comm)
    /// only appears when the simulated compute time is scaled to match.
    double reference_flops = 1e6;
  } train;

  /// Communication-substrate knobs (transport + collectives).
  struct CommOptions {
    comm::AllReduceAlgo aggregation = comm::AllReduceAlgo::kHalvingDoubling;
    /// Wire compression applied to intermediate activations (see
    /// FleetConfig::activation_compression).
    double activation_compression = 8.0;
    /// Aggregate server bandwidth for parameter-server methods, shared
    /// across concurrent transfers.
    double server_mbps = 1000.0;
    double latency_sec = comm::kDefaultLatencySec;
    /// Bucketed aggregation: partition model state into buckets of about
    /// this many fp32 wire bytes and aggregate per bucket through the
    /// round pipeline (core/round_pipeline.hpp). 0 keeps the historical
    /// single flat collective.
    int64_t bucket_bytes = 0;
    /// Overlapped rounds: run bucket collectives concurrently with the
    /// tail of local training (requires bucket_bytes > 0). Off, the same
    /// buckets reduce sequentially after the training barrier — the two
    /// modes are bit-identical; overlap only changes the wall-clock
    /// schedule. With differential privacy the overlap window closes:
    /// noise draws are serialized on the fleet RNG after training, so
    /// buckets publish post-noising and rounds report the full
    /// aggregation time as exposed. Real baseline fleets honor these
    /// knobs only for the AllReduce-DML method (the other baselines do
    /// not aggregate through an allreduce).
    bool overlap = false;
    /// Wire codec of the bucket collectives. kFp32 ships raw fp32
    /// payloads and stays bit-identical to the uncompressed rounds;
    /// kInt8Quantized compresses every exchange-step payload to dense
    /// symmetric int8 (~4x fewer wire bytes, lossy at int8 resolution).
    /// Requires bucket_bytes > 0 — the flat collective path is always
    /// fp32.
    enum class Codec { kFp32, kInt8Quantized };
    Codec codec = Codec::kFp32;
    /// Error-feedback residual accumulation per (agent, bucket): each
    /// round the previous round's quantization error is added back into
    /// the payload before it is quantized, so compression error stays a
    /// bounded perturbation instead of accumulating as bias across
    /// rounds (Chen et al., communication-efficient policy gradients).
    /// Only meaningful with a lossy codec; ignored for kFp32.
    bool error_feedback = true;

    /// Transport codec behind `codec` (nullptr = identity/fp32 wire).
    [[nodiscard]] const comm::Codec* bucket_codec() const {
      return codec == Codec::kInt8Quantized ? &comm::quantized_codec()
                                            : nullptr;
    }
  } comms;

  /// Privacy techniques applied before state leaves the device (§V-B-4).
  struct PrivacyOptions {
    learncurve::PrivacyTechnique technique =
        learncurve::PrivacyTechnique::kNone;
    double dp_epsilon = 0.5;
    double dp_sensitivity = 1e-3;
    int64_t shuffle_patch = 2;
  } privacy;

  /// Deterministic agent-failure injection for elastic-fleet testing
  /// (real-execution fleets). Each entry kills one agent at one precise
  /// point of one round; the fleet completes the round over the survivors
  /// and the dead agent stays out until rejoined.
  struct FaultOptions {
    struct AgentFailure {
      int64_t agent = -1;
      int64_t round = 0;
      /// Die after training this many batches, before publishing anything
      /// (-1 = off). With every mode off, the agent leaves cleanly before
      /// the round starts.
      int64_t after_batches = -1;
      /// Die after publishing this many buckets of the final batch — 0
      /// kills the agent at its first publish attempt, mid split-backward
      /// for a paired slow agent (-1 = off; needs bucket_bytes > 0).
      int64_t after_buckets = -1;
      /// Kill the agent's endpoint once any bucket collective reaches
      /// this transport step: the in-flight collective recovers around
      /// the survivors (-1 = off; needs bucket_bytes > 0).
      int64_t at_collective_step = -1;
    };
    std::vector<AgentFailure> failures;
    /// Per-message drop probability on every link of the fleet transport
    /// (the unreliable-network knob). Bucket collectives then route
    /// through comm::ReliableChannel — dropped copies are retransmitted
    /// with exponential backoff, and the retransmission traffic is
    /// reported separately so goodput still matches the fault-free run.
    double message_drop_prob = 0.0;
    /// Per-round straggler deadline in modeled seconds (0 = off; needs
    /// bucket_bytes > 0). A solo agent whose round would exceed the
    /// deadline is deferred: the on-time agents aggregate without it, its
    /// late update lands in its error-feedback residual for the next
    /// round, and it re-syncs to the fleet consensus. Paired agents are
    /// never deferred — pairing *is* the paper's straggler rescue.
    double deadline_sec = 0.0;
    /// Autonomous checkpointing: write a checksummed fleet checkpoint to
    /// `checkpoint_dir` every `checkpoint_every` completed rounds
    /// (0 = off), keeping the newest `checkpoint_retain` files.
    int64_t checkpoint_every = 0;
    int64_t checkpoint_retain = 2;
    std::string checkpoint_dir;
  } faults;

  /// Paper-scale simulation knobs (participation sampling, dynamic
  /// profiles, churn).
  struct ScaleOptions {
    double participation = 1.0;
    double reshuffle_fraction = 0.2;
    int64_t reshuffle_period = 100;  ///< 0 disables profile dynamics
    size_t max_split_points = 0;
    double agent_dropout = 0.0;
  } scale;

  /// Reject out-of-range knobs with a descriptive error instead of letting
  /// a zero batch size or negative bandwidth surface as a hang, a
  /// divide-by-zero clock, or silent misbehavior deep inside a round.
  /// Every fleet entry point (RealFleet, RealBaselineFleet,
  /// FleetBuilder::build) calls this.
  void validate() const {
    COMDML_REQUIRE(train.batch_size > 0,
                   "batch_size must be positive, got " << train.batch_size);
    COMDML_REQUIRE(train.batches_per_round > 0,
                   "batches_per_round must be positive, got "
                       << train.batches_per_round);
    COMDML_REQUIRE(train.sgd.lr > 0.0f,
                   "sgd.lr must be positive, got " << train.sgd.lr);
    COMDML_REQUIRE(
        train.sgd.momentum >= 0.0f && train.sgd.momentum < 1.0f,
        "sgd.momentum must be in [0, 1), got " << train.sgd.momentum);
    COMDML_REQUIRE(train.sgd.weight_decay >= 0.0f,
                   "sgd.weight_decay must be non-negative");
    COMDML_REQUIRE(train.prox_mu >= 0.0f, "prox_mu must be non-negative");
    COMDML_REQUIRE(
        train.plateau_factor >= 0.0f && train.plateau_factor < 1.0f,
        "plateau_factor must be in [0, 1), got " << train.plateau_factor);
    COMDML_REQUIRE(train.plateau_factor == 0.0f || train.plateau_patience > 0,
                   "plateau_patience must be positive when the plateau "
                   "schedule is enabled");
    COMDML_REQUIRE(train.reference_flops > 0.0,
                   "reference_flops must be positive, got "
                       << train.reference_flops);
    COMDML_REQUIRE(comms.activation_compression >= 1.0,
                   "activation_compression must be >= 1, got "
                       << comms.activation_compression);
    COMDML_REQUIRE(comms.server_mbps > 0.0,
                   "server_mbps must be positive, got " << comms.server_mbps);
    COMDML_REQUIRE(comms.latency_sec >= 0.0,
                   "latency_sec must be non-negative, got "
                       << comms.latency_sec);
    COMDML_REQUIRE(comms.bucket_bytes >= 0,
                   "bucket_bytes must be non-negative, got "
                       << comms.bucket_bytes);
    COMDML_REQUIRE(!comms.overlap || comms.bucket_bytes > 0,
                   "overlapped rounds need bucket_bytes > 0 (overlap "
                   "pipelines per-bucket collectives)");
    COMDML_REQUIRE(
        comms.codec == CommOptions::Codec::kFp32 || comms.bucket_bytes > 0,
        "a lossy bucket codec needs bucket_bytes > 0 (only the bucket "
        "collectives are codec-aware; the flat collective is always fp32)");
    COMDML_REQUIRE(privacy.dp_epsilon > 0.0,
                   "dp_epsilon must be positive, got " << privacy.dp_epsilon);
    COMDML_REQUIRE(privacy.dp_sensitivity > 0.0,
                   "dp_sensitivity must be positive");
    COMDML_REQUIRE(privacy.shuffle_patch > 0,
                   "shuffle_patch must be positive, got "
                       << privacy.shuffle_patch);
    for (const FaultOptions::AgentFailure& f : faults.failures) {
      COMDML_REQUIRE(f.agent >= 0,
                     "fault injection needs agent >= 0, got " << f.agent);
      COMDML_REQUIRE(f.round >= 0,
                     "fault injection needs round >= 0, got " << f.round);
      const int modes = (f.after_batches >= 0) + (f.after_buckets >= 0) +
                        (f.at_collective_step >= 0);
      COMDML_REQUIRE(modes <= 1,
                     "agent failure must pick at most one death point");
      COMDML_REQUIRE(
          (f.after_buckets < 0 && f.at_collective_step < 0) ||
              comms.bucket_bytes > 0,
          "bucket-level and collective-step failures need bucket_bytes > 0");
    }
    COMDML_REQUIRE(
        faults.message_drop_prob >= 0.0 && faults.message_drop_prob < 1.0,
        "message_drop_prob must be in [0, 1), got "
            << faults.message_drop_prob);
    COMDML_REQUIRE(faults.deadline_sec >= 0.0,
                   "deadline_sec must be non-negative, got "
                       << faults.deadline_sec);
    COMDML_REQUIRE(faults.deadline_sec == 0.0 || comms.bucket_bytes > 0,
                   "a straggler deadline needs bucket_bytes > 0 (deferral "
                   "folds the late update into the bucket residuals)");
    COMDML_REQUIRE(faults.checkpoint_every >= 0,
                   "checkpoint_every must be non-negative, got "
                       << faults.checkpoint_every);
    COMDML_REQUIRE(
        faults.checkpoint_every == 0 || faults.checkpoint_retain > 0,
        "checkpoint_retain must be positive when auto-checkpointing, got "
            << faults.checkpoint_retain);
    COMDML_REQUIRE(faults.checkpoint_every == 0 ||
                       !faults.checkpoint_dir.empty(),
                   "auto-checkpointing needs a checkpoint_dir");
    COMDML_REQUIRE(scale.participation > 0.0 && scale.participation <= 1.0,
                   "participation must be in (0, 1], got "
                       << scale.participation);
    COMDML_REQUIRE(
        scale.reshuffle_fraction >= 0.0 && scale.reshuffle_fraction <= 1.0,
        "reshuffle_fraction must be in [0, 1]");
    COMDML_REQUIRE(scale.reshuffle_period >= 0,
                   "reshuffle_period must be non-negative");
    COMDML_REQUIRE(scale.agent_dropout >= 0.0 && scale.agent_dropout < 1.0,
                   "agent_dropout must be in [0, 1), got "
                       << scale.agent_dropout);
  }

  /// Paper-scale simulation preset (batch 100, seed 42).
  [[nodiscard]] static FleetOptions paper_defaults() {
    FleetOptions o;
    o.seed = 42;
    o.train.batch_size = 100;
    return o;
  }

  /// Flattened view for the simulation engines.
  [[nodiscard]] FleetConfig to_fleet_config(int64_t agents) const {
    FleetConfig cfg;
    cfg.agents = agents;
    cfg.batch_size = train.batch_size;
    cfg.participation = scale.participation;
    cfg.reshuffle_fraction = scale.reshuffle_fraction;
    cfg.reshuffle_period = scale.reshuffle_period;
    cfg.max_split_points = scale.max_split_points;
    cfg.activation_compression = comms.activation_compression;
    cfg.aggregation = comms.aggregation;
    cfg.server_mbps = comms.server_mbps;
    cfg.latency_sec = comms.latency_sec;
    cfg.privacy = privacy.technique;
    cfg.agent_dropout = scale.agent_dropout;
    cfg.seed = seed;
    return cfg;
  }
};

}  // namespace comdml::core
