// Fleet-level configuration shared by the ComDML trainer and the baselines.
#pragma once

#include <cstdint>

#include "comm/allreduce.hpp"
#include "learncurve/curves.hpp"

namespace comdml::core {

struct FleetConfig {
  int64_t agents = 10;
  int64_t batch_size = 100;  ///< paper: local batch size 100
  /// Fraction of agents sampled each round (Table III uses 0.2).
  double participation = 1.0;
  /// Dynamic environment: re-draw this fraction of profiles every
  /// `reshuffle_period` rounds (paper: 20 % after round 100).
  double reshuffle_fraction = 0.2;
  int64_t reshuffle_period = 100;  ///< 0 disables profile dynamics
  /// Cap on the number of profiled split points (0 = every boundary).
  size_t max_split_points = 0;
  /// Wire compression applied to intermediate activations. The profiled
  /// cuts sit after ReLU units, whose outputs are ~50 % zeros; 8-bit
  /// quantization (Hubara et al. [36], cited by the paper as integrable)
  /// combined with sparse encoding gives ~8x over raw float32. Model
  /// parameters always travel uncompressed.
  double activation_compression = 8.0;
  comm::AllReduceAlgo aggregation = comm::AllReduceAlgo::kHalvingDoubling;
  learncurve::PrivacyTechnique privacy = learncurve::PrivacyTechnique::kNone;
  /// Per-round probability that a sampled agent fails before training
  /// (device churn). Failed agents skip the round; the fleet re-pairs among
  /// survivors and aggregates without them — the paper's no-single-point-of
  /// -failure claim as an executable property.
  double agent_dropout = 0.0;
  uint64_t seed = 42;
};

}  // namespace comdml::core
