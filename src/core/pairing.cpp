#include "core/pairing.hpp"

#include <algorithm>

#include "comm/link.hpp"

namespace comdml::core {

std::optional<SplitChoice> best_split(const SplitProfile& profile,
                                      const AgentInfo& slow,
                                      const AgentInfo& fast, double link_mbps,
                                      int64_t batch_size) {
  COMDML_CHECK(batch_size > 0);
  if (link_mbps <= 0.0) return std::nullopt;
  COMDML_CHECK(slow.proc_speed > 0.0 && fast.proc_speed > 0.0);
  COMDML_CHECK(slow.num_batches > 0);

  const double link_bps = comm::bytes_per_sec(link_mbps);
  const auto n_i = static_cast<double>(slow.num_batches);
  std::optional<SplitChoice> best;
  for (const SplitPoint& m : profile.points()) {
    // Degenerate splits (all or nothing) are not offloads.
    if (m.t_slow <= 0.0 || m.t_fast <= 0.0) continue;
    const double p_i_m = slow.proc_speed / m.t_slow;   // batches/sec, prefix
    const double p_j_m = fast.proc_speed / m.t_fast;   // batches/sec, suffix
    const double act_per_batch =
        static_cast<double>(m.nu_bytes) * static_cast<double>(batch_size);
    // Suffix parameters travel twice: offload at pairing, trained suffix
    // back before aggregation.
    const double model_ship =
        2.0 * static_cast<double>(m.suffix_param_bytes) / link_bps;
    const double comm = n_i * act_per_batch / link_bps + model_ship;
    const double slow_side = n_i / p_i_m;
    const double fast_side = fast.tau_solo + comm + n_i / p_j_m;
    const double tau_ij = std::max(slow_side, fast_side);
    if (!best || tau_ij < best->time) best = SplitChoice{m.cut, tau_ij, comm};
  }
  return best;
}

namespace {

/// Pairing(i) from Algorithm 1: agent i's local choice among unpaired,
/// strictly faster, connected helpers. Helpers that are not training this
/// round contribute their full capacity (tau_j = 0).
std::optional<OffloadDecision> pairing_step(
    const SplitProfile& profile, const std::vector<AgentInfo>& infos,
    const sim::Topology& topology, int64_t batch_size, int64_t i,
    const std::vector<bool>& paired, const std::vector<bool>& helper,
    const std::vector<bool>& participating) {
  const AgentInfo& slow = infos[static_cast<size_t>(i)];
  std::optional<OffloadDecision> best;
  for (int64_t j = 0; j < topology.agents(); ++j) {
    if (j == i || paired[static_cast<size_t>(j)] ||
        !helper[static_cast<size_t>(j)])
      continue;
    AgentInfo fast = infos[static_cast<size_t>(j)];
    if (!participating[static_cast<size_t>(j)])
      fast.tau_solo = 0.0;  // idle helper: no local task this round
    if (fast.tau_solo >= slow.tau_solo) continue;  // only offload to faster
    const double link = topology.bandwidth_mbps(i, j);
    const auto choice = best_split(profile, slow, fast, link, batch_size);
    if (!choice) continue;
    if (choice->time >= slow.tau_solo) continue;  // must beat training alone
    if (!best || choice->time < best->estimated_time) {
      best = OffloadDecision{i, j, choice->cut, choice->time,
                             choice->comm_time};
    }
  }
  return best;
}

double round_time_of(const PairingResult& result,
                     const std::vector<AgentInfo>& infos) {
  double worst = 0.0;
  for (const auto& p : result.pairs) worst = std::max(worst, p.estimated_time);
  for (const int64_t id : result.solo)
    worst = std::max(worst, infos[static_cast<size_t>(id)].tau_solo);
  return worst;
}

std::vector<bool> participation_mask(size_t agents,
                                     const std::vector<int64_t>& participants) {
  std::vector<bool> mask(agents, false);
  for (const int64_t id : participants) {
    COMDML_CHECK(id >= 0 && id < static_cast<int64_t>(agents));
    mask[static_cast<size_t>(id)] = true;
  }
  return mask;
}

}  // namespace

PairingResult pair_agents(const SplitProfile& profile,
                          const std::vector<AgentInfo>& infos,
                          const sim::Topology& topology, int64_t batch_size,
                          const std::vector<int64_t>& participants,
                          const std::vector<int64_t>* helpers) {
  COMDML_CHECK(static_cast<int64_t>(infos.size()) == topology.agents());
  const auto participating = participation_mask(infos.size(), participants);
  const auto helper = helpers == nullptr
                          ? participating
                          : participation_mask(infos.size(), *helpers);

  // The shared list A: participants in descending order of tau (line 3).
  std::vector<int64_t> order = participants;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const double ta = infos[static_cast<size_t>(a)].tau_solo;
    const double tb = infos[static_cast<size_t>(b)].tau_solo;
    if (ta != tb) return ta > tb;
    return a < b;  // deterministic tie-break
  });

  PairingResult result;
  std::vector<bool> paired(infos.size(), false);
  for (const int64_t i : order) {
    if (paired[static_cast<size_t>(i)]) continue;
    auto decision = pairing_step(profile, infos, topology, batch_size, i,
                                 paired, helper, participating);
    if (decision) {
      paired[static_cast<size_t>(i)] = true;
      paired[static_cast<size_t>(decision->fast_agent)] = true;
      result.pairs.push_back(*decision);
    } else {
      result.solo.push_back(i);
      paired[static_cast<size_t>(i)] = true;
    }
  }
  result.estimated_round_time = round_time_of(result, infos);
  return result;
}

PairingResult random_pairing(const SplitProfile& profile,
                             const std::vector<AgentInfo>& infos,
                             const sim::Topology& topology,
                             int64_t batch_size,
                             const std::vector<int64_t>& participants,
                             tensor::Rng& rng) {
  const auto participating = participation_mask(infos.size(), participants);
  std::vector<int64_t> order = participants;
  rng.shuffle(order);

  PairingResult result;
  std::vector<bool> paired(infos.size(), false);
  for (const int64_t i : order) {
    if (paired[static_cast<size_t>(i)]) continue;
    paired[static_cast<size_t>(i)] = true;
    // Pick the first random unpaired connected candidate; keep the offload
    // only if it helps at the best split.
    std::vector<int64_t> candidates;
    for (const int64_t j : order)
      if (!paired[static_cast<size_t>(j)] && topology.linked(i, j))
        candidates.push_back(j);
    if (candidates.empty()) {
      result.solo.push_back(i);
      continue;
    }
    const int64_t j = candidates[static_cast<size_t>(
        rng.below(static_cast<int64_t>(candidates.size())))];
    const AgentInfo& a = infos[static_cast<size_t>(i)];
    const AgentInfo& b = infos[static_cast<size_t>(j)];
    const AgentInfo& slow = a.tau_solo >= b.tau_solo ? a : b;
    const AgentInfo& fast = a.tau_solo >= b.tau_solo ? b : a;
    const auto choice = best_split(profile, slow, fast,
                                   topology.bandwidth_mbps(i, j), batch_size);
    if (choice && choice->time < slow.tau_solo) {
      paired[static_cast<size_t>(j)] = true;
      result.pairs.push_back(OffloadDecision{slow.id, fast.id, choice->cut,
                                             choice->time, choice->comm_time});
    } else {
      result.solo.push_back(i);
    }
  }
  result.estimated_round_time = round_time_of(result, infos);
  return result;
}

PairingResult StaticPairing::apply(const SplitProfile& profile,
                                   const std::vector<AgentInfo>& infos,
                                   const sim::Topology& topology,
                                   int64_t batch_size,
                                   const std::vector<int64_t>& participants) {
  if (!fixed_) {
    // Fix pairs once: slowest with fastest, second slowest with second
    // fastest, etc., among round-0 participants.
    std::vector<int64_t> order = participants;
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return infos[static_cast<size_t>(a)].tau_solo >
             infos[static_cast<size_t>(b)].tau_solo;
    });
    std::vector<std::pair<int64_t, int64_t>> pairs;
    size_t lo = 0, hi = order.size();
    while (lo + 1 < hi) {
      pairs.emplace_back(order[lo], order[hi - 1]);
      ++lo;
      --hi;
    }
    fixed_ = std::move(pairs);
  }

  PairingResult result;
  std::vector<bool> used(infos.size(), false);
  const auto participating = participation_mask(infos.size(), participants);
  for (const auto& [slow_id, fast_id] : *fixed_) {
    if (!participating[static_cast<size_t>(slow_id)] ||
        !participating[static_cast<size_t>(fast_id)])
      continue;
    used[static_cast<size_t>(slow_id)] = true;
    used[static_cast<size_t>(fast_id)] = true;
    const AgentInfo& a = infos[static_cast<size_t>(slow_id)];
    const AgentInfo& b = infos[static_cast<size_t>(fast_id)];
    const AgentInfo& slow = a.tau_solo >= b.tau_solo ? a : b;
    const AgentInfo& fast = a.tau_solo >= b.tau_solo ? b : a;
    const auto choice =
        best_split(profile, slow, fast,
                   topology.bandwidth_mbps(slow.id, fast.id), batch_size);
    if (choice && choice->time < slow.tau_solo) {
      result.pairs.push_back(OffloadDecision{slow.id, fast.id, choice->cut,
                                             choice->time, choice->comm_time});
    } else {
      result.solo.push_back(slow.id);
      result.solo.push_back(fast.id);
    }
  }
  for (const int64_t id : participants)
    if (!used[static_cast<size_t>(id)]) result.solo.push_back(id);
  result.estimated_round_time = round_time_of(result, infos);
  return result;
}

}  // namespace comdml::core
