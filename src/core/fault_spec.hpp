// Strict parser for fleet_cli's --fail-agent specs.
//
// Grammar: "A@R[:bN|:kN|:cS]" — agent A leaves before round R, or dies
// after N batches (:bN), after publishing N buckets (:kN), or at
// collective step S (:cS). A, R, and the count are non-negative decimal
// integers; the whole spec must be consumed.
//
// This replaces an std::stoll-based parser that silently accepted
// malformed specs: trailing garbage ("1x@2" parsed as agent 1), negative
// numbers ("-1@2"), and extra mode segments ("1@2:b1:k2" parsed as batch
// mode and dropped the rest). Every such spec now fails with a message
// naming the defect, so a typo surfaces as a usage error instead of a
// silently different fault plan.
#pragma once

#include <string>

#include "core/config.hpp"

namespace comdml::core {

/// Parses `spec` into `out` (which is reset first). Returns false and
/// writes a human-readable reason into `*error` (when non-null) for any
/// malformed spec: missing '@', non-digit or empty fields, negative
/// numbers, unknown mode letters, trailing garbage, or more than one mode
/// segment.
bool parse_fault_spec(const std::string& spec,
                      FleetOptions::FaultOptions::AgentFailure& out,
                      std::string* error = nullptr);

}  // namespace comdml::core
