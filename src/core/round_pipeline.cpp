#include "core/round_pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "core/parallel.hpp"

namespace comdml::core {

OverlapTimeline compose_overlap_timeline(
    const std::vector<double>& ready_seconds,
    const std::vector<double>& bucket_seconds) {
  COMDML_CHECK(ready_seconds.size() == bucket_seconds.size());
  const size_t n = ready_seconds.size();
  OverlapTimeline tl;
  tl.start.assign(n, 0.0);
  tl.finish.assign(n, 0.0);
  // Link order = ready order, ties broken by bucket index (stable sort).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ready_seconds[a] < ready_seconds[b];
  });
  double link_free = 0.0;
  for (const size_t b : order) {
    tl.start[b] = std::max(ready_seconds[b], link_free);
    tl.finish[b] = tl.start[b] + bucket_seconds[b];
    link_free = tl.finish[b];
    tl.span = std::max(tl.span, tl.finish[b]);
  }
  return tl;
}

comm::LinkGrid bottleneck_grid(const sim::Topology& topology,
                               double latency_sec) {
  const auto min_bw = topology.min_link_bandwidth();
  COMDML_REQUIRE(min_bw.has_value() || topology.agents() == 1,
                 "topology has no usable link");
  return comm::LinkGrid::uniform(topology.agents(), min_bw.value_or(100.0),
                                 latency_sec);
}

RoundPipeline::RoundPipeline(int64_t agents, const nn::BucketPlan& plan,
                             const comm::LinkGrid& grid,
                             comm::AllReduceAlgo algo,
                             const comm::Codec* codec, bool error_feedback,
                             comm::FaultPlan faults, bool straggler_support)
    : plan_(&plan),
      agents_(agents),
      protocol_(comm::allreduce_protocol(algo)),
      codec_(codec),
      pending_(static_cast<size_t>(plan.buckets())),
      contributed_(static_cast<size_t>(agents * plan.buckets())) {
  COMDML_CHECK(agents > 0);
  COMDML_CHECK(grid.endpoints() == agents);
  live_.assign(static_cast<size_t>(agents_), 1);
  slab_.resize(static_cast<size_t>(agents_ * plan.total_elems()));
  if ((error_feedback && codec_ != nullptr) || straggler_support)
    residual_.assign(slab_.size(), 0.0);
  transports_.reserve(static_cast<size_t>(plan.buckets()));
  schedules_.reserve(static_cast<size_t>(plan.buckets()));
  for (int64_t b = 0; b < plan.buckets(); ++b) {
    transports_.push_back(
        std::make_unique<comm::InProcTransport>(grid, codec_, faults));
    schedules_.push_back(
        comm::allreduce_schedule(protocol_, agents_, plan.bucket(b).elems));
  }
  begin_round();
}

void RoundPipeline::begin_round() {
  for (auto& t : transports_) t->reset();
  const int64_t k = live_count();
  COMDML_REQUIRE(k > 0, "cannot begin a round with no live agents");
  for (auto& p : pending_) p.store(k, std::memory_order_relaxed);
  for (auto& c : contributed_) c.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  ready_.clear();
  reduced_ = 0;
  aborted_ = false;
}

int64_t RoundPipeline::live_count() const {
  int64_t k = 0;
  for (const char l : live_) k += (l != 0);
  return k;
}

std::atomic<char>& RoundPipeline::mark(int64_t agent, int64_t bucket) {
  return contributed_[static_cast<size_t>(agent * plan_->buckets() + bucket)];
}

bool RoundPipeline::agent_live(int64_t agent) const {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  return live_[static_cast<size_t>(agent)] != 0;
}

std::vector<int64_t> RoundPipeline::live_agents() const {
  std::vector<int64_t> out;
  for (int64_t a = 0; a < agents_; ++a)
    if (live_[static_cast<size_t>(a)] != 0) out.push_back(a);
  return out;
}

void RoundPipeline::leave(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  live_[static_cast<size_t>(agent)] = 0;
}

void RoundPipeline::rejoin(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  live_[static_cast<size_t>(agent)] = 1;
  if (!residual_.empty()) {
    double* r = residual_.data() + agent * plan_->total_elems();
    std::fill(r, r + plan_->total_elems(), 0.0);
  }
  for (auto& t : transports_) t->revive_endpoint(agent);
}

void RoundPipeline::deactivate(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  live_[static_cast<size_t>(agent)] = 0;
  for (int64_t b = 0; b < plan_->buckets(); ++b) {
    char expected = 0;
    if (!mark(agent, b).compare_exchange_strong(expected, 2,
                                                std::memory_order_acq_rel))
      continue;  // already published — the contribution stands
    const int64_t left = pending_[static_cast<size_t>(b)].fetch_sub(
                             1, std::memory_order_acq_rel) -
                         1;
    COMDML_CHECK(left >= 0);
    if (left > 0) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.push_back(b);
    }
    cv_.notify_one();
  }
}

void RoundPipeline::defer(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  COMDML_CHECK(live_[static_cast<size_t>(agent)] != 0);
  COMDML_REQUIRE(!residual_.empty(),
                 "defer() needs the residual slab — construct the pipeline "
                 "with straggler_support (or a lossy codec with error "
                 "feedback)");
  for (int64_t b = 0; b < plan_->buckets(); ++b) {
    char expected = 0;
    if (!mark(agent, b).compare_exchange_strong(expected, 3,
                                                std::memory_order_acq_rel))
      continue;
    const int64_t left = pending_[static_cast<size_t>(b)].fetch_sub(
                             1, std::memory_order_acq_rel) -
                         1;
    COMDML_CHECK(left >= 0);
    if (left > 0) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.push_back(b);
    }
    cv_.notify_one();
  }
}

void RoundPipeline::absorb_late(int64_t agent, int64_t src_agent) {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  COMDML_CHECK(src_agent >= 0 && src_agent < agents_ && src_agent != agent);
  COMDML_REQUIRE(!residual_.empty(),
                 "absorb_late() needs the residual slab");
  const int64_t n = plan_->total_elems();
  double* mine = slab_.data() + agent * n;
  const double* consensus = slab_.data() + src_agent * n;
  double* r = residual_.data() + agent * n;
  // The late update survives as the residual delta (late state minus the
  // consensus it missed) and rides into the agent's next contribution via
  // apply_error_feedback; the slots adopt the consensus for restore_state.
  for (int64_t i = 0; i < n; ++i) {
    r[i] += mine[i] - consensus[i];
    mine[i] = consensus[i];
  }
}

void RoundPipeline::stage_state(int64_t agent,
                                const std::vector<tensor::Tensor*>& state) {
  for (int64_t b = 0; b < plan_->buckets(); ++b)
    plan_->flatten_bucket(state, b, slot(agent, b));
}

void RoundPipeline::schedule_endpoint_failure(int64_t agent,
                                              int64_t after_steps) {
  for (auto& t : transports_) t->schedule_endpoint_failure(agent, after_steps);
}

void RoundPipeline::clear_endpoint_failures() {
  for (auto& t : transports_) t->clear_endpoint_failures();
}

void RoundPipeline::load_residuals(const std::vector<double>& residuals) {
  COMDML_REQUIRE(residuals.size() == residual_.size(),
                 "residual slab mismatch: got " << residuals.size()
                                                << " values, pipeline holds "
                                                << residual_.size());
  residual_ = residuals;
}

double* RoundPipeline::slot(int64_t agent, int64_t bucket) {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  return slab_.data() + agent * plan_->total_elems() +
         plan_->bucket(bucket).offset_elems;
}

void RoundPipeline::apply_error_feedback(int64_t agent, int64_t bucket) {
  const nn::Bucket& bk = plan_->bucket(bucket);
  double* s = slot(agent, bucket);
  double* r = residual_.data() + agent * plan_->total_elems() +
              bk.offset_elems;
  // Carry last round's quantization error into this round's payload, then
  // quantize once and keep the fresh error: r' = (x + r) - Q(x + r). With
  // no codec (straggler-only residuals) Q is the identity and the carried
  // residual folds in completely, leaving r' = 0.
  for (int64_t i = 0; i < bk.elems; ++i) {
    s[i] += r[i];
    r[i] = s[i];
  }
  if (codec_ != nullptr) codec_->transform(s, bk.elems);
  for (int64_t i = 0; i < bk.elems; ++i) r[i] -= s[i];
}

void RoundPipeline::contribute(int64_t agent, int64_t bucket) {
  COMDML_CHECK(agent >= 0 && agent < agents_);
  COMDML_CHECK(bucket >= 0 && bucket < plan_->buckets());
  // A lossy codec quantizes every contribution once at publish time, on
  // the contributing agent's own thread (distinct (agent, bucket) slots
  // and residuals are disjoint, and every contribution passes through here
  // exactly once per round). With error feedback the previous round's
  // quantization error rides along and the fresh error is kept.
  COMDML_CHECK(live_[static_cast<size_t>(agent)] != 0);
  if (!residual_.empty()) {
    apply_error_feedback(agent, bucket);
  } else if (codec_ != nullptr) {
    codec_->transform(slot(agent, bucket), plan_->bucket(bucket).elems);
  }
  const char was = mark(agent, bucket).exchange(1, std::memory_order_acq_rel);
  COMDML_CHECK(was == 0);
  // acq_rel: the last contributor's decrement acquires every earlier
  // contributor's slab writes before the bucket is published.
  const int64_t left = pending_[static_cast<size_t>(bucket)].fetch_sub(
                           1, std::memory_order_acq_rel) -
                       1;
  COMDML_CHECK(left >= 0);
  if (left > 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ready_.push_back(bucket);
  }
  cv_.notify_one();
}

void RoundPipeline::contribute_all(int64_t agent) {
  for (int64_t b = 0; b < plan_->buckets(); ++b) contribute(agent, b);
}

void RoundPipeline::publish_state(int64_t agent,
                                  const std::vector<tensor::Tensor*>& state) {
  for (int64_t b = 0; b < plan_->buckets(); ++b) {
    plan_->flatten_bucket(state, b, slot(agent, b));
    contribute(agent, b);
  }
}

void RoundPipeline::publish_state(int64_t agent,
                                  const std::vector<tensor::Tensor>& state) {
  for (int64_t b = 0; b < plan_->buckets(); ++b) {
    plan_->flatten_bucket(state, b, slot(agent, b));
    contribute(agent, b);
  }
}

void RoundPipeline::restore_state(
    int64_t agent, const std::vector<tensor::Tensor*>& state) {
  for (int64_t b = 0; b < plan_->buckets(); ++b)
    plan_->unflatten_bucket(slot(agent, b), b, state);
}

void RoundPipeline::run_bucket(int64_t bucket) {
  // Reduce over exactly the agents whose contribution was published; agents
  // that died before publishing are simply absent from the mean.
  std::vector<int64_t> contributors;
  for (int64_t a = 0; a < agents_; ++a)
    if (mark(a, bucket).load(std::memory_order_acquire) == 1)
      contributors.push_back(a);
  if (contributors.empty()) return;  // every contributor died first
  comm::CollectiveRequest req;
  req.elems = plan_->bucket(bucket).elems;
  req.buffers.resize(static_cast<size_t>(agents_));
  for (int64_t a = 0; a < agents_; ++a)
    req.buffers[static_cast<size_t>(a)] = slot(a, bucket);
  comm::Transport& transport = *transports_[static_cast<size_t>(bucket)];
  const bool full = static_cast<int64_t>(contributors.size()) == agents_;
  comm::SteppedSchedule survivor_schedule;
  if (!full)
    survivor_schedule = comm::allreduce_schedule_over(protocol_, contributors,
                                                      req.elems);
  comm::AsyncCollective op(
      full ? schedules_[static_cast<size_t>(bucket)] : survivor_schedule,
      transport, std::move(req));
  // With fault injection armed on this transport, a mid-collective
  // endpoint death re-forms the schedule around the survivors instead of
  // failing the round.
  if (transport.has_endpoint_faults()) op.enable_recovery(protocol_);
  op.wait();
}

void RoundPipeline::drain() {
  const int64_t total = plan_->buckets();
  for (;;) {
    int64_t bucket = -1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] {
        return aborted_ || !ready_.empty() || reduced_ == total;
      });
      if (aborted_) return;
      if (ready_.empty()) {
        if (reduced_ == total) return;
        continue;  // spurious wake while another collector finishes
      }
      bucket = ready_.front();
      ready_.pop_front();
    }
    try {
      run_bucket(bucket);
    } catch (...) {
      // The failed bucket will never count as reduced; wake every other
      // collector out of its wait before the exception propagates, or the
      // round would hang instead of failing.
      abort();
      throw;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++reduced_;
      if (reduced_ == total) cv_.notify_all();
    }
  }
}

void RoundPipeline::run_round(int64_t n_tasks,
                              const std::function<void(int64_t)>& task_fn,
                              bool overlap) {
  COMDML_CHECK(n_tasks >= 0);
  const int64_t n_collectors = overlap ? num_threads() : 0;
  parallel_for(0, n_tasks + n_collectors, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      if (t >= n_tasks) {
        drain();
        continue;
      }
      try {
        task_fn(t);
      } catch (...) {
        // Wake waiting collectors before the exception propagates, or the
        // round would hang on buckets that will never become ready.
        abort();
        throw;
      }
    }
  });
}

void RoundPipeline::abort() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

PipelineStats RoundPipeline::stats() const {
  PipelineStats out;
  out.buckets = plan_->buckets();
  out.bucket_seconds.reserve(transports_.size());
  std::vector<int64_t> per_agent(static_cast<size_t>(agents_), 0);
  for (const auto& t : transports_) {
    const comm::TransportStats& st = t->stats();
    out.steps += st.steps;
    out.comm_seconds += st.seconds;
    out.retransmit_bytes += st.retransmit_wire_bytes;
    out.bucket_seconds.push_back(st.seconds);
    for (size_t a = 0; a < per_agent.size(); ++a)
      per_agent[a] += st.bytes_sent[a];
  }
  for (const int64_t b : per_agent)
    out.max_bytes_sent = std::max(out.max_bytes_sent, b);
  return out;
}

}  // namespace comdml::core
