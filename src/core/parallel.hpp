// Shared parallel-compute subsystem: a lazily-initialized global thread
// pool behind a parallel_for(begin, end, grain, fn) API.
//
// Design rules that every caller relies on:
//  - fn(lo, hi) is invoked on half-open sub-ranges that exactly tile
//    [begin, end); each index is visited exactly once.
//  - Nested parallel_for calls (a kernel invoked from inside a pool task)
//    run inline on the calling worker, so kernels can be parallelized
//    unconditionally without risking pool deadlock or oversubscription.
//  - The partitioning may vary with the thread count, so kernels must keep
//    each output element's computation independent of the partition (write
//    disjoint outputs, fix any reduction order). Under that discipline
//    results are bit-identical for every thread count.
//  - Exceptions thrown by fn are captured and rethrown on the calling
//    thread (first one wins).
//
// The thread count defaults to the COMDML_NUM_THREADS environment variable
// when set, else std::thread::hardware_concurrency().
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

namespace comdml::core {

/// Chunked loop body: processes the half-open index range [lo, hi).
using RangeFn = std::function<void(int64_t lo, int64_t hi)>;

/// Number of threads parallel_for will use (>= 1). First call initializes
/// from COMDML_NUM_THREADS / hardware_concurrency.
[[nodiscard]] int num_threads();

/// Override the pool size. `n >= 1` forces that many threads; `n == 0`
/// re-reads COMDML_NUM_THREADS (falling back to the hardware count).
/// Safe to call between parallel regions; joins and restarts the pool.
void set_num_threads(int n);

/// Hardware concurrency as reported by the standard library (>= 1).
[[nodiscard]] int hardware_threads();

/// True when called from inside a pool worker (a nested parallel region).
[[nodiscard]] bool in_parallel_region();

namespace detail {

/// Decides whether a loop of `range` indices fans out to the pool; on true
/// `chunk` receives the per-task chunk size. False means run inline.
[[nodiscard]] bool plan_parallel(int64_t range, int64_t grain,
                                 int64_t& chunk);

/// Pool fan-out path behind plan_parallel (type-erased).
void parallel_for_erased(int64_t begin, int64_t end, int64_t chunk,
                         const RangeFn& fn);

}  // namespace detail

/// Apply `fn` over [begin, end) in chunks of at least `grain` indices,
/// using the global pool. Runs inline when the range is small, the pool
/// has one thread, or the call is nested inside another parallel region —
/// and only type-erases `fn` (a possible heap allocation) on the actual
/// fan-out path, so inline invocations are allocation-free.
template <typename F>
void parallel_for(int64_t begin, int64_t end, int64_t grain, const F& fn) {
  if (begin >= end) return;
  int64_t chunk = 0;
  if (!detail::plan_parallel(end - begin, std::max<int64_t>(1, grain),
                             chunk)) {
    fn(begin, end);
    return;
  }
  // Wrap by reference: the wrapper's one-pointer capture fits the
  // std::function small-buffer, so even fan-out does not allocate.
  detail::parallel_for_erased(begin, end, chunk, std::cref(fn));
}

}  // namespace comdml::core
