#include "core/profile.hpp"

namespace comdml::core {

SplitProfile SplitProfile::from_spec(const nn::ArchitectureSpec& spec,
                                     size_t max_points,
                                     double wire_compression) {
  COMDML_REQUIRE(spec.size() >= 2,
                 "model '" << spec.name << "' has no interior split point");
  COMDML_CHECK(wire_compression >= 1.0);
  SplitProfile profile;
  profile.full_flops_ = spec.total_flops();
  profile.model_bytes_ = spec.total_param_bytes();
  profile.total_units_ = spec.size();
  COMDML_CHECK(profile.full_flops_ > 0.0);

  // Candidate cuts: every interior boundary 1..size-1.
  std::vector<size_t> cuts;
  const size_t interior = spec.size() - 1;
  if (max_points == 0 || max_points >= interior) {
    for (size_t c = 1; c < spec.size(); ++c) cuts.push_back(c);
  } else {
    COMDML_CHECK(max_points >= 1);
    // Evenly spaced cuts across the interior boundaries.
    for (size_t i = 0; i < max_points; ++i) {
      const size_t c =
          1 + (i * (interior - 1)) / (max_points > 1 ? max_points - 1 : 1);
      if (cuts.empty() || cuts.back() != c) cuts.push_back(c);
    }
  }

  for (const size_t cut : cuts) {
    SplitPoint p;
    p.cut = cut;
    const double prefix = spec.prefix_flops(cut);
    p.t_slow = prefix / profile.full_flops_;
    p.t_fast = 1.0 - p.t_slow;
    p.nu_bytes = static_cast<int64_t>(
        static_cast<double>(spec.cut_activation_bytes(cut)) /
        wire_compression);
    p.suffix_param_bytes = spec.suffix_param_bytes(cut);
    profile.points_.push_back(p);
  }
  return profile;
}

const SplitPoint& SplitProfile::at_cut(size_t cut) const {
  for (const auto& p : points_)
    if (p.cut == cut) return p;
  COMDML_REQUIRE(false, "cut " << cut << " was not profiled");
  // unreachable
  return points_.front();
}

double SplitProfile::offloaded_fraction(size_t cut) const {
  const auto& p = at_cut(cut);
  return p.t_fast;
}

}  // namespace comdml::core
