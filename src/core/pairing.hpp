// Dynamic decentralized pairing scheduler (paper Algorithm 1).
//
// Each round, agents broadcast (processing speed p_j, estimated individual
// training time tau_j) to their neighbors. Agents are then visited in
// descending order of tau (slowest first); each still-unpaired agent i runs
// Pairing(i): for every unpaired faster neighbor j it evaluates
//
//   tau_ij^m = max( N_i / p_i^m ,  tau_j + N_i * nu_m / c_ij + N_i / p_j^m )
//   with p_i^m = p_i / T_s^m ,  p_j^m = p_j / T_f^m
//
// over all profiled splits m, picks j* = argmin_j min_m tau_ij^m, and
// offloads iff that strictly beats training alone. The computation uses only
// information agent i observes locally: the broadcast list, its own split
// profile, and the measured link speed c_ij.
#pragma once

#include <optional>

#include "core/profile.hpp"
#include "sim/topology.hpp"

namespace comdml::core {

/// Broadcast state of one agent (Algorithm 1 line 2).
struct AgentInfo {
  int64_t id = 0;
  double proc_speed = 0.0;   ///< p_i: full-model batches per second
  double tau_solo = 0.0;     ///< tau_i: N_i / p_i
  int64_t num_batches = 0;   ///< N_i (mini-batches per local epoch)
};

/// AgentTrainingTime(p_j, tau_j) result (Algorithm 1 lines 15-22).
struct SplitChoice {
  size_t cut = 0;        ///< m*: chosen split
  double time = 0.0;     ///< tau_ij: estimated pair completion time
  double comm_time = 0.0;  ///< activation streaming + model suffix shipping
};

/// One accepted offload gamma_ij = 1 with its chosen split.
struct OffloadDecision {
  int64_t slow_agent = 0;
  int64_t fast_agent = 0;
  size_t cut = 0;
  double estimated_time = 0.0;
  double comm_time = 0.0;
};

struct PairingResult {
  std::vector<OffloadDecision> pairs;
  std::vector<int64_t> solo;     ///< agents training independently
  double estimated_round_time = 0.0;  ///< max_i tau_i after balancing
};

/// Estimate tau_ij over all profiled splits; nullopt if no split beats
/// training alone or the link is unusable. `batch_size` converts the
/// per-sample nu_m into per-batch payloads; the suffix model parameters are
/// shipped once each way (offload + trained-suffix return).
[[nodiscard]] std::optional<SplitChoice> best_split(
    const SplitProfile& profile, const AgentInfo& slow, const AgentInfo& fast,
    double link_mbps, int64_t batch_size);

/// Run one full round of the decentralized greedy pairing over the
/// participating agents. `infos` must be indexed by agent id.
/// `helpers` (default: the participants) are the agents that may accept an
/// offload; helpers that are not participants have no training task of
/// their own this round, so their tau_j is treated as zero — this is how
/// ComDML taps the spare resources of idle fast agents under client
/// sampling (paper SecI: "wasting the available spare resources of faster
/// agents").
[[nodiscard]] PairingResult pair_agents(
    const SplitProfile& profile, const std::vector<AgentInfo>& infos,
    const sim::Topology& topology, int64_t batch_size,
    const std::vector<int64_t>& participants,
    const std::vector<int64_t>* helpers = nullptr);

/// Ablation baseline: random feasible pairing with the best split per pair.
[[nodiscard]] PairingResult random_pairing(
    const SplitProfile& profile, const std::vector<AgentInfo>& infos,
    const sim::Topology& topology, int64_t batch_size,
    const std::vector<int64_t>& participants, tensor::Rng& rng);

/// Ablation baseline: static pairing fixed at round 0 (slowest-with-fastest
/// by *initial* order), reused every round regardless of current profiles.
class StaticPairing {
 public:
  void reset() { fixed_.reset(); }

  [[nodiscard]] PairingResult apply(const SplitProfile& profile,
                                    const std::vector<AgentInfo>& infos,
                                    const sim::Topology& topology,
                                    int64_t batch_size,
                                    const std::vector<int64_t>& participants);

 private:
  std::optional<std::vector<std::pair<int64_t, int64_t>>> fixed_;
};

}  // namespace comdml::core
