// Unified fleet facade: one step()/run()/evaluate() interface over every
// engine the repo has — the paper-scale timing simulators (SimulatedFleet,
// BaselineFleet) and the real-execution fleets (RealFleet,
// RealBaselineFleet) — for ComDML and all comparison methods.
//
//   auto fleet = core::FleetBuilder()
//                    .method(learncurve::Method::kComDML)
//                    .options(core::FleetOptions::paper_defaults())
//                    .topology(topology)
//                    .architecture(nn::resnet56_spec())
//                    .shard_sizes(sizes)
//                    .build();               // timing simulation
//
//   auto fleet = core::FleetBuilder()
//                    .method(learncurve::Method::kFedAvg)
//                    .topology(topology)
//                    .model(factory, classes)
//                    .shards(std::move(datasets))
//                    .build();               // real execution
//
// The builder picks the engine from (method, real-vs-simulated inputs);
// RoundReport is the union of every engine's per-round stats, so callers
// stop caring which engine is underneath. This is the entry point new
// scenarios (async rounds, sharded fleets, alternative backends) extend.
#pragma once

#include <memory>
#include <optional>

#include "baselines/baseline_fleet.hpp"
#include "baselines/real_baselines.hpp"
#include "core/real_fleet.hpp"
#include "core/trainer.hpp"

namespace comdml::core {

/// Union of the per-round stats of every fleet engine. Which fields are
/// filled depends on the engine underneath:
///  - paper-scale simulators: the full timing breakdown (compute / comm /
///    aggregation / idle / unbalanced) plus pairs and churn;
///  - real ComDML (RealFleet): round_seconds (balanced span + collective),
///    the aggregation clock and executed bytes, pairs, and the
///    loss/privacy fields;
///  - real baselines: only the aggregation clock/bytes (round_seconds
///    equals aggregation_seconds — communication is all their clock
///    models, so a local BrainTorrent mean reports 0) and mean_loss.
/// Unfilled fields are zero.
struct RoundReport {
  int64_t round = 0;
  double round_seconds = 0.0;        ///< modeled wall-clock of the round
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;         ///< largest pair communication time
  double aggregation_seconds = 0.0;  ///< collective / server exchange
  double idle_seconds = 0.0;
  double unbalanced_seconds = 0.0;   ///< counterfactual without offloading
  int64_t aggregation_bytes = 0;     ///< executed collective traffic (real)
  /// Bucketed aggregation (comms.bucket_bytes > 0): bucket count and the
  /// aggregation time left on the round's critical path after overlapping
  /// collectives with the compute tail (== aggregation_seconds when
  /// nothing is hidden).
  int64_t buckets = 0;
  double exposed_comm_seconds = 0.0;
  /// Buckets split-trained slow replicas published layer-by-layer while
  /// their split backward still ran (real ComDML only; see
  /// RealFleet::RoundStats::split_early_buckets).
  int64_t split_early_buckets = 0;
  int64_t num_pairs = 0;
  int64_t dropped_agents = 0;
  /// Solo agents deferred past the straggler deadline (real ComDML only;
  /// see RealFleet::RoundStats::late_agents).
  int64_t late_agents = 0;
  /// Retransmission traffic under message faults (real ComDML only;
  /// excluded from goodput).
  int64_t retransmit_bytes = 0;
  // Real-execution only:
  float mean_loss = 0.0f;
  float mean_slow_loss = 0.0f;
  double mean_dcor = 0.0;
  double mean_wire_compression = 0.0;
};

struct RunReport {
  std::vector<RoundReport> rounds;

  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] double mean_round_seconds() const;
  /// Wall-clock until `rounds` (fractional) rounds have completed; rounds
  /// beyond the recorded horizon extrapolate at the mean recorded rate.
  [[nodiscard]] double time_for_rounds(double target_rounds) const;
};

class FleetRuntime {
 public:
  /// One fleet round on whatever engine is underneath.
  RoundReport step();
  RunReport run(int64_t rounds);

  [[nodiscard]] learncurve::Method method() const noexcept {
    return method_;
  }
  /// True when the fleet trains real tensors (evaluate()/model() legal).
  [[nodiscard]] bool real() const noexcept {
    return real_comdml_ != nullptr || real_baseline_ != nullptr;
  }
  [[nodiscard]] int64_t agents() const noexcept { return agents_; }
  [[nodiscard]] int64_t rounds_executed() const noexcept { return round_; }

  /// Accuracy of the shared model on a held-out set (real fleets only).
  [[nodiscard]] float evaluate(const data::Dataset& test);
  /// Agent replica access (real fleets only).
  [[nodiscard]] nn::Sequential& model(int64_t agent);

  /// Elastic membership between rounds (real ComDML fleet only): leave()
  /// removes an agent, rejoin() re-admits it initialized from consensus.
  void leave(int64_t agent);
  void rejoin(int64_t agent);
  [[nodiscard]] std::vector<int64_t> live_agents() const;

  /// Durable fleet state between rounds (real ComDML fleet only); restore
  /// also resynchronizes the runtime's round counter.
  [[nodiscard]] std::vector<uint8_t> checkpoint();
  void restore(const std::vector<uint8_t>& bytes);

  /// Quorum checkpointing (real ComDML fleet only): checkpoint_shard
  /// serializes one worker's owned agents + fleet-level state;
  /// restore_shards reassembles a fleet from any subset of shards and
  /// resynchronizes the runtime's round counter. See RealFleet.
  [[nodiscard]] std::vector<uint8_t> checkpoint_shard(
      int64_t shard, int64_t shards, const std::vector<int64_t>& owned);
  void restore_shards(const std::vector<std::vector<uint8_t>>& shards);

  /// The underlying real ComDML fleet, or nullptr for every other engine.
  /// Multi-process workers (fleetd) reach through this to install a
  /// DistContext and to export/import per-agent state.
  [[nodiscard]] RealFleet* real_comdml() noexcept {
    return real_comdml_.get();
  }

 private:
  friend class FleetBuilder;
  FleetRuntime() = default;

  learncurve::Method method_ = learncurve::Method::kComDML;
  int64_t agents_ = 0;
  int64_t round_ = 0;
  // Exactly one engine is non-null.
  std::unique_ptr<SimulatedFleet> sim_comdml_;
  std::unique_ptr<baselines::BaselineFleet> sim_baseline_;
  std::unique_ptr<RealFleet> real_comdml_;
  std::unique_ptr<baselines::RealBaselineFleet> real_baseline_;
};

/// Collects the inputs for a FleetRuntime and validates the combination.
/// `method`, `topology`, and exactly one of {architecture+shard_sizes,
/// model+shards} are required.
class FleetBuilder {
 public:
  FleetBuilder& method(learncurve::Method m);
  FleetBuilder& options(FleetOptions o);
  FleetBuilder& topology(sim::Topology t);

  // Paper-scale timing simulation inputs.
  FleetBuilder& architecture(nn::ArchitectureSpec spec);
  FleetBuilder& shard_sizes(std::vector<int64_t> sizes);
  /// Scheduler ablation (ComDML simulation only).
  FleetBuilder& scheduler(Scheduler s);

  // Real-execution inputs.
  FleetBuilder& model(ModelFactory factory, int64_t classes);
  FleetBuilder& shards(std::vector<data::Dataset> datasets);

  [[nodiscard]] FleetRuntime build();

 private:
  learncurve::Method method_ = learncurve::Method::kComDML;
  FleetOptions options_;
  bool options_set_ = false;
  std::optional<sim::Topology> topology_;
  std::optional<nn::ArchitectureSpec> spec_;
  std::optional<std::vector<int64_t>> shard_sizes_;
  Scheduler scheduler_ = Scheduler::kComDML;
  ModelFactory factory_;
  int64_t classes_ = 0;
  std::optional<std::vector<data::Dataset>> shards_;
  bool consumed_ = false;  ///< build() moves the inputs out exactly once
};

}  // namespace comdml::core
