// Real execution mode: the full ComDML round — decentralized pairing,
// local-loss split training on actual tensors, and a real message-level
// AllReduce — on small models and synthetic data. The scheduling code is
// the same pair_agents()/SplitProfile used at paper scale, so nothing about
// the algorithm is mocked; only the model/dataset sizes shrink.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/config.hpp"
#include "core/pairing.hpp"
#include "core/round_pipeline.hpp"
#include "data/batcher.hpp"
#include "nn/split.hpp"

namespace comdml::core {

/// Builds one model replica; must be deterministic given the Rng.
using ModelFactory =
    std::function<std::unique_ptr<nn::Sequential>(tensor::Rng&)>;

/// A fleet checkpoint blob failed validation: wrong magic, unsupported
/// version, checksum mismatch (bit rot / partial write), truncation, or a
/// geometry the restoring fleet cannot host. Typed so callers (fleet_cli)
/// can report a clear "checkpoint is unusable" instead of a generic
/// precondition failure.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

class RealFleet {
 public:
  /// The layered fleet options; training fields live under `.train`,
  /// aggregation under `.comms`, privacy under `.privacy`.
  using Options = FleetOptions;

  /// One shard per agent; all shards must share classes and sample shape.
  RealFleet(const ModelFactory& factory, int64_t classes,
            std::vector<data::Dataset> shards, sim::Topology topology,
            Options options);

  struct RoundStats {
    double sim_time = 0.0;       ///< simulated wall-clock of the round
    float mean_slow_loss = 0.0;  ///< mean aux-head loss across pairs
    float mean_loss = 0.0;       ///< mean full/fast loss across agents
    int64_t num_pairs = 0;
    double mean_dcor = 0.0;  ///< input-vs-cut-activation distance correlation
    /// Measured wire compression of the real activations crossing the cut
    /// (bitmask + int8 codec; see comm/compress.hpp). 0 when no pairs.
    double mean_wire_compression = 0.0;
    /// Executed traffic of the aggregation collective (InProcTransport).
    double aggregation_seconds = 0.0;  ///< modeled clock of the collective
    int64_t aggregation_bytes = 0;     ///< max bytes any agent sent
    /// Bucketed aggregation (comms.bucket_bytes > 0): bucket count and the
    /// aggregation time left on the round's critical path after overlap
    /// (== aggregation_seconds when nothing is hidden; sequential and flat
    /// rounds expose everything).
    int64_t buckets = 0;
    double exposed_comm_seconds = 0.0;
    /// Buckets that split-trained slow replicas published while their
    /// split backward still had units pending (layerwise readiness inside
    /// LocalLossSplitTrainer; 0 without pairs or without in-task
    /// publication). Before this existed, split replicas published
    /// everything at task end and the overlap window collapsed there.
    int64_t split_early_buckets = 0;
    /// Agents that died during this round (injected faults).
    int64_t dropped_agents = 0;
    /// Solo agents deferred past the straggler deadline this round: they
    /// trained but the on-time set aggregated without them; their late
    /// update rides the error-feedback residual into the next round.
    int64_t late_agents = 0;
    /// Retransmission traffic of the bucket collectives (reliable delivery
    /// under message faults; excluded from goodput).
    int64_t retransmit_bytes = 0;
  };

  /// Per-task training result, folded into the round's mean losses in
  /// fixed task order. Public because a multi-process fleet gathers owned
  /// tasks' results and broadcasts the merged vector to every worker (the
  /// fold itself stays one code path).
  struct TaskResult {
    float slow_loss_sum = 0.0f;
    float loss_sum = 0.0f;
    int64_t loss_count = 0;
    double dcor = 0.0;
    double wire_compression = 0.0;
    int64_t dcor_count = 0;
    int64_t split_early_buckets = 0;
  };

  /// One agent's exported round state in transit between workers.
  using AgentBlob = std::pair<int64_t, std::vector<uint8_t>>;

  /// The cross-worker round barrier's payload. A worker fills `state_out`
  /// with the agents it trained but does not own (an offload pair borrows
  /// the fast agent's replica onto the slow agent's owner); the exchange
  /// returns every worker's borrowed state in `state_in` plus `died` — the
  /// agents of workers that crashed mid-training, which the step kills
  /// before forming the aggregation collective.
  struct ExchangeIO {
    /// Task -> primary agent id: the solo agent, or a pair's slow agent.
    /// The owner of the primary runs the task.
    const std::vector<int64_t>* task_agent = nullptr;
    /// In: this worker's results for owned tasks. Out: results merged
    /// across all workers, every surviving worker's slot filled.
    std::vector<TaskResult>* results = nullptr;
    std::vector<AgentBlob> state_out;  ///< borrowed agents, trained here
    std::vector<AgentBlob> state_in;   ///< all workers' borrowed agents
    std::vector<int64_t> died;         ///< agents of crashed workers
  };

  /// Multi-process execution: this process is shard `shard` of `shards`,
  /// hosting the agents whose owner[] entry names it. Every worker runs
  /// the same deterministic fleet (same seeds -> identical replicas) but
  /// trains only the tasks whose primary agent it owns; `exchange` merges
  /// TaskResults and borrowed agent state across workers, and the flat
  /// aggregation executes rank-partitioned over `transport` (endpoints ==
  /// agents) — same schedule, same arithmetic, so the consensus mean is
  /// bit-identical to the single-process collective.
  struct DistContext {
    int64_t shard = 0;
    int64_t shards = 1;
    std::vector<int64_t> owner;  ///< agent -> shard
    comm::Transport* transport = nullptr;
    std::function<void(ExchangeIO&)> exchange;
    /// Crash barrier after every collective attempt. In: this worker's
    /// view of the live set (the attempted participants minus endpoints
    /// the transport declared dead) and whether the attempted schedule ran
    /// to completion. Out: the agreed live set, plus a fresh transport
    /// (never null when the set must be retried — rebuilding the data mesh
    /// guarantees no stale frame from the aborted schedule leaks into the
    /// survivor schedule) or nullptr when every worker agrees and the
    /// collective is settled. Workers without a coordinator (single
    /// process) leave this unset and recover from the local view.
    std::function<std::pair<std::vector<int64_t>, comm::Transport*>(
        const std::vector<int64_t>&, bool)>
        collective_sync;
  };

  /// Enable multi-process mode. Requires a flat (non-bucketed,
  /// non-pipelined) fleet, leave-mode-only fault plans, no straggler
  /// deadline, and no message loss; throws otherwise. Call before the
  /// first step() (a rejoining worker calls it before restore()).
  void set_dist_context(DistContext ctx);
  /// Swap the data-mesh transport between rounds (a remesh after worker
  /// churn). The previous transport is the caller's to destroy.
  void set_dist_transport(comm::Transport* transport);

  /// Serialize one agent's mutable round state (liveness, weights,
  /// momentum, batcher position) so ownership can move between processes
  /// — the checkpoint path gathers remote agents through this.
  [[nodiscard]] std::vector<uint8_t> export_agent(int64_t agent);
  /// Inverse of export_agent (geometry must match).
  void import_agent(int64_t agent, const std::vector<uint8_t>& bytes);

  /// One complete ComDML round (pair -> train -> aggregate) over the live
  /// agents. Injected faults (options.faults) kill their agent at the
  /// configured point; the round still completes over the survivors.
  RoundStats step();

  /// Accuracy of the (post-aggregation) shared model on a held-out set.
  [[nodiscard]] float evaluate(const data::Dataset& test);

  [[nodiscard]] nn::Sequential& model(int64_t agent);

  /// Learning rate currently in force (moves under the plateau schedule).
  [[nodiscard]] float current_lr() const noexcept { return current_lr_; }

  [[nodiscard]] int64_t agents() const noexcept {
    return static_cast<int64_t>(shards_.size());
  }
  [[nodiscard]] const SplitProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] int64_t round() const noexcept { return round_; }

  // ---- elastic membership ---------------------------------------------------

  /// Remove `agent` from the fleet between rounds. Idempotent; at least
  /// one agent must stay live for the next step().
  void leave(int64_t agent);
  /// Re-admit `agent` between rounds: its replica is initialized from the
  /// current consensus state (a live agent's post-aggregation model), its
  /// momentum is cleared, and its error-feedback residuals are zeroed.
  void rejoin(int64_t agent);
  [[nodiscard]] bool agent_alive(int64_t agent) const;
  [[nodiscard]] std::vector<int64_t> live_agents() const;

  // ---- durable state --------------------------------------------------------

  /// Serialize the full fleet state between rounds: every agent's model,
  /// momentum, batcher position, liveness, the fleet rng / LR / plateau
  /// controller, and the pipeline's error-feedback residuals. The blob is
  /// framed [magic | version | fnv1a(payload) | payload], so restore()
  /// detects truncation and bit rot before touching fleet state. Restoring
  /// into a structurally identical fleet resumes bit-identically to never
  /// having stopped.
  [[nodiscard]] std::vector<uint8_t> checkpoint();
  /// Validates and loads a checkpoint. Throws CheckpointError for an
  /// unusable blob (bad magic/version, checksum mismatch, truncation) and
  /// for a checkpoint of *more* agents than this fleet. A checkpoint of
  /// fewer agents restores into the wider fleet: the extra agents come up
  /// as left (rejoinable from consensus), so a crashed fleet can resume
  /// into different live-set geometry.
  void restore(const std::vector<uint8_t>& bytes);

  /// Quorum checkpointing: one worker's shard of the fleet state — the
  /// fleet-level fields (round, rng, LR, plateau) plus only the listed
  /// agents' exported state. Every worker writes its own shard locally, so
  /// a checkpoint survives any coordinator or worker crash that leaves a
  /// quorum of shards readable. Framed like checkpoint() (magic "CMDS").
  [[nodiscard]] std::vector<uint8_t> checkpoint_shard(
      int64_t shard, int64_t shards,
      const std::vector<int64_t>& owned_agents);
  /// Assemble a fleet from per-worker shards, in any order and from any
  /// subset of the original workers: agents covered by a present shard
  /// come up live with their exact state, the rest come up as left
  /// (rejoinable from consensus). Throws CheckpointError for unusable or
  /// mutually inconsistent shards. Flat fleets only.
  void restore_shards(const std::vector<std::vector<uint8_t>>& shards);

  /// Rounds completed since the last auto-checkpoint write (0 right after
  /// one; tests and dashboards). Auto-checkpointing itself is configured
  /// via options.faults.checkpoint_every / checkpoint_retain /
  /// checkpoint_dir and runs inside step().
  [[nodiscard]] int64_t rounds_since_checkpoint() const noexcept {
    return rounds_since_checkpoint_;
  }

 private:
  struct AgentState {
    std::unique_ptr<nn::Sequential> model;
    std::unique_ptr<data::Batcher> batcher;
    bool alive = true;
    /// Momentum carried across rounds (full-model training); cleared on
    /// rejoin. Split-trained slow replicas keep per-round transient unit
    /// optimizers (their auxiliary heads are themselves transient).
    std::vector<tensor::Tensor> velocity;
  };

  Options options_;
  std::vector<data::Dataset> shards_;
  sim::Topology topology_;
  tensor::Rng rng_;
  int64_t classes_;
  tensor::Shape in_shape_;
  SplitProfile profile_;
  std::vector<AgentState> agents_;
  /// Per-round aggregation merge buffers, reused across rounds so the
  /// collective stops heap-allocating after the first round.
  std::vector<std::vector<tensor::Tensor>> state_scratch_;
  /// Bucketed aggregation (comms.bucket_bytes > 0): the shared state
  /// partition, the concurrent collective engine, and the modeled
  /// backward-tail fraction per bucket (for the overlapped clock).
  std::optional<nn::BucketPlan> bucket_plan_;
  std::unique_ptr<RoundPipeline> pipeline_;
  std::vector<double> bucket_back_frac_;
  int64_t round_ = 0;
  int64_t rounds_since_checkpoint_ = 0;
  float current_lr_ = 0.0f;
  std::optional<nn::PlateauScheduler> plateau_;
  /// Multi-process execution context; nullopt = ordinary single-process.
  std::optional<DistContext> dist_;

  [[nodiscard]] std::vector<AgentInfo> build_infos() const;
  /// Draws from the agent's own batcher; `rng` drives any privacy
  /// transform so concurrent tasks never share a generator.
  [[nodiscard]] data::Batch next_batch(int64_t agent, tensor::Rng& rng);
  /// Mid-round death: mark the agent dead and drop its pending bucket
  /// contributions. Safe from the agent's own training task.
  void kill_agent(int64_t agent);
  [[nodiscard]] int64_t first_live() const;
  /// Write `<checkpoint_dir>/fleet_r<round>.cmdl` and prune beyond the
  /// retention count.
  void auto_checkpoint();
};

}  // namespace comdml::core
