#include "core/fault_spec.hpp"

#include <charconv>
#include <string_view>

namespace comdml::core {

namespace {

/// Digit-only, fully-consumed, non-negative integer parse. Rejects empty
/// fields, signs, hex, whitespace, and trailing garbage — everything
/// std::stoll silently tolerated.
bool parse_count(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

bool parse_fault_spec(const std::string& spec,
                      FleetOptions::FaultOptions::AgentFailure& out,
                      std::string* error) {
  out = {};
  const std::string_view sv(spec);
  const size_t at = sv.find('@');
  if (at == std::string_view::npos)
    return fail(error, "missing '@' (want A@R[:bN|:kN|:cS])");
  if (!parse_count(sv.substr(0, at), &out.agent))
    return fail(error, "agent must be a non-negative integer, got '" +
                           std::string(sv.substr(0, at)) + "'");
  std::string_view rest = sv.substr(at + 1);
  const size_t colon = rest.find(':');
  if (!parse_count(rest.substr(0, colon), &out.round))
    return fail(error, "round must be a non-negative integer, got '" +
                           std::string(rest.substr(0, colon)) + "'");
  if (colon == std::string_view::npos) return true;  // clean leave, "A@R"
  rest = rest.substr(colon + 1);
  if (rest.empty())
    return fail(error, "empty mode segment after ':' (want bN, kN or cS)");
  if (rest.find(':') != std::string_view::npos)
    return fail(error,
                "more than one mode segment — an agent failure picks "
                "exactly one death point");
  const char mode = rest.front();
  int64_t n = 0;
  if (!parse_count(rest.substr(1), &n))
    return fail(error, std::string("mode count must be a non-negative "
                                   "integer, got '") +
                           std::string(rest.substr(1)) + "'");
  switch (mode) {
    case 'b':
      out.after_batches = n;
      return true;
    case 'k':
      out.after_buckets = n;
      return true;
    case 'c':
      out.at_collective_step = n;
      return true;
    default:
      return fail(error, std::string("unknown mode '") + mode +
                             "' (want b = batches, k = buckets, "
                             "c = collective step)");
  }
}

}  // namespace comdml::core
