#include "core/execution.hpp"

#include <algorithm>

#include "comm/link.hpp"

namespace comdml::core {

PairExecution execute_pair(const SplitProfile& profile, const AgentInfo& slow,
                           const AgentInfo& fast, size_t cut,
                           double link_mbps, int64_t batch_size) {
  COMDML_CHECK(batch_size > 0);
  COMDML_REQUIRE(link_mbps > 0.0, "pair has no usable link");
  const SplitPoint& m = profile.at_cut(cut);
  const double link_bps = comm::bytes_per_sec(link_mbps);
  const double slow_batch_sec = m.t_slow / slow.proc_speed;
  const double fast_batch_sec = m.t_fast / fast.proc_speed;
  const double xfer_sec =
      static_cast<double>(m.nu_bytes) * static_cast<double>(batch_size) /
      link_bps;
  const double suffix_sec =
      static_cast<double>(m.suffix_param_bytes) / link_bps;
  const int64_t n = slow.num_batches;
  COMDML_CHECK(n > 0);

  PairExecution exec;
  // t = 0: pairing agreed; the suffix parameters ship first.
  double link_free = suffix_sec;
  exec.link_busy = suffix_sec;
  // Fast agent trains its own task concurrently with the suffix transfer.
  double fast_free = fast.tau_solo;
  exec.fast_train_time = fast.tau_solo;

  double slow_done = 0.0;   // completion of slow-side batch k
  double fast_done = 0.0;   // completion of fast-side batch k
  for (int64_t k = 0; k < n; ++k) {
    slow_done = slow_done + slow_batch_sec;  // sequential prefix training
    // FIFO link: activation of batch k starts when both producer and link
    // are ready.
    const double xfer_start = std::max(slow_done, link_free);
    const double arrival = xfer_start + xfer_sec;
    link_free = arrival;
    exec.link_busy += xfer_sec;
    // Fast agent consumes arrivals in order, after its own task and the
    // suffix model are in place.
    const double start =
        std::max({arrival, fast_free, suffix_sec});
    fast_done = start + fast_batch_sec;
    fast_free = fast_done;
    exec.fast_train_time += fast_batch_sec;
  }
  exec.slow_finish = slow_done;
  // Trained suffix returns to the slow agent before aggregation.
  const double return_start = std::max(fast_done, link_free);
  exec.fast_finish = return_start + suffix_sec;
  exec.link_busy += suffix_sec;
  exec.pair_time = std::max(exec.slow_finish, exec.fast_finish);
  exec.slow_idle = exec.pair_time - exec.slow_finish;
  exec.fast_idle = exec.pair_time - exec.fast_train_time;
  return exec;
}

}  // namespace comdml::core
