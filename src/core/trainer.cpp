#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "comm/link.hpp"
#include "sim/resources.hpp"

namespace comdml::core {

SimulatedFleet::SimulatedFleet(const nn::ArchitectureSpec& spec,
                               FleetConfig config, sim::Topology topology,
                               std::vector<int64_t> shard_sizes,
                               Scheduler scheduler)
    : config_(config),
      profile_(SplitProfile::from_spec(spec, config.max_split_points,
                                       config.activation_compression)),
      topology_(std::move(topology)),
      shard_sizes_(std::move(shard_sizes)),
      scheduler_(scheduler),
      rng_(config.seed) {
  COMDML_CHECK(config_.agents == topology_.agents());
  COMDML_REQUIRE(static_cast<int64_t>(shard_sizes_.size()) == config_.agents,
                 "shard_sizes has " << shard_sizes_.size() << " entries for "
                                    << config_.agents << " agents");
  COMDML_CHECK(config_.participation > 0.0 && config_.participation <= 1.0);
  for (const int64_t s : shard_sizes_) COMDML_CHECK(s > 0);
}

std::vector<AgentInfo> SimulatedFleet::agent_infos() const {
  const double flops_per_sample = profile_.full_flops_per_sample();
  std::vector<AgentInfo> infos(static_cast<size_t>(config_.agents));
  const double overhead =
      learncurve::privacy_compute_overhead(config_.privacy);
  for (int64_t i = 0; i < config_.agents; ++i) {
    AgentInfo& a = infos[static_cast<size_t>(i)];
    a.id = i;
    const double sps =
        sim::samples_per_sec(topology_.profile(i), flops_per_sample) /
        overhead;
    a.proc_speed = sps / static_cast<double>(config_.batch_size);
    a.num_batches = (shard_sizes_[static_cast<size_t>(i)] +
                     config_.batch_size - 1) /
                    config_.batch_size;
    a.tau_solo = static_cast<double>(a.num_batches) / a.proc_speed;
  }
  return infos;
}

std::vector<int64_t> SimulatedFleet::sample_participants() {
  std::vector<int64_t> all(static_cast<size_t>(config_.agents));
  std::iota(all.begin(), all.end(), 0);
  if (config_.participation >= 1.0) return all;
  const auto want = std::max<int64_t>(
      2, static_cast<int64_t>(config_.participation *
                              static_cast<double>(config_.agents)));
  rng_.shuffle(all);
  all.resize(static_cast<size_t>(std::min(want, config_.agents)));
  std::sort(all.begin(), all.end());
  return all;
}

PairingResult SimulatedFleet::schedule(const std::vector<AgentInfo>& infos,
                                       const std::vector<int64_t>& parts) {
  switch (scheduler_) {
    case Scheduler::kComDML: {
      // Under client sampling, idle agents may still accept offloads.
      std::vector<int64_t> helpers(static_cast<size_t>(config_.agents));
      std::iota(helpers.begin(), helpers.end(), 0);
      return pair_agents(profile_, infos, topology_, config_.batch_size,
                         parts, &helpers);
    }
    case Scheduler::kNoOffloading: {
      PairingResult r;
      r.solo = parts;
      for (const int64_t id : parts)
        r.estimated_round_time =
            std::max(r.estimated_round_time,
                     infos[static_cast<size_t>(id)].tau_solo);
      return r;
    }
    case Scheduler::kRandom:
      return random_pairing(profile_, infos, topology_, config_.batch_size,
                            parts, rng_);
    case Scheduler::kStatic:
      return static_pairing_.apply(profile_, infos, topology_,
                                   config_.batch_size, parts);
    case Scheduler::kExact:
      return optimal_pairing(profile_, infos, topology_, config_.batch_size,
                             parts);
  }
  COMDML_CHECK(false);
  return {};
}

RoundRecord SimulatedFleet::step() {
  // Dynamic environment: re-draw 20 % of profiles every reshuffle period
  // (the paper re-randomizes after round 100).
  if (config_.reshuffle_period > 0 && round_ > 0 &&
      round_ % config_.reshuffle_period == 0) {
    auto profiles = topology_.profiles();
    sim::reshuffle_profiles(profiles, config_.reshuffle_fraction, rng_);
    topology_.set_profiles(std::move(profiles));
  }

  const auto infos = agent_infos();
  auto participants = sample_participants();

  // Device churn: each sampled agent may fail before the round starts; the
  // fleet proceeds with the survivors (at least two must remain).
  int64_t dropped = 0;
  if (config_.agent_dropout > 0.0) {
    std::vector<int64_t> survivors;
    for (const int64_t id : participants) {
      if (static_cast<int64_t>(participants.size()) - dropped > 2 &&
          rng_.uniform() < config_.agent_dropout) {
        ++dropped;
      } else {
        survivors.push_back(id);
      }
    }
    participants = std::move(survivors);
  }

  const PairingResult plan = schedule(infos, participants);
  const auto is_participant = [&](int64_t id) {
    return std::binary_search(participants.begin(), participants.end(), id);
  };

  // Execute the round on the discrete-event simulator: one completion event
  // per solo agent / pair, then the AllReduce once all have finished.
  sim::Simulator des;
  RoundRecord rec;
  rec.round = round_;
  rec.num_pairs = static_cast<int64_t>(plan.pairs.size());
  rec.dropped_agents = dropped;

  double last_finish = 0.0;
  for (const int64_t id : plan.solo) {
    const double t = infos[static_cast<size_t>(id)].tau_solo;
    des.schedule_in(t, [&rec, t] {
      rec.compute_time = std::max(rec.compute_time, t);
    });
    last_finish = std::max(last_finish, t);
  }
  for (const auto& pair : plan.pairs) {
    AgentInfo fast_info = infos[static_cast<size_t>(pair.fast_agent)];
    if (!is_participant(pair.fast_agent))
      fast_info.tau_solo = 0.0;  // idle helper lends its full capacity
    const auto exec = execute_pair(
        profile_, infos[static_cast<size_t>(pair.slow_agent)], fast_info,
        pair.cut,
        topology_.bandwidth_mbps(pair.slow_agent, pair.fast_agent),
        config_.batch_size);
    des.schedule_in(exec.pair_time, [&rec, exec] {
      rec.compute_time = std::max(rec.compute_time, exec.fast_train_time);
      rec.comm_time = std::max(rec.comm_time, exec.link_busy);
      rec.idle_time += exec.slow_idle + exec.fast_idle;
    });
    last_finish = std::max(last_finish, exec.pair_time);
  }

  // Aggregation starts once every participant has finished.
  const auto model_bytes = profile_.model_state_bytes();
  const auto min_bw = topology_.min_link_bandwidth();
  COMDML_REQUIRE(min_bw.has_value(), "fleet topology has no usable link");
  const auto agg =
      comm::allreduce_cost(static_cast<int64_t>(participants.size()),
                           model_bytes, *min_bw, config_.aggregation,
                           config_.latency_sec);
  des.schedule_at(last_finish, [&des, &rec, &agg] {
    des.schedule_in(agg.seconds, [&rec, &agg] {
      rec.aggregation_time = agg.seconds;
    });
  });
  des.run();
  rec.round_time = des.now();

  // Idle of solo agents relative to the round span (aggregation excluded —
  // all agents participate in the collective).
  for (const int64_t id : plan.solo)
    rec.idle_time +=
        last_finish - infos[static_cast<size_t>(id)].tau_solo;
  // Paired agents may also wait for the global straggler.
  for (const auto& pair : plan.pairs)
    rec.idle_time += 2.0 * (last_finish - std::min(last_finish,
                                                   pair.estimated_time));

  // Counterfactual round time with no offloading (for savings accounting).
  for (const int64_t id : participants)
    rec.unbalanced_time = std::max(
        rec.unbalanced_time, infos[static_cast<size_t>(id)].tau_solo);
  rec.unbalanced_time += agg.seconds;

  ++round_;
  return rec;
}

RunSummary SimulatedFleet::run(int64_t rounds) {
  COMDML_CHECK(rounds > 0);
  RunSummary summary;
  for (int64_t r = 0; r < rounds; ++r) summary.add(step());
  return summary;
}

std::vector<int64_t> shard_sizes_for(const data::DatasetSpec& dataset,
                                     int64_t agents,
                                     learncurve::PartitionKind partition,
                                     tensor::Rng& rng, double alpha) {
  COMDML_CHECK(agents > 0);
  std::vector<int64_t> sizes(static_cast<size_t>(agents), 0);
  if (partition == learncurve::PartitionKind::kIID) {
    const int64_t base = dataset.train_size / agents;
    const int64_t extra = dataset.train_size % agents;
    for (int64_t i = 0; i < agents; ++i)
      sizes[static_cast<size_t>(i)] = base + (i < extra ? 1 : 0);
    return sizes;
  }
  // Label-distribution skew (paper §V-A): each class's samples are split
  // across agents with Dirichlet(alpha) proportions; an agent's shard size
  // is the sum of its per-class allocations. With many classes the totals
  // concentrate — the skew is in the label mix, not a single giant shard.
  const int64_t per_class = dataset.train_size / dataset.classes;
  for (int64_t c = 0; c < dataset.classes; ++c) {
    const auto props = rng.dirichlet(alpha, static_cast<size_t>(agents));
    for (int64_t a = 0; a < agents; ++a)
      sizes[static_cast<size_t>(a)] += static_cast<int64_t>(
          props[static_cast<size_t>(a)] * static_cast<double>(per_class));
  }
  for (auto& s : sizes) s = std::max<int64_t>(s, 1);
  return sizes;
}

}  // namespace comdml::core
