#include "core/fleet_runtime.hpp"

#include <algorithm>

namespace comdml::core {

// ---- RunReport --------------------------------------------------------------

double RunReport::total_seconds() const {
  double t = 0.0;
  for (const auto& r : rounds) t += r.round_seconds;
  return t;
}

double RunReport::mean_round_seconds() const {
  COMDML_REQUIRE(!rounds.empty(), "no rounds recorded");
  return total_seconds() / static_cast<double>(rounds.size());
}

double RunReport::time_for_rounds(double target_rounds) const {
  return time_for_fractional_rounds(
      rounds, [](const RoundReport& r) { return r.round_seconds; },
      target_rounds);
}

// ---- FleetRuntime -----------------------------------------------------------

namespace {

RoundReport from_record(const RoundRecord& rec) {
  RoundReport rep;
  rep.round = rec.round;
  rep.round_seconds = rec.round_time;
  rep.compute_seconds = rec.compute_time;
  rep.comm_seconds = rec.comm_time;
  rep.aggregation_seconds = rec.aggregation_time;
  rep.idle_seconds = rec.idle_time;
  rep.unbalanced_seconds = rec.unbalanced_time;
  rep.num_pairs = rec.num_pairs;
  rep.dropped_agents = rec.dropped_agents;
  return rep;
}

}  // namespace

RoundReport FleetRuntime::step() {
  RoundReport rep;
  if (sim_comdml_ != nullptr) {
    rep = from_record(sim_comdml_->step());
  } else if (sim_baseline_ != nullptr) {
    rep = from_record(sim_baseline_->step());
  } else if (real_comdml_ != nullptr) {
    const auto stats = real_comdml_->step();
    rep.round_seconds = stats.sim_time;
    rep.aggregation_seconds = stats.aggregation_seconds;
    rep.aggregation_bytes = stats.aggregation_bytes;
    rep.buckets = stats.buckets;
    rep.exposed_comm_seconds = stats.exposed_comm_seconds;
    rep.split_early_buckets = stats.split_early_buckets;
    rep.num_pairs = stats.num_pairs;
    rep.mean_loss = stats.mean_loss;
    rep.mean_slow_loss = stats.mean_slow_loss;
    rep.mean_dcor = stats.mean_dcor;
    rep.mean_wire_compression = stats.mean_wire_compression;
    rep.dropped_agents = stats.dropped_agents;
    rep.late_agents = stats.late_agents;
    rep.retransmit_bytes = stats.retransmit_bytes;
  } else {
    COMDML_CHECK(real_baseline_ != nullptr);
    const auto stats = real_baseline_->step();
    rep.round_seconds = stats.aggregation_seconds;  // comm is all we model
    rep.aggregation_seconds = stats.aggregation_seconds;
    rep.aggregation_bytes = stats.aggregation_bytes;
    rep.mean_loss = stats.mean_loss;
  }
  rep.round = round_++;
  return rep;
}

RunReport FleetRuntime::run(int64_t rounds) {
  COMDML_CHECK(rounds > 0);
  RunReport report;
  report.rounds.reserve(static_cast<size_t>(rounds));
  for (int64_t r = 0; r < rounds; ++r) report.rounds.push_back(step());
  return report;
}

float FleetRuntime::evaluate(const data::Dataset& test) {
  COMDML_REQUIRE(real(), "evaluate() needs a real-execution fleet "
                         "(builder with model()/shards())");
  return real_comdml_ != nullptr ? real_comdml_->evaluate(test)
                                 : real_baseline_->evaluate(test);
}

nn::Sequential& FleetRuntime::model(int64_t agent) {
  COMDML_REQUIRE(real(), "model() needs a real-execution fleet");
  return real_comdml_ != nullptr ? real_comdml_->model(agent)
                                 : real_baseline_->model(agent);
}

void FleetRuntime::leave(int64_t agent) {
  COMDML_REQUIRE(real_comdml_ != nullptr,
                 "elastic membership needs the real ComDML fleet");
  real_comdml_->leave(agent);
}

void FleetRuntime::rejoin(int64_t agent) {
  COMDML_REQUIRE(real_comdml_ != nullptr,
                 "elastic membership needs the real ComDML fleet");
  real_comdml_->rejoin(agent);
}

std::vector<int64_t> FleetRuntime::live_agents() const {
  COMDML_REQUIRE(real_comdml_ != nullptr,
                 "elastic membership needs the real ComDML fleet");
  return real_comdml_->live_agents();
}

std::vector<uint8_t> FleetRuntime::checkpoint() {
  COMDML_REQUIRE(real_comdml_ != nullptr,
                 "checkpoint/restore needs the real ComDML fleet");
  return real_comdml_->checkpoint();
}

void FleetRuntime::restore(const std::vector<uint8_t>& bytes) {
  COMDML_REQUIRE(real_comdml_ != nullptr,
                 "checkpoint/restore needs the real ComDML fleet");
  real_comdml_->restore(bytes);
  round_ = real_comdml_->round();
}

std::vector<uint8_t> FleetRuntime::checkpoint_shard(
    int64_t shard, int64_t shards, const std::vector<int64_t>& owned) {
  COMDML_REQUIRE(real_comdml_ != nullptr,
                 "checkpoint/restore needs the real ComDML fleet");
  return real_comdml_->checkpoint_shard(shard, shards, owned);
}

void FleetRuntime::restore_shards(
    const std::vector<std::vector<uint8_t>>& shards) {
  COMDML_REQUIRE(real_comdml_ != nullptr,
                 "checkpoint/restore needs the real ComDML fleet");
  real_comdml_->restore_shards(shards);
  round_ = real_comdml_->round();
}

// ---- FleetBuilder -----------------------------------------------------------

FleetBuilder& FleetBuilder::method(learncurve::Method m) {
  method_ = m;
  return *this;
}

FleetBuilder& FleetBuilder::options(FleetOptions o) {
  options_ = o;
  options_set_ = true;
  return *this;
}

FleetBuilder& FleetBuilder::topology(sim::Topology t) {
  topology_ = std::move(t);
  return *this;
}

FleetBuilder& FleetBuilder::architecture(nn::ArchitectureSpec spec) {
  spec_ = std::move(spec);
  return *this;
}

FleetBuilder& FleetBuilder::shard_sizes(std::vector<int64_t> sizes) {
  shard_sizes_ = std::move(sizes);
  return *this;
}

FleetBuilder& FleetBuilder::scheduler(Scheduler s) {
  scheduler_ = s;
  return *this;
}

FleetBuilder& FleetBuilder::model(ModelFactory factory, int64_t classes) {
  factory_ = std::move(factory);
  classes_ = classes;
  return *this;
}

FleetBuilder& FleetBuilder::shards(std::vector<data::Dataset> datasets) {
  shards_ = std::move(datasets);
  return *this;
}

FleetRuntime FleetBuilder::build() {
  COMDML_REQUIRE(!consumed_,
                 "FleetBuilder::build() already consumed this builder's "
                 "inputs; configure a fresh builder per fleet");
  consumed_ = true;
  if (options_set_) options_.validate();
  COMDML_REQUIRE(topology_.has_value(), "FleetBuilder needs a topology()");
  COMDML_REQUIRE(topology_->agents() > 0,
                 "FleetBuilder needs a topology with at least one agent");
  const bool wants_real = shards_.has_value() || factory_ != nullptr;
  const bool wants_sim = spec_.has_value() || shard_sizes_.has_value();
  COMDML_REQUIRE(wants_real != wants_sim,
                 "FleetBuilder needs either architecture()+shard_sizes() "
                 "(timing simulation) or model()+shards() (real "
                 "execution), not both");

  FleetRuntime runtime;
  runtime.method_ = method_;
  runtime.agents_ = topology_->agents();
  if (wants_sim) {
    COMDML_REQUIRE(spec_.has_value() && shard_sizes_.has_value(),
                   "timing simulation needs architecture() and "
                   "shard_sizes()");
    // Simulated fleets default to the paper-scale preset.
    const FleetOptions opts =
        options_set_ ? options_ : FleetOptions::paper_defaults();
    const FleetConfig cfg = opts.to_fleet_config(topology_->agents());
    if (method_ == learncurve::Method::kComDML) {
      runtime.sim_comdml_ = std::make_unique<SimulatedFleet>(
          *spec_, cfg, std::move(*topology_), std::move(*shard_sizes_),
          scheduler_);
    } else {
      COMDML_REQUIRE(scheduler_ == Scheduler::kComDML,
                     "scheduler() ablations only apply to ComDML");
      runtime.sim_baseline_ = std::make_unique<baselines::BaselineFleet>(
          method_, *spec_, cfg, std::move(*topology_),
          std::move(*shard_sizes_));
    }
  } else {
    COMDML_REQUIRE(factory_ != nullptr && shards_.has_value(),
                   "real execution needs model() and shards()");
    COMDML_REQUIRE(scheduler_ == Scheduler::kComDML,
                   "scheduler() ablations only apply to the ComDML "
                   "simulation");
    if (method_ == learncurve::Method::kComDML) {
      runtime.real_comdml_ = std::make_unique<RealFleet>(
          factory_, classes_, std::move(*shards_), std::move(*topology_),
          options_);
    } else {
      runtime.real_baseline_ =
          std::make_unique<baselines::RealBaselineFleet>(
              method_, factory_, classes_, std::move(*shards_),
              std::move(*topology_), options_);
    }
  }
  return runtime;
}

}  // namespace comdml::core
