#include "core/real_fleet.hpp"

#include "comm/allreduce.hpp"
#include "comm/compress.hpp"
#include "core/parallel.hpp"
#include "nn/arch_specs.hpp"
#include "privacy/dcor.hpp"
#include "privacy/dp.hpp"
#include "privacy/patch_shuffle.hpp"
#include "sim/resources.hpp"

namespace comdml::core {

RealFleet::RealFleet(const ModelFactory& factory, int64_t classes,
                     std::vector<data::Dataset> shards,
                     sim::Topology topology, Options options)
    : options_(options),
      shards_(std::move(shards)),
      topology_(std::move(topology)),
      rng_(options.seed),
      classes_(classes),
      in_shape_(),
      profile_() {
  COMDML_REQUIRE(!shards_.empty(), "fleet needs at least one shard");
  COMDML_CHECK(static_cast<int64_t>(shards_.size()) == topology_.agents());
  for (auto& s : shards_) s.validate();
  in_shape_ = shards_.front().sample_shape();

  // Identical initial replicas: build each from a forked RNG, then overwrite
  // with replica 0's state.
  agents_.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    tensor::Rng model_rng = rng_.fork();
    agents_[i].model = factory(model_rng);
    COMDML_REQUIRE(agents_[i].model->size() >= 2,
                   "models need >= 2 units for split training");
    agents_[i].batcher = std::make_unique<data::Batcher>(
        shards_[i], options_.train.batch_size, rng_.fork());
  }
  const auto init = nn::state_of(*agents_[0].model);
  for (size_t i = 1; i < agents_.size(); ++i)
    nn::load_state(*agents_[i].model, init);

  const auto spec = nn::spec_from_model(*agents_[0].model, in_shape_,
                                        "real-model", classes_);
  profile_ = SplitProfile::from_spec(spec);

  current_lr_ = options_.train.sgd.lr;
  if (options_.train.plateau_factor > 0.0f) {
    plateau_.emplace(options_.train.plateau_factor, options_.train.plateau_patience);
  }
}

std::vector<AgentInfo> RealFleet::build_infos() const {
  std::vector<AgentInfo> infos(agents_.size());
  const double flops = profile_.full_flops_per_sample();
  for (size_t i = 0; i < agents_.size(); ++i) {
    AgentInfo& a = infos[i];
    a.id = static_cast<int64_t>(i);
    const double sps =
        topology_.profile(static_cast<int64_t>(i)).cpu *
        options_.train.reference_flops / flops;
    a.proc_speed = sps / static_cast<double>(options_.train.batch_size);
    a.num_batches = options_.train.batches_per_round;
    a.tau_solo = static_cast<double>(a.num_batches) / a.proc_speed;
  }
  return infos;
}

data::Batch RealFleet::next_batch(int64_t agent, tensor::Rng& rng) {
  data::Batch batch = agents_[static_cast<size_t>(agent)].batcher->next();
  if (options_.privacy.technique == learncurve::PrivacyTechnique::kPatchShuffle &&
      batch.x.rank() == 4) {
    batch.x = privacy::patch_shuffle(batch.x, options_.privacy.shuffle_patch, rng);
  }
  return batch;
}

RealFleet::RoundStats RealFleet::step() {
  nn::SGD::Options sgd = options_.train.sgd;
  sgd.lr = current_lr_;
  const auto infos = build_infos();
  std::vector<int64_t> participants(agents_.size());
  for (size_t i = 0; i < participants.size(); ++i)
    participants[i] = static_cast<int64_t>(i);
  const PairingResult plan = pair_agents(profile_, infos, topology_,
                                         options_.train.batch_size, participants);

  RoundStats stats;
  stats.num_pairs = static_cast<int64_t>(plan.pairs.size());

  // Local-training phase. Pairing is a matching, so pair tasks touch
  // disjoint agent replicas/batchers and solo tasks the rest: every task is
  // independent between the pairing and aggregation barriers. Each task
  // gets an Rng forked in fixed task order before the fan-out, and results
  // land in a pre-sized slot vector reduced serially afterwards, so the
  // round is bit-identical for every COMDML_NUM_THREADS value.
  struct TaskResult {
    float slow_loss_sum = 0.0f;
    float loss_sum = 0.0f;
    int64_t loss_count = 0;
    double dcor = 0.0;
    double wire_compression = 0.0;
    int64_t dcor_count = 0;
  };
  const size_t n_pairs = plan.pairs.size();
  const size_t n_tasks = n_pairs + plan.solo.size();
  std::vector<tensor::Rng> task_rngs;
  task_rngs.reserve(n_tasks);
  for (size_t t = 0; t < n_tasks; ++t) task_rngs.push_back(rng_.fork());
  std::vector<TaskResult> results(n_tasks);

  parallel_for(0, static_cast<int64_t>(n_tasks), 1,
               [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      tensor::Rng& rng = task_rngs[static_cast<size_t>(t)];
      TaskResult& out = results[static_cast<size_t>(t)];
      if (t < static_cast<int64_t>(n_pairs)) {
        // Paired agents: local-loss split training of the *slow* agent's
        // replica (fast side physically runs on the fast agent; state-wise
        // it is the slow replica's suffix), while the fast agent also
        // trains its own replica.
        const auto& pair = plan.pairs[static_cast<size_t>(t)];
        auto& slow = agents_[static_cast<size_t>(pair.slow_agent)];
        auto& fast = agents_[static_cast<size_t>(pair.fast_agent)];
        nn::LocalLossSplitTrainer split(*slow.model, pair.cut, in_shape_,
                                        classes_, rng, sgd);
        for (int64_t b = 0; b < options_.train.batches_per_round; ++b) {
          const auto batch = next_batch(pair.slow_agent, rng);
          const auto step = split.train_batch(batch.x, batch.y);
          out.slow_loss_sum += step.slow_loss;
          out.loss_sum += step.fast_loss;
          ++out.loss_count;
          if (b == 0) {
            // Privacy leakage across the cut, measured on real
            // activations, and the actually-achieved wire compression of
            // the same payload.
            const auto h =
                slow.model->forward_range(batch.x, 0, pair.cut, false);
            out.dcor += privacy::distance_correlation(batch.x, h);
            out.wire_compression += comm::compression_ratio(h);
            ++out.dcor_count;
          }
        }
        nn::SGD fast_opt(fast.model->parameters(), sgd);
        for (int64_t b = 0; b < options_.train.batches_per_round; ++b) {
          const auto batch = next_batch(pair.fast_agent, rng);
          const auto res =
              nn::train_batch_full(*fast.model, fast_opt, batch.x, batch.y);
          out.loss_sum += res.loss;
          ++out.loss_count;
        }
      } else {
        // Solo agents train the full model.
        const int64_t id =
            plan.solo[static_cast<size_t>(t) - n_pairs];
        auto& agent = agents_[static_cast<size_t>(id)];
        nn::SGD opt(agent.model->parameters(), sgd);
        for (int64_t b = 0; b < options_.train.batches_per_round; ++b) {
          const auto batch = next_batch(id, rng);
          const auto res =
              nn::train_batch_full(*agent.model, opt, batch.x, batch.y);
          out.loss_sum += res.loss;
          ++out.loss_count;
        }
      }
    }
  });

  float slow_loss_sum = 0.0f, loss_sum = 0.0f;
  int64_t loss_count = 0;
  double dcor_sum = 0.0;
  int64_t dcor_count = 0;
  for (const TaskResult& r : results) {
    slow_loss_sum += r.slow_loss_sum;
    loss_sum += r.loss_sum;
    loss_count += r.loss_count;
    dcor_sum += r.dcor;
    stats.mean_wire_compression += r.wire_compression;
    dcor_count += r.dcor_count;
  }

  // Optional DP on each agent's state before it leaves the device. The
  // merge buffers are fleet members reused round over round.
  std::vector<std::vector<tensor::Tensor>>& states = state_scratch_;
  states.resize(agents_.size());
  for (size_t i = 0; i < agents_.size(); ++i)
    nn::copy_state_into(*agents_[i].model, states[i]);
  if (options_.privacy.technique ==
      learncurve::PrivacyTechnique::kDifferentialPrivacy) {
    for (auto& s : states)
      privacy::laplace_mechanism(s, options_.privacy.dp_epsilon,
                                 options_.privacy.dp_sensitivity, rng_);
  }

  // Real message-level decentralized aggregation over an InProcTransport.
  // The collective routes through the overlay at the bottleneck rate (the
  // seed cost models' assumption), and one run yields both the executed
  // traffic and the modeled clock — predicted cost and real bytes are the
  // same schedule by construction.
  const auto min_bw = topology_.min_link_bandwidth();
  COMDML_REQUIRE(min_bw.has_value() || agents_.size() == 1,
                 "topology has no usable link");
  const auto grid = comm::LinkGrid::uniform(
      static_cast<int64_t>(agents_.size()), min_bw.value_or(100.0),
      options_.comms.latency_sec);
  const auto agg =
      comm::allreduce_average_over(states, grid, options_.comms.aggregation);
  for (size_t i = 0; i < agents_.size(); ++i)
    nn::load_state(*agents_[i].model, states[i]);

  // Simulated wall-clock: balanced round span + the collective.
  stats.aggregation_seconds = agg.cost.seconds;
  stats.aggregation_bytes = agg.cost.bytes_per_agent;
  stats.sim_time = plan.estimated_round_time + agg.cost.seconds;
  stats.mean_slow_loss =
      plan.pairs.empty()
          ? 0.0f
          : slow_loss_sum / static_cast<float>(plan.pairs.size() *
                                               options_.train.batches_per_round);
  stats.mean_loss =
      loss_count == 0 ? 0.0f : loss_sum / static_cast<float>(loss_count);
  stats.mean_dcor =
      dcor_count == 0 ? 0.0 : dcor_sum / static_cast<double>(dcor_count);
  if (dcor_count > 0)
    stats.mean_wire_compression /= static_cast<double>(dcor_count);

  // Plateau LR schedule (paper §V-A): decay when the fleet loss stalls.
  if (plateau_) {
    const float mult = plateau_->observe(-stats.mean_loss);
    if (mult < 1.0f) current_lr_ *= mult;
  }
  ++round_;
  return stats;
}

float RealFleet::evaluate(const data::Dataset& test) {
  test.validate();
  return nn::evaluate_accuracy(*agents_[0].model, test.images, test.labels);
}

nn::Sequential& RealFleet::model(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  return *agents_[static_cast<size_t>(agent)].model;
}

}  // namespace comdml::core
