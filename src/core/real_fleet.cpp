#include "core/real_fleet.hpp"

#include <algorithm>

#include "comm/allreduce.hpp"
#include "comm/compress.hpp"
#include "core/parallel.hpp"
#include "nn/arch_specs.hpp"
#include "privacy/dcor.hpp"
#include "privacy/dp.hpp"
#include "privacy/patch_shuffle.hpp"
#include "sim/resources.hpp"

namespace comdml::core {

RealFleet::RealFleet(const ModelFactory& factory, int64_t classes,
                     std::vector<data::Dataset> shards,
                     sim::Topology topology, Options options)
    : options_(options),
      shards_(std::move(shards)),
      topology_(std::move(topology)),
      rng_(options.seed),
      classes_(classes),
      in_shape_(),
      profile_() {
  options_.validate();
  COMDML_REQUIRE(!shards_.empty(), "fleet needs at least one shard");
  COMDML_CHECK(static_cast<int64_t>(shards_.size()) == topology_.agents());
  for (auto& s : shards_) s.validate();
  in_shape_ = shards_.front().sample_shape();

  // Identical initial replicas: build each from a forked RNG, then overwrite
  // with replica 0's state.
  agents_.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    tensor::Rng model_rng = rng_.fork();
    agents_[i].model = factory(model_rng);
    COMDML_REQUIRE(agents_[i].model->size() >= 2,
                   "models need >= 2 units for split training");
    agents_[i].batcher = std::make_unique<data::Batcher>(
        shards_[i], options_.train.batch_size, rng_.fork());
  }
  const auto init = nn::state_of(*agents_[0].model);
  for (size_t i = 1; i < agents_.size(); ++i)
    nn::load_state(*agents_[i].model, init);

  const auto spec = nn::spec_from_model(*agents_[0].model, in_shape_,
                                        "real-model", classes_);
  profile_ = SplitProfile::from_spec(spec);

  current_lr_ = options_.train.sgd.lr;
  if (options_.train.plateau_factor > 0.0f) {
    plateau_.emplace(options_.train.plateau_factor, options_.train.plateau_patience);
  }

  if (options_.comms.bucket_bytes > 0) {
    // Bucketed aggregation: one plan and one pipeline for the fleet's
    // lifetime (all replicas are structurally identical).
    bucket_plan_ =
        nn::BucketPlan::build(*agents_[0].model, options_.comms.bucket_bytes);
    pipeline_ = std::make_unique<RoundPipeline>(
        static_cast<int64_t>(agents_.size()), *bucket_plan_,
        bottleneck_grid(topology_, options_.comms.latency_sec),
        options_.comms.aggregation, options_.comms.bucket_codec(),
        options_.comms.error_feedback);
    // Modeled backward-tail fraction per bucket: the share of one batch's
    // work still ahead of the final backward sweep when the bucket's
    // lowest unit has finished — this is the compute window the bucket's
    // collective can hide inside.
    const auto costs = agents_[0].model->unit_costs(in_shape_);
    double total = 0.0;
    for (const auto& c : costs) total += c.flops_forward + c.flops_backward;
    std::vector<double> below(costs.size() + 1, 0.0);
    for (size_t u = 0; u < costs.size(); ++u)
      below[u + 1] = below[u] + costs[u].flops_backward;
    bucket_back_frac_.resize(static_cast<size_t>(bucket_plan_->buckets()));
    for (int64_t b = 0; b < bucket_plan_->buckets(); ++b)
      bucket_back_frac_[static_cast<size_t>(b)] =
          total > 0.0
              ? below[bucket_plan_->bucket(b).first_unit] / total
              : 0.0;
  }
}

std::vector<AgentInfo> RealFleet::build_infos() const {
  std::vector<AgentInfo> infos(agents_.size());
  const double flops = profile_.full_flops_per_sample();
  for (size_t i = 0; i < agents_.size(); ++i) {
    AgentInfo& a = infos[i];
    a.id = static_cast<int64_t>(i);
    const double sps =
        topology_.profile(static_cast<int64_t>(i)).cpu *
        options_.train.reference_flops / flops;
    a.proc_speed = sps / static_cast<double>(options_.train.batch_size);
    a.num_batches = options_.train.batches_per_round;
    a.tau_solo = static_cast<double>(a.num_batches) / a.proc_speed;
  }
  return infos;
}

data::Batch RealFleet::next_batch(int64_t agent, tensor::Rng& rng) {
  data::Batch batch = agents_[static_cast<size_t>(agent)].batcher->next();
  if (options_.privacy.technique == learncurve::PrivacyTechnique::kPatchShuffle &&
      batch.x.rank() == 4) {
    batch.x = privacy::patch_shuffle(batch.x, options_.privacy.shuffle_patch, rng);
  }
  return batch;
}

RealFleet::RoundStats RealFleet::step() {
  nn::SGD::Options sgd = options_.train.sgd;
  sgd.lr = current_lr_;
  const auto infos = build_infos();
  std::vector<int64_t> participants(agents_.size());
  for (size_t i = 0; i < participants.size(); ++i)
    participants[i] = static_cast<int64_t>(i);
  const PairingResult plan = pair_agents(profile_, infos, topology_,
                                         options_.train.batch_size, participants);

  RoundStats stats;
  stats.num_pairs = static_cast<int64_t>(plan.pairs.size());

  // Local-training phase. Pairing is a matching, so pair tasks touch
  // disjoint agent replicas/batchers and solo tasks the rest: every task is
  // independent between the pairing and aggregation barriers. Each task
  // gets an Rng forked in fixed task order before the fan-out, and results
  // land in a pre-sized slot vector reduced serially afterwards, so the
  // round is bit-identical for every COMDML_NUM_THREADS value.
  struct TaskResult {
    float slow_loss_sum = 0.0f;
    float loss_sum = 0.0f;
    int64_t loss_count = 0;
    double dcor = 0.0;
    double wire_compression = 0.0;
    int64_t dcor_count = 0;
    int64_t split_early_buckets = 0;
  };
  const size_t n_pairs = plan.pairs.size();
  const size_t n_tasks = n_pairs + plan.solo.size();
  std::vector<tensor::Rng> task_rngs;
  task_rngs.reserve(n_tasks);
  for (size_t t = 0; t < n_tasks; ++t) task_rngs.push_back(rng_.fork());
  std::vector<TaskResult> results(n_tasks);

  // Bucketed aggregation modes. DP noise draws from the fleet Rng in agent
  // order after training (historical semantics), so with DP the buckets are
  // published after the noising pass instead of from inside the tasks, and
  // the layerwise overlap window closes.
  const bool bucketed = pipeline_ != nullptr;
  const bool dp = options_.privacy.technique ==
                  learncurve::PrivacyTechnique::kDifferentialPrivacy;
  const bool publish_in_task = bucketed && !dp;
  const bool overlap = publish_in_task && options_.comms.overlap;
  if (bucketed) pipeline_->begin_round();

  // Flatten + contribute one bucket of `agent`'s live state — the publish
  // step shared by the full-model and split last-batch unit walks.
  const auto publish_bucket = [&](int64_t agent,
                                  const std::vector<tensor::Tensor*>& ptrs,
                                  int64_t bk) {
    bucket_plan_->flatten_bucket(ptrs, bk, pipeline_->slot(agent, bk));
    pipeline_->contribute(agent, bk);
  };

  // Full-model local training for one agent. When publishing from inside
  // the task, the round's last batch steps each unit as its backward
  // completes, so output-side buckets enter the pipeline while input-side
  // backward compute is still running (bit-identical math either way).
  const auto train_full = [&](int64_t agent, tensor::Rng& rng,
                              TaskResult& out) {
    auto& st = agents_[static_cast<size_t>(agent)];
    nn::SGD opt(st.model->parameters(), sgd);
    const int64_t batches = options_.train.batches_per_round;
    for (int64_t b = 0; b < batches; ++b) {
      const auto batch = next_batch(agent, rng);
      if (publish_in_task && b == batches - 1) {
        std::vector<tensor::Tensor*> ptrs;
        st.model->collect_state(ptrs);
        nn::BucketReadyTracker tracker(*bucket_plan_);
        const auto res = nn::train_batch_full_notify(
            *st.model, opt, batch.x, batch.y,
            bucket_plan_->unit_param_counts(), [&](size_t u) {
              tracker.unit_done(
                  u, [&](int64_t bk) { publish_bucket(agent, ptrs, bk); });
            });
        out.loss_sum += res.loss;
        ++out.loss_count;
      } else {
        const auto res =
            nn::train_batch_full(*st.model, opt, batch.x, batch.y);
        out.loss_sum += res.loss;
        ++out.loss_count;
      }
    }
  };

  const auto run_task = [&](int64_t t) {
    tensor::Rng& rng = task_rngs[static_cast<size_t>(t)];
    TaskResult& out = results[static_cast<size_t>(t)];
    if (t < static_cast<int64_t>(n_pairs)) {
      // Paired agents: local-loss split training of the *slow* agent's
      // replica (fast side physically runs on the fast agent; state-wise
      // it is the slow replica's suffix), while the fast agent also
      // trains its own replica.
      const auto& pair = plan.pairs[static_cast<size_t>(t)];
      auto& slow = agents_[static_cast<size_t>(pair.slow_agent)];
      const int64_t batches = options_.train.batches_per_round;
      nn::LocalLossSplitTrainer split(*slow.model, pair.cut, in_shape_,
                                      classes_, rng, sgd);
      for (int64_t b = 0; b < batches; ++b) {
        const auto batch = next_batch(pair.slow_agent, rng);
        nn::LocalLossSplitTrainer::StepStats step;
        if (publish_in_task && b == batches - 1) {
          // Final batch: per-unit finalization publishes the slow
          // replica's buckets layer-by-layer during the split backward —
          // prefix-side buckets enter the pipeline before the fast-side
          // backward even starts, and every bucket ships before the fast
          // agent's own full-model training below (bit-identical math
          // either way).
          std::vector<tensor::Tensor*> ptrs;
          slow.model->collect_state(ptrs);
          nn::BucketReadyTracker tracker(*bucket_plan_);
          const size_t total_units = slow.model->size();
          size_t units_done = 0;
          step = split.train_batch_notify(
              batch.x, batch.y, bucket_plan_->unit_param_counts(),
              [&](size_t u) {
                ++units_done;
                tracker.unit_done(u, [&](int64_t bk) {
                  publish_bucket(pair.slow_agent, ptrs, bk);
                  // Published while split units were still pending: the
                  // widened overlap window, as a number.
                  if (units_done < total_units) ++out.split_early_buckets;
                });
              });
        } else {
          step = split.train_batch(batch.x, batch.y);
        }
        out.slow_loss_sum += step.slow_loss;
        out.loss_sum += step.fast_loss;
        ++out.loss_count;
        if (b == 0) {
          // Privacy leakage across the cut, measured on real
          // activations, and the actually-achieved wire compression of
          // the same payload.
          const auto h =
              slow.model->forward_range(batch.x, 0, pair.cut, false);
          out.dcor += privacy::distance_correlation(batch.x, h);
          out.wire_compression += comm::compression_ratio(h);
          ++out.dcor_count;
        }
      }
      train_full(pair.fast_agent, rng, out);
    } else {
      // Solo agents train the full model.
      const int64_t id = plan.solo[static_cast<size_t>(t) - n_pairs];
      train_full(id, rng, out);
    }
  };

  // Fan the tasks out. Bucketed rounds go through the shared pipeline
  // orchestration (collector slots in overlapped mode, abort-on-exception);
  // flat rounds are a plain fan-out.
  if (bucketed) {
    pipeline_->run_round(static_cast<int64_t>(n_tasks), run_task, overlap);
  } else {
    parallel_for(0, static_cast<int64_t>(n_tasks), 1,
                 [&](int64_t lo, int64_t hi) {
                   for (int64_t t = lo; t < hi; ++t) run_task(t);
                 });
  }

  float slow_loss_sum = 0.0f, loss_sum = 0.0f;
  int64_t loss_count = 0;
  double dcor_sum = 0.0;
  int64_t dcor_count = 0;
  for (const TaskResult& r : results) {
    slow_loss_sum += r.slow_loss_sum;
    loss_sum += r.loss_sum;
    loss_count += r.loss_count;
    dcor_sum += r.dcor;
    stats.mean_wire_compression += r.wire_compression;
    dcor_count += r.dcor_count;
    stats.split_early_buckets += r.split_early_buckets;
  }

  const double t_comp = plan.estimated_round_time;
  if (!bucketed) {
    // Optional DP on each agent's state before it leaves the device. The
    // merge buffers are fleet members reused round over round.
    std::vector<std::vector<tensor::Tensor>>& states = state_scratch_;
    states.resize(agents_.size());
    for (size_t i = 0; i < agents_.size(); ++i)
      nn::copy_state_into(*agents_[i].model, states[i]);
    if (dp) {
      for (auto& s : states)
        privacy::laplace_mechanism(s, options_.privacy.dp_epsilon,
                                   options_.privacy.dp_sensitivity, rng_);
    }

    // Real message-level decentralized aggregation over an InProcTransport.
    // The collective routes through the overlay at the bottleneck rate (the
    // seed cost models' assumption), and one run yields both the executed
    // traffic and the modeled clock — predicted cost and real bytes are the
    // same schedule by construction.
    const auto agg = comm::allreduce_average_over(
        states, bottleneck_grid(topology_, options_.comms.latency_sec),
        options_.comms.aggregation);
    for (size_t i = 0; i < agents_.size(); ++i)
      nn::load_state(*agents_[i].model, states[i]);

    // Simulated wall-clock: balanced round span + the collective.
    stats.aggregation_seconds = agg.cost.seconds;
    stats.aggregation_bytes = agg.cost.bytes_per_agent;
    stats.exposed_comm_seconds = agg.cost.seconds;
    stats.sim_time = t_comp + agg.cost.seconds;
  } else {
    if (dp) {
      // Snapshot + noise in agent order with the fleet Rng (same draw
      // sequence as the flat path), then publish every bucket.
      std::vector<std::vector<tensor::Tensor>>& states = state_scratch_;
      states.resize(agents_.size());
      for (size_t i = 0; i < agents_.size(); ++i)
        nn::copy_state_into(*agents_[i].model, states[i]);
      for (auto& s : states)
        privacy::laplace_mechanism(s, options_.privacy.dp_epsilon,
                                   options_.privacy.dp_sensitivity, rng_);
      for (size_t i = 0; i < agents_.size(); ++i)
        pipeline_->publish_state(static_cast<int64_t>(i), states[i]);
    }
    // Overlapped rounds drained inside the training fan-out; sequential
    // bucketed rounds reduce here, in ready order on this thread.
    if (!overlap) pipeline_->drain();

    // Every agent's slots now hold the bucket means; write them back.
    for (size_t i = 0; i < agents_.size(); ++i) {
      std::vector<tensor::Tensor*> ptrs;
      agents_[i].model->collect_state(ptrs);
      pipeline_->restore_state(static_cast<int64_t>(i), ptrs);
    }

    const PipelineStats ps = pipeline_->stats();
    stats.aggregation_seconds = ps.comm_seconds;
    stats.aggregation_bytes = ps.max_bytes_sent;
    stats.buckets = ps.buckets;

    // Modeled clock. Overlapped: bucket b is producible no earlier than
    // the fastest agent's backward tail allows (the last agent to finalize
    // a bucket gates it, and agents finish the balanced round together),
    // so ready(b) = t_comp - tau_batch_min * back_frac(b). Sequential:
    // everything is ready at the training barrier. Either way the bucket
    // collectives serialize on the shared link from their ready times —
    // the same composition the parity tests run on SimTransport-predicted
    // bucket costs.
    double tau_min = 0.0;
    if (overlap) {
      tau_min = 1e300;
      for (const AgentInfo& a : infos)
        tau_min = std::min(tau_min, 1.0 / a.proc_speed);
    }
    std::vector<double> ready(static_cast<size_t>(ps.buckets), t_comp);
    if (overlap) {
      for (int64_t b = 0; b < ps.buckets; ++b)
        ready[static_cast<size_t>(b)] = std::max(
            0.0,
            t_comp - tau_min * bucket_back_frac_[static_cast<size_t>(b)]);
    }
    const OverlapTimeline timeline =
        compose_overlap_timeline(ready, ps.bucket_seconds);
    stats.sim_time = std::max(t_comp, timeline.span);
    stats.exposed_comm_seconds = stats.sim_time - t_comp;
  }
  stats.mean_slow_loss =
      plan.pairs.empty()
          ? 0.0f
          : slow_loss_sum / static_cast<float>(plan.pairs.size() *
                                               options_.train.batches_per_round);
  stats.mean_loss =
      loss_count == 0 ? 0.0f : loss_sum / static_cast<float>(loss_count);
  stats.mean_dcor =
      dcor_count == 0 ? 0.0 : dcor_sum / static_cast<double>(dcor_count);
  if (dcor_count > 0)
    stats.mean_wire_compression /= static_cast<double>(dcor_count);

  // Plateau LR schedule (paper §V-A): decay when the fleet loss stalls.
  if (plateau_) {
    const float mult = plateau_->observe(-stats.mean_loss);
    if (mult < 1.0f) current_lr_ *= mult;
  }
  ++round_;
  return stats;
}

float RealFleet::evaluate(const data::Dataset& test) {
  test.validate();
  return nn::evaluate_accuracy(*agents_[0].model, test.images, test.labels);
}

nn::Sequential& RealFleet::model(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  return *agents_[static_cast<size_t>(agent)].model;
}

}  // namespace comdml::core
