#include "core/real_fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "comm/allreduce.hpp"
#include "comm/compress.hpp"
#include "core/parallel.hpp"
#include "nn/arch_specs.hpp"
#include "privacy/dcor.hpp"
#include "privacy/dp.hpp"
#include "privacy/patch_shuffle.hpp"
#include "sim/resources.hpp"
#include "tensor/serialize.hpp"

namespace comdml::core {

RealFleet::RealFleet(const ModelFactory& factory, int64_t classes,
                     std::vector<data::Dataset> shards,
                     sim::Topology topology, Options options)
    : options_(options),
      shards_(std::move(shards)),
      topology_(std::move(topology)),
      rng_(options.seed),
      classes_(classes),
      in_shape_(),
      profile_() {
  options_.validate();
  COMDML_REQUIRE(!shards_.empty(), "fleet needs at least one shard");
  COMDML_CHECK(static_cast<int64_t>(shards_.size()) == topology_.agents());
  for (auto& s : shards_) s.validate();
  in_shape_ = shards_.front().sample_shape();

  // Identical initial replicas: build each from a forked RNG, then overwrite
  // with replica 0's state.
  agents_.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    tensor::Rng model_rng = rng_.fork();
    agents_[i].model = factory(model_rng);
    COMDML_REQUIRE(agents_[i].model->size() >= 2,
                   "models need >= 2 units for split training");
    agents_[i].batcher = std::make_unique<data::Batcher>(
        shards_[i], options_.train.batch_size, rng_.fork());
  }
  const auto init = nn::state_of(*agents_[0].model);
  for (size_t i = 1; i < agents_.size(); ++i)
    nn::load_state(*agents_[i].model, init);

  const auto spec = nn::spec_from_model(*agents_[0].model, in_shape_,
                                        "real-model", classes_);
  profile_ = SplitProfile::from_spec(spec);

  current_lr_ = options_.train.sgd.lr;
  if (options_.train.plateau_factor > 0.0f) {
    plateau_.emplace(options_.train.plateau_factor, options_.train.plateau_patience);
  }

  if (options_.comms.bucket_bytes > 0) {
    // Bucketed aggregation: one plan and one pipeline for the fleet's
    // lifetime (all replicas are structurally identical).
    bucket_plan_ =
        nn::BucketPlan::build(*agents_[0].model, options_.comms.bucket_bytes);
    // Unreliable-network injection on the bucket transports: every bucket
    // collective then retransmits through comm::ReliableChannel and the
    // retransmission traffic is reported per round.
    comm::FaultPlan faults;
    faults.drop_prob = options_.faults.message_drop_prob;
    faults.seed = options_.seed;
    pipeline_ = std::make_unique<RoundPipeline>(
        static_cast<int64_t>(agents_.size()), *bucket_plan_,
        bottleneck_grid(topology_, options_.comms.latency_sec),
        options_.comms.aggregation, options_.comms.bucket_codec(),
        options_.comms.error_feedback, faults,
        /*straggler_support=*/options_.faults.deadline_sec > 0.0);
    // Modeled backward-tail fraction per bucket: the share of one batch's
    // work still ahead of the final backward sweep when the bucket's
    // lowest unit has finished — this is the compute window the bucket's
    // collective can hide inside.
    const auto costs = agents_[0].model->unit_costs(in_shape_);
    double total = 0.0;
    for (const auto& c : costs) total += c.flops_forward + c.flops_backward;
    std::vector<double> below(costs.size() + 1, 0.0);
    for (size_t u = 0; u < costs.size(); ++u)
      below[u + 1] = below[u] + costs[u].flops_backward;
    bucket_back_frac_.resize(static_cast<size_t>(bucket_plan_->buckets()));
    for (int64_t b = 0; b < bucket_plan_->buckets(); ++b)
      bucket_back_frac_[static_cast<size_t>(b)] =
          total > 0.0
              ? below[bucket_plan_->bucket(b).first_unit] / total
              : 0.0;
  }
}

std::vector<AgentInfo> RealFleet::build_infos() const {
  std::vector<AgentInfo> infos(agents_.size());
  const double flops = profile_.full_flops_per_sample();
  for (size_t i = 0; i < agents_.size(); ++i) {
    AgentInfo& a = infos[i];
    a.id = static_cast<int64_t>(i);
    const double sps =
        topology_.profile(static_cast<int64_t>(i)).cpu *
        options_.train.reference_flops / flops;
    a.proc_speed = sps / static_cast<double>(options_.train.batch_size);
    a.num_batches = options_.train.batches_per_round;
    a.tau_solo = static_cast<double>(a.num_batches) / a.proc_speed;
  }
  return infos;
}

data::Batch RealFleet::next_batch(int64_t agent, tensor::Rng& rng) {
  data::Batch batch = agents_[static_cast<size_t>(agent)].batcher->next();
  if (options_.privacy.technique == learncurve::PrivacyTechnique::kPatchShuffle &&
      batch.x.rank() == 4) {
    batch.x = privacy::patch_shuffle(batch.x, options_.privacy.shuffle_patch, rng);
  }
  return batch;
}

RealFleet::RoundStats RealFleet::step() {
  const int64_t live_before =
      static_cast<int64_t>(live_agents().size());

  // Arm the injected faults scheduled for this round. Leave-mode entries
  // take their agent out before pairing; the per-point modes are resolved
  // by the training tasks / publish path / transports below.
  std::vector<int64_t> die_after_batches(agents_.size(), -1);
  std::vector<int64_t> publish_budget(agents_.size(), -1);
  std::vector<int64_t> collective_victims;
  for (const FleetOptions::FaultOptions::AgentFailure& f :
       options_.faults.failures) {
    if (f.round != round_) continue;
    COMDML_CHECK(f.agent >= 0 && f.agent < agents());
    if (!agents_[static_cast<size_t>(f.agent)].alive) continue;
    if (f.after_batches >= 0) {
      die_after_batches[static_cast<size_t>(f.agent)] = f.after_batches;
    } else if (f.after_buckets >= 0) {
      publish_budget[static_cast<size_t>(f.agent)] = f.after_buckets;
    } else if (f.at_collective_step >= 0) {
      COMDML_CHECK(pipeline_ != nullptr);  // enforced by validate()
      pipeline_->schedule_endpoint_failure(f.agent, f.at_collective_step);
      collective_victims.push_back(f.agent);
    } else {
      leave(f.agent);
    }
  }

  nn::SGD::Options sgd = options_.train.sgd;
  sgd.lr = current_lr_;
  const auto infos = build_infos();
  const std::vector<int64_t> participants = live_agents();
  COMDML_REQUIRE(!participants.empty(), "no live agents left to run a round");
  const PairingResult plan = pair_agents(profile_, infos, topology_,
                                         options_.train.batch_size, participants);

  RoundStats stats;
  stats.num_pairs = static_cast<int64_t>(plan.pairs.size());

  // Straggler deadline: a *solo* agent whose balanced round would outlast
  // the deadline is deferred — it still trains, but the on-time set
  // aggregates without waiting for it, and its late update is absorbed
  // into its error-feedback residual afterwards. Paired agents are never
  // deferred: pairing is the paper's rescue mechanism, and the pairing
  // pass has already pulled every rescuable straggler into a pair. If
  // every live agent would be late there is no on-time set to defer to,
  // so nobody is deferred.
  std::vector<char> late(agents_.size(), 0);
  int64_t n_late = 0;
  if (options_.faults.deadline_sec > 0.0) {
    std::vector<int64_t> late_ids;
    for (const int64_t id : plan.solo)
      if (agents_[static_cast<size_t>(id)].alive &&
          infos[static_cast<size_t>(id)].tau_solo >
              options_.faults.deadline_sec)
        late_ids.push_back(id);
    if (late_ids.size() < participants.size()) {
      for (const int64_t id : late_ids) late[static_cast<size_t>(id)] = 1;
      n_late = static_cast<int64_t>(late_ids.size());
    }
  }
  stats.late_agents = n_late;

  // Local-training phase. Pairing is a matching, so pair tasks touch
  // disjoint agent replicas/batchers and solo tasks the rest: every task is
  // independent between the pairing and aggregation barriers. Each task
  // gets an Rng forked in fixed task order before the fan-out, and results
  // land in a pre-sized slot vector reduced serially afterwards, so the
  // round is bit-identical for every COMDML_NUM_THREADS value. (TaskResult
  // is the public nested type so multi-process fleets can exchange slots.)
  const size_t n_pairs = plan.pairs.size();
  const size_t n_tasks = n_pairs + plan.solo.size();
  std::vector<tensor::Rng> task_rngs;
  task_rngs.reserve(n_tasks);
  for (size_t t = 0; t < n_tasks; ++t) task_rngs.push_back(rng_.fork());
  std::vector<TaskResult> results(n_tasks);

  // Task -> primary agent id: the solo agent, or a pair's slow agent. A
  // multi-process round runs each task on the primary's owning shard (a
  // pair task trains both replicas there — the borrowed fast replica ships
  // home through the exchange) and keys owned results by this map.
  std::vector<int64_t> task_agent;
  if (dist_) {
    task_agent.assign(n_tasks, -1);
    for (size_t t = 0; t < n_pairs; ++t)
      task_agent[t] = plan.pairs[t].slow_agent;
    for (size_t t = n_pairs; t < n_tasks; ++t)
      task_agent[t] = plan.solo[t - n_pairs];
  }

  // Bucketed aggregation modes. DP noise draws from the fleet Rng in agent
  // order after training (historical semantics), so with DP the buckets are
  // published after the noising pass instead of from inside the tasks, and
  // the layerwise overlap window closes.
  const bool bucketed = pipeline_ != nullptr;
  const bool dp = options_.privacy.technique ==
                  learncurve::PrivacyTechnique::kDifferentialPrivacy;
  const bool publish_in_task = bucketed && !dp;
  const bool overlap = publish_in_task && options_.comms.overlap;
  if (bucketed) {
    pipeline_->begin_round();
    // Deferred stragglers are excluded up front so no bucket waits for
    // their contribution.
    for (int64_t a = 0; a < agents(); ++a)
      if (late[static_cast<size_t>(a)] != 0) pipeline_->defer(a);
  }

  // Flatten + contribute one bucket of `agent`'s live state — the publish
  // step shared by the full-model and split last-batch unit walks. An
  // armed publish budget kills the agent mid-stream: after `after_buckets`
  // publishes the next attempt never lands, and the pipeline re-targets
  // the dead agent's remaining buckets. All of one agent's publishes run
  // on its own training task, so the budget needs no synchronization.
  const auto publish_bucket = [&](int64_t agent,
                                  const std::vector<tensor::Tensor*>& ptrs,
                                  int64_t bk) {
    if (!agents_[static_cast<size_t>(agent)].alive) return;
    int64_t& budget = publish_budget[static_cast<size_t>(agent)];
    if (budget == 0) {
      kill_agent(agent);
      budget = -1;
      return;
    }
    bucket_plan_->flatten_bucket(ptrs, bk, pipeline_->slot(agent, bk));
    pipeline_->contribute(agent, bk);
    if (budget > 0 && --budget == 0) {
      kill_agent(agent);
      budget = -1;
    }
  };

  // Full-model local training for one agent. When publishing from inside
  // the task, the round's last batch steps each unit as its backward
  // completes, so output-side buckets enter the pipeline while input-side
  // backward compute is still running (bit-identical math either way).
  const auto train_full = [&](int64_t agent, tensor::Rng& rng,
                              TaskResult& out) {
    auto& st = agents_[static_cast<size_t>(agent)];
    nn::SGD opt(st.model->parameters(), sgd);
    // Momentum is fleet state, not round state: carry the velocity across
    // the per-round optimizer rebuilds (and through checkpoint/restore).
    if (!st.velocity.empty()) opt.load_velocity(st.velocity);
    const int64_t die_at = die_after_batches[static_cast<size_t>(agent)];
    const int64_t batches =
        die_at >= 0 ? std::min(options_.train.batches_per_round, die_at)
                    : options_.train.batches_per_round;
    for (int64_t b = 0; b < batches; ++b) {
      const auto batch = next_batch(agent, rng);
      if (publish_in_task && b == batches - 1 && die_at < 0 &&
          late[static_cast<size_t>(agent)] == 0) {
        std::vector<tensor::Tensor*> ptrs;
        st.model->collect_state(ptrs);
        nn::BucketReadyTracker tracker(*bucket_plan_);
        const auto res = nn::train_batch_full_notify(
            *st.model, opt, batch.x, batch.y,
            bucket_plan_->unit_param_counts(), [&](size_t u) {
              tracker.unit_done(
                  u, [&](int64_t bk) { publish_bucket(agent, ptrs, bk); });
            });
        out.loss_sum += res.loss;
        ++out.loss_count;
      } else {
        const auto res =
            nn::train_batch_full(*st.model, opt, batch.x, batch.y);
        out.loss_sum += res.loss;
        ++out.loss_count;
      }
    }
    st.velocity = opt.velocity();
    // Died after its batch quota: nothing published this round.
    if (die_at >= 0) kill_agent(agent);
  };

  const auto run_task = [&](int64_t t) {
    tensor::Rng& rng = task_rngs[static_cast<size_t>(t)];
    TaskResult& out = results[static_cast<size_t>(t)];
    if (t < static_cast<int64_t>(n_pairs)) {
      // Paired agents: local-loss split training of the *slow* agent's
      // replica (fast side physically runs on the fast agent; state-wise
      // it is the slow replica's suffix), while the fast agent also
      // trains its own replica.
      const auto& pair = plan.pairs[static_cast<size_t>(t)];
      // Multi-process: the slow agent's owner runs the whole pair task,
      // fast replica included (the task's rng was forked in fixed order,
      // so skipping elsewhere preserves every other draw).
      if (dist_ &&
          dist_->owner[static_cast<size_t>(pair.slow_agent)] != dist_->shard)
        return;
      auto& slow = agents_[static_cast<size_t>(pair.slow_agent)];
      const int64_t batches = options_.train.batches_per_round;
      const int64_t slow_die =
          die_after_batches[static_cast<size_t>(pair.slow_agent)];
      const int64_t slow_batches =
          slow_die >= 0 ? std::min(batches, slow_die) : batches;
      nn::LocalLossSplitTrainer split(*slow.model, pair.cut, in_shape_,
                                      classes_, rng, sgd);
      for (int64_t b = 0; b < slow_batches; ++b) {
        const auto batch = next_batch(pair.slow_agent, rng);
        nn::LocalLossSplitTrainer::StepStats step;
        if (publish_in_task && b == batches - 1 && slow_die < 0) {
          // Final batch: per-unit finalization publishes the slow
          // replica's buckets layer-by-layer during the split backward —
          // prefix-side buckets enter the pipeline before the fast-side
          // backward even starts, and every bucket ships before the fast
          // agent's own full-model training below (bit-identical math
          // either way).
          std::vector<tensor::Tensor*> ptrs;
          slow.model->collect_state(ptrs);
          nn::BucketReadyTracker tracker(*bucket_plan_);
          const size_t total_units = slow.model->size();
          size_t units_done = 0;
          step = split.train_batch_notify(
              batch.x, batch.y, bucket_plan_->unit_param_counts(),
              [&](size_t u) {
                ++units_done;
                tracker.unit_done(u, [&](int64_t bk) {
                  publish_bucket(pair.slow_agent, ptrs, bk);
                  // Published while split units were still pending: the
                  // widened overlap window, as a number.
                  if (units_done < total_units) ++out.split_early_buckets;
                });
              });
        } else {
          step = split.train_batch(batch.x, batch.y);
        }
        out.slow_loss_sum += step.slow_loss;
        out.loss_sum += step.fast_loss;
        ++out.loss_count;
        if (b == 0) {
          // Privacy leakage across the cut, measured on real
          // activations, and the actually-achieved wire compression of
          // the same payload.
          const auto h =
              slow.model->forward_range(batch.x, 0, pair.cut, false);
          out.dcor += privacy::distance_correlation(batch.x, h);
          out.wire_compression += comm::compression_ratio(h);
          ++out.dcor_count;
        }
      }
      if (slow_die >= 0) kill_agent(pair.slow_agent);
      train_full(pair.fast_agent, rng, out);
    } else {
      // Solo agents train the full model. In multi-process mode only the
      // owning shard trains the agent (the task's rng was already forked
      // in fixed order, so skipping preserves every other draw); its
      // result reaches the other workers through the exchange below.
      const int64_t id = plan.solo[static_cast<size_t>(t) - n_pairs];
      if (dist_ && dist_->owner[static_cast<size_t>(id)] != dist_->shard)
        return;
      train_full(id, rng, out);
    }
  };

  // Fan the tasks out. Bucketed rounds go through the shared pipeline
  // orchestration (collector slots in overlapped mode, abort-on-exception);
  // flat rounds are a plain fan-out.
  if (bucketed) {
    pipeline_->run_round(static_cast<int64_t>(n_tasks), run_task, overlap);
  } else {
    parallel_for(0, static_cast<int64_t>(n_tasks), 1,
                 [&](int64_t lo, int64_t hi) {
                   for (int64_t t = lo; t < hi; ++t) run_task(t);
                 });
  }

  // Multi-process: gather every worker's owned TaskResults into the full
  // vector so the serial fold below stays one code path — every worker
  // folds identical slots and lands on the same mean_loss, dcor, and
  // plateau trajectory. Pair tasks trained a borrowed fast replica on the
  // slow agent's owner; those replicas ship home here, and every worker
  // imports every borrowed blob so owners post current state into the
  // collective. Agents whose worker crashed mid-training come back in
  // `died`: they leave the fleet before the collective forms, so the
  // survivors aggregate exactly like a from-scratch survivor-only fleet
  // (the dead workers' zero TaskResult slots fold harmlessly).
  if (dist_ && dist_->exchange) {
    ExchangeIO io;
    io.task_agent = &task_agent;
    io.results = &results;
    for (const OffloadDecision& p : plan.pairs) {
      if (dist_->owner[static_cast<size_t>(p.slow_agent)] != dist_->shard)
        continue;
      if (dist_->owner[static_cast<size_t>(p.fast_agent)] != dist_->shard)
        io.state_out.emplace_back(p.fast_agent, export_agent(p.fast_agent));
    }
    dist_->exchange(io);
    for (const AgentBlob& blob : io.state_in)
      import_agent(blob.first, blob.second);
    for (const int64_t a : io.died)
      if (agents_[static_cast<size_t>(a)].alive) kill_agent(a);
  }

  float slow_loss_sum = 0.0f, loss_sum = 0.0f;
  int64_t loss_count = 0;
  double dcor_sum = 0.0;
  int64_t dcor_count = 0;
  for (const TaskResult& r : results) {
    slow_loss_sum += r.slow_loss_sum;
    loss_sum += r.loss_sum;
    loss_count += r.loss_count;
    dcor_sum += r.dcor;
    stats.mean_wire_compression += r.wire_compression;
    dcor_count += r.dcor_count;
    stats.split_early_buckets += r.split_early_buckets;
  }

  // The modeled compute span of the round. With deferral the straggler no
  // longer gates the barrier: the span is the slowest *on-time*
  // participant (pair completion times and on-time solo times).
  double t_comp = plan.estimated_round_time;
  if (n_late > 0) {
    t_comp = 0.0;
    for (const OffloadDecision& p : plan.pairs)
      t_comp = std::max(t_comp, p.estimated_time);
    for (const int64_t id : plan.solo)
      if (late[static_cast<size_t>(id)] == 0)
        t_comp = std::max(t_comp,
                          infos[static_cast<size_t>(id)].tau_solo);
  }
  if (!bucketed) {
    // Optional DP on each agent's state before it leaves the device. The
    // merge buffers are fleet members reused round over round. Snapshots
    // and noise draws cover every agent (dead ones included) so the fleet
    // rng sequence does not depend on the failure pattern; only the live
    // agents' states enter the collective.
    std::vector<std::vector<tensor::Tensor>>& states = state_scratch_;
    states.resize(agents_.size());
    for (size_t i = 0; i < agents_.size(); ++i)
      nn::copy_state_into(*agents_[i].model, states[i]);
    if (dp) {
      for (auto& s : states)
        privacy::laplace_mechanism(s, options_.privacy.dp_epsilon,
                                   options_.privacy.dp_sensitivity, rng_);
    }

    // Real message-level decentralized aggregation over an InProcTransport.
    // The collective routes through the overlay at the bottleneck rate (the
    // seed cost models' assumption), and one run yields both the executed
    // traffic and the modeled clock — predicted cost and real bytes are the
    // same schedule by construction. Agents that died this round are
    // excluded: the survivors aggregate over a grid of their own size,
    // exactly a from-scratch survivor-only fleet.
    const std::vector<int64_t> live = live_agents();
    std::vector<std::vector<tensor::Tensor>> live_states;
    live_states.reserve(live.size());
    for (const int64_t a : live)
      live_states.push_back(std::move(states[static_cast<size_t>(a)]));
    if (dist_) {
      // Multi-process: the same survivor schedule runs rank-partitioned
      // over the shared (socket) transport — identical message pattern,
      // identical merge order and arithmetic, so every worker's owned
      // buffers land on the same bit-identical consensus mean. Non-owned
      // rows hold stale replicas; their buffers are never read (only
      // owned sends post, only owned recvs fold).
      //
      // A worker crash mid-collective surfaces as EndpointDownError on
      // some (not necessarily all — schedules don't touch every pair every
      // step) survivors. Recovery: after every attempt the collective_sync
      // barrier reconciles the survivors' views, the dead worker's agents
      // leave the fleet, the data mesh is rebuilt (a fresh transport
      // cannot carry stale frames from the aborted schedule), and the
      // survivor set re-runs from the pristine post-training snapshots —
      // exactly the schedule a from-scratch survivor-only fleet would run.
      const int64_t n = comm::state_elems(live_states[0]);
      std::vector<double> slab(
          static_cast<size_t>(agents_.size()) * static_cast<size_t>(n));
      comm::CollectiveRequest req;
      req.elems = n;
      std::vector<char> owned(agents_.size(), 0);
      std::vector<int64_t> row(agents_.size(), -1);
      for (size_t i = 0; i < live.size(); ++i)
        row[static_cast<size_t>(live[i])] = static_cast<int64_t>(i);
      // Re-point the request at `parts` and re-fill every owned row from
      // its pristine post-training state (an aborted attempt leaves owned
      // buffers partially folded). Returns the first owned participant.
      const auto flatten_owned =
          [&](const std::vector<int64_t>& parts) -> int64_t {
        std::fill(owned.begin(), owned.end(), 0);
        req.buffers.assign(agents_.size(), nullptr);
        int64_t first_owned = -1;
        for (const int64_t p : parts) {
          const auto a = static_cast<size_t>(p);
          req.buffers[a] = slab.data() + a * static_cast<size_t>(n);
          if (dist_->owner[a] == dist_->shard) {
            owned[a] = 1;
            comm::flatten_state(live_states[static_cast<size_t>(row[a])],
                                req.buffers[a]);
            if (first_owned < 0) first_owned = p;
          }
        }
        return first_owned;
      };
      std::vector<int64_t> parts = live;
      int64_t first_owned = flatten_owned(parts);
      COMDML_REQUIRE(first_owned >= 0,
                     "shard " << dist_->shard
                              << " owns no live agent; it cannot take part "
                                 "in the aggregation round");
      for (;;) {
        bool ok = true;
        if (parts.size() > 1) {
          try {
            const auto sched = comm::allreduce_schedule_over(
                comm::allreduce_protocol(options_.comms.aggregation), parts,
                n);
            comm::execute_schedule_owned(sched, *dist_->transport, req,
                                         owned);
          } catch (const comm::EndpointDownError&) {
            ok = false;
          }
        }
        // This worker's view of the survivors: the attempted participants
        // minus the endpoints the transport has declared dead.
        std::vector<int64_t> view;
        for (const int64_t p : parts)
          if (dist_->transport->endpoint_alive(p)) view.push_back(p);
        if (dist_->collective_sync) {
          auto agreement = dist_->collective_sync(view, ok);
          std::sort(agreement.first.begin(), agreement.first.end());
          for (const int64_t p : parts)
            if (!std::binary_search(agreement.first.begin(),
                                    agreement.first.end(), p) &&
                agents_[static_cast<size_t>(p)].alive)
              kill_agent(p);
          parts = std::move(agreement.first);
          COMDML_REQUIRE(!parts.empty(),
                         "collective recovery lost every live agent");
          if (agreement.second == nullptr) break;  // settled everywhere
          dist_->transport = agreement.second;
          first_owned = flatten_owned(parts);
          COMDML_REQUIRE(first_owned >= 0,
                         "shard " << dist_->shard
                                  << " owns no agent surviving the "
                                     "collective recovery");
        } else {
          if (ok) break;
          // No coordinator to arbitrate (single-worker context in tests):
          // trust the local view, drop in-flight frames, and retry.
          for (const int64_t p : parts)
            if (!dist_->transport->endpoint_alive(p) &&
                agents_[static_cast<size_t>(p)].alive)
              kill_agent(p);
          COMDML_REQUIRE(!view.empty(),
                         "collective recovery lost every live agent");
          dist_->transport->clear_pending();
          parts = std::move(view);
          first_owned = flatten_owned(parts);
          COMDML_REQUIRE(first_owned >= 0,
                         "shard " << dist_->shard
                                  << " owns no agent surviving the "
                                     "collective recovery");
        }
      }
      // Every owned surviving buffer now holds the same mean; adopt it as
      // the consensus on every surviving replica — owned or not — so
      // evaluate(), rejoin() and the next round's training see one fleet
      // model. Agents killed mid-collective only hand their buffers back.
      const double* mean = req.buffers[static_cast<size_t>(first_owned)];
      for (size_t i = 0; i < live.size(); ++i) {
        const auto a = static_cast<size_t>(live[i]);
        if (agents_[a].alive) {
          comm::unflatten_state(mean, live_states[i]);
          nn::load_state(*agents_[a].model, live_states[i]);
        }
        states[a] = std::move(live_states[i]);  // hand the buffers back
      }

      // This worker's share of the executed traffic; the daemon merges
      // the per-worker step histories into the fleet-level clock.
      const comm::TransportStats ts = dist_->transport->stats_snapshot();
      stats.aggregation_seconds = ts.seconds;
      stats.aggregation_bytes = ts.max_bytes_sent();
      stats.exposed_comm_seconds = ts.seconds;
      stats.sim_time = t_comp + ts.seconds;
    } else {
      const auto min_bw = topology_.min_link_bandwidth();
      COMDML_REQUIRE(min_bw.has_value() || live.size() == 1,
                     "topology has no usable link");
      const auto agg = comm::allreduce_average_over(
          live_states,
          comm::LinkGrid::uniform(static_cast<int64_t>(live.size()),
                                  min_bw.value_or(100.0),
                                  options_.comms.latency_sec),
          options_.comms.aggregation);
      for (size_t i = 0; i < live.size(); ++i) {
        const auto a = static_cast<size_t>(live[i]);
        nn::load_state(*agents_[a].model, live_states[i]);
        states[a] = std::move(live_states[i]);  // hand the buffers back
      }

      // Simulated wall-clock: balanced round span + the collective.
      stats.aggregation_seconds = agg.cost.seconds;
      stats.aggregation_bytes = agg.cost.bytes_per_agent;
      stats.exposed_comm_seconds = agg.cost.seconds;
      stats.sim_time = t_comp + agg.cost.seconds;
    }
  } else {
    if (dp) {
      // Snapshot + noise in agent order with the fleet Rng (same draw
      // sequence as the flat path, dead agents included), then publish
      // every live agent's buckets — an armed publish budget kills its
      // agent mid-publication here, just like the in-task path.
      std::vector<std::vector<tensor::Tensor>>& states = state_scratch_;
      states.resize(agents_.size());
      for (size_t i = 0; i < agents_.size(); ++i)
        nn::copy_state_into(*agents_[i].model, states[i]);
      for (auto& s : states)
        privacy::laplace_mechanism(s, options_.privacy.dp_epsilon,
                                   options_.privacy.dp_sensitivity, rng_);
      for (size_t i = 0; i < agents_.size(); ++i) {
        const auto a = static_cast<int64_t>(i);
        if (!agents_[i].alive || late[i] != 0) continue;
        int64_t& budget = publish_budget[i];
        for (int64_t bk = 0; bk < bucket_plan_->buckets(); ++bk) {
          if (budget == 0) {
            kill_agent(a);
            budget = -1;
            break;
          }
          bucket_plan_->flatten_bucket(states[i], bk, pipeline_->slot(a, bk));
          pipeline_->contribute(a, bk);
          if (budget > 0 && --budget == 0) {
            kill_agent(a);
            budget = -1;
            break;
          }
        }
      }
    }
    // Overlapped rounds drained inside the training fan-out; sequential
    // bucketed rounds reduce here, in ready order on this thread.
    if (!overlap) pipeline_->drain();

    // Mid-collective victims died during the reduce; take them out before
    // the write-back (their slots hold pre-recovery payloads, not means)
    // and disarm the transport faults so the next round's reset step
    // counters do not re-kill them against the survivors.
    for (const int64_t v : collective_victims) {
      if (agents_[static_cast<size_t>(v)].alive) {
        agents_[static_cast<size_t>(v)].alive = false;
        pipeline_->leave(v);
      }
    }
    if (!collective_victims.empty()) pipeline_->clear_endpoint_failures();

    // Every on-time live agent's slots now hold the bucket means; write
    // them back. Deferred stragglers are re-synced below instead.
    for (size_t i = 0; i < agents_.size(); ++i) {
      if (!agents_[i].alive || late[i] != 0) continue;
      std::vector<tensor::Tensor*> ptrs;
      agents_[i].model->collect_state(ptrs);
      pipeline_->restore_state(static_cast<int64_t>(i), ptrs);
    }

    // Deferred stragglers: stage the late update, fold (late - consensus)
    // into the agent's residual so the work re-enters the stream next
    // round, and adopt the consensus so the fleet stays synchronized.
    if (n_late > 0) {
      int64_t src = -1;
      for (int64_t a = 0; a < agents(); ++a)
        if (agents_[static_cast<size_t>(a)].alive &&
            late[static_cast<size_t>(a)] == 0) {
          src = a;
          break;
        }
      COMDML_REQUIRE(src >= 0,
                     "straggler deferral lost every on-time agent this round");
      for (int64_t a = 0; a < agents(); ++a) {
        if (late[static_cast<size_t>(a)] == 0 ||
            !agents_[static_cast<size_t>(a)].alive)
          continue;
        std::vector<tensor::Tensor*> ptrs;
        agents_[static_cast<size_t>(a)].model->collect_state(ptrs);
        pipeline_->stage_state(a, ptrs);
        pipeline_->absorb_late(a, src);
        pipeline_->restore_state(a, ptrs);
      }
    }

    const PipelineStats ps = pipeline_->stats();
    stats.aggregation_seconds = ps.comm_seconds;
    stats.aggregation_bytes = ps.max_bytes_sent;
    stats.buckets = ps.buckets;
    stats.retransmit_bytes = ps.retransmit_bytes;

    // Modeled clock. Overlapped: bucket b is producible no earlier than
    // the fastest agent's backward tail allows (the last agent to finalize
    // a bucket gates it, and agents finish the balanced round together),
    // so ready(b) = t_comp - tau_batch_min * back_frac(b). Sequential:
    // everything is ready at the training barrier. Either way the bucket
    // collectives serialize on the shared link from their ready times —
    // the same composition the parity tests run on SimTransport-predicted
    // bucket costs.
    double tau_min = 0.0;
    if (overlap) {
      tau_min = 1e300;
      for (const AgentInfo& a : infos)
        tau_min = std::min(tau_min, 1.0 / a.proc_speed);
    }
    std::vector<double> ready(static_cast<size_t>(ps.buckets), t_comp);
    if (overlap) {
      for (int64_t b = 0; b < ps.buckets; ++b)
        ready[static_cast<size_t>(b)] = std::max(
            0.0,
            t_comp - tau_min * bucket_back_frac_[static_cast<size_t>(b)]);
    }
    const OverlapTimeline timeline =
        compose_overlap_timeline(ready, ps.bucket_seconds);
    stats.sim_time = std::max(t_comp, timeline.span);
    stats.exposed_comm_seconds = stats.sim_time - t_comp;
  }
  stats.mean_slow_loss =
      plan.pairs.empty()
          ? 0.0f
          : slow_loss_sum / static_cast<float>(plan.pairs.size() *
                                               options_.train.batches_per_round);
  stats.mean_loss =
      loss_count == 0 ? 0.0f : loss_sum / static_cast<float>(loss_count);
  stats.mean_dcor =
      dcor_count == 0 ? 0.0 : dcor_sum / static_cast<double>(dcor_count);
  if (dcor_count > 0)
    stats.mean_wire_compression /= static_cast<double>(dcor_count);

  // Plateau LR schedule (paper §V-A): decay when the fleet loss stalls.
  if (plateau_) {
    const float mult = plateau_->observe(-stats.mean_loss);
    if (mult < 1.0f) current_lr_ *= mult;
  }
  stats.dropped_agents =
      live_before - static_cast<int64_t>(live_agents().size());
  ++round_;
  ++rounds_since_checkpoint_;
  if (options_.faults.checkpoint_every > 0 &&
      round_ % options_.faults.checkpoint_every == 0)
    auto_checkpoint();
  return stats;
}

float RealFleet::evaluate(const data::Dataset& test) {
  test.validate();
  return nn::evaluate_accuracy(*agents_[static_cast<size_t>(first_live())].model,
                               test.images, test.labels);
}

nn::Sequential& RealFleet::model(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  return *agents_[static_cast<size_t>(agent)].model;
}

bool RealFleet::agent_alive(int64_t agent) const {
  COMDML_CHECK(agent >= 0 && agent < agents());
  return agents_[static_cast<size_t>(agent)].alive;
}

std::vector<int64_t> RealFleet::live_agents() const {
  std::vector<int64_t> out;
  for (int64_t a = 0; a < agents(); ++a)
    if (agents_[static_cast<size_t>(a)].alive) out.push_back(a);
  return out;
}

int64_t RealFleet::first_live() const {
  for (int64_t a = 0; a < agents(); ++a)
    if (agents_[static_cast<size_t>(a)].alive) return a;
  COMDML_REQUIRE(false, "fleet has no live agent");
  return -1;
}

void RealFleet::kill_agent(int64_t agent) {
  agents_[static_cast<size_t>(agent)].alive = false;
  if (pipeline_) pipeline_->deactivate(agent);
}

void RealFleet::leave(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  agents_[static_cast<size_t>(agent)].alive = false;
  if (pipeline_) pipeline_->leave(agent);
}

void RealFleet::rejoin(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  AgentState& st = agents_[static_cast<size_t>(agent)];
  if (st.alive) return;
  // Initialize from the consensus state: after aggregation every live
  // replica is identical, so any live agent's model is the fleet model.
  const int64_t src = first_live();
  nn::load_state(*st.model, nn::state_of(*agents_[static_cast<size_t>(src)].model));
  st.velocity.clear();
  st.alive = true;
  if (pipeline_) pipeline_->rejoin(agent);
}

namespace {
constexpr uint32_t kCheckpointMagic = 0x434D444C;  // "CMDL"
constexpr uint32_t kCheckpointVersion = 2;
}  // namespace

std::vector<uint8_t> RealFleet::checkpoint() {
  // Body first, then the [magic | version | checksum] frame around it —
  // restore() verifies the fnv1a before parsing a single body field, so
  // truncation and bit rot surface as CheckpointError up front.
  tensor::ByteWriter body;
  body.u32(static_cast<uint32_t>(agents()));
  body.i64(round_);
  body.f32(current_lr_);
  body.str(rng_.state());
  body.u8(plateau_.has_value() ? 1 : 0);
  if (plateau_) {
    const nn::PlateauScheduler::State s = plateau_->save();
    body.f32(s.best);
    body.i64(s.stale);
  }
  for (AgentState& st : agents_) {
    body.u8(st.alive ? 1 : 0);
    body.tensors(nn::state_of(*st.model));
    body.tensors(st.velocity);
    const data::Batcher::State bs = st.batcher->save();
    body.i64s(bs.order);
    body.i64(bs.cursor);
    body.i64(bs.epoch);
    body.str(bs.rng);
  }
  body.u8(pipeline_ != nullptr ? 1 : 0);
  if (pipeline_) body.f64s(pipeline_->residuals());

  const std::vector<uint8_t> payload = body.bytes();
  tensor::ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(tensor::fnv1a(payload.data(), payload.size()));
  w.raw(payload);
  return w.bytes();
}

void RealFleet::restore(const std::vector<uint8_t>& bytes) {
  // Frame validation. Every defect below is a CheckpointError: the caller
  // handed us an unusable blob, not a programming error.
  constexpr size_t kHeader = 2 * sizeof(uint32_t) + sizeof(uint64_t);
  if (bytes.size() < kHeader)
    throw CheckpointError("checkpoint truncated: " +
                          std::to_string(bytes.size()) +
                          " bytes is smaller than the header");
  tensor::ByteReader r(bytes);
  if (r.u32() != kCheckpointMagic)
    throw CheckpointError("not a fleet checkpoint (bad magic)");
  const uint32_t version = r.u32();
  if (version != kCheckpointVersion)
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kCheckpointVersion) + ")");
  const uint64_t want_sum = r.u64();
  const uint64_t got_sum =
      tensor::fnv1a(bytes.data() + kHeader, bytes.size() - kHeader);
  if (got_sum != want_sum)
    throw CheckpointError(
        "checkpoint checksum mismatch (truncated or corrupted blob)");

  // The body parse cannot run off the end (the checksum covered every
  // byte), but a malformed length field could still ask for more than is
  // there; surface that as a CheckpointError too.
  try {
    const auto k = static_cast<int64_t>(r.u32());
    if (k > agents())
      throw CheckpointError(
          "checkpoint holds " + std::to_string(k) +
          " agents but this fleet only has " + std::to_string(agents()) +
          " — restore needs a fleet at least as wide as the checkpoint");
    round_ = r.i64();
    current_lr_ = r.f32();
    rng_.set_state(r.str());
    const bool has_plateau = r.u8() != 0;
    if (has_plateau != plateau_.has_value())
      throw CheckpointError("checkpoint plateau-schedule config mismatch");
    if (plateau_) {
      nn::PlateauScheduler::State s;
      s.best = r.f32();
      s.stale = static_cast<int>(r.i64());
      plateau_->load(s);
    }
    for (int64_t a = 0; a < k; ++a) {
      AgentState& st = agents_[static_cast<size_t>(a)];
      st.alive = r.u8() != 0;
      nn::load_state(*st.model, r.tensors());
      st.velocity = r.tensors();
      data::Batcher::State bs;
      bs.order = r.i64s();
      bs.cursor = r.i64();
      bs.epoch = r.i64();
      bs.rng = r.str();
      st.batcher->load(bs);
      if (pipeline_) {
        // Sync the pipeline's membership (rejoin also clears residuals and
        // endpoint faults for the agent; the checkpointed residual slab is
        // loaded right after, so the order matters).
        if (st.alive)
          pipeline_->rejoin(a);
        else
          pipeline_->leave(a);
      }
    }
    // A narrower checkpoint restores into a wider fleet: the agents beyond
    // the checkpointed set come up as left (the consensus does not include
    // them) and can rejoin from a live agent's post-aggregation state.
    for (int64_t a = k; a < agents(); ++a) {
      AgentState& st = agents_[static_cast<size_t>(a)];
      st.alive = false;
      st.velocity.clear();
      if (pipeline_) pipeline_->leave(a);
    }
    const bool has_pipeline = r.u8() != 0;
    if (has_pipeline != (pipeline_ != nullptr))
      throw CheckpointError("checkpoint bucketing config mismatch");
    if (pipeline_) {
      std::vector<double> residuals = r.f64s();
      const size_t want = pipeline_->residuals().size();
      if (want > 0) {
        // The checkpointed slab covers k agents; rows for the extra agents
        // of a wider fleet start zeroed (no residual history).
        const size_t per_agent = want / static_cast<size_t>(agents());
        if (residuals.size() != per_agent * static_cast<size_t>(k))
          throw CheckpointError(
              "checkpoint residual slab mismatch: holds " +
              std::to_string(residuals.size()) + " values, expected " +
              std::to_string(per_agent * static_cast<size_t>(k)));
        residuals.resize(want, 0.0);
        pipeline_->load_residuals(residuals);
      } else if (!residuals.empty()) {
        throw CheckpointError(
            "checkpoint carries error-feedback residuals but this fleet "
            "has no residual slab (codec/straggler config mismatch)");
      }
    }
    r.expect_done();
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    throw CheckpointError(std::string("malformed checkpoint body: ") +
                          e.what());
  }
  rounds_since_checkpoint_ = 0;
}

void RealFleet::set_dist_context(DistContext ctx) {
  COMDML_REQUIRE(round_ == 0,
                 "set_dist_context must run before the first step()");
  COMDML_REQUIRE(ctx.shards >= 1 && ctx.shard >= 0 && ctx.shard < ctx.shards,
                 "bad shard index " << ctx.shard << " of " << ctx.shards);
  COMDML_REQUIRE(pipeline_ == nullptr,
                 "multi-process mode needs a flat (non-bucketed, "
                 "non-pipelined) fleet");
  COMDML_REQUIRE(ctx.transport != nullptr, "multi-process mode needs a "
                                           "transport");
  COMDML_REQUIRE(ctx.transport->endpoints() == agents(),
                 "transport hosts " << ctx.transport->endpoints()
                                    << " endpoints, fleet has " << agents()
                                    << " agents");
  COMDML_REQUIRE(static_cast<int64_t>(ctx.owner.size()) == agents(),
                 "owner map covers " << ctx.owner.size() << " agents of "
                                     << agents());
  bool owns_one = false;
  for (const int64_t o : ctx.owner) {
    COMDML_REQUIRE(o >= 0 && o < ctx.shards, "owner " << o << " out of range");
    if (o == ctx.shard) owns_one = true;
  }
  COMDML_REQUIRE(owns_one, "shard " << ctx.shard << " owns no agent");
  COMDML_REQUIRE(ctx.shards == 1 || static_cast<bool>(ctx.exchange),
                 "multi-worker fleets need a TaskResult exchange");
  // Constraints the partitioned round cannot honor yet: mid-round deaths
  // (every worker must see the same live set at every point), straggler
  // deferral (needs the pipeline's residual machinery), and message loss
  // on the aggregation wire (the NACK path retransmits, but the per-step
  // histories then desynchronize across workers).
  for (const FleetOptions::FaultOptions::AgentFailure& f :
       options_.faults.failures)
    COMDML_REQUIRE(f.after_batches < 0 && f.after_buckets < 0 &&
                       f.at_collective_step < 0,
                   "multi-process fleets support leave-mode failures only");
  COMDML_REQUIRE(options_.faults.deadline_sec == 0.0,
                 "multi-process fleets do not support straggler deadlines");
  COMDML_REQUIRE(options_.faults.message_drop_prob == 0.0,
                 "multi-process fleets need a loss-free aggregation wire");
  dist_ = std::move(ctx);
}

void RealFleet::set_dist_transport(comm::Transport* transport) {
  COMDML_REQUIRE(dist_.has_value(),
                 "set_dist_transport needs an engaged dist context");
  COMDML_REQUIRE(transport != nullptr, "null transport");
  COMDML_REQUIRE(transport->endpoints() == agents(),
                 "transport hosts " << transport->endpoints()
                                    << " endpoints, fleet has " << agents()
                                    << " agents");
  dist_->transport = transport;
}

std::vector<uint8_t> RealFleet::export_agent(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  AgentState& st = agents_[static_cast<size_t>(agent)];
  tensor::ByteWriter w;
  w.u8(st.alive ? 1 : 0);
  w.tensors(nn::state_of(*st.model));
  w.tensors(st.velocity);
  const data::Batcher::State bs = st.batcher->save();
  w.i64s(bs.order);
  w.i64(bs.cursor);
  w.i64(bs.epoch);
  w.str(bs.rng);
  return w.bytes();
}

void RealFleet::import_agent(int64_t agent, const std::vector<uint8_t>& bytes) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  AgentState& st = agents_[static_cast<size_t>(agent)];
  tensor::ByteReader r(bytes);
  st.alive = r.u8() != 0;
  nn::load_state(*st.model, r.tensors());
  st.velocity = r.tensors();
  data::Batcher::State bs;
  bs.order = r.i64s();
  bs.cursor = r.i64();
  bs.epoch = r.i64();
  bs.rng = r.str();
  st.batcher->load(bs);
  r.expect_done();
}

namespace {
constexpr uint32_t kShardMagic = 0x434D4453;  // "CMDS"
constexpr uint32_t kShardVersion = 1;
}  // namespace

std::vector<uint8_t> RealFleet::checkpoint_shard(
    int64_t shard, int64_t shards, const std::vector<int64_t>& owned_agents) {
  COMDML_REQUIRE(shards >= 1 && shard >= 0 && shard < shards,
                 "bad shard index " << shard << " of " << shards);
  tensor::ByteWriter body;
  body.u32(static_cast<uint32_t>(agents()));
  body.i64(round_);
  body.i64(shard);
  body.i64(shards);
  body.f32(current_lr_);
  // Fleet-level rng travels in EVERY shard: all workers fork task rngs for
  // all tasks every round, so their fleet rng states are identical and any
  // shard can seed the restored fleet.
  body.str(rng_.state());
  body.u8(plateau_.has_value() ? 1 : 0);
  if (plateau_) {
    const nn::PlateauScheduler::State s = plateau_->save();
    body.f32(s.best);
    body.i64(s.stale);
  }
  body.u32(static_cast<uint32_t>(owned_agents.size()));
  for (const int64_t a : owned_agents) {
    COMDML_CHECK(a >= 0 && a < agents());
    body.i64(a);
    const std::vector<uint8_t> blob = export_agent(a);
    body.str(std::string(blob.begin(), blob.end()));
  }

  const std::vector<uint8_t> payload = body.bytes();
  tensor::ByteWriter w;
  w.u32(kShardMagic);
  w.u32(kShardVersion);
  w.u64(tensor::fnv1a(payload.data(), payload.size()));
  w.raw(payload);
  return w.bytes();
}

void RealFleet::restore_shards(
    const std::vector<std::vector<uint8_t>>& shards) {
  COMDML_REQUIRE(pipeline_ == nullptr,
                 "shard restore needs a flat (non-bucketed) fleet");
  if (shards.empty())
    throw CheckpointError("shard restore got zero shards");

  struct ParsedShard {
    int64_t agents_total = 0;
    int64_t round = 0;
    int64_t shard = 0;
    int64_t shards = 0;
    float lr = 0.0f;
    std::string rng;
    bool has_plateau = false;
    float plateau_best = 0.0f;
    int64_t plateau_stale = 0;
    std::vector<std::pair<int64_t, std::string>> blobs;
  };
  std::vector<ParsedShard> parsed;
  parsed.reserve(shards.size());
  for (const std::vector<uint8_t>& bytes : shards) {
    constexpr size_t kHeader = 2 * sizeof(uint32_t) + sizeof(uint64_t);
    if (bytes.size() < kHeader)
      throw CheckpointError("checkpoint shard truncated: " +
                            std::to_string(bytes.size()) +
                            " bytes is smaller than the header");
    tensor::ByteReader r(bytes);
    if (r.u32() != kShardMagic)
      throw CheckpointError("not a fleet checkpoint shard (bad magic)");
    const uint32_t version = r.u32();
    if (version != kShardVersion)
      throw CheckpointError("unsupported checkpoint shard version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kShardVersion) + ")");
    const uint64_t want_sum = r.u64();
    const uint64_t got_sum =
        tensor::fnv1a(bytes.data() + kHeader, bytes.size() - kHeader);
    if (got_sum != want_sum)
      throw CheckpointError(
          "checkpoint shard checksum mismatch (truncated or corrupted)");
    try {
      ParsedShard p;
      p.agents_total = static_cast<int64_t>(r.u32());
      p.round = r.i64();
      p.shard = r.i64();
      p.shards = r.i64();
      p.lr = r.f32();
      p.rng = r.str();
      p.has_plateau = r.u8() != 0;
      if (p.has_plateau) {
        p.plateau_best = r.f32();
        p.plateau_stale = r.i64();
      }
      const uint32_t count = r.u32();
      p.blobs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        const int64_t a = r.i64();
        p.blobs.emplace_back(a, r.str());
      }
      r.expect_done();
      parsed.push_back(std::move(p));
    } catch (const std::invalid_argument& e) {
      throw CheckpointError(std::string("malformed checkpoint shard: ") +
                            e.what());
    }
  }

  // Cross-shard consistency: every shard must describe the same fleet at
  // the same round, and no two shards may carry the same worker slot or
  // the same agent.
  const ParsedShard& head = parsed.front();
  if (head.agents_total > agents())
    throw CheckpointError(
        "checkpoint shards hold " + std::to_string(head.agents_total) +
        " agents but this fleet only has " + std::to_string(agents()));
  if (head.has_plateau != plateau_.has_value())
    throw CheckpointError("checkpoint shard plateau-schedule config mismatch");
  std::vector<char> slot_seen(static_cast<size_t>(head.shards), 0);
  for (const ParsedShard& p : parsed) {
    if (p.agents_total != head.agents_total || p.round != head.round ||
        p.shards != head.shards)
      throw CheckpointError(
          "inconsistent checkpoint shards: mixed fleets or rounds");
    if (p.shard < 0 || p.shard >= p.shards)
      throw CheckpointError("checkpoint shard index out of range");
    if (slot_seen[static_cast<size_t>(p.shard)] != 0)
      throw CheckpointError("duplicate checkpoint shard " +
                            std::to_string(p.shard));
    slot_seen[static_cast<size_t>(p.shard)] = 1;
  }

  // Fleet-level state from the lowest shard index present (all shards
  // carry identical copies; the choice only pins determinism).
  const ParsedShard* lead = &head;
  for (const ParsedShard& p : parsed)
    if (p.shard < lead->shard) lead = &p;
  round_ = lead->round;
  current_lr_ = lead->lr;
  rng_.set_state(lead->rng);
  if (plateau_) {
    nn::PlateauScheduler::State s;
    s.best = lead->plateau_best;
    s.stale = static_cast<int>(lead->plateau_stale);
    plateau_->load(s);
  }

  // Start everyone as left, then bring covered agents up with their exact
  // state. Agents of absent shards stay left — rejoinable from consensus.
  for (AgentState& st : agents_) {
    st.alive = false;
    st.velocity.clear();
  }
  std::vector<char> agent_seen(static_cast<size_t>(agents()), 0);
  int64_t live = 0;
  for (const ParsedShard& p : parsed) {
    for (const auto& entry : p.blobs) {
      const int64_t a = entry.first;
      if (a < 0 || a >= agents())
        throw CheckpointError("checkpoint shard covers agent " +
                              std::to_string(a) + " outside this fleet");
      if (agent_seen[static_cast<size_t>(a)] != 0)
        throw CheckpointError("agent " + std::to_string(a) +
                              " covered by two checkpoint shards");
      agent_seen[static_cast<size_t>(a)] = 1;
      try {
        import_agent(a, std::vector<uint8_t>(entry.second.begin(),
                                             entry.second.end()));
      } catch (const std::invalid_argument& e) {
        throw CheckpointError(std::string("malformed agent blob in "
                                          "checkpoint shard: ") +
                              e.what());
      }
      if (agents_[static_cast<size_t>(a)].alive) ++live;
    }
  }
  if (live == 0)
    throw CheckpointError(
        "checkpoint shards restore zero live agents; need a quorum "
        "covering at least one");
  rounds_since_checkpoint_ = 0;
}

void RealFleet::auto_checkpoint() {
  namespace fs = std::filesystem;
  const fs::path dir(options_.faults.checkpoint_dir);
  fs::create_directories(dir);
  char name[32];
  std::snprintf(name, sizeof(name), "fleet_r%06lld.cmdl",
                static_cast<long long>(round_));
  const std::vector<uint8_t> bytes = checkpoint();
  {
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    COMDML_REQUIRE(out.good(), "cannot write checkpoint " << (dir / name));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    COMDML_REQUIRE(out.good(),
                   "short write on checkpoint " << (dir / name));
  }
  rounds_since_checkpoint_ = 0;
  // Retention: keep the newest checkpoint_retain auto-checkpoints. The
  // round number is zero-padded, so lexicographic order is round order.
  std::vector<fs::path> found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("fleet_r", 0) == 0 &&
        entry.path().extension() == ".cmdl")
      found.push_back(entry.path());
  }
  std::sort(found.begin(), found.end());
  const auto retain = static_cast<size_t>(options_.faults.checkpoint_retain);
  for (size_t i = 0; i + retain < found.size(); ++i)
    fs::remove(found[i]);
}

}  // namespace comdml::core
