// Per-round and per-run timing records produced by the simulators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tensor/check.hpp"

namespace comdml::core {

struct RoundRecord {
  int64_t round = 0;
  double compute_time = 0.0;      ///< slowest agent's busy (train) time
  double comm_time = 0.0;         ///< largest pair communication time
  double aggregation_time = 0.0;  ///< collective (AllReduce/server/gossip)
  double round_time = 0.0;        ///< wall-clock span of the round
  double idle_time = 0.0;         ///< summed idle across agents
  double unbalanced_time = 0.0;   ///< hypothetical round time w/o offloading
  int64_t num_pairs = 0;
  int64_t dropped_agents = 0;     ///< sampled agents that failed this round
};

/// Wall-clock until `rounds` (fractional) rounds have completed, where
/// `seconds_of(records[i])` is round i's duration; rounds beyond the
/// recorded horizon extrapolate at the mean recorded rate. Shared by
/// RunSummary and core::RunReport.
template <typename Records, typename Seconds>
[[nodiscard]] double time_for_fractional_rounds(const Records& records,
                                                Seconds seconds_of,
                                                double rounds) {
  COMDML_CHECK(rounds >= 0.0);
  COMDML_REQUIRE(!records.empty(), "no rounds recorded");
  double total = 0.0;
  for (const auto& r : records) total += seconds_of(r);
  double t = 0.0;
  double remaining = rounds;
  for (const auto& r : records) {
    if (remaining <= 0.0) return t;
    const double take = std::min(remaining, 1.0);
    t += take * seconds_of(r);
    remaining -= take;
  }
  if (remaining > 0.0)
    t += remaining * (total / static_cast<double>(records.size()));
  return t;
}

class RunSummary {
 public:
  void add(RoundRecord record) { rounds_.push_back(record); }

  [[nodiscard]] const std::vector<RoundRecord>& rounds() const noexcept {
    return rounds_;
  }

  [[nodiscard]] double total_time() const {
    double t = 0.0;
    for (const auto& r : rounds_) t += r.round_time;
    return t;
  }

  /// Wall-clock until `rounds` (fractional) rounds have completed; rounds
  /// beyond the recorded horizon extrapolate at the mean recorded rate.
  [[nodiscard]] double time_for_rounds(double rounds) const {
    return time_for_fractional_rounds(
        rounds_, [](const RoundRecord& r) { return r.round_time; }, rounds);
  }

  [[nodiscard]] double mean_round_time() const {
    COMDML_REQUIRE(!rounds_.empty(), "no rounds recorded");
    return total_time() / static_cast<double>(rounds_.size());
  }

 private:
  std::vector<RoundRecord> rounds_;
};

}  // namespace comdml::core
