// Split-model profiling (paper §IV-B, "lightweight local split model
// profiling").
//
// For each candidate cut m the profile records the *relative* training time
// of the slow side T_s^m and fast side T_f^m (time relative to training the
// full model), the per-sample intermediate payload nu_m crossing the cut,
// and the parameter bytes of the suffix that must be shipped when an offload
// is agreed. Relative times are FLOP ratios, exactly what an agent measures
// by timing one batch per split on its own hardware.
#pragma once

#include "nn/arch_specs.hpp"

namespace comdml::core {

struct SplitPoint {
  size_t cut = 0;            ///< slow side = units [0, cut)
  double t_slow = 0.0;       ///< T_s^m: relative slow-side training time
  double t_fast = 0.0;       ///< T_f^m: relative fast-side training time
  int64_t nu_bytes = 0;      ///< per-sample activation payload over the cut
  int64_t suffix_param_bytes = 0;  ///< model portion shipped on pairing
};

class SplitProfile {
 public:
  /// Profile every interior unit boundary of `spec`; if `max_points` > 0,
  /// keep only that many evenly spaced cuts (the paper's "M split models").
  /// `wire_compression` divides the intermediate-activation payload nu_m:
  /// 1.0 models raw float32 streaming (real execution mode), 4.0 models the
  /// 8-bit activation quantization the paper cites as integrable ([36]);
  /// model parameters always travel uncompressed.
  [[nodiscard]] static SplitProfile from_spec(const nn::ArchitectureSpec& spec,
                                              size_t max_points = 0,
                                              double wire_compression = 1.0);

  [[nodiscard]] const std::vector<SplitPoint>& points() const noexcept {
    return points_;
  }

  /// Per-sample forward+backward FLOPs of the unsplit model.
  [[nodiscard]] double full_flops_per_sample() const noexcept {
    return full_flops_;
  }

  /// Full-model state payload (what aggregation moves), bytes.
  [[nodiscard]] int64_t model_state_bytes() const noexcept {
    return model_bytes_;
  }

  /// The point whose cut equals `cut`; throws if not profiled.
  [[nodiscard]] const SplitPoint& at_cut(size_t cut) const;

  /// Offloaded compute fraction for a cut (for learning-curve penalties).
  [[nodiscard]] double offloaded_fraction(size_t cut) const;

 private:
  std::vector<SplitPoint> points_;
  double full_flops_ = 0.0;
  int64_t model_bytes_ = 0;
  size_t total_units_ = 0;
};

}  // namespace comdml::core
