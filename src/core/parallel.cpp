#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace comdml::core {

namespace {

thread_local bool tls_in_worker = false;

int env_thread_count() {
  if (const char* env = std::getenv("COMDML_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min<long>(v, 256));
  }
  return hardware_threads();
}

/// Fixed-size worker pool executing one chunked job at a time. Workers
/// idle on a condition variable between jobs; the submitting thread
/// participates in the job, so `threads == 1` never blocks.
class Pool {
 public:
  explicit Pool(int threads) : threads_(std::max(1, threads)) {
    workers_.reserve(static_cast<size_t>(threads_ - 1));
    for (int i = 0; i < threads_ - 1; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] int threads() const noexcept { return threads_; }

  void run(int64_t begin, int64_t end, int64_t chunk, const RangeFn& fn) {
    // One job at a time: a second external submitter just runs inline.
    std::unique_lock<std::mutex> job(job_mu_, std::try_to_lock);
    if (!job.owns_lock()) {
      fn(begin, end);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      end_ = end;
      chunk_ = chunk;
      next_.store(begin, std::memory_order_relaxed);
      pending_.store(threads_ - 1, std::memory_order_relaxed);
      error_ = nullptr;
      ++epoch_;
    }
    cv_work_.notify_all();
    // The submitting thread takes chunks too. Mark it as inside a parallel
    // region for the duration: a nested parallel_for from one of its chunks
    // must take the inline path rather than reach run() again — try_lock on
    // the already-owned job_mu_ would be undefined behavior.
    tls_in_worker = true;
    work(fn);
    tls_in_worker = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
      fn_ = nullptr;
      if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        lk.unlock();
        std::rethrow_exception(e);
      }
    }
  }

 private:
  void work(const RangeFn& fn) {
    for (;;) {
      const int64_t lo = next_.fetch_add(chunk_, std::memory_order_relaxed);
      if (lo >= end_) return;
      const int64_t hi = std::min<int64_t>(lo + chunk_, end_);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
        // Drain the remaining range so the job still terminates.
        next_.store(end_, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop() {
    tls_in_worker = true;
    uint64_t seen = 0;
    for (;;) {
      const RangeFn* fn = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        fn = fn_;
      }
      if (fn) work(*fn);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mu_);
        cv_done_.notify_all();
      }
    }
  }

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex job_mu_;  // serializes external submitters
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const RangeFn* fn_ = nullptr;
  int64_t end_ = 0;
  int64_t chunk_ = 1;
  std::atomic<int64_t> next_{0};
  std::atomic<int> pending_{0};
  uint64_t epoch_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

std::mutex g_pool_mu;
std::unique_ptr<Pool> g_pool;  // guarded by g_pool_mu

Pool& pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<Pool>(env_thread_count());
  return *g_pool;
}

}  // namespace

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int num_threads() { return pool().threads(); }

void set_num_threads(int n) {
  const int want = n >= 1 ? std::min(n, 256) : env_thread_count();
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (g_pool && g_pool->threads() == want) return;
  g_pool.reset();  // joins old workers
  g_pool = std::make_unique<Pool>(want);
}

bool in_parallel_region() { return tls_in_worker; }

namespace detail {

bool plan_parallel(int64_t range, int64_t grain, int64_t& chunk) {
  if (tls_in_worker || range <= grain) return false;
  Pool& p = pool();
  const int threads = p.threads();
  if (threads <= 1) return false;
  // ~4 chunks per thread for load balance, but never below the grain.
  const int64_t target_chunks =
      std::min<int64_t>(range, static_cast<int64_t>(threads) * 4);
  chunk = std::max(grain, (range + target_chunks - 1) / target_chunks);
  return chunk < range;
}

void parallel_for_erased(int64_t begin, int64_t end, int64_t chunk,
                         const RangeFn& fn) {
  pool().run(begin, end, chunk, fn);
}

}  // namespace detail

}  // namespace comdml::core
