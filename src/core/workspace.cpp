#include "core/workspace.hpp"

#include <algorithm>
#include <mutex>
#include <new>
#include <vector>

namespace comdml::core {

namespace {

constexpr int64_t kAlign = 64;
constexpr int64_t kMinBlockBytes = 1 << 16;  // 64 KiB floor per block

int64_t align_up(int64_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

/// Registry of live thread arenas so aggregate_stats() can sum them.
/// Arenas register on construction and unregister when their thread exits.
/// Both the mutex and the vector are intentionally leaked: pool workers
/// unregister their thread-local arenas while static destructors are
/// already running (the pool itself is torn down by one), so a destructible
/// registry would be a use-after-free at process exit.
std::mutex& registry_mutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
std::vector<const Workspace*>& registry() {
  static auto* r = new std::vector<const Workspace*>;
  return *r;
}

}  // namespace

struct Workspace::Block {
  Block* next = nullptr;
  int64_t capacity = 0;  // usable bytes after the aligned base
  int64_t top = 0;       // bump offset into the block
  std::byte* base = nullptr;

  static Block* create(int64_t capacity) {
    auto* b = new Block;
    b->capacity = capacity;
    b->base = static_cast<std::byte*>(
        ::operator new(static_cast<size_t>(capacity),
                       std::align_val_t(kAlign)));
    return b;
  }
  static void destroy(Block* b) {
    ::operator delete(b->base, std::align_val_t(kAlign));
    delete b;
  }
};

/// One checkout record, stored inline at the front of the checked-out
/// region so the frame stack costs no separate allocation.
struct Workspace::Frame {
  Frame* prev = nullptr;
  Block* block = nullptr;
  int64_t prev_top = 0;
  int64_t bytes = 0;  // caller-visible size (for live accounting)
};

Workspace::Workspace() {
  std::lock_guard<std::mutex> lk(registry_mutex());
  registry().push_back(this);
}

Workspace::~Workspace() {
  COMDML_DCHECK(frames_ == nullptr);
  {
    std::lock_guard<std::mutex> lk(registry_mutex());
    auto& r = registry();
    r.erase(std::remove(r.begin(), r.end(), this), r.end());
  }
  while (head_ != nullptr) {
    Block* next = head_->next;
    Block::destroy(head_);
    head_ = next;
  }
}

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

Workspace::Block* Workspace::grow(int64_t bytes) {
  // Grow geometrically from the current capacity so a ramping workload
  // settles after O(log) allocations.
  const int64_t want =
      std::max({bytes, kMinBlockBytes, stats_.capacity_bytes});
  Block* b = Block::create(want);
  b->next = head_;
  head_ = b;
  stats_.capacity_bytes += want;
  ++stats_.heap_allocs;
  return b;
}

void* Workspace::checkout_bytes(int64_t bytes) {
  COMDML_CHECK(bytes >= 0);
  const int64_t frame_bytes = align_up(static_cast<int64_t>(sizeof(Frame)));
  const int64_t need = frame_bytes + align_up(bytes);
  Block* b = head_;
  if (b == nullptr || b->capacity - b->top < need) b = grow(need);

  const int64_t prev_top = b->top;
  auto* frame = new (b->base + b->top) Frame;
  frame->prev = frames_;
  frame->block = b;
  frame->prev_top = prev_top;
  frame->bytes = bytes;
  frames_ = frame;
  b->top += need;

  ++stats_.checkouts;
  stats_.live_bytes += bytes;
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes, stats_.live_bytes);
  live_need_ += need;
  high_water_need_ = std::max(high_water_need_, live_need_);
  return b->base + prev_top + frame_bytes;
}

void Workspace::release_bytes(void* p) {
  COMDML_CHECK(frames_ != nullptr);
  Frame* frame = frames_;
  const int64_t frame_bytes = align_up(static_cast<int64_t>(sizeof(Frame)));
  COMDML_REQUIRE(
      p == static_cast<void*>(frame->block->base + frame->prev_top +
                              frame_bytes),
      "workspace release out of LIFO order");
  stats_.live_bytes -= frame->bytes;
  live_need_ -= frame_bytes + align_up(frame->bytes);
  frame->block->top = frame->prev_top;
  frames_ = frame->prev;
  frame->~Frame();
  if (frames_ == nullptr && head_ != nullptr && head_->next != nullptr)
    consolidate();
}

void Workspace::consolidate() {
  // Everything is released and the arena is fragmented across blocks:
  // replace the chain with one block sized to the high-water mark of
  // actually-consumed bytes (checkouts + frame headers), so the next
  // iteration of the same workload fits without touching the heap again.
  // In a single block, LIFO checkouts consume exactly high_water_need_.
  while (head_ != nullptr) {
    Block* next = head_->next;
    Block::destroy(head_);
    head_ = next;
  }
  stats_.capacity_bytes = 0;
  grow(std::max(high_water_need_, kMinBlockBytes));
}

void Workspace::trim() {
  COMDML_CHECK(frames_ == nullptr);
  while (head_ != nullptr) {
    Block* next = head_->next;
    Block::destroy(head_);
    head_ = next;
  }
  stats_.capacity_bytes = 0;
}

Workspace::Stats Workspace::aggregate_stats() {
  std::lock_guard<std::mutex> lk(registry_mutex());
  Stats total;
  for (const Workspace* ws : registry()) {
    const Stats& s = ws->stats_;
    total.heap_allocs += s.heap_allocs;
    total.checkouts += s.checkouts;
    total.live_bytes += s.live_bytes;
    total.capacity_bytes += s.capacity_bytes;
    total.high_water_bytes += s.high_water_bytes;
  }
  return total;
}

}  // namespace comdml::core
