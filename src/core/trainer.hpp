// Paper-scale ComDML fleet simulator.
//
// Drives the full per-round workflow of Algorithm 1 on the discrete-event
// simulator: broadcast -> decentralized pairing -> batch-level pair/solo
// execution -> AllReduce aggregation, with participation sampling and
// dynamic resource-profile reshuffling. Produces RoundRecords that the
// benches combine with the learning-curve model into time-to-accuracy
// tables (Tables II, III; Fig. 3).
#pragma once

#include <functional>

#include "core/config.hpp"
#include "core/execution.hpp"
#include "core/optimizer_exact.hpp"
#include "core/round_stats.hpp"
#include "sim/event_queue.hpp"

namespace comdml::core {

/// Scheduler variants (ablation A1; kComDML is the paper's Algorithm 1).
enum class Scheduler {
  kComDML,
  kNoOffloading,  ///< AllReduce-DML: everyone trains the full model
  kRandom,
  kStatic,
  kExact,  ///< reference integer-program optimum (small fleets only)
};

class SimulatedFleet {
 public:
  /// `shard_sizes[i]` = samples held by agent i.
  SimulatedFleet(const nn::ArchitectureSpec& spec, FleetConfig config,
                 sim::Topology topology, std::vector<int64_t> shard_sizes,
                 Scheduler scheduler = Scheduler::kComDML);

  /// Execute one round; advances the fleet's simulated clock.
  RoundRecord step();

  /// Execute `rounds` rounds.
  RunSummary run(int64_t rounds);

  [[nodiscard]] const SplitProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const sim::Topology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  [[nodiscard]] int64_t rounds_executed() const noexcept { return round_; }

  /// Broadcast infos for the current profiles (visible for tests/benches).
  [[nodiscard]] std::vector<AgentInfo> agent_infos() const;

 private:
  FleetConfig config_;
  SplitProfile profile_;
  sim::Topology topology_;
  std::vector<int64_t> shard_sizes_;
  Scheduler scheduler_;
  tensor::Rng rng_;
  StaticPairing static_pairing_;
  int64_t round_ = 0;

  [[nodiscard]] std::vector<int64_t> sample_participants();
  [[nodiscard]] PairingResult schedule(const std::vector<AgentInfo>& infos,
                                       const std::vector<int64_t>& parts);
};

/// Samples-per-agent for a paper dataset under a partition scheme
/// (IID: equal shards; Dirichlet: proportions ~ Dirichlet(alpha) with a
/// one-batch minimum).
[[nodiscard]] std::vector<int64_t> shard_sizes_for(
    const data::DatasetSpec& dataset, int64_t agents,
    learncurve::PartitionKind partition, tensor::Rng& rng,
    double alpha = 0.5);

}  // namespace comdml::core
