#include "core/optimizer_exact.hpp"

#include <unordered_map>

namespace comdml::core {

namespace {

struct Solver {
  const std::vector<AgentInfo>* infos = nullptr;
  const std::vector<int64_t>* participants = nullptr;
  // pair_time[i][j]: best offload decision with slow=pos i, fast=pos j.
  std::vector<std::vector<std::optional<OffloadDecision>>> options;
  std::unordered_map<uint64_t, double> memo;

  [[nodiscard]] double solo_time(size_t pos) const {
    return (*infos)[static_cast<size_t>((*participants)[pos])].tau_solo;
  }

  /// Minimal achievable max-time over agents in `mask` (bit p = participant
  /// position p still unassigned).
  double solve(uint64_t mask) {
    if (mask == 0) return 0.0;
    if (const auto it = memo.find(mask); it != memo.end()) return it->second;
    // Lowest set bit = first unassigned participant.
    size_t p = 0;
    while (!(mask & (uint64_t{1} << p))) ++p;
    const uint64_t rest = mask & ~(uint64_t{1} << p);
    // Option 1: p trains alone.
    double best = std::max(solo_time(p), solve(rest));
    // Option 2: p pairs with q (either direction).
    for (size_t q = p + 1; q < participants->size(); ++q) {
      if (!(rest & (uint64_t{1} << q))) continue;
      const uint64_t rest2 = rest & ~(uint64_t{1} << q);
      for (const auto& opt : {options[p][q], options[q][p]}) {
        if (!opt) continue;
        best = std::min(best, std::max(opt->estimated_time, solve(rest2)));
      }
    }
    memo[mask] = best;
    return best;
  }

  /// Reconstruct one optimal assignment.
  void reconstruct(uint64_t mask, PairingResult& out) {
    if (mask == 0) return;
    const double target = solve(mask);
    size_t p = 0;
    while (!(mask & (uint64_t{1} << p))) ++p;
    const uint64_t rest = mask & ~(uint64_t{1} << p);
    if (std::max(solo_time(p), solve(rest)) == target) {
      out.solo.push_back((*participants)[p]);
      reconstruct(rest, out);
      return;
    }
    for (size_t q = p + 1; q < participants->size(); ++q) {
      if (!(rest & (uint64_t{1} << q))) continue;
      const uint64_t rest2 = rest & ~(uint64_t{1} << q);
      for (const auto& opt : {options[p][q], options[q][p]}) {
        if (!opt) continue;
        if (std::max(opt->estimated_time, solve(rest2)) == target) {
          out.pairs.push_back(*opt);
          reconstruct(rest2, out);
          return;
        }
      }
    }
    // Floating-point safety net: fall back to solo.
    out.solo.push_back((*participants)[p]);
    reconstruct(rest, out);
  }
};

}  // namespace

PairingResult optimal_pairing(const SplitProfile& profile,
                              const std::vector<AgentInfo>& infos,
                              const sim::Topology& topology,
                              int64_t batch_size,
                              const std::vector<int64_t>& participants) {
  COMDML_REQUIRE(participants.size() <= kExactSolverMaxAgents,
                 "exact solver capped at " << kExactSolverMaxAgents
                                           << " agents, got "
                                           << participants.size());
  const size_t n = participants.size();
  Solver solver;
  solver.infos = &infos;
  solver.participants = &participants;
  solver.options.assign(
      n, std::vector<std::optional<OffloadDecision>>(n, std::nullopt));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const AgentInfo& slow = infos[static_cast<size_t>(participants[a])];
      const AgentInfo& fast = infos[static_cast<size_t>(participants[b])];
      const double link =
          topology.bandwidth_mbps(participants[a], participants[b]);
      const auto choice = best_split(profile, slow, fast, link, batch_size);
      if (!choice) continue;
      // The exact solver also only accepts improving offloads; otherwise a
      // "pair" would just be two solo agents mislabeled.
      if (choice->time >= slow.tau_solo) continue;
      solver.options[a][b] = OffloadDecision{
          slow.id, fast.id, choice->cut, choice->time, choice->comm_time};
    }
  }

  const uint64_t full = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  PairingResult result;
  result.estimated_round_time = solver.solve(full);
  solver.reconstruct(full, result);
  return result;
}

}  // namespace comdml::core
