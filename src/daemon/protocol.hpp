// fleetd control-plane protocol: the versioned binary wire format between
// the coordinator, its worker processes, and fleet clients.
//
// Everything rides the framed socket layer in comm/socket_io.hpp (magic +
// version + type + length); this header pins the message types and the
// body formats. Bodies are tensor::ByteWriter streams — the same
// native-endian, same-machine wire the checkpoint format uses — so every
// structured payload (fleet spec, transport stats, task results, round
// reports) has exactly one serializer each way.
//
// Round protocol (coordinator-driven, one kClientRound at a time):
//   client  -> coord   kClientRound
//   coord   -> workers kRound            (all workers, round index)
//   workers -> coord   kTaskResults      (owned task slots + borrowed state)
//   coord   -> workers kMergedResults    (every slot filled, borrowed state
//                                         from all workers, agents of
//                                         workers that crashed mid-training)
//   workers -> coord   kCollectiveSync   (post-collective live view; loops
//                                         with kCollectiveAgree until every
//                                         survivor ran the agreed schedule)
//   coord   -> workers kCollectiveAgree  (agreed live set [+ remesh info])
//   workers -> coord   kRoundDone        (RoundReport + transport snapshot)
//   coord   -> client  kRoundReport      (merged stats folded in)
// The kTaskResults/kMergedResults exchange doubles as the round barrier:
// no worker reaches the aggregation collective until every worker has
// finished training, so data-mesh resets can never race inbound frames.
// The kCollectiveSync/kCollectiveAgree exchange is the crash barrier: a
// worker SIGKILLed mid-round surfaces as its agents dying, the survivors
// re-run the collective over the agreed survivor set (on a fresh data
// mesh, so no stale frame from the aborted schedule can pollute it), and
// the round completes with RoundStats::dropped_agents populated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/socket_io.hpp"
#include "comm/transport.hpp"
#include "core/fleet_runtime.hpp"
#include "tensor/serialize.hpp"

namespace comdml::daemon {

/// Frame types of the fleetd control plane. Worker-facing types start at
/// 1, client-facing types at 64; the numeric values are wire format — add
/// at the end, never renumber.
enum class Msg : uint16_t {
  // coordinator <-> worker
  kJoin = 1,         ///< worker -> coord: i64 worker index
  kStart,            ///< coord -> worker: spec, workers, owner map, mesh addrs
  kReady,            ///< worker -> coord: data mesh connected
  kRound,            ///< coord -> worker: i64 round index
  kTaskResults,      ///< worker -> coord: owned (task, TaskResult) slots
  kMergedResults,    ///< coord -> worker: the full TaskResult vector
  kRoundDone,        ///< worker -> coord: RoundReport + TransportStats
  kStatsReq,         ///< coord -> worker: (empty)
  kStatsResp,        ///< worker -> coord: TransportStats snapshot
  kAgentStateReq,    ///< coord -> worker: i64 agent
  kAgentState,       ///< worker -> coord: i64 agent + state blob
  kLoadAgentState,   ///< coord -> worker: i64 agent + state blob
  kAck,              ///< (empty)
  kCheckpointReq,    ///< coord -> worker 0: (empty)
  kCheckpointBlob,   ///< worker 0 -> coord: raw checkpoint bytes
  kWeightsReq,       ///< coord -> worker 0: (empty)
  kWeights,          ///< worker 0 -> coord: raw pack_tensors bytes
  kLeave,            ///< coord -> worker: i64 agent
  kShutdown,         ///< coord -> worker: (empty)
  kError,            ///< raw error text
  kPing,             ///< coord -> worker: (empty); reply kPong
  kPong,             ///< worker -> coord: (empty)
  kAgentsDied,       ///< coord -> worker: i64s agents; reply kAck
  kCollectiveSync,   ///< worker -> coord: u8 attempt-ok + i64s live view
  kCollectiveAgree,  ///< coord -> worker: u8 done + i64s agreed live set
                     ///< [+ i64 mesh gen, i64s live workers, u32+addrs]
  kRejoin,           ///< respawned worker -> coord: i64 worker index
  kRejoinState,      ///< coord -> rejoiner: spec, workers, owner, mesh gen,
                     ///< live workers, addrs, full checkpoint blob
  kRemesh,           ///< coord -> worker: mesh gen, live workers, addrs;
                     ///< reply kReady once the new mesh formed
  kRejoinAgents,     ///< coord -> worker: i64s agents to rejoin; reply kAck
  kShardCheckpoint,  ///< coord -> worker: str dir; reply kShardDone
  kShardDone,        ///< worker -> coord: str shard path
  // client <-> coordinator
  kClientHello = 64, ///< client -> coord: (empty); reply: i64 agents, workers
  kClientRound,      ///< client -> coord: (empty)
  kRoundReport,      ///< coord -> client: RoundReport
  kClientStats,      ///< client -> coord: (empty)
  kClientStatsResp,  ///< coord -> client: merged TransportStats
  kClientWeights,    ///< client -> coord: (empty); reply kWeights
  kClientCheckpoint, ///< client -> coord: (empty); reply kCheckpointBlob
  kClientLeave,      ///< client -> coord: i64 agent; reply kAck
  kClientShutdown,   ///< client -> coord: (empty); reply kAck
  kClientShardCheckpoint, ///< client -> coord: str dir; reply kShardPaths
  kShardPaths,       ///< coord -> client: u32 count + str shard paths
};

/// Everything a worker needs to rebuild the coordinator's fleet
/// deterministically. All workers construct the identical fleet from this
/// (same seeds -> identical replicas); the owner map then decides which
/// agents each worker actually trains.
struct FleetSpec {
  int64_t agents = 4;
  uint64_t seed = 42;
  int64_t batch_size = 16;
  int64_t batches_per_round = 6;
  float lr = 0.08f;
  float momentum = 0.9f;
  std::string protocol = "hd";  ///< "hd" | "ring"
  double mbps = 100.0;
  double latency_sec = comm::kDefaultLatencySec;
  /// Per-agent compute speed multipliers (<1 is slower). Empty means
  /// uniform 1.0, which keeps every round solo-only; a heterogeneous
  /// profile gives the pairing pass a real speed gap, so multi-process
  /// rounds exercise the offload path too.
  std::vector<double> compute_scales;
};

void write_spec(tensor::ByteWriter& w, const FleetSpec& spec);
[[nodiscard]] FleetSpec read_spec(tensor::ByteReader& r);

void write_stats(tensor::ByteWriter& w, const comm::TransportStats& s);
[[nodiscard]] comm::TransportStats read_stats(tensor::ByteReader& r);

void write_report(tensor::ByteWriter& w, const core::RoundReport& rep);
[[nodiscard]] core::RoundReport read_report(tensor::ByteReader& r);

void write_task_result(tensor::ByteWriter& w,
                       const core::RealFleet::TaskResult& t);
[[nodiscard]] core::RealFleet::TaskResult read_task_result(
    tensor::ByteReader& r);

/// agent -> worker, round-robin (agent % workers): every worker owns at
/// least one agent whenever workers <= agents.
[[nodiscard]] std::vector<int64_t> owner_map(int64_t agents,
                                             int64_t workers);

/// Per-worker data-mesh addresses derived from the control address: unix
/// control sockets get sibling "<path>.peer<i>" paths, tcp gets
/// consecutive ports above the control port. `generation` > 0 (crash
/// recovery / rejoin remesh) suffixes unix paths with ".g<gen>" and moves
/// tcp ports up by `workers * generation`, so a rebuilt mesh can never
/// collide with sockets left behind by the one it replaces.
[[nodiscard]] std::vector<std::string> mesh_addresses(
    const std::string& control_addr, int64_t workers,
    int64_t generation = 0);

[[nodiscard]] comm::AllReduceAlgo spec_algo(const std::string& name);

/// The deterministic fleet a spec describes: synthetic blobs partitioned
/// iid, resource profiles over a full mesh (uniform when the spec carries
/// no compute scales, keeping those rounds solo-only; per-agent scales
/// make the pairing pass produce offload pairs), and the fleet_cli MLP
/// geometry. Every
/// process — coordinator-side verification, each worker, and a
/// single-process reference run — builds bit-identical fleets from the
/// same spec. `eval_out`, when non-null, receives shard 0 (fleet_cli's
/// evaluation convention).
[[nodiscard]] core::FleetRuntime build_spec_fleet(
    const FleetSpec& spec, data::Dataset* eval_out = nullptr);

// ---- framed message helpers -------------------------------------------------

/// Send one control frame; false when the peer is gone.
[[nodiscard]] bool send_msg(int fd, Msg type,
                            const std::vector<uint8_t>& body);
inline bool send_msg(int fd, Msg type, const tensor::ByteWriter& w) {
  return send_msg(fd, type, w.bytes());
}
inline bool send_msg(int fd, Msg type) {
  return send_msg(fd, type, std::vector<uint8_t>{});
}

/// Blocking receive of the next control frame. Throws std::runtime_error
/// on EOF (`who` names the dead peer in the message) and surfaces a
/// kError frame as an exception carrying the peer's error text.
[[nodiscard]] comm::WireFrame recv_msg(int fd, const std::string& who);

/// recv_msg + type check: anything but `want` throws.
[[nodiscard]] comm::WireFrame expect_msg(int fd, Msg want,
                                         const std::string& who);

}  // namespace comdml::daemon
