#include "daemon/fleetd.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "comm/socket_io.hpp"
#include "comm/socket_transport.hpp"
#include "nn/module.hpp"
#include "tensor/check.hpp"

namespace comdml::daemon {

namespace {

std::string blob_to_str(const std::vector<uint8_t>& blob) {
  return std::string(blob.begin(), blob.end());
}

std::vector<uint8_t> str_to_blob(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

/// One worker's control connection, from the coordinator's side. A dead
/// worker keeps its slot (indices are wire format) with alive == false;
/// a rejoin revives the slot with a fresh fd.
struct WorkerLink {
  int fd = -1;
  bool alive = false;
};

/// Deterministic crash injection for the fault-tolerance tests: the
/// worker _exit(137)s — indistinguishable from SIGKILL to every peer — at
/// a protocol point chosen via environment variables.
///   COMDML_TEST_CRASH_AT_ROUND  round index the hook arms at
///   COMDML_TEST_CRASH_POINT     "train" | "collective" | "gather"
struct CrashHook {
  int64_t round = -1;
  std::string point;
  CrashHook() {
    if (const char* r = std::getenv("COMDML_TEST_CRASH_AT_ROUND"))
      round = std::atoll(r);
    if (const char* p = std::getenv("COMDML_TEST_CRASH_POINT")) point = p;
  }
  [[nodiscard]] bool fires(int64_t r, const char* p) const {
    return round >= 0 && r == round && point == p;
  }
};

[[noreturn]] void crash_now(int64_t index, const char* where) {
  std::fprintf(stderr, "fleetd worker %lld: test crash hook firing at %s\n",
               (long long)index, where);
  std::fflush(stderr);
  ::_exit(137);
}

/// The coordinator: owns the worker links and drives the round protocol.
/// Worker death is survivable everywhere after the join phase: a gather
/// that loses a worker marks its agents dead, tells the survivors, and
/// completes over what is left.
class Coordinator {
 public:
  explicit Coordinator(const CoordinatorOptions& options)
      : options_(options) {}

  ~Coordinator() {
    for (WorkerLink& w : workers_)
      if (w.fd >= 0) comm::close_fd(w.fd);
    for (const int fd : pending_clients_) comm::close_fd(fd);
    if (listen_fd_ >= 0) comm::close_fd(listen_fd_);
  }

  int run() {
    const comm::SocketAddress addr = comm::parse_address(options_.listen);
    listen_fd_ = comm::listen_on(addr);

    // Phase 1: every worker joins (kJoin names its index), then all get
    // the same kStart — spec, fleet partition, and the data-mesh
    // addresses their SocketTransports will form a full mesh over. A
    // client that connects during this phase gets its hello answered and
    // is parked until the fleet is up.
    workers_.resize(static_cast<size_t>(options_.workers));
    for (int64_t joined = 0; joined < options_.workers;) {
      const int fd = comm::accept_on(listen_fd_);
      COMDML_REQUIRE(fd >= 0, "fleetd accept failed while waiting for "
                              "workers to join");
      try {
        const comm::WireFrame frame = recv_msg(fd, "joining peer");
        if (frame.type == static_cast<uint16_t>(Msg::kClientHello)) {
          tensor::ByteWriter w;
          w.i64(options_.spec.agents);
          w.i64(options_.workers);
          reply(fd, Msg::kClientHello, w.bytes());
          pending_clients_.push_back(fd);
          continue;
        }
        COMDML_REQUIRE(frame.type == static_cast<uint16_t>(Msg::kJoin),
                       "joining peer sent frame type " << frame.type
                                                       << ", not kJoin");
        tensor::ByteReader r(frame.body);
        const int64_t index = r.i64();
        r.expect_done();
        COMDML_REQUIRE(index >= 0 && index < options_.workers,
                       "worker joined with out-of-range index " << index);
        COMDML_REQUIRE(workers_[static_cast<size_t>(index)].fd < 0,
                       "two workers joined with index " << index);
        workers_[static_cast<size_t>(index)].fd = fd;
        workers_[static_cast<size_t>(index)].alive = true;
        ++joined;
      } catch (const std::exception& e) {
        comm::close_fd(fd);
        std::fprintf(stderr, "fleetd: rejected a joining peer: %s\n",
                     e.what());
      }
    }
    owner_ = owner_map(options_.spec.agents, options_.workers);
    agent_live_.assign(static_cast<size_t>(options_.spec.agents), 1);
    agent_left_.assign(static_cast<size_t>(options_.spec.agents), 0);
    const std::vector<std::string> mesh =
        mesh_addresses(options_.listen, options_.workers);
    {
      tensor::ByteWriter w;
      write_spec(w, options_.spec);
      w.i64(options_.workers);
      w.i64s(owner_);
      w.u32(static_cast<uint32_t>(mesh.size()));
      for (const std::string& a : mesh) w.str(a);
      broadcast(Msg::kStart, w.bytes());
    }
    for (const WorkerLink& w : workers_)
      (void)expect_msg(w.fd, Msg::kReady, "worker");
    std::printf("fleetd: %lld workers ready, %lld agents, serving on %s\n",
                (long long)options_.workers,
                (long long)options_.spec.agents, options_.listen.c_str());
    std::fflush(stdout);

    // Phase 2: serve clients, one connection at a time (a fleet has one
    // driver). While a client is connected the listen fd stays polled, so
    // a re-spawned worker can rejoin mid-session; other clients queue.
    for (;;) {
      while (!pending_clients_.empty()) {
        const int client = pending_clients_.front();
        pending_clients_.pop_front();
        const bool shutdown = serve_client(client);
        comm::close_fd(client);
        if (shutdown) return 0;
      }
      accept_peer();
    }
  }

 private:
  /// Serve one client until it disconnects; true when it asked the whole
  /// fleet to shut down. The listen fd is polled alongside the client so
  /// rejoining workers (and queueing clients) are admitted between RPCs.
  bool serve_client(int client) {
    for (;;) {
      struct pollfd fds[2];
      fds[0] = {client, POLLIN, 0};
      fds[1] = {listen_fd_, POLLIN, 0};
      const int rc = ::poll(fds, 2, -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if ((fds[1].revents & POLLIN) != 0) accept_peer();
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto frame = comm::recv_frame(client);
      if (!frame.has_value()) return false;  // client went away
      try {
        if (handle_client(client, *frame)) return true;
      } catch (const std::exception& e) {
        // Surface the failure to the client instead of dying; a request
        // the degraded fleet cannot serve keeps erroring, which is the
        // honest signal.
        const std::string what = e.what();
        (void)send_msg(client, Msg::kError, str_to_blob(what));
      }
    }
  }

  /// Admit one connection from the listen backlog: a client's hello is
  /// answered and the fd parked until its turn; a kRejoin runs the rejoin
  /// protocol inline (the fleet is idle between client RPCs).
  void accept_peer() {
    const int fd = comm::accept_on(listen_fd_);
    if (fd < 0) return;
    int64_t rejoin_index = -1;
    try {
      const comm::WireFrame frame = recv_msg(fd, "connecting peer");
      if (frame.type == static_cast<uint16_t>(Msg::kClientHello)) {
        tensor::ByteWriter w;
        w.i64(options_.spec.agents);
        w.i64(options_.workers);
        reply(fd, Msg::kClientHello, w.bytes());
        pending_clients_.push_back(fd);
        return;
      }
      if (frame.type == static_cast<uint16_t>(Msg::kRejoin)) {
        tensor::ByteReader r(frame.body);
        rejoin_index = r.i64();
        r.expect_done();
        handle_rejoin(fd, rejoin_index);
        return;
      }
      (void)send_msg(fd, Msg::kError,
                     str_to_blob("unexpected first frame type " +
                                 std::to_string(frame.type)));
      comm::close_fd(fd);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleetd: rejected a connecting peer: %s\n",
                   e.what());
      const bool adopted =
          rejoin_index >= 0 &&
          workers_[static_cast<size_t>(rejoin_index)].alive &&
          workers_[static_cast<size_t>(rejoin_index)].fd == fd;
      if (!adopted) {
        (void)send_msg(fd, Msg::kError, str_to_blob(e.what()));
        comm::close_fd(fd);
      }
    }
  }

  bool handle_client(int client, const comm::WireFrame& frame) {
    switch (static_cast<Msg>(frame.type)) {
      case Msg::kClientHello: {
        tensor::ByteWriter w;
        w.i64(options_.spec.agents);
        w.i64(options_.workers);
        reply(client, Msg::kClientHello, w.bytes());
        return false;
      }
      case Msg::kClientRound: {
        const core::RoundReport rep = run_round();
        tensor::ByteWriter w;
        write_report(w, rep);
        reply(client, Msg::kRoundReport, w.bytes());
        return false;
      }
      case Msg::kClientStats: {
        std::vector<int64_t> sent;
        for (const int64_t i : live_worker_ids()) {
          if (send_msg(workers_[static_cast<size_t>(i)].fd, Msg::kStatsReq))
            sent.push_back(i);
          else
            notify_agents_died(mark_worker_dead(i));
        }
        std::vector<comm::TransportStats> parts;
        for (const int64_t i : sent) {
          if (!workers_[static_cast<size_t>(i)].alive) continue;
          auto resp = recv_from_worker(i, Msg::kStatsResp);
          if (!resp.has_value()) {
            notify_agents_died(mark_worker_dead(i));
            continue;
          }
          tensor::ByteReader r(resp->body);
          parts.push_back(read_stats(r));
          r.expect_done();
        }
        COMDML_REQUIRE(!parts.empty(), "every fleetd worker has crashed");
        tensor::ByteWriter w;
        write_stats(w, comm::merge_transport_stats(parts));
        reply(client, Msg::kClientStatsResp, w.bytes());
        return false;
      }
      case Msg::kClientWeights: {
        // Any live worker holds the consensus model; walk past crashes.
        for (;;) {
          const int64_t t = first_alive_worker();
          const int tfd = workers_[static_cast<size_t>(t)].fd;
          if (!send_msg(tfd, Msg::kWeightsReq)) {
            notify_agents_died(mark_worker_dead(t));
            continue;
          }
          auto resp = recv_from_worker(t, Msg::kWeights);
          if (!resp.has_value()) {
            notify_agents_died(mark_worker_dead(t));
            continue;
          }
          reply(client, Msg::kWeights, resp->body);
          return false;
        }
      }
      case Msg::kClientCheckpoint: {
        reply(client, Msg::kCheckpointBlob, gather_checkpoint());
        return false;
      }
      case Msg::kClientShardCheckpoint: {
        tensor::ByteReader r(frame.body);
        const std::string dir = r.str();
        r.expect_done();
        sweep_and_notify();
        tensor::ByteWriter req;
        req.str(dir);
        std::vector<int64_t> sent;
        for (const int64_t i : live_worker_ids()) {
          if (send_msg(workers_[static_cast<size_t>(i)].fd,
                       Msg::kShardCheckpoint, req.bytes()))
            sent.push_back(i);
          else
            notify_agents_died(mark_worker_dead(i));
        }
        std::vector<std::string> paths;
        for (const int64_t i : sent) {
          if (!workers_[static_cast<size_t>(i)].alive) continue;
          auto resp = recv_from_worker(i, Msg::kShardDone);
          if (!resp.has_value()) {
            notify_agents_died(mark_worker_dead(i));
            continue;
          }
          tensor::ByteReader rr(resp->body);
          paths.push_back(rr.str());
          rr.expect_done();
        }
        COMDML_REQUIRE(!paths.empty(), "every fleetd worker has crashed");
        tensor::ByteWriter w;
        w.u32(static_cast<uint32_t>(paths.size()));
        for (const std::string& p : paths) w.str(p);
        reply(client, Msg::kShardPaths, w.bytes());
        return false;
      }
      case Msg::kClientLeave: {
        tensor::ByteReader r(frame.body);
        const int64_t agent = r.i64();
        r.expect_done();
        COMDML_REQUIRE(agent >= 0 && agent < options_.spec.agents,
                       "leave agent " << agent << " out of range");
        tensor::ByteWriter w;
        w.i64(agent);
        std::vector<int64_t> sent;
        for (const int64_t i : live_worker_ids()) {
          if (send_msg(workers_[static_cast<size_t>(i)].fd, Msg::kLeave,
                       w.bytes()))
            sent.push_back(i);
          else
            notify_agents_died(mark_worker_dead(i));
        }
        for (const int64_t i : sent) {
          if (!workers_[static_cast<size_t>(i)].alive) continue;
          if (!recv_from_worker(i, Msg::kAck).has_value())
            notify_agents_died(mark_worker_dead(i));
        }
        agent_live_[static_cast<size_t>(agent)] = 0;
        agent_left_[static_cast<size_t>(agent)] = 1;
        reply(client, Msg::kAck, {});
        return false;
      }
      case Msg::kClientShutdown: {
        for (const int64_t i : live_worker_ids())
          (void)send_msg(workers_[static_cast<size_t>(i)].fd,
                         Msg::kShutdown);
        reply(client, Msg::kAck, {});
        return true;
      }
      default:
        reply(client, Msg::kError,
              str_to_blob("unknown client request type " +
                          std::to_string(frame.type)));
        return false;
    }
  }

  core::RoundReport run_round() {
    // Catch workers that died while the fleet sat idle, so the round
    // starts from an agreed live set instead of discovering the corpse
    // mid-protocol.
    sweep_and_notify();
    (void)first_alive_worker();

    std::vector<int64_t> died_mid;
    {
      tensor::ByteWriter w;
      w.i64(round_);
      for (const int64_t i : live_worker_ids())
        if (!send_msg(workers_[static_cast<size_t>(i)].fd, Msg::kRound,
                      w.bytes()))
          append(died_mid, mark_worker_dead(i));
    }

    // Gather owned task results, merge, broadcast the full vector plus
    // every worker's borrowed agent state. This doubles as the round
    // barrier: every worker sits inside its exchange() until the merged
    // vector lands. A worker that dies here (crash mid-training) loses
    // its task slots — its agents ride the died list so the survivors
    // kill them before forming the aggregation collective.
    int64_t n_tasks = -1;
    std::vector<core::RealFleet::TaskResult> merged;
    std::vector<std::pair<int64_t, std::string>> blobs;
    for (const int64_t i : live_worker_ids()) {
      try {
        const comm::WireFrame frame = expect_msg(
            workers_[static_cast<size_t>(i)].fd, Msg::kTaskResults,
            "worker");
        tensor::ByteReader r(frame.body);
        const int64_t n = r.i64();
        if (n_tasks < 0) {
          n_tasks = n;
          merged.resize(static_cast<size_t>(n));
        }
        COMDML_REQUIRE(n == n_tasks,
                       "workers disagree on the round's task count ("
                           << n << " vs " << n_tasks << ")");
        const uint32_t count = r.u32();
        for (uint32_t t = 0; t < count; ++t) {
          const int64_t task = r.i64();
          COMDML_REQUIRE(task >= 0 && task < n_tasks,
                         "task index " << task << " out of range");
          merged[static_cast<size_t>(task)] = read_task_result(r);
        }
        const uint32_t nblobs = r.u32();
        for (uint32_t b = 0; b < nblobs; ++b) {
          const int64_t agent = r.i64();
          blobs.emplace_back(agent, r.str());
        }
        r.expect_done();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fleetd: worker %lld lost mid-training: %s\n",
                     (long long)i, e.what());
        append(died_mid, mark_worker_dead(i));
      }
    }
    COMDML_REQUIRE(n_tasks >= 0,
                   "every worker died before reporting task results");
    {
      std::sort(died_mid.begin(), died_mid.end());
      tensor::ByteWriter w;
      w.u32(static_cast<uint32_t>(merged.size()));
      for (const core::RealFleet::TaskResult& t : merged)
        write_task_result(w, t);
      w.u32(static_cast<uint32_t>(blobs.size()));
      for (const auto& [agent, blob] : blobs) {
        w.i64(agent);
        w.str(blob);
      }
      w.i64s(died_mid);
      for (const int64_t i : live_worker_ids())
        if (!send_msg(workers_[static_cast<size_t>(i)].fd,
                      Msg::kMergedResults, w.bytes()))
          (void)mark_worker_dead(i);  // the sync barrier drops its agents
    }

    // Crash barrier: after every collective attempt the workers report
    // (ok, live view); the coordinator arbitrates. Agreement = every
    // surviving worker completed the schedule over exactly the agreed
    // set. Anything else gets a fresh data mesh (a new generation, so no
    // stale frame from the aborted schedule can pollute the retry) and
    // another attempt over the shrunk set.
    for (;;) {
      struct SyncResp {
        int64_t worker = 0;
        bool ok = false;
        std::vector<int64_t> view;
      };
      std::vector<SyncResp> resps;
      for (const int64_t i : live_worker_ids()) {
        try {
          const comm::WireFrame f = expect_msg(
              workers_[static_cast<size_t>(i)].fd, Msg::kCollectiveSync,
              "worker");
          tensor::ByteReader r(f.body);
          SyncResp resp;
          resp.worker = i;
          resp.ok = r.u8() != 0;
          resp.view = r.i64s();
          r.expect_done();
          std::sort(resp.view.begin(), resp.view.end());
          resps.push_back(std::move(resp));
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "fleetd: worker %lld lost in the collective: %s\n",
                       (long long)i, e.what());
          (void)mark_worker_dead(i);
        }
      }
      COMDML_REQUIRE(!resps.empty(),
                     "every worker died inside the aggregation collective");
      std::vector<int64_t> agreed;
      {
        std::vector<int64_t> cnt(static_cast<size_t>(options_.spec.agents),
                                 0);
        for (const SyncResp& resp : resps)
          for (const int64_t a : resp.view)
            if (a >= 0 && a < options_.spec.agents)
              ++cnt[static_cast<size_t>(a)];
        for (int64_t a = 0; a < options_.spec.agents; ++a)
          if (agent_live_[static_cast<size_t>(a)] != 0 &&
              cnt[static_cast<size_t>(a)] ==
                  static_cast<int64_t>(resps.size()))
            agreed.push_back(a);
      }
      bool all_ok = true;
      for (const SyncResp& resp : resps)
        if (!resp.ok || resp.view != agreed) {
          all_ok = false;
          break;
        }
      if (all_ok) {
        tensor::ByteWriter w;
        w.u8(1);
        w.i64s(agreed);
        for (const SyncResp& resp : resps)
          if (workers_[static_cast<size_t>(resp.worker)].alive &&
              !send_msg(workers_[static_cast<size_t>(resp.worker)].fd,
                        Msg::kCollectiveAgree, w.bytes()))
            (void)mark_worker_dead(resp.worker);
        break;
      }
      ++mesh_gen_;
      const std::vector<std::string> mesh =
          mesh_addresses(options_.listen, options_.workers, mesh_gen_);
      tensor::ByteWriter w;
      w.u8(0);
      w.i64s(agreed);
      w.i64(mesh_gen_);
      w.i64s(live_worker_ids());
      w.u32(static_cast<uint32_t>(mesh.size()));
      for (const std::string& a : mesh) w.str(a);
      for (const SyncResp& resp : resps)
        if (workers_[static_cast<size_t>(resp.worker)].alive &&
            !send_msg(workers_[static_cast<size_t>(resp.worker)].fd,
                      Msg::kCollectiveAgree, w.bytes()))
          (void)mark_worker_dead(resp.worker);
    }

    // Every surviving worker finishes the round and reports its
    // RoundReport + transport snapshot.
    core::RoundReport report;
    bool have_report = false;
    std::vector<comm::TransportStats> parts;
    for (const int64_t i : live_worker_ids()) {
      try {
        const comm::WireFrame frame = expect_msg(
            workers_[static_cast<size_t>(i)].fd, Msg::kRoundDone, "worker");
        tensor::ByteReader r(frame.body);
        const core::RoundReport rep = read_report(r);
        parts.push_back(read_stats(r));
        r.expect_done();
        if (!have_report) {
          report = rep;
          have_report = true;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "fleetd: worker %lld lost finishing the round: %s\n",
                     (long long)i, e.what());
        (void)mark_worker_dead(i);
      }
    }
    COMDML_REQUIRE(have_report,
                   "every worker died before finishing the round");

    // The losses are identical on every worker (that is the point); the
    // clock is not — each worker's transport only saw its own sends, so
    // the fleet-level collective time comes from the positional merge of
    // the per-worker step histories.
    const comm::TransportStats stats = comm::merge_transport_stats(parts);
    const double compute = report.round_seconds - report.aggregation_seconds;
    report.aggregation_seconds = stats.seconds;
    report.aggregation_bytes = stats.max_bytes_sent();
    report.exposed_comm_seconds = stats.seconds;
    report.round_seconds = compute + stats.seconds;
    report.round = round_;
    ++round_;
    return report;
  }

  /// Pull every live remote-owned agent's state onto the first live
  /// worker, then take an ordinary single-fleet checkpoint there — the
  /// blob restores into any structurally identical fleet, multi-process
  /// or not. An owner crashing mid-gather loses its agents (marked dead
  /// and propagated) but not the checkpoint.
  std::vector<uint8_t> gather_checkpoint() {
    sweep_and_notify();
    const int64_t target = first_alive_worker();
    const int tfd = workers_[static_cast<size_t>(target)].fd;
    for (int64_t a = 0; a < options_.spec.agents; ++a) {
      if (agent_live_[static_cast<size_t>(a)] == 0) continue;
      const int64_t owner = owner_[static_cast<size_t>(a)];
      if (owner == target ||
          !workers_[static_cast<size_t>(owner)].alive)
        continue;
      comm::WireFrame state;
      try {
        tensor::ByteWriter req;
        req.i64(a);
        const int ofd = workers_[static_cast<size_t>(owner)].fd;
        COMDML_REQUIRE(send_msg(ofd, Msg::kAgentStateReq, req.bytes()),
                       "worker " << owner << " is gone");
        state = expect_msg(ofd, Msg::kAgentState, "worker");
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "fleetd: worker %lld lost during checkpoint: %s\n",
                     (long long)owner, e.what());
        notify_agents_died(mark_worker_dead(owner));
        continue;
      }
      COMDML_REQUIRE(send_msg(tfd, Msg::kLoadAgentState, state.body),
                     "worker " << target << " is gone");
      (void)expect_msg(tfd, Msg::kAck, "worker");
    }
    COMDML_REQUIRE(send_msg(tfd, Msg::kCheckpointReq),
                   "worker " << target << " is gone");
    return expect_msg(tfd, Msg::kCheckpointBlob, "worker").body;
  }

  /// Re-admit a re-spawned worker into slot `k`: ship it the spec + the
  /// current mesh layout + a full consensus checkpoint, remesh the
  /// survivors alongside it (the mesh rendezvous is the barrier), then
  /// revive its crashed agents from consensus on every worker.
  void handle_rejoin(int fd, int64_t k) {
    COMDML_REQUIRE(k >= 0 && k < options_.workers,
                   "rejoin index " << k << " out of range");
    COMDML_REQUIRE(!workers_[static_cast<size_t>(k)].alive,
                   "worker " << k << " is alive; nothing to rejoin");
    sweep_and_notify();
    const std::vector<uint8_t> ckpt = gather_checkpoint();
    ++mesh_gen_;
    const std::vector<std::string> mesh =
        mesh_addresses(options_.listen, options_.workers, mesh_gen_);
    std::vector<int64_t> live = live_worker_ids();
    live.push_back(k);
    std::sort(live.begin(), live.end());
    {
      tensor::ByteWriter w;
      write_spec(w, options_.spec);
      w.i64(options_.workers);
      w.i64s(owner_);
      w.i64(mesh_gen_);
      w.i64s(live);
      w.u32(static_cast<uint32_t>(mesh.size()));
      for (const std::string& a : mesh) w.str(a);
      w.str(blob_to_str(ckpt));
      COMDML_REQUIRE(send_msg(fd, Msg::kRejoinState, w.bytes()),
                     "rejoining worker " << k << " vanished");
    }
    {
      tensor::ByteWriter w;
      w.i64(mesh_gen_);
      w.i64s(live);
      w.u32(static_cast<uint32_t>(mesh.size()));
      for (const std::string& a : mesh) w.str(a);
      for (const int64_t i : live_worker_ids())
        if (!send_msg(workers_[static_cast<size_t>(i)].fd, Msg::kRemesh,
                      w.bytes()))
          notify_agents_died(mark_worker_dead(i));
    }
    // Everyone confirms the new mesh; the rejoiner's kReady also means
    // its restore from the consensus checkpoint finished.
    (void)expect_msg(fd, Msg::kReady, "rejoining worker");
    for (const int64_t i : live_worker_ids()) {
      try {
        (void)expect_msg(workers_[static_cast<size_t>(i)].fd, Msg::kReady,
                         "worker");
      } catch (const std::exception&) {
        notify_agents_died(mark_worker_dead(i));
      }
    }
    workers_[static_cast<size_t>(k)].fd = fd;
    workers_[static_cast<size_t>(k)].alive = true;

    // Revive the agents the crash killed — but not agents a client
    // deliberately removed.
    std::vector<int64_t> back;
    for (int64_t a = 0; a < options_.spec.agents; ++a)
      if (owner_[static_cast<size_t>(a)] == k &&
          agent_live_[static_cast<size_t>(a)] == 0 &&
          agent_left_[static_cast<size_t>(a)] == 0)
        back.push_back(a);
    if (!back.empty()) {
      tensor::ByteWriter w;
      w.i64s(back);
      std::vector<int64_t> sent;
      for (const int64_t i : live_worker_ids()) {
        if (send_msg(workers_[static_cast<size_t>(i)].fd,
                     Msg::kRejoinAgents, w.bytes()))
          sent.push_back(i);
        else
          notify_agents_died(mark_worker_dead(i));
      }
      for (const int64_t i : sent) {
        if (!workers_[static_cast<size_t>(i)].alive) continue;
        if (!recv_from_worker(i, Msg::kAck).has_value())
          notify_agents_died(mark_worker_dead(i));
      }
      for (const int64_t a : back) agent_live_[static_cast<size_t>(a)] = 1;
    }
    std::fprintf(stderr,
                 "fleetd: worker %lld rejoined (%lld agents revived)\n",
                 (long long)k, (long long)back.size());
  }

  // ---- crash bookkeeping ----------------------------------------------------

  [[nodiscard]] std::vector<int64_t> live_worker_ids() const {
    std::vector<int64_t> ids;
    for (size_t i = 0; i < workers_.size(); ++i)
      if (workers_[i].alive) ids.push_back(static_cast<int64_t>(i));
    return ids;
  }

  [[nodiscard]] int64_t first_alive_worker() const {
    for (size_t i = 0; i < workers_.size(); ++i)
      if (workers_[i].alive) return static_cast<int64_t>(i);
    COMDML_REQUIRE(false, "every fleetd worker has crashed");
    return -1;
  }

  /// Declare worker `i` dead: close its control fd (which also kills a
  /// live-but-wedged worker — it sees EOF and exits, taking its mesh
  /// sockets with it) and mark its live agents dead. Returns the agents
  /// that just died; the caller decides when to notify the survivors.
  std::vector<int64_t> mark_worker_dead(int64_t i) {
    WorkerLink& w = workers_[static_cast<size_t>(i)];
    if (!w.alive) return {};
    w.alive = false;
    if (w.fd >= 0) {
      comm::close_fd(w.fd);
      w.fd = -1;
    }
    std::vector<int64_t> died;
    for (int64_t a = 0; a < options_.spec.agents; ++a)
      if (owner_[static_cast<size_t>(a)] == i &&
          agent_live_[static_cast<size_t>(a)] != 0) {
        agent_live_[static_cast<size_t>(a)] = 0;
        died.push_back(a);
      }
    std::fprintf(stderr,
                 "fleetd: worker %lld is down; %lld agent(s) died\n",
                 (long long)i, (long long)died.size());
    return died;
  }

  /// Tell every surviving worker (between rounds — they are all in their
  /// serve loops) that `died` agents are gone. A worker that fails the
  /// notification is itself dead, and its agents join the next wave.
  void notify_agents_died(std::vector<int64_t> died) {
    while (!died.empty()) {
      std::sort(died.begin(), died.end());
      tensor::ByteWriter w;
      w.i64s(died);
      std::vector<int64_t> next;
      std::vector<int64_t> sent;
      for (const int64_t i : live_worker_ids()) {
        if (send_msg(workers_[static_cast<size_t>(i)].fd, Msg::kAgentsDied,
                     w.bytes()))
          sent.push_back(i);
        else
          append(next, mark_worker_dead(i));
      }
      for (const int64_t i : sent) {
        if (!workers_[static_cast<size_t>(i)].alive) continue;
        try {
          (void)expect_msg(workers_[static_cast<size_t>(i)].fd, Msg::kAck,
                           "worker");
        } catch (const std::exception&) {
          append(next, mark_worker_dead(i));
        }
      }
      died = std::move(next);
    }
  }

  /// Heartbeat sweep between rounds: ping every worker thought alive,
  /// mark the silent ones dead, and propagate their agents' deaths.
  void sweep_and_notify() {
    std::vector<int64_t> died;
    std::vector<int64_t> pinged;
    for (const int64_t i : live_worker_ids()) {
      if (send_msg(workers_[static_cast<size_t>(i)].fd, Msg::kPing))
        pinged.push_back(i);
      else
        append(died, mark_worker_dead(i));
    }
    for (const int64_t i : pinged) {
      try {
        (void)expect_msg(workers_[static_cast<size_t>(i)].fd, Msg::kPong,
                         "worker");
      } catch (const std::exception&) {
        append(died, mark_worker_dead(i));
      }
    }
    notify_agents_died(std::move(died));
  }

  /// Receive one frame from worker `i` where only `want` or death make
  /// sense: nullopt means the worker vanished (the caller marks it dead);
  /// a kError frame throws — the worker is alive, its failure belongs to
  /// the client driving this RPC.
  [[nodiscard]] std::optional<comm::WireFrame> recv_from_worker(int64_t i,
                                                                Msg want) {
    auto frame = comm::recv_frame(workers_[static_cast<size_t>(i)].fd);
    if (!frame.has_value()) return std::nullopt;
    if (frame->type == static_cast<uint16_t>(Msg::kError))
      throw std::runtime_error(
          "worker " + std::to_string(i) + ": " +
          std::string(frame->body.begin(), frame->body.end()));
    COMDML_REQUIRE(frame->type == static_cast<uint16_t>(want),
                   "worker " << i << " sent frame type " << frame->type
                             << ", expected "
                             << static_cast<uint16_t>(want));
    return frame;
  }

  static void append(std::vector<int64_t>& into,
                     const std::vector<int64_t>& more) {
    into.insert(into.end(), more.begin(), more.end());
  }

  /// Join-phase broadcast: every worker must still be there.
  void broadcast(Msg type, const std::vector<uint8_t>& body) {
    for (size_t i = 0; i < workers_.size(); ++i)
      COMDML_REQUIRE(send_msg(workers_[i].fd, type, body),
                     "worker " << i << " is gone");
  }

  void reply(int client, Msg type, const std::vector<uint8_t>& body) {
    // A vanished client is not an error worth killing the fleet over.
    (void)send_msg(client, type, body);
  }

  CoordinatorOptions options_;
  int listen_fd_ = -1;
  std::vector<WorkerLink> workers_;
  std::vector<int64_t> owner_;
  /// The coordinator's consensus agent liveness: crashes and client
  /// leaves clear bits; rejoins set them back.
  std::vector<char> agent_live_;
  /// Agents removed by an explicit client leave — a rejoining worker does
  /// not resurrect these.
  std::vector<char> agent_left_;
  std::deque<int> pending_clients_;
  /// Data-mesh generation; bumped on every remesh (crash recovery and
  /// worker rejoin) so a rebuilt mesh never collides with the sockets of
  /// the one it replaces.
  int64_t mesh_gen_ = 0;
  int64_t round_ = 0;
};

}  // namespace

int run_coordinator(const CoordinatorOptions& options) {
  try {
    Coordinator coordinator(options);
    return coordinator.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd coordinator: %s\n", e.what());
    return 1;
  }
}

int run_worker(const WorkerOptions& options) {
  try {
    const comm::SocketAddress addr = comm::parse_address(options.connect);
    const int fd = comm::dial(addr, 30.0);
    COMDML_REQUIRE(fd >= 0, "cannot reach coordinator at "
                                << options.connect);
    FleetSpec spec;
    int64_t workers = 0;
    std::vector<int64_t> owner;
    std::vector<int64_t> live_workers;
    std::vector<std::string> mesh_addrs;
    std::vector<uint8_t> restore_blob;
    if (!options.rejoin) {
      tensor::ByteWriter w;
      w.i64(options.index);
      COMDML_REQUIRE(send_msg(fd, Msg::kJoin, w.bytes()),
                     "coordinator closed the connection");
      const comm::WireFrame start =
          expect_msg(fd, Msg::kStart, "coordinator");
      tensor::ByteReader r(start.body);
      spec = read_spec(r);
      workers = r.i64();
      owner = r.i64s();
      const uint32_t naddr = r.u32();
      for (uint32_t i = 0; i < naddr; ++i) mesh_addrs.push_back(r.str());
      r.expect_done();
      for (int64_t i = 0; i < workers; ++i) live_workers.push_back(i);
    } else {
      tensor::ByteWriter w;
      w.i64(options.index);
      COMDML_REQUIRE(send_msg(fd, Msg::kRejoin, w.bytes()),
                     "coordinator closed the connection");
      const comm::WireFrame state =
          expect_msg(fd, Msg::kRejoinState, "coordinator");
      tensor::ByteReader r(state.body);
      spec = read_spec(r);
      workers = r.i64();
      owner = r.i64s();
      (void)r.i64();  // mesh generation, implied by the address list
      live_workers = r.i64s();
      const uint32_t naddr = r.u32();
      for (uint32_t i = 0; i < naddr; ++i) mesh_addrs.push_back(r.str());
      restore_blob = str_to_blob(r.str());
      r.expect_done();
    }

    // The full deterministic fleet — identical replicas on every worker;
    // the DistContext below is what narrows training to owned agents.
    core::FleetRuntime fleet = build_spec_fleet(spec);
    core::RealFleet* rf = fleet.real_comdml();
    COMDML_REQUIRE(rf != nullptr, "spec fleet is not a real ComDML fleet");

    // The data mesh is rebuilt on every generation change (crash
    // recovery, rejoin); the unique_ptr swap tears the old one down
    // first so its reader threads and sockets are gone before the new
    // rendezvous starts.
    std::unique_ptr<comm::SocketTransport> mesh;
    const auto build_mesh = [&](const std::vector<int64_t>& live,
                                const std::vector<std::string>& addrs) {
      comm::SocketPeerConfig cfg;
      cfg.owner = owner;
      cfg.self = options.index;
      cfg.addrs = addrs;
      if (static_cast<int64_t>(live.size()) < workers) {
        cfg.process_alive.assign(static_cast<size_t>(workers), 0);
        for (const int64_t p : live)
          cfg.process_alive[static_cast<size_t>(p)] = 1;
      }
      mesh.reset();
      mesh = std::make_unique<comm::SocketTransport>(
          comm::LinkGrid::uniform(spec.agents, spec.mbps, spec.latency_sec),
          cfg);
      mesh->wait_ready();
    };
    build_mesh(live_workers, mesh_addrs);

    const CrashHook crash;

    core::RealFleet::DistContext ctx;
    ctx.shard = options.index;
    ctx.shards = workers;
    ctx.owner = owner;
    ctx.transport = mesh.get();
    ctx.exchange = [&](core::RealFleet::ExchangeIO& io) {
      const std::vector<int64_t>& task_agent = *io.task_agent;
      std::vector<core::RealFleet::TaskResult>& results = *io.results;
      tensor::ByteWriter w;
      w.i64(static_cast<int64_t>(results.size()));
      uint32_t count = 0;
      for (const int64_t agent : task_agent)
        if (agent >= 0 &&
            owner[static_cast<size_t>(agent)] == options.index)
          ++count;
      w.u32(count);
      for (size_t t = 0; t < task_agent.size(); ++t) {
        const int64_t agent = task_agent[t];
        if (agent < 0 || owner[static_cast<size_t>(agent)] != options.index)
          continue;
        w.i64(static_cast<int64_t>(t));
        write_task_result(w, results[t]);
      }
      w.u32(static_cast<uint32_t>(io.state_out.size()));
      for (const auto& [agent, blob] : io.state_out) {
        w.i64(agent);
        w.str(blob_to_str(blob));
      }
      COMDML_REQUIRE(send_msg(fd, Msg::kTaskResults, w.bytes()),
                     "coordinator is gone");
      const comm::WireFrame merged =
          expect_msg(fd, Msg::kMergedResults, "coordinator");
      tensor::ByteReader r(merged.body);
      const uint32_t n = r.u32();
      COMDML_REQUIRE(n == results.size(),
                     "merged results cover " << n << " tasks, expected "
                                             << results.size());
      for (uint32_t t = 0; t < n; ++t) results[t] = read_task_result(r);
      const uint32_t nblobs = r.u32();
      io.state_in.clear();
      for (uint32_t b = 0; b < nblobs; ++b) {
        const int64_t agent = r.i64();
        io.state_in.emplace_back(agent, str_to_blob(r.str()));
      }
      io.died = r.i64s();
      r.expect_done();
      if (crash.fires(rf->round(), "collective"))
        crash_now(options.index, "the aggregation collective");
    };
    ctx.collective_sync =
        [&](const std::vector<int64_t>& view,
            bool ok) -> std::pair<std::vector<int64_t>, comm::Transport*> {
      {
        tensor::ByteWriter w;
        w.u8(ok ? 1 : 0);
        w.i64s(view);
        COMDML_REQUIRE(send_msg(fd, Msg::kCollectiveSync, w.bytes()),
                       "coordinator is gone");
      }
      const comm::WireFrame agree =
          expect_msg(fd, Msg::kCollectiveAgree, "coordinator");
      tensor::ByteReader r(agree.body);
      const bool done = r.u8() != 0;
      std::vector<int64_t> agreed = r.i64s();
      if (done) {
        r.expect_done();
        return {std::move(agreed), nullptr};
      }
      (void)r.i64();  // mesh generation, implied by the address list
      const std::vector<int64_t> live = r.i64s();
      const uint32_t naddr = r.u32();
      std::vector<std::string> addrs;
      for (uint32_t i = 0; i < naddr; ++i) addrs.push_back(r.str());
      r.expect_done();
      build_mesh(live, addrs);
      return {std::move(agreed), mesh.get()};
    };
    rf->set_dist_context(std::move(ctx));
    // A rejoiner restores after the context is installed (the context
    // requires a fresh fleet; the restore then fast-forwards it to the
    // consensus round).
    if (options.rejoin) fleet.restore(restore_blob);
    COMDML_REQUIRE(send_msg(fd, Msg::kReady), "coordinator is gone");

    for (;;) {
      auto frame = comm::recv_frame(fd);
      if (!frame.has_value()) {
        std::fprintf(stderr, "fleetd worker %lld: coordinator vanished\n",
                     (long long)options.index);
        return 1;
      }
      try {
        switch (static_cast<Msg>(frame->type)) {
          case Msg::kRound: {
            if (crash.fires(fleet.rounds_executed(), "train"))
              crash_now(options.index, "training");
            // New round, clean transport slate — stats and mail reset
            // before any training (the exchange barrier guarantees no
            // peer reaches the aggregation while anyone is still here).
            mesh->reset();
            const core::RoundReport rep = fleet.step();
            tensor::ByteWriter w;
            write_report(w, rep);
            write_stats(w, mesh->stats_snapshot());
            COMDML_REQUIRE(send_msg(fd, Msg::kRoundDone, w.bytes()),
                           "coordinator is gone");
            break;
          }
          case Msg::kPing: {
            (void)send_msg(fd, Msg::kPong);
            break;
          }
          case Msg::kAgentsDied: {
            tensor::ByteReader req(frame->body);
            const std::vector<int64_t> died = req.i64s();
            req.expect_done();
            for (const int64_t a : died) fleet.leave(a);
            (void)send_msg(fd, Msg::kAck);
            break;
          }
          case Msg::kRemesh: {
            tensor::ByteReader req(frame->body);
            (void)req.i64();  // mesh generation
            const std::vector<int64_t> live = req.i64s();
            const uint32_t naddr = req.u32();
            std::vector<std::string> addrs;
            for (uint32_t i = 0; i < naddr; ++i) addrs.push_back(req.str());
            req.expect_done();
            build_mesh(live, addrs);
            rf->set_dist_transport(mesh.get());
            (void)send_msg(fd, Msg::kReady);
            break;
          }
          case Msg::kRejoinAgents: {
            tensor::ByteReader req(frame->body);
            const std::vector<int64_t> back = req.i64s();
            req.expect_done();
            for (const int64_t a : back) fleet.rejoin(a);
            (void)send_msg(fd, Msg::kAck);
            break;
          }
          case Msg::kStatsReq: {
            tensor::ByteWriter w;
            write_stats(w, mesh->stats_snapshot());
            (void)send_msg(fd, Msg::kStatsResp, w.bytes());
            break;
          }
          case Msg::kAgentStateReq: {
            if (crash.point == "gather" && crash.round >= 0 &&
                fleet.rounds_executed() >= crash.round)
              crash_now(options.index, "the checkpoint gather");
            tensor::ByteReader req(frame->body);
            const int64_t agent = req.i64();
            req.expect_done();
            tensor::ByteWriter w;
            w.i64(agent);
            w.str(blob_to_str(rf->export_agent(agent)));
            (void)send_msg(fd, Msg::kAgentState, w.bytes());
            break;
          }
          case Msg::kLoadAgentState: {
            tensor::ByteReader req(frame->body);
            const int64_t agent = req.i64();
            rf->import_agent(agent, str_to_blob(req.str()));
            req.expect_done();
            (void)send_msg(fd, Msg::kAck);
            break;
          }
          case Msg::kCheckpointReq: {
            (void)send_msg(fd, Msg::kCheckpointBlob, fleet.checkpoint());
            break;
          }
          case Msg::kShardCheckpoint: {
            tensor::ByteReader req(frame->body);
            const std::string dir = req.str();
            req.expect_done();
            std::vector<int64_t> owned_live;
            for (const int64_t a : fleet.live_agents())
              if (owner[static_cast<size_t>(a)] == options.index)
                owned_live.push_back(a);
            const std::vector<uint8_t> blob = fleet.checkpoint_shard(
                options.index, workers, owned_live);
            std::filesystem::create_directories(dir);
            char name[64];
            std::snprintf(name, sizeof(name), "fleet_r%06lld.w%02lld.cmdl",
                          (long long)fleet.rounds_executed(),
                          (long long)options.index);
            const std::string path = dir + "/" + name;
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            COMDML_REQUIRE(out.good(), "cannot open shard file " << path);
            out.write(reinterpret_cast<const char*>(blob.data()),
                      static_cast<std::streamsize>(blob.size()));
            out.flush();
            COMDML_REQUIRE(out.good(),
                           "short write to shard file " << path);
            tensor::ByteWriter w;
            w.str(path);
            (void)send_msg(fd, Msg::kShardDone, w.bytes());
            break;
          }
          case Msg::kWeightsReq: {
            const std::vector<int64_t> live = fleet.live_agents();
            COMDML_REQUIRE(!live.empty(), "no live agents");
            (void)send_msg(
                fd, Msg::kWeights,
                tensor::pack_tensors(nn::state_of(fleet.model(live[0]))));
            break;
          }
          case Msg::kLeave: {
            tensor::ByteReader req(frame->body);
            fleet.leave(req.i64());
            req.expect_done();
            (void)send_msg(fd, Msg::kAck);
            break;
          }
          case Msg::kShutdown:
            return 0;
          default:
            (void)send_msg(fd, Msg::kError,
                           str_to_blob("unknown worker request type " +
                                       std::to_string(frame->type)));
        }
      } catch (const std::exception& e) {
        (void)send_msg(fd, Msg::kError, str_to_blob(e.what()));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd worker %lld: %s\n",
                 (long long)options.index, e.what());
    return 1;
  }
}

FleetClient::FleetClient(const std::string& address, double timeout_sec) {
  const comm::SocketAddress addr = comm::parse_address(address);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_sec));
  int refused_in_a_row = 0;
  int err = 0;
  for (;;) {
    fd_ = comm::dial_once(addr, &err);
    if (fd_ >= 0) break;
    // A unix socket file that exists but persistently refuses connections
    // is a corpse: a dead coordinator's leftover. Fail fast instead of
    // burning the whole timeout (ENOENT, by contrast, may just be a
    // coordinator that has not bound yet).
    if (addr.kind == comm::SocketAddress::Kind::kUnix &&
        err == ECONNREFUSED) {
      if (++refused_in_a_row >= 3)
        throw CoordinatorUnreachable(
            "stale fleetd control socket at " + address +
            ": the socket file exists but nothing is listening (dead "
            "coordinator?); remove the file or restart fleetd");
    } else {
      refused_in_a_row = 0;
    }
    if (std::chrono::steady_clock::now() >= deadline)
      throw CoordinatorUnreachable(
          "cannot reach fleetd at " + address + " within " +
          std::to_string(timeout_sec) + "s (" + std::strerror(err) + ")");
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }
  const comm::WireFrame hello =
      rpc(Msg::kClientHello, {}, Msg::kClientHello);
  tensor::ByteReader r(hello.body);
  agents_ = r.i64();
  workers_ = r.i64();
  r.expect_done();
}

FleetClient::~FleetClient() {
  if (fd_ >= 0) comm::close_fd(fd_);
}

comm::WireFrame FleetClient::rpc(Msg type, const std::vector<uint8_t>& body,
                                 Msg want) {
  COMDML_REQUIRE(send_msg(fd_, type, body), "fleetd is gone");
  return expect_msg(fd_, want, "fleetd");
}

core::RoundReport FleetClient::round() {
  const comm::WireFrame frame = rpc(Msg::kClientRound, {}, Msg::kRoundReport);
  tensor::ByteReader r(frame.body);
  core::RoundReport rep = read_report(r);
  r.expect_done();
  return rep;
}

comm::TransportStats FleetClient::stats() {
  const comm::WireFrame frame =
      rpc(Msg::kClientStats, {}, Msg::kClientStatsResp);
  tensor::ByteReader r(frame.body);
  comm::TransportStats s = read_stats(r);
  r.expect_done();
  return s;
}

std::vector<uint8_t> FleetClient::weights() {
  return rpc(Msg::kClientWeights, {}, Msg::kWeights).body;
}

std::vector<uint8_t> FleetClient::checkpoint() {
  return rpc(Msg::kClientCheckpoint, {}, Msg::kCheckpointBlob).body;
}

std::vector<std::string> FleetClient::shard_checkpoint(
    const std::string& dir) {
  tensor::ByteWriter w;
  w.str(dir);
  const comm::WireFrame frame =
      rpc(Msg::kClientShardCheckpoint, w.bytes(), Msg::kShardPaths);
  tensor::ByteReader r(frame.body);
  const uint32_t n = r.u32();
  std::vector<std::string> paths;
  for (uint32_t i = 0; i < n; ++i) paths.push_back(r.str());
  r.expect_done();
  return paths;
}

void FleetClient::leave(int64_t agent) {
  tensor::ByteWriter w;
  w.i64(agent);
  (void)rpc(Msg::kClientLeave, w.bytes(), Msg::kAck);
}

void FleetClient::shutdown() {
  (void)rpc(Msg::kClientShutdown, {}, Msg::kAck);
}

}  // namespace comdml::daemon
