#include "daemon/fleetd.hpp"

#include <cstdio>
#include <utility>

#include "comm/socket_io.hpp"
#include "comm/socket_transport.hpp"
#include "nn/module.hpp"
#include "tensor/check.hpp"

namespace comdml::daemon {

namespace {

std::string blob_to_str(const std::vector<uint8_t>& blob) {
  return std::string(blob.begin(), blob.end());
}

std::vector<uint8_t> str_to_blob(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

/// One worker's control connection, from the coordinator's side.
struct WorkerLink {
  int fd = -1;
};

/// The coordinator: owns the worker links and drives the round protocol.
class Coordinator {
 public:
  explicit Coordinator(const CoordinatorOptions& options)
      : options_(options) {}

  ~Coordinator() {
    for (WorkerLink& w : workers_)
      if (w.fd >= 0) comm::close_fd(w.fd);
    if (listen_fd_ >= 0) comm::close_fd(listen_fd_);
  }

  int run() {
    const comm::SocketAddress addr = comm::parse_address(options_.listen);
    listen_fd_ = comm::listen_on(addr);

    // Phase 1: every worker joins (kJoin names its index), then all get
    // the same kStart — spec, fleet partition, and the data-mesh
    // addresses their SocketTransports will form a full mesh over. A
    // client that connects during this phase gets its hello answered and
    // is parked until the fleet is up.
    workers_.resize(static_cast<size_t>(options_.workers));
    std::vector<int> early_clients;
    for (int64_t joined = 0; joined < options_.workers;) {
      const int fd = comm::accept_on(listen_fd_);
      COMDML_REQUIRE(fd >= 0, "fleetd accept failed while waiting for "
                              "workers to join");
      try {
        const comm::WireFrame frame = recv_msg(fd, "joining peer");
        if (frame.type == static_cast<uint16_t>(Msg::kClientHello)) {
          tensor::ByteWriter w;
          w.i64(options_.spec.agents);
          w.i64(options_.workers);
          reply(fd, Msg::kClientHello, w.bytes());
          early_clients.push_back(fd);
          continue;
        }
        COMDML_REQUIRE(frame.type == static_cast<uint16_t>(Msg::kJoin),
                       "joining peer sent frame type " << frame.type
                                                       << ", not kJoin");
        tensor::ByteReader r(frame.body);
        const int64_t index = r.i64();
        r.expect_done();
        COMDML_REQUIRE(index >= 0 && index < options_.workers,
                       "worker joined with out-of-range index " << index);
        COMDML_REQUIRE(workers_[static_cast<size_t>(index)].fd < 0,
                       "two workers joined with index " << index);
        workers_[static_cast<size_t>(index)].fd = fd;
        ++joined;
      } catch (const std::exception& e) {
        comm::close_fd(fd);
        std::fprintf(stderr, "fleetd: rejected a joining peer: %s\n",
                     e.what());
      }
    }
    owner_ = owner_map(options_.spec.agents, options_.workers);
    const std::vector<std::string> mesh =
        mesh_addresses(options_.listen, options_.workers);
    {
      tensor::ByteWriter w;
      write_spec(w, options_.spec);
      w.i64(options_.workers);
      w.i64s(owner_);
      w.u32(static_cast<uint32_t>(mesh.size()));
      for (const std::string& a : mesh) w.str(a);
      broadcast(Msg::kStart, w.bytes());
    }
    for (const WorkerLink& w : workers_)
      (void)expect_msg(w.fd, Msg::kReady, "worker");
    std::printf("fleetd: %lld workers ready, %lld agents, serving on %s\n",
                (long long)options_.workers,
                (long long)options_.spec.agents, options_.listen.c_str());
    std::fflush(stdout);

    // Phase 2: serve clients, one connection at a time (a fleet has one
    // driver; a second client simply queues on the accept backlog).
    // Clients parked during the join phase go first.
    for (const int client : early_clients) {
      const bool shutdown = serve_client(client);
      comm::close_fd(client);
      if (shutdown) return 0;
    }
    for (;;) {
      const int client = comm::accept_on(listen_fd_);
      COMDML_REQUIRE(client >= 0, "fleetd client accept failed");
      const bool shutdown = serve_client(client);
      comm::close_fd(client);
      if (shutdown) return 0;
    }
  }

 private:
  /// Serve one client until it disconnects; true when it asked the whole
  /// fleet to shut down.
  bool serve_client(int client) {
    for (;;) {
      auto frame = comm::recv_frame(client);
      if (!frame.has_value()) return false;  // client went away
      try {
        if (handle_client(client, *frame)) return true;
      } catch (const std::exception& e) {
        // Surface the failure to the client instead of dying; a dead
        // worker will keep erroring every request, which is the honest
        // signal.
        const std::string what = e.what();
        (void)send_msg(client, Msg::kError, str_to_blob(what));
      }
    }
  }

  bool handle_client(int client, const comm::WireFrame& frame) {
    switch (static_cast<Msg>(frame.type)) {
      case Msg::kClientHello: {
        tensor::ByteWriter w;
        w.i64(options_.spec.agents);
        w.i64(options_.workers);
        reply(client, Msg::kClientHello, w.bytes());
        return false;
      }
      case Msg::kClientRound: {
        const core::RoundReport rep = run_round();
        tensor::ByteWriter w;
        write_report(w, rep);
        reply(client, Msg::kRoundReport, w.bytes());
        return false;
      }
      case Msg::kClientStats: {
        broadcast(Msg::kStatsReq, {});
        std::vector<comm::TransportStats> parts;
        for (const WorkerLink& w : workers_) {
          const comm::WireFrame resp =
              expect_msg(w.fd, Msg::kStatsResp, "worker");
          tensor::ByteReader r(resp.body);
          parts.push_back(read_stats(r));
          r.expect_done();
        }
        tensor::ByteWriter w;
        write_stats(w, comm::merge_transport_stats(parts));
        reply(client, Msg::kClientStatsResp, w.bytes());
        return false;
      }
      case Msg::kClientWeights: {
        const int w0 = workers_[0].fd;
        COMDML_REQUIRE(send_msg(w0, Msg::kWeightsReq), "worker 0 is gone");
        const comm::WireFrame blob =
            expect_msg(w0, Msg::kWeights, "worker 0");
        reply(client, Msg::kWeights, blob.body);
        return false;
      }
      case Msg::kClientCheckpoint: {
        reply(client, Msg::kCheckpointBlob, gather_checkpoint());
        return false;
      }
      case Msg::kClientLeave: {
        tensor::ByteReader r(frame.body);
        const int64_t agent = r.i64();
        r.expect_done();
        tensor::ByteWriter w;
        w.i64(agent);
        broadcast(Msg::kLeave, w.bytes());
        for (const WorkerLink& link : workers_)
          (void)expect_msg(link.fd, Msg::kAck, "worker");
        reply(client, Msg::kAck, {});
        return false;
      }
      case Msg::kClientShutdown: {
        broadcast(Msg::kShutdown, {});
        reply(client, Msg::kAck, {});
        return true;
      }
      default:
        reply(client, Msg::kError,
              str_to_blob("unknown client request type " +
                          std::to_string(frame.type)));
        return false;
    }
  }

  core::RoundReport run_round() {
    {
      tensor::ByteWriter w;
      w.i64(round_);
      broadcast(Msg::kRound, w.bytes());
    }

    // Gather owned task results, merge, broadcast the full vector. This
    // doubles as the round barrier: every worker sits inside its
    // exchange() until the merged vector lands.
    int64_t n_tasks = -1;
    std::vector<core::RealFleet::TaskResult> merged;
    for (const WorkerLink& w : workers_) {
      const comm::WireFrame frame =
          expect_msg(w.fd, Msg::kTaskResults, "worker");
      tensor::ByteReader r(frame.body);
      const int64_t n = r.i64();
      if (n_tasks < 0) {
        n_tasks = n;
        merged.resize(static_cast<size_t>(n));
      }
      COMDML_REQUIRE(n == n_tasks,
                     "workers disagree on the round's task count ("
                         << n << " vs " << n_tasks << ")");
      const uint32_t count = r.u32();
      for (uint32_t i = 0; i < count; ++i) {
        const int64_t task = r.i64();
        COMDML_REQUIRE(task >= 0 && task < n_tasks,
                       "task index " << task << " out of range");
        merged[static_cast<size_t>(task)] = read_task_result(r);
      }
      r.expect_done();
    }
    {
      tensor::ByteWriter w;
      w.u32(static_cast<uint32_t>(merged.size()));
      for (const core::RealFleet::TaskResult& t : merged)
        write_task_result(w, t);
      broadcast(Msg::kMergedResults, w.bytes());
    }

    // Every worker finishes the round (aggregation over the data mesh)
    // and reports its RoundReport + transport snapshot.
    core::RoundReport report;
    std::vector<comm::TransportStats> parts;
    for (size_t i = 0; i < workers_.size(); ++i) {
      const comm::WireFrame frame =
          expect_msg(workers_[i].fd, Msg::kRoundDone, "worker");
      tensor::ByteReader r(frame.body);
      const core::RoundReport rep = read_report(r);
      parts.push_back(read_stats(r));
      r.expect_done();
      if (i == 0) report = rep;
    }

    // The losses are identical on every worker (that is the point); the
    // clock is not — each worker's transport only saw its own sends, so
    // the fleet-level collective time comes from the positional merge of
    // the per-worker step histories.
    const comm::TransportStats stats = comm::merge_transport_stats(parts);
    const double compute = report.round_seconds - report.aggregation_seconds;
    report.aggregation_seconds = stats.seconds;
    report.aggregation_bytes = stats.max_bytes_sent();
    report.exposed_comm_seconds = stats.seconds;
    report.round_seconds = compute + stats.seconds;
    report.round = round_;
    ++round_;
    return report;
  }

  /// Pull every remote-owned agent's state onto worker 0, then take an
  /// ordinary single-fleet checkpoint there — the blob restores into any
  /// structurally identical fleet, multi-process or not.
  std::vector<uint8_t> gather_checkpoint() {
    const int w0 = workers_[0].fd;
    for (int64_t a = 0; a < options_.spec.agents; ++a) {
      const int64_t owner = owner_[static_cast<size_t>(a)];
      if (owner == 0) continue;
      tensor::ByteWriter req;
      req.i64(a);
      const int ofd = workers_[static_cast<size_t>(owner)].fd;
      COMDML_REQUIRE(send_msg(ofd, Msg::kAgentStateReq, req.bytes()),
                     "worker " << owner << " is gone");
      const comm::WireFrame state =
          expect_msg(ofd, Msg::kAgentState, "worker");
      COMDML_REQUIRE(send_msg(w0, Msg::kLoadAgentState, state.body),
                     "worker 0 is gone");
      (void)expect_msg(w0, Msg::kAck, "worker 0");
    }
    COMDML_REQUIRE(send_msg(w0, Msg::kCheckpointReq), "worker 0 is gone");
    return expect_msg(w0, Msg::kCheckpointBlob, "worker 0").body;
  }

  void broadcast(Msg type, const std::vector<uint8_t>& body) {
    for (size_t i = 0; i < workers_.size(); ++i)
      COMDML_REQUIRE(send_msg(workers_[i].fd, type, body),
                     "worker " << i << " is gone");
  }

  void reply(int client, Msg type, const std::vector<uint8_t>& body) {
    // A vanished client is not an error worth killing the fleet over.
    (void)send_msg(client, type, body);
  }

  CoordinatorOptions options_;
  int listen_fd_ = -1;
  std::vector<WorkerLink> workers_;
  std::vector<int64_t> owner_;
  int64_t round_ = 0;
};

}  // namespace

int run_coordinator(const CoordinatorOptions& options) {
  try {
    Coordinator coordinator(options);
    return coordinator.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd coordinator: %s\n", e.what());
    return 1;
  }
}

int run_worker(const WorkerOptions& options) {
  try {
    const comm::SocketAddress addr = comm::parse_address(options.connect);
    const int fd = comm::dial(addr, 30.0);
    COMDML_REQUIRE(fd >= 0, "cannot reach coordinator at "
                                << options.connect);
    {
      tensor::ByteWriter w;
      w.i64(options.index);
      COMDML_REQUIRE(send_msg(fd, Msg::kJoin, w.bytes()),
                     "coordinator closed the connection");
    }
    const comm::WireFrame start = expect_msg(fd, Msg::kStart, "coordinator");
    tensor::ByteReader r(start.body);
    const FleetSpec spec = read_spec(r);
    const int64_t workers = r.i64();
    const std::vector<int64_t> owner = r.i64s();
    const uint32_t naddr = r.u32();
    std::vector<std::string> mesh_addrs;
    for (uint32_t i = 0; i < naddr; ++i) mesh_addrs.push_back(r.str());
    r.expect_done();

    // The full deterministic fleet — identical replicas on every worker;
    // the DistContext below is what narrows training to owned agents.
    core::FleetRuntime fleet = build_spec_fleet(spec);
    core::RealFleet* rf = fleet.real_comdml();
    COMDML_REQUIRE(rf != nullptr, "spec fleet is not a real ComDML fleet");

    comm::SocketPeerConfig peer_cfg;
    peer_cfg.owner = owner;
    peer_cfg.self = options.index;
    peer_cfg.addrs = mesh_addrs;
    comm::SocketTransport mesh(
        comm::LinkGrid::uniform(spec.agents, spec.mbps, spec.latency_sec),
        peer_cfg);
    mesh.wait_ready();

    core::RealFleet::DistContext ctx;
    ctx.shard = options.index;
    ctx.shards = workers;
    ctx.owner = owner;
    ctx.transport = &mesh;
    ctx.exchange = [fd, index = options.index, &owner](
                       const std::vector<int64_t>& task_agent,
                       std::vector<core::RealFleet::TaskResult>& results) {
      tensor::ByteWriter w;
      w.i64(static_cast<int64_t>(results.size()));
      uint32_t count = 0;
      for (const int64_t agent : task_agent)
        if (agent >= 0 && owner[static_cast<size_t>(agent)] == index)
          ++count;
      w.u32(count);
      for (size_t t = 0; t < task_agent.size(); ++t) {
        const int64_t agent = task_agent[t];
        if (agent < 0 || owner[static_cast<size_t>(agent)] != index)
          continue;
        w.i64(static_cast<int64_t>(t));
        write_task_result(w, results[t]);
      }
      COMDML_REQUIRE(send_msg(fd, Msg::kTaskResults, w.bytes()),
                     "coordinator is gone");
      const comm::WireFrame merged =
          expect_msg(fd, Msg::kMergedResults, "coordinator");
      tensor::ByteReader r(merged.body);
      const uint32_t n = r.u32();
      COMDML_REQUIRE(n == results.size(),
                     "merged results cover " << n << " tasks, expected "
                                             << results.size());
      for (uint32_t t = 0; t < n; ++t) results[t] = read_task_result(r);
      r.expect_done();
    };
    rf->set_dist_context(std::move(ctx));
    COMDML_REQUIRE(send_msg(fd, Msg::kReady), "coordinator is gone");

    for (;;) {
      auto frame = comm::recv_frame(fd);
      if (!frame.has_value()) {
        std::fprintf(stderr, "fleetd worker %lld: coordinator vanished\n",
                     (long long)options.index);
        return 1;
      }
      try {
        switch (static_cast<Msg>(frame->type)) {
          case Msg::kRound: {
            // New round, clean transport slate — stats and mail reset
            // before any training (the exchange barrier guarantees no
            // peer reaches the aggregation while anyone is still here).
            mesh.reset();
            const core::RoundReport rep = fleet.step();
            tensor::ByteWriter w;
            write_report(w, rep);
            write_stats(w, mesh.stats_snapshot());
            COMDML_REQUIRE(send_msg(fd, Msg::kRoundDone, w.bytes()),
                           "coordinator is gone");
            break;
          }
          case Msg::kStatsReq: {
            tensor::ByteWriter w;
            write_stats(w, mesh.stats_snapshot());
            (void)send_msg(fd, Msg::kStatsResp, w.bytes());
            break;
          }
          case Msg::kAgentStateReq: {
            tensor::ByteReader req(frame->body);
            const int64_t agent = req.i64();
            req.expect_done();
            tensor::ByteWriter w;
            w.i64(agent);
            w.str(blob_to_str(rf->export_agent(agent)));
            (void)send_msg(fd, Msg::kAgentState, w.bytes());
            break;
          }
          case Msg::kLoadAgentState: {
            tensor::ByteReader req(frame->body);
            const int64_t agent = req.i64();
            rf->import_agent(agent, str_to_blob(req.str()));
            req.expect_done();
            (void)send_msg(fd, Msg::kAck);
            break;
          }
          case Msg::kCheckpointReq: {
            (void)send_msg(fd, Msg::kCheckpointBlob, fleet.checkpoint());
            break;
          }
          case Msg::kWeightsReq: {
            const std::vector<int64_t> live = fleet.live_agents();
            COMDML_REQUIRE(!live.empty(), "no live agents");
            (void)send_msg(
                fd, Msg::kWeights,
                tensor::pack_tensors(nn::state_of(fleet.model(live[0]))));
            break;
          }
          case Msg::kLeave: {
            tensor::ByteReader req(frame->body);
            fleet.leave(req.i64());
            req.expect_done();
            (void)send_msg(fd, Msg::kAck);
            break;
          }
          case Msg::kShutdown:
            return 0;
          default:
            (void)send_msg(fd, Msg::kError,
                           str_to_blob("unknown worker request type " +
                                       std::to_string(frame->type)));
        }
      } catch (const std::exception& e) {
        (void)send_msg(fd, Msg::kError, str_to_blob(e.what()));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd worker %lld: %s\n",
                 (long long)options.index, e.what());
    return 1;
  }
}

FleetClient::FleetClient(const std::string& address, double timeout_sec) {
  fd_ = comm::dial(comm::parse_address(address), timeout_sec);
  COMDML_REQUIRE(fd_ >= 0, "cannot reach fleetd at " << address);
  const comm::WireFrame hello =
      rpc(Msg::kClientHello, {}, Msg::kClientHello);
  tensor::ByteReader r(hello.body);
  agents_ = r.i64();
  workers_ = r.i64();
  r.expect_done();
}

FleetClient::~FleetClient() {
  if (fd_ >= 0) comm::close_fd(fd_);
}

comm::WireFrame FleetClient::rpc(Msg type, const std::vector<uint8_t>& body,
                                 Msg want) {
  COMDML_REQUIRE(send_msg(fd_, type, body), "fleetd is gone");
  return expect_msg(fd_, want, "fleetd");
}

core::RoundReport FleetClient::round() {
  const comm::WireFrame frame = rpc(Msg::kClientRound, {}, Msg::kRoundReport);
  tensor::ByteReader r(frame.body);
  core::RoundReport rep = read_report(r);
  r.expect_done();
  return rep;
}

comm::TransportStats FleetClient::stats() {
  const comm::WireFrame frame =
      rpc(Msg::kClientStats, {}, Msg::kClientStatsResp);
  tensor::ByteReader r(frame.body);
  comm::TransportStats s = read_stats(r);
  r.expect_done();
  return s;
}

std::vector<uint8_t> FleetClient::weights() {
  return rpc(Msg::kClientWeights, {}, Msg::kWeights).body;
}

std::vector<uint8_t> FleetClient::checkpoint() {
  return rpc(Msg::kClientCheckpoint, {}, Msg::kCheckpointBlob).body;
}

void FleetClient::leave(int64_t agent) {
  tensor::ByteWriter w;
  w.i64(agent);
  (void)rpc(Msg::kClientLeave, w.bytes(), Msg::kAck);
}

void FleetClient::shutdown() {
  (void)rpc(Msg::kClientShutdown, {}, Msg::kAck);
}

}  // namespace comdml::daemon
