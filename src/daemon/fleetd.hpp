// fleetd — host one ComDML fleet across OS processes.
//
// One coordinator process owns the control plane: it listens on a
// unix/tcp address, waits for `workers` worker processes to join, ships
// each the FleetSpec + owner map + data-mesh addresses, and then drives
// rounds on behalf of connected clients. Each worker builds the full
// deterministic fleet from the spec (identical replicas everywhere),
// connects a comm::SocketTransport data mesh to its sibling workers, and
// trains only the agents it owns; task results flow through the
// coordinator (gather -> merge -> broadcast) and the aggregation
// collective runs rank-partitioned over the socket mesh. The result is
// bit-identical to the same fleet stepped in a single process — the
// socket_test asserts final weights byte-for-byte.
//
//   fleetd --listen unix:/tmp/fleet.sock --workers 2 --agents 4   # coord
//   fleetd --worker --index 0 --connect unix:/tmp/fleet.sock      # worker
//   fleetd --worker --index 1 --connect unix:/tmp/fleet.sock
//   fleet_cli --connect unix:/tmp/fleet.sock --rounds 3           # client
//
// FleetClient is the embeddable client the CLI and tests use: one blocking
// RPC per call, over the same framed wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/protocol.hpp"

namespace comdml::daemon {

struct CoordinatorOptions {
  std::string listen;  ///< control address ("unix:..." | "tcp:host:port")
  int64_t workers = 2;
  FleetSpec spec;
};

/// Run the coordinator until a client sends kClientShutdown (forwarded to
/// every worker). Returns a process exit code.
int run_coordinator(const CoordinatorOptions& options);

struct WorkerOptions {
  std::string connect;  ///< the coordinator's control address
  int64_t index = 0;
  /// Re-spawned replacement for a crashed worker: instead of the kJoin
  /// handshake it sends kRejoin, receives the spec + current mesh layout +
  /// a full consensus checkpoint, restores mid-history, and re-enters the
  /// serve loop. Its previously-dead agents then rejoin from consensus on
  /// every worker.
  bool rejoin = false;
};

/// Run one worker until the coordinator sends kShutdown (or dies).
/// Returns a process exit code.
int run_worker(const WorkerOptions& options);

/// The coordinator cannot be reached: nothing ever answered within the
/// connect timeout, or — caught early, without burning the timeout — a
/// unix control socket exists but persistently refuses connections, the
/// signature of a stale socket file left behind by a dead coordinator.
/// Typed so fleet_cli can print an actionable message (and exit code)
/// instead of a generic connect failure.
class CoordinatorUnreachable : public std::runtime_error {
 public:
  explicit CoordinatorUnreachable(const std::string& what)
      : std::runtime_error(what) {}
};

/// Blocking client for a running fleetd coordinator. Every method is one
/// RPC; errors from the daemon surface as std::runtime_error.
class FleetClient {
 public:
  /// Connects and completes the hello handshake. Throws
  /// CoordinatorUnreachable on timeout or on a stale unix control socket
  /// (detected in ~quarter of a second, not the full timeout).
  explicit FleetClient(const std::string& address,
                       double timeout_sec = 30.0);
  ~FleetClient();
  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  [[nodiscard]] int64_t agents() const noexcept { return agents_; }
  [[nodiscard]] int64_t workers() const noexcept { return workers_; }

  /// Drive one fleet round; the report carries worker 0's losses (every
  /// worker computes identical ones) and the merged transport clock.
  core::RoundReport round();
  /// Merged per-worker transport stats of the last round.
  [[nodiscard]] comm::TransportStats stats();
  /// pack_tensors() of the consensus model (first live agent's replica).
  [[nodiscard]] std::vector<uint8_t> weights();
  /// Full fleet checkpoint: remote agents are gathered onto worker 0
  /// first, so the blob restores into a single-process fleet.
  [[nodiscard]] std::vector<uint8_t> checkpoint();
  /// Quorum checkpoint: every live worker writes its owned-agent shard
  /// into `dir` (a path valid on the workers' filesystem) and the call
  /// returns the shard paths. No coordinator-side assembly — any quorum of
  /// the files restores via RealFleet::restore_shards.
  [[nodiscard]] std::vector<std::string> shard_checkpoint(
      const std::string& dir);
  /// Remove an agent from the fleet on every worker.
  void leave(int64_t agent);
  /// Stop the coordinator and all workers.
  void shutdown();

 private:
  comm::WireFrame rpc(Msg type, const std::vector<uint8_t>& body,
                      Msg want);

  int fd_ = -1;
  int64_t agents_ = 0;
  int64_t workers_ = 0;
};

}  // namespace comdml::daemon
