#include "daemon/protocol.hpp"

#include <stdexcept>

#include "comm/socket_io.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "tensor/check.hpp"

namespace comdml::daemon {

void write_spec(tensor::ByteWriter& w, const FleetSpec& spec) {
  w.i64(spec.agents);
  w.u64(spec.seed);
  w.i64(spec.batch_size);
  w.i64(spec.batches_per_round);
  w.f32(spec.lr);
  w.f32(spec.momentum);
  w.str(spec.protocol);
  w.f64(spec.mbps);
  w.f64(spec.latency_sec);
  w.f64s(spec.compute_scales);
}

FleetSpec read_spec(tensor::ByteReader& r) {
  FleetSpec spec;
  spec.agents = r.i64();
  spec.seed = r.u64();
  spec.batch_size = r.i64();
  spec.batches_per_round = r.i64();
  spec.lr = r.f32();
  spec.momentum = r.f32();
  spec.protocol = r.str();
  spec.mbps = r.f64();
  spec.latency_sec = r.f64();
  spec.compute_scales = r.f64s();
  return spec;
}

void write_stats(tensor::ByteWriter& w, const comm::TransportStats& s) {
  w.i64(s.steps);
  w.i64(s.messages);
  w.i64(s.dropped_messages);
  w.i64(s.total_wire_bytes);
  w.f64(s.seconds);
  w.i64s(s.bytes_sent);
  w.i64s(s.bytes_received);
  w.f64s(s.send_seconds);
  w.f64s(s.recv_seconds);
  w.i64s(s.dropped_per_edge);
  w.i64(s.retransmit_messages);
  w.i64(s.retransmit_wire_bytes);
  w.i64(s.duplicated_messages);
  w.i64(s.duplicated_wire_bytes);
  w.i64(s.corrupt_messages);
  w.i64(s.delayed_messages);
  w.i64(s.reordered_messages);
  w.f64(s.backoff_seconds);
  w.f64s(s.step_spans);
  w.i64s(s.step_message_counts);
}

comm::TransportStats read_stats(tensor::ByteReader& r) {
  comm::TransportStats s;
  s.steps = r.i64();
  s.messages = r.i64();
  s.dropped_messages = r.i64();
  s.total_wire_bytes = r.i64();
  s.seconds = r.f64();
  s.bytes_sent = r.i64s();
  s.bytes_received = r.i64s();
  s.send_seconds = r.f64s();
  s.recv_seconds = r.f64s();
  s.dropped_per_edge = r.i64s();
  s.retransmit_messages = r.i64();
  s.retransmit_wire_bytes = r.i64();
  s.duplicated_messages = r.i64();
  s.duplicated_wire_bytes = r.i64();
  s.corrupt_messages = r.i64();
  s.delayed_messages = r.i64();
  s.reordered_messages = r.i64();
  s.backoff_seconds = r.f64();
  s.step_spans = r.f64s();
  s.step_message_counts = r.i64s();
  return s;
}

void write_report(tensor::ByteWriter& w, const core::RoundReport& rep) {
  w.i64(rep.round);
  w.f64(rep.round_seconds);
  w.f64(rep.compute_seconds);
  w.f64(rep.comm_seconds);
  w.f64(rep.aggregation_seconds);
  w.f64(rep.idle_seconds);
  w.f64(rep.unbalanced_seconds);
  w.i64(rep.aggregation_bytes);
  w.i64(rep.buckets);
  w.f64(rep.exposed_comm_seconds);
  w.i64(rep.split_early_buckets);
  w.i64(rep.num_pairs);
  w.i64(rep.dropped_agents);
  w.i64(rep.late_agents);
  w.i64(rep.retransmit_bytes);
  w.f32(rep.mean_loss);
  w.f32(rep.mean_slow_loss);
  w.f64(rep.mean_dcor);
  w.f64(rep.mean_wire_compression);
}

core::RoundReport read_report(tensor::ByteReader& r) {
  core::RoundReport rep;
  rep.round = r.i64();
  rep.round_seconds = r.f64();
  rep.compute_seconds = r.f64();
  rep.comm_seconds = r.f64();
  rep.aggregation_seconds = r.f64();
  rep.idle_seconds = r.f64();
  rep.unbalanced_seconds = r.f64();
  rep.aggregation_bytes = r.i64();
  rep.buckets = r.i64();
  rep.exposed_comm_seconds = r.f64();
  rep.split_early_buckets = r.i64();
  rep.num_pairs = r.i64();
  rep.dropped_agents = r.i64();
  rep.late_agents = r.i64();
  rep.retransmit_bytes = r.i64();
  rep.mean_loss = r.f32();
  rep.mean_slow_loss = r.f32();
  rep.mean_dcor = r.f64();
  rep.mean_wire_compression = r.f64();
  return rep;
}

void write_task_result(tensor::ByteWriter& w,
                       const core::RealFleet::TaskResult& t) {
  w.f32(t.slow_loss_sum);
  w.f32(t.loss_sum);
  w.i64(t.loss_count);
  w.f64(t.dcor);
  w.f64(t.wire_compression);
  w.i64(t.dcor_count);
  w.i64(t.split_early_buckets);
}

core::RealFleet::TaskResult read_task_result(tensor::ByteReader& r) {
  core::RealFleet::TaskResult t;
  t.slow_loss_sum = r.f32();
  t.loss_sum = r.f32();
  t.loss_count = r.i64();
  t.dcor = r.f64();
  t.wire_compression = r.f64();
  t.dcor_count = r.i64();
  t.split_early_buckets = r.i64();
  return t;
}

std::vector<int64_t> owner_map(int64_t agents, int64_t workers) {
  COMDML_REQUIRE(workers > 0 && agents >= workers,
                 "a fleet of " << agents << " agents cannot be partitioned "
                               << "across " << workers << " workers");
  std::vector<int64_t> owner(static_cast<size_t>(agents));
  for (int64_t a = 0; a < agents; ++a)
    owner[static_cast<size_t>(a)] = a % workers;
  return owner;
}

std::vector<std::string> mesh_addresses(const std::string& control_addr,
                                        int64_t workers,
                                        int64_t generation) {
  const comm::SocketAddress control = comm::parse_address(control_addr);
  const std::string suffix =
      generation > 0 ? ".g" + std::to_string(generation) : std::string();
  std::vector<std::string> addrs;
  addrs.reserve(static_cast<size_t>(workers));
  for (int64_t i = 0; i < workers; ++i) {
    if (control.kind == comm::SocketAddress::Kind::kUnix) {
      addrs.push_back("unix:" + control.path + ".peer" + std::to_string(i) +
                      suffix);
    } else {
      addrs.push_back("tcp:" + control.host + ":" +
                      std::to_string(control.port + 1 +
                                     workers * generation + i));
    }
  }
  return addrs;
}

comm::AllReduceAlgo spec_algo(const std::string& name) {
  if (name == "hd") return comm::AllReduceAlgo::kHalvingDoubling;
  if (name == "ring") return comm::AllReduceAlgo::kRing;
  throw std::invalid_argument("unknown aggregation protocol " + name +
                              " (hd | ring)");
}

core::FleetRuntime build_spec_fleet(const FleetSpec& spec,
                                    data::Dataset* eval_out) {
  // fleet_cli's real-mode geometry (synthetic blobs, iid shards, small
  // MLP). With no compute scales the resource profiles are uniform, so
  // the pairing pass never produces an offload pair (pairing needs a
  // strict speed gap) and every round is solo-only; per-agent scales turn
  // on the fast/slow offload path across workers too.
  COMDML_REQUIRE(spec.compute_scales.empty() ||
                     static_cast<int64_t>(spec.compute_scales.size()) ==
                         spec.agents,
                 "spec carries " << spec.compute_scales.size()
                                 << " compute scales for " << spec.agents
                                 << " agents");
  constexpr int64_t kClasses = 3, kFeatures = 6, kPerAgent = 60;
  tensor::Rng rng(spec.seed + 1);
  const auto ds = data::make_blobs(spec.agents * kPerAgent, kClasses,
                                   kFeatures, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), spec.agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  if (eval_out != nullptr) *eval_out = shards[0];

  core::FleetOptions opt;
  opt.seed = spec.seed;
  opt.train.batch_size = spec.batch_size;
  opt.train.batches_per_round = spec.batches_per_round;
  opt.train.sgd.lr = spec.lr;
  opt.train.sgd.momentum = spec.momentum;
  opt.comms.aggregation = spec_algo(spec.protocol);
  opt.comms.latency_sec = spec.latency_sec;

  std::vector<sim::ResourceProfile> profiles(
      static_cast<size_t>(spec.agents),
      sim::ResourceProfile{1.0, spec.mbps});
  for (size_t a = 0; a < spec.compute_scales.size(); ++a) {
    COMDML_REQUIRE(spec.compute_scales[a] > 0.0,
                   "compute scale for agent " << a << " must be positive");
    profiles[a].cpu = spec.compute_scales[a];
  }
  core::ModelFactory factory = [](tensor::Rng& r) {
    return nn::mlp({kFeatures, 24, 24, kClasses}, r);
  };
  return core::FleetBuilder()
      .method(learncurve::Method::kComDML)
      .options(opt)
      .topology(sim::Topology::full_mesh(profiles))
      .model(factory, kClasses)
      .shards(std::move(shards))
      .build();
}

bool send_msg(int fd, Msg type, const std::vector<uint8_t>& body) {
  return comm::send_frame(fd, static_cast<uint16_t>(type), body);
}

comm::WireFrame recv_msg(int fd, const std::string& who) {
  auto frame = comm::recv_frame(fd);
  if (!frame.has_value())
    throw std::runtime_error(who + " disconnected");
  if (frame->type == static_cast<uint16_t>(Msg::kError))
    throw std::runtime_error(
        who + " reported: " +
        std::string(frame->body.begin(), frame->body.end()));
  return std::move(*frame);
}

comm::WireFrame expect_msg(int fd, Msg want, const std::string& who) {
  comm::WireFrame frame = recv_msg(fd, who);
  if (frame.type != static_cast<uint16_t>(want))
    throw std::runtime_error("unexpected frame type " +
                             std::to_string(frame.type) + " from " + who +
                             " (wanted " +
                             std::to_string(static_cast<uint16_t>(want)) +
                             ")");
  return frame;
}

}  // namespace comdml::daemon
