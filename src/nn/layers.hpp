// Basic layers: Linear, ReLU, Flatten, GlobalAvgPool2d and Sequential.
#pragma once

#include "nn/module.hpp"

namespace comdml::nn {

/// Fully connected layer: y = x W^T + b, x:[N,in], W:[out,in], b:[out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "linear"; }

  [[nodiscard]] int64_t in_features() const noexcept { return in_; }
  [[nodiscard]] int64_t out_features() const noexcept { return out_; }

 private:
  int64_t in_;
  int64_t out_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

/// Elementwise rectifier.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "relu"; }

 private:
  Tensor cached_mask_;
};

/// [N,C,H,W] -> [N, C*H*W].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "flatten"; }

 private:
  Shape cached_in_shape_;
};

/// Global average pool: [N,C,H,W] -> [N,C].
class GlobalAvgPool2d : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "gavgpool"; }

 private:
  Shape cached_in_shape_;
};

/// Ordered container of units; the unit boundary is ComDML's split
/// granularity. Supports running a sub-range so a slow agent can execute
/// units [0, s) while its fast partner executes [s, end).
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> units) : units_(std::move(units)) {}

  void push(ModulePtr unit) {
    COMDML_CHECK(unit != nullptr);
    units_.push_back(std::move(unit));
  }

  [[nodiscard]] size_t size() const noexcept { return units_.size(); }
  [[nodiscard]] Module& unit(size_t i) {
    COMDML_CHECK(i < units_.size());
    return *units_[i];
  }

  Tensor forward(const Tensor& x, bool train) override {
    return forward_range(x, 0, units_.size(), train);
  }
  Tensor backward(const Tensor& grad_out) override {
    return backward_range(grad_out, 0, units_.size());
  }

  /// Forward through units [begin, end).
  Tensor forward_range(const Tensor& x, size_t begin, size_t end, bool train);

  /// Backward through units [begin, end), applied in reverse order.
  Tensor backward_range(const Tensor& grad_out, size_t begin, size_t end);

  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<Tensor*>& out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "sequential"; }

  /// Per-unit cost chain starting from a per-sample input shape.
  [[nodiscard]] std::vector<LayerCost> unit_costs(const Shape& in_shape) const;

 private:
  std::vector<ModulePtr> units_;
};

}  // namespace comdml::nn
