// Architecture cost descriptors used by split-model profiling and the
// timing simulator.
//
// For paper-scale models (ResNet-56/110 on 3x32x32) the simulator never
// executes tensors; it consumes a per-unit UnitSpec list derived from the
// exact convolution arithmetic of the architecture. The same structure can
// be extracted from any live Sequential via spec_from_model(), so small
// real models and large simulated ones flow through identical scheduling
// code.
#pragma once

#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace comdml::nn {

/// Cost of one split unit. `cut_extra_bytes` models activations that must
/// additionally cross the wire when the model is cut directly after this
/// unit *inside* a residual block (the skip input stays live and must be
/// shipped alongside the main-path activation).
struct UnitSpec {
  std::string name;
  double flops_forward = 0.0;   ///< per sample
  double flops_backward = 0.0;  ///< per sample
  int64_t param_bytes = 0;
  int64_t act_bytes = 0;        ///< main-path activation leaving this unit, per sample
  int64_t cut_extra_bytes = 0;  ///< extra skip-path bytes if cut here, per sample
};

/// Whole-model descriptor; unit boundaries are admissible split points.
struct ArchitectureSpec {
  std::string name;
  int64_t classes = 10;
  std::vector<UnitSpec> units;

  [[nodiscard]] size_t size() const noexcept { return units.size(); }

  /// Per-sample forward+backward FLOPs of the full model.
  [[nodiscard]] double total_flops() const;

  /// Learnable + buffer payload of the full model in bytes.
  [[nodiscard]] int64_t total_param_bytes() const;

  /// FLOPs (fwd+bwd) of units [0, cut).
  [[nodiscard]] double prefix_flops(size_t cut) const;

  /// Parameter bytes of units [cut, size()) — what an offload ships.
  [[nodiscard]] int64_t suffix_param_bytes(size_t cut) const;

  /// Wire bytes per sample crossing a cut after unit `cut-1`
  /// (main activation + any live skip input + the label byte payload).
  [[nodiscard]] int64_t cut_activation_bytes(size_t cut) const;
};

/// CIFAR ResNet of depth 6n+2 at *conv-layer granularity*: one UnitSpec per
/// conv layer (56 units for ResNet-56: stem, 54 block convs, head), so the
/// Table I offload sweep can cut at any layer exactly as the paper does.
[[nodiscard]] ArchitectureSpec resnet_cifar_spec(int depth, int64_t classes,
                                                 int64_t image_hw = 32);

[[nodiscard]] ArchitectureSpec resnet56_spec(int64_t classes = 10);
[[nodiscard]] ArchitectureSpec resnet110_spec(int64_t classes = 10);

/// Extract a spec from a live model (unit granularity = split granularity).
[[nodiscard]] ArchitectureSpec spec_from_model(const Sequential& model,
                                               const Shape& in_shape,
                                               std::string name,
                                               int64_t classes);

}  // namespace comdml::nn
