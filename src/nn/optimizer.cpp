#include "nn/optimizer.hpp"

namespace comdml::nn {

SGD::SGD(std::vector<Parameter*> params, Options options)
    : params_(std::move(params)), options_(options) {
  COMDML_CHECK(options_.lr > 0.0f);
  COMDML_CHECK(options_.momentum >= 0.0f && options_.momentum < 1.0f);
  COMDML_CHECK(options_.weight_decay >= 0.0f);
  velocity_.reserve(params_.size());
  for (auto* p : params_) {
    COMDML_CHECK(p != nullptr);
    velocity_.emplace_back(p->value.shape());
  }
}

void SGD::step() { step_range(0, params_.size()); }

void SGD::step_range(size_t first, size_t count) {
  COMDML_CHECK(first + count <= params_.size());
  for (size_t i = first; i < first + count; ++i) {
    Parameter& p = *params_[i];
    tensor::sgd_momentum_update(p.value, velocity_[i], p.grad, options_.lr,
                                options_.momentum, options_.weight_decay);
  }
}

void SGD::load_velocity(const std::vector<Tensor>& velocity) {
  COMDML_REQUIRE(velocity.size() == velocity_.size(),
                 "velocity list size mismatch: got "
                     << velocity.size() << ", optimizer holds "
                     << velocity_.size());
  for (size_t i = 0; i < velocity.size(); ++i) {
    COMDML_REQUIRE(velocity[i].shape() == velocity_[i].shape(),
                   "velocity shape mismatch at parameter " << i);
    velocity_[i] = velocity[i];
  }
}

void SGD::zero_grad() {
  for (auto* p : params_) p->grad.fill(0.0f);
}

void SGD::set_lr(float lr) {
  COMDML_CHECK(lr > 0.0f);
  options_.lr = lr;
}

PlateauScheduler::PlateauScheduler(float factor, int patience, float min_delta)
    : factor_(factor), patience_(patience), min_delta_(min_delta) {
  COMDML_CHECK(factor > 0.0f && factor < 1.0f);
  COMDML_CHECK(patience > 0);
}

float PlateauScheduler::observe(float metric) {
  if (metric > best_ + min_delta_) {
    best_ = metric;
    stale_ = 0;
    return 1.0f;
  }
  if (++stale_ >= patience_) {
    stale_ = 0;
    return factor_;
  }
  return 1.0f;
}

}  // namespace comdml::nn
