#include "nn/extras.hpp"

#include <cmath>

namespace comdml::nn {

// ---- MaxPool2d ---------------------------------------------------------------

MaxPool2d::MaxPool2d(int64_t kernel) : k_(kernel) { COMDML_CHECK(kernel > 0); }

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  COMDML_REQUIRE(x.rank() == 4, "maxpool expects [N,C,H,W], got "
                                    << tensor::shape_str(x.shape()));
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  COMDML_REQUIRE(h % k_ == 0 && w % k_ == 0,
                 "maxpool: " << h << "x" << w << " not divisible by " << k_);
  const int64_t ho = h / k_, wo = w / k_;
  cached_in_shape_ = x.shape();
  cached_argmax_.assign(static_cast<size_t>(n * c * ho * wo), 0);

  Tensor y({n, c, ho, wo});
  auto xi = x.flat();
  auto yo = y.flat();
  for (int64_t img = 0; img < n * c; ++img) {
    const float* plane = xi.data() + img * h * w;
    for (int64_t oy = 0; oy < ho; ++oy) {
      for (int64_t ox = 0; ox < wo; ++ox) {
        int64_t best = (oy * k_) * w + ox * k_;
        for (int64_t dy = 0; dy < k_; ++dy)
          for (int64_t dx = 0; dx < k_; ++dx) {
            const int64_t idx = (oy * k_ + dy) * w + (ox * k_ + dx);
            if (plane[idx] > plane[best]) best = idx;
          }
        const int64_t out_idx = (img * ho + oy) * wo + ox;
        yo[out_idx] = plane[best];
        cached_argmax_[static_cast<size_t>(out_idx)] = img * h * w + best;
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_in_shape_.empty());
  Tensor dx(cached_in_shape_);
  auto go = grad_out.flat();
  auto dxo = dx.flat();
  COMDML_CHECK(go.size() == cached_argmax_.size());
  for (size_t i = 0; i < go.size(); ++i)
    dxo[static_cast<size_t>(cached_argmax_[i])] += go[i];
  return dx;
}

LayerCost MaxPool2d::cost(const Shape& in_shape) const {
  COMDML_REQUIRE(in_shape.size() == 3, "maxpool cost expects [C,H,W]");
  LayerCost c;
  c.flops_forward = static_cast<double>(tensor::shape_size(in_shape));
  c.flops_backward = c.flops_forward / static_cast<double>(k_ * k_);
  c.out_shape = {in_shape[0], in_shape[1] / k_, in_shape[2] / k_};
  c.out_bytes =
      tensor::shape_size(c.out_shape) * static_cast<int64_t>(sizeof(float));
  return c;
}

// ---- Dropout -----------------------------------------------------------------

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  COMDML_CHECK(rate >= 0.0f && rate < 1.0f);
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  last_was_training_ = train;
  if (!train || rate_ == 0.0f) return x;
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  cached_mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  auto xi = x.flat();
  auto mo = cached_mask_.flat();
  auto yo = y.flat();
  for (size_t i = 0; i < xi.size(); ++i) {
    const bool kept = rng_.uniform() < keep;
    mo[i] = kept ? scale : 0.0f;
    yo[i] = xi[i] * mo[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_was_training_ || rate_ == 0.0f) return grad_out;
  COMDML_CHECK(!cached_mask_.empty());
  return tensor::mul(grad_out, cached_mask_);
}

LayerCost Dropout::cost(const Shape& in_shape) const {
  LayerCost c;
  const auto n = static_cast<double>(tensor::shape_size(in_shape));
  c.flops_forward = n;
  c.flops_backward = n;
  c.out_shape = in_shape;
  c.out_bytes =
      tensor::shape_size(in_shape) * static_cast<int64_t>(sizeof(float));
  return c;
}

// ---- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features),
      eps_(eps),
      gain_("ln.gain", Tensor({features}, 1.0f)),
      bias_("ln.bias", Tensor({features})) {
  COMDML_CHECK(features > 0 && eps > 0.0f);
}

Tensor LayerNorm::forward(const Tensor& x, bool /*train*/) {
  COMDML_REQUIRE(x.rank() == 2 && x.dim(1) == features_,
                 "layernorm: expected [N," << features_ << "], got "
                                           << tensor::shape_str(x.shape()));
  const int64_t n = x.dim(0), f = features_;
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor({n});
  Tensor y(x.shape());
  auto xi = x.flat();
  auto xh = cached_xhat_.flat();
  auto is = cached_inv_std_.flat();
  auto yo = y.flat();
  const auto g = gain_.value.flat();
  const auto b = bias_.value.flat();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = xi.data() + i * f;
    double mean = 0, var = 0;
    for (int64_t j = 0; j < f; ++j) mean += row[j];
    mean /= static_cast<double>(f);
    for (int64_t j = 0; j < f; ++j) {
      const double d = row[j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(f);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    is[static_cast<size_t>(i)] = inv;
    for (int64_t j = 0; j < f; ++j) {
      const float v = (row[j] - static_cast<float>(mean)) * inv;
      xh[i * f + j] = v;
      yo[i * f + j] = g[j] * v + b[j];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_xhat_.empty());
  COMDML_CHECK(grad_out.shape() == cached_xhat_.shape());
  const int64_t n = cached_xhat_.dim(0), f = features_;
  Tensor dx(cached_xhat_.shape());
  auto go = grad_out.flat();
  auto xh = cached_xhat_.flat();
  auto is = cached_inv_std_.flat();
  auto dxo = dx.flat();
  const auto g = gain_.value.flat();
  auto dg = gain_.grad.flat();
  auto db = bias_.grad.flat();
  const float inv_f = 1.0f / static_cast<float>(f);
  for (int64_t i = 0; i < n; ++i) {
    double sum_dy = 0, sum_dy_xh = 0;
    for (int64_t j = 0; j < f; ++j) {
      const float dyj = go[i * f + j] * g[j];
      sum_dy += dyj;
      sum_dy_xh += double(dyj) * xh[i * f + j];
      dg[j] += go[i * f + j] * xh[i * f + j];
      db[j] += go[i * f + j];
    }
    const float mean_dy = static_cast<float>(sum_dy) * inv_f;
    const float mean_dy_xh = static_cast<float>(sum_dy_xh) * inv_f;
    for (int64_t j = 0; j < f; ++j) {
      const float dyj = go[i * f + j] * g[j];
      dxo[i * f + j] = is[static_cast<size_t>(i)] *
                       (dyj - mean_dy - xh[i * f + j] * mean_dy_xh);
    }
  }
  return dx;
}

void LayerNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gain_);
  out.push_back(&bias_);
}

LayerCost LayerNorm::cost(const Shape& in_shape) const {
  COMDML_REQUIRE(in_shape.size() == 1 && in_shape[0] == features_,
                 "layernorm cost expects [" << features_ << "]");
  LayerCost c;
  c.flops_forward = 6.0 * static_cast<double>(features_);
  c.flops_backward = 10.0 * static_cast<double>(features_);
  c.param_bytes = 2 * features_ * static_cast<int64_t>(sizeof(float));
  c.out_bytes = features_ * static_cast<int64_t>(sizeof(float));
  c.out_shape = in_shape;
  return c;
}

}  // namespace comdml::nn
