// Batch normalization over the channel axis of NCHW activations.
#pragma once

#include "nn/module.hpp"

namespace comdml::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<Tensor*>& out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "batchnorm"; }

 private:
  int64_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  // training-pass caches
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  ///< [C]
};

}  // namespace comdml::nn
