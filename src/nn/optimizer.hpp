// SGD with momentum, weight decay and a plateau learning-rate schedule,
// matching the paper's training recipe (momentum 0.9, eta0 = 1e-3, LR decay
// on accuracy plateau).
#pragma once

#include "nn/module.hpp"

namespace comdml::nn {

class SGD {
 public:
  struct Options {
    float lr = 1e-3f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;
  };

  SGD(std::vector<Parameter*> params, Options options);

  /// Apply one update: v <- momentum*v - lr*(g + wd*w); w <- w + v.
  void step();

  /// Update only params [first, first + count) of the construction list.
  /// Per-parameter math is independent, so stepping a partition of the
  /// list in any order is bit-identical to one step() — the overlapped
  /// round pipeline uses this to finalize a unit's parameters as soon as
  /// its backward completes.
  void step_range(size_t first, size_t count);

  [[nodiscard]] size_t size() const noexcept { return params_.size(); }

  void zero_grad();

  [[nodiscard]] float lr() const noexcept { return options_.lr; }
  void set_lr(float lr);

  /// Momentum buffers, construction-list order — durable optimizer state
  /// for checkpoint/restore and for carrying momentum across rounds when
  /// the optimizer object itself is rebuilt.
  [[nodiscard]] const std::vector<Tensor>& velocity() const noexcept {
    return velocity_;
  }
  /// Restores velocity(); shapes must match the parameter list.
  void load_velocity(const std::vector<Tensor>& velocity);

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  Options options_;
};

/// Reduce-on-plateau controller: multiply LR by `factor` when the tracked
/// metric has not improved by `min_delta` for `patience` observations.
class PlateauScheduler {
 public:
  PlateauScheduler(float factor, int patience, float min_delta = 1e-4f);

  /// Report a new metric value (higher is better); returns the LR multiplier
  /// to apply this step (1.0 = unchanged, `factor` = decay triggered).
  [[nodiscard]] float observe(float metric);

  /// Durable controller state (best metric seen, staleness counter).
  struct State {
    float best = -1e30f;
    int stale = 0;
  };
  [[nodiscard]] State save() const noexcept { return {best_, stale_}; }
  void load(const State& state) noexcept {
    best_ = state.best;
    stale_ = state.stale;
  }

 private:
  float factor_;
  int patience_;
  float min_delta_;
  float best_ = -1e30f;
  int stale_ = 0;
};

}  // namespace comdml::nn
